// Color-code scenario: the paper's generalizability workload (§5).  On the
// triangular 6.6.6 color code, syndrome information per data qubit is
// sparse (1-3 bits), so ERASER's half-flip heuristic over-triggers while
// GLADIATOR-D's two-round deferral keeps LRCs targeted.

#include <cstdio>

#include "codes/color_code.h"
#include "core/policy_eraser.h"
#include "core/pattern_table.h"
#include "runtime/experiment.h"
#include "util/config.h"

using namespace gld;

int
main()
{
    const CssCode code = ColorCode::make(7);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    std::printf("Code: %s — %d data qubits (vs %d for a d=7 surface "
                "code), %d faces\n",
                code.name().c_str(), code.n_data(), 97, code.n_checks() / 2);

    // Show the per-class speculation tables GLADIATOR builds offline.
    const NoiseParams np = NoiseParams::standard(1e-3, 0.1);
    const PatternTableSet single = PatternTableSet::build(ctx, np, {}, false);
    const PatternTableSet two = PatternTableSet::build(ctx, np, {}, true);
    std::printf("\nPer-class flagged patterns (leakage-dominated):\n");
    for (int c = 0; c < ctx.n_classes(); ++c) {
        const int k = ctx.classes()[c].k_obs;
        std::printf("  %d-bit class: ERASER %d/%d, GLADIATOR %d/%d, "
                    "GLADIATOR-D %d/%d\n",
                    k, EraserPolicy::flagged_count(k), 1 << k,
                    single.flagged_count(c), 1 << k, two.flagged_count(c),
                    1 << (2 * k));
    }

    ExperimentConfig cfg;
    cfg.np = np;
    cfg.rounds = 100;
    cfg.shots = BenchConfig::shots(200);
    cfg.threads = BenchConfig::threads();
    cfg.leakage_sampling = true;
    ExperimentRunner runner(ctx, cfg);

    std::printf("\n%-16s %10s %10s %10s %10s\n", "policy", "FP/shot",
                "FN/shot", "LRC/shot", "DLP");
    struct Row {
        const char* name;
        PolicyFactory factory;
    };
    const Row rows[] = {
        {"ERASER+M", PolicyZoo::eraser(true)},
        {"GLADIATOR+M", PolicyZoo::gladiator(true, np)},
        {"GLADIATOR-D+M", PolicyZoo::gladiator_d(true, np)},
    };
    for (const Row& row : rows) {
        const Metrics m = runner.run(row.factory);
        std::printf("%-16s %10.2f %10.2f %10.1f %10.2e\n", row.name,
                    m.fp_per_shot(), m.fn_per_shot(), m.lrc_per_shot(),
                    m.dlp_mean());
    }
    return 0;
}
