// Color-code scenario: the paper's generalizability workload (§5).  On the
// triangular 6.6.6 color code, syndrome information per data qubit is
// sparse (1-3 bits), so ERASER's half-flip heuristic over-triggers while
// GLADIATOR-D's two-round deferral keeps LRCs targeted.
//
// The policy sweep runs through the campaign API — the same path
// `gld_campaign` drives across machines — split into two in-process
// "shards" and merged back, which is bit-identical to one monolithic
// ExperimentRunner::run() per policy.  Results checkpoint to
// ./color_code_campaign: re-running this example resumes instead of
// recomputing, and deleting the directory forces a fresh run.

#include <cstdio>
#include <cstdlib>

#include "campaign/campaign.h"
#include "campaign/registry.h"
#include "codes/color_code.h"
#include "core/pattern_table.h"
#include "core/policy_eraser.h"
#include "runtime/experiment.h"
#include "util/config.h"

using namespace gld;

int
main()
{
    const CssCode code = ColorCode::make(7);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    std::printf("Code: %s — %d data qubits (vs %d for a d=7 surface "
                "code), %d faces\n",
                code.name().c_str(), code.n_data(), 97, code.n_checks() / 2);

    // Show the per-class speculation tables GLADIATOR builds offline.
    const NoiseParams np = NoiseParams::standard(1e-3, 0.1);
    const PatternTableSet single = PatternTableSet::build(ctx, np, {}, false);
    const PatternTableSet two = PatternTableSet::build(ctx, np, {}, true);
    std::printf("\nPer-class flagged patterns (leakage-dominated):\n");
    for (int c = 0; c < ctx.n_classes(); ++c) {
        const int k = ctx.classes()[c].k_obs;
        std::printf("  %d-bit class: ERASER %d/%d, GLADIATOR %d/%d, "
                    "GLADIATOR-D %d/%d\n",
                    k, EraserPolicy::flagged_count(k), 1 << k,
                    single.flagged_count(c), 1 << k, two.flagged_count(c),
                    1 << (2 * k));
    }

    // The online sweep as a 1x1x3 campaign grid.  Registry and display
    // names are paired so the table labels cannot drift from the jobs.
    const std::vector<std::pair<std::string, std::string>> lineup = {
        {"eraser_m", "ERASER+M"},
        {"gladiator_m", "GLADIATOR+M"},
        {"gladiator_d_m", "GLADIATOR-D+M"},
    };
    campaign::CampaignSpec spec;
    spec.name = "color7";
    spec.shots = BenchConfig::shots(200);
    spec.rounds = 100;
    spec.leakage_sampling = true;
    spec.backend = backend_from_env();
    spec.batch_words = batch_words_from_env();
    spec.codes = {"color:7"};
    spec.noise = {np};
    for (const auto& entry : lineup)
        spec.policies.push_back(entry.first);

    const std::string out_dir = "color_code_campaign";
    const int n_shards = 2;  // pretend-distributed: both run here
    // GLD_CAMPAIGN_FRESH=1 (the CTest smoke environment) discards
    // checkpoints: they fingerprint the configuration, not the binary.
    const char* fresh = std::getenv("GLD_CAMPAIGN_FRESH");
    if (fresh != nullptr && fresh[0] == '1')
        campaign::remove_results(spec, n_shards, out_dir);
    for (int shard = 0; shard < n_shards; ++shard) {
        const campaign::RunShardStats stats = campaign::run_shard(
            spec, shard, n_shards, out_dir, BenchConfig::threads());
        std::printf("%s shard %d/%d: %d job(s) run, %d resumed\n",
                    shard == 0 ? "\n" : "", shard, n_shards, stats.jobs_run,
                    stats.jobs_resumed);
    }
    const std::vector<Metrics> results =
        campaign::merge_campaign(spec, n_shards, out_dir);

    std::printf("\n%-16s %10s %10s %10s %10s\n", "policy", "FP/shot",
                "FN/shot", "LRC/shot", "DLP");
    for (size_t i = 0; i < lineup.size(); ++i) {
        const Metrics& m = results[i];
        std::printf("%-16s %10.2f %10.2f %10.1f %10.2e\n",
                    lineup[i].second.c_str(), m.fp_per_shot(),
                    m.fn_per_shot(), m.lrc_per_shot(), m.dlp_mean());
    }
    return 0;
}
