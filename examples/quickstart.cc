// Quickstart: build a surface code, attach GLADIATOR+M leakage
// speculation, run a noisy memory experiment and print the headline
// metrics.  This is the 60-second tour of the public API.

#include <cstdio>

#include "codes/surface_code.h"
#include "runtime/experiment.h"
#include "util/config.h"

using namespace gld;

int
main()
{
    // 1. Pick a code and build its scheduled syndrome-extraction circuit.
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    std::printf("Code: %s — %d data qubits, %d checks, %d CNOTs/round\n",
                code.name().c_str(), code.n_data(), code.n_checks(),
                rc.n_cnots());

    // 2. Describe the device noise (paper defaults: p=1e-3, lr=0.1).
    const NoiseParams np = NoiseParams::standard(1e-3, 0.1);

    // 3. Configure a memory experiment: 50 rounds, decode for LER.
    ExperimentConfig cfg;
    cfg.np = np;
    cfg.rounds = 50;
    cfg.shots = BenchConfig::shots(400);
    cfg.threads = BenchConfig::threads();
    cfg.backend = backend_from_env();
    cfg.batch_words = batch_words_from_env();
    cfg.compute_ler = true;
    cfg.leakage_sampling = true;
    ExperimentRunner runner(ctx, cfg);

    // 4. Run it under three policies and compare.
    struct Row {
        const char* name;
        PolicyFactory factory;
    };
    const Row rows[] = {
        {"NO-LRC (unmitigated)", PolicyZoo::no_lrc()},
        {"ERASER+M (prior work)", PolicyZoo::eraser(true)},
        {"GLADIATOR+M (this work)", PolicyZoo::gladiator(true, np)},
    };
    std::printf("\n%-26s %10s %10s %10s %12s\n", "policy", "LER",
                "FP/shot", "FN/shot", "LRCs/shot");
    for (const Row& row : rows) {
        const Metrics m = runner.run(row.factory);
        std::printf("%-26s %10.2e %10.2f %10.2f %12.1f\n", row.name,
                    m.ler(), m.fp_per_shot(), m.fn_per_shot(),
                    m.lrc_per_shot());
    }
    std::printf("\nGLADIATOR speculates leakage from syndrome patterns via "
                "an offline code-aware error graph, cutting false-positive "
                "LRCs relative to ERASER's 50%%-flip heuristic.\n");
    return 0;
}
