// qLDPC scenario: leakage speculation on irregular Tanner graphs (HGP and
// BPC codes, paper §5.1 / Table 5) — the regime where hand-crafted
// heuristics break down and the code-aware graph model shines.

#include <cstdio>

#include "codes/bpc_code.h"
#include "codes/hgp_code.h"
#include "runtime/experiment.h"
#include "util/config.h"

using namespace gld;

namespace {

void
run_code(const CssCode& code)
{
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    std::printf("\n== %s: n=%d, checks=%d, k=%d, pattern widths up to %d "
                "bits ==\n",
                code.name().c_str(), code.n_data(), code.n_checks(),
                code.k_logical(), ctx.max_degree());

    const NoiseParams np = NoiseParams::standard(1e-3, 0.1);
    ExperimentConfig cfg;
    cfg.np = np;
    cfg.rounds = 100;
    cfg.shots = BenchConfig::shots(200);
    cfg.threads = BenchConfig::threads();
    cfg.backend = backend_from_env();
    cfg.batch_words = batch_words_from_env();
    cfg.leakage_sampling = true;
    ExperimentRunner runner(ctx, cfg);

    const Metrics er = runner.run(PolicyZoo::eraser(true));
    const Metrics gl = runner.run(PolicyZoo::gladiator(true, np));
    std::printf("%-14s FP/shot %8.2f  LRC/shot %8.1f  DLP %.2e\n",
                "ERASER+M", er.fp_per_shot(), er.lrc_per_shot(),
                er.dlp_mean());
    std::printf("%-14s FP/shot %8.2f  LRC/shot %8.1f  DLP %.2e\n",
                "GLADIATOR+M", gl.fp_per_shot(), gl.lrc_per_shot(),
                gl.dlp_mean());
    std::printf("reduction: %.2fx fewer LRCs, %.2fx lower DLP\n",
                er.lrc_per_shot() / gl.lrc_per_shot(),
                er.dlp_mean() / gl.dlp_mean());
}

}  // namespace

int
main()
{
    run_code(HgpCode::make_hamming());
    run_code(BpcCode::make_default());
    std::printf("\nGLADIATOR derives each data qubit's pattern table from "
                "its own local circuit structure, so irregular degrees "
                "(3-8 checks per qubit) need no code-specific tuning.\n");
    return 0;
}
