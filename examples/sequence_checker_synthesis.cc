// Sequence-checker synthesis: from a code + noise model to the FPGA-ready
// Boolean expression and LUT budget (paper §4.4 + Appendix B).  This is
// the path a hardware team would take to deploy GLADIATOR on a real
// controller.

#include <cstdio>

#include "codes/surface_code.h"
#include "core/pattern_table.h"
#include "core/qm_minimizer.h"
#include "hw/fsm_model.h"
#include "hw/lut_model.h"
#include "util/prefix_code.h"

using namespace gld;

int
main()
{
    const int d = 11;
    const CssCode code = SurfaceCode::make(d);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, PatternScope::kBothTypes);
    const NoiseParams np = NoiseParams::standard(1e-3, 0.1);

    // Offline stage: build + label the error-propagation graph.
    const PatternTableSet tables = PatternTableSet::build(ctx, np, {}, false);

    // Uniform tagged representation across 2/3/4-bit classes.
    PrefixTagCodec codec(ctx.max_degree());
    std::vector<uint32_t> onset, dontcare;
    std::vector<uint8_t> used(1u << codec.tagged_bits(), 0);
    for (int c = 0; c < ctx.n_classes(); ++c) {
        const int k = ctx.classes()[c].k_obs;
        for (uint32_t pat = 0; pat < (1u << k); ++pat) {
            const uint32_t tagged = codec.encode(pat, k);
            if (used[tagged])
                continue;
            used[tagged] = 1;
            if (tables.is_leak(c, pat))
                onset.push_back(tagged);
        }
    }
    for (uint32_t x = 0; x < (1u << codec.tagged_bits()); ++x) {
        if (!used[x])
            dontcare.push_back(x);
    }

    const auto cubes =
        QmMinimizer::minimize(codec.tagged_bits(), onset, dontcare);
    std::printf("Sequence checker for %s (x4..x0 = tagged pattern bits):\n\n",
                code.name().c_str());
    std::printf("%s\n\n", QmMinimizer::to_string(cubes, 5).c_str());
    std::printf("Flagged tagged patterns: %zu; product terms after "
                "Quine-McCluskey: %zu; pattern LUTs: %d\n",
                onset.size(), cubes.size(),
                LutModel::dnf_luts(cubes, codec.tagged_bits()));

    // Deployment budget: replicate checkers to meet the 100 ns deadline.
    const LutReport report = LutModel::gladiator(d);
    std::printf("\nDeployment at d=%d: %d checker(s) x %d LUTs = %d LUTs "
                "per logical qubit (ERASER FSM model: %d LUTs, %.1fx "
                "more).\n",
                d, report.checkers, report.luts_per_checker, report.total,
                EraserFsmModel::luts(d),
                static_cast<double>(EraserFsmModel::luts(d)) / report.total);

    // Sanity: the DNF agrees with the table on every real pattern.
    long checked = 0;
    for (int c = 0; c < ctx.n_classes(); ++c) {
        const int k = ctx.classes()[c].k_obs;
        for (uint32_t pat = 0; pat < (1u << k); ++pat) {
            const bool dnf = QmMinimizer::eval(cubes, codec.encode(pat, k));
            if (dnf != tables.is_leak(c, pat)) {
                std::printf("MISMATCH at class %d pattern %u\n", c, pat);
                return 1;
            }
            ++checked;
        }
    }
    std::printf("\nVerified: minimized logic matches the lookup tables on "
                "all %ld class patterns.\n",
                checked);
    return 0;
}
