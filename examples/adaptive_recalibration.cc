// Adaptive recalibration scenario (paper §4.3): device noise drifts over
// time; GLADIATOR rebuilds only the edge weights of its error-propagation
// graph and relabels the pattern tables, adapting the flagged set without
// touching the graph structure or the hardware datapath.

#include <cstdio>

#include "codes/surface_code.h"
#include "core/mobility.h"
#include "core/pattern_table.h"
#include "core/policy_gladiator.h"
#include "runtime/experiment.h"
#include "sim/frame_sim.h"
#include "util/config.h"

using namespace gld;

int
main()
{
    const CssCode code = SurfaceCode::make(7);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, PatternScope::kBothTypes);

    std::printf("Device drift scenario: leakage ratio lr sweeps from 0.01 "
                "to 1.0.\n\n");
    std::printf("%-8s %-22s %-22s\n", "lr", "stale table (lr=0.1)",
                "recalibrated table");
    std::printf("%-8s %-10s %-10s %-10s %-10s\n", "", "FP/shot", "FN/shot",
                "FP/shot", "FN/shot");

    const NoiseParams calib_np = NoiseParams::standard(1e-3, 0.1);
    for (double lr : {0.01, 0.1, 1.0}) {
        const NoiseParams true_np = NoiseParams::standard(1e-3, lr);
        ExperimentConfig cfg;
        cfg.np = true_np;
        cfg.rounds = 70;
        cfg.shots = BenchConfig::shots(200);
        cfg.threads = BenchConfig::threads();
        cfg.backend = backend_from_env();
        cfg.batch_words = batch_words_from_env();
        cfg.leakage_sampling = true;
        ExperimentRunner runner(ctx, cfg);
        // Stale: tables built for the old calibration point.
        const Metrics stale =
            runner.run(PolicyZoo::gladiator(true, calib_np));
        // Recalibrated: tables rebuilt for the current noise.
        const Metrics fresh =
            runner.run(PolicyZoo::gladiator(true, true_np));
        std::printf("%-8.2f %-10.2f %-10.2f %-10.2f %-10.2f\n", lr,
                    stale.fp_per_shot(), stale.fn_per_shot(),
                    fresh.fp_per_shot(), fresh.fn_per_shot());
    }

    // Mobility probing decides open- vs closed-loop deployment (§7.6).
    std::printf("\nMobility probe (decides open- vs closed-loop "
                "deployment):\n");
    for (double mob : {0.01, 0.2}) {
        NoiseParams np = NoiseParams::standard(1e-3, 1.0);
        np.mobility = mob;
        auto tables = std::make_shared<const PatternTableSet>(
            PatternTableSet::build(ctx, np, {}, false));
        GladiatorPolicy policy(ctx, tables, true);
        MobilityEstimator est(ctx);
        LeakFrameSim sim(code, rc, np, 11);
        Rng shot_rng(3);
        LrcSchedule sched;
        for (int shot = 0; shot < 50; ++shot) {
            sim.reset_shot();
            policy.begin_shot();
            sched.clear();
            sim.inject_data_leak(
                static_cast<int>(shot_rng.uniform_int(code.n_data())));
            for (int r = 0; r < 40; ++r) {
                const RoundResult rr = sim.run_round(sched);
                policy.observe(r, rr, &sched);
                est.observe(sched.data_qubits, rr);
            }
        }
        std::printf("  mobility %.0f%%: conditional co-leak rate %.4f over "
                    "%ld flags\n",
                    mob * 100, est.conditional_rate(), est.samples());
    }
    std::printf("\nRecalibration = rebuild weights + relabel; the graph "
                "structure and the FPGA checker stay fixed.\n");
    return 0;
}
