// gld_campaign — the campaign subsystem's command-line driver.
//
// A campaign is a declarative sweep manifest (JSON, see `init`) expanded
// into deterministic jobs; each job's RNG streams are partitioned across
// N shards, shards run anywhere/anytime (results checkpoint to files and
// resume for free), and `merge` reassembles per-stream partials in stream
// order — bit-identical to running every job single-process.
//
//   gld_campaign init                              > spec.json
//   gld_campaign plan   --spec spec.json --shards 3
//   gld_campaign run    --spec spec.json --shard 0/3 --out results/
//   gld_campaign run    --spec spec.json --shard 1/3 --out results/
//   gld_campaign run    --spec spec.json --shard 2/3 --out results/
//   gld_campaign merge  --spec spec.json --shards 3  --out results/
//   gld_campaign report --spec spec.json --out results/
//   gld_campaign demo   --out /tmp/gld_demo   # end-to-end self-check

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/registry.h"
#include "campaign/verify.h"
#include "io/serialize.h"
#include "util/table.h"

using namespace gld;
using campaign::CampaignSpec;
using campaign::JobSpec;

namespace {

int
usage(const char* argv0)
{
    // The backend list comes from the one kBackendTable behind
    // known_backend_names(): registering a backend updates this help
    // text, the error messages and the factory together — no
    // hand-duplicated name or cost strings in the CLI.
    std::fprintf(
        stderr,
        "usage: %s <command> [options]\n"
        "\n"
        "commands:\n"
        "  init                 print an example campaign spec to stdout\n"
        "  plan                 expand the grid; show jobs and the\n"
        "                       cost-balanced (LPT) shard loads\n"
        "  run                  run one shard, writing result files\n"
        "  merge                merge all shards' results (stream order)\n"
        "  report               print the aggregated per-job table\n"
        "  demo                 tiny built-in campaign: run 3 shards,\n"
        "                       merge, verify vs single-process, report\n"
        "  verify               cross-backend referee: run the grid on a\n"
        "                       reference + candidate backends, compare\n"
        "                       bit-exactly (same RNG contract) or by\n"
        "                       z-tests at --alpha; nonzero exit on any\n"
        "                       confirmed mismatch\n"
        "  status               live fleet progress: per-shard heartbeat\n"
        "                       table + aggregated shots/s and stage\n"
        "                       split (reads the progress JSONL files a\n"
        "                       telemetry-enabled run appends to)\n"
        "  heatmap              merge each job's per-qubit x per-round\n"
        "                       leakage heatmap across shards (needs a\n"
        "                       run with --heatmap) and write\n"
        "                       <name>.job####.heatmap.json files\n"
        "  calibrate            aggregate measured shots/second per\n"
        "                       (backend, code) from the telemetry files\n"
        "                       into a calibration JSON for plan/run\n"
        "                       --calibration\n"
        "\n"
        "options:\n"
        "  --spec <file>        campaign spec JSON (plan/run/merge/report;\n"
        "                       verify uses a tiny built-in grid if absent)\n"
        "  --shard <i>/<N>      this shard's index / total shards\n"
        "                       (run; verify: run this shard of every arm\n"
        "                       and exit without refereeing)\n"
        "  --shards <N>         total shards (plan/merge/verify)\n"
        "  --out <dir>          result directory (default: ./campaign_out)\n"
        "  --threads <T>        worker threads per job (default: auto)\n"
        "  -j <N>               jobs run concurrently (run/demo/verify;\n"
        "                       default 1)\n"
        "  --backend <name>     simulation backend: %s\n"
        "                       (overrides the spec; changes every job's\n"
        "                       config hash, so results never mix)\n"
        "  --batch-words <K>    batch width in 64-lane words, 1..%d\n"
        "                       (overrides the spec; sets the scheduler\n"
        "                       block to K*64 shots, so like --backend it\n"
        "                       changes every job's config hash)\n"
        "  --noise-sampling <m> noise sampling mode: %s\n"
        "                       (overrides the spec; sparse redraws the\n"
        "                       batch backends' randomness event-wise, so\n"
        "                       like --backend it changes every job's\n"
        "                       config hash; scalar backends ignore it)\n"
        "  --no-telemetry       disable the telemetry side channel (run/\n"
        "                       demo; results are bit-identical either\n"
        "                       way — telemetry only adds stage timers,\n"
        "                       progress heartbeats and export files)\n"
        "  --heatmap            also collect per-qubit x per-round\n"
        "                       leakage heatmaps (run; demo always does)\n"
        "  --calibration <file> measured-throughput calibration JSON (see\n"
        "                       `calibrate`): plan/run balance shards on\n"
        "                       measured seconds instead of the analytic\n"
        "                       cost model (never result-affecting)\n"
        "  -v                   verbose per-job progress\n"
        "\n"
        "verify options:\n"
        "  --reference <name>   reference backend (default: frame)\n"
        "  --candidates <a,b>   candidate backends (default: every other\n"
        "                       known backend)\n"
        "  --alpha <a>          family-wise false-positive budget for the\n"
        "                       statistical comparisons (default: 0.01,\n"
        "                       Sidak-corrected across the whole grid)\n"
        "  --bonferroni         Bonferroni correction instead of Sidak\n"
        "  --independent-seeds  salt every candidate arm's seeds: all\n"
        "                       comparisons become statistical (the\n"
        "                       null-calibration mode)\n"
        "  --inject-noise-scale <f>\n"
        "                       multiply candidate noise p by f — a\n"
        "                       deliberate fault the referee must flag\n"
        "                       (power calibration; default 1.0 = off)\n",
        argv0, known_backend_names().c_str(), kMaxBatchWords,
        known_noise_sampling_names().c_str());
    return 2;
}

struct Args {
    std::string command;
    std::string spec_path;
    std::string out_dir = "campaign_out";
    std::string backend;  ///< empty = use the spec's backend
    int batch_words = 0;  ///< 0 = use the spec's batch width
    std::string noise_sampling;  ///< empty = use the spec's mode
    int shard = -1;
    int n_shards = 1;
    int threads = 0;
    int jobs_parallel = 1;
    bool verbose = false;
    bool no_telemetry = false;
    bool heatmap = false;
    std::string calibration_path;
    // verify options.
    std::string reference = "frame";
    std::string candidates;  ///< comma-separated; empty = all others
    double alpha = 0.01;
    bool bonferroni = false;
    bool independent_seeds = false;
    double inject_noise_scale = 1.0;
};

Args
parse_args(int argc, char** argv)
{
    Args a;
    a.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto need_value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc)
                throw std::runtime_error(std::string(flag) +
                                         " needs a value");
            return argv[++i];
        };
        if (arg == "--spec") {
            a.spec_path = need_value("--spec");
        } else if (arg == "--out") {
            a.out_dir = need_value("--out");
        } else if (arg == "--threads") {
            a.threads = std::stoi(need_value("--threads"));
        } else if (arg == "-j" || arg == "--jobs") {
            a.jobs_parallel = std::stoi(need_value("-j"));
            if (a.jobs_parallel < 1)
                throw std::runtime_error("-j wants a positive job count");
        } else if (arg == "--backend") {
            a.backend = need_value("--backend");
            backend_from_name(a.backend);  // validate early
        } else if (arg == "--batch-words") {
            a.batch_words = std::stoi(need_value("--batch-words"));
            if (a.batch_words < 1 || a.batch_words > kMaxBatchWords)
                throw std::runtime_error(
                    "--batch-words wants 1.." +
                    std::to_string(kMaxBatchWords) + ", got " +
                    std::to_string(a.batch_words));
        } else if (arg == "--noise-sampling") {
            a.noise_sampling = need_value("--noise-sampling");
            noise_sampling_from_name(a.noise_sampling);  // validate early
        } else if (arg == "--shards") {
            a.n_shards = std::stoi(need_value("--shards"));
        } else if (arg == "--shard") {
            const std::string v = need_value("--shard");
            const size_t slash = v.find('/');
            if (slash == std::string::npos)
                throw std::runtime_error("--shard wants <i>/<N>, e.g. 0/3");
            a.shard = std::stoi(v.substr(0, slash));
            a.n_shards = std::stoi(v.substr(slash + 1));
        } else if (arg == "-v" || arg == "--verbose") {
            a.verbose = true;
        } else if (arg == "--no-telemetry") {
            a.no_telemetry = true;
        } else if (arg == "--heatmap") {
            a.heatmap = true;
        } else if (arg == "--calibration") {
            a.calibration_path = need_value("--calibration");
        } else if (arg == "--reference") {
            a.reference = need_value("--reference");
            backend_from_name(a.reference);  // validate early
        } else if (arg == "--candidates") {
            a.candidates = need_value("--candidates");
        } else if (arg == "--alpha") {
            a.alpha = std::stod(need_value("--alpha"));
        } else if (arg == "--bonferroni") {
            a.bonferroni = true;
        } else if (arg == "--independent-seeds") {
            a.independent_seeds = true;
        } else if (arg == "--inject-noise-scale") {
            a.inject_noise_scale =
                std::stod(need_value("--inject-noise-scale"));
        } else {
            throw std::runtime_error("unknown option " + arg);
        }
    }
    return a;
}

CampaignSpec
load_spec(const Args& a)
{
    if (a.spec_path.empty())
        throw std::runtime_error("--spec <file> is required for '" +
                                 a.command + "'");
    CampaignSpec spec = CampaignSpec::from_json(
        io::Json::parse(io::read_file(a.spec_path)));
    // A --backend / --batch-words / --noise-sampling override rewrites
    // every job's config (and hash), so run/merge/report agree as long
    // as they get the same flags.
    if (!a.backend.empty())
        spec.backend = backend_from_name(a.backend);
    if (a.batch_words > 0)
        spec.batch_words = a.batch_words;
    if (!a.noise_sampling.empty())
        spec.noise_sampling = noise_sampling_from_name(a.noise_sampling);
    return spec;
}

/** Loads --calibration when given; empty otherwise. */
campaign::Calibration
load_calibration(const Args& a)
{
    campaign::Calibration cal;
    if (!a.calibration_path.empty())
        cal = campaign::Calibration::from_json(
            io::Json::parse(io::read_file(a.calibration_path)));
    return cal;
}

CampaignSpec
example_spec()
{
    CampaignSpec spec;
    spec.name = "example";
    spec.seed = 0x5EED5EEDull;
    spec.shots = 240;
    spec.rounds = 30;
    spec.rng_streams = 8;
    spec.leakage_sampling = true;
    spec.compute_ler = false;
    spec.record_dlp_series = true;
    spec.codes = {"surface:3", "surface:5", "color:5"};
    spec.policies = {"eraser_m", "gladiator_m", "gladiator_d_m"};
    spec.noise = {NoiseParams::standard(1e-3, 0.1),
                  NoiseParams::standard(2e-3, 0.1)};
    return spec;
}

int
cmd_init()
{
    std::printf("%s\n", example_spec().to_json().dump(2).c_str());
    return 0;
}

int
cmd_plan(const Args& a)
{
    const CampaignSpec spec = load_spec(a);
    spec.validate();
    const std::vector<JobSpec> jobs = spec.expand();

    // The deterministic cost-balanced plan run_shard executes: per-job
    // qubit counts, per-stream cost units and the LPT stream->shard
    // assignment all come from this one object, so the printed loads are
    // exactly what `run --shard i/N` will do.  The per-job "Cost x"
    // column is backend_cost_factor straight from the backend table —
    // one source of truth, no factor strings duplicated here.
    const campaign::Calibration cal = load_calibration(a);
    const campaign::CampaignPlan plan = campaign::CampaignPlan::build(
        spec, a.n_shards, nullptr, cal.empty() ? nullptr : &cal);

    std::printf("campaign \"%s\" [%s backend]: %zu job(s), %d shard(s)%s\n\n",
                spec.name.c_str(), backend_name(spec.backend), jobs.size(),
                a.n_shards,
                cal.empty() ? "" : " — measured-throughput cost model");
    TablePrinter t({"Job", "Code", "Policy", "p", "lr", "Shots", "Rounds",
                    "Streams", "Cost x", "Seed"});
    for (const JobSpec& job : jobs) {
        t.add_row({std::to_string(job.index), job.code, job.policy,
                   TablePrinter::sci(job.cfg.np.p, 1),
                   TablePrinter::fmt(job.cfg.np.leak_ratio, 2),
                   std::to_string(job.cfg.shots),
                   std::to_string(job.cfg.rounds),
                   std::to_string(ExperimentRunner::n_streams(job.cfg)),
                   TablePrinter::fmt(
                       backend_cost_factor(
                           job.cfg.backend,
                           plan.job_qubits[static_cast<size_t>(
                               job.index)]),
                       job.cfg.backend == SimBackend::kBatchFrame ? 3 : 1),
                   io::u64_to_hex(job.cfg.seed)});
    }
    t.print();

    std::printf("\nper-shard load, greedy-LPT balanced (cost unit: %s):\n",
                cal.empty() ? "one frame-backend round of one shot"
                            : "one measured wall second");
    for (int shard = 0; shard < a.n_shards; ++shard) {
        std::printf("  shard %d/%d: %ld shot(s), %.2f cost unit(s)\n",
                    shard, a.n_shards,
                    plan.shard_shots[static_cast<size_t>(shard)],
                    plan.shard_cost_units[static_cast<size_t>(shard)]);
    }
    return 0;
}

int
cmd_run(const Args& a)
{
    if (a.shard < 0)
        throw std::runtime_error("run needs --shard <i>/<N>");
    const CampaignSpec spec = load_spec(a);
    spec.validate();
    const std::string pool_note =
        a.jobs_parallel > 1 ? " (" + std::to_string(a.jobs_parallel) +
                                  " jobs in parallel)"
                            : "";
    std::printf("campaign \"%s\" [%s backend]: running shard %d/%d into "
                "%s%s\n",
                spec.name.c_str(), backend_name(spec.backend), a.shard,
                a.n_shards, a.out_dir.c_str(), pool_note.c_str());
    const campaign::Calibration cal = load_calibration(a);
    campaign::RunShardOptions opt;
    opt.threads = a.threads;
    opt.verbose = a.verbose;
    opt.jobs_parallel = a.jobs_parallel;
    opt.telemetry = !a.no_telemetry;
    opt.heatmap = a.heatmap;
    opt.calibration = cal.empty() ? nullptr : &cal;
    const campaign::RunShardStats stats =
        campaign::run_shard(spec, a.shard, a.n_shards, a.out_dir, opt);
    std::printf("shard %d/%d done: %d job(s) run, %d resumed from "
                "checkpoint\n",
                a.shard, a.n_shards, stats.jobs_run, stats.jobs_resumed);
    return 0;
}

int
cmd_merge(const Args& a)
{
    const CampaignSpec spec = load_spec(a);
    const std::vector<Metrics> merged =
        campaign::merge_campaign(spec, a.n_shards, a.out_dir);
    std::printf("campaign \"%s\": merged %zu job(s) from %d shard(s) into "
                "%s\n",
                spec.name.c_str(), merged.size(), a.n_shards,
                a.out_dir.c_str());
    return 0;
}

int
cmd_report(const Args& a)
{
    const CampaignSpec spec = load_spec(a);
    std::printf("campaign \"%s\" — aggregated results\n\n",
                spec.name.c_str());
    // --shards N adds the telemetry columns (wall time, shots/s) when
    // the per-job telemetry exports are present.
    campaign::print_report(spec, a.out_dir, a.n_shards);
    return 0;
}

int
cmd_status(const Args& a)
{
    const CampaignSpec spec = load_spec(a);
    std::printf("campaign \"%s\" — fleet status (%d shard(s), %s)\n\n",
                spec.name.c_str(), a.n_shards, a.out_dir.c_str());
    campaign::print_status(spec, a.n_shards, a.out_dir);
    return 0;
}

int
cmd_heatmap(const Args& a)
{
    const CampaignSpec spec = load_spec(a);
    std::printf("campaign \"%s\" — merging leakage heatmaps from %d "
                "shard(s)\n",
                spec.name.c_str(), a.n_shards);
    const int written =
        campaign::write_job_heatmaps(spec, a.n_shards, a.out_dir);
    std::printf("%d heatmap file(s) written\n", written);
    return 0;
}

int
cmd_calibrate(const Args& a)
{
    const CampaignSpec spec = load_spec(a);
    const campaign::Calibration cal =
        campaign::Calibration::from_telemetry(spec, a.n_shards, a.out_dir);
    const std::string path =
        a.calibration_path.empty()
            ? a.out_dir + "/" + spec.name + ".calibration.json"
            : a.calibration_path;
    io::write_file_atomic(path, cal.to_json().dump(2) + "\n");
    std::printf("calibration from campaign \"%s\" (%d shard(s)):\n",
                spec.name.c_str(), a.n_shards);
    for (const auto& kv : cal.rates)
        std::printf("  %-28s %10.1f shots/s\n", kv.first.c_str(),
                    kv.second);
    std::printf("written: %s\n", path.c_str());
    return 0;
}

// End-to-end self-check: shard a tiny campaign 3 ways, merge, and demand
// bit-identity against the single-process ExperimentRunner::run() — the
// acceptance contract of the subsystem, runnable anywhere in seconds.
int
cmd_demo(const Args& a)
{
    CampaignSpec spec;
    spec.name = "demo";
    spec.seed = 0xD46005EEDull;
    spec.shots = 45;
    spec.rounds = 8;
    spec.rng_streams = 8;
    spec.leakage_sampling = true;
    spec.compute_ler = true;
    spec.record_dlp_series = true;
    spec.codes = {"surface:3"};
    spec.policies = {"eraser_m", "gladiator_m"};
    spec.noise = {NoiseParams::standard(1e-3, 0.1)};
    // The demo is self-contained (it writes its own spec), so unlike
    // run/merge/report — where an env override could silently relabel a
    // spec's results — it may take the backend from GLD_BACKEND.  This is
    // what lets CI gate the whole tier-1 suite on the non-default backend
    // with one environment variable.
    if (!a.backend.empty())
        spec.backend = backend_from_name(a.backend);
    else
        spec.backend = backend_from_env();
    // Same self-contained-spec reasoning for the batch width: the demo
    // may take it from GLD_BATCH_WORDS so the CI matrix can exercise
    // K>1 blocks end-to-end without touching any spec file.
    if (a.batch_words > 0)
        spec.batch_words = a.batch_words;
    else
        spec.batch_words = batch_words_from_env();
    // ...and for the noise sampling mode: GLD_NOISE_SAMPLING lets the CI
    // matrix run the whole tier-1 suite under sparse draws end-to-end.
    if (!a.noise_sampling.empty())
        spec.noise_sampling = noise_sampling_from_name(a.noise_sampling);
    else
        spec.noise_sampling = noise_sampling_from_env();

    const int n_shards = 3;
    io::make_dirs(a.out_dir);
    // The demo is a self-CHECK of the current binary: never resume
    // checkpoints a previous (possibly different) build left in out_dir —
    // the config hash fingerprints the configuration, not the code, so a
    // stale file would make the bit-identity referee below fail spuriously.
    campaign::remove_results(spec, n_shards, a.out_dir);
    const std::string spec_path = a.out_dir + "/demo.spec.json";
    io::write_file_atomic(spec_path, spec.to_json().dump(2) + "\n");
    std::printf("demo campaign: %s\n", spec_path.c_str());

    // Telemetry + heatmaps always on (unless --no-telemetry): the demo is
    // the fixture the `status` and `heatmap` smoke gates read, and the
    // bit-identity referee below doubles as the end-to-end proof that the
    // side channel leaves results untouched.
    campaign::RunShardOptions ropt;
    ropt.threads = a.threads;
    ropt.verbose = a.verbose;
    ropt.jobs_parallel = a.jobs_parallel;
    ropt.telemetry = !a.no_telemetry;
    ropt.heatmap = !a.no_telemetry;
    for (int shard = 0; shard < n_shards; ++shard) {
        const campaign::RunShardStats stats =
            campaign::run_shard(spec, shard, n_shards, a.out_dir, ropt);
        std::printf("  shard %d/%d: %d run, %d resumed\n", shard, n_shards,
                    stats.jobs_run, stats.jobs_resumed);
    }
    const std::vector<Metrics> merged =
        campaign::merge_campaign(spec, n_shards, a.out_dir);

    // Referee: the same jobs, single process.
    const std::vector<JobSpec> jobs = spec.expand();
    int mismatches = 0;
    for (size_t i = 0; i < jobs.size(); ++i) {
        auto code = campaign::make_code(jobs[i].code);
        const ExperimentRunner runner(code->ctx, jobs[i].cfg);
        const Metrics direct =
            runner.run(campaign::make_policy(jobs[i].policy,
                                             jobs[i].cfg.np));
        const bool same = io::metrics_to_json(direct).dump() ==
                          io::metrics_to_json(merged[i]).dump();
        std::printf("  job %04d [%s / %s]: shard-merge %s single-process\n",
                    jobs[i].index, jobs[i].code.c_str(),
                    jobs[i].policy.c_str(),
                    same ? "== (bit-identical)" : "!=");
        mismatches += same ? 0 : 1;
    }
    std::printf("\n");
    campaign::print_report(spec, a.out_dir, n_shards);
    if (mismatches > 0) {
        std::fprintf(stderr, "\nDEMO FAILED: %d job(s) diverged\n",
                     mismatches);
        return 1;
    }
    std::printf("\ndemo OK: shard-then-merge is bit-identical to a "
                "single-process run.\n");
    return 0;
}

// The cross-backend referee (see campaign/verify.h).  Without --spec it
// verifies a tiny built-in grid — the form the tier-1
// smoke_gld_campaign_verify gate runs: frame vs batch_frame must be
// BIT-identical, frame vs tableau must agree statistically.
int
cmd_verify(const Args& a)
{
    CampaignSpec grid;
    if (!a.spec_path.empty()) {
        grid = CampaignSpec::from_json(
            io::Json::parse(io::read_file(a.spec_path)));
    } else {
        grid.name = "verify";
        grid.seed = 0x7E51F15EEDull;
        grid.shots = 192;
        grid.rounds = 6;
        grid.rng_streams = 4;
        grid.leakage_sampling = true;
        grid.compute_ler = true;
        grid.record_dlp_series = true;
        grid.codes = {"surface:3"};
        grid.policies = {"eraser_m"};
        grid.noise = {NoiseParams::standard(2e-3, 0.5)};
    }
    // The grid's own backend field is ignored on purpose: the arms are
    // defined by --reference/--candidates, never by the spec or
    // GLD_BACKEND (an env override could silently relabel an arm).
    // --batch-words DOES apply: the batch width is shared by every arm
    // (it sets the common scheduler block size), so refereeing at K>1 is
    // exactly the bit-identity claim the K-word refactor must defend.
    if (a.batch_words > 0)
        grid.batch_words = a.batch_words;
    // --noise-sampling also applies grid-wide: under sparse the batch
    // backends move to their own RNG contracts, so e.g. batch_frame is
    // refereed STATISTICALLY against a genuine lockstep frame reference
    // — the qualification gate for the sparse sampler itself.
    if (!a.noise_sampling.empty())
        grid.noise_sampling = noise_sampling_from_name(a.noise_sampling);

    campaign::VerifyOptions opt;
    opt.reference = backend_from_name(a.reference);
    if (!a.candidates.empty()) {
        std::string rest = a.candidates;
        while (!rest.empty()) {
            const size_t comma = rest.find(',');
            opt.candidates.push_back(
                backend_from_name(rest.substr(0, comma)));
            rest = comma == std::string::npos ? ""
                                              : rest.substr(comma + 1);
        }
    }
    opt.alpha = a.alpha;
    opt.sidak = !a.bonferroni;
    opt.independent_seeds = a.independent_seeds;
    opt.inject_noise_scale = a.inject_noise_scale;
    opt.threads = a.threads;
    opt.jobs_parallel = a.jobs_parallel;
    opt.verbose = a.verbose;

    if (a.shard >= 0) {
        // Distributed mode: compute this shard of every arm and stop —
        // a final spec-identical `verify --shards N` merges and referees
        // (resuming these results, bit-identically).
        std::printf("verify \"%s\": running shard %d/%d of every arm "
                    "into %s\n",
                    grid.name.c_str(), a.shard, a.n_shards,
                    a.out_dir.c_str());
        campaign::verify_run_shard(grid, opt, a.shard, a.n_shards,
                                   a.out_dir);
        std::printf("shard %d/%d done (no referee: run verify without "
                    "--shard to judge)\n",
                    a.shard, a.n_shards);
        return 0;
    }

    std::printf("verify \"%s\": %d shard(s) into %s\n\n",
                grid.name.c_str(), a.n_shards, a.out_dir.c_str());
    const campaign::VerifyReport report =
        campaign::run_verify(grid, opt, a.n_shards, a.out_dir);
    campaign::print_verify_report(report);
    std::printf("\nverdict report: %s\n",
                campaign::verify_report_path(a.out_dir, grid).c_str());
    if (!report.pass) {
        std::fprintf(stderr, "\nVERIFY FAILED: confirmed mismatch "
                             "between backends\n");
        return 3;
    }
    std::printf("\nverify OK: every candidate agrees with the "
                "reference.\n");
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return usage(argv[0]);
    try {
        const Args a = parse_args(argc, argv);
        if (a.command == "init")
            return cmd_init();
        if (a.command == "plan")
            return cmd_plan(a);
        if (a.command == "run")
            return cmd_run(a);
        if (a.command == "merge")
            return cmd_merge(a);
        if (a.command == "report")
            return cmd_report(a);
        if (a.command == "demo")
            return cmd_demo(a);
        if (a.command == "verify")
            return cmd_verify(a);
        if (a.command == "status")
            return cmd_status(a);
        if (a.command == "heatmap")
            return cmd_heatmap(a);
        if (a.command == "calibrate")
            return cmd_calibrate(a);
        std::fprintf(stderr, "unknown command \"%s\"\n\n",
                     a.command.c_str());
        return usage(argv[0]);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "gld_campaign: %s\n", e.what());
        return 1;
    }
}
