// Figure 11: color-code data-leakage population and LRC usage over 100 QEC
// cycles (paper uses d=19; default here d=11 for wall-clock, scale with
// GLD_SHOTS_SCALE and the D env var).

#include <cstdlib>

#include "bench_common.h"

using namespace gld;
using namespace gld::bench;

int
main()
{
    const char* denv = std::getenv("GLD_COLOR_D");
    const int d = denv != nullptr ? std::atoi(denv) : 11;
    banner("Figure 11 - Color-code DLP and LRC usage",
           "color code d=" + std::to_string(d) +
               " (paper: d=19; set GLD_COLOR_D=19), 100 QEC cycles");

    auto bundle = color(d);
    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(1e-3, 0.1);
    cfg.rounds = 100;
    cfg.shots = BenchConfig::shots(100);
    cfg.leakage_sampling = true;
    cfg.record_dlp_series = true;
    apply_env(&cfg);
    ExperimentRunner runner(bundle->ctx, cfg);

    std::vector<NamedPolicy> policies = {
        {"ERASER+M", PolicyZoo::eraser(true)},
        {"GLADIATOR+M", PolicyZoo::gladiator(true, cfg.np)},
        {"GLADIATOR-D+M", PolicyZoo::gladiator_d(true, cfg.np)},
    };
    std::vector<Metrics> results;
    for (const auto& pol : policies)
        results.push_back(runner.run(pol.factory));

    TablePrinter t({"round", "ER+M DLP", "GL+M DLP", "GL-D+M DLP"});
    for (int r = 10; r <= 100; r += 10) {
        t.add_row({std::to_string(r),
                   TablePrinter::sci(results[0].dlp_curve()[r - 1], 2),
                   TablePrinter::sci(results[1].dlp_curve()[r - 1], 2),
                   TablePrinter::sci(results[2].dlp_curve()[r - 1], 2)});
    }
    t.print();

    TablePrinter u({"Policy", "LRC/round", "DLP mean", "vs ERASER+M"});
    for (size_t i = 0; i < policies.size(); ++i) {
        u.add_row({policies[i].name,
                   TablePrinter::fmt(results[i].lrc_per_shot() / cfg.rounds,
                                     3),
                   TablePrinter::sci(results[i].dlp_mean(), 2),
                   TablePrinter::fmt(results[0].lrc_per_shot() /
                                         results[i].lrc_per_shot(),
                                     2) +
                       "x fewer LRCs"});
    }
    u.print();
    std::printf("\nPaper Fig 11: the ER+M vs GL+M DLP gap widens with rounds "
                "on color codes; GLADIATOR uses ~1.5x fewer LRCs.\n");
    return 0;
}
