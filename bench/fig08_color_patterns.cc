// Figure 8: color-code LRC distribution across 3-bit patterns for
// ERASER+M, GLADIATOR+M and GLADIATOR-D+M, plus the flagged-pattern
// fractions of §5.2.

#include <map>

#include "bench_common.h"
#include "core/pattern_table.h"

using namespace gld;
using namespace gld::bench;

int
main()
{
    banner("Figure 8 - Color-code pattern distributions",
           "3-bit pattern LRCs + flagged counts, color code d=5");

    auto bundle = color(5);
    const NoiseParams np = NoiseParams::standard(1e-3, 0.1);

    // Flagged-pattern table comparison (§5.2).
    {
        const PatternTableSet single =
            PatternTableSet::build(bundle->ctx, np, {}, false);
        const PatternTableSet two =
            PatternTableSet::build(bundle->ctx, np, {}, true);
        TablePrinter t({"class width k", "ERASER (>=ceil(k/2)) of 2^k",
                        "GLADIATOR of 2^k", "GLADIATOR-D of 4^k"});
        for (int c = 0; c < bundle->ctx.n_classes(); ++c) {
            const int k = bundle->ctx.classes()[c].k_obs;
            t.add_row({std::to_string(k),
                       std::to_string(EraserPolicy::flagged_count(k)),
                       std::to_string(single.flagged_count(c)),
                       std::to_string(two.flagged_count(c))});
        }
        t.print();
        std::printf("Paper §5.2: 3-bit: ERASER flags 4/8, GLADIATOR 3; "
                    "two-round: GLADIATOR-D 11/64 vs ERASER 16/64.\n\n");
    }

    // Simulated LRC usage per policy on the color code.
    ExperimentConfig cfg;
    cfg.np = np;
    cfg.rounds = 100;
    cfg.shots = BenchConfig::shots(150);
    cfg.leakage_sampling = true;
    apply_env(&cfg);
    ExperimentRunner runner(bundle->ctx, cfg);
    TablePrinter t({"Policy", "LRC/shot", "FP/shot", "FN/shot"});
    std::vector<NamedPolicy> policies = {
        {"ERASER+M", PolicyZoo::eraser(true)},
        {"GLADIATOR+M", PolicyZoo::gladiator(true, np)},
        {"GLADIATOR-D+M", PolicyZoo::gladiator_d(true, np)},
    };
    for (const auto& pol : policies) {
        const Metrics m = runner.run(pol.factory);
        t.add_row({pol.name, TablePrinter::fmt(m.lrc_per_shot(), 2),
                   TablePrinter::fmt(m.fp_per_shot(), 2),
                   TablePrinter::fmt(m.fn_per_shot(), 2)});
    }
    t.print();
    std::printf("\nPaper Fig 8: deferred speculation (GLADIATOR-D) cuts the "
                "over-triggering that ERASER's heuristic suffers on the "
                "information-poor color-code patterns.\n");
    return 0;
}
