// Figure 3: leakage-injection characterization.  The paper ran these on IBM
// hardware via Qiskit Pulse (since retired); here the same circuits run on
// the simulator's calibrated gate-malfunction model (DESIGN.md
// substitution table): (a) a single CNOT with a leaked control produces
// ~50% bit flips on the target; (c) repeated CNOTs accumulate leakage when
// it is injected and stay clean when it is not.

#include "bench_common.h"
#include "sim/frame_sim.h"

using namespace gld;
using namespace gld::bench;

int
main()
{
    banner("Figure 3 - Leakage injection experiment",
           "leaked-CNOT bit-flip probability and leakage growth, 10k shots");

    // A minimal two-qubit 'code': one Z check so the round circuit is a
    // single CNOT + measure, mirroring the hardware experiment.
    CssCode pair("cnot_pair", 1, {{CheckType::kZ, {0}}});
    RoundCircuit rc(pair);

    const int shots = BenchConfig::shots(10000);

    // (a) One CNOT with the control leaked: target outcome distribution.
    {
        NoiseParams np;
        np.p = 0;
        np.leak_ratio = 0;
        np.mobility = 0.0;
        LeakFrameSim sim(pair, rc, np, 2025);
        int flips = 0;
        for (int s = 0; s < shots; ++s) {
            sim.reset_shot();
            sim.inject_data_leak(0);
            const RoundResult rr = sim.run_round({});
            flips += rr.meas_flip[0];
        }
        TablePrinter t({"Experiment", "P(target flipped)", "Paper"});
        t.add_row({"CNOT, control leaked",
                   TablePrinter::fmt(static_cast<double>(flips) / shots, 3),
                   "~0.50"});
        t.print();
    }

    // (c) K repeated CNOTs: leakage population with and without injection.
    {
        NoiseParams np = NoiseParams::standard(1e-3, 1.0);
        np.mobility = 0.1;
        std::printf("\nLeakage population after K CNOT rounds (10k shots):\n");
        TablePrinter t({"K", "with injection", "without injection"});
        for (int k : {1, 5, 10, 20, 40}) {
            int leaked_inj = 0, leaked_no = 0;
            LeakFrameSim sim(pair, rc, np, 7);
            for (int s = 0; s < shots / 10; ++s) {
                sim.reset_shot();
                sim.inject_data_leak(0);
                for (int r = 0; r < k; ++r)
                    sim.run_round({});
                leaked_inj += sim.n_data_leaked() + sim.n_check_leaked() > 0;
                sim.reset_shot();
                for (int r = 0; r < k; ++r)
                    sim.run_round({});
                leaked_no += sim.n_data_leaked() + sim.n_check_leaked() > 0;
            }
            const double n = shots / 10;
            t.add_row({std::to_string(k),
                       TablePrinter::fmt(leaked_inj / n, 3),
                       TablePrinter::fmt(leaked_no / n, 3)});
        }
        t.print();
        std::printf("\nPaper Fig 3(c): injected leakage persists/grows over "
                    "rounds; without injection the population stays low.\n");
    }
    return 0;
}
