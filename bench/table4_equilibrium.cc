// Table 4: leakage population at equilibrium across leakage ratios, and
// speculation inaccuracy across physical error rates (paper: d=11;
// default d=7 here — set GLD_T4_D=11).

#include <cstdlib>

#include "bench_common.h"

using namespace gld;
using namespace gld::bench;

int
main()
{
    const char* denv = std::getenv("GLD_T4_D");
    const int d = denv != nullptr ? std::atoi(denv) : 7;
    banner("Table 4 - Equilibrium leakage and speculation inaccuracy",
           "surface d=" + std::to_string(d) + " (paper: d=11)");

    auto bundle = surface(d);

    std::printf("Leakage equilibrium (DLP, tail average):\n");
    TablePrinter t({"Method", "lr=0.01", "lr=0.1", "lr=1.0"});
    std::vector<std::string> gl_row = {"GLADIATOR+M"}, er_row = {"ERASER+M"};
    for (double lr : {0.01, 0.1, 1.0}) {
        ExperimentConfig cfg;
        cfg.np = NoiseParams::standard(1e-3, lr);
        cfg.rounds = 40 * d;
        cfg.shots = BenchConfig::shots(40);
        cfg.leakage_sampling = true;
        cfg.record_dlp_series = true;
        apply_env(&cfg);
        ExperimentRunner runner(bundle->ctx, cfg);
        const Metrics gl = runner.run(PolicyZoo::gladiator(true, cfg.np));
        const Metrics er = runner.run(PolicyZoo::eraser(true));
        gl_row.push_back(TablePrinter::sci(gl.dlp_equilibrium(), 2));
        er_row.push_back(TablePrinter::sci(er.dlp_equilibrium(), 2));
    }
    t.add_row(gl_row);
    t.add_row(er_row);
    t.print();

    std::printf("\nSpeculation inaccuracy ((FN+FP) per qubit-round):\n");
    TablePrinter u({"Method", "p=1e-3", "p=1e-4"});
    std::vector<std::string> gl2 = {"GLADIATOR+M"}, er2 = {"ERASER+M"};
    for (double p : {1e-3, 1e-4}) {
        ExperimentConfig cfg;
        cfg.np = NoiseParams::standard(p, 0.1);
        cfg.rounds = 10 * d;
        cfg.shots = BenchConfig::shots(150);
        cfg.leakage_sampling = true;
        apply_env(&cfg);
        ExperimentRunner runner(bundle->ctx, cfg);
        gl2.push_back(TablePrinter::sci(
            runner.run(PolicyZoo::gladiator(true, cfg.np))
                .spec_inaccuracy(),
            2));
        er2.push_back(TablePrinter::sci(
            runner.run(PolicyZoo::eraser(true)).spec_inaccuracy(), 2));
    }
    u.add_row(gl2);
    u.add_row(er2);
    u.print();
    std::printf("\nPaper Table 4: GLADIATOR+M's equilibrium is ~1.2-1.9x "
                "below ERASER+M at every lr, and its inaccuracy ~2-3x lower "
                "at both error rates.\n");
    return 0;
}
