// Appendix B: minimized Boolean leakage-detection patterns.  Regenerates
// the DNF expressions for the surface-code 5-bit checker, the color code
// (3-bit + tag), the BPC code (7-bit tagged), and the color code with
// GLADIATOR-D, using the index-tagging + Quine-McCluskey methodology of
// Appendix B.1.

#include "bench_common.h"
#include "core/pattern_table.h"
#include "core/qm_minimizer.h"
#include "hw/lut_model.h"
#include "util/prefix_code.h"

using namespace gld;
using namespace gld::bench;

namespace {

void
emit(const std::string& title, const CodeBundle& bundle,
     const NoiseParams& np, bool two_round)
{
    const PatternTableSet tables =
        PatternTableSet::build(bundle.ctx, np, {}, two_round);
    const int max_bits =
        two_round ? 2 * bundle.ctx.max_degree() : bundle.ctx.max_degree();
    PrefixTagCodec codec(max_bits);
    std::vector<uint32_t> onset, dontcare;
    std::vector<uint8_t> used(1u << codec.tagged_bits(), 0);
    int flagged = 0, total = 0;
    for (int c = 0; c < bundle.ctx.n_classes(); ++c) {
        const int k = tables.bits(c);
        for (uint32_t pat = 0; pat < (1u << k); ++pat) {
            const uint32_t tagged = codec.encode(pat, k);
            if (used[tagged])
                continue;
            used[tagged] = 1;
            ++total;
            if (tables.is_leak(c, pat)) {
                onset.push_back(tagged);
                ++flagged;
            }
        }
    }
    for (uint32_t x = 0; x < (1u << codec.tagged_bits()); ++x) {
        if (!used[x])
            dontcare.push_back(x);
    }
    const auto cubes =
        QmMinimizer::minimize(codec.tagged_bits(), onset, dontcare);
    std::printf("-- %s --\n", title.c_str());
    std::printf("flagged %d of %d tagged patterns; %zu product terms; "
                "%d LUT6s\n",
                flagged, total, cubes.size(),
                LutModel::dnf_luts(cubes, codec.tagged_bits()));
    std::printf("%s\n\n",
                QmMinimizer::to_string(cubes, codec.tagged_bits()).c_str());
}

}  // namespace

int
main()
{
    banner("Appendix B - Boolean patterns for leakage detection",
           "minimized DNF for surface / color / BPC / color+GLADIATOR-D");

    const NoiseParams np = NoiseParams::standard(1e-3, 0.1);
    {
        auto b = surface(5);
        emit("Surface code, 5-bit tagged checker (Sec. 4.4)", *b, np, false);
    }
    {
        auto b = color(5);
        emit("Color code, 4-bit tagged checker (Appendix B.3)", *b, np,
             false);
    }
    {
        CodeBundle b(BpcCode::make_default());
        emit("BPC code, 7-bit tagged checker (Appendix B.2)", b, np, false);
    }
    {
        auto b = color(5);
        emit("Color code + GLADIATOR-D, two-round checker (Appendix B.4)",
             *b, np, true);
    }
    std::printf("Note: expressions differ in detail from the paper's "
                "(schedule- and calibration-dependent) but share the "
                "structure: small DNFs excluding weight-1 and "
                "consecutive-suffix patterns.\n");
    return 0;
}
