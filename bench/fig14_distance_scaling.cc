// Figure 14: total leakage events and total LRCs vs code distance
// (paper: d = 7, 11, 13, 17 for 100d cycles; defaults reduced for
// wall-clock — scale with GLD_SHOTS_SCALE / GLD_MAX_D).

#include <cstdlib>

#include "bench_common.h"

using namespace gld;
using namespace gld::bench;

int
main()
{
    const char* denv = std::getenv("GLD_MAX_D");
    const int max_d = denv != nullptr ? std::atoi(denv) : 13;
    banner("Figure 14 - Scaling with code distance",
           "total leakage and LRC counts for d up to " +
               std::to_string(max_d) + ", 20d rounds (paper: 100d)");

    const NoiseParams np = NoiseParams::standard(1e-3, 0.1);
    std::vector<NamedPolicy> policies = {
        {"ERASER+M", PolicyZoo::eraser(true)},
        {"GLADIATOR+M", PolicyZoo::gladiator(true, np)},
        {"IDEAL", PolicyZoo::ideal()},
    };

    TablePrinter leaks({"d", "ER+M leak-rounds/shot", "GL+M", "IDEAL"});
    TablePrinter lrcs({"d", "ER+M LRCs/shot", "GL+M", "IDEAL",
                       "ER/GL ratio"});
    for (int d = 7; d <= max_d; d += d < 11 ? 4 : 2) {
        auto bundle = surface(d);
        ExperimentConfig cfg;
        cfg.np = np;
        cfg.rounds = 20 * d;
        cfg.shots = BenchConfig::shots(d <= 7 ? 60 : 25);
        cfg.leakage_sampling = true;
        apply_env(&cfg);
        ExperimentRunner runner(bundle->ctx, cfg);
        std::vector<double> leak_tot, lrc_tot;
        for (const auto& pol : policies) {
            const Metrics m = runner.run(pol.factory);
            // Total leakage exposure: leaked-qubit-rounds per shot.
            leak_tot.push_back(m.dlp_mean() * bundle->code.n_data() *
                               cfg.rounds);
            lrc_tot.push_back(m.lrc_per_shot());
        }
        leaks.add_row({std::to_string(d), TablePrinter::fmt(leak_tot[0], 1),
                       TablePrinter::fmt(leak_tot[1], 1),
                       TablePrinter::fmt(leak_tot[2], 1)});
        lrcs.add_row({std::to_string(d), TablePrinter::fmt(lrc_tot[0], 1),
                      TablePrinter::fmt(lrc_tot[1], 1),
                      TablePrinter::fmt(lrc_tot[2], 1),
                      TablePrinter::fmt(lrc_tot[0] / lrc_tot[1], 2) + "x"});
    }
    std::printf("(a) Total leakage exposure:\n");
    leaks.print();
    std::printf("\n(b) Total LRCs utilized:\n");
    lrcs.print();
    std::printf("\nPaper Fig 14: total leakage grows with d even under the "
                "ideal policy (quadratic qubit/gate count); the ER-vs-GL "
                "LRC gap widens with distance.\n");
    return 0;
}
