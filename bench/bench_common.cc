#include "bench_common.h"

#include <cstdio>

namespace gld {
namespace bench {

void
banner(const std::string& title, const std::string& paper_ref)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("Shot scale: GLD_SHOTS_SCALE=%.2f (raise for tighter "
                "statistics); backend: GLD_BACKEND=%s; threads: "
                "GLD_THREADS=%d; batch width: GLD_BATCH_WORDS=%d\n\n",
                BenchConfig::scale(), backend_name(backend_from_env()),
                BenchConfig::threads(), batch_words_from_env());
}

void
apply_env(ExperimentConfig* cfg)
{
    cfg->threads = BenchConfig::threads();
    cfg->backend = backend_from_env();
    cfg->batch_words = batch_words_from_env();
}

std::vector<NamedPolicy>
paper_policies(const NoiseParams& np)
{
    return {
        {"Always-LRC", PolicyZoo::always_lrc()},
        {"Staggered", PolicyZoo::staggered()},
        {"M", PolicyZoo::mlr_only()},
        {"ERASER", PolicyZoo::eraser(false)},
        {"ERASER+M", PolicyZoo::eraser(true)},
        {"GLADIATOR+M", PolicyZoo::gladiator(true, np)},
        {"GLADIATOR-D+M", PolicyZoo::gladiator_d(true, np)},
        {"IDEAL", PolicyZoo::ideal()},
    };
}

}  // namespace bench
}  // namespace gld
