// Ablation bench for the offline-model design choices called out in
// DESIGN.md: labeling threshold theta, persistence prior, prior-round
// Pauli tails, and the second-order event cutoff — each evaluated by its
// effect on flagged-set size and simulated FP/FN.

#include "bench_common.h"
#include "core/pattern_table.h"

using namespace gld;
using namespace gld::bench;

namespace {

void
run_point(const CodeBundle& bundle, const NoiseParams& np,
          const SpecModelOptions& opt, const std::string& label,
          TablePrinter* t)
{
    const PatternTableSet tables =
        PatternTableSet::build(bundle.ctx, np, opt, false);
    int bulk_class = 0;
    for (int c = 0; c < bundle.ctx.n_classes(); ++c) {
        if (bundle.ctx.classes()[c].k_obs >
            bundle.ctx.classes()[bulk_class].k_obs)
            bulk_class = c;
    }
    ExperimentConfig cfg;
    cfg.np = np;
    cfg.rounds = 70;
    cfg.shots = BenchConfig::shots(150);
    cfg.leakage_sampling = true;
    apply_env(&cfg);
    ExperimentRunner runner(bundle.ctx, cfg);
    const Metrics m = runner.run(PolicyZoo::gladiator(true, np, opt));
    t->add_row({label,
                std::to_string(tables.flagged_count(bulk_class)) + "/16",
                TablePrinter::fmt(m.fp_per_shot(), 2),
                TablePrinter::fmt(m.fn_per_shot(), 2),
                TablePrinter::fmt(m.lrc_per_shot(), 1)});
}

}  // namespace

int
main()
{
    banner("Ablation - offline model design choices",
           "theta / persistence prior / prior tails / event order, "
           "surface d=7");

    auto bundle = surface(7);
    const NoiseParams np = NoiseParams::standard(1e-3, 0.1);

    std::printf("Labeling threshold theta (W_L > theta * W_NL):\n");
    TablePrinter t1({"theta", "flagged(bulk)", "FP/shot", "FN/shot",
                     "LRC/shot"});
    for (double theta : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        SpecModelOptions opt;
        opt.threshold = theta;
        run_point(*bundle, np, opt, TablePrinter::fmt(theta, 2), &t1);
    }
    t1.print();

    std::printf("\nPersistence prior (expected leaked lifetime, rounds):\n");
    TablePrinter t2({"lifetime", "flagged(bulk)", "FP/shot", "FN/shot",
                     "LRC/shot"});
    for (double life : {0.5, 2.0, 10.0, 50.0}) {
        SpecModelOptions opt;
        opt.persist_lifetime = life;
        run_point(*bundle, np, opt, TablePrinter::fmt(life, 1), &t2);
    }
    t2.print();

    std::printf("\nPrior-round Pauli tails in the single-round graph:\n");
    TablePrinter t3({"tails", "flagged(bulk)", "FP/shot", "FN/shot",
                     "LRC/shot"});
    for (bool tails : {false, true}) {
        SpecModelOptions opt;
        opt.include_prior_tails = tails;
        run_point(*bundle, np, opt, tails ? "on" : "off", &t3);
    }
    t3.print();

    std::printf("\nEvent-order cutoff (1st only vs 1st+2nd):\n");
    TablePrinter t4({"max order", "flagged(bulk)", "FP/shot", "FN/shot",
                     "LRC/shot"});
    for (int order : {1, 2}) {
        SpecModelOptions opt;
        opt.max_order = order;
        run_point(*bundle, np, opt, std::to_string(order), &t4);
    }
    t4.print();

    std::printf("\nReading: theta and the persistence prior trade FP vs FN "
                "around the default operating point; second-order events "
                "protect frequent two-error patterns from being flagged.\n");
    return 0;
}
