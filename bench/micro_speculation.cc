// Microbenchmarks (google-benchmark): online classification latency, table
// construction, simulator round throughput, and union-find decoding — the
// performance claims behind §4.4's "a few nanoseconds per syndrome".

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/pattern_table.h"
#include "decode/dem_builder.h"
#include "decode/union_find.h"
#include "sim/frame_sim.h"

using namespace gld;
using namespace gld::bench;

namespace {

const CodeBundle&
surface7()
{
    static CodeBundle bundle(SurfaceCode::make(7));
    return bundle;
}

void
BM_PatternLookup(benchmark::State& state)
{
    const CodeBundle& b = surface7();
    const NoiseParams np = NoiseParams::standard();
    const PatternTableSet tables =
        PatternTableSet::build(b.ctx, np, {}, false);
    std::vector<uint8_t> detector(b.code.n_checks(), 0);
    detector[3] = 1;
    detector[7] = 1;
    int q = 0;
    for (auto _ : state) {
        q = (q + 1) % b.code.n_data();
        const uint32_t pat = b.ctx.pattern_of(q, detector);
        benchmark::DoNotOptimize(
            tables.is_leak(b.ctx.class_of(q), pat));
    }
}
BENCHMARK(BM_PatternLookup);

void
BM_TableBuildSingleRound(benchmark::State& state)
{
    const CodeBundle& b = surface7();
    const NoiseParams np = NoiseParams::standard();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            PatternTableSet::build(b.ctx, np, {}, false));
    }
}
BENCHMARK(BM_TableBuildSingleRound);

void
BM_TableBuildTwoRound(benchmark::State& state)
{
    const CodeBundle& b = surface7();
    const NoiseParams np = NoiseParams::standard();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            PatternTableSet::build(b.ctx, np, {}, true));
    }
}
BENCHMARK(BM_TableBuildTwoRound);

void
BM_SimulatorRound(benchmark::State& state)
{
    const CodeBundle& b = surface7();
    LeakFrameSim sim(b.code, b.rc, NoiseParams::standard(), 1);
    LrcSchedule none;
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.run_round(none));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorRound);

void
BM_BackendThroughput(benchmark::State& state)
{
    // Shots/second per (backend, batch width K, threads, noise sampling,
    // decode) on a d=5 surface-code memory config — the honest
    // measurement behind the batch backends' campaign cost factors and
    // the K-width default.  Args: (backend enum, batch_words, threads,
    // noise_sampling enum, compute_ler).  The single-thread K=1 rows
    // keep the exact config of earlier recorded trajectory points; K>1
    // and threads>1 rows scale shots/streams so every scheduler block is
    // a FULL K*64-lane batch (a partial tail block would understate
    // wide-K throughput) and every thread has work.  The @sparse rows
    // measure the event-driven sampler against the lockstep rows of the
    // SAME record; the @ler row turns the union-find decoder on so the
    // decode stage is visible in the recorded stage split instead of
    // rounding to zero.  Run with --benchmark_filter=BackendThroughput.
    static CodeBundle bundle5(SurfaceCode::make(5));
    const CodeBundle& b = bundle5;
    const int batch_words = static_cast<int>(state.range(1));
    const int threads = static_cast<int>(state.range(2));
    const auto sampling = static_cast<NoiseSampling>(state.range(3));
    const bool with_ler = state.range(4) != 0;
    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard();
    cfg.rounds = 10;
    cfg.shots = 1024 * threads;
    cfg.batch_words = batch_words;
    cfg.rng_streams = cfg.shots / ExperimentRunner::shot_block(cfg);
    cfg.leakage_sampling = false;  // natural leakage, as a memory run
    cfg.threads = threads;
    cfg.backend = static_cast<SimBackend>(state.range(0));
    cfg.noise_sampling = sampling;
    cfg.compute_ler = with_ler;
    ExperimentRunner runner(b.ctx, cfg);
    // Telemetry rides along (pure side channel — the drift gate pins that
    // the measured Metrics are bit-identical with it attached) so the
    // recorded trajectory carries the sim/policy/decode/accounting wall
    // split, not just one shots/s number.
    telemetry::Collector collector;
    runner.set_telemetry(&collector);
    const PolicyFactory factory = PolicyZoo::no_lrc();
    for (auto _ : state)
        benchmark::DoNotOptimize(runner.run(factory));
    state.SetItemsProcessed(state.iterations() * cfg.shots);
    // Plain backend name at K=1/T=1/lockstep so the recorded
    // trajectory's labels stay comparable across PRs; decorated
    // otherwise.  @sparse and @ler fold into the trajectory's backend
    // key (scripts/bench_record.sh) so these rows never shadow the
    // lockstep sweep.
    std::string label = backend_name(cfg.backend);
    if (batch_words > 1)
        label += "@w" + std::to_string(batch_words);
    if (threads > 1)
        label += "@t" + std::to_string(threads);
    if (sampling != NoiseSampling::kLockstep)
        label += std::string("@") + noise_sampling_name(sampling);
    if (with_ler)
        label += "@ler";
    state.SetLabel(label);
    const telemetry::Record rec = collector.merged();
    const double total = static_cast<double>(rec.total_stage_ns());
    if (total > 0.0) {
        for (int s = 0; s < telemetry::kStageCount; ++s)
            state.counters[std::string("frac_") + telemetry::stage_name(s)] =
                benchmark::Counter(
                    static_cast<double>(rec.stage_ns[s]) / total);
    }
}
// The batch_frame K sweep's history, for whoever reads the trajectory:
// the record taken at 92ada21 showed K monotonically LOSING (335.8k at
// K=1 down to 282.3k at K=8) — that slope was per-block driver
// reconstruction + full-bank lane reseeding, which the worker-state
// reuse PR removed (a reused driver is reset, not rebuilt), and K=2/K=4
// now beat K=1 by ~30% single-threaded.  The residual K=8 falloff is a
// working-set cap, not a code bug: 512 lanes x 32 B of xoshiro state is
// a 16 KiB RNG bank swept at EVERY noise site, plus ~15 KiB of frame and
// flag words per round — past typical 32 KiB L1d, so the site sweeps
// evict the frames they interleave with.  Fixing it would mean tiling
// whole rounds per lane word through every state primitive; until then
// K=8 stays registered so the regression guard's K-sweep gate
// (scripts/bench_guard.py) keeps the cap honest, and chosen_batch_words
// records the K that actually wins.  Sparse sampling sidesteps the bank
// sweeps entirely (one scalar event stream), which is why its K=8 row
// barely pays the penalty.
BENCHMARK(BM_BackendThroughput)
    ->Args({static_cast<int>(SimBackend::kFrame), 1, 1, 0, 0})
    ->Args({static_cast<int>(SimBackend::kFrame), 1, 8, 0, 0})
    ->Args({static_cast<int>(SimBackend::kBatchFrame), 1, 1, 0, 0})
    ->Args({static_cast<int>(SimBackend::kBatchFrame), 2, 1, 0, 0})
    ->Args({static_cast<int>(SimBackend::kBatchFrame), 4, 1, 0, 0})
    ->Args({static_cast<int>(SimBackend::kBatchFrame), 8, 1, 0, 0})
    ->Args({static_cast<int>(SimBackend::kBatchFrame), 1, 8, 0, 0})
    ->Args({static_cast<int>(SimBackend::kBatchFrame), 4, 8, 0, 0})
    ->Args({static_cast<int>(SimBackend::kBatchFrame), 8, 8, 0, 0})
    // The sparse event sampler vs its own lockstep rows (same record,
    // same host): K=1 is the qualification ratio the perf trajectory
    // cites; K=8 shows how much of the wide-K cache penalty the
    // quiet-site fast path sidesteps.
    ->Args({static_cast<int>(SimBackend::kBatchFrame), 1, 1,
            static_cast<int>(NoiseSampling::kSparse), 0})
    ->Args({static_cast<int>(SimBackend::kBatchFrame), 8, 1,
            static_cast<int>(NoiseSampling::kSparse), 0})
    // Decode on (union-find per shot): the decode stage's wall share is
    // real in campaign configs with compute_ler, and this row keeps it
    // visible in the recorded stage split.
    ->Args({static_cast<int>(SimBackend::kBatchFrame), 1, 1, 0, 1})
    ->Args({static_cast<int>(SimBackend::kTableau), 1, 1, 0, 0})
    ->Args({static_cast<int>(SimBackend::kBatchTableau), 1, 1, 0, 0})
    ->Args({static_cast<int>(SimBackend::kBatchTableau), 4, 1, 0, 0})
    ->Args({static_cast<int>(SimBackend::kBatchTableau), 1, 1,
            static_cast<int>(NoiseSampling::kSparse), 0})
    ->Args({static_cast<int>(SimBackend::kBatchTableau), 1, 8, 0, 0})
    ->Args({static_cast<int>(SimBackend::kBatchTableau), 4, 8, 0, 0})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_RunnerThreadScaling(benchmark::State& state)
{
    // The chunked (stream x shot-block) scheduler's wall-clock vs thread
    // count at the default 32-stream config: items/s should keep rising
    // well past 8 threads (the old one-unit-per-stream scheduler's
    // plateau).  Run with --benchmark_filter=RunnerThreadScaling.
    const CodeBundle& b = surface7();
    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard();
    cfg.rounds = 10;
    cfg.shots = 512;
    cfg.leakage_sampling = true;
    cfg.threads = static_cast<int>(state.range(0));
    const ExperimentRunner runner(b.ctx, cfg);
    const PolicyFactory factory = PolicyZoo::eraser(true);
    for (auto _ : state)
        benchmark::DoNotOptimize(runner.run(factory));
    state.SetItemsProcessed(state.iterations() * cfg.shots);
}
BENCHMARK(BM_RunnerThreadScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->UseRealTime()->Unit(benchmark::kMillisecond);

void
BM_UnionFindDecode(benchmark::State& state)
{
    const CodeBundle& b = surface7();
    const int rounds = 21;
    DemBuilder dem(b.code, b.rc, NoiseParams::standard(), rounds);
    const DecodingGraph g = dem.build();
    UnionFindDecoder uf(g);
    Rng rng(5);
    std::vector<uint8_t> syndrome(g.n_nodes());
    for (int v = 0; v < g.n_nodes(); ++v)
        syndrome[v] = rng.bernoulli(0.02);
    for (auto _ : state)
        benchmark::DoNotOptimize(uf.decode(syndrome));
}
BENCHMARK(BM_UnionFindDecode);

void
BM_DemBuild(benchmark::State& state)
{
    const CodeBundle& b = surface7();
    for (auto _ : state) {
        DemBuilder dem(b.code, b.rc, NoiseParams::standard(), 21);
        benchmark::DoNotOptimize(dem.build());
    }
}
BENCHMARK(BM_DemBuild);

}  // namespace

BENCHMARK_MAIN();
