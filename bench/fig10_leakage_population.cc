// Figure 10 (and Fig 1(c)): data-leakage population vs QEC rounds for
// ERASER+M / GLADIATOR+M / GLADIATOR-D+M / IDEAL with leakage sampling.

#include "bench_common.h"

using namespace gld;
using namespace gld::bench;

namespace {

void
run_panel(int d, double lr, int rounds, int shots)
{
    std::printf("-- surface d=%d, lr=%.2g, %d rounds --\n", d, lr, rounds);
    auto bundle = surface(d);
    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(1e-3, lr);
    cfg.rounds = rounds;
    cfg.shots = shots;
    cfg.leakage_sampling = true;
    cfg.record_dlp_series = true;
    apply_env(&cfg);
    ExperimentRunner runner(bundle->ctx, cfg);

    std::vector<NamedPolicy> policies = {
        {"ERASER+M", PolicyZoo::eraser(true)},
        {"GLADIATOR+M", PolicyZoo::gladiator(true, cfg.np)},
        {"GLADIATOR-D+M", PolicyZoo::gladiator_d(true, cfg.np)},
        {"IDEAL", PolicyZoo::ideal()},
    };
    TablePrinter t({"round", policies[0].name, policies[1].name,
                    policies[2].name, policies[3].name});
    std::vector<std::vector<double>> curves;
    std::vector<double> final_dlp;
    for (const auto& pol : policies) {
        const Metrics m = runner.run(pol.factory);
        curves.push_back(m.dlp_curve());
        final_dlp.push_back(m.dlp_equilibrium());
    }
    for (int r = rounds / 10; r <= rounds; r += rounds / 10) {
        std::vector<std::string> row = {std::to_string(r)};
        for (const auto& c : curves)
            row.push_back(TablePrinter::sci(c[r - 1], 2));
        t.add_row(row);
    }
    t.print();
    std::printf("Equilibrium DLP: ER+M %.3e, GL+M %.3e (%.2fx), GL-D+M %.3e "
                "(%.2fx), IDEAL %.3e\n\n",
                final_dlp[0], final_dlp[1], final_dlp[0] / final_dlp[1],
                final_dlp[2], final_dlp[0] / final_dlp[2], final_dlp[3]);
}

}  // namespace

int
main()
{
    banner("Figure 10 / 1(c) - Data leakage population vs rounds",
           "DLP for ER+M / GL+M / GL-D+M / IDEAL; d=7 & d=11, lr=0.1 & 1");

    run_panel(7, 0.1, 300, BenchConfig::shots(120));
    run_panel(7, 1.0, 300, BenchConfig::shots(120));
    run_panel(11, 0.1, 500, BenchConfig::shots(40));

    std::printf("Paper Fig 10: GLADIATOR variants hold the population below "
                "ERASER+M (1.47-1.73x at d=11 over 100d rounds); IDEAL is "
                "the floor; at lr=1 a crossover appears at 100-200 rounds.\n");
    return 0;
}
