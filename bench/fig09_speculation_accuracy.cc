// Figure 9: False Negative (FN), False Positive (FP) and LRC counts for the
// policy lineup on the distance-7 surface code with p = 1e-3, pl = 1e-4.
//
// Ported onto the campaign subsystem: the sweep is a CampaignSpec whose
// jobs run through run_shard/merge_campaign, so this generator is
// resumable (re-running skips up-to-date jobs via the checkpoint files in
// GLD_CAMPAIGN_OUT, default ./fig09_campaign) and shardable — with
// GLD_CAMPAIGN_SHARDS=N this binary uses the N-shard plan: run
//   gld_campaign run --spec fig09_campaign/fig09.spec.json
//       --shard i/N --out fig09_campaign
// on N machines first, collect the result files into the out dir, and
// the resume check skips those shards here instead of recomputing them
// (any missing shard is computed locally).  Changing GLD_SHOTS_SCALE
// changes the per-job config hash, so stale checkpoints are recomputed
// automatically.

#include <algorithm>
#include <cstdlib>

#include "bench_common.h"
#include "campaign/campaign.h"
#include "io/json.h"

using namespace gld;
using namespace gld::bench;

int
main()
{
    banner("Figure 9 - Speculation accuracy and LRC usage",
           "FN/FP/LRC counts, surface code d=7, p=1e-3, lr=0.1");

    // The sweep as a campaign grid: one code, one noise point, the
    // speculation-policy lineup.  Policy order fixes job order.
    campaign::CampaignSpec spec;
    spec.name = "fig09";
    spec.seed = 0x5EED5EEDull;
    spec.shots = BenchConfig::shots(300);
    spec.rounds = 70;  // 10d, as in the paper's Fig 12 horizon
    spec.leakage_sampling = true;
    spec.backend = backend_from_env();
    spec.batch_words = batch_words_from_env();
    spec.codes = {"surface:7"};
    spec.noise = {NoiseParams::standard(1e-3, 0.1)};
    // One paired list: registry name + the paper's display name, so the
    // two cannot drift apart when the lineup is edited.
    const std::vector<std::pair<std::string, std::string>> lineup = {
        {"eraser", "ERASER"},
        {"gladiator", "GLADIATOR"},
        {"gladiator_d", "GLADIATOR-D"},
        {"eraser_m", "ERASER+M"},
        {"gladiator_m", "GLADIATOR+M"},
        {"gladiator_d_m", "GLADIATOR-D+M"},
    };
    for (const auto& entry : lineup)
        spec.policies.push_back(entry.first);

    const char* env_out = std::getenv("GLD_CAMPAIGN_OUT");
    const std::string out_dir =
        env_out != nullptr ? env_out : "fig09_campaign";
    const char* env_shards = std::getenv("GLD_CAMPAIGN_SHARDS");
    const int n_shards =
        env_shards != nullptr ? std::max(1, std::atoi(env_shards)) : 1;
    io::make_dirs(out_dir);
    io::write_file_atomic(out_dir + "/fig09.spec.json",
                          spec.to_json().dump(2) + "\n");
    // The config hash fingerprints the configuration, not the binary:
    // GLD_CAMPAIGN_FRESH=1 (the CTest crash-gate environment) discards
    // checkpoints so the CURRENT build is what actually executes.
    const char* fresh = std::getenv("GLD_CAMPAIGN_FRESH");
    if (fresh != nullptr && fresh[0] == '1')
        campaign::remove_results(spec, n_shards, out_dir);
    // Every shard of the plan runs here unless its result file is
    // already present and valid — i.e. shards computed elsewhere with
    // `gld_campaign run --shard i/N` are resumed, not recomputed.
    for (int shard = 0; shard < n_shards; ++shard)
        campaign::run_shard(spec, shard, n_shards, out_dir,
                            BenchConfig::threads());
    const std::vector<Metrics> results =
        campaign::merge_campaign(spec, n_shards, out_dir);

    TablePrinter t({"Policy", "FN/shot", "FP/shot", "LRC/shot",
                    "FP vs ERASER+M", "LRC vs ERASER+M"});
    double er_fp = 0, er_lrc = 0;
    for (size_t i = 0; i < lineup.size(); ++i) {
        if (lineup[i].first == "eraser_m") {
            er_fp = results[i].fp_per_shot();
            er_lrc = results[i].lrc_per_shot();
        }
    }
    for (size_t i = 0; i < lineup.size(); ++i) {
        const Metrics& m = results[i];
        t.add_row({lineup[i].second, TablePrinter::fmt(m.fn_per_shot(), 2),
                   TablePrinter::fmt(m.fp_per_shot(), 2),
                   TablePrinter::fmt(m.lrc_per_shot(), 2),
                   er_fp > 0
                       ? TablePrinter::fmt(er_fp / m.fp_per_shot(), 2) + "x"
                       : "-",
                   er_lrc > 0
                       ? TablePrinter::fmt(er_lrc / m.lrc_per_shot(), 2) + "x"
                       : "-"});
    }
    t.print();
    std::printf("\nCampaign checkpoints: %s (delete to force recompute)\n",
                out_dir.c_str());
    std::printf("Paper: GLADIATOR+M reduces FP 1.56x and LRCs 1.53x vs "
                "ERASER+M; GLADIATOR-D+M reduces FP 1.76x and LRCs 1.71x, "
                "with 1.16x/1.22x more FNs.\n");
    return 0;
}
