// Figure 9: False Negative (FN), False Positive (FP) and LRC counts for the
// policy lineup on the distance-7 surface code with p = 1e-3, pl = 1e-4.

#include "bench_common.h"

using namespace gld;
using namespace gld::bench;

int
main()
{
    banner("Figure 9 - Speculation accuracy and LRC usage",
           "FN/FP/LRC counts, surface code d=7, p=1e-3, lr=0.1");

    auto bundle = surface(7);
    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(1e-3, 0.1);
    cfg.rounds = 70;  // 10d, as in the paper's Fig 12 horizon
    cfg.shots = BenchConfig::shots(300);
    cfg.leakage_sampling = true;
    cfg.threads = BenchConfig::threads();
    ExperimentRunner runner(bundle->ctx, cfg);

    std::vector<NamedPolicy> policies = {
        {"ERASER", PolicyZoo::eraser(false)},
        {"GLADIATOR", PolicyZoo::gladiator(false, cfg.np)},
        {"GLADIATOR-D", PolicyZoo::gladiator_d(false, cfg.np)},
        {"ERASER+M", PolicyZoo::eraser(true)},
        {"GLADIATOR+M", PolicyZoo::gladiator(true, cfg.np)},
        {"GLADIATOR-D+M", PolicyZoo::gladiator_d(true, cfg.np)},
    };

    TablePrinter t({"Policy", "FN/shot", "FP/shot", "LRC/shot",
                    "FP vs ERASER+M", "LRC vs ERASER+M"});
    double er_fp = 0, er_lrc = 0;
    std::vector<Metrics> results;
    for (const auto& np : policies)
        results.push_back(runner.run(np.factory));
    for (size_t i = 0; i < policies.size(); ++i) {
        if (policies[i].name == "ERASER+M") {
            er_fp = results[i].fp_per_shot();
            er_lrc = results[i].lrc_per_shot();
        }
    }
    for (size_t i = 0; i < policies.size(); ++i) {
        const Metrics& m = results[i];
        t.add_row({policies[i].name, TablePrinter::fmt(m.fn_per_shot(), 2),
                   TablePrinter::fmt(m.fp_per_shot(), 2),
                   TablePrinter::fmt(m.lrc_per_shot(), 2),
                   er_fp > 0
                       ? TablePrinter::fmt(er_fp / m.fp_per_shot(), 2) + "x"
                       : "-",
                   er_lrc > 0
                       ? TablePrinter::fmt(er_lrc / m.lrc_per_shot(), 2) + "x"
                       : "-"});
    }
    t.print();
    std::printf("\nPaper: GLADIATOR+M reduces FP 1.56x and LRCs 1.53x vs "
                "ERASER+M; GLADIATOR-D+M reduces FP 1.76x and LRCs 1.71x, "
                "with 1.16x/1.22x more FNs.\n");
    return 0;
}
