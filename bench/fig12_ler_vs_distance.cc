// Figure 12: logical error rate vs code distance (d = 3, 5, 7 by default;
// the paper shows 5, 7, 9 — set GLD_MAX_D=9) for NO-LRC / Always-LRC /
// ERASER+M / GLADIATOR+M, plus the suppression factor Lambda.

#include <cstdlib>
#include <map>

#include "bench_common.h"

using namespace gld;
using namespace gld::bench;

int
main()
{
    const char* denv = std::getenv("GLD_MAX_D");
    const int max_d = denv != nullptr ? std::atoi(denv) : 7;
    banner("Figure 12 - LER vs code distance",
           "LER for NO-LRC / Always-LRC / ERASER+M / GLADIATOR+M, 10d "
           "rounds, p=1e-3, lr=0.1");

    const NoiseParams np = NoiseParams::standard(1e-3, 0.1);
    std::vector<NamedPolicy> policies = {
        {"NO-LRC", PolicyZoo::no_lrc()},
        {"Always-LRC", PolicyZoo::always_lrc()},
        {"ERASER+M", PolicyZoo::eraser(true)},
        {"GLADIATOR+M", PolicyZoo::gladiator(true, np)},
    };

    TablePrinter t({"d", "NO-LRC", "Always-LRC", "ERASER+M", "GLADIATOR+M"});
    std::map<std::string, std::map<int, double>> ler;
    for (int d = 3; d <= max_d; d += 2) {
        auto bundle = surface(d);
        ExperimentConfig cfg;
        cfg.np = np;
        cfg.rounds = 10 * d;
        cfg.shots = BenchConfig::shots(d <= 5 ? 1200 : 400);
        cfg.compute_ler = true;
        apply_env(&cfg);
        ExperimentRunner runner(bundle->ctx, cfg);
        std::vector<std::string> row = {std::to_string(d)};
        for (const auto& pol : policies) {
            const double e = runner.run(pol.factory).ler();
            ler[pol.name][d] = e;
            row.push_back(TablePrinter::sci(e, 2));
        }
        t.add_row(row);
    }
    t.print();

    std::printf("\nSuppression factor Lambda = LER(d) / LER(d+2):\n");
    TablePrinter l({"policy", "Lambda (avg)"});
    for (const auto& pol : policies) {
        double acc = 0;
        int n = 0;
        for (int d = 3; d + 2 <= max_d; d += 2) {
            const double a = ler[pol.name][d], b = ler[pol.name][d + 2];
            if (b > 0) {
                acc += a / b;
                ++n;
            }
        }
        l.add_row({pol.name, n > 0 ? TablePrinter::fmt(acc / n, 2) : "-"});
    }
    l.print();
    std::printf("\nPaper Fig 12: LER falls with d for all mitigated "
                "policies (Lambda ~3.7 for GLADIATOR+M vs 3.38 ERASER+M); "
                "NO-LRC *rises* with d as leakage accumulates.\n");
    return 0;
}
