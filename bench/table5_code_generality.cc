// Table 5: GLADIATOR-over-ERASER reduction factors across code families —
// LRC count, data-leakage population, and QEC-cycle (LRC-attributable
// latency) ratios for surface, color, HGP and BPC codes.

#include "bench_common.h"

using namespace gld;
using namespace gld::bench;

int
main()
{
    banner("Table 5 - Generality across QEC codes",
           "LRC / DLP / cycle-time reduction factors, 4 code families");

    struct Entry {
        std::string name;
        std::unique_ptr<CodeBundle> bundle;
    };
    std::vector<Entry> codes;
    codes.push_back({"Surface (d=7)", surface(7)});
    codes.push_back({"Color (d=7)", color(7)});
    codes.push_back(
        {"HGP (Hamming)",
         std::make_unique<CodeBundle>(HgpCode::make_hamming())});
    codes.push_back(
        {"BPC [[30,4]]",
         std::make_unique<CodeBundle>(BpcCode::make_default())});

    const NoiseParams np = NoiseParams::standard(1e-3, 0.1);
    const TimingModel tm;

    TablePrinter t({"Metric / Code", "Surface", "Color", "HGP", "BPC"});
    std::vector<std::string> lrc_row = {"LRCs"}, dlp_row = {"DLP"},
                             cyc_row = {"QEC Cycle Time"};
    for (auto& entry : codes) {
        ExperimentConfig cfg;
        cfg.np = np;
        cfg.rounds = 100;
        cfg.shots = BenchConfig::shots(150);
        cfg.leakage_sampling = true;
        apply_env(&cfg);
        ExperimentRunner runner(entry.bundle->ctx, cfg);
        const Metrics er = runner.run(PolicyZoo::eraser(true));
        const Metrics gl = runner.run(PolicyZoo::gladiator(true, np));
        const double lrc_ratio = er.lrc_per_shot() / gl.lrc_per_shot();
        const double dlp_ratio = er.dlp_mean() / gl.dlp_mean();
        // Table 5's cycle-time metric: LRC-attributable latency.
        const double cyc_ratio =
            tm.lrc_latency_ns(er.lrc_per_shot() / cfg.rounds) /
            tm.lrc_latency_ns(gl.lrc_per_shot() / cfg.rounds);
        lrc_row.push_back(TablePrinter::fmt(lrc_ratio, 2) + "x");
        dlp_row.push_back(TablePrinter::fmt(dlp_ratio, 2) + "x");
        cyc_row.push_back(TablePrinter::fmt(cyc_ratio, 2) + "x");
    }
    t.add_row(lrc_row);
    t.add_row(dlp_row);
    t.add_row(cyc_row);
    t.print();
    std::printf("\nPaper Table 5: LRC reductions 1.5x-3.9x (largest on HGP), "
                "DLP 1.02x-1.88x, cycle time tracks the LRC ratio — the "
                "abstract's 1.7x-3.9x QEC speedups.\n");
    return 0;
}
