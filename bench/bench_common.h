#ifndef GLD_BENCH_BENCH_COMMON_H_
#define GLD_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "codes/bpc_code.h"
#include "codes/color_code.h"
#include "codes/hgp_code.h"
#include "codes/surface_code.h"
#include "core/policy_eraser.h"
#include "core/policy_gladiator.h"
#include "core/policy_static.h"
#include "hw/timing_model.h"
#include "runtime/experiment.h"
#include "util/config.h"
#include "util/table.h"

namespace gld {
namespace bench {

/** A code + circuit + context bundle, kept alive together. */
struct CodeBundle {
    CssCode code;
    RoundCircuit rc;
    CodeContext ctx;

    explicit CodeBundle(CssCode c)
        : code(std::move(c)), rc(code),
          ctx(code, rc, CodeContext::default_scope(code))
    {
    }
};

inline std::unique_ptr<CodeBundle>
surface(int d)
{
    return std::make_unique<CodeBundle>(SurfaceCode::make(d));
}

inline std::unique_ptr<CodeBundle>
color(int d)
{
    return std::make_unique<CodeBundle>(ColorCode::make(d));
}

/** Prints the standard bench banner with shot scaling info. */
void banner(const std::string& title, const std::string& paper_ref);

/**
 * Applies the environment knobs every generator honours to a config:
 * threads from GLD_THREADS (default: hardware concurrency, so the bench
 * gates exercise the chunked scheduler at full width), the backend from
 * GLD_BACKEND (backend_from_env()) and the batch width from
 * GLD_BATCH_WORDS (batch_words_from_env()).  Shot counts stay per-bench
 * (BenchConfig::shots).
 */
void apply_env(ExperimentConfig* cfg);

/** Named policy entry for sweep tables. */
struct NamedPolicy {
    std::string name;
    PolicyFactory factory;
};

/** The standard policy lineup at a given noise point. */
std::vector<NamedPolicy> paper_policies(const NoiseParams& np);

}  // namespace bench
}  // namespace gld

#endif  // GLD_BENCH_BENCH_COMMON_H_
