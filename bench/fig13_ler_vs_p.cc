// Figure 13: logical error rate and LRC usage at p = 1e-3 vs p = 1e-4
// (surface d=5; LER at p=1e-4 needs many shots — scale up for precision).

#include "bench_common.h"

using namespace gld;
using namespace gld::bench;

int
main()
{
    banner("Figure 13 - Sensitivity to physical error rate",
           "LER + LRC usage at p=1e-3 and p=1e-4, surface d=5, lr=0.1");

    for (double p : {1e-3, 1e-4}) {
        const NoiseParams np = NoiseParams::standard(p, 0.1);
        auto bundle = surface(5);
        ExperimentConfig cfg;
        cfg.np = np;
        cfg.rounds = 50;
        cfg.shots = BenchConfig::shots(p < 5e-4 ? 2000 : 800);
        cfg.compute_ler = true;
        apply_env(&cfg);
        ExperimentRunner runner(bundle->ctx, cfg);

        std::printf("-- p = %.0e --\n", p);
        TablePrinter t({"Policy", "LER", "LRC/round", "Spec.inaccuracy"});
        std::vector<NamedPolicy> policies = {
            {"Always-LRC", PolicyZoo::always_lrc()},
            {"ERASER+M", PolicyZoo::eraser(true)},
            {"GLADIATOR+M", PolicyZoo::gladiator(true, np)},
            {"GLADIATOR-D+M", PolicyZoo::gladiator_d(true, np)},
        };
        for (const auto& pol : policies) {
            const Metrics m = runner.run(pol.factory);
            t.add_row({pol.name, TablePrinter::sci(m.ler(), 2),
                       TablePrinter::fmt(m.lrc_per_shot() / cfg.rounds, 3),
                       TablePrinter::sci(m.spec_inaccuracy(), 2)});
        }
        t.print();
        std::printf("\n");
    }
    std::printf("Paper Fig 13: both LER and LRC usage drop as p decreases; "
                "GLADIATOR adapts its table and keeps the LRC advantage at "
                "both error rates.\n");
    return 0;
}
