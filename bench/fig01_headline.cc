// Figure 1(b): headline comparison of GLADIATOR vs ERASER on the d=11
// surface code — false positives, false negatives, LRC utilization, and
// the resulting data-leakage population ratio of Fig 1(c).

#include "bench_common.h"

using namespace gld;
using namespace gld::bench;

int
main()
{
    banner("Figure 1(b) - GLADIATOR vs ERASER headline",
           "FP/FN/LRC + DLP ratios, surface code d=11, p=1e-3, lr=0.1");

    auto bundle = surface(11);
    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(1e-3, 0.1);
    cfg.rounds = 200;
    cfg.shots = BenchConfig::shots(60);
    cfg.leakage_sampling = true;
    apply_env(&cfg);
    ExperimentRunner runner(bundle->ctx, cfg);

    const Metrics er = runner.run(PolicyZoo::eraser(true));
    const Metrics gl = runner.run(PolicyZoo::gladiator(true, cfg.np));

    TablePrinter t({"Metric", "ERASER+M", "GLADIATOR+M", "Ratio (ER/GL)"});
    auto row = [&](const std::string& name, double e, double g) {
        t.add_row({name, TablePrinter::fmt(e, 3), TablePrinter::fmt(g, 3),
                   g > 0 ? TablePrinter::fmt(e / g, 2) + "x" : "-"});
    };
    row("FP per shot", er.fp_per_shot(), gl.fp_per_shot());
    row("FN per shot", er.fn_per_shot(), gl.fn_per_shot());
    row("LRCs per shot", er.lrc_per_shot(), gl.lrc_per_shot());
    row("DLP (mean)", er.dlp_mean() * 1e3, gl.dlp_mean() * 1e3);
    row("Spec. inaccuracy x1e3", er.spec_inaccuracy() * 1e3,
        gl.spec_inaccuracy() * 1e3);
    t.print();
    std::printf("\nPaper: 1.91x FP reduction, 1.73x lower data leakage "
                "population, ~2x fewer LRCs (d=11).\n");
    return 0;
}
