// Figure 5: LRCs inserted per observed 4-bit syndrome pattern, split by
// whether the data qubit was actually leaked (golden bar) or not (purple
// bar), for ERASER+M vs GLADIATOR+M on the d=7 surface code.

#include <map>

#include "bench_common.h"
#include "sim/frame_sim.h"
#include "util/prefix_code.h"

using namespace gld;
using namespace gld::bench;

namespace {

struct Histogram {
    // pattern -> (LRCs with leakage, LRCs without leakage)
    std::map<uint32_t, std::pair<long, long>> counts;
};

Histogram
run_policy(const CodeBundle& bundle, const NoiseParams& np, Policy* policy,
           int shots, int rounds)
{
    Histogram h;
    LeakFrameSim sim(bundle.code, bundle.rc, np, 99);
    Rng shot_rng(4242);
    LrcSchedule sched;
    for (int s = 0; s < shots; ++s) {
        sim.reset_shot();
        policy->begin_shot();
        sched.clear();
        sim.inject_data_leak(
            static_cast<int>(shot_rng.uniform_int(bundle.code.n_data())));
        for (int r = 0; r < rounds; ++r) {
            const RoundResult rr = sim.run_round(sched);
            policy->observe(r, rr, &sched);
            for (int q : sched.data_qubits) {
                if (bundle.ctx.degree_of(q) != 4)
                    continue;  // Fig 5 shows the 4-bit bulk patterns
                const uint32_t pat = bundle.ctx.pattern_of(q, rr.detector);
                if (sim.data_leaked(q))
                    ++h.counts[pat].first;
                else
                    ++h.counts[pat].second;
            }
        }
    }
    return h;
}

}  // namespace

int
main()
{
    banner("Figure 5 - Per-pattern LRC histogram",
           "LRCs by 4-bit pattern, with/without leakage, surface d=7");

    auto bundle = surface(7);
    const NoiseParams np = NoiseParams::standard(1e-3, 0.1);
    const int shots = BenchConfig::shots(400);
    const int rounds = 70;

    auto er_tables = PolicyZoo::eraser(true);
    auto gl_tables = PolicyZoo::gladiator(true, np);
    auto er = er_tables(bundle->ctx, 1);
    auto gl = gl_tables(bundle->ctx, 2);

    const Histogram he = run_policy(*bundle, np, er.get(), shots, rounds);
    const Histogram hg = run_policy(*bundle, np, gl.get(), shots, rounds);

    PrefixTagCodec codec(4);
    TablePrinter t({"pattern", "ER+M leaked", "ER+M clean", "GL+M leaked",
                    "GL+M clean"});
    long er_clean = 0, gl_clean = 0, er_all = 0, gl_all = 0;
    for (uint32_t pat = 1; pat < 16; ++pat) {
        const auto e = he.counts.count(pat) ? he.counts.at(pat)
                                            : std::pair<long, long>{0, 0};
        const auto g = hg.counts.count(pat) ? hg.counts.at(pat)
                                            : std::pair<long, long>{0, 0};
        er_clean += e.second;
        gl_clean += g.second;
        er_all += e.first + e.second;
        gl_all += g.first + g.second;
        t.add_row({codec.to_string(codec.encode(pat, 4)).substr(1),
                   std::to_string(e.first), std::to_string(e.second),
                   std::to_string(g.first), std::to_string(g.second)});
    }
    t.print();
    std::printf("\nUnnecessary (clean) LRCs: ERASER+M %ld vs GLADIATOR+M %ld "
                "(%.2fx reduction); total LRCs %ld vs %ld.\n",
                er_clean, gl_clean,
                gl_clean > 0 ? static_cast<double>(er_clean) / gl_clean : 0.0,
                er_all, gl_all);
    std::printf("Paper Fig 5: ERASER fires on frequent non-leakage patterns "
                "(e.g. 0011); GLADIATOR suppresses them.\n");
    return 0;
}
