// Table 3: LUTs per logical qubit on a Kintex UltraScale+ style fabric —
// GLADIATOR's replicated combinational checker vs ERASER's per-qubit FSM.

#include "bench_common.h"
#include "core/pattern_table.h"
#include "core/qm_minimizer.h"
#include "hw/fsm_model.h"
#include "hw/lut_model.h"
#include "util/prefix_code.h"

using namespace gld;
using namespace gld::bench;

int
main()
{
    banner("Table 3 - FPGA LUTs per logical qubit",
           "GLADIATOR vs ERASER LUT usage, d = 5..25");

    // Derive the actual minimized sequence-checker logic for the surface
    // code to confirm it fits the paper's 10-LUT checker budget.
    auto bundle = surface(5);
    const NoiseParams np = NoiseParams::standard(1e-3, 0.1);
    const PatternTableSet tables =
        PatternTableSet::build(bundle->ctx, np, {}, false);
    PrefixTagCodec codec(bundle->ctx.max_degree());
    std::vector<uint32_t> onset, dontcare;
    std::vector<uint8_t> is_code(1u << codec.tagged_bits(), 0);
    for (int c = 0; c < bundle->ctx.n_classes(); ++c) {
        const int k = bundle->ctx.classes()[c].k_obs;
        for (uint32_t pat = 0; pat < (1u << k); ++pat) {
            const uint32_t tagged = codec.encode(pat, k);
            is_code[tagged] = 1;
            if (tables.is_leak(c, pat))
                onset.push_back(tagged);
        }
    }
    for (uint32_t x = 0; x < (1u << codec.tagged_bits()); ++x) {
        if (!is_code[x])
            dontcare.push_back(x);  // unused tag codes
    }
    const auto cubes =
        QmMinimizer::minimize(codec.tagged_bits(), onset, dontcare);
    const int pattern_luts =
        LutModel::dnf_luts(cubes, codec.tagged_bits());
    std::printf("Minimized 5-bit sequence checker: %zu product terms, "
                "%d pattern LUT(s) + datapath => 10 LUTs/checker "
                "(paper's calibrated figure).\n\n",
                cubes.size(), pattern_luts);

    TablePrinter t({"Method", "d=5", "d=9", "d=13", "d=17", "d=21",
                    "d=25"});
    std::vector<std::string> g = {"GLADIATOR"}, e = {"ERASER"},
                             r = {"Relative Reduction"},
                             pub = {"ERASER (published)"};
    for (int d : {5, 9, 13, 17, 21, 25}) {
        const int gl = LutModel::gladiator(d).total;
        const int er = EraserFsmModel::luts(d);
        g.push_back(std::to_string(gl));
        e.push_back(std::to_string(er));
        pub.push_back(std::to_string(EraserFsmModel::published(d)));
        r.push_back(TablePrinter::fmt(static_cast<double>(er) / gl, 1) +
                    "x");
    }
    t.add_row(g);
    t.add_row(e);
    t.add_row(pub);
    t.add_row(r);
    t.print();
    std::printf("\nPaper Table 3: GLADIATOR 10..70 LUTs, ERASER 177..5393, "
                "17.7x-81.1x reduction.\n");
    return 0;
}
