// Figure 4(b): logical error rate of open-loop policies (Always-LRC,
// Staggered Always-LRC) vs the closed-loop ERASER+M across code distances.

#include "bench_common.h"

using namespace gld;
using namespace gld::bench;

int
main()
{
    banner("Figure 4(b) - Open-loop vs closed-loop LER",
           "LER for Always-LRC / Staggered / ERASER+M, surface d=3,5,7");

    const NoiseParams np = NoiseParams::standard(1e-3, 0.1);
    std::vector<NamedPolicy> policies = {
        {"Always-LRC", PolicyZoo::always_lrc()},
        {"Staggered", PolicyZoo::staggered()},
        {"ERASER+M", PolicyZoo::eraser(true)},
        {"GLADIATOR+M", PolicyZoo::gladiator(true, np)},
    };

    TablePrinter t({"d", "Always-LRC", "Staggered", "ERASER+M",
                    "GLADIATOR+M"});
    for (int d : {3, 5, 7}) {
        auto bundle = surface(d);
        ExperimentConfig cfg;
        cfg.np = np;
        cfg.rounds = 10 * d;
        cfg.shots = BenchConfig::shots(d <= 5 ? 1500 : 600);
        cfg.compute_ler = true;
        apply_env(&cfg);
        ExperimentRunner runner(bundle->ctx, cfg);
        std::vector<std::string> row = {std::to_string(d)};
        for (const auto& pol : policies)
            row.push_back(TablePrinter::sci(runner.run(pol.factory).ler(), 2));
        t.add_row(row);
    }
    t.print();
    std::printf("\nPaper Fig 4(b): Staggered narrows the open-loop gap but "
                "closed-loop (ERASER+M) stays ahead; Always-LRC is worst.\n");
    return 0;
}
