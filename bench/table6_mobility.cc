// Table 6: leakage-mobility regime classification via GLADIATOR's
// speculative flags + MLR co-occurrence.  The decision threshold is
// calibrated at the 5% mobility boundary (after Camps et al. [13]), so
// accuracy is ~50% exactly at the boundary and high away from it.

#include "bench_common.h"
#include "core/mobility.h"
#include "sim/frame_sim.h"

using namespace gld;
using namespace gld::bench;

namespace {

double
measure_conditional(const CodeBundle& bundle, double mobility, uint64_t seed)
{
    NoiseParams np = NoiseParams::standard(1e-3, 1.0);
    np.mobility = mobility;
    auto tables = std::make_shared<const PatternTableSet>(
        PatternTableSet::build(bundle.ctx, np, {}, false));
    GladiatorPolicy policy(bundle.ctx, tables, true);
    MobilityEstimator est(bundle.ctx);
    LeakFrameSim sim(bundle.code, bundle.rc, np, seed);
    Rng shot_rng(seed ^ 0xABCD);
    LrcSchedule sched;
    for (int shot = 0; shot < 40; ++shot) {
        sim.reset_shot();
        policy.begin_shot();
        sched.clear();
        sim.inject_data_leak(
            static_cast<int>(shot_rng.uniform_int(bundle.code.n_data())));
        for (int r = 0; r < 40; ++r) {
            const RoundResult rr = sim.run_round(sched);
            policy.observe(r, rr, &sched);
            est.observe(sched.data_qubits, rr);
        }
    }
    return est.conditional_rate();
}

}  // namespace

int
main()
{
    banner("Table 6 - Leakage mobility classification",
           "regime accuracy at mobility 1 / 2.5 / 5 / 6 / 9 %");

    auto bundle = surface(5);
    const int trials = BenchConfig::shots(20);

    // Calibration: the decision threshold is the median estimate at the 5%
    // boundary.
    std::vector<double> cal;
    for (int t = 0; t < trials; ++t)
        cal.push_back(measure_conditional(*bundle, 0.05, 1000 + t));
    std::sort(cal.begin(), cal.end());
    const double threshold = cal[cal.size() / 2];
    std::printf("Calibrated decision threshold (median at 5%% mobility): "
                "%.4f\n\n",
                threshold);

    TablePrinter t({"Mobility (%)", "True Regime", "Accuracy (%)",
                    "mean estimate"});
    for (double mob : {0.01, 0.025, 0.05, 0.06, 0.09}) {
        const bool truth_high = mob >= 0.05;
        int correct = 0;
        double mean = 0;
        for (int trial = 0; trial < trials; ++trial) {
            const double est =
                measure_conditional(*bundle, mob, 77000 + trial * 13);
            mean += est;
            const bool high = est > threshold;
            correct += high == truth_high;
        }
        t.add_row({TablePrinter::fmt(mob * 100, 1),
                   truth_high ? "High" : "Low",
                   TablePrinter::fmt(100.0 * correct / trials, 0),
                   TablePrinter::fmt(mean / trials, 4)});
    }
    t.print();
    std::printf("\nPaper Table 6: 100%% accuracy away from the boundary, "
                "50%% at exactly 5%% (the calibration point).\n");
    return 0;
}
