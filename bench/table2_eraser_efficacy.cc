// Table 2: leakage detection efficacy across the policy lineup — FN/FP/LRC
// rates plus the leakage population after 70 and 700 rounds.

#include "bench_common.h"

using namespace gld;
using namespace gld::bench;

int
main()
{
    banner("Table 2 - Leakage detection efficacy",
           "FN/FP/LRC rates + Leak-70 / Leak-700, surface d=7");

    auto bundle = surface(7);
    const NoiseParams np = NoiseParams::standard(1e-3, 0.1);

    std::vector<NamedPolicy> policies = {
        {"Always-LRC", PolicyZoo::always_lrc()},
        {"ERASER", PolicyZoo::eraser(false)},
        {"ERASER+M", PolicyZoo::eraser(true)},
        {"M", PolicyZoo::mlr_only()},
        {"Staggered", PolicyZoo::staggered()},
        {"GLADIATOR+M", PolicyZoo::gladiator(true, np)},
    };

    // Short horizon (70 rounds) for the rate metrics + Leak-70.
    ExperimentConfig cfg70;
    cfg70.np = np;
    cfg70.rounds = 70;
    cfg70.shots = BenchConfig::shots(250);
    cfg70.leakage_sampling = true;
    cfg70.record_dlp_series = true;
    apply_env(&cfg70);
    ExperimentRunner short_runner(bundle->ctx, cfg70);

    // Long horizon for Leak-700.
    ExperimentConfig cfg700 = cfg70;
    cfg700.rounds = 700;
    cfg700.shots = BenchConfig::shots(60);
    ExperimentRunner long_runner(bundle->ctx, cfg700);

    TablePrinter t({"Metric", "Always", "ER", "ER+M", "M", "Staggered",
                    "Ours"});
    std::vector<Metrics> m70, m700;
    for (const auto& pol : policies) {
        m70.push_back(short_runner.run(pol.factory));
        m700.push_back(long_runner.run(pol.factory));
    }
    auto row = [&](const std::string& name, auto getter) {
        std::vector<std::string> cells = {name};
        for (const Metrics& m : m70)
            cells.push_back(TablePrinter::fmt(getter(m), 3));
        t.add_row(cells);
    };
    row("FN /qubit/round x1e2",
        [](const Metrics& m) { return m.fn_per_round() * 100; });
    row("FP /qubit/round x1e2",
        [](const Metrics& m) { return m.fp_per_round() * 100; });
    row("LRCs /qubit/round x1e2",
        [](const Metrics& m) { return m.lrc_data_per_round() * 100; });
    {
        std::vector<std::string> cells = {"Leak-70 (x1e-3)"};
        for (const Metrics& m : m70)
            cells.push_back(TablePrinter::fmt(m.dlp_equilibrium() * 1e3, 2));
        t.add_row(cells);
        cells = {"Leak-700 (x1e-3)"};
        for (const Metrics& m : m700)
            cells.push_back(TablePrinter::fmt(m.dlp_equilibrium() * 1e3, 2));
        t.add_row(cells);
    }
    t.print();
    std::printf("\nPaper Table 2 shape: M has the worst FN (no data-qubit "
                "speculation); Staggered has the worst FP; Ours has the "
                "lowest FP/LRC and the lowest long-horizon leakage among "
                "speculative policies.\n");
    return 0;
}
