#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace gld {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next_u64() == b.next_u64();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng r(11);
    int hits = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.1);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.1, 0.005);
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng r(3);
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_FALSE(r.bernoulli(-1.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_TRUE(r.bernoulli(2.0));
}

TEST(Rng, UniformIntInRange)
{
    Rng r(5);
    std::set<uint32_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const uint32_t v = r.uniform_int(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng base(99);
    Rng s1 = base.split(1);
    Rng s2 = base.split(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += s1.next_u64() == s2.next_u64();
    EXPECT_LT(same, 2);
    // Splitting is deterministic and independent of the parent's position.
    Rng s1b = base.split(1);
    Rng s1c = Rng(99).split(1);
    EXPECT_EQ(s1b.next_u64(), s1c.next_u64());
}

TEST(Rng, BitIsBalanced)
{
    Rng r(13);
    int ones = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ones += r.bit();
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.01);
}

}  // namespace
}  // namespace gld
