// The Simulator interface contract, exercised identically against both
// backends (frame and tableau) THROUGH the interface — never through the
// concrete classes: noiseless syndrome determinism, injected-Pauli
// detector signatures, the classical leak-oracle semantics, and a full
// closed-loop experiment on the tableau backend via ExperimentRunner::run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "codes/color_code.h"
#include "codes/surface_code.h"
#include "metrics_test_util.h"
#include "runtime/experiment.h"
#include "sim/simulator.h"

namespace gld {
namespace {

using test::expect_metrics_identical;

constexpr SimBackend kBackends[] = {SimBackend::kFrame,
                                    SimBackend::kTableau,
                                    SimBackend::kBatchFrame,
                                    SimBackend::kBatchTableau};

NoiseParams
noiseless()
{
    NoiseParams np;
    np.p = 0.0;
    np.leak_ratio = 0.0;
    np.lrc_leak_prob = 0.0;
    return np;
}

struct Harness {
    CssCode code;
    RoundCircuit rc;

    explicit Harness(CssCode c) : code(std::move(c)), rc(code) {}
};

TEST(SimBackends, NamesRoundTrip)
{
    EXPECT_EQ(backend_from_name("frame"), SimBackend::kFrame);
    EXPECT_EQ(backend_from_name("tableau"), SimBackend::kTableau);
    EXPECT_EQ(backend_from_name("batch_frame"), SimBackend::kBatchFrame);
    EXPECT_EQ(backend_from_name("batch_tableau"),
              SimBackend::kBatchTableau);
    for (SimBackend b : kBackends)
        EXPECT_EQ(backend_from_name(backend_name(b)), b);
    EXPECT_THROW(backend_from_name("stim"), std::runtime_error);

    const Harness h(SurfaceCode::make(3));
    for (SimBackend b : kBackends) {
        const auto sim = make_simulator(b, h.code, h.rc, noiseless(), 1);
        EXPECT_EQ(sim->name(), backend_name(b));
    }
}

TEST(SimBackends, KnownBackendsCoverTheEnumAndTheNameList)
{
    const std::vector<SimBackend>& all = known_backends();
    ASSERT_EQ(all.size(), 4u);
    EXPECT_NE(std::find(all.begin(), all.end(), SimBackend::kBatchFrame),
              all.end());
    EXPECT_NE(std::find(all.begin(), all.end(), SimBackend::kBatchTableau),
              all.end());
    for (SimBackend b : kBackends)
        EXPECT_NE(std::find(all.begin(), all.end(), b), all.end());
    const std::string names = known_backend_names();
    for (SimBackend b : all)
        EXPECT_NE(names.find(backend_name(b)), std::string::npos)
            << names;
}

TEST(SimBackends, UnknownNameErrorListsTheKnownBackends)
{
    // The unhelpful-failure-mode fix: a typo'd backend name must name the
    // bad input AND every accepted name, wherever it enters the system.
    try {
        backend_from_name("stim");
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("\"stim\""), std::string::npos) << what;
        EXPECT_NE(what.find("known backends"), std::string::npos) << what;
        for (SimBackend b : kBackends)
            EXPECT_NE(what.find(backend_name(b)), std::string::npos)
                << what;
    }
}

TEST(SimBackends, BackendFromEnvNamesTheVariableOnBadValues)
{
    // Restore the caller's selection afterwards: CI runs whole test
    // binaries under GLD_BACKEND=tableau, and clobbering the variable
    // here would silently de-gate every later env-honouring test.
    const char* prev_raw = std::getenv("GLD_BACKEND");
    const std::string prev = prev_raw != nullptr ? prev_raw : "";

    ASSERT_EQ(setenv("GLD_BACKEND", "no-such-engine", /*overwrite=*/1), 0);
    try {
        backend_from_env();
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("GLD_BACKEND"), std::string::npos) << what;
        EXPECT_NE(what.find("no-such-engine"), std::string::npos) << what;
        EXPECT_NE(what.find("known backends"), std::string::npos) << what;
    }
    ASSERT_EQ(unsetenv("GLD_BACKEND"), 0);
    EXPECT_EQ(backend_from_env(), SimBackend::kFrame);  // unset = default

    if (prev_raw != nullptr) {
        ASSERT_EQ(setenv("GLD_BACKEND", prev.c_str(), 1), 0);
    }
}

TEST(SimBackends, NoiseSamplingNamesEnvAndContracts)
{
    // Name mapping round-trips, with the same helpful-failure contract
    // as the backend names.
    EXPECT_EQ(noise_sampling_from_name("lockstep"),
              NoiseSampling::kLockstep);
    EXPECT_EQ(noise_sampling_from_name("sparse"), NoiseSampling::kSparse);
    EXPECT_STREQ(noise_sampling_name(NoiseSampling::kLockstep), "lockstep");
    EXPECT_STREQ(noise_sampling_name(NoiseSampling::kSparse), "sparse");
    try {
        noise_sampling_from_name("dense");
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("\"dense\""), std::string::npos) << what;
        EXPECT_NE(what.find("lockstep"), std::string::npos) << what;
        EXPECT_NE(what.find("sparse"), std::string::npos) << what;
    }

    // GLD_NOISE_SAMPLING: unset = lockstep; bad values name the variable.
    const char* prev_raw = std::getenv("GLD_NOISE_SAMPLING");
    const std::string prev = prev_raw != nullptr ? prev_raw : "";
    ASSERT_EQ(unsetenv("GLD_NOISE_SAMPLING"), 0);
    EXPECT_EQ(noise_sampling_from_env(), NoiseSampling::kLockstep);
    ASSERT_EQ(setenv("GLD_NOISE_SAMPLING", "dense", 1), 0);
    try {
        noise_sampling_from_env();
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("GLD_NOISE_SAMPLING"),
                  std::string::npos)
            << e.what();
    }
    if (prev_raw != nullptr)
        ASSERT_EQ(setenv("GLD_NOISE_SAMPLING", prev.c_str(), 1), 0);
    else
        ASSERT_EQ(unsetenv("GLD_NOISE_SAMPLING"), 0);

    // RNG contracts: sparse moves ONLY the batch backends to new,
    // distinct contracts; the scalar backends ignore the mode — which is
    // exactly what makes (sparse grid, frame reference, batch candidate)
    // a statistical comparison against a genuine lockstep reference.
    const NoiseSampling L = NoiseSampling::kLockstep;
    const NoiseSampling S = NoiseSampling::kSparse;
    EXPECT_EQ(backend_rng_contract(SimBackend::kFrame, S),
              backend_rng_contract(SimBackend::kFrame, L));
    EXPECT_EQ(backend_rng_contract(SimBackend::kTableau, S),
              backend_rng_contract(SimBackend::kTableau, L));
    EXPECT_NE(backend_rng_contract(SimBackend::kBatchFrame, S),
              backend_rng_contract(SimBackend::kBatchFrame, L));
    EXPECT_NE(backend_rng_contract(SimBackend::kBatchTableau, S),
              backend_rng_contract(SimBackend::kBatchTableau, L));
    EXPECT_NE(backend_rng_contract(SimBackend::kBatchFrame, S),
              backend_rng_contract(SimBackend::kBatchTableau, S));
    // The one-arg form is the lockstep contract (unchanged call sites).
    for (SimBackend b : kBackends)
        EXPECT_EQ(backend_rng_contract(b), backend_rng_contract(b, L));
}

TEST(SimBackends, CostFactorIsFrameNormalizedAndQuadraticForTableau)
{
    // The campaign planner's throughput model: frame is the unit; the
    // tableau backend pays ~n^2/64 bit-plane words per measurement, never
    // less than a frame shot.
    for (int n : {1, 8, 17, 100, 1000})
        EXPECT_DOUBLE_EQ(backend_cost_factor(SimBackend::kFrame, n), 1.0);
    EXPECT_DOUBLE_EQ(backend_cost_factor(SimBackend::kTableau, 8), 1.0);
    EXPECT_DOUBLE_EQ(backend_cost_factor(SimBackend::kTableau, 16), 4.0);
    EXPECT_DOUBLE_EQ(backend_cost_factor(SimBackend::kTableau, 80), 100.0);
    // Tiny codes floor at the frame cost rather than dipping below it.
    EXPECT_DOUBLE_EQ(backend_cost_factor(SimBackend::kTableau, 2), 1.0);
    // Monotone in code size past the floor.
    double prev = 0.0;
    for (int n : {8, 16, 32, 64, 128}) {
        const double f = backend_cost_factor(SimBackend::kTableau, n);
        EXPECT_GT(f, prev);
        prev = f;
    }
    // The bit-packed backend serves 64 shots per driver pass: ~1/64 of a
    // frame shot, independent of code size.
    for (int n : {8, 17, 100, 1000})
        EXPECT_DOUBLE_EQ(backend_cost_factor(SimBackend::kBatchFrame, n),
                         1.0 / 64.0);
    // The batch tableau backend runs K*64 full tableaux in lockstep —
    // per SHOT it costs what a scalar tableau shot costs (the batch buys
    // scheduler-block alignment, not a per-shot win), so the planner
    // model is the same quadratic.
    for (int n : {8, 16, 80, 2})
        EXPECT_DOUBLE_EQ(backend_cost_factor(SimBackend::kBatchTableau, n),
                         backend_cost_factor(SimBackend::kTableau, n));
}

TEST(SimBackends, MakeSimulatorRejectsBadBatchWidths)
{
    // The batch width is validated uniformly at the factory for every
    // backend — a bad config fails the same way whether or not the
    // backend actually packs lanes.
    const Harness h(SurfaceCode::make(3));
    for (SimBackend b : kBackends) {
        SCOPED_TRACE(backend_name(b));
        for (int words : {0, -1, kMaxBatchWords + 1})
            EXPECT_THROW(
                make_simulator(b, h.code, h.rc, noiseless(), 1, words),
                std::invalid_argument);
        // Every in-range width constructs.
        for (int words : {1, 2, kMaxBatchWords}) {
            const auto sim =
                make_simulator(b, h.code, h.rc, noiseless(), 1, words);
            EXPECT_EQ(sim->name(), backend_name(b));
        }
    }
}

TEST(SimBackends, NoiselessSyndromesAreDeterministicOnBothBackends)
{
    const Harness h(SurfaceCode::make(3));
    const LrcSchedule none;
    for (SimBackend b : kBackends) {
        SCOPED_TRACE(backend_name(b));
        const auto sim = make_simulator(b, h.code, h.rc, noiseless(), 7);
        RoundResult rr;
        for (int r = 0; r < 4; ++r) {
            rr = sim->run_round(none);
            for (int c = 0; c < h.code.n_checks(); ++c)
                EXPECT_EQ(rr.detector[c], 0) << "round " << r << " check "
                                             << c;
        }
        // Final transversal readout: individual outcomes may be random
        // on an exact-stabilizer backend (X-check projections), but the
        // parities the runner decodes from are deterministic — every
        // Z-check support parity matches the last ancilla measurement
        // (quiet final detector) and the logical-Z parity is 0 (|0_L>).
        const std::vector<uint8_t> flips = sim->final_data_measure();
        for (int c = 0; c < h.code.n_checks(); ++c) {
            if (h.code.check(c).type != CheckType::kZ)
                continue;
            uint8_t parity = rr.meas_flip[c];
            for (int q : h.code.check(c).support)
                parity ^= flips[q];
            EXPECT_EQ(parity, 0) << "check " << c;
        }
        uint8_t logical = 0;
        for (int q : h.code.logical_z())
            logical ^= flips[q];
        EXPECT_EQ(logical, 0);
    }
}

/** One noiseless round; returns the detector vector. */
std::vector<uint8_t>
quiet_round(Simulator* sim)
{
    const LrcSchedule none;
    return sim->run_round(none).detector;
}

TEST(SimBackends, InjectedXSignatureAgreesAcrossBackends)
{
    const Harness h(SurfaceCode::make(3));
    for (int q = 0; q < h.code.n_data(); ++q) {
        SCOPED_TRACE(q);
        std::vector<std::vector<uint8_t>> sig;
        for (SimBackend b : kBackends) {
            const auto sim =
                make_simulator(b, h.code, h.rc, noiseless(), 11);
            quiet_round(sim.get());
            sim->inject_x(q);
            sig.push_back(quiet_round(sim.get()));
            // The signature is a one-round event: the next round is
            // quiet again (the flip is permanent, the detector XOR
            // cancels).
            for (uint8_t d : quiet_round(sim.get()))
                EXPECT_EQ(d, 0);
        }
        for (size_t i = 1; i < sig.size(); ++i)
            EXPECT_EQ(sig[0], sig[i]) << "backend " << backend_name(kBackends[i]);
    }
}

TEST(SimBackends, InjectedZSignatureAgreesAcrossBackends)
{
    // Z faults show up on X checks — also covers the Hadamard paths.
    const Harness h(SurfaceCode::make(3));
    for (int q = 0; q < h.code.n_data(); ++q) {
        SCOPED_TRACE(q);
        std::vector<std::vector<uint8_t>> sig;
        for (SimBackend b : kBackends) {
            const auto sim =
                make_simulator(b, h.code, h.rc, noiseless(), 13);
            quiet_round(sim.get());
            sim->inject_z(q);
            sig.push_back(quiet_round(sim.get()));
        }
        for (size_t i = 1; i < sig.size(); ++i)
            EXPECT_EQ(sig[0], sig[i]) << "backend " << backend_name(kBackends[i]);
    }
}

TEST(SimBackends, InjectedXSignatureAgreesOnColorCode)
{
    // A self-dual code with a different scheduled circuit shape.
    const Harness h(ColorCode::make(5));
    for (int q = 0; q < h.code.n_data(); q += 3) {
        SCOPED_TRACE(q);
        std::vector<std::vector<uint8_t>> sig;
        for (SimBackend b : kBackends) {
            const auto sim =
                make_simulator(b, h.code, h.rc, noiseless(), 17);
            quiet_round(sim.get());
            sim->inject_x(q);
            sig.push_back(quiet_round(sim.get()));
        }
        for (size_t i = 1; i < sig.size(); ++i)
            EXPECT_EQ(sig[0], sig[i]) << "backend " << backend_name(kBackends[i]);
    }
}

TEST(SimBackends, LeakOracleSemanticsAgreeAcrossBackends)
{
    const Harness h(SurfaceCode::make(3));
    for (SimBackend b : kBackends) {
        SCOPED_TRACE(backend_name(b));
        const auto sim = make_simulator(b, h.code, h.rc, noiseless(), 19);
        EXPECT_EQ(sim->n_data_leaked(), 0);
        EXPECT_EQ(sim->n_check_leaked(), 0);

        sim->inject_data_leak(2);
        EXPECT_TRUE(sim->data_leaked(2));
        EXPECT_EQ(sim->n_data_leaked(), 1);

        sim->inject_check_leak(1);
        EXPECT_TRUE(sim->check_leaked(1));
        EXPECT_EQ(sim->n_check_leaked(), 1);

        // Measurement + reset rounds do NOT clear leakage (noiseless,
        // zero mobility: nothing can move or clear the flags)...
        quiet_round(sim.get());
        EXPECT_TRUE(sim->data_leaked(2));
        EXPECT_TRUE(sim->check_leaked(1));

        // ...but the LRC gadgets do.
        LrcSchedule lrcs;
        lrcs.data_qubits = {2};
        lrcs.checks = {1};
        sim->run_round(lrcs);
        EXPECT_FALSE(sim->data_leaked(2));
        EXPECT_FALSE(sim->check_leaked(1));
        EXPECT_EQ(sim->n_data_leaked(), 0);
        EXPECT_EQ(sim->n_check_leaked(), 0);

        // reset_shot clears everything.
        sim->inject_data_leak(0);
        sim->reset_shot();
        EXPECT_EQ(sim->n_data_leaked(), 0);
    }
}

TEST(SimBackends, LeakedDataRandomizesAdjacentChecksOnBothBackends)
{
    // A leaked data qubit malfunctions its CNOTs: adjacent checks see
    // random flips (~50% per §2.3), so over many rounds each backend must
    // fire SOME detector events — the behaviour speculation policies key
    // on, here observed through the shared interface.
    const Harness h(SurfaceCode::make(3));
    NoiseParams np = noiseless();
    np.mobility = 0.0;  // keep the leak parked on the data qubit
    for (SimBackend b : kBackends) {
        SCOPED_TRACE(backend_name(b));
        const auto sim = make_simulator(b, h.code, h.rc, np, 23);
        quiet_round(sim.get());
        sim->inject_data_leak(4);
        int events = 0;
        for (int r = 0; r < 20; ++r) {
            for (uint8_t d : quiet_round(sim.get()))
                events += d;
        }
        EXPECT_GT(events, 0);
        EXPECT_TRUE(sim->data_leaked(4));
    }
}

// --- Closed loop through ExperimentRunner::run() on the tableau backend. ---

ExperimentConfig
tableau_cfg()
{
    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(1e-3, 0.1);
    cfg.rounds = 6;
    cfg.shots = 24;
    cfg.seed = 0x7AB1EA05EEDull;
    cfg.leakage_sampling = true;
    cfg.record_dlp_series = true;
    cfg.compute_ler = true;
    cfg.rng_streams = 8;  // small run: keep a few shots per stream
    cfg.backend = SimBackend::kTableau;
    return cfg;
}

TEST(SimBackends, TableauClosedLoopRunsUnderEraserPolicy)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    const ExperimentConfig cfg = tableau_cfg();
    const ExperimentRunner runner(ctx, cfg);
    const Metrics m = runner.run(PolicyZoo::eraser(/*use_mlr=*/true));
    EXPECT_EQ(m.shots, cfg.shots);
    EXPECT_EQ(m.decoded_shots, cfg.shots);
    EXPECT_GT(m.lrc_check_total + m.lrc_data_total, 0.0);
    // Leakage sampling guarantees ground-truth leakage to account.
    EXPECT_GT(m.dlp_total, 0.0);

    // Determinism contract holds per backend: bit-identical across
    // thread counts.
    for (int threads : {2, 4}) {
        SCOPED_TRACE(threads);
        ExperimentConfig c = cfg;
        c.threads = threads;
        const ExperimentRunner r2(ctx, c);
        expect_metrics_identical(m, r2.run(PolicyZoo::eraser(true)));
    }
}

TEST(SimBackends, TableauOracleFeedsIdealPolicyThroughInterface)
{
    // IDEAL reads the ground-truth oracle through the Simulator base —
    // with the tableau backend this only works if set_oracle is wired
    // through the interface, which is exactly what this pins.
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    ExperimentConfig cfg = tableau_cfg();
    cfg.compute_ler = false;
    const ExperimentRunner runner(ctx, cfg);
    const Metrics m = runner.run(PolicyZoo::ideal());
    // The oracle policy never misses and never misfires.
    EXPECT_DOUBLE_EQ(m.fn_total, 0.0);
    EXPECT_DOUBLE_EQ(m.fp_total, 0.0);
    EXPECT_GT(m.tp_total, 0.0);
}

TEST(SimBackends, NoiselessTableauLerIsZero)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    ExperimentConfig cfg = tableau_cfg();
    cfg.np = noiseless();
    cfg.leakage_sampling = false;
    const ExperimentRunner runner(ctx, cfg);
    const Metrics m = runner.run(PolicyZoo::no_lrc());
    EXPECT_EQ(m.decoded_shots, cfg.shots);
    EXPECT_EQ(m.logical_errors, 0);
}

// --- The batch gate: frame vs batch_frame must be BIT-identical. ---
//
// The bit-packed backend's whole correctness story is that lane k of a
// batch replays the scalar frame backend's shot k draw for draw, so the
// aggregated Metrics of any config must match frame's exactly — not
// statistically, bitwise.  Every noisy code path is exercised: LRC-heavy
// policies, the oracle policy (per-lane oracle views), MLR, decoding,
// leakage sampling, multi-block streams and a partial final batch.

Metrics
run_backend(const CodeContext& ctx, ExperimentConfig cfg, SimBackend b,
            const PolicyFactory& factory, int threads = 1)
{
    cfg.backend = b;
    cfg.threads = threads;
    return ExperimentRunner(ctx, cfg).run(factory);
}

TEST(BatchFrameBitEquality, SurfaceEraserWithLerAndSeries)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(2e-3, 0.5);  // busy leak dynamics
    cfg.rounds = 8;
    cfg.shots = 100;  // streams of 12/13 shots: every batch is partial
    cfg.seed = 0xBA7C4F5EEDull;
    cfg.leakage_sampling = true;
    cfg.record_dlp_series = true;
    cfg.compute_ler = true;
    cfg.rng_streams = 8;

    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);
    const Metrics frame =
        run_backend(ctx, cfg, SimBackend::kFrame, factory);
    EXPECT_GT(frame.dlp_total, 0.0);
    EXPECT_GT(frame.lrc_data_total + frame.lrc_check_total, 0.0);
    for (int threads : {1, 8, 16}) {
        SCOPED_TRACE(threads);
        expect_metrics_identical(
            frame, run_backend(ctx, cfg, SimBackend::kBatchFrame, factory,
                               threads));
    }
}

TEST(BatchFrameBitEquality, MultiBlockStreamsAndPartialFinalBatch)
{
    // One stream of 150 shots: batches of 64, 64 and 22 — the padded
    // final batch must not perturb the active lanes.
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(2e-3, 1.0);
    cfg.rounds = 5;
    cfg.shots = 150;
    cfg.seed = 0xB10C64B17ull;
    cfg.leakage_sampling = true;
    cfg.record_dlp_series = true;
    cfg.rng_streams = 1;
    ASSERT_EQ(ExperimentRunner::stream_blocks(cfg, 0), 3);
    ASSERT_NE(cfg.shots % ExperimentRunner::kShotBlock, 0);

    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);
    const Metrics frame =
        run_backend(ctx, cfg, SimBackend::kFrame, factory);
    for (int threads : {1, 8}) {
        SCOPED_TRACE(threads);
        expect_metrics_identical(
            frame, run_backend(ctx, cfg, SimBackend::kBatchFrame, factory,
                               threads));
    }
}

TEST(BatchFrameBitEquality, IdealOracleReadsPerLaneTruth)
{
    // The oracle policy on the batch path reads a per-lane oracle view;
    // a lane seeing any other lane's truth breaks FN/FP == frame.
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(2e-3, 1.0);
    cfg.rounds = 6;
    cfg.shots = 96;
    cfg.seed = 0x1DEA15EEDull;
    cfg.leakage_sampling = true;
    cfg.rng_streams = 1;  // one 64-lane batch + one 32-lane batch

    const Metrics frame =
        run_backend(ctx, cfg, SimBackend::kFrame, PolicyZoo::ideal());
    const Metrics batch = run_backend(ctx, cfg, SimBackend::kBatchFrame,
                                      PolicyZoo::ideal());
    EXPECT_DOUBLE_EQ(batch.fn_total, 0.0);
    EXPECT_DOUBLE_EQ(batch.fp_total, 0.0);
    EXPECT_GT(batch.tp_total, 0.0);
    expect_metrics_identical(frame, batch);
}

TEST(BatchFrameBitEquality, ColorCodeGladiatorPolicy)
{
    // A different circuit shape (self-dual color code) and the stateful
    // table-driven policy, 64 instances of which run lane-parallel.
    const CssCode code = ColorCode::make(5);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(1e-3, 0.5);
    cfg.rounds = 6;
    cfg.shots = 80;
    cfg.seed = 0xC0104B17ull;
    cfg.leakage_sampling = true;
    cfg.rng_streams = 4;

    const PolicyFactory factory =
        PolicyZoo::gladiator(/*use_mlr=*/true, cfg.np);
    expect_metrics_identical(
        run_backend(ctx, cfg, SimBackend::kFrame, factory),
        run_backend(ctx, cfg, SimBackend::kBatchFrame, factory, 4));
}

TEST(BatchFrameBitEquality, ScalarInterfaceCallsMatchFrameDrawForDraw)
{
    // Through the scalar Simulator API a batch sim runs one-lane batches;
    // with the same seed the per-round results must equal frame's exactly
    // (same master stream, same split-per-shot derivation).
    const Harness h(SurfaceCode::make(3));
    const NoiseParams np = NoiseParams::standard(5e-3, 1.0);
    const auto frame =
        make_simulator(SimBackend::kFrame, h.code, h.rc, np, 99);
    const auto batch =
        make_simulator(SimBackend::kBatchFrame, h.code, h.rc, np, 99);
    const LrcSchedule none;
    for (int shot = 0; shot < 4; ++shot) {
        frame->reset_shot();
        batch->reset_shot();
        for (int r = 0; r < 6; ++r) {
            const RoundResult a = frame->run_round(none);
            const RoundResult b = batch->run_round(none);
            EXPECT_EQ(a.meas_flip, b.meas_flip);
            EXPECT_EQ(a.detector, b.detector);
            EXPECT_EQ(a.mlr_flag, b.mlr_flag);
        }
        EXPECT_EQ(frame->final_data_measure(),
                  batch->final_data_measure());
        EXPECT_EQ(frame->n_data_leaked(), batch->n_data_leaked());
        EXPECT_EQ(frame->n_check_leaked(), batch->n_check_leaked());
    }
}

TEST(SimBackends, BackendsAgreeStatisticallyOnDlp)
{
    // Same config, different backends: the leak-flag dynamics are
    // identical machinery, so the DLP rates must agree statistically
    // (the tableau engines draw independent measurement randomness).
    // Refereed by the SAME stats:: pipeline gld_campaign verify uses — a
    // pooled two-proportion z-test on Metrics::dlp_sample — instead of
    // the arbitrary 0.5x..2x ratio bounds this test shipped with.
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(1e-3, 1.0);  // leak-rich
    cfg.rounds = 12;
    cfg.shots = 160;
    cfg.seed = 0xA9EEB05EEDull;
    cfg.leakage_sampling = true;
    cfg.rng_streams = 8;

    cfg.backend = SimBackend::kFrame;
    const Metrics frame = ExperimentRunner(ctx, cfg).run(PolicyZoo::no_lrc());
    ASSERT_GT(frame.dlp_mean(), 0.0);
    const int n_data = code.n_data();
    for (SimBackend b :
         {SimBackend::kTableau, SimBackend::kBatchTableau}) {
        SCOPED_TRACE(backend_name(b));
        cfg.backend = b;
        const Metrics tab =
            ExperimentRunner(ctx, cfg).run(PolicyZoo::no_lrc());
        ASSERT_GT(tab.dlp_mean(), 0.0);
        const stats::TwoProportionResult r = stats::two_proportion_z(
            frame.dlp_sample(n_data), tab.dlp_sample(n_data));
        // One pinned-seed test = one draw from the null; alpha 0.001
        // keeps the false-failure budget negligible while catching any
        // real divergence (a broken backend shifts DLP by far more than
        // 3 sigma).
        EXPECT_GE(r.p_value, 0.001)
            << "dlp " << frame.dlp_mean() << " vs " << tab.dlp_mean()
            << " (z=" << r.z << ")";
    }
}

TEST(BatchFrameBitEquality, ScalarInterfaceAtWideBatchStillMatchesFrame)
{
    // The scalar Simulator adapters run one-lane batches regardless of
    // the constructed batch width: lane 0's RNG stream is derived from
    // the same per-shot split at any K, so a K=4 batch sim driven
    // through the scalar API must still equal frame draw for draw.
    const Harness h(SurfaceCode::make(3));
    const NoiseParams np = NoiseParams::standard(5e-3, 1.0);
    const auto frame =
        make_simulator(SimBackend::kFrame, h.code, h.rc, np, 99);
    const auto batch = make_simulator(SimBackend::kBatchFrame, h.code,
                                      h.rc, np, 99, /*batch_words=*/4);
    const LrcSchedule none;
    for (int shot = 0; shot < 4; ++shot) {
        frame->reset_shot();
        batch->reset_shot();
        for (int r = 0; r < 6; ++r) {
            const RoundResult a = frame->run_round(none);
            const RoundResult b = batch->run_round(none);
            EXPECT_EQ(a.meas_flip, b.meas_flip);
            EXPECT_EQ(a.detector, b.detector);
            EXPECT_EQ(a.mlr_flag, b.mlr_flag);
        }
        EXPECT_EQ(frame->final_data_measure(),
                  batch->final_data_measure());
    }
}

}  // namespace
}  // namespace gld
