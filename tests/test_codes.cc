#include <gtest/gtest.h>

#include "codes/bpc_code.h"
#include "codes/color_code.h"
#include "codes/hgp_code.h"
#include "codes/surface_code.h"

namespace gld {
namespace {

// --- Surface code ---

class SurfaceCodeStructure : public ::testing::TestWithParam<int> {};

TEST_P(SurfaceCodeStructure, CountsAndValidity)
{
    const int d = GetParam();
    const CssCode code = SurfaceCode::make(d);
    EXPECT_EQ(code.n_data(), d * d);
    EXPECT_EQ(code.n_checks(), d * d - 1);
    EXPECT_EQ(code.n_qubits(), 2 * d * d - 1);  // paper §2.2
    EXPECT_EQ(static_cast<int>(code.checks_of_type(CheckType::kX).size()),
              (d * d - 1) / 2);
    EXPECT_TRUE(code.css_valid());
    EXPECT_EQ(code.k_logical(), 1);
    EXPECT_EQ(static_cast<int>(code.logical_z().size()), d);
    EXPECT_EQ(static_cast<int>(code.logical_x().size()), d);
}

TEST_P(SurfaceCodeStructure, LogicalsCommuteWithStabilizers)
{
    const int d = GetParam();
    const CssCode code = SurfaceCode::make(d);
    // Logical Z must overlap every X check evenly; logical X every Z check.
    for (const auto& c : code.checks()) {
        const auto& logical =
            c.type == CheckType::kX ? code.logical_z() : code.logical_x();
        int overlap = 0;
        for (int q : c.support)
            overlap += std::count(logical.begin(), logical.end(), q) > 0;
        EXPECT_EQ(overlap % 2, 0);
    }
    // Logical X and Z anticommute: odd intersection.
    int inter = 0;
    for (int q : code.logical_x())
        inter += std::count(code.logical_z().begin(), code.logical_z().end(),
                            q) > 0;
    EXPECT_EQ(inter % 2, 1);
}

TEST_P(SurfaceCodeStructure, BulkDataQubitsTouchFourChecks)
{
    const int d = GetParam();
    const CssCode code = SurfaceCode::make(d);
    int four = 0;
    for (int q = 0; q < code.n_data(); ++q) {
        const size_t deg = code.data_adjacency()[q].size();
        EXPECT_GE(deg, 2u);
        EXPECT_LE(deg, 4u);
        four += deg == 4;
    }
    // All interior qubits have degree 4.
    EXPECT_GE(four, (d - 2) * (d - 2));
}

INSTANTIATE_TEST_SUITE_P(Distances, SurfaceCodeStructure,
                         ::testing::Values(3, 5, 7, 9, 11));

TEST(SurfaceCode, CheckWeightsAreTwoOrFour)
{
    const CssCode code = SurfaceCode::make(5);
    for (const auto& c : code.checks()) {
        EXPECT_TRUE(c.support.size() == 2 || c.support.size() == 4);
    }
}

// --- Color code ---

class ColorCodeStructure : public ::testing::TestWithParam<int> {};

TEST_P(ColorCodeStructure, CountsAndValidity)
{
    const int d = GetParam();
    const CssCode code = ColorCode::make(d);
    EXPECT_EQ(code.n_data(), (3 * d * d + 1) / 4);  // paper §5.1
    // One X + one Z check per face.
    EXPECT_EQ(code.checks_of_type(CheckType::kX).size(),
              code.checks_of_type(CheckType::kZ).size());
    EXPECT_TRUE(code.css_valid());
    EXPECT_EQ(code.k_logical(), 1);
    EXPECT_EQ(static_cast<int>(code.logical_z().size()), d);
}

TEST_P(ColorCodeStructure, FaceWeightsAndQubitDegrees)
{
    const int d = GetParam();
    const CssCode code = ColorCode::make(d);
    for (const auto& c : code.checks())
        EXPECT_TRUE(c.support.size() == 4 || c.support.size() == 6);
    // Data qubits touch 1-3 faces => 2-6 checks (X+Z per face); the paper's
    // 1/2/3-bit patterns come from the Z checks alone.
    for (int q = 0; q < code.n_data(); ++q) {
        const size_t deg = code.data_adjacency()[q].size();
        EXPECT_GE(deg, 2u);
        EXPECT_LE(deg, 6u);
        EXPECT_EQ(deg % 2, 0u);  // X/Z pairs
    }
}

INSTANTIATE_TEST_SUITE_P(Distances, ColorCodeStructure,
                         ::testing::Values(3, 5, 7, 9));

TEST(ColorCode, DistanceSevenUsesThirtySevenQubits)
{
    // Paper: "a code distance-7 color code 6.6.6 requires only 37 qubits
    // compared to 97 qubits for a distance-7 surface code".
    EXPECT_EQ(ColorCode::make(7).n_data(), 37);
    EXPECT_EQ(SurfaceCode::make(7).n_qubits(), 97);
}

// --- HGP code ---

TEST(HgpCode, HammingProductDimensions)
{
    const CssCode code = HgpCode::make_hamming();
    EXPECT_EQ(code.n_data(), 7 * 7 + 3 * 3);  // 58
    EXPECT_EQ(static_cast<int>(code.checks_of_type(CheckType::kX).size()),
              3 * 7);
    EXPECT_EQ(static_cast<int>(code.checks_of_type(CheckType::kZ).size()),
              7 * 3);
    EXPECT_TRUE(code.css_valid());
    // k = k1*k2 for full-rank H with no transpose code: 4*4 = 16.
    EXPECT_EQ(code.k_logical(), 16);
}

TEST(HgpCode, IrregularDataDegrees)
{
    const CssCode code = HgpCode::make_hamming();
    size_t min_deg = 100, max_deg = 0;
    for (int q = 0; q < code.n_data(); ++q) {
        const size_t deg = code.data_adjacency()[q].size();
        min_deg = std::min(min_deg, deg);
        max_deg = std::max(max_deg, deg);
    }
    // The irregular connectivity the paper's generalizability story needs.
    EXPECT_LT(min_deg, max_deg);
    EXPECT_GE(min_deg, 2u);
    EXPECT_LE(max_deg, 8u);
}

// --- BPC code ---

TEST(BpcCode, DefaultInstance)
{
    const CssCode code = BpcCode::make_default();
    EXPECT_EQ(code.n_data(), 30);
    EXPECT_EQ(code.n_checks(), 30);
    EXPECT_TRUE(code.css_valid());
    // gcd(1+x+x^2, 1+x^5+x^10, x^15-1) = x^2+x+1 -> k = 4.
    EXPECT_EQ(code.k_logical(), 4);
}

TEST(BpcCode, DataDegreeSixMatchesAppendixB2)
{
    // Weight-3 circulants give every data qubit 3 X + 3 Z checks: the
    // 6-bit (7-bit tagged) patterns of Appendix B.2.
    const CssCode code = BpcCode::make_default();
    for (int q = 0; q < code.n_data(); ++q)
        EXPECT_EQ(code.data_adjacency()[q].size(), 6u);
}

TEST(BpcCode, CssValidForAnyCirculantPair)
{
    // Circulant commutativity makes every polynomial pair CSS-valid.
    const CssCode code = BpcCode::make(9, {0, 2, 3}, {0, 1, 7}, "bpc_test");
    EXPECT_TRUE(code.css_valid());
}

}  // namespace
}  // namespace gld
