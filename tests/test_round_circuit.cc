#include "circuit/round_circuit.h"

#include <gtest/gtest.h>

#include <set>

#include "codes/bpc_code.h"
#include "codes/color_code.h"
#include "codes/surface_code.h"

namespace gld {
namespace {

TEST(RoundCircuit, OpInventoryMatchesCode)
{
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    int resets = 0, hs = 0, cnots = 0, measures = 0;
    for (const Op& op : rc.ops()) {
        switch (op.type) {
          case OpType::kResetZ:
            ++resets;
            break;
          case OpType::kH:
            ++hs;
            break;
          case OpType::kCnot:
            ++cnots;
            break;
          case OpType::kMeasure:
            ++measures;
            break;
        }
    }
    EXPECT_EQ(resets, code.n_checks());
    EXPECT_EQ(measures, code.n_checks());
    EXPECT_EQ(hs, 2 * static_cast<int>(
                          code.checks_of_type(CheckType::kX).size()));
    int weight_sum = 0;
    for (const auto& c : code.checks())
        weight_sum += static_cast<int>(c.support.size());
    EXPECT_EQ(cnots, weight_sum);
    EXPECT_EQ(rc.n_cnots(), weight_sum);
}

TEST(RoundCircuit, SurfaceUsesFourStepZigZagSchedule)
{
    // The surface code ships the canonical hook-safe interleaved schedule:
    // 4 CNOT steps.
    const CssCode code = SurfaceCode::make(7);
    ASSERT_TRUE(code.has_schedule_hint());
    const RoundCircuit rc(code);
    EXPECT_EQ(rc.n_cnot_steps(), 4);
}

TEST(RoundCircuit, GenericCodesSeparateZAndXPhases)
{
    // Codes without a hand-crafted schedule run the Z phase strictly
    // before the X phase (valid stabilizer measurement for any CSS code).
    const CssCode code = ColorCode::make(5);
    ASSERT_FALSE(code.has_schedule_hint());
    const RoundCircuit rc(code);
    int max_z_step = -1, min_x_step = 1 << 20;
    for (int q = 0; q < code.n_data(); ++q) {
        for (const SlotRef& s : rc.slots_of(q)) {
            if (s.type == CheckType::kZ)
                max_z_step = std::max(max_z_step, s.step);
            else
                min_x_step = std::min(min_x_step, s.step);
        }
    }
    EXPECT_LT(max_z_step, min_x_step);
}

TEST(RoundCircuit, CnotDirectionByCheckType)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    for (const Op& op : rc.ops()) {
        if (op.type != OpType::kCnot)
            continue;
        const bool q0_is_data = op.q0 < code.n_data();
        const bool q1_is_data = op.q1 < code.n_data();
        EXPECT_NE(q0_is_data, q1_is_data);
        if (q0_is_data) {
            // data -> ancilla: Z check.
            EXPECT_EQ(code.check(op.q1 - code.n_data()).type, CheckType::kZ);
        } else {
            EXPECT_EQ(code.check(op.q0 - code.n_data()).type, CheckType::kX);
        }
    }
}

TEST(RoundCircuit, MeasureSlotsAreCheckIndices)
{
    const CssCode code = ColorCode::make(5);
    const RoundCircuit rc(code);
    std::set<int> slots;
    for (const Op& op : rc.ops()) {
        if (op.type == OpType::kMeasure) {
            EXPECT_EQ(op.q0, code.ancilla_of(op.mslot));
            slots.insert(op.mslot);
        }
    }
    EXPECT_EQ(static_cast<int>(slots.size()), code.n_checks());
}

class SlotStructure : public ::testing::TestWithParam<const char*> {};

TEST_P(SlotStructure, SlotsAreOrderedAndComplete)
{
    CssCode code = [&]() {
        const std::string name = GetParam();
        if (name == "surface")
            return SurfaceCode::make(5);
        if (name == "color")
            return ColorCode::make(5);
        return BpcCode::make_default();
    }();
    const RoundCircuit rc(code);
    for (int q = 0; q < code.n_data(); ++q) {
        const auto& slots = rc.slots_of(q);
        EXPECT_EQ(slots.size(), code.data_adjacency()[q].size());
        for (size_t i = 1; i < slots.size(); ++i)
            EXPECT_LT(slots[i - 1].step, slots[i].step);
        for (const SlotRef& s : slots) {
            EXPECT_EQ(code.check(s.check).type, s.type);
            const auto& sup = code.check(s.check).support;
            EXPECT_NE(std::find(sup.begin(), sup.end(), q), sup.end());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Codes, SlotStructure,
                         ::testing::Values("surface", "color", "bpc"));

TEST(RoundCircuit, NoQubitReusedWithinStep)
{
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    std::vector<std::set<int>> step_qubits(rc.n_cnot_steps());
    for (const Op& op : rc.ops()) {
        if (op.type != OpType::kCnot)
            continue;
        EXPECT_TRUE(step_qubits[op.step].insert(op.q0).second);
        EXPECT_TRUE(step_qubits[op.step].insert(op.q1).second);
    }
}

}  // namespace
}  // namespace gld
