#include "util/table.h"

#include <gtest/gtest.h>

namespace gld {
namespace {

TEST(TablePrinter, RendersMarkdown)
{
    TablePrinter t({"a", "bb"});
    t.add_row({"1", "2"});
    t.add_row({"333"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("| a   | bb |"), std::string::npos);
    EXPECT_NE(s.find("| 333 |    |"), std::string::npos);
    EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(TablePrinter, FormatsNumbers)
{
    EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(TablePrinter::sci(0.00123, 1), "1.2e-03");
}

}  // namespace
}  // namespace gld
