#include "noise/noise_model.h"

#include <gtest/gtest.h>

namespace gld {
namespace {

TEST(NoiseParams, DerivedQuantities)
{
    NoiseParams np = NoiseParams::standard(1e-3, 0.1);
    EXPECT_DOUBLE_EQ(np.pl(), 1e-4);
    EXPECT_DOUBLE_EQ(np.mlr_err(), 1e-2);
    EXPECT_DOUBLE_EQ(np.lrc_depol(), 3e-3);
    // LRC leakage = absolute gadget cost + gate-induced part.
    EXPECT_DOUBLE_EQ(np.lrc_leak(), np.lrc_leak_prob + 3.0 * np.pl());
}

TEST(NoiseParams, StandardPresetsScaleWithP)
{
    NoiseParams a = NoiseParams::standard(1e-3, 0.1);
    NoiseParams b = NoiseParams::standard(1e-4, 0.1);
    EXPECT_DOUBLE_EQ(a.pl() / b.pl(), 10.0);
    EXPECT_DOUBLE_EQ(a.mlr_err() / b.mlr_err(), 10.0);
}

TEST(NoiseParams, LeakRatioSweep)
{
    // Table 4's lr sweep: pl spans two decades at fixed p.
    const double p = 1e-3;
    EXPECT_DOUBLE_EQ(NoiseParams::standard(p, 0.01).pl(), 1e-5);
    EXPECT_DOUBLE_EQ(NoiseParams::standard(p, 1.0).pl(), 1e-3);
}

TEST(NoiseParams, PaperDefaults)
{
    // §6: lr = 0.1, mlr = 10, mobility 10%.
    NoiseParams np;
    EXPECT_DOUBLE_EQ(np.leak_ratio, 0.1);
    EXPECT_DOUBLE_EQ(np.mlr_ratio, 10.0);
    EXPECT_DOUBLE_EQ(np.mobility, 0.1);
    EXPECT_FALSE(np.leaked_gate_backaction);
}

}  // namespace
}  // namespace gld
