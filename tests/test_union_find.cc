#include "decode/union_find.h"

#include <gtest/gtest.h>

#include "codes/surface_code.h"
#include "decode/dem_builder.h"
#include "util/rng.h"

namespace gld {
namespace {

TEST(UnionFindDecoder, EmptySyndromeIsTrivial)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    DemBuilder dem(code, rc, NoiseParams::standard(), 3);
    const DecodingGraph g = dem.build();
    UnionFindDecoder uf(g);
    std::vector<uint8_t> syndrome(g.n_nodes(), 0);
    EXPECT_FALSE(uf.decode(syndrome));
    EXPECT_EQ(uf.last_residual(), 0);
}

class SingleFaultSweep : public ::testing::TestWithParam<int> {};

TEST_P(SingleFaultSweep, EverySingleGraphFaultDecodesCorrectly)
{
    // The defining property of a distance-respecting decoder: for every
    // edge in the detector error model (a single fault), decoding that
    // fault's syndrome must reproduce its logical flip.
    const int d = GetParam();
    const CssCode code = SurfaceCode::make(d);
    const RoundCircuit rc(code);
    const int rounds = d;
    DemBuilder dem(code, rc, NoiseParams::standard(), rounds);
    const DecodingGraph g = dem.build();
    UnionFindDecoder uf(g);
    std::vector<uint8_t> syndrome(g.n_nodes(), 0);
    for (const GraphEdge& e : g.edges()) {
        syndrome[e.u] ^= 1;
        if (e.v != GraphEdge::kBoundary)
            syndrome[e.v] ^= 1;
        const bool predicted = uf.decode(syndrome);
        EXPECT_EQ(predicted, e.logical)
            << "edge " << e.u << "-" << e.v;
        EXPECT_EQ(uf.last_residual(), 0);
        syndrome[e.u] ^= 1;
        if (e.v != GraphEdge::kBoundary)
            syndrome[e.v] ^= 1;
    }
}

INSTANTIATE_TEST_SUITE_P(Distances, SingleFaultSweep,
                         ::testing::Values(3, 5));

TEST(UnionFindDecoder, RandomPairsOfFaultsMostlyDecode)
{
    // Weight-2 errors are correctable at d = 5 by a matching decoder; UF
    // with unweighted growth should succeed on the vast majority.
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    DemBuilder dem(code, rc, NoiseParams::standard(), 5);
    const DecodingGraph g = dem.build();
    UnionFindDecoder uf(g);
    Rng rng(31);
    const auto& edges = g.edges();
    int ok = 0;
    const int trials = 400;
    for (int t = 0; t < trials; ++t) {
        std::vector<uint8_t> syndrome(g.n_nodes(), 0);
        bool logical = false;
        for (int j = 0; j < 2; ++j) {
            const GraphEdge& e =
                edges[rng.uniform_int(static_cast<uint32_t>(edges.size()))];
            syndrome[e.u] ^= 1;
            if (e.v != GraphEdge::kBoundary)
                syndrome[e.v] ^= 1;
            logical ^= e.logical;
        }
        ok += uf.decode(syndrome) == logical;
    }
    EXPECT_GT(ok, trials * 95 / 100);
}

TEST(UnionFindDecoder, ResidualIsZeroOnRandomSyndromes)
{
    // Whatever the syndrome, peeling must consume every defect (boundary
    // absorbs odd clusters).
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    DemBuilder dem(code, rc, NoiseParams::standard(), 4);
    const DecodingGraph g = dem.build();
    UnionFindDecoder uf(g);
    Rng rng(8);
    for (int t = 0; t < 100; ++t) {
        std::vector<uint8_t> syndrome(g.n_nodes(), 0);
        for (int v = 0; v < g.n_nodes(); ++v)
            syndrome[v] = rng.bernoulli(0.05);
        uf.decode(syndrome);
        EXPECT_EQ(uf.last_residual(), 0);
    }
}

TEST(UnionFindDecoder, ReusableAcrossCalls)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    DemBuilder dem(code, rc, NoiseParams::standard(), 3);
    const DecodingGraph g = dem.build();
    UnionFindDecoder uf(g);
    const GraphEdge& e = g.edges().front();
    std::vector<uint8_t> syndrome(g.n_nodes(), 0);
    syndrome[e.u] ^= 1;
    if (e.v != GraphEdge::kBoundary)
        syndrome[e.v] ^= 1;
    const bool first = uf.decode(syndrome);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(uf.decode(syndrome), first);
}

}  // namespace
}  // namespace gld
