#include "core/qm_minimizer.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gld {
namespace {

TEST(QmMinimizer, SingleMinterm)
{
    const auto cubes = QmMinimizer::minimize(3, {0b101});
    ASSERT_EQ(cubes.size(), 1u);
    EXPECT_TRUE(QmMinimizer::eval(cubes, 0b101));
    EXPECT_FALSE(QmMinimizer::eval(cubes, 0b100));
}

TEST(QmMinimizer, MergesAdjacentMinterms)
{
    // f = x1 (minterms 010, 011, 110, 111 over 3 vars).
    const auto cubes = QmMinimizer::minimize(3, {0b010, 0b011, 0b110, 0b111});
    ASSERT_EQ(cubes.size(), 1u);
    EXPECT_EQ(cubes[0].value, 0b010u);
    EXPECT_EQ(cubes[0].dash_mask, 0b101u);
    EXPECT_EQ(QmMinimizer::cube_to_string(cubes[0], 3), "(x1)");
}

TEST(QmMinimizer, ConstantTrue)
{
    std::vector<uint32_t> all;
    for (uint32_t i = 0; i < 8; ++i)
        all.push_back(i);
    const auto cubes = QmMinimizer::minimize(3, all);
    ASSERT_EQ(cubes.size(), 1u);
    EXPECT_EQ(cubes[0].dash_mask, 0b111u);
}

TEST(QmMinimizer, EmptyOnset)
{
    EXPECT_TRUE(QmMinimizer::minimize(4, {}).empty());
    EXPECT_EQ(QmMinimizer::to_string({}, 4), "0");
}

TEST(QmMinimizer, DontCaresEnableLargerCubes)
{
    // onset {00}, dontcare {01}: minimizes to !x1 (one eliminated var).
    const auto cubes = QmMinimizer::minimize(2, {0b00}, {0b01});
    ASSERT_EQ(cubes.size(), 1u);
    EXPECT_EQ(__builtin_popcount(cubes[0].dash_mask), 1);
}

TEST(QmMinimizer, ColorCodeExactlyTwoOfThree)
{
    // The paper's Appendix B.3 color-code pattern: exactly two of three
    // bits set -> three 3-literal product terms.
    const auto cubes = QmMinimizer::minimize(3, {0b011, 0b101, 0b110});
    EXPECT_EQ(cubes.size(), 3u);
    for (const Cube& c : cubes)
        EXPECT_EQ(c.dash_mask, 0u);  // no merging possible
}

class QmRandomFunctions : public ::testing::TestWithParam<int> {};

TEST_P(QmRandomFunctions, MinimizedDnfIsEquivalent)
{
    const int n = 5;
    Rng rng(1000 + GetParam());
    std::vector<uint8_t> truth(1u << n);
    std::vector<uint32_t> onset;
    for (uint32_t x = 0; x < (1u << n); ++x) {
        truth[x] = rng.bernoulli(0.4);
        if (truth[x])
            onset.push_back(x);
    }
    const auto cubes = QmMinimizer::minimize(n, onset);
    for (uint32_t x = 0; x < (1u << n); ++x)
        ASSERT_EQ(QmMinimizer::eval(cubes, x), truth[x] != 0) << "x=" << x;
    // Minimization should never need more cubes than minterms.
    EXPECT_LE(cubes.size(), onset.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, QmRandomFunctions, ::testing::Range(0, 12));

TEST(QmMinimizer, RandomFunctionsWithDontCares)
{
    const int n = 6;
    Rng rng(77);
    for (int trial = 0; trial < 5; ++trial) {
        std::vector<uint32_t> onset, dc;
        std::vector<int> kind(1u << n);
        for (uint32_t x = 0; x < (1u << n); ++x) {
            const double u = rng.uniform();
            if (u < 0.3) {
                kind[x] = 1;
                onset.push_back(x);
            } else if (u < 0.5) {
                kind[x] = 2;
                dc.push_back(x);
            }
        }
        const auto cubes = QmMinimizer::minimize(n, onset, dc);
        for (uint32_t x = 0; x < (1u << n); ++x) {
            if (kind[x] == 1) {
                ASSERT_TRUE(QmMinimizer::eval(cubes, x));
            } else if (kind[x] == 0) {
                ASSERT_FALSE(QmMinimizer::eval(cubes, x));
            }
            // don't-cares may be either
        }
    }
}

TEST(QmMinimizer, ExpressionRendering)
{
    const auto cubes = QmMinimizer::minimize(3, {0b011, 0b101, 0b110});
    const std::string s = QmMinimizer::to_string(cubes, 3);
    EXPECT_NE(s.find(" | "), std::string::npos);
    EXPECT_NE(s.find("!x"), std::string::npos);
}

}  // namespace
}  // namespace gld
