// The persistent worker pool behind parallel_for_dynamic /
// parallel_for_slots: every loop index runs exactly once, slot ids obey
// the per-slot-cache contract, exceptions propagate to the caller with
// the pool intact, nested loops cannot deadlock, and — the perf_opt
// regression hooks — the pool never re-spawns threads (workers_created
// is flat across any number of loops) and never oversubscribes the
// BenchConfig::threads() budget no matter how campaign-style job loops
// nest runner loops (peak_active <= budget).

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/config.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

namespace gld {
namespace {

TEST(ParallelWidth, BoundsSlotIds)
{
    EXPECT_EQ(parallel_width(0, 8), 1u);
    EXPECT_EQ(parallel_width(100, 0), 1u);
    EXPECT_EQ(parallel_width(100, 1), 1u);
    EXPECT_EQ(parallel_width(3, 8), 3u);
    EXPECT_EQ(parallel_width(100, 8), 8u);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce)
{
    const size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits)
        h.store(0);
    parallel_for_dynamic(n, 8, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SlotIdsWithinWidthAndCallerIsSlotZero)
{
    const size_t n = 5000;
    const int threads = 4;
    const size_t width = parallel_width(n, threads);
    std::vector<int> slot_of(n, -1);
    const std::thread::id caller = std::this_thread::get_id();
    std::atomic<bool> caller_seen{false};
    parallel_for_slots(n, threads, [&](size_t i, int slot) {
        slot_of[i] = slot;
        if (std::this_thread::get_id() == caller) {
            EXPECT_EQ(slot, 0);
            caller_seen.store(true);
        }
    });
    for (size_t i = 0; i < n; ++i) {
        EXPECT_GE(slot_of[i], 0);
        EXPECT_LT(static_cast<size_t>(slot_of[i]), width);
    }
    // The caller always participates and drains its own loop.
    EXPECT_TRUE(caller_seen.load());
}

TEST(ThreadPool, InlineWhenSingleThreaded)
{
    const std::thread::id caller = std::this_thread::get_id();
    parallel_for_slots(100, 1, [&](size_t, int slot) {
        EXPECT_EQ(slot, 0);
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives)
{
    EXPECT_THROW(parallel_for_dynamic(1000, 8,
                                      [&](size_t i) {
                                          if (i == 137)
                                              throw std::runtime_error(
                                                  "boom");
                                      }),
                 std::runtime_error);
    // The pool must be fully usable after a throwing loop.
    std::atomic<long> sum{0};
    parallel_for_dynamic(1000, 8, [&](size_t i) {
        sum.fetch_add(static_cast<long>(i));
    });
    EXPECT_EQ(sum.load(), 999L * 1000L / 2);
}

TEST(ThreadPool, NestedLoopsComplete)
{
    // Campaign shape: an outer job loop whose body runs its own inner
    // runner loop.  With a shared fixed-size pool this must neither
    // deadlock (callers drain their own loops) nor lose indices.
    std::atomic<long> total{0};
    parallel_for_dynamic(6, 4, [&](size_t) {
        parallel_for_dynamic(500, 4,
                             [&](size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 6 * 500);
}

TEST(ThreadPool, WorkersPersistAcrossLoops)
{
    ThreadPool& pool = ThreadPool::instance();
    const int budget = std::max(1, BenchConfig::threads());
    EXPECT_LE(pool.workers(), budget - 1 < 0 ? 0 : budget - 1);
    const long created_before = pool.workers_created();
    EXPECT_EQ(created_before, static_cast<long>(pool.workers()));
    // The old scheduler spawned `width` threads per call; the pool must
    // create exactly zero across any number of loops.
    for (int rep = 0; rep < 50; ++rep)
        parallel_for_dynamic(64, 8, [](size_t) {});
    EXPECT_EQ(pool.workers_created(), created_before);
}

TEST(ThreadPool, NestedLoadNeverExceedsThreadBudget)
{
    ThreadPool& pool = ThreadPool::instance();
    const int budget = std::max(1, BenchConfig::threads());
    pool.reset_peak();
    // Oversubscription regression (campaign -j N x runner --threads):
    // nested loops asking for the full budget at BOTH levels must still
    // execute on at most `budget` OS threads.
    parallel_for_dynamic(8, budget, [&](size_t) {
        parallel_for_dynamic(256, budget, [](size_t i) {
            // A little real work so helpers actually overlap.
            volatile uint64_t x = i;
            for (int k = 0; k < 100; ++k)
                x = x * 6364136223846793005ull + 1442695040888963407ull;
            (void)x;
        });
    });
    EXPECT_GE(pool.peak_active(), 1);
    EXPECT_LE(pool.peak_active(), budget);
}

}  // namespace
}  // namespace gld
