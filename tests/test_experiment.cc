#include "runtime/experiment.h"

#include <gtest/gtest.h>

#include "codes/surface_code.h"

namespace gld {
namespace {

struct Harness {
    CssCode code;
    RoundCircuit rc;
    CodeContext ctx;

    explicit Harness(int d)
        : code(SurfaceCode::make(d)), rc(code),
          ctx(code, rc, PatternScope::kBothTypes)
    {
    }
};

TEST(ExperimentRunner, DeterministicForSameSeed)
{
    Harness h(3);
    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard();
    cfg.rounds = 20;
    cfg.shots = 30;
    cfg.seed = 42;
    ExperimentRunner runner(h.ctx, cfg);
    const Metrics a = runner.run(PolicyZoo::eraser(true));
    const Metrics b = runner.run(PolicyZoo::eraser(true));
    EXPECT_DOUBLE_EQ(a.fn_total, b.fn_total);
    EXPECT_DOUBLE_EQ(a.fp_total, b.fp_total);
    EXPECT_DOUBLE_EQ(a.lrc_data_total, b.lrc_data_total);
    EXPECT_DOUBLE_EQ(a.dlp_total, b.dlp_total);
}

TEST(ExperimentRunner, IdealPolicyHasNoFalseNegatives)
{
    Harness h(3);
    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(1e-3, 1.0);
    cfg.rounds = 30;
    cfg.shots = 50;
    cfg.leakage_sampling = true;
    ExperimentRunner runner(h.ctx, cfg);
    const Metrics m = runner.run(PolicyZoo::ideal());
    EXPECT_DOUBLE_EQ(m.fn_total, 0.0);
    EXPECT_DOUBLE_EQ(m.fp_total, 0.0);
    EXPECT_GT(m.tp_total, 0.0);
}

TEST(ExperimentRunner, NoLrcPolicyAppliesNoLrcs)
{
    Harness h(3);
    ExperimentConfig cfg;
    cfg.rounds = 10;
    cfg.shots = 10;
    ExperimentRunner runner(h.ctx, cfg);
    const Metrics m = runner.run(PolicyZoo::no_lrc());
    EXPECT_DOUBLE_EQ(m.lrc_data_total, 0.0);
    EXPECT_DOUBLE_EQ(m.lrc_check_total, 0.0);
    EXPECT_DOUBLE_EQ(m.fp_total, 0.0);
}

TEST(ExperimentRunner, AlwaysLrcCountsEveryQubitEveryRound)
{
    Harness h(3);
    ExperimentConfig cfg;
    cfg.np.p = 0.0;
    cfg.np.leak_ratio = 0.0;
    cfg.rounds = 5;
    cfg.shots = 2;
    ExperimentRunner runner(h.ctx, cfg);
    const Metrics m = runner.run(PolicyZoo::always_lrc());
    // First round has no scheduled LRCs (decisions lag one round).
    EXPECT_DOUBLE_EQ(m.lrc_data_total, 2.0 * 4 * h.code.n_data());
    EXPECT_DOUBLE_EQ(m.lrc_check_total, 2.0 * 4 * h.code.n_checks());
}

TEST(ExperimentRunner, LeakageSamplingStartsLeaked)
{
    Harness h(3);
    ExperimentConfig cfg;
    cfg.np.p = 0;
    cfg.np.leak_ratio = 0;
    cfg.np.mobility = 0;  // keep the injected leak on the data qubit
    cfg.rounds = 1;
    cfg.shots = 20;
    cfg.leakage_sampling = true;
    cfg.record_dlp_series = true;
    ExperimentRunner runner(h.ctx, cfg);
    const Metrics m = runner.run(PolicyZoo::no_lrc());
    // With zero noise and no mitigation the injected leak persists:
    // DLP = 1/n_data every round.
    EXPECT_NEAR(m.dlp_mean(), 1.0 / h.code.n_data(), 1e-12);
}

TEST(ExperimentRunner, DlpSeriesMatchesTotals)
{
    Harness h(3);
    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(1e-3, 1.0);
    cfg.rounds = 15;
    cfg.shots = 20;
    cfg.leakage_sampling = true;
    cfg.record_dlp_series = true;
    ExperimentRunner runner(h.ctx, cfg);
    const Metrics m = runner.run(PolicyZoo::eraser(true));
    ASSERT_EQ(static_cast<int>(m.dlp_series.size()), cfg.rounds);
    double sum = 0;
    for (double v : m.dlp_series)
        sum += v;
    EXPECT_NEAR(sum, m.dlp_total, 1e-9);
}

TEST(ExperimentRunner, LerDecodingRunsAndIsBounded)
{
    Harness h(3);
    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard();
    cfg.rounds = 6;
    cfg.shots = 200;
    cfg.compute_ler = true;
    ExperimentRunner runner(h.ctx, cfg);
    const Metrics m = runner.run(PolicyZoo::gladiator(true, cfg.np));
    EXPECT_EQ(m.decoded_shots, 200);
    EXPECT_LT(m.ler(), 0.30);  // far below random guessing
}

TEST(ExperimentRunner, NoiselessLerIsZero)
{
    Harness h(3);
    ExperimentConfig cfg;
    cfg.np.p = 0;
    cfg.np.leak_ratio = 0;
    cfg.rounds = 5;
    cfg.shots = 50;
    cfg.compute_ler = true;
    ExperimentRunner runner(h.ctx, cfg);
    const Metrics m = runner.run(PolicyZoo::no_lrc());
    EXPECT_EQ(m.logical_errors, 0);
}

TEST(ExperimentRunner, GladiatorFlagsFewerFalsePositivesThanEraser)
{
    // The paper's central claim (Fig 9) at test scale.
    Harness h(5);
    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard();
    cfg.rounds = 40;
    cfg.shots = 120;
    cfg.leakage_sampling = true;
    ExperimentRunner runner(h.ctx, cfg);
    const Metrics er = runner.run(PolicyZoo::eraser(true));
    const Metrics gl = runner.run(PolicyZoo::gladiator(true, cfg.np));
    EXPECT_LT(gl.fp_total, er.fp_total);
    EXPECT_LT(gl.lrc_data_total, er.lrc_data_total);
}

// FN stamps must not leak between the shots of one block: a policy that
// scheduled a qubit at round r in an EARLIER shot must not mask a later
// shot's unserviced leak at the same round index.
class StampOnceInFirstShotPolicy : public Policy {
  public:
    explicit StampOnceInFirstShotPolicy(const CodeContext& ctx) : ctx_(&ctx)
    {
    }
    std::string name() const override { return "stamp-once"; }
    void begin_shot() override { ++shot_; }
    void observe(int round, const RoundResult&, LrcSchedule* out) override
    {
        out->clear();
        if (shot_ == 0 && round == 1) {
            for (int q = 0; q < ctx_->code().n_data(); ++q)
                out->data_qubits.push_back(q);
        }
    }

  private:
    const CodeContext* ctx_;
    int shot_ = -1;
};

TEST(ExperimentRunner, FalseNegativeStampsDoNotLeakAcrossShots)
{
    Harness h(3);
    ExperimentConfig cfg;
    cfg.np.p = 0;
    cfg.np.leak_ratio = 0;
    cfg.np.mobility = 0;       // the sampled leak stays where injected
    cfg.np.lrc_leak_prob = 0;  // the shot-0 LRC wave is noiseless
    cfg.rounds = 3;
    cfg.shots = 4;
    cfg.rng_streams = 1;  // all shots in one block: stamps could alias
    cfg.leakage_sampling = true;
    ExperimentRunner runner(h.ctx, cfg);
    const Metrics m = runner.run(
        [](const CodeContext& ctx, uint64_t) -> std::unique_ptr<Policy> {
            return std::make_unique<StampOnceInFirstShotPolicy>(ctx);
        });
    // Shot 0: the sampled leak is missed at round 0, serviced by the
    // round-1 all-qubit wave (applied/cleared at round 2) => 1 FN.
    // Shots 1..3: never serviced => one FN per round, INCLUDING round 1
    // — with stale stamps those three FNs vanish (7 instead of 10).
    EXPECT_DOUBLE_EQ(m.fn_total, 1.0 + 3.0 * cfg.rounds);
}

TEST(ExperimentRunner, ThreadedRunMergesAllShots)
{
    Harness h(3);
    ExperimentConfig cfg;
    cfg.rounds = 10;
    cfg.shots = 40;
    cfg.threads = 4;
    ExperimentRunner runner(h.ctx, cfg);
    const Metrics m = runner.run(PolicyZoo::eraser(true));
    EXPECT_EQ(m.shots, 40);
}

}  // namespace
}  // namespace gld
