#include "core/mobility.h"

#include <gtest/gtest.h>

#include "codes/surface_code.h"
#include "core/policy_gladiator.h"
#include "runtime/experiment.h"

namespace gld {
namespace {

TEST(MobilityEstimator, CountsConditionalRate)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, PatternScope::kBothTypes);
    MobilityEstimator est(ctx);
    RoundResult rr;
    rr.mlr_flag.assign(code.n_checks(), 0);
    rr.mlr_flag[ctx.observed_checks(4)[0]] = 1;
    est.observe({4}, rr);       // flagged qubit with a leaked neighbour
    est.observe({0}, rr);       // flagged qubit; neighbour flags depend
    EXPECT_EQ(est.samples(), 2);
    EXPECT_GE(est.conditional_rate(), 0.5);
    est.reset();
    EXPECT_EQ(est.samples(), 0);
}

TEST(MobilityEstimator, HigherMobilityRaisesEstimate)
{
    // End-to-end: run short experiments at two mobility settings and
    // confirm the conditional rate orders correctly (the basis of the
    // paper's Table 6 classifier).
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, PatternScope::kBothTypes);

    auto measure = [&](double mobility) {
        NoiseParams np = NoiseParams::standard(1e-3, 1.0);
        np.mobility = mobility;
        auto tables = std::make_shared<const PatternTableSet>(
            PatternTableSet::build(ctx, np, {}, false));
        MobilityEstimator est(ctx);
        LeakFrameSim sim(code, rc, np, 2024);
        GladiatorPolicy policy(ctx, tables, true);
        LrcSchedule sched;
        for (int shot = 0; shot < 60; ++shot) {
            sim.reset_shot();
            sim.inject_data_leak(shot % code.n_data());
            for (int r = 0; r < 30; ++r) {
                const RoundResult rr = sim.run_round(sched);
                policy.observe(r, rr, &sched);
                est.observe(sched.data_qubits, rr);
            }
        }
        return est.conditional_rate();
    };

    const double low = measure(0.01);
    const double high = measure(0.30);
    EXPECT_GT(high, low);
}

}  // namespace
}  // namespace gld
