// The cross-backend referee (campaign verify): arm-spec derivation,
// compare-mode selection, candidate resolution, and the three
// end-to-end properties the tool is trusted for —
//
//  1. CALIBRATION: under the null (same backend, disjoint seeds) the
//     referee passes at the configured family-wise alpha;
//  2. POWER: a deliberately injected rate delta is flagged;
//  3. DISTRIBUTION: sharded verify runs merge bit-identically to a
//     single-process verify of the same grid.

#include <unistd.h>

#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/verify.h"
#include "metrics_test_util.h"

namespace gld {
namespace campaign {
namespace {

using test::expect_metrics_identical;

std::string
fresh_dir(const std::string& tag)
{
    // Unique per test-binary execution: checkpoints persist by design,
    // so reusing a stale directory would resume where these tests
    // assert a cold start.
    return ::testing::TempDir() + "gld_verify_" +
           std::to_string(::getpid()) + "_" + tag;
}

/** A grid small enough to referee in well under a second. */
CampaignSpec
tiny_grid(const std::string& name, uint64_t seed)
{
    CampaignSpec grid;
    grid.name = name;
    grid.seed = seed;
    grid.shots = 192;
    grid.rounds = 6;
    grid.rng_streams = 4;
    grid.leakage_sampling = true;
    grid.compute_ler = true;
    grid.record_dlp_series = true;
    grid.codes = {"surface:3"};
    grid.policies = {"eraser_m"};
    grid.noise = {NoiseParams::standard(2e-3, 0.5)};
    return grid;
}

// ------------------------------------------------------- Arm specs.

TEST(VerifyArmSpec, ReferenceArmOnlyRenamesAndRetargets)
{
    const CampaignSpec grid = tiny_grid("g", 77);
    VerifyOptions opt;
    opt.independent_seeds = true;    // must NOT touch the reference
    opt.inject_noise_scale = 3.0;    // must NOT touch the reference
    const CampaignSpec arm =
        verify_arm_spec(grid, SimBackend::kTableau, true, opt);
    EXPECT_EQ("g.ref.tableau", arm.name);
    EXPECT_EQ(SimBackend::kTableau, arm.backend);
    EXPECT_EQ(grid.seed, arm.seed);
    EXPECT_DOUBLE_EQ(grid.noise[0].p, arm.noise[0].p);
    EXPECT_EQ(grid.shots, arm.shots);
}

TEST(VerifyArmSpec, CandidateArmSaltsSeedOnlyWithIndependentSeeds)
{
    const CampaignSpec grid = tiny_grid("g", 77);
    VerifyOptions opt;
    const CampaignSpec paired =
        verify_arm_spec(grid, SimBackend::kBatchFrame, false, opt);
    EXPECT_EQ("g.cand.batch_frame", paired.name);
    EXPECT_EQ(grid.seed, paired.seed);  // paired design: same job seeds

    opt.independent_seeds = true;
    const CampaignSpec salted =
        verify_arm_spec(grid, SimBackend::kBatchFrame, false, opt);
    EXPECT_NE(grid.seed, salted.seed);
    // Deterministic: every process derives the identical arm.
    const CampaignSpec again =
        verify_arm_spec(grid, SimBackend::kBatchFrame, false, opt);
    EXPECT_EQ(salted.seed, again.seed);
    // The salt depends on the arm name, so two candidate arms of one
    // verify run draw distinct randomness.
    const CampaignSpec other =
        verify_arm_spec(grid, SimBackend::kTableau, false, opt);
    EXPECT_NE(salted.seed, other.seed);
}

TEST(VerifyArmSpec, CandidateArmScalesEveryNoisePoint)
{
    CampaignSpec grid = tiny_grid("g", 77);
    grid.noise.push_back(NoiseParams::standard(1e-3, 0.1));
    VerifyOptions opt;
    opt.inject_noise_scale = 3.0;
    const CampaignSpec arm =
        verify_arm_spec(grid, SimBackend::kFrame, false, opt);
    ASSERT_EQ(2u, arm.noise.size());
    EXPECT_DOUBLE_EQ(3.0 * grid.noise[0].p, arm.noise[0].p);
    EXPECT_DOUBLE_EQ(3.0 * grid.noise[1].p, arm.noise[1].p);
    // Ratios (leak, MLR) ride along unscaled.
    EXPECT_DOUBLE_EQ(grid.noise[0].leak_ratio, arm.noise[0].leak_ratio);
}

// ----------------------------------------------------- Compare mode.

TEST(VerifyCompareMode, FollowsRngContractUnlessPerturbed)
{
    VerifyOptions opt;  // reference = frame
    // frame and batch_frame share the scalar-replay RNG contract.
    EXPECT_EQ(CompareMode::kBitExact,
              verify_compare_mode(SimBackend::kBatchFrame, opt));
    // tableau draws independent measurement randomness.
    EXPECT_EQ(CompareMode::kStatistical,
              verify_compare_mode(SimBackend::kTableau, opt));
    // batch_tableau derives its per-lane tableau streams differently
    // from scalar tableau (a third RNG contract): statistical against
    // frame AND against tableau.
    EXPECT_EQ(CompareMode::kStatistical,
              verify_compare_mode(SimBackend::kBatchTableau, opt));
    VerifyOptions tab_ref = opt;
    tab_ref.reference = SimBackend::kTableau;
    EXPECT_EQ(CompareMode::kStatistical,
              verify_compare_mode(SimBackend::kBatchTableau, tab_ref));

    // Any deliberate perturbation downgrades to statistical.
    VerifyOptions seeds = opt;
    seeds.independent_seeds = true;
    EXPECT_EQ(CompareMode::kStatistical,
              verify_compare_mode(SimBackend::kBatchFrame, seeds));
    VerifyOptions inject = opt;
    inject.inject_noise_scale = 2.0;
    EXPECT_EQ(CompareMode::kStatistical,
              verify_compare_mode(SimBackend::kBatchFrame, inject));
}

TEST(VerifyCompareMode, SparseSamplingMovesBatchBackendsToStatistical)
{
    VerifyOptions opt;  // reference = frame
    // Under sparse draws the batch backends leave the scalar-replay
    // contract: batch_frame vs frame becomes the qualification
    // comparison — statistical, against a genuine lockstep reference.
    EXPECT_EQ(CompareMode::kStatistical,
              verify_compare_mode(SimBackend::kBatchFrame, opt,
                                  NoiseSampling::kSparse));
    // Scalar backends ignore the knob: tableau keeps its own contract
    // and frame-vs-tableau stays statistical exactly as at lockstep.
    EXPECT_EQ(CompareMode::kStatistical,
              verify_compare_mode(SimBackend::kTableau, opt,
                                  NoiseSampling::kSparse));
    // Two sparse batch arms still share ONE sparse contract per backend:
    // batch_frame refereed against a batch_frame reference stays
    // bit-exact even at sparse (same event stream derivation).
    VerifyOptions bf_ref = opt;
    bf_ref.reference = SimBackend::kBatchFrame;
    EXPECT_EQ(CompareMode::kBitExact,
              verify_compare_mode(SimBackend::kBatchFrame, bf_ref,
                                  NoiseSampling::kSparse));
}

// ------------------------------------------------------- Candidates.

TEST(VerifyCandidates, DefaultIsEveryOtherBackend)
{
    VerifyOptions opt;  // reference = frame, candidates empty
    const std::vector<SimBackend> c = verify_candidates(opt);
    ASSERT_EQ(3u, c.size());
    EXPECT_EQ(SimBackend::kTableau, c[0]);
    EXPECT_EQ(SimBackend::kBatchFrame, c[1]);
    EXPECT_EQ(SimBackend::kBatchTableau, c[2]);
}

TEST(VerifyCandidates, SelfCandidateNeedsIndependentSeeds)
{
    VerifyOptions opt;
    opt.candidates = {SimBackend::kFrame};
    EXPECT_THROW(verify_candidates(opt), std::runtime_error);
    opt.independent_seeds = true;  // the null-calibration mode
    EXPECT_EQ(1u, verify_candidates(opt).size());
}

TEST(VerifyCandidates, RejectsDuplicates)
{
    VerifyOptions opt;
    opt.candidates = {SimBackend::kTableau, SimBackend::kTableau};
    EXPECT_THROW(verify_candidates(opt), std::runtime_error);
}

// ------------------------------------------------- The referee runs.

TEST(RunVerify, BitExactArmPassesAndRecordsNoChecks)
{
    const CampaignSpec grid = tiny_grid("bitexact", 0xB17E8Au);
    VerifyOptions opt;
    opt.candidates = {SimBackend::kBatchFrame};
    opt.threads = 2;
    const VerifyReport report =
        run_verify(grid, opt, 1, fresh_dir("bitexact"));
    EXPECT_TRUE(report.pass);
    ASSERT_EQ(1u, report.points.size());
    EXPECT_EQ(CompareMode::kBitExact, report.points[0].mode);
    EXPECT_TRUE(report.points[0].bit_mismatches.empty());
    EXPECT_TRUE(report.points[0].checks.empty());
    EXPECT_EQ(0, report.n_stat_tests);
}

TEST(RunVerify, BatchTableauAgreesStatisticallyWithTableauReference)
{
    // The exact-engine referee: the scalar tableau backend judges the
    // K*64-lockstep batch tableau backend.  Different per-lane RNG
    // derivations make this a statistical comparison by contract, and
    // the two exact engines must agree on every refereed rate.
    const CampaignSpec grid = tiny_grid("battab", 0xBA77ABu);
    VerifyOptions opt;
    opt.reference = SimBackend::kTableau;
    opt.candidates = {SimBackend::kBatchTableau};
    opt.threads = 2;
    const VerifyReport report =
        run_verify(grid, opt, 1, fresh_dir("battab"));
    EXPECT_TRUE(report.pass);
    ASSERT_EQ(1u, report.points.size());
    EXPECT_EQ(CompareMode::kStatistical, report.points[0].mode);
    EXPECT_GT(report.n_stat_tests, 0);
}

TEST(RunVerify, NullCalibrationPassesAtAlpha)
{
    // Same backend, disjoint seeds: everything the referee flags here
    // is by construction a false positive.  One fixed seed is one draw
    // from the null; the 20-seed sweep behind the trial-unit choice in
    // Metrics (see metrics.h) showed z std <= 1 for every clustered
    // metric, so a family-alpha=0.01 pass is the overwhelmingly likely
    // outcome and a regression that breaks calibration (or the sample
    // definitions) flips it.
    const CampaignSpec grid = tiny_grid("nullcal", 0xA11CEu);
    VerifyOptions opt;
    opt.candidates = {SimBackend::kFrame};
    opt.independent_seeds = true;
    opt.threads = 2;
    const VerifyReport report =
        run_verify(grid, opt, 1, fresh_dir("nullcal"));
    EXPECT_TRUE(report.pass);
    ASSERT_EQ(1u, report.points.size());
    EXPECT_EQ(CompareMode::kStatistical, report.points[0].mode);
    ASSERT_EQ(4u, report.points[0].checks.size());  // ler, fn, fp, dlp
    EXPECT_EQ(4, report.n_stat_tests);
    EXPECT_LT(report.per_test_alpha, report.alpha);
}

TEST(RunVerify, InjectedRateDeltaIsFlagged)
{
    // 3x physical error rate on the candidate arm: the FP rate roughly
    // doubles (z ~ -5 at 192 shots under the trajectory trial unit), so
    // the referee must fail — this is the power half of calibration.
    const CampaignSpec grid = tiny_grid("inject", 0xA11CEu);
    VerifyOptions opt;
    opt.candidates = {SimBackend::kFrame};
    opt.independent_seeds = true;
    opt.inject_noise_scale = 3.0;
    opt.threads = 2;
    const VerifyReport report =
        run_verify(grid, opt, 1, fresh_dir("inject"));
    EXPECT_FALSE(report.pass);
    ASSERT_EQ(1u, report.points.size());
    EXPECT_FALSE(report.points[0].pass);
    bool some_check_failed = false;
    for (const RateCheck& c : report.points[0].checks)
        some_check_failed |= !c.pass;
    EXPECT_TRUE(some_check_failed);
}

TEST(RunVerify, SparseBatchFrameAgreesStatisticallyWithFrameReference)
{
    // THE sparse qualification gate: a sparse batch_frame candidate is
    // refereed against the lockstep scalar frame reference.  The event
    // sampler draws a completely different randomness sequence, so the
    // comparison is statistical by contract — and the sampler is only
    // correct if every refereed rate agrees.
    CampaignSpec grid = tiny_grid("sparse", 0x5BA85Eu);
    grid.noise_sampling = NoiseSampling::kSparse;
    VerifyOptions opt;
    opt.candidates = {SimBackend::kBatchFrame};
    opt.threads = 2;
    const VerifyReport report =
        run_verify(grid, opt, 1, fresh_dir("sparse"));
    EXPECT_TRUE(report.pass);
    ASSERT_EQ(1u, report.points.size());
    EXPECT_EQ(CompareMode::kStatistical, report.points[0].mode);
    EXPECT_GT(report.n_stat_tests, 0);
}

TEST(RunVerify, SparseNullCalibrationPassesAtAlpha)
{
    // Null calibration WITHIN sparse mode: same backend (batch_frame),
    // same sparse sampler, disjoint seeds.  Anything flagged here is a
    // false positive, so a family-alpha=0.01 pass is the overwhelmingly
    // likely outcome — and a sparse-sampler bug that skews the draw
    // distribution between seeds flips it.
    CampaignSpec grid = tiny_grid("sparsenull", 0x5BA85EA11u);
    grid.noise_sampling = NoiseSampling::kSparse;
    VerifyOptions opt;
    opt.reference = SimBackend::kBatchFrame;
    opt.candidates = {SimBackend::kBatchFrame};
    opt.independent_seeds = true;
    opt.threads = 2;
    const VerifyReport report =
        run_verify(grid, opt, 1, fresh_dir("sparsenull"));
    EXPECT_TRUE(report.pass);
    ASSERT_EQ(1u, report.points.size());
    EXPECT_EQ(CompareMode::kStatistical, report.points[0].mode);
    ASSERT_EQ(4u, report.points[0].checks.size());  // ler, fn, fp, dlp
}

TEST(RunVerify, SparseInjectedRateDeltaIsFlagged)
{
    // Power at sparse: 3x physical error rate on the sparse candidate
    // arm must be flagged against the lockstep frame reference — the
    // referee keeps its teeth when the sampler changes.
    CampaignSpec grid = tiny_grid("sparseinject", 0xA11CEu);
    grid.noise_sampling = NoiseSampling::kSparse;
    VerifyOptions opt;
    opt.candidates = {SimBackend::kBatchFrame};
    opt.inject_noise_scale = 3.0;
    opt.threads = 2;
    const VerifyReport report =
        run_verify(grid, opt, 1, fresh_dir("sparseinject"));
    EXPECT_FALSE(report.pass);
    ASSERT_EQ(1u, report.points.size());
    EXPECT_FALSE(report.points[0].pass);
}

TEST(RunVerify, RejectsBadOptions)
{
    const CampaignSpec grid = tiny_grid("bad", 1);
    VerifyOptions opt;
    opt.alpha = 0.0;
    EXPECT_THROW(run_verify(grid, opt, 1, fresh_dir("bad_alpha")),
                 std::runtime_error);
    VerifyOptions scale;
    scale.inject_noise_scale = -1.0;
    EXPECT_THROW(run_verify(grid, scale, 1, fresh_dir("bad_scale")),
                 std::runtime_error);
}

TEST(RunVerify, ShardedRunMergesBitIdenticallyToSingleProcess)
{
    // The acceptance contract: verify_run_shard x3 (a simulated fleet)
    // then run_verify over the same out_dir RESUMES those checkpoints,
    // and every arm's merged Metrics — and the verdict document itself —
    // is bit-identical to a fresh single-process verify.
    const CampaignSpec grid = tiny_grid("shards", 0x5AAD5u);
    VerifyOptions opt;
    opt.candidates = {SimBackend::kTableau, SimBackend::kBatchFrame};
    opt.threads = 2;

    const std::string fleet_dir = fresh_dir("fleet");
    const int n_shards = 3;
    for (int s = 0; s < n_shards; ++s)
        verify_run_shard(grid, opt, s, n_shards, fleet_dir);
    const VerifyReport fleet = run_verify(grid, opt, n_shards, fleet_dir);

    const std::string solo_dir = fresh_dir("solo");
    const VerifyReport solo = run_verify(grid, opt, 1, solo_dir);

    EXPECT_TRUE(fleet.pass);
    EXPECT_TRUE(solo.pass);
    // The verdict documents agree bit-for-bit (rates, z, p-values, CIs
    // all serialize doubles exactly).
    EXPECT_EQ(solo.to_json().dump(2), fleet.to_json().dump(2));

    // And so does every arm's merged Metrics, dlp_series included.
    std::vector<CampaignSpec> arms = {
        verify_arm_spec(grid, opt.reference, true, opt)};
    for (SimBackend cand : verify_candidates(opt))
        arms.push_back(verify_arm_spec(grid, cand, false, opt));
    for (const CampaignSpec& arm : arms) {
        const std::vector<Metrics> a = load_merged(arm, fleet_dir);
        const std::vector<Metrics> b = load_merged(arm, solo_dir);
        ASSERT_EQ(a.size(), b.size()) << arm.name;
        for (size_t i = 0; i < a.size(); ++i)
            expect_metrics_identical(a[i], b[i]);
    }
}

}  // namespace
}  // namespace campaign
}  // namespace gld
