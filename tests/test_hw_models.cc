#include <gtest/gtest.h>

#include "codes/surface_code.h"
#include "hw/fsm_model.h"
#include "hw/lut_model.h"
#include "hw/timing_model.h"

namespace gld {
namespace {

TEST(LutModel, GladiatorTotalsMatchPaperTable3)
{
    // Table 3: GLADIATOR LUTs per logical qubit = 10 * ceil(d^2/100).
    const std::vector<std::pair<int, int>> expected = {
        {5, 10}, {9, 10}, {13, 20}, {17, 30}, {21, 50}, {25, 70}};
    for (const auto& [d, luts] : expected)
        EXPECT_EQ(LutModel::gladiator(d).total, luts) << "d=" << d;
}

TEST(LutModel, DnfLutCounts)
{
    // One cube over <= 6 literals: one LUT, no OR stage.
    std::vector<Cube> one = {{0b101, 0b000}};
    EXPECT_EQ(LutModel::dnf_luts(one, 3), 1);
    // Seven cubes: 7 AND LUTs + 2 OR LUTs (6+1 -> 2 -> 1).
    std::vector<Cube> seven(7, Cube{0, 0});
    EXPECT_EQ(LutModel::dnf_luts(seven, 5), 7 + 2 + 1);
    EXPECT_EQ(LutModel::dnf_luts({}, 5), 0);
}

TEST(EraserFsmModel, MatchesPublishedWithinTolerance)
{
    for (int d : {5, 9, 13, 17, 21, 25}) {
        const double published = EraserFsmModel::published(d);
        const double model = EraserFsmModel::luts(d);
        EXPECT_NEAR(model / published, 1.0, 0.03) << "d=" << d;
    }
}

TEST(EraserFsmModel, ReductionFactorAtLeastSeventeen)
{
    // Table 3's headline: 17x-81x fewer LUTs for GLADIATOR.
    for (int d : {5, 9, 13, 17, 21, 25}) {
        const double ratio =
            static_cast<double>(EraserFsmModel::luts(d)) /
            LutModel::gladiator(d).total;
        EXPECT_GE(ratio, 17.0) << "d=" << d;
        EXPECT_LE(ratio, 90.0) << "d=" << d;
    }
}

TEST(TimingModel, BaseRoundLatency)
{
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    TimingModel tm;
    // 8 CNOT steps (phase-separated schedule) * 25 + 2 H * 10 + 300.
    EXPECT_DOUBLE_EQ(tm.base_round_ns(rc),
                     rc.n_cnot_steps() * 25.0 + 20.0 + 300.0);
    EXPECT_GT(tm.avg_round_ns(rc, 0.5), tm.base_round_ns(rc));
}

TEST(TimingModel, AlwaysLrcDepthIncreaseNearTwentyPercent)
{
    // §7.5: always-lrc (one LRC per qubit per round) increases execution
    // depth by ~20%.
    const CssCode code = SurfaceCode::make(11);
    const RoundCircuit rc(code);
    TimingModel tm;
    EXPECT_NEAR(tm.depth_increase(rc, 1.0), 0.20, 0.06);
}

TEST(TimingModel, ProfileGateTimeConsumesDriverOpCounts)
{
    // The driver-level op profile feeds the timing model directly: the
    // quiet round's serial gate work is the circuit census priced by the
    // latency table, and the check-LRC overhead prices as that gadget's
    // extra primitives — no hand-maintained gate counts anywhere.
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    NoiseParams np;
    np.p = 0.0;
    np.leak_ratio = 0.0;
    np.lrc_leak_prob = 0.0;
    LrcSchedule sched;
    sched.checks = {1};
    const RoundOpProfile profile = profile_round_ops(code, rc, np, sched);

    const TimingModel tm;
    const TimingParams& tp = tm.params();
    EXPECT_DOUBLE_EQ(
        tm.profile_gate_ns(profile.quiet),
        static_cast<double>(profile.quiet.cnots) * tp.t_cnot_ns +
            static_cast<double>(profile.quiet.hadamards) * tp.t_h_ns +
            static_cast<double>(profile.quiet.measures) *
                tp.t_meas_reset_ns);
    EXPECT_GT(tm.profile_gate_ns(profile.quiet), 0.0);
    // The check gadget adds only a reset, which rides in the
    // measurement/reset window: zero extra serial gate time.
    EXPECT_DOUBLE_EQ(tm.profile_gate_ns(profile.lrc_overhead), 0.0);
    // Work model vs critical-path model: total gate work of the quiet
    // round strictly exceeds the scheduled round's critical path.
    EXPECT_GT(tm.profile_gate_ns(profile.quiet), tm.base_round_ns(rc));
}

TEST(TimingModel, CompareRoundNsMeasuredOverModeled)
{
    // The telemetry bridge: measured wall ns/round (stage timers) against
    // the op-profile-priced model.
    const TimingModel tm;
    OpCounts ops;
    ops.cnots = 4;  // 4 * 25 = 100 modeled ns
    const TimingModel::ModelComparison cmp =
        tm.compare_round_ns(ops, /*measured_round_ns=*/250.0);
    EXPECT_DOUBLE_EQ(cmp.modeled_ns, 100.0);
    EXPECT_DOUBLE_EQ(cmp.measured_ns, 250.0);
    EXPECT_DOUBLE_EQ(cmp.ratio, 2.5);

    // A zero-priced profile yields ratio 0, not a division by zero.
    const TimingModel::ModelComparison zero =
        tm.compare_round_ns(OpCounts{}, 123.0);
    EXPECT_DOUBLE_EQ(zero.modeled_ns, 0.0);
    EXPECT_DOUBLE_EQ(zero.ratio, 0.0);
}

TEST(TimingModel, LrcLatencyProportionalToCount)
{
    TimingModel tm;
    EXPECT_DOUBLE_EQ(tm.lrc_latency_ns(2.0), 2.0 * tm.params().t_lrc_ns);
    EXPECT_DOUBLE_EQ(tm.lrc_latency_ns(0.0), 0.0);
}

}  // namespace
}  // namespace gld
