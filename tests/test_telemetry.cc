// The telemetry side channel's two contracts (src/telemetry/telemetry.h):
//
// 1. DRIFT GATE — attaching a collector (heatmap included) must leave the
//    runner's Metrics bit-identical to a run with no collector, on every
//    backend and at any thread count.  Telemetry never draws RNG and never
//    reorders a result-bearing sum; this suite is what pins that.
//
// 2. DETERMINISTIC AGGREGATES — every non-time telemetry field (shots,
//    rounds, blocks, leak histogram, heatmap) is a u64 count merged in
//    ascending (stream, block) order, so it inherits the Metrics
//    reproducibility contract: identical across thread counts and for
//    sharded-vs-single-process runs.  Stage times are wall-clock and
//    deliberately excluded from every comparison.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "codes/surface_code.h"
#include "metrics_test_util.h"
#include "runtime/experiment.h"
#include "telemetry/telemetry.h"

namespace gld {
namespace {

using test::expect_metrics_identical;

ExperimentConfig
small_config(SimBackend backend)
{
    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(1e-3, 0.1);
    cfg.rounds = 5;
    cfg.shots = 96;  // 8 streams x 12: several units, all partial blocks
    cfg.seed = 0x7E1E5EEDull;
    cfg.leakage_sampling = true;  // guarantees non-empty heatmap/histogram
    cfg.record_dlp_series = true;
    cfg.compute_ler = true;  // exercise the decode stage too
    cfg.rng_streams = 8;
    cfg.backend = backend;
    return cfg;
}

/** Runs cfg with an attached collector and returns (metrics, record). */
Metrics
run_collected(const CodeContext& ctx, const ExperimentConfig& cfg,
              const PolicyFactory& factory, bool heatmap,
              telemetry::Record* out_rec)
{
    ExperimentRunner runner(ctx, cfg);
    telemetry::Collector::Options opt;
    opt.heatmap = heatmap;
    telemetry::Collector col(std::move(opt));
    runner.set_telemetry(&col);
    const Metrics m = runner.run(factory);
    if (out_rec != nullptr)
        *out_rec = col.merged();
    return m;
}

/** All deterministic Record fields equal; stage_ns deliberately ignored. */
void
expect_deterministic_fields_eq(const telemetry::Record& a,
                               const telemetry::Record& b)
{
    EXPECT_EQ(a.shots, b.shots);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.blocks, b.blocks);
    EXPECT_EQ(a.leak_hist, b.leak_hist);
    EXPECT_EQ(a.heatmap.rounds, b.heatmap.rounds);
    EXPECT_EQ(a.heatmap.n_data, b.heatmap.n_data);
    EXPECT_EQ(a.heatmap.n_checks, b.heatmap.n_checks);
    EXPECT_EQ(a.heatmap.counts, b.heatmap.counts);
}

// Contract 1: telemetry on (with heatmap) vs off — Metrics bit-identical,
// all three backends, threads 1 and 8.
TEST(TelemetryDriftGate, MetricsBitIdenticalWithAndWithoutCollector)
{
    if (!telemetry::kCompiledIn)
        GTEST_SKIP() << "built with GLD_TELEMETRY=OFF";
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);

    for (SimBackend backend :
         {SimBackend::kFrame, SimBackend::kTableau, SimBackend::kBatchFrame,
          SimBackend::kBatchTableau}) {
        SCOPED_TRACE(backend_name(backend));
        ExperimentConfig cfg = small_config(backend);
        for (int threads : {1, 8}) {
            SCOPED_TRACE(threads);
            cfg.threads = threads;
            const Metrics bare = ExperimentRunner(ctx, cfg).run(factory);
            const Metrics observed =
                run_collected(ctx, cfg, factory, /*heatmap=*/true, nullptr);
            expect_metrics_identical(bare, observed);
        }
    }
}

// The drift gate again at a multi-word batch width: the K-word heatmap
// popcount path and the K-word FN/DLP accounting must be side-channel
// clean too (same bits with and without a collector attached).
TEST(TelemetryDriftGate, MetricsBitIdenticalAtWideBatchWidth)
{
    if (!telemetry::kCompiledIn)
        GTEST_SKIP() << "built with GLD_TELEMETRY=OFF";
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);

    for (SimBackend backend :
         {SimBackend::kBatchFrame, SimBackend::kBatchTableau}) {
        SCOPED_TRACE(backend_name(backend));
        ExperimentConfig cfg = small_config(backend);
        cfg.batch_words = 2;
        cfg.rng_streams = 1;  // 96 shots: one 128-lane block, 32 masked
        for (int threads : {1, 4}) {
            SCOPED_TRACE(threads);
            cfg.threads = threads;
            const Metrics bare = ExperimentRunner(ctx, cfg).run(factory);
            const Metrics observed =
                run_collected(ctx, cfg, factory, /*heatmap=*/true, nullptr);
            expect_metrics_identical(bare, observed);
        }
    }
}

// The drift gate at sparse noise sampling: the event sampler's quiet-
// round fast paths skip whole fused sweeps, so the telemetry hooks (per-
// block stage timers, heatmap popcounts) must still see every block and
// must not perturb the event stream — same bits with and without a
// collector attached, on both batch backends.
TEST(TelemetryDriftGate, MetricsBitIdenticalAtSparseSampling)
{
    if (!telemetry::kCompiledIn)
        GTEST_SKIP() << "built with GLD_TELEMETRY=OFF";
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);

    for (SimBackend backend :
         {SimBackend::kBatchFrame, SimBackend::kBatchTableau}) {
        SCOPED_TRACE(backend_name(backend));
        ExperimentConfig cfg = small_config(backend);
        cfg.noise_sampling = NoiseSampling::kSparse;
        for (int threads : {1, 4}) {
            SCOPED_TRACE(threads);
            cfg.threads = threads;
            const Metrics bare = ExperimentRunner(ctx, cfg).run(factory);
            const Metrics observed =
                run_collected(ctx, cfg, factory, /*heatmap=*/true, nullptr);
            expect_metrics_identical(bare, observed);
        }
    }
}

// The drift gate crossed with worker-state reuse: telemetry attachment
// and per-worker simulator/policy/decoder reuse are BOTH pure
// implementation details, so all four {collector on/off} x {reuse
// on/off} arms must produce one bit pattern — a collector must not
// perturb the reuse path (the Record rides per work unit while the
// slot's caches ride per worker) and vice versa.
TEST(TelemetryDriftGate, MetricsBitIdenticalAcrossReuseAndCollectorArms)
{
    if (!telemetry::kCompiledIn)
        GTEST_SKIP() << "built with GLD_TELEMETRY=OFF";
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);

    for (SimBackend backend : {SimBackend::kFrame, SimBackend::kBatchFrame}) {
        SCOPED_TRACE(backend_name(backend));
        ExperimentConfig cfg = small_config(backend);
        cfg.threads = 8;
        ExperimentConfig fresh_cfg = cfg;
        fresh_cfg.reuse_worker_state = false;
        const Metrics base = ExperimentRunner(ctx, fresh_cfg).run(factory);
        expect_metrics_identical(base, ExperimentRunner(ctx, cfg).run(factory));
        expect_metrics_identical(
            base,
            run_collected(ctx, fresh_cfg, factory, /*heatmap=*/true, nullptr));
        expect_metrics_identical(
            base, run_collected(ctx, cfg, factory, /*heatmap=*/true, nullptr));
    }
}

// Contract 2a: the deterministic aggregates are thread-count independent,
// per backend.
TEST(TelemetryDeterminism, AggregatesIdenticalAcrossThreadCounts)
{
    if (!telemetry::kCompiledIn)
        GTEST_SKIP() << "built with GLD_TELEMETRY=OFF";
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);

    for (SimBackend backend :
         {SimBackend::kFrame, SimBackend::kTableau, SimBackend::kBatchFrame,
          SimBackend::kBatchTableau}) {
        SCOPED_TRACE(backend_name(backend));
        ExperimentConfig cfg = small_config(backend);
        cfg.threads = 1;
        telemetry::Record base;
        run_collected(ctx, cfg, factory, /*heatmap=*/true, &base);
        cfg.threads = 8;
        telemetry::Record wide;
        run_collected(ctx, cfg, factory, /*heatmap=*/true, &wide);
        expect_deterministic_fields_eq(base, wide);
    }
}

// Contract 2b: a sharded run (each shard its own collector over its
// stream subset via run_partials) merges to the single-process record.
TEST(TelemetryDeterminism, ShardedCollectorsMergeToSingleRunRecord)
{
    if (!telemetry::kCompiledIn)
        GTEST_SKIP() << "built with GLD_TELEMETRY=OFF";
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);

    ExperimentConfig cfg = small_config(SimBackend::kFrame);
    cfg.threads = 2;
    telemetry::Record base;
    run_collected(ctx, cfg, factory, /*heatmap=*/true, &base);

    const int n_streams = ExperimentRunner::n_streams(cfg);
    ASSERT_GT(n_streams, 2);
    telemetry::Record merged;
    for (int shard = 0; shard < 3; ++shard) {
        std::vector<int> streams;
        for (int s = shard; s < n_streams; s += 3)
            streams.push_back(s);
        ExperimentRunner runner(ctx, cfg);
        telemetry::Collector::Options opt;
        opt.heatmap = true;
        telemetry::Collector col(std::move(opt));
        runner.set_telemetry(&col);
        (void)runner.run_partials(factory, streams);
        merged.merge(col.merged());
    }
    expect_deterministic_fields_eq(base, merged);
}

// Internal consistency of one run's record: the histogram and the heatmap
// are two projections of the same leakage trajectories.
TEST(TelemetryDeterminism, RecordInvariantsHold)
{
    if (!telemetry::kCompiledIn)
        GTEST_SKIP() << "built with GLD_TELEMETRY=OFF";
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);

    const ExperimentConfig cfg = small_config(SimBackend::kBatchFrame);
    telemetry::Record rec;
    run_collected(ctx, cfg, factory, /*heatmap=*/true, &rec);

    EXPECT_EQ(rec.shots, static_cast<uint64_t>(cfg.shots));
    EXPECT_EQ(rec.rounds, static_cast<uint64_t>(cfg.shots) *
                              static_cast<uint64_t>(cfg.rounds));
    EXPECT_EQ(rec.blocks, static_cast<uint64_t>(
                              ExperimentRunner::n_work_units(cfg)));

    // The histogram covers every (shot, round) pair exactly once.
    ASSERT_EQ(rec.leak_hist.size(),
              static_cast<size_t>(code.n_data()) + 1);
    const uint64_t hist_total = std::accumulate(
        rec.leak_hist.begin(), rec.leak_hist.end(), uint64_t{0});
    EXPECT_EQ(hist_total, rec.rounds);

    // With leakage sampling every shot starts leaked, so bucket 0 cannot
    // hold everything and the heatmap cannot be all-zero.
    EXPECT_LT(rec.leak_hist[0], rec.rounds);

    // Heatmap dimensions match the experiment, and its data columns sum
    // to the histogram's first moment (both count leaked data
    // qubit-rounds).
    ASSERT_TRUE(rec.heatmap.enabled());
    EXPECT_EQ(rec.heatmap.rounds, cfg.rounds);
    EXPECT_EQ(rec.heatmap.n_data, code.n_data());
    EXPECT_EQ(rec.heatmap.n_checks, code.n_checks());
    uint64_t data_occupancy = 0;
    for (int r = 0; r < rec.heatmap.rounds; ++r)
        for (int q = 0; q < rec.heatmap.n_data; ++q)
            data_occupancy += rec.heatmap.at(r, q);
    uint64_t hist_moment = 0;
    for (size_t k = 0; k < rec.leak_hist.size(); ++k)
        hist_moment += static_cast<uint64_t>(k) * rec.leak_hist[k];
    EXPECT_EQ(data_occupancy, hist_moment);
    EXPECT_GT(data_occupancy, 0u);
}

// The same two-projection invariants at a multi-word batch width: the
// heatmap's per-(round, qubit) occupancy now comes from popcounts summed
// over K leak words, and it must still tile every (shot, round) pair
// exactly once — a word mis-indexed in the K-word popcount path breaks
// the histogram/heatmap moment identity immediately.
TEST(TelemetryDeterminism, RecordInvariantsHoldAtWideBatchWidth)
{
    if (!telemetry::kCompiledIn)
        GTEST_SKIP() << "built with GLD_TELEMETRY=OFF";
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);

    ExperimentConfig cfg = small_config(SimBackend::kBatchFrame);
    cfg.batch_words = 2;
    cfg.rng_streams = 1;  // 96 shots: one partial 128-lane block
    telemetry::Record rec;
    run_collected(ctx, cfg, factory, /*heatmap=*/true, &rec);

    EXPECT_EQ(rec.shots, static_cast<uint64_t>(cfg.shots));
    EXPECT_EQ(rec.rounds, static_cast<uint64_t>(cfg.shots) *
                              static_cast<uint64_t>(cfg.rounds));
    const uint64_t hist_total = std::accumulate(
        rec.leak_hist.begin(), rec.leak_hist.end(), uint64_t{0});
    EXPECT_EQ(hist_total, rec.rounds);

    ASSERT_TRUE(rec.heatmap.enabled());
    uint64_t data_occupancy = 0;
    for (int r = 0; r < rec.heatmap.rounds; ++r)
        for (int q = 0; q < rec.heatmap.n_data; ++q)
            data_occupancy += rec.heatmap.at(r, q);
    uint64_t hist_moment = 0;
    for (size_t k = 0; k < rec.leak_hist.size(); ++k)
        hist_moment += static_cast<uint64_t>(k) * rec.leak_hist[k];
    EXPECT_EQ(data_occupancy, hist_moment);
    EXPECT_GT(data_occupancy, 0u);
}

// Heatmap collection is opt-in: the default collector records counters
// and the histogram but no heatmap.
TEST(TelemetryDeterminism, HeatmapOffLeavesHeatmapEmpty)
{
    if (!telemetry::kCompiledIn)
        GTEST_SKIP() << "built with GLD_TELEMETRY=OFF";
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);

    const ExperimentConfig cfg = small_config(SimBackend::kFrame);
    telemetry::Record rec;
    run_collected(ctx, cfg, factory, /*heatmap=*/false, &rec);
    EXPECT_FALSE(rec.heatmap.enabled());
    EXPECT_EQ(rec.shots, static_cast<uint64_t>(cfg.shots));
    EXPECT_FALSE(rec.leak_hist.empty());
}

// --- Pure data-structure tests (no runner; run even with telemetry
// compiled out — the library itself always exists). ---

TEST(TelemetryRecord, JsonRoundTripPreservesAllFields)
{
    telemetry::Record rec;
    rec.shots = 123;
    rec.rounds = 615;
    rec.blocks = 7;
    rec.stage_ns[telemetry::kSim] = 1111;
    rec.stage_ns[telemetry::kPolicy] = 222;
    rec.stage_ns[telemetry::kDecode] = 33;
    rec.stage_ns[telemetry::kAccounting] = 4;
    rec.leak_hist = {600, 10, 5, 0, 0};
    rec.heatmap.init(2, 3, 2);
    for (size_t i = 0; i < rec.heatmap.counts.size(); ++i)
        rec.heatmap.counts[i] = i * i;

    const telemetry::Record back =
        telemetry::Record::from_json(rec.to_json());
    EXPECT_EQ(back.shots, rec.shots);
    EXPECT_EQ(back.rounds, rec.rounds);
    EXPECT_EQ(back.blocks, rec.blocks);
    for (int s = 0; s < telemetry::kStageCount; ++s)
        EXPECT_EQ(back.stage_ns[s], rec.stage_ns[s]) << "stage " << s;
    EXPECT_EQ(back.leak_hist, rec.leak_hist);
    EXPECT_EQ(back.heatmap.rounds, rec.heatmap.rounds);
    EXPECT_EQ(back.heatmap.n_data, rec.heatmap.n_data);
    EXPECT_EQ(back.heatmap.n_checks, rec.heatmap.n_checks);
    EXPECT_EQ(back.heatmap.counts, rec.heatmap.counts);

    // No heatmap -> no "heatmap" key -> round-trips to disabled.
    telemetry::Record bare;
    bare.shots = 1;
    bare.leak_hist = {1};
    const telemetry::Record bare_back =
        telemetry::Record::from_json(bare.to_json());
    EXPECT_FALSE(bare_back.heatmap.enabled());
    EXPECT_EQ(bare_back.leak_hist, bare.leak_hist);
}

TEST(TelemetryRecord, MergeSumsEverythingAndGrowsHistogram)
{
    telemetry::Record a;
    a.shots = 10;
    a.rounds = 50;
    a.blocks = 1;
    a.stage_ns[telemetry::kSim] = 100;
    a.leak_hist = {40, 10};
    telemetry::Record b;
    b.shots = 5;
    b.rounds = 25;
    b.blocks = 2;
    b.stage_ns[telemetry::kSim] = 7;
    b.leak_hist = {20, 3, 2};  // wider than a's: merge must grow

    a.merge(b);
    EXPECT_EQ(a.shots, 15u);
    EXPECT_EQ(a.rounds, 75u);
    EXPECT_EQ(a.blocks, 3u);
    EXPECT_EQ(a.stage_ns[telemetry::kSim], 107u);
    EXPECT_EQ(a.leak_hist, (std::vector<uint64_t>{60, 13, 2}));
}

TEST(TelemetryHeatmap, MergeRejectsDimensionMismatch)
{
    telemetry::Heatmap a;
    a.init(2, 3, 2);
    telemetry::Heatmap b;
    b.init(2, 4, 2);
    EXPECT_THROW(a.merge(b), std::runtime_error);

    // Merging into/from an empty heatmap is the benign no-op/copy case.
    telemetry::Heatmap empty;
    a.counts[3] = 9;
    telemetry::Heatmap into;
    into.merge(a);
    EXPECT_EQ(into.at(1, 0), a.at(1, 0));
    into.merge(empty);  // no-op
    EXPECT_EQ(into.counts, a.counts);
}

TEST(TelemetryCollector, MergedFoldsInStreamBlockOrder)
{
    telemetry::Collector col;
    // Park units out of order; merged() must still fold 3 blocks and sum
    // the counts regardless of arrival order.
    for (const auto& sb :
         std::vector<std::pair<int, int>>{{1, 0}, {0, 1}, {0, 0}}) {
        telemetry::Record rec;
        rec.shots = 2;
        rec.rounds = 4;
        rec.blocks = 1;
        rec.leak_hist = {3, 1};
        col.record_unit(sb.first, sb.second, std::move(rec));
    }
    EXPECT_EQ(col.shots_done(), 6u);
    const telemetry::Record merged = col.merged();
    EXPECT_EQ(merged.shots, 6u);
    EXPECT_EQ(merged.rounds, 12u);
    EXPECT_EQ(merged.blocks, 3u);
    EXPECT_EQ(merged.leak_hist, (std::vector<uint64_t>{9, 3}));
}

TEST(TelemetryCollector, OnBlockHookSeesMonotonicShotCounts)
{
    telemetry::Collector::Options opt;
    std::vector<uint64_t> seen;
    opt.on_block = [&seen](uint64_t done) { seen.push_back(done); };
    telemetry::Collector col(std::move(opt));
    for (int i = 0; i < 3; ++i) {
        telemetry::Record rec;
        rec.shots = 10;
        col.record_unit(0, i, std::move(rec));
    }
    EXPECT_EQ(seen, (std::vector<uint64_t>{10, 20, 30}));
}

TEST(TelemetryExport, AddsWallClockAndThroughput)
{
    telemetry::Record rec;
    rec.shots = 1000;
    rec.leak_hist = {1};
    const io::Json j =
        telemetry::export_to_json(rec, /*wall_ns=*/500000000ull,
                                  /*threads=*/4);
    EXPECT_EQ(j["wall_ns"].as_int(), 500000000);
    EXPECT_EQ(j["threads"].as_int(), 4);
    EXPECT_NEAR(j["shots_per_second"].as_double(), 2000.0, 1e-6);
    // Zero wall time must not divide by zero.
    const io::Json j0 = telemetry::export_to_json(rec, 0, 1);
    EXPECT_EQ(j0["shots_per_second"].as_double(), 0.0);
}

}  // namespace
}  // namespace gld
