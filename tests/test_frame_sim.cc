#include "sim/frame_sim.h"

#include <gtest/gtest.h>

#include "codes/color_code.h"
#include "codes/surface_code.h"

namespace gld {
namespace {

NoiseParams
noiseless()
{
    NoiseParams np;
    np.p = 0.0;
    np.leak_ratio = 0.0;
    return np;
}

TEST(LeakFrameSim, NoiselessRoundsAreSilent)
{
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    LeakFrameSim sim(code, rc, noiseless(), 1);
    LrcSchedule none;
    for (int r = 0; r < 5; ++r) {
        const RoundResult rr = sim.run_round(none);
        for (int c = 0; c < code.n_checks(); ++c) {
            EXPECT_EQ(rr.detector[c], 0);
            EXPECT_EQ(rr.mlr_flag[c], 0);
        }
    }
    for (uint8_t f : sim.final_data_measure())
        EXPECT_EQ(f, 0);
}

TEST(LeakFrameSim, InjectedXFlipsAdjacentZChecksOnce)
{
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    LeakFrameSim sim(code, rc, noiseless(), 1);
    LrcSchedule none;
    sim.run_round(none);
    const int q = SurfaceCode::data_index(5, 2, 2);  // bulk qubit
    sim.inject_x(q);
    const RoundResult rr = sim.run_round(none);
    for (int c = 0; c < code.n_checks(); ++c) {
        const auto& sup = code.check(c).support;
        const bool adjacent =
            std::find(sup.begin(), sup.end(), q) != sup.end();
        const bool expect_flip = adjacent &&
                                 code.check(c).type == CheckType::kZ;
        EXPECT_EQ(rr.detector[c] != 0, expect_flip) << "check " << c;
    }
    // Next round: static error, no new detector flips.
    const RoundResult rr2 = sim.run_round(none);
    for (int c = 0; c < code.n_checks(); ++c)
        EXPECT_EQ(rr2.detector[c], 0);
}

TEST(LeakFrameSim, InjectedZFlipsAdjacentXChecks)
{
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    LeakFrameSim sim(code, rc, noiseless(), 1);
    LrcSchedule none;
    sim.run_round(none);
    const int q = SurfaceCode::data_index(5, 2, 2);
    sim.inject_z(q);
    const RoundResult rr = sim.run_round(none);
    int x_flips = 0;
    for (int c = 0; c < code.n_checks(); ++c) {
        if (rr.detector[c]) {
            EXPECT_EQ(code.check(c).type, CheckType::kX);
            ++x_flips;
        }
    }
    EXPECT_EQ(x_flips, 2);  // bulk qubit touches two X checks
}

TEST(LeakFrameSim, LeakedDataRandomizesAdjacentChecks)
{
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    NoiseParams np = noiseless();
    np.mobility = 0.0;  // keep the leak on the data qubit
    LeakFrameSim sim(code, rc, np, 7);
    LrcSchedule none;
    const int q = SurfaceCode::data_index(5, 2, 2);
    const auto& adj = code.data_adjacency()[q];

    int flips = 0, rounds = 0;
    int far_flips = 0, far_rounds = 0;
    sim.run_round(none);
    sim.inject_data_leak(q);
    for (int r = 0; r < 400; ++r) {
        const RoundResult rr = sim.run_round(none);
        ASSERT_TRUE(sim.data_leaked(q));
        for (int c : adj) {
            flips += rr.detector[c];
            ++rounds;
        }
        // Non-adjacent checks see only second-order hook propagation from
        // the malfunctioning CNOTs — far rarer than the direct 50% flips.
        for (int c = 0; c < code.n_checks(); ++c) {
            if (std::find(adj.begin(), adj.end(), c) == adj.end()) {
                far_flips += rr.detector[c];
                ++far_rounds;
            }
        }
    }
    // Each adjacent detector bit is a fair coin (paper Fig 3: ~50% flips).
    EXPECT_NEAR(static_cast<double>(flips) / rounds, 0.5, 0.05);
    EXPECT_LT(static_cast<double>(far_flips) / far_rounds, 0.2);
}

TEST(LeakFrameSim, MobilityTransportsLeakageToAncilla)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    NoiseParams np = noiseless();
    np.mobility = 1.0;  // deterministic transport
    LeakFrameSim sim(code, rc, np, 3);
    LrcSchedule none;
    const int q = 4;  // bulk data qubit of d=3
    sim.inject_data_leak(q);
    sim.run_round(none);
    // The data qubit is control of its Z-check CNOTs: with mobility 1 the
    // first such CNOT moves the leak to the ancilla.
    EXPECT_FALSE(sim.data_leaked(q));
    EXPECT_GE(sim.n_check_leaked(), 1);
}

TEST(LeakFrameSim, MlrFlagsLeakedAncilla)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    NoiseParams np = noiseless();
    LeakFrameSim sim(code, rc, np, 3);
    LrcSchedule none;
    sim.inject_check_leak(0);
    const RoundResult rr = sim.run_round(none);
    EXPECT_EQ(rr.mlr_flag[0], 1);  // mlr error = mlr_ratio * p = 0 here
    for (int c = 1; c < code.n_checks(); ++c)
        EXPECT_EQ(rr.mlr_flag[c], 0);
}

TEST(LeakFrameSim, MlrErrorRateMatchesModel)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    NoiseParams np = noiseless();
    np.p = 1e-2;
    np.mlr_ratio = 10.0;  // 10% misclassification
    np.leak_ratio = 0.0;
    LeakFrameSim sim(code, rc, np, 11);
    LrcSchedule none;
    long flags = 0, total = 0;
    for (int r = 0; r < 300; ++r) {
        const RoundResult rr = sim.run_round(none);
        for (int c = 0; c < code.n_checks(); ++c) {
            flags += rr.mlr_flag[c];  // false flags: nothing is leaked
            ++total;
        }
    }
    EXPECT_NEAR(static_cast<double>(flags) / total, 0.10, 0.02);
}

TEST(LeakFrameSim, LrcClearsDataLeak)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    LeakFrameSim sim(code, rc, noiseless(), 5);
    sim.inject_data_leak(0);
    LrcSchedule sched;
    sched.data_qubits.push_back(0);
    sim.run_round(sched);
    EXPECT_FALSE(sim.data_leaked(0));
}

TEST(LeakFrameSim, LrcSwapPumpsLeakedPartnerIntoData)
{
    // A false-positive LRC against a leaked partner ancilla moves the
    // leakage INTO the data qubit — the mechanism behind ERASER's leakage
    // growth (paper §3.3, Limitation 2).
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    LeakFrameSim sim(code, rc, noiseless(), 5);
    const int q = 0;
    const int partner = sim.lrc_partner(q);
    sim.inject_check_leak(partner);
    EXPECT_FALSE(sim.data_leaked(q));
    LrcSchedule sched;
    sched.data_qubits.push_back(q);
    sim.run_round(sched);
    EXPECT_TRUE(sim.data_leaked(q));
    EXPECT_FALSE(sim.check_leaked(partner));
}

TEST(LeakFrameSim, LrcOnCheckClearsAncilla)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    LeakFrameSim sim(code, rc, noiseless(), 5);
    sim.inject_check_leak(2);
    LrcSchedule sched;
    sched.checks.push_back(2);
    sim.run_round(sched);
    EXPECT_FALSE(sim.check_leaked(2));
}

TEST(LeakFrameSim, EnvironmentLeakageAccumulatesWithoutLrcs)
{
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    NoiseParams np;
    np.p = 1e-3;
    np.leak_ratio = 10.0;  // strong leakage for a fast test
    LeakFrameSim sim(code, rc, np, 21);
    LrcSchedule none;
    for (int r = 0; r < 200; ++r)
        sim.run_round(none);
    EXPECT_GT(sim.n_data_leaked(), 0);
}

TEST(LeakFrameSim, LeakedDataReadsOutRandomly)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    NoiseParams np = noiseless();
    np.mobility = 0.0;
    LeakFrameSim sim(code, rc, np, 31);
    int ones = 0;
    const int trials = 2000;
    for (int t = 0; t < trials; ++t) {
        sim.reset_shot();
        sim.inject_data_leak(0);
        ones += sim.final_data_measure()[0];
    }
    EXPECT_NEAR(static_cast<double>(ones) / trials, 0.5, 0.05);
}

TEST(LeakFrameSim, ResetShotClearsEverything)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    LeakFrameSim sim(code, rc, noiseless(), 3);
    sim.inject_data_leak(1);
    sim.inject_x(2);
    sim.reset_shot();
    EXPECT_EQ(sim.n_data_leaked(), 0);
    LrcSchedule none;
    const RoundResult rr = sim.run_round(none);
    for (int c = 0; c < code.n_checks(); ++c)
        EXPECT_EQ(rr.detector[c], 0);
}

}  // namespace
}  // namespace gld
