#include "circuit/schedule.h"

#include <gtest/gtest.h>

#include "codes/bpc_code.h"
#include "codes/color_code.h"
#include "codes/hgp_code.h"
#include "codes/surface_code.h"
#include "util/rng.h"

namespace gld {
namespace {

std::vector<std::pair<int, int>>
tanner_edges(const CssCode& code)
{
    std::vector<std::pair<int, int>> edges;
    for (int c = 0; c < code.n_checks(); ++c) {
        for (int q : code.check(c).support)
            edges.emplace_back(c, q);
    }
    return edges;
}

void
check_proper(int n_left, int n_right,
             const std::vector<std::pair<int, int>>& edges,
             const std::vector<int>& colors, int n_colors)
{
    ASSERT_EQ(colors.size(), edges.size());
    std::vector<std::vector<int>> used_l(n_left), used_r(n_right);
    for (size_t e = 0; e < edges.size(); ++e) {
        ASSERT_GE(colors[e], 0);
        ASSERT_LT(colors[e], n_colors);
        used_l[edges[e].first].push_back(colors[e]);
        used_r[edges[e].second].push_back(colors[e]);
    }
    auto no_dup = [](std::vector<int>& v) {
        std::sort(v.begin(), v.end());
        return std::adjacent_find(v.begin(), v.end()) == v.end();
    };
    for (auto& v : used_l)
        ASSERT_TRUE(no_dup(v)) << "color reused at a check";
    for (auto& v : used_r)
        ASSERT_TRUE(no_dup(v)) << "color reused at a data qubit";
}

TEST(BipartiteEdgeColoring, RandomBipartiteGraphsUseDeltaColors)
{
    Rng rng(17);
    for (int trial = 0; trial < 20; ++trial) {
        const int nl = 5 + static_cast<int>(rng.uniform_int(10));
        const int nr = 5 + static_cast<int>(rng.uniform_int(10));
        std::vector<std::pair<int, int>> edges;
        for (int l = 0; l < nl; ++l) {
            for (int r = 0; r < nr; ++r) {
                if (rng.bernoulli(0.3))
                    edges.emplace_back(l, r);
            }
        }
        if (edges.empty())
            continue;
        int n_colors = 0;
        const auto colors =
            BipartiteEdgeColoring::color(nl, nr, edges, &n_colors);
        // König: bipartite chromatic index == max degree.
        std::vector<int> dl(nl, 0), dr(nr, 0);
        int delta = 0;
        for (auto& [l, r] : edges)
            delta = std::max({delta, ++dl[l], ++dr[r]});
        EXPECT_EQ(n_colors, delta);
        check_proper(nl, nr, edges, colors, n_colors);
    }
}

class CodeColoring : public ::testing::TestWithParam<const char*> {};

TEST_P(CodeColoring, TannerGraphColoringIsProper)
{
    CssCode code = [&]() {
        const std::string name = GetParam();
        if (name == "surface5")
            return SurfaceCode::make(5);
        if (name == "color5")
            return ColorCode::make(5);
        if (name == "hgp")
            return HgpCode::make_hamming();
        return BpcCode::make_default();
    }();
    const auto edges = tanner_edges(code);
    int n_colors = 0;
    const auto colors = BipartiteEdgeColoring::color(
        code.n_checks(), code.n_data(), edges, &n_colors);
    check_proper(code.n_checks(), code.n_data(), edges, colors, n_colors);
}

INSTANTIATE_TEST_SUITE_P(AllCodes, CodeColoring,
                         ::testing::Values("surface5", "color5", "hgp",
                                           "bpc"));

TEST(GreedyVertexColoring, ProperColoring)
{
    // A 5-cycle needs 3 colors.
    std::vector<std::pair<int, int>> edges = {
        {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}};
    int n_colors = 0;
    const auto colors = GreedyVertexColoring::color(5, edges, &n_colors);
    for (auto& [a, b] : edges)
        EXPECT_NE(colors[a], colors[b]);
    EXPECT_GE(n_colors, 3);
}

}  // namespace
}  // namespace gld
