// Direct unit tests of the shared LeakageDriver over a scripted mock
// state: the driver's primitive-call sequences per gadget (quiet round,
// malfunction, mobility transport, MLR, LRC data/check), plus the drift
// gate — both real backends must route through the one driver, so no
// duplicated leak-flag code path can exist.

#include "sim/leakage_driver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "codes/surface_code.h"
#include "sim/batch_driver.h"
#include "sim/op_profile.h"
#include "sim/simulator.h"

namespace gld {
namespace {

/**
 * StatePrimitives that records every call the driver makes, in order.
 * measure_z returns a scripted constant, so the "state" is pure script —
 * what's under test is exactly the driver's decision sequence.
 */
struct ScriptedState final : StatePrimitives {
    std::vector<std::string> log;
    uint8_t measure_result = 0;

    static std::string q(int v) { return std::to_string(v); }

    void reset_state() override { log.push_back("reset_state"); }
    void apply_pauli(int qq, uint32_t pauli) override
    {
        log.push_back("pauli " + q(qq) + " p" + std::to_string(pauli));
    }
    void coherent_cnot(int control, int target) override
    {
        log.push_back("cnot " + q(control) + " " + q(target));
    }
    void hadamard(int qq) override { log.push_back("h " + q(qq)); }
    void reset_z(int qq) override { log.push_back("reset_z " + q(qq)); }
    uint8_t measure_z(int qq) override
    {
        log.push_back("measure " + q(qq));
        return measure_result;
    }
    void park_leaked(int qq) override { log.push_back("park " + q(qq)); }

    /** Entries whose op name matches and that mention qubit `qq`. */
    int count(const std::string& op, int qq) const
    {
        int n = 0;
        for (const std::string& e : log) {
            if (e.rfind(op + " ", 0) != 0)
                continue;
            const std::string rest = e.substr(op.size() + 1);
            // Match "qq" as a full token.
            const std::string tok = q(qq);
            size_t pos = 0;
            while ((pos = rest.find(tok, pos)) != std::string::npos) {
                const bool left_ok = pos == 0 || rest[pos - 1] == ' ';
                const size_t end = pos + tok.size();
                const bool right_ok = end == rest.size() ||
                                      rest[end] == ' ';
                if (left_ok && right_ok) {
                    ++n;
                    break;
                }
                pos = end;
            }
        }
        return n;
    }
};

NoiseParams
noiseless()
{
    NoiseParams np;
    np.p = 0.0;
    np.leak_ratio = 0.0;
    np.lrc_leak_prob = 0.0;
    return np;
}

struct Harness {
    CssCode code;
    RoundCircuit rc;
    ScriptedState state;
    LeakageDriver driver;

    explicit Harness(NoiseParams np, uint64_t seed = 1)
        : code(SurfaceCode::make(3)), rc(code),
          driver(code, rc, np, Rng(seed), &state)
    {
    }
};

/** The expected primitive-call log of one quiet (noiseless, leak-free)
 *  round: exactly the scheduled circuit, one primitive per op. */
std::vector<std::string>
quiet_round_golden(const RoundCircuit& rc)
{
    std::vector<std::string> want;
    for (const Op& op : rc.ops()) {
        switch (op.type) {
          case OpType::kResetZ:
            want.push_back("reset_z " + std::to_string(op.q0));
            break;
          case OpType::kH:
            want.push_back("h " + std::to_string(op.q0));
            break;
          case OpType::kCnot:
            want.push_back("cnot " + std::to_string(op.q0) + " " +
                           std::to_string(op.q1));
            break;
          case OpType::kMeasure:
            want.push_back("measure " + std::to_string(op.q0));
            break;
        }
    }
    return want;
}

TEST(LeakageDriver, QuietRoundGoldenCallSequence)
{
    Harness h(noiseless());
    const RoundResult rr = h.driver.run_round(LrcSchedule{});
    EXPECT_EQ(h.state.log, quiet_round_golden(h.rc));
    for (int c = 0; c < h.code.n_checks(); ++c) {
        EXPECT_EQ(rr.detector[static_cast<size_t>(c)], 0);
        EXPECT_EQ(rr.mlr_flag[static_cast<size_t>(c)], 0);
    }
}

TEST(LeakageDriver, ResetShotResetsFlagsAndState)
{
    Harness h(noiseless());
    h.driver.set_leak(0);
    EXPECT_EQ(h.driver.n_data_leaked(), 1);
    h.driver.reset_shot();
    EXPECT_EQ(h.driver.n_data_leaked(), 0);
    EXPECT_EQ(h.state.log.back(), "reset_state");
}

TEST(LeakageDriver, SetLeakFiresParkHookOnceAndOnlyOnRise)
{
    Harness h(noiseless());
    h.driver.set_leak(2);
    h.driver.set_leak(2);  // already leaked: no second park
    EXPECT_EQ(h.state.log,
              (std::vector<std::string>{"park 2"}));
    h.driver.clear_leak(2);
    h.driver.set_leak(2);  // rise again after a clear: park fires again
    EXPECT_EQ(h.state.count("park", 2), 2);
    EXPECT_EQ(h.state.log.size(), 2u);
}

TEST(LeakageDriver, LeakedAncillaMalfunctionsItsCnotsAndSkipsMeasure)
{
    // A leaked Z-check ancilla: every CNOT at it loses its coherent
    // action and disturbs the DATA partner with a full random Pauli
    // (data partners always get full back-action); the two-level readout
    // never touches the state and MLR reports the truth.
    NoiseParams np = noiseless();
    np.mobility = 0.0;
    Harness h(np);
    const int c = h.code.checks_of_type(CheckType::kZ).front();
    const int anc = h.code.ancilla_of(c);
    h.driver.set_check_leak(c);
    h.state.log.clear();

    const RoundResult rr = h.driver.run_round(LrcSchedule{});

    EXPECT_EQ(h.state.count("cnot", anc), 0);
    EXPECT_EQ(h.state.count("measure", anc), 0);
    EXPECT_EQ(h.state.count("reset_z", anc), 0);  // reset skips |2>
    // Every CNOT of the scheduled circuit that touches anc turned into
    // exactly one full-Pauli disturbance of its data partner.
    int anc_cnots = 0;
    for (const Op& op : h.rc.ops()) {
        if (op.type != OpType::kCnot)
            continue;
        if (op.q0 == anc || op.q1 == anc) {
            ++anc_cnots;
            const int partner = op.q0 == anc ? op.q1 : op.q0;
            EXPECT_EQ(h.state.count("pauli", partner), 1)
                << "partner " << partner;
        }
    }
    EXPECT_EQ(anc_cnots,
              static_cast<int>(h.code.check(c).support.size()));
    EXPECT_EQ(rr.mlr_flag[static_cast<size_t>(c)], 1);
    for (int other = 0; other < h.code.n_checks(); ++other) {
        if (other != c) {
            EXPECT_EQ(rr.mlr_flag[static_cast<size_t>(other)], 0);
        }
    }
    EXPECT_TRUE(h.driver.check_leaked(c));
}

TEST(LeakageDriver, LeakedDataMalfunctionFlipsAncillaMeasuredBasisOnly)
{
    // A leaked data qubit with zero mobility: ancilla partners get the
    // IBM-characterized 50% measured-bit flip — X on a Z-check ancilla
    // (CNOT target), Z on an X-check ancilla (CNOT control) — never a
    // full Pauli, and never a coherent CNOT.
    NoiseParams np = noiseless();
    np.mobility = 0.0;
    Harness h(np, /*seed=*/7);
    const int q = 4;  // bulk data qubit of d=3: in Z- and X-check support
    h.driver.set_leak(q);
    h.state.log.clear();

    h.driver.run_round(LrcSchedule{});

    EXPECT_EQ(h.state.count("cnot", q), 0);
    EXPECT_TRUE(h.driver.data_leaked(q));
    // Collect the allowed flip per adjacent ancilla from the check type.
    for (int c : h.code.data_adjacency()[q]) {
        const int anc = h.code.ancilla_of(c);
        const std::string allowed =
            h.code.check(c).type == CheckType::kZ ? "p1" : "p2";
        for (const std::string& e : h.state.log) {
            if (e.rfind("pauli " + std::to_string(anc) + " ", 0) == 0) {
                EXPECT_EQ(e, "pauli " + std::to_string(anc) + " " +
                                 allowed);
            }
        }
    }
}

TEST(LeakageDriver, MobilityOneTransportsTheLeakWithoutDuplication)
{
    NoiseParams np = noiseless();
    np.mobility = 1.0;  // deterministic transport at the first CNOT
    Harness h(np);
    const int q = 4;
    h.driver.set_leak(q);
    h.state.log.clear();

    h.driver.run_round(LrcSchedule{});

    // The leak moved: the original qubit is clean, the population is
    // still exactly one, and each hop fired the park hook.
    EXPECT_FALSE(h.driver.data_leaked(q));
    EXPECT_EQ(h.driver.n_data_leaked() + h.driver.n_check_leaked(), 1);
    int parks = 0;
    for (const std::string& e : h.state.log)
        parks += e.rfind("park ", 0) == 0 ? 1 : 0;
    EXPECT_GE(parks, 1);
}

TEST(LeakageDriver, LrcDataGadgetIsSilentOnCleanQubits)
{
    // LRC on a non-leaked data qubit with a non-leaked partner: the
    // gadget swaps the state out and back — no primitive calls at all
    // under noiseless gadget noise, and no flags change.
    Harness h(noiseless());
    LrcSchedule sched;
    sched.data_qubits.push_back(0);
    h.driver.run_round(sched);
    EXPECT_EQ(h.state.log, quiet_round_golden(h.rc));
    EXPECT_EQ(h.driver.n_data_leaked(), 0);
    EXPECT_EQ(h.driver.n_check_leaked(), 0);
}

TEST(LeakageDriver, LrcDataGadgetPumpsLeakedPartnerInAndParks)
{
    // False-positive LRC against a leaked partner ancilla: the SWAP pumps
    // the leakage INTO the data qubit (paper §3.3, Limitation 2) — the
    // driver must fire park_leaked for the data qubit BEFORE the round's
    // circuit runs, and clear the ancilla.
    Harness h(noiseless());
    const int q = 0;
    const int pc = h.driver.lrc_partner(q);
    ASSERT_GE(pc, 0);
    h.driver.set_check_leak(pc);
    h.state.log.clear();

    LrcSchedule sched;
    sched.data_qubits.push_back(q);
    h.driver.run_round(sched);

    EXPECT_TRUE(h.driver.data_leaked(q));
    EXPECT_FALSE(h.driver.check_leaked(pc));
    ASSERT_FALSE(h.state.log.empty());
    EXPECT_EQ(h.state.log.front(), "park " + std::to_string(q));
}

TEST(LeakageDriver, LrcCheckGadgetResetsAncillaFirst)
{
    Harness h(noiseless());
    const int c = 2;
    const int anc = h.code.ancilla_of(c);
    h.driver.set_check_leak(c);
    h.state.log.clear();

    LrcSchedule sched;
    sched.checks.push_back(c);
    h.driver.run_round(sched);

    EXPECT_FALSE(h.driver.check_leaked(c));
    ASSERT_FALSE(h.state.log.empty());
    // The gadget's reset is the very first primitive call of the round
    // (start-of-round semantics), before any circuit op.
    EXPECT_EQ(h.state.log.front(), "reset_z " + std::to_string(anc));
}

TEST(LeakageDriver, LeakedFinalReadoutSkipsMeasurePrimitive)
{
    Harness h(noiseless());
    h.driver.set_leak(3);
    h.state.log.clear();
    h.driver.final_data_measure();
    EXPECT_EQ(h.state.count("measure", 3), 0);
    for (int q = 0; q < h.code.n_data(); ++q) {
        if (q != 3) {
            EXPECT_EQ(h.state.count("measure", q), 1) << "qubit " << q;
        }
    }
}

// --- Driver-level instrumentation: the counting decorator + profiles. ---

TEST(OpProfile, QuietRoundCountsEqualTheScheduledCircuitGolden)
{
    // The golden-count gate: a noiseless, leak-free round's primitive
    // counts are exactly the scheduled circuit's op census — one
    // coherent action per gate, one readout per check, no Paulis, no
    // parks.  This pins the instrumentation AND the circuit's gate
    // budget per code family in one place.
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    long cnots = 0, hs = 0, resets = 0, measures = 0;
    for (const Op& op : rc.ops()) {
        switch (op.type) {
          case OpType::kCnot: ++cnots; break;
          case OpType::kH: ++hs; break;
          case OpType::kResetZ: ++resets; break;
          case OpType::kMeasure: ++measures; break;
        }
    }
    const RoundOpProfile profile =
        profile_round_ops(code, rc, noiseless(), LrcSchedule{});
    EXPECT_EQ(profile.quiet.cnots, cnots);
    EXPECT_EQ(profile.quiet.hadamards, hs);
    EXPECT_EQ(profile.quiet.resets, resets);
    EXPECT_EQ(profile.quiet.measures, measures);
    EXPECT_EQ(profile.quiet.paulis, 0);
    EXPECT_EQ(profile.quiet.parks, 0);
    EXPECT_EQ(profile.quiet.resets_state, 0);
    // d=3 golden values: every data qubit meets <= 4 checks, every check
    // has <= 4 CNOTs; the census is a stable property of the scheduler.
    EXPECT_EQ(cnots, 24);
    EXPECT_EQ(measures, code.n_checks());
    EXPECT_EQ(resets, code.n_checks());
    // No LRCs scheduled: zero gadget overhead, bit for bit.
    EXPECT_TRUE(profile.lrc_overhead == OpCounts{});
    EXPECT_TRUE(profile.scheduled == profile.quiet);
}

TEST(OpProfile, CheckLrcOverheadIsOneResetGolden)
{
    // A check-ancilla LRC gadget is a reset-first gadget: exactly one
    // extra reset_z primitive per scheduled check, nothing else, under
    // noiseless gadget noise.
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    LrcSchedule sched;
    sched.checks = {0, 2};
    const RoundOpProfile profile =
        profile_round_ops(code, rc, noiseless(), sched);
    OpCounts want;
    want.resets = 2;
    EXPECT_TRUE(profile.lrc_overhead == want);
}

TEST(OpProfile, CountingStateForwardsToInnerBackend)
{
    // Decorating a real primitives provider must not change what the
    // driver does — the decorated run produces the same round result,
    // and the counts match the undecorated golden trace.
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    ScriptedState inner;
    CountingState counting(&inner);
    LeakageDriver driver(code, rc, noiseless(), Rng(1), &counting);
    driver.run_round(LrcSchedule{});
    EXPECT_EQ(inner.log, quiet_round_golden(rc));
    EXPECT_EQ(counting.counts().cnots,
              static_cast<long>(std::count_if(
                  rc.ops().begin(), rc.ops().end(), [](const Op& op) {
                      return op.type == OpType::kCnot;
                  })));
    counting.reset_counts();
    EXPECT_TRUE(counting.counts() == OpCounts{});
}

TEST(OpProfile, MalfunctionPaulisShowUpInTheProfile)
{
    // A parked leaked data qubit malfunctions its CNOTs: the profile's
    // pauli count exposes the disturbance load — the per-gadget cost
    // signal the hw models consume.
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    NoiseParams np = noiseless();
    np.mobility = 0.0;
    CountingState state;
    LeakageDriver driver(code, rc, np, Rng(7), &state);
    driver.set_leak(4);
    state.reset_counts();
    driver.run_round(LrcSchedule{});
    EXPECT_GT(state.counts().paulis, 0);
    EXPECT_EQ(state.counts().cnots,
              24 - static_cast<long>(code.data_adjacency()[4].size()));
}

// --- Drift gate: the real backends must BE driver-backed simulators. ---

TEST(LeakageDriverDrift, EveryKnownBackendRoutesThroughTheSharedDriver)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    NoiseParams np;
    for (SimBackend b : known_backends()) {
        SCOPED_TRACE(backend_name(b));
        const auto sim = make_simulator(b, code, rc, np, 1);
        // Structural: the backend derives from LeakageDriverSim (scalar
        // driver) or BatchLeakageDriverSim (its lockstep twin) — its
        // round/leak semantics ARE a shared driver's, not a copy.
        const auto* ds = dynamic_cast<const LeakageDriverSim*>(sim.get());
        const auto* bs =
            dynamic_cast<const BatchLeakageDriverSim*>(sim.get());
        ASSERT_TRUE(ds != nullptr || bs != nullptr)
            << "backend routes through neither leakage driver";
        // Its ground-truth oracle is the driver's own flag state.
        if (ds != nullptr) {
            EXPECT_EQ(&sim->leak_oracle(),
                      static_cast<const LeakageOracle*>(&ds->driver()));
        } else {
            EXPECT_EQ(&sim->leak_oracle(), &bs->driver().lane_oracle(0));
        }
        // And interface-level leak state is the driver's flag state.
        sim->inject_data_leak(1);
        EXPECT_TRUE(sim->leak_oracle().data_leaked(1));
        sim->clear_leak(1);
        EXPECT_FALSE(sim->leak_oracle().data_leaked(1));
    }
}

}  // namespace
}  // namespace gld
