// Cross-validation of the Pauli-frame simulator against the exact CHP
// tableau simulator (the role Stim's tableau engine plays in the paper's
// methodology): both engines execute the same scheduled extraction circuit
// and must agree on syndrome determinism and fault signatures.

#include <gtest/gtest.h>

#include "circuit/round_circuit.h"
#include "codes/surface_code.h"
#include "runtime/experiment.h"
#include "sim/frame_sim.h"
#include "sim/tableau_sim.h"
#include "stats/stats.h"

namespace gld {
namespace {

/** Executes one extraction round on the tableau sim, returning outcomes. */
std::vector<bool>
tableau_round(TableauSim* sim, const RoundCircuit& rc, int n_checks)
{
    std::vector<bool> meas(n_checks, false);
    for (const Op& op : rc.ops()) {
        switch (op.type) {
          case OpType::kResetZ:
            sim->reset_z(op.q0);
            break;
          case OpType::kH:
            sim->h(op.q0);
            break;
          case OpType::kCnot:
            sim->cnot(op.q0, op.q1);
            break;
          case OpType::kMeasure:
            meas[op.mslot] = sim->measure_z(op.q0);
            break;
        }
    }
    return meas;
}

TEST(CrossValidation, NoiselessSyndromesAreDeterministicAfterRoundOne)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    TableauSim sim(code.n_qubits(), 123);
    const auto r1 = tableau_round(&sim, rc, code.n_checks());
    const auto r2 = tableau_round(&sim, rc, code.n_checks());
    const auto r3 = tableau_round(&sim, rc, code.n_checks());
    // Z checks of |0...0> are deterministic 0 from the start.
    for (int c = 0; c < code.n_checks(); ++c) {
        if (code.check(c).type == CheckType::kZ) {
            EXPECT_FALSE(r1[c]);
            EXPECT_FALSE(r2[c]);
        }
        // All checks repeat exactly from round 2 on (no noise).
        EXPECT_EQ(r2[c], r3[c]);
    }
}

TEST(CrossValidation, StabilizersAreInGroupAfterOneRound)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    TableauSim sim(code.n_qubits(), 5);
    tableau_round(&sim, rc, code.n_checks());
    // After projection, every Z stabilizer is a definite +/-1; with all-zero
    // initialization it must be +1.
    for (const auto& check : code.checks()) {
        if (check.type == CheckType::kZ) {
            EXPECT_EQ(sim.z_product_expectation(check.support), +1);
        }
    }
    // The logical Z observable is +1 as well (encoded |0>).
    EXPECT_EQ(sim.z_product_expectation(code.logical_z()), +1);
}

TEST(CrossValidation, XFaultSignatureAgreesBetweenEngines)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);

    for (int q = 0; q < code.n_data(); ++q) {
        // Tableau: prepare, inject X, extract, compare measurement flips.
        TableauSim tab(code.n_qubits(), 77);
        const auto before = tableau_round(&tab, rc, code.n_checks());
        tab.x(q);
        const auto after = tableau_round(&tab, rc, code.n_checks());

        // Frame sim, noiseless, same injection.
        NoiseParams np;
        np.p = 0.0;
        np.leak_ratio = 0.0;
        LeakFrameSim frame(code, rc, np, 3);
        LrcSchedule none;
        frame.run_round(none);
        frame.inject_x(q);
        const RoundResult rr = frame.run_round(none);

        for (int c = 0; c < code.n_checks(); ++c) {
            EXPECT_EQ(before[c] != after[c], rr.detector[c] != 0)
                << "qubit " << q << " check " << c;
        }
    }
}

TEST(CrossValidation, ClosedLoopRatesAgreeStatistically)
{
    // The full pipeline — noise, leakage, speculation policy, LRC
    // scheduling, decoding — run end-to-end on both engines, refereed
    // exactly the way `gld_campaign verify` referees a statistical arm:
    // pooled two-proportion z-tests on the Metrics rate samples (LER as
    // a true binomial; FN/FP/DLP on the cluster-robust trajectory trial
    // unit, see Metrics).  The engines draw independent measurement
    // randomness, so agreement here is a genuine closed-loop
    // cross-validation, not a replay.
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(2e-3, 0.5);
    cfg.rounds = 8;
    cfg.shots = 256;
    cfg.seed = 0xC105EDC0DEull;
    cfg.leakage_sampling = true;
    cfg.compute_ler = true;
    cfg.rng_streams = 8;

    const PolicyFactory policy = PolicyZoo::eraser(/*use_mlr=*/true);
    cfg.backend = SimBackend::kFrame;
    const Metrics frame = ExperimentRunner(ctx, cfg).run(policy);
    cfg.backend = SimBackend::kTableau;
    const Metrics tab = ExperimentRunner(ctx, cfg).run(policy);

    const int n_data = code.n_data();
    const struct {
        const char* name;
        stats::RateSample a, b;
    } checks[] = {
        {"ler", frame.ler_sample(), tab.ler_sample()},
        {"fn", frame.fn_sample(n_data), tab.fn_sample(n_data)},
        {"fp", frame.fp_sample(n_data), tab.fp_sample(n_data)},
        {"dlp", frame.dlp_sample(n_data), tab.dlp_sample(n_data)},
    };
    // Šidák over the 4-test family at a 0.004 total false-failure
    // budget for this pinned seed.
    const double per_test = stats::sidak_alpha(0.004, 4);
    for (const auto& c : checks) {
        const stats::TwoProportionResult r =
            stats::two_proportion_z(c.a, c.b);
        EXPECT_TRUE(r.degenerate || r.identical ||
                    r.p_value >= per_test)
            << c.name << ": " << c.a.rate() << " vs " << c.b.rate()
            << " (z=" << r.z << ", p=" << r.p_value << ")";
    }
}

TEST(CrossValidation, LogicalXFlipsLogicalObservable)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    TableauSim sim(code.n_qubits(), 9);
    tableau_round(&sim, rc, code.n_checks());
    for (int q : code.logical_x())
        sim.x(q);
    // A logical X anticommutes with logical Z but commutes with all
    // stabilizers: syndromes stay quiet, observable flips.
    EXPECT_EQ(sim.z_product_expectation(code.logical_z()), -1);
    for (const auto& check : code.checks()) {
        if (check.type == CheckType::kZ) {
            EXPECT_EQ(sim.z_product_expectation(check.support), +1);
        }
    }
}

}  // namespace
}  // namespace gld
