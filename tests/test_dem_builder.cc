#include "decode/dem_builder.h"

#include <gtest/gtest.h>

#include "codes/surface_code.h"

namespace gld {
namespace {

TEST(DemBuilder, NodeLayout)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    DemBuilder dem(code, rc, NoiseParams::standard(), 5);
    EXPECT_EQ(dem.nz(), 4);             // (d^2-1)/2 Z checks
    EXPECT_EQ(dem.n_nodes(), 6 * 4);    // 5 syndrome layers + final
    EXPECT_EQ(dem.node_id(2, 3), 11);
}

TEST(DemBuilder, TemplateFaultsAreGraphlike)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    DemBuilder dem(code, rc, NoiseParams::standard(), 3);
    int hyper = 0;
    for (const auto& tf : dem.template_faults()) {
        EXPECT_LE(tf.dets.size(), 6u);
        for (const auto& [layer, zi] : tf.dets) {
            EXPECT_GE(layer, 0);
            EXPECT_LE(layer, 1);
            EXPECT_GE(zi, 0);
            EXPECT_LT(zi, dem.nz());
        }
        hyper += tf.dets.size() > 2;
    }
    // Hooks exist but are a small minority of fault locations.
    EXPECT_LT(hyper, static_cast<int>(dem.template_faults().size()) / 4);
}

TEST(DemBuilder, DataXFaultFootprint)
{
    // A round-start X fault on a bulk data qubit flips its adjacent
    // Z checks across layers r/r+1 with total multiplicity 2.
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    DemBuilder dem(code, rc, NoiseParams::standard(), 3);
    // The first 3 template faults are X/Z/Y on data qubit 0 at round start.
    const auto& faults = dem.template_faults();
    const auto& x0 = faults[0];
    // Data qubit 0 is a corner: exactly one adjacent Z check -> the X
    // fault flips that column once across the two layers (boundary edge).
    size_t nz_flips = x0.dets.size();
    EXPECT_GE(nz_flips, 1u);
    EXPECT_LE(nz_flips, 2u);
}

TEST(DemBuilder, GraphEdgesAreDeduplicatedAndValid)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    DemBuilder dem(code, rc, NoiseParams::standard(), 4);
    const DecodingGraph g = dem.build();
    EXPECT_GT(static_cast<int>(g.edges().size()), 0);
    std::set<std::pair<int, int>> seen;
    for (const GraphEdge& e : g.edges()) {
        EXPECT_GE(e.u, 0);
        EXPECT_LT(e.u, g.n_nodes());
        if (e.v != GraphEdge::kBoundary) {
            EXPECT_LT(e.v, g.n_nodes());
            EXPECT_LT(e.u, e.v);  // canonical order
        }
        EXPECT_GT(e.prob, 0.0);
        EXPECT_TRUE(seen.insert({e.u, e.v}).second) << "duplicate edge";
    }
}

TEST(DemBuilder, EveryNodeHasEdges)
{
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    DemBuilder dem(code, rc, NoiseParams::standard(), 6);
    const DecodingGraph g = dem.build();
    for (int v = 0; v < g.n_nodes(); ++v)
        EXPECT_FALSE(g.incidence()[v].empty()) << "isolated node " << v;
}

TEST(DemBuilder, TimeEdgesFromMeasurementFlips)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    DemBuilder dem(code, rc, NoiseParams::standard(), 4);
    const DecodingGraph g = dem.build();
    // Every Z column must have a time-like edge (r, zi)-(r+1, zi).
    for (int zi = 0; zi < dem.nz(); ++zi) {
        bool found = false;
        for (const GraphEdge& e : g.edges()) {
            if (e.u == dem.node_id(1, zi) && e.v == dem.node_id(2, zi))
                found = true;
        }
        EXPECT_TRUE(found) << "no time edge for column " << zi;
    }
}

TEST(DemBuilder, LogicalEdgesExist)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    DemBuilder dem(code, rc, NoiseParams::standard(), 3);
    const DecodingGraph g = dem.build();
    int logical_edges = 0;
    for (const GraphEdge& e : g.edges())
        logical_edges += e.logical;
    // X faults on the logical-Z row produce logical boundary edges.
    EXPECT_GT(logical_edges, 0);
}

}  // namespace
}  // namespace gld
