#include "util/gf2.h"

#include <gtest/gtest.h>

namespace gld {
namespace {

TEST(Gf2Matrix, SetGetFlip)
{
    Gf2Matrix m(3, 130);  // crosses word boundaries
    EXPECT_FALSE(m.get(1, 127));
    m.set(1, 127, true);
    EXPECT_TRUE(m.get(1, 127));
    m.flip(1, 127);
    EXPECT_FALSE(m.get(1, 127));
    m.set(2, 129, true);
    EXPECT_TRUE(m.get(2, 129));
    EXPECT_FALSE(m.get(2, 128));
}

TEST(Gf2Matrix, RankIdentity)
{
    Gf2Matrix m(5, 5);
    for (int i = 0; i < 5; ++i)
        m.set(i, i, true);
    EXPECT_EQ(m.rank(), 5);
}

TEST(Gf2Matrix, RankDependentRows)
{
    // Row2 = row0 + row1.
    Gf2Matrix m = Gf2Matrix::from_supports({{0, 1}, {1, 2}, {0, 2}}, 4);
    EXPECT_EQ(m.rank(), 2);
}

TEST(Gf2Matrix, RankZero)
{
    Gf2Matrix m(4, 4);
    EXPECT_EQ(m.rank(), 0);
    EXPECT_TRUE(m.is_zero());
}

TEST(Gf2Matrix, MulTranspose)
{
    // A = [110; 011], B = [101]; A*B^T = [1; 1].
    Gf2Matrix a = Gf2Matrix::from_supports({{0, 1}, {1, 2}}, 3);
    Gf2Matrix b = Gf2Matrix::from_supports({{0, 2}}, 3);
    Gf2Matrix p = a.mul_transpose(b);
    EXPECT_EQ(p.rows(), 2);
    EXPECT_EQ(p.cols(), 1);
    EXPECT_TRUE(p.get(0, 0));
    EXPECT_TRUE(p.get(1, 0));
}

TEST(Gf2Matrix, MulTransposeOrthogonal)
{
    // Rows with even overlap: product must be zero.
    Gf2Matrix a = Gf2Matrix::from_supports({{0, 1, 2, 3}}, 4);
    Gf2Matrix b = Gf2Matrix::from_supports({{0, 1}, {2, 3}, {0, 3}}, 4);
    EXPECT_TRUE(a.mul_transpose(b).is_zero());
}

TEST(Gf2Matrix, HammingRankIsThree)
{
    const std::vector<std::vector<int>> h = {
        {0, 2, 4, 6}, {1, 2, 5, 6}, {3, 4, 5, 6}};
    EXPECT_EQ(Gf2Matrix::from_supports(h, 7).rank(), 3);
}

}  // namespace
}  // namespace gld
