// Per-worker state reuse (the zero-allocation steady state) must be
// invisible in the results: a slot's cached simulator/policies/decoder,
// reset_for_block()-ed per (stream, block), produces Metrics
// BIT-identical to fresh per-block construction — on every backend, at
// every batch width K and at every thread count (slots run different
// unit interleavings at different thread counts, so this also pins that
// no block leaks state into the next block a slot happens to run).
//
// The fresh arm is cfg.reuse_worker_state = false, which reproduces the
// pre-reuse construct-per-block path exactly.

#include <gtest/gtest.h>

#include "codes/surface_code.h"
#include "metrics_test_util.h"
#include "runtime/experiment.h"
#include "sim/simulator.h"
#include "util/thread_pool.h"

namespace gld {
namespace {

using test::expect_metrics_identical;

Metrics
run_cfg(const CodeContext& ctx, ExperimentConfig cfg, bool reuse,
        int threads, const PolicyFactory& factory)
{
    cfg.reuse_worker_state = reuse;
    cfg.threads = threads;
    ExperimentRunner runner(ctx, cfg);
    return runner.run(factory);
}

/**
 * Shots that force the reuse machinery through every shape: 2 streams x
 * 2 blocks each, the trailing block partial (its lane boundary falls
 * mid-span for K > 1), so a single slot at threads=1 runs 4 consecutive
 * units — full-after-partial and cross-stream resets included.
 */
int
stress_shots(const ExperimentConfig& cfg)
{
    return 2 * ExperimentRunner::shot_block(cfg) + 17;
}

ExperimentConfig
stress_config(SimBackend backend, int batch_words)
{
    ExperimentConfig cfg;
    cfg.backend = backend;
    cfg.batch_words = batch_words;
    cfg.np = NoiseParams::standard(2e-3, 0.1);
    cfg.rounds = 4;
    cfg.rng_streams = 2;
    cfg.shots = stress_shots(cfg);
    cfg.seed = 0xC0FFEE5EEDull;
    cfg.leakage_sampling = true;
    cfg.record_dlp_series = true;
    cfg.compute_ler = true;
    return cfg;
}

class WorkerReuse : public ::testing::TestWithParam<SimBackend> {};

TEST_P(WorkerReuse, BitIdenticalToFreshAtEveryKAndThreadCount)
{
    const CssCode& code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);

    for (int k : {1, 2, 8}) {
        SCOPED_TRACE("batch_words=" + std::to_string(k));
        const ExperimentConfig cfg = stress_config(GetParam(), k);
        for (int threads : {1, 8, 16}) {
            SCOPED_TRACE("threads=" + std::to_string(threads));
            const Metrics fresh = run_cfg(ctx, cfg, false, threads, factory);
            const Metrics reused = run_cfg(ctx, cfg, true, threads, factory);
            EXPECT_EQ(fresh.shots, cfg.shots);
            expect_metrics_identical(fresh, reused);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, WorkerReuse,
                         ::testing::ValuesIn(known_backends()),
                         [](const auto& pinfo) {
                             return std::string(backend_name(pinfo.param));
                         });

TEST(WorkerReuse, SameRunnerTwiceIsBitIdentical)
{
    // Back-to-back runs on ONE runner share the persistent pool (and,
    // within each run, per-slot caches): the second run must replay the
    // first bit for bit on every backend.
    const CssCode& code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);

    for (SimBackend backend : known_backends()) {
        SCOPED_TRACE(backend_name(backend));
        ExperimentConfig cfg = stress_config(backend, 2);
        cfg.threads = 8;
        ExperimentRunner runner(ctx, cfg);
        const Metrics first = runner.run(factory);
        expect_metrics_identical(first, runner.run(factory));
    }
}

TEST(WorkerReuse, InterleavedConfigsLeaveNoStaleState)
{
    // Different codes, backends and batch widths interleaved on the one
    // process-wide pool: re-running a config after foreign work must
    // reproduce its first result exactly, for every backend.
    const CssCode& d3 = SurfaceCode::make(3);
    const RoundCircuit rc3(d3);
    const CodeContext ctx3(d3, rc3, CodeContext::default_scope(d3));
    const CssCode& d5 = SurfaceCode::make(5);
    const RoundCircuit rc5(d5);
    const CodeContext ctx5(d5, rc5, CodeContext::default_scope(d5));
    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);

    std::vector<Metrics> first;
    for (SimBackend backend : known_backends()) {
        ExperimentConfig cfg = stress_config(backend, 2);
        first.push_back(run_cfg(ctx3, cfg, true, 8, factory));
        // Foreign interleaved work: another code, another K.
        ExperimentConfig other = stress_config(backend, 1);
        other.shots = ExperimentRunner::shot_block(other) + 3;
        run_cfg(ctx5, other, true, 8, factory);
    }
    size_t i = 0;
    for (SimBackend backend : known_backends()) {
        SCOPED_TRACE(backend_name(backend));
        ExperimentConfig cfg = stress_config(backend, 2);
        expect_metrics_identical(first[i++],
                                 run_cfg(ctx3, cfg, true, 8, factory));
    }
}

TEST(WorkerReuse, RunnerLoopsNeverRespawnWorkers)
{
    // The allocation-free steady state includes threads: however many
    // runner loops execute, the pool spawns nothing new.
    const CssCode& code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);

    ExperimentConfig cfg = stress_config(SimBackend::kBatchFrame, 2);
    run_cfg(ctx, cfg, true, 8, factory);  // warm the pool
    const long created = ThreadPool::instance().workers_created();
    for (int rep = 0; rep < 3; ++rep)
        run_cfg(ctx, cfg, true, 8, factory);
    EXPECT_EQ(ThreadPool::instance().workers_created(), created);
}

}  // namespace
}  // namespace gld
