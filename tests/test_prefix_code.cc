#include "util/prefix_code.h"

#include <gtest/gtest.h>

#include <vector>

namespace gld {
namespace {

TEST(PrefixTagCodec, PaperExamples)
{
    // Paper §4.4: max 4-bit patterns become 5-bit words: 4-bit patterns get
    // a "0" prefix, 3-bit "10", 2-bit "110".
    PrefixTagCodec codec(4);
    EXPECT_EQ(codec.tagged_bits(), 5);
    EXPECT_EQ(codec.to_string(codec.encode(0b1001, 4)), "01001");
    EXPECT_EQ(codec.to_string(codec.encode(0b101, 3)), "10101");
    EXPECT_EQ(codec.to_string(codec.encode(0b11, 2)), "11011");
}

TEST(PrefixTagCodec, AppendixB1Widths)
{
    // Appendix B.1: "6-bit patterns are padded to 7 bits with a leading 0,
    // 5-bit patterns with 10".
    PrefixTagCodec codec(6);
    EXPECT_EQ(codec.tagged_bits(), 7);
    EXPECT_EQ(codec.to_string(codec.encode(0b111111, 6))[0], '0');
    EXPECT_EQ(codec.to_string(codec.encode(0b11111, 5)).substr(0, 2), "10");
}

TEST(PrefixTagCodec, BitOrderIsSlotOrder)
{
    PrefixTagCodec codec(4);
    // Raw bit 0 = earliest slot = leftmost pattern character.
    EXPECT_EQ(codec.to_string(codec.encode(0b0001, 4)), "01000");
    EXPECT_EQ(codec.to_string(codec.encode(0b1000, 4)), "00001");
}

class PrefixRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PrefixRoundTrip, EncodeDecodeAllPatternsNoCollision)
{
    const int max_bits = GetParam();
    PrefixTagCodec codec(max_bits);
    std::vector<int> seen(1 << codec.tagged_bits(), 0);
    for (int k = 1; k <= max_bits; ++k) {
        for (uint32_t pat = 0; pat < (1u << k); ++pat) {
            const uint32_t tagged = codec.encode(pat, k);
            ASSERT_LT(tagged, 1u << codec.tagged_bits());
            ASSERT_EQ(seen[tagged], 0) << "tag collision";
            seen[tagged] = 1;
            uint32_t out_pat = 0;
            int out_k = 0;
            ASSERT_TRUE(codec.decode(tagged, &out_pat, &out_k));
            EXPECT_EQ(out_pat, pat);
            EXPECT_EQ(out_k, k);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, PrefixRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(PrefixTagCodec, DecodeRejectsInvalid)
{
    PrefixTagCodec codec(4);
    uint32_t pat;
    int k;
    EXPECT_FALSE(codec.decode(0b11111, &pat, &k));  // all ones: no separator
}

}  // namespace
}  // namespace gld
