#ifndef GLD_TESTS_METRICS_TEST_UTIL_H_
#define GLD_TESTS_METRICS_TEST_UTIL_H_

// Shared bit-exact Metrics comparison for the reproducibility suites
// (test_determinism, test_campaign, test_sim_backends).  The field-by-
// field comparison itself lives in gld::metrics_bit_diff (runtime/
// metrics.h) — the SAME definition gld_campaign verify's bit-exact
// referee uses — so test and tool cannot drift on what "identical"
// means.  When a field is added to Metrics, extend metrics_bit_diff.

#include <cstdint>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "runtime/metrics.h"

namespace gld {
namespace test {

inline void
expect_bits_eq(double a, double b, const char* what)
{
    uint64_t ab, bb;
    std::memcpy(&ab, &a, sizeof(ab));
    std::memcpy(&bb, &b, sizeof(bb));
    EXPECT_EQ(ab, bb) << what << ": " << a << " vs " << b;
}

inline void
expect_metrics_identical(const Metrics& a, const Metrics& b)
{
    const std::vector<std::string> diff = metrics_bit_diff(a, b);
    std::string joined;
    for (const std::string& d : diff)
        joined += "\n  " + d;
    EXPECT_TRUE(diff.empty()) << "Metrics differ:" << joined;
}

}  // namespace test
}  // namespace gld

#endif  // GLD_TESTS_METRICS_TEST_UTIL_H_
