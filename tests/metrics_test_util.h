#ifndef GLD_TESTS_METRICS_TEST_UTIL_H_
#define GLD_TESTS_METRICS_TEST_UTIL_H_

// Shared bit-exact Metrics comparison for the reproducibility suites
// (test_determinism, test_campaign): every double is compared by bit
// pattern — 0.1 + 0.2 style drift must not pass.  When a field is added
// to Metrics, extend expect_metrics_identical HERE so every suite that
// asserts bit-identity checks it.

#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "runtime/metrics.h"

namespace gld {
namespace test {

inline void
expect_bits_eq(double a, double b, const char* what)
{
    uint64_t ab, bb;
    std::memcpy(&ab, &a, sizeof(ab));
    std::memcpy(&bb, &b, sizeof(bb));
    EXPECT_EQ(ab, bb) << what << ": " << a << " vs " << b;
}

inline void
expect_metrics_identical(const Metrics& a, const Metrics& b)
{
    EXPECT_EQ(a.shots, b.shots);
    EXPECT_EQ(a.rounds_per_shot, b.rounds_per_shot);
    expect_bits_eq(a.fn_total, b.fn_total, "fn_total");
    expect_bits_eq(a.fp_total, b.fp_total, "fp_total");
    expect_bits_eq(a.tp_total, b.tp_total, "tp_total");
    expect_bits_eq(a.lrc_data_total, b.lrc_data_total, "lrc_data_total");
    expect_bits_eq(a.lrc_check_total, b.lrc_check_total, "lrc_check_total");
    expect_bits_eq(a.dlp_total, b.dlp_total, "dlp_total");
    expect_bits_eq(a.check_leak_total, b.check_leak_total,
                   "check_leak_total");
    EXPECT_EQ(a.logical_errors, b.logical_errors);
    EXPECT_EQ(a.decoded_shots, b.decoded_shots);
    ASSERT_EQ(a.dlp_series.size(), b.dlp_series.size());
    for (size_t i = 0; i < a.dlp_series.size(); ++i)
        expect_bits_eq(a.dlp_series[i], b.dlp_series[i], "dlp_series[i]");
}

}  // namespace test
}  // namespace gld

#endif  // GLD_TESTS_METRICS_TEST_UTIL_H_
