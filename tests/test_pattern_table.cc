#include "core/pattern_table.h"

#include <gtest/gtest.h>

#include "codes/bpc_code.h"
#include "codes/color_code.h"
#include "codes/surface_code.h"

namespace gld {
namespace {

TEST(PatternTableSet, TablesMatchLabeler)
{
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, PatternScope::kBothTypes);
    const NoiseParams np = NoiseParams::standard();
    const SpecModelOptions opt;
    const PatternTableSet tables =
        PatternTableSet::build(ctx, np, opt, false);
    ASSERT_EQ(tables.n_classes(), ctx.n_classes());
    for (int c = 0; c < ctx.n_classes(); ++c) {
        const auto flags = SpecModel::label(
            SpecModel::single_round(ctx.classes()[c], np, opt),
            opt.threshold);
        ASSERT_EQ(tables.table(c).size(), flags.size());
        for (size_t s = 0; s < flags.size(); ++s)
            EXPECT_EQ(tables.is_leak(c, static_cast<uint32_t>(s)),
                      flags[s] != 0);
    }
}

TEST(PatternTableSet, SurfaceCodeClassWidths)
{
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, PatternScope::kBothTypes);
    EXPECT_EQ(ctx.max_degree(), 4);
    for (int q = 0; q < code.n_data(); ++q) {
        const int k = ctx.degree_of(q);
        EXPECT_GE(k, 2);
        EXPECT_LE(k, 4);
    }
}

TEST(PatternTableSet, ColorCodeZOnlyWidths)
{
    // Color code: 3-bit bulk, 2-bit edge, 1-bit corner (paper §5.1).
    const CssCode code = ColorCode::make(5);
    const RoundCircuit rc(code);
    EXPECT_EQ(CodeContext::default_scope(code), PatternScope::kZOnly);
    const CodeContext ctx(code, rc, PatternScope::kZOnly);
    EXPECT_EQ(ctx.max_degree(), 3);
    int ones = 0, twos = 0, threes = 0;
    for (int q = 0; q < code.n_data(); ++q) {
        switch (ctx.degree_of(q)) {
          case 1:
            ++ones;
            break;
          case 2:
            ++twos;
            break;
          case 3:
            ++threes;
            break;
          default:
            FAIL() << "unexpected degree";
        }
    }
    EXPECT_GT(ones, 0);
    EXPECT_GT(twos, 0);
    EXPECT_GT(threes, 0);
}

TEST(PatternTableSet, BpcUsesBothTypesWithDegreeSix)
{
    const CssCode code = BpcCode::make_default();
    const RoundCircuit rc(code);
    EXPECT_EQ(CodeContext::default_scope(code), PatternScope::kBothTypes);
    const CodeContext ctx(code, rc, PatternScope::kBothTypes);
    EXPECT_EQ(ctx.max_degree(), 6);
}

TEST(PatternTableSet, TwoRoundTableSizes)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, PatternScope::kBothTypes);
    const PatternTableSet tables = PatternTableSet::build(
        ctx, NoiseParams::standard(), {}, /*two_round=*/true);
    for (int c = 0; c < ctx.n_classes(); ++c) {
        EXPECT_EQ(tables.bits(c), 2 * ctx.classes()[c].k_obs);
        EXPECT_EQ(tables.table(c).size(),
                  1u << (2 * ctx.classes()[c].k_obs));
    }
}

TEST(PatternTableSet, PatternOfExtractsSlotOrderedBits)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, PatternScope::kBothTypes);
    const int q = 4;  // bulk qubit
    const auto& checks = ctx.observed_checks(q);
    ASSERT_EQ(checks.size(), 4u);
    std::vector<uint8_t> det(code.n_checks(), 0);
    det[checks[0]] = 1;
    det[checks[2]] = 1;
    EXPECT_EQ(ctx.pattern_of(q, det), 0b0101u);
}

}  // namespace
}  // namespace gld
