#include "sim/tableau_sim.h"

#include <gtest/gtest.h>

namespace gld {
namespace {

TEST(TableauSim, ComputationalBasisMeasurement)
{
    TableauSim sim(2);
    bool random = true;
    EXPECT_FALSE(sim.measure_z(0, &random));
    EXPECT_FALSE(random);
    sim.x(0);
    EXPECT_TRUE(sim.measure_z(0, &random));
    EXPECT_FALSE(random);
}

TEST(TableauSim, HadamardGivesRandomOutcome)
{
    TableauSim sim(1);
    sim.h(0);
    bool random = false;
    const bool forced = true;
    EXPECT_TRUE(sim.measure_z(0, &random, &forced));
    EXPECT_TRUE(random);
    // After collapse the outcome is pinned.
    bool random2 = true;
    EXPECT_TRUE(sim.measure_z(0, &random2));
    EXPECT_FALSE(random2);
}

TEST(TableauSim, BellPairCorrelations)
{
    TableauSim sim(2);
    sim.h(0);
    sim.cnot(0, 1);
    // Z0 Z1 is +1 deterministic; single Z0 is random.
    EXPECT_EQ(sim.z_product_expectation({0, 1}), +1);
    EXPECT_EQ(sim.z_product_expectation({0}), 0);
    bool random = false;
    const bool forced = true;
    const bool m0 = sim.measure_z(0, &random, &forced);
    EXPECT_TRUE(random);
    const bool m1 = sim.measure_z(1, &random);
    EXPECT_FALSE(random);
    EXPECT_EQ(m0, m1);
}

TEST(TableauSim, AnticorrelatedBell)
{
    TableauSim sim(2);
    sim.h(0);
    sim.cnot(0, 1);
    sim.x(1);
    EXPECT_EQ(sim.z_product_expectation({0, 1}), -1);
}

TEST(TableauSim, GhzParity)
{
    TableauSim sim(3, 5);
    sim.h(0);
    sim.cnot(0, 1);
    sim.cnot(1, 2);
    EXPECT_EQ(sim.z_product_expectation({0, 1}), +1);
    EXPECT_EQ(sim.z_product_expectation({1, 2}), +1);
    EXPECT_EQ(sim.z_product_expectation({0, 1, 2}), 0);  // odd Z's: random
}

TEST(TableauSim, ResetForcesZero)
{
    TableauSim sim(1, 9);
    sim.h(0);
    sim.reset_z(0);
    bool random = true;
    EXPECT_FALSE(sim.measure_z(0, &random));
    EXPECT_FALSE(random);
}

TEST(TableauSim, SGateTurnsXIntoY)
{
    // S X S^dag = Y: verify via H S S H |0> = H S S H -> measure.
    TableauSim sim(1);
    sim.h(0);
    sim.s(0);
    sim.s(0);
    sim.h(0);
    // HSSH = HZH = X, so the state is |1>.
    bool random = true;
    EXPECT_TRUE(sim.measure_z(0, &random));
    EXPECT_FALSE(random);
}

TEST(TableauSim, PauliYPhase)
{
    TableauSim sim(1);
    sim.y(0);  // |0> -> i|1>
    bool random = true;
    EXPECT_TRUE(sim.measure_z(0, &random));
    EXPECT_FALSE(random);
}

}  // namespace
}  // namespace gld
