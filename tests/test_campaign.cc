// Campaign subsystem: grid expansion, shard planning, checkpoint/resume,
// and the acceptance contract — plan/run over 3 shards + merge is
// BIT-identical to the equivalent single-process ExperimentRunner::run().

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "campaign/registry.h"
#include "io/serialize.h"
#include "metrics_test_util.h"
#include "util/config.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

namespace gld {
namespace campaign {
namespace {

using test::expect_bits_eq;
using test::expect_metrics_identical;

CampaignSpec
small_spec(const std::string& name)
{
    CampaignSpec spec;
    spec.name = name;
    spec.seed = 0xCAFE5EED1234ull;
    spec.shots = 45;  // not divisible by rng_streams: exercises the
    spec.rounds = 7;  // uneven per-stream shot partition
    spec.rng_streams = 8;
    spec.leakage_sampling = true;
    spec.compute_ler = true;
    spec.record_dlp_series = true;
    spec.codes = {"surface:3"};
    spec.policies = {"eraser_m", "gladiator_m"};
    spec.noise = {NoiseParams::standard(1e-3, 0.1)};
    return spec;
}

std::string
fresh_dir(const std::string& tag)
{
    // Unique per test-binary execution: checkpoint files persist on disk
    // by design, so a rerun reusing yesterday's directory would resume
    // (valid results!) where these tests assert a cold start.
    return ::testing::TempDir() + "gld_campaign_" +
           std::to_string(::getpid()) + "_" + tag;
}

TEST(CampaignSpec, ExpandIsDeterministicWithDistinctSeeds)
{
    CampaignSpec spec = small_spec("expand");
    spec.codes = {"surface:3", "color:5"};
    spec.noise = {NoiseParams::standard(1e-3, 0.1),
                  NoiseParams::standard(2e-3, 0.1)};
    const std::vector<JobSpec> a = spec.expand();
    const std::vector<JobSpec> b = spec.expand();
    ASSERT_EQ(a.size(), 2u * 2u * 2u);
    std::set<uint64_t> seeds;
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].index, static_cast<int>(i));
        EXPECT_EQ(a[i].code, b[i].code);
        EXPECT_EQ(a[i].policy, b[i].policy);
        EXPECT_EQ(a[i].cfg.seed, b[i].cfg.seed);
        EXPECT_EQ(a[i].cfg.seed, spec.job_seed(a[i].index));
        seeds.insert(a[i].cfg.seed);
    }
    // Default paired design: every policy at a (code, noise) grid point
    // shares one seed (identical noise realizations), and the seeds of
    // different grid points are pairwise distinct.
    EXPECT_EQ(seeds.size(), a.size() / spec.policies.size());
    EXPECT_EQ(a[0].cfg.seed, a[1].cfg.seed);
    EXPECT_NE(a[0].cfg.seed, a[2].cfg.seed);
    // Unpaired: every job gets its own seed.
    spec.pair_policy_seeds = false;
    const std::vector<JobSpec> u = spec.expand();
    std::set<uint64_t> useeds;
    for (const JobSpec& job : u)
        useeds.insert(job.cfg.seed);
    EXPECT_EQ(useeds.size(), u.size());
    // Grid order contract: codes outer, noise middle, policies inner.
    EXPECT_EQ(a[0].code, "surface:3");
    EXPECT_EQ(a[0].policy, "eraser_m");
    EXPECT_EQ(a[1].policy, "gladiator_m");
    expect_bits_eq(a[2].cfg.np.p, 2e-3, "noise grid order");
    EXPECT_EQ(a[4].code, "color:5");
}

TEST(CampaignSpec, JsonRoundTripPreservesJobsAndHashes)
{
    CampaignSpec spec = small_spec("json");
    spec.codes = {"surface:3", "hgp_hamming"};
    const CampaignSpec back =
        CampaignSpec::from_json(io::Json::parse(spec.to_json().dump(2)));
    const std::vector<JobSpec> a = spec.expand();
    const std::vector<JobSpec> b = back.expand();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].code, b[i].code);
        EXPECT_EQ(a[i].policy, b[i].policy);
        EXPECT_EQ(io::config_hash(a[i].cfg), io::config_hash(b[i].cfg));
    }
}

TEST(CampaignSpec, ValidationRejectsBadNames)
{
    CampaignSpec spec = small_spec("bad");
    spec.policies = {"eraser_m", "definitely_not_a_policy"};
    EXPECT_THROW(spec.validate(), std::runtime_error);
    spec = small_spec("bad2");
    spec.codes = {"surface:4"};  // even distance
    EXPECT_THROW(spec.validate(), std::runtime_error);
    spec = small_spec("bad2b");
    // Fixed-construction family: a distance suffix would fake a sweep.
    spec.codes = {"hgp_hamming:3"};
    EXPECT_THROW(spec.validate(), std::runtime_error);
    spec = small_spec("bad3");
    spec.codes.clear();
    EXPECT_THROW(spec.expand(), std::runtime_error);
    EXPECT_NO_THROW(small_spec("good").validate());
}

TEST(CostModel, JobCostUnitsWeighShotsRoundsAndBackend)
{
    CampaignSpec spec = small_spec("cost");
    const std::vector<JobSpec> frame_jobs = spec.expand();
    spec.backend = SimBackend::kTableau;
    const std::vector<JobSpec> tableau_jobs = spec.expand();

    const int nq = make_code(frame_jobs[0].code)->code.n_qubits();
    ASSERT_GT(nq, 8);  // surface:3 = 17 qubits: the tableau factor bites

    // Frame: one cost unit per shot-round, exactly.
    EXPECT_DOUBLE_EQ(job_cost_units(frame_jobs[0], nq, /*shots=*/45),
                     45.0 * 7.0);
    // Tableau: the same job costs the backend factor more — that is the
    // whole point of backend-aware plan output.
    const double factor = backend_cost_factor(SimBackend::kTableau, nq);
    EXPECT_GT(factor, 1.0);
    EXPECT_DOUBLE_EQ(job_cost_units(tableau_jobs[0], nq, 45),
                     45.0 * 7.0 * factor);
    // Linear in the shard's shot share (what `plan` sums per shard).
    EXPECT_DOUBLE_EQ(job_cost_units(tableau_jobs[0], nq, 15),
                     job_cost_units(tableau_jobs[0], nq, 45) / 3.0);
    EXPECT_DOUBLE_EQ(job_cost_units(frame_jobs[0], nq, 0), 0.0);
}

TEST(ShardPlan, StreamsPartitionExactly)
{
    ExperimentConfig cfg;
    cfg.shots = 45;
    cfg.rng_streams = 8;
    const int total = ExperimentRunner::n_streams(cfg);
    ASSERT_EQ(total, 8);
    for (int n_shards : {1, 2, 3, 5, 8, 16}) {
        SCOPED_TRACE(n_shards);
        std::set<int> seen;
        long shots = 0;
        for (int shard = 0; shard < n_shards; ++shard) {
            for (int s : ShardPlan::streams_for(cfg, shard, n_shards)) {
                EXPECT_TRUE(seen.insert(s).second) << "stream " << s;
                shots += ExperimentRunner::stream_shots(cfg, s);
            }
        }
        EXPECT_EQ(static_cast<int>(seen.size()), total);
        EXPECT_EQ(shots, cfg.shots);  // every shot exactly once
    }
    EXPECT_THROW(ShardPlan::validate(-1, 3), std::runtime_error);
    EXPECT_THROW(ShardPlan::validate(3, 3), std::runtime_error);
    EXPECT_THROW(ShardPlan::validate(0, 0), std::runtime_error);
}

// --- CampaignPlan: deterministic cost-balanced LPT assignment. ---

TEST(CampaignPlan, PartitionsEveryStreamExactlyOnceAndDeterministically)
{
    CampaignSpec spec = small_spec("plan_exact");
    spec.codes = {"surface:3", "color:5"};
    const std::vector<JobSpec> jobs = spec.expand();
    for (int n_shards : {1, 2, 3, 5}) {
        SCOPED_TRACE(n_shards);
        const CampaignPlan plan = CampaignPlan::build(spec, n_shards);
        const CampaignPlan again = CampaignPlan::build(spec, n_shards);
        for (const JobSpec& job : jobs) {
            const int total = ExperimentRunner::n_streams(job.cfg);
            std::vector<int> seen(static_cast<size_t>(total), 0);
            for (int shard = 0; shard < n_shards; ++shard) {
                const std::vector<int>& ss =
                    plan.streams_for(job.index, shard);
                // Identical across independent builds (every process
                // computes the same plan without communicating).
                EXPECT_EQ(ss, again.streams_for(job.index, shard));
                EXPECT_TRUE(std::is_sorted(ss.begin(), ss.end()));
                for (int s : ss) {
                    ASSERT_GE(s, 0);
                    ASSERT_LT(s, total);
                    ++seen[static_cast<size_t>(s)];
                }
            }
            for (int s = 0; s < total; ++s)
                EXPECT_EQ(seen[static_cast<size_t>(s)], 1)
                    << "job " << job.index << " stream " << s;
        }
    }
}

TEST(CampaignPlan, LptBalancesMixedBackendCosts)
{
    // Two campaigns' worth of heterogeneity in one: a tableau job costs
    // ~n^2/64 x a frame job per stream, so round-robin by stream id
    // would load shard 0 and shard 1 equally ONLY in expectation.  The
    // LPT plan's cost spread must be bounded by one item (the classic
    // LPT guarantee: max load <= min load + max item).
    CampaignSpec frame_spec = small_spec("plan_frame");
    frame_spec.compute_ler = false;
    for (SimBackend b :
         {SimBackend::kFrame, SimBackend::kTableau,
          SimBackend::kBatchFrame}) {
        SCOPED_TRACE(backend_name(b));
        CampaignSpec spec = frame_spec;
        spec.backend = b;
        const int n_shards = 3;
        const CampaignPlan plan = CampaignPlan::build(spec, n_shards);
        double max_cost = plan.shard_cost_units[0];
        double min_cost = plan.shard_cost_units[0];
        double max_item = 0.0;
        const std::vector<JobSpec> jobs = spec.expand();
        for (const JobSpec& job : jobs) {
            const double factor = backend_cost_factor(
                b, plan.job_qubits[static_cast<size_t>(job.index)]);
            for (int s = 0;
                 s < ExperimentRunner::n_streams(job.cfg); ++s) {
                const double c =
                    ExperimentRunner::stream_shots(job.cfg, s) *
                    static_cast<double>(job.cfg.rounds) * factor;
                max_item = std::max(max_item, c);
            }
        }
        for (double c : plan.shard_cost_units) {
            max_cost = std::max(max_cost, c);
            min_cost = std::min(min_cost, c);
        }
        EXPECT_LE(max_cost, min_cost + max_item + 1e-9)
            << max_cost << " vs " << min_cost;
        EXPECT_GT(max_cost, 0.0);
    }
}

TEST(CampaignPlan, ShardMergeStaysBitIdenticalUnderLpt)
{
    // The LPT assignment must not perturb the merge contract: running
    // every shard's planned stream set and merging reproduces run()
    // exactly, for a shard count that forces uneven stream splits.
    const CampaignSpec spec = small_spec("plan_merge");
    const int n_shards = 3;
    const std::string dir = fresh_dir("plan_merge");
    for (int shard = 0; shard < n_shards; ++shard)
        run_shard(spec, shard, n_shards, dir, /*threads=*/2);
    const std::vector<Metrics> merged =
        merge_campaign(spec, n_shards, dir);

    const std::vector<JobSpec> jobs = spec.expand();
    ASSERT_EQ(merged.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(jobs[i].policy);
        auto code = make_code(jobs[i].code);
        const ExperimentRunner runner(code->ctx, jobs[i].cfg);
        const Metrics direct =
            runner.run(make_policy(jobs[i].policy, jobs[i].cfg.np));
        expect_metrics_identical(direct, merged[i]);
    }
}

TEST(Merge, ExactlyRepresentableTotalsAreAssociative)
{
    // Metric totals are counter-like sums of small rationals; for
    // integer-valued doubles IEEE addition is exact, so any grouping of
    // merges must agree bit-for-bit.  (Arbitrary-double grouping is NOT
    // associative — which is exactly why merge_campaign folds partials
    // in ascending stream order rather than per-shard.)
    const auto mk = [](long shots, double fn, double dlp, long err) {
        Metrics m;
        m.shots = shots;
        m.rounds_per_shot = 7;
        m.fn_total = fn;
        m.dlp_total = dlp;
        m.logical_errors = err;
        m.dlp_series = {fn, dlp};
        return m;
    };
    const Metrics a = mk(10, 3, 7, 1);
    const Metrics b = mk(20, 5, 11, 0);
    const Metrics c = mk(15, 8, 2, 2);

    Metrics ab = a;
    ab.merge(b);
    Metrics ab_c = ab;
    ab_c.merge(c);

    Metrics bc = b;
    bc.merge(c);
    Metrics a_bc = a;
    a_bc.merge(bc);

    expect_metrics_identical(ab_c, a_bc);
    EXPECT_EQ(ab_c.shots, 45);
    expect_bits_eq(ab_c.fn_total, 16.0, "fn sum");
}

TEST(Merge, StreamOrderedFoldMatchesRunFoldForAnyGrouping)
{
    // The load-bearing property behind shard-then-merge: reassembling
    // per-stream partials in ascending stream order gives run()'s exact
    // left-fold, no matter how streams were grouped into shards.
    const auto code = make_code("surface:3");
    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(1e-3, 0.1);
    cfg.rounds = 6;
    cfg.shots = 29;
    cfg.seed = 0xFEED5EEDull;
    cfg.leakage_sampling = true;
    cfg.record_dlp_series = true;
    cfg.rng_streams = 8;
    const ExperimentRunner runner(code->ctx, cfg);
    const PolicyFactory factory = PolicyZoo::eraser(true);

    const Metrics direct = runner.run(factory);

    // "Shards" of streams in scrambled request order.
    const std::vector<std::vector<int>> groups = {{5, 1}, {0, 6, 3}, {7, 2, 4}};
    std::vector<Metrics> by_stream(8);
    for (const std::vector<int>& g : groups) {
        const std::vector<Metrics> parts = runner.run_partials(factory, g);
        for (size_t i = 0; i < g.size(); ++i)
            by_stream[static_cast<size_t>(g[i])] = parts[i];
    }
    Metrics merged;
    for (const Metrics& part : by_stream)
        merged.merge(part);
    expect_metrics_identical(direct, merged);
}

// The subsystem's acceptance criterion, end to end through the library
// the CLI drives: plan (expand) -> run --shard {0,1,2}/3 (checkpoint
// files in a scratch dir) -> merge -> bit-identical to single-process
// ExperimentRunner::run() for every job of the campaign.
TEST(ShardEquivalence, ThreeShardsMergeBitIdenticalToSingleProcess)
{
    const CampaignSpec spec = small_spec("equiv");
    const std::string dir = fresh_dir("equiv");
    const int n_shards = 3;

    for (int shard = 0; shard < n_shards; ++shard) {
        const RunShardStats stats =
            run_shard(spec, shard, n_shards, dir, /*threads=*/2);
        EXPECT_EQ(stats.jobs_run, 2);
        EXPECT_EQ(stats.jobs_resumed, 0);
    }
    const std::vector<Metrics> merged = merge_campaign(spec, n_shards, dir);
    const std::vector<JobSpec> jobs = spec.expand();
    ASSERT_EQ(merged.size(), jobs.size());

    for (size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(jobs[i].policy);
        const auto code = make_code(jobs[i].code);
        const ExperimentRunner runner(code->ctx, jobs[i].cfg);
        const Metrics direct =
            runner.run(make_policy(jobs[i].policy, jobs[i].cfg.np));
        expect_metrics_identical(direct, merged[i]);
        EXPECT_EQ(direct.shots, spec.shots);
        EXPECT_GT(direct.decoded_shots, 0);  // LER path exercised too
    }

    // load_merged reads back what merge wrote, bit-for-bit.
    const std::vector<Metrics> loaded = load_merged(spec, dir);
    ASSERT_EQ(loaded.size(), merged.size());
    for (size_t i = 0; i < merged.size(); ++i)
        expect_metrics_identical(merged[i], loaded[i]);
}

TEST(Resume, SkipsValidRecomputesStaleAndCorrupt)
{
    const CampaignSpec spec = small_spec("resume");
    const std::string dir = fresh_dir("resume");

    RunShardStats first = run_shard(spec, 0, 2, dir, 1);
    EXPECT_EQ(first.jobs_run, 2);
    EXPECT_EQ(first.jobs_resumed, 0);

    // Same spec again: everything resumes, nothing recomputes.
    RunShardStats second = run_shard(spec, 0, 2, dir, 1);
    EXPECT_EQ(second.jobs_run, 0);
    EXPECT_EQ(second.jobs_resumed, 2);

    // A changed config (different hash) invalidates the checkpoints.
    CampaignSpec changed = spec;
    changed.rounds += 1;
    RunShardStats third = run_shard(changed, 0, 2, dir, 1);
    EXPECT_EQ(third.jobs_run, 2);
    EXPECT_EQ(third.jobs_resumed, 0);

    // A garbled result file is recomputed, not trusted.
    const std::string victim = shard_result_path(dir, changed, 0, 0, 2);
    io::write_file_atomic(victim, "{\"gld_version\": 1, truncated");
    RunShardStats fourth = run_shard(changed, 0, 2, dir, 1);
    EXPECT_EQ(fourth.jobs_run, 1);
    EXPECT_EQ(fourth.jobs_resumed, 1);

    // Swapping the policy order leaves every job's CONFIG unchanged
    // (paired seeds: both policies share one seed, and policy is not
    // part of ExperimentConfig), so only the job-identity check stops
    // the old results from being resumed under the wrong label.
    CampaignSpec swapped = changed;
    std::swap(swapped.policies[0], swapped.policies[1]);
    EXPECT_EQ(io::config_hash(swapped.expand()[0].cfg),
              io::config_hash(changed.expand()[0].cfg));
    RunShardStats fifth = run_shard(swapped, 0, 2, dir, 1);
    EXPECT_EQ(fifth.jobs_run, 2);
    EXPECT_EQ(fifth.jobs_resumed, 0);
}

TEST(Merge, RefusesMissingShardsAndForeignConfigs)
{
    const CampaignSpec spec = small_spec("strict");
    const std::string dir = fresh_dir("strict");
    run_shard(spec, 0, 2, dir, 1);
    // Shard 1 of 2 never ran.
    EXPECT_THROW(merge_campaign(spec, 2, dir), std::runtime_error);

    run_shard(spec, 1, 2, dir, 1);
    EXPECT_NO_THROW(merge_campaign(spec, 2, dir));

    // Results on disk from a different config must be rejected, not
    // silently merged.
    CampaignSpec other = spec;
    other.seed ^= 0xF00Dull;
    EXPECT_THROW(merge_campaign(other, 2, dir), std::runtime_error);

    // Same config, different job identity (policy order swapped under
    // paired seeds): merge must refuse to relabel the results.
    CampaignSpec swapped = spec;
    std::swap(swapped.policies[0], swapped.policies[1]);
    EXPECT_THROW(merge_campaign(swapped, 2, dir), std::runtime_error);
}

TEST(Campaign, JobPoolAndRunnerShareOneThreadBudget)
{
    // -j N (jobs_parallel) and the per-job runner loops execute on the
    // ONE process-wide pool: with both asking for the full
    // BenchConfig::threads() budget, the pool must neither spawn new
    // workers mid-campaign nor ever have more than `budget` threads
    // active at once — the oversubscription regression behind the
    // 8-thread-slower-than-1-thread trajectory point.
    const CampaignSpec spec = small_spec("shared_budget");
    const std::string dir = fresh_dir("shared_budget");

    ThreadPool& pool = ThreadPool::instance();
    const int budget = std::max(1, BenchConfig::threads());
    parallel_for_dynamic(4, budget, [](size_t) {});  // warm the pool
    const long created = pool.workers_created();
    pool.reset_peak();

    RunShardOptions opt;
    opt.threads = 0;  // full budget per job
    opt.jobs_parallel = 2;
    const RunShardStats stats = run_shard(spec, 0, 1, dir, opt);
    EXPECT_EQ(stats.jobs_run, static_cast<int>(spec.expand().size()));

    EXPECT_EQ(pool.workers_created(), created);
    EXPECT_GE(pool.peak_active(), 1);
    EXPECT_LE(pool.peak_active(), budget);

    // And the nested-pool schedule is a pure execution detail: the
    // merged results match a serial single-thread pass bit for bit.
    const std::string dir_serial = fresh_dir("shared_budget_serial");
    run_shard(spec, 0, 1, dir_serial, /*threads=*/1);
    const std::vector<Metrics> par = merge_campaign(spec, 1, dir);
    const std::vector<Metrics> ser = merge_campaign(spec, 1, dir_serial);
    ASSERT_EQ(par.size(), ser.size());
    for (size_t i = 0; i < par.size(); ++i) {
        SCOPED_TRACE(i);
        expect_metrics_identical(ser[i], par[i]);
    }
}

// --- Telemetry, liveness and calibration (the observability layer). ---

TEST(Observability, TelemetryIsAPureSideChannelAtTheCampaignLevel)
{
    // run_shard with telemetry + heatmaps on vs the legacy (telemetry
    // off) entry point: the merged Metrics must be bit-identical — the
    // campaign-level extension of the runner drift gate.
    const CampaignSpec spec = small_spec("side_channel");
    const int n_shards = 2;
    const std::string dir_on = fresh_dir("side_channel_on");
    const std::string dir_off = fresh_dir("side_channel_off");

    RunShardOptions opt;
    opt.threads = 2;
    opt.heatmap = true;
    ASSERT_TRUE(opt.telemetry);
    for (int shard = 0; shard < n_shards; ++shard) {
        run_shard(spec, shard, n_shards, dir_on, opt);
        run_shard(spec, shard, n_shards, dir_off, /*threads=*/2);
    }
    const std::vector<Metrics> on = merge_campaign(spec, n_shards, dir_on);
    const std::vector<Metrics> off = merge_campaign(spec, n_shards, dir_off);
    ASSERT_EQ(on.size(), off.size());
    for (size_t i = 0; i < on.size(); ++i) {
        SCOPED_TRACE(i);
        expect_metrics_identical(off[i], on[i]);
    }
}

TEST(Observability, ProgressHeatmapAndCalibrationEndToEnd)
{
    if (!telemetry::kCompiledIn)
        GTEST_SKIP() << "built with GLD_TELEMETRY=OFF";
    const CampaignSpec spec = small_spec("observe");
    const int n_shards = 3;
    const std::string dir = fresh_dir("observe");
    const std::vector<JobSpec> jobs = spec.expand();

    RunShardOptions opt;
    opt.threads = 2;
    opt.heatmap = true;
    for (int shard = 0; shard < n_shards; ++shard)
        run_shard(spec, shard, n_shards, dir, opt);

    // Liveness: every shard's heartbeat file ends in a done snapshot, and
    // the fleet totals cover every (job, shot) exactly once.
    const std::vector<ShardProgress> progress =
        read_progress(spec, n_shards, dir);
    ASSERT_EQ(progress.size(), static_cast<size_t>(n_shards));
    int64_t shots_done = 0;
    int64_t jobs_done = 0;
    uint64_t stage_total = 0;
    for (const ShardProgress& p : progress) {
        SCOPED_TRACE(p.shard);
        EXPECT_TRUE(p.valid);
        EXPECT_TRUE(p.done);
        EXPECT_EQ(p.jobs_done, static_cast<int64_t>(jobs.size()));
        EXPECT_EQ(p.jobs_resumed, 0);
        EXPECT_EQ(p.shots_done, p.shots_total);
        shots_done += p.shots_done;
        jobs_done += p.jobs_done;
        for (uint64_t ns : p.stage_ns)
            stage_total += ns;
    }
    EXPECT_EQ(shots_done,
              static_cast<int64_t>(jobs.size()) * spec.shots);
    EXPECT_EQ(jobs_done, static_cast<int64_t>(jobs.size()) * n_shards);
    EXPECT_GT(stage_total, 0u);  // executed shards carry a stage split
    EXPECT_NO_THROW(print_status(spec, n_shards, dir));

    // A never-started fleet reads as not-valid, it does not throw.
    const std::vector<ShardProgress> cold =
        read_progress(spec, n_shards, fresh_dir("observe_cold"));
    for (const ShardProgress& p : cold)
        EXPECT_FALSE(p.valid);

    // Heatmaps: the cross-shard merge has the job's geometry and counts
    // every leaked data qubit-round the resumable results saw.
    const auto code = make_code(jobs[0].code);
    const telemetry::Heatmap hm =
        merge_job_heatmap(spec, n_shards, dir, /*job_index=*/0);
    EXPECT_EQ(hm.rounds, spec.rounds);
    EXPECT_EQ(hm.n_data, code->code.n_data());
    EXPECT_EQ(hm.n_checks, code->code.n_checks());
    uint64_t occupancy = 0;
    for (uint64_t c : hm.counts)
        occupancy += c;
    EXPECT_GT(occupancy, 0u);  // leakage sampling guarantees leaks
    EXPECT_EQ(write_job_heatmaps(spec, n_shards, dir),
              static_cast<int>(jobs.size()));

    // Calibration closes the loop: telemetry -> measured rates -> plan.
    const Calibration calib =
        Calibration::from_telemetry(spec, n_shards, dir);
    ASSERT_TRUE(calib.has("frame", "surface:3"));
    EXPECT_GT(calib.rate("frame", "surface:3"), 0.0);
    EXPECT_THROW(calib.rate("tableau", "surface:3"), std::runtime_error);

    const Calibration back =
        Calibration::from_json(io::Json::parse(calib.to_json().dump(2)));
    ASSERT_EQ(back.rates.size(), calib.rates.size());
    expect_bits_eq(back.rate("frame", "surface:3"),
                   calib.rate("frame", "surface:3"),
                   "calibration json round trip");

    // The calibrated plan is deterministic and still a partition: every
    // stream of every job on exactly one shard.
    const CampaignPlan plan =
        CampaignPlan::build(spec, n_shards, nullptr, &calib);
    const CampaignPlan again =
        CampaignPlan::build(spec, n_shards, nullptr, &calib);
    for (const JobSpec& job : jobs) {
        const int total = ExperimentRunner::n_streams(job.cfg);
        std::vector<int> seen(static_cast<size_t>(total), 0);
        for (int shard = 0; shard < n_shards; ++shard) {
            EXPECT_EQ(plan.streams_for(job.index, shard),
                      again.streams_for(job.index, shard));
            for (int s : plan.streams_for(job.index, shard))
                ++seen[static_cast<size_t>(s)];
        }
        for (int s = 0; s < total; ++s)
            EXPECT_EQ(seen[static_cast<size_t>(s)], 1)
                << "job " << job.index << " stream " << s;
    }
    // An empty calibration falls back to the analytic cost model instead
    // of throwing on its (absent) keys.
    const Calibration none;
    EXPECT_NO_THROW(CampaignPlan::build(spec, n_shards, nullptr, &none));
    // A backend the calibration has no measurement for is an error, not
    // a silent fallback.
    CampaignSpec tableau_spec = spec;
    tableau_spec.backend = SimBackend::kTableau;
    EXPECT_THROW(
        CampaignPlan::build(tableau_spec, n_shards, nullptr, &calib),
        std::runtime_error);

    // Foreign-config telemetry is skipped, so a changed campaign finds
    // no usable telemetry or heatmaps in the same directory.
    CampaignSpec changed = spec;
    changed.rounds += 1;
    EXPECT_THROW(Calibration::from_telemetry(changed, n_shards, dir),
                 std::runtime_error);
    EXPECT_THROW(merge_job_heatmap(changed, n_shards, dir, 0),
                 std::runtime_error);

    // remove_results clears the observability files too: a fresh status
    // read sees a cold fleet and calibrate finds nothing.
    remove_results(spec, n_shards, dir);
    for (const ShardProgress& p : read_progress(spec, n_shards, dir))
        EXPECT_FALSE(p.valid);
    EXPECT_THROW(Calibration::from_telemetry(spec, n_shards, dir),
                 std::runtime_error);
}

TEST(Observability, CalibrationKeysOnBatchWidthSoSweepsDontCollide)
{
    // The small fix: calibrate/plan --calibration used to key on
    // (backend, code) only, so a K-sweep's measurements overwrote each
    // other.  The batch width is part of the key — K=1 keeps the legacy
    // "backend/code" form so existing calibration files still load and
    // match.
    EXPECT_EQ(Calibration::key("batch_frame", "surface:3"),
              "batch_frame/surface:3");
    EXPECT_EQ(Calibration::key("batch_frame", "surface:3", 1),
              "batch_frame/surface:3");
    EXPECT_EQ(Calibration::key("batch_frame", "surface:3", 4),
              "batch_frame@w4/surface:3");

    Calibration cal;
    cal.rates[Calibration::key("batch_frame", "surface:3")] = 100.0;
    cal.rates[Calibration::key("batch_frame", "surface:3", 4)] = 400.0;
    EXPECT_TRUE(cal.has("batch_frame", "surface:3"));
    EXPECT_TRUE(cal.has("batch_frame", "surface:3", 4));
    EXPECT_FALSE(cal.has("batch_frame", "surface:3", 2));
    EXPECT_DOUBLE_EQ(cal.rate("batch_frame", "surface:3"), 100.0);
    EXPECT_DOUBLE_EQ(cal.rate("batch_frame", "surface:3", 4), 400.0);
    EXPECT_THROW(cal.rate("batch_frame", "surface:3", 2),
                 std::runtime_error);
}

TEST(Observability, WideBatchCalibrationNeverMixesWithNarrow)
{
    if (!telemetry::kCompiledIn)
        GTEST_SKIP() << "built with GLD_TELEMETRY=OFF";
    // End-to-end: a K=2 campaign's telemetry lands under the @w2 key,
    // plans the K=2 spec, and refuses (rather than silently misprices)
    // the K=1 spec.
    CampaignSpec wide = small_spec("observe_wide");
    wide.batch_words = 2;
    const std::string dir = fresh_dir("observe_wide");
    RunShardOptions opt;
    opt.threads = 1;
    run_shard(wide, 0, 1, dir, opt);

    const Calibration cal = Calibration::from_telemetry(wide, 1, dir);
    ASSERT_TRUE(cal.has("frame", "surface:3", 2));
    EXPECT_FALSE(cal.has("frame", "surface:3"));
    EXPECT_NO_THROW(CampaignPlan::build(wide, 1, nullptr, &cal));

    const CampaignSpec narrow = small_spec("observe_wide");
    EXPECT_THROW(CampaignPlan::build(narrow, 1, nullptr, &cal),
                 std::runtime_error);
}

TEST(Observability, ResumedJobsKeepTelemetryAndReportPlannedShots)
{
    if (!telemetry::kCompiledIn)
        GTEST_SKIP() << "built with GLD_TELEMETRY=OFF";
    const CampaignSpec spec = small_spec("observe_resume");
    const std::string dir = fresh_dir("observe_resume");
    RunShardOptions opt;
    opt.threads = 1;
    opt.heatmap = true;
    run_shard(spec, 0, 2, dir, opt);
    const Calibration first = Calibration::from_telemetry(spec, 2, dir);

    // Second run resumes everything: telemetry files survive untouched,
    // and the heartbeat still reports the full planned shot count.
    const RunShardStats stats = run_shard(spec, 0, 2, dir, opt);
    EXPECT_EQ(stats.jobs_run, 0);
    EXPECT_EQ(stats.jobs_resumed, 2);
    const Calibration second = Calibration::from_telemetry(spec, 2, dir);
    expect_bits_eq(second.rate("frame", "surface:3"),
                   first.rate("frame", "surface:3"),
                   "telemetry survives resume");
    const std::vector<ShardProgress> progress = read_progress(spec, 2, dir);
    ASSERT_TRUE(progress[0].valid);
    EXPECT_TRUE(progress[0].done);
    EXPECT_EQ(progress[0].jobs_resumed, 2);
    EXPECT_EQ(progress[0].shots_done, progress[0].shots_total);
}

}  // namespace
}  // namespace campaign
}  // namespace gld
