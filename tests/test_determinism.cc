// Reproducibility contract (ROADMAP tier-1 gate): the same
// ExperimentConfig::seed must give bit-identical Metrics across repeated
// runs and across thread counts.  ExperimentRunner partitions shots into
// a fixed set of RNG streams and merges them in stream order, so neither
// scheduling nor cross-thread reduction order can leak into the result.

#include <gtest/gtest.h>

#include "codes/color_code.h"
#include "codes/hgp_code.h"
#include "codes/surface_code.h"
#include "metrics_test_util.h"
#include "runtime/experiment.h"

namespace gld {
namespace {

using test::expect_metrics_identical;

Metrics
run_with_threads(const CodeContext& ctx, ExperimentConfig cfg, int threads,
                 const PolicyFactory& factory)
{
    cfg.threads = threads;
    ExperimentRunner runner(ctx, cfg);
    return runner.run(factory);
}

void
check_code(const CssCode& code, bool compute_ler)
{
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));

    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(1e-3, 0.1);
    cfg.rounds = 10;
    cfg.shots = 30;
    cfg.seed = 0xD00D5EEDull;
    cfg.leakage_sampling = true;
    cfg.record_dlp_series = true;
    cfg.compute_ler = compute_ler;

    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);

    const Metrics base = run_with_threads(ctx, cfg, 1, factory);
    EXPECT_EQ(base.shots, cfg.shots);

    // Repeated single-threaded run: same seed, same bits.
    expect_metrics_identical(base, run_with_threads(ctx, cfg, 1, factory));

    // Thread count must not change the result.
    for (int threads : {2, 4}) {
        SCOPED_TRACE(threads);
        expect_metrics_identical(base,
                                 run_with_threads(ctx, cfg, threads, factory));
    }
}

TEST(Determinism, SurfaceCodeBitIdenticalAcrossThreads)
{
    check_code(SurfaceCode::make(3), /*compute_ler=*/true);
}

TEST(Determinism, ColorCodeBitIdenticalAcrossThreads)
{
    check_code(ColorCode::make(5), /*compute_ler=*/false);
}

TEST(Determinism, HgpCodeBitIdenticalAcrossThreads)
{
    check_code(HgpCode::make_hamming(), /*compute_ler=*/false);
}

// Sharding extension of the same contract: the per-stream partials
// exposed for the campaign subsystem, computed shard-by-shard (stream s
// on "shard" s % 3) at different thread counts, merged in ascending
// stream order, must be bit-identical to run().
TEST(Determinism, ShardedPartialsMergeBitIdenticalToRun)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));

    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(1e-3, 0.1);
    cfg.rounds = 10;
    cfg.shots = 30;
    cfg.seed = 0xD00D5EEDull;
    cfg.leakage_sampling = true;
    cfg.record_dlp_series = true;
    cfg.compute_ler = true;

    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);
    const Metrics base = run_with_threads(ctx, cfg, 1, factory);

    const int n_streams = ExperimentRunner::n_streams(cfg);
    ASSERT_GT(n_streams, 1);
    for (int threads : {1, 2}) {
        SCOPED_TRACE(threads);
        cfg.threads = threads;
        const ExperimentRunner runner(ctx, cfg);
        std::vector<Metrics> by_stream(static_cast<size_t>(n_streams));
        for (int shard = 0; shard < 3; ++shard) {
            std::vector<int> streams;
            for (int s = shard; s < n_streams; s += 3)
                streams.push_back(s);
            const std::vector<Metrics> parts =
                runner.run_partials(factory, streams);
            for (size_t i = 0; i < streams.size(); ++i)
                by_stream[static_cast<size_t>(streams[i])] = parts[i];
        }
        Metrics merged;
        for (const Metrics& part : by_stream)
            merged.merge(part);
        expect_metrics_identical(base, merged);
    }
}

// The speculation policies draw from their own seeded RNG streams; make
// sure a stateful table-driven policy is covered too, not just ERASER.
TEST(Determinism, GladiatorSurfaceBitIdenticalAcrossThreads)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));

    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(1e-3, 0.1);
    cfg.rounds = 8;
    cfg.shots = 24;
    cfg.seed = 0xFACEFEEDull;
    cfg.leakage_sampling = true;

    const PolicyFactory factory =
        PolicyZoo::gladiator(/*use_mlr=*/true, cfg.np);
    const Metrics base = run_with_threads(ctx, cfg, 1, factory);
    for (int threads : {2, 4}) {
        SCOPED_TRACE(threads);
        expect_metrics_identical(base,
                                 run_with_threads(ctx, cfg, threads, factory));
    }
}

}  // namespace
}  // namespace gld
