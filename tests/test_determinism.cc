// Reproducibility contract (ROADMAP tier-1 gate): the same
// ExperimentConfig::seed must give bit-identical Metrics across repeated
// runs and across thread counts.  ExperimentRunner partitions shots into
// a fixed set of RNG streams and merges them in stream order, so neither
// scheduling nor cross-thread reduction order can leak into the result.
//
// The contract is per backend, and this suite honours GLD_BACKEND and
// GLD_BATCH_WORDS: CI runs it once per backend (default frame, then
// tableau, then the batch engines) and once at a K>1 batch width, so the
// non-default engines and the K-word lane paths are gated by the same
// bit-exactness suite on every PR, not only by the dedicated
// cross-backend tests.

#include <gtest/gtest.h>

#include "codes/color_code.h"
#include "codes/hgp_code.h"
#include "codes/surface_code.h"
#include "io/serialize.h"
#include "metrics_test_util.h"
#include "runtime/experiment.h"

namespace gld {
namespace {

using test::expect_metrics_identical;

Metrics
run_with_threads(const CodeContext& ctx, ExperimentConfig cfg, int threads,
                 const PolicyFactory& factory)
{
    cfg.threads = threads;
    ExperimentRunner runner(ctx, cfg);
    return runner.run(factory);
}

/** The backend under test: GLD_BACKEND, default frame; batch width from
 *  GLD_BATCH_WORDS, default 1; noise sampling from GLD_NOISE_SAMPLING,
 *  default lockstep — so CI gates the sparse event sampler with this
 *  same bit-exactness suite by exporting one variable. */
ExperimentConfig
base_config()
{
    ExperimentConfig cfg;
    cfg.backend = backend_from_env();
    cfg.batch_words = batch_words_from_env();
    cfg.noise_sampling = noise_sampling_from_env();
    return cfg;
}

void
check_code(const CssCode& code, bool compute_ler)
{
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));

    ExperimentConfig cfg = base_config();
    cfg.np = NoiseParams::standard(1e-3, 0.1);
    cfg.rounds = 10;
    cfg.shots = 30;
    cfg.seed = 0xD00D5EEDull;
    cfg.leakage_sampling = true;
    cfg.record_dlp_series = true;
    cfg.compute_ler = compute_ler;

    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);

    const Metrics base = run_with_threads(ctx, cfg, 1, factory);
    EXPECT_EQ(base.shots, cfg.shots);

    // Repeated single-threaded run: same seed, same bits.
    expect_metrics_identical(base, run_with_threads(ctx, cfg, 1, factory));

    // Thread count must not change the result.
    for (int threads : {2, 4}) {
        SCOPED_TRACE(threads);
        expect_metrics_identical(base,
                                 run_with_threads(ctx, cfg, threads, factory));
    }
}

TEST(Determinism, SurfaceCodeBitIdenticalAcrossThreads)
{
    check_code(SurfaceCode::make(3), /*compute_ler=*/true);
}

TEST(Determinism, ColorCodeBitIdenticalAcrossThreads)
{
    check_code(ColorCode::make(5), /*compute_ler=*/false);
}

TEST(Determinism, HgpCodeBitIdenticalAcrossThreads)
{
    check_code(HgpCode::make_hamming(), /*compute_ler=*/false);
}

// Sharding extension of the same contract: the per-stream partials
// exposed for the campaign subsystem, computed shard-by-shard (stream s
// on "shard" s % 3) at different thread counts, merged in ascending
// stream order, must be bit-identical to run().
TEST(Determinism, ShardedPartialsMergeBitIdenticalToRun)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));

    ExperimentConfig cfg = base_config();
    cfg.np = NoiseParams::standard(1e-3, 0.1);
    cfg.rounds = 10;
    cfg.shots = 30;
    cfg.seed = 0xD00D5EEDull;
    cfg.leakage_sampling = true;
    cfg.record_dlp_series = true;
    cfg.compute_ler = true;

    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);
    const Metrics base = run_with_threads(ctx, cfg, 1, factory);

    const int n_streams = ExperimentRunner::n_streams(cfg);
    ASSERT_GT(n_streams, 1);
    for (int threads : {1, 2}) {
        SCOPED_TRACE(threads);
        cfg.threads = threads;
        const ExperimentRunner runner(ctx, cfg);
        std::vector<Metrics> by_stream(static_cast<size_t>(n_streams));
        for (int shard = 0; shard < 3; ++shard) {
            std::vector<int> streams;
            for (int s = shard; s < n_streams; s += 3)
                streams.push_back(s);
            const std::vector<Metrics> parts =
                runner.run_partials(factory, streams);
            for (size_t i = 0; i < streams.size(); ++i)
                by_stream[static_cast<size_t>(streams[i])] = parts[i];
        }
        Metrics merged;
        for (const Metrics& part : by_stream)
            merged.merge(part);
        expect_metrics_identical(base, merged);
    }
}

// The chunked scheduler ships (stream, shot-block) work units to however
// many threads are available; at the raised default of 32 RNG streams the
// result must stay bit-exact well past the old 8-worker plateau.
TEST(Determinism, StreamCount32BitIdenticalAtThreads1_8_16)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));

    ExperimentConfig cfg = base_config();
    cfg.np = NoiseParams::standard(1e-3, 0.1);
    cfg.rounds = 5;
    cfg.shots = 100;
    cfg.seed = 0x32D00D5EEDull;
    cfg.leakage_sampling = true;
    cfg.record_dlp_series = true;
    cfg.compute_ler = true;
    cfg.rng_streams = 32;
    ASSERT_EQ(ExperimentRunner::n_streams(cfg), 32);
    // More independently schedulable units than the old one-per-stream
    // scheduler could ever give 8 workers.
    ASSERT_GT(ExperimentRunner::n_work_units(cfg), 8);

    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);
    const Metrics base = run_with_threads(ctx, cfg, 1, factory);
    EXPECT_EQ(base.shots, cfg.shots);
    for (int threads : {8, 16}) {
        SCOPED_TRACE(threads);
        expect_metrics_identical(base,
                                 run_with_threads(ctx, cfg, threads, factory));
    }
}

// Streams wider than one shot block: the per-stream partial is a fold of
// several block partials, and that fold must be schedule-independent too
// (and identical whether reached via run() or run_partials()).
TEST(Determinism, MultiBlockStreamsBitIdenticalAcrossThreads)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));

    ExperimentConfig cfg = base_config();
    cfg.np = NoiseParams::standard(1e-3, 0.1);
    cfg.rounds = 4;
    cfg.seed = 0xB10C5EEDull;
    cfg.leakage_sampling = true;
    cfg.record_dlp_series = true;
    cfg.rng_streams = 2;
    // 2 streams x (block + 16) shots: one full scheduler block plus a
    // 16-shot partial each, at whatever batch width the env selected
    // (160 total at the default K=1).
    cfg.shots = 2 * (ExperimentRunner::shot_block(cfg) + 16);
    ASSERT_EQ(ExperimentRunner::stream_blocks(cfg, 0), 2);
    // The final block is partial: on the batch backends it runs as a
    // 16-lane batch with the trailing K*64-16 lanes masked off.
    ASSERT_NE(ExperimentRunner::stream_shots(cfg, 0) %
                  ExperimentRunner::shot_block(cfg),
              0);

    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);
    const Metrics base = run_with_threads(ctx, cfg, 1, factory);
    for (int threads : {2, 4}) {
        SCOPED_TRACE(threads);
        expect_metrics_identical(base,
                                 run_with_threads(ctx, cfg, threads, factory));
    }
    // Per-stream partials (the sharding unit) are block folds as well.
    cfg.threads = 4;
    const ExperimentRunner runner(ctx, cfg);
    const std::vector<Metrics> parts = runner.run_partials(factory, {0, 1});
    Metrics merged = parts[0];
    merged.merge(parts[1]);
    expect_metrics_identical(base, merged);
}

// The default config must expose more concurrently useful work units
// than the pre-refactor scheduler's hard 8 (ROADMAP "thread scaling").
TEST(Determinism, DefaultConfigSchedulesMoreThan8WorkUnits)
{
    const ExperimentConfig cfg;
    EXPECT_EQ(cfg.rng_streams, 32);
    EXPECT_GE(ExperimentRunner::n_streams(cfg), 16);
    EXPECT_GT(ExperimentRunner::n_work_units(cfg), 8);

    // Big runs keep scaling: units grow with shots, not just streams.
    ExperimentConfig big = cfg;
    big.shots = 10000;
    EXPECT_GT(ExperimentRunner::n_work_units(big),
              static_cast<long>(big.rng_streams));
}

// The bit-packed backend's contract is stronger than per-backend
// determinism: its Metrics must equal the scalar frame backend's BIT for
// BIT (lane k of a batch replays shot k draw for draw), at any thread
// count, including multi-block streams and a partial final batch.  This
// runs regardless of GLD_BACKEND — it IS the cross-backend gate, in the
// reproducibility suite where a scheduler regression would surface.
TEST(Determinism, BatchFrameBitIdenticalToFrameAcrossThreads)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));

    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(2e-3, 0.5);
    cfg.rounds = 6;
    cfg.shots = 150;  // 2 streams x 75: blocks of 64 + a partial 11-lane
    cfg.seed = 0xBA7C4DE7ull;
    cfg.leakage_sampling = true;
    cfg.record_dlp_series = true;
    cfg.compute_ler = true;
    cfg.rng_streams = 2;
    ASSERT_EQ(ExperimentRunner::stream_blocks(cfg, 0), 2);
    ASSERT_NE(ExperimentRunner::stream_shots(cfg, 0) %
                  ExperimentRunner::kShotBlock,
              0);

    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);
    cfg.backend = SimBackend::kFrame;
    const Metrics frame = run_with_threads(ctx, cfg, 1, factory);
    cfg.backend = SimBackend::kBatchFrame;
    for (int threads : {1, 8, 16}) {
        SCOPED_TRACE(threads);
        expect_metrics_identical(
            frame, run_with_threads(ctx, cfg, threads, factory));
    }
}

// The same lane-replay contract at every multi-word batch width: lane
// (w, l) of a K-word batch replays scalar shot w*64+l draw for draw.
// batch_words is result-affecting for EVERY backend (it sets the
// scheduler block feeding the per-block RNG derivation), so the frame
// reference runs at the same K — which is exactly what makes the
// comparison well-defined.  The shot count leaves a trailing partial
// block whose active lanes spill one word and leave the rest masked
// off, and the sharded run_partials fold is checked at K>1 too.
TEST(Determinism, BatchFrameBitIdenticalToFrameAtEveryBatchWidth)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);

    for (int words : {2, 4, 8}) {
        SCOPED_TRACE(words);
        ExperimentConfig cfg;
        cfg.np = NoiseParams::standard(2e-3, 0.5);
        cfg.rounds = 5;
        cfg.seed = 0xBA7C0B1Dull + static_cast<uint64_t>(words);
        cfg.leakage_sampling = true;
        cfg.record_dlp_series = true;
        cfg.compute_ler = true;
        cfg.rng_streams = 2;
        cfg.batch_words = words;
        // Per stream: one full K*64-lane block + a 65-shot partial whose
        // active lanes fill word 0 and one bit of word 1.
        cfg.shots = 2 * (ExperimentRunner::shot_block(cfg) + 65);
        ASSERT_EQ(ExperimentRunner::stream_blocks(cfg, 0), 2);

        cfg.backend = SimBackend::kFrame;
        const Metrics frame = run_with_threads(ctx, cfg, 1, factory);
        cfg.backend = SimBackend::kBatchFrame;
        for (int threads : {1, 8, 16}) {
            SCOPED_TRACE(threads);
            expect_metrics_identical(
                frame, run_with_threads(ctx, cfg, threads, factory));
        }

        // Sharded-vs-single at K>1: per-stream partials merged in stream
        // order must reproduce the same bits.
        cfg.threads = 4;
        const ExperimentRunner runner(ctx, cfg);
        const std::vector<Metrics> parts =
            runner.run_partials(factory, {0, 1});
        Metrics merged = parts[0];
        merged.merge(parts[1]);
        expect_metrics_identical(frame, merged);
    }
}

// Trailing partial blocks whose masked-off lanes cross a word boundary,
// pinned at K=2 (128-lane blocks) with one stream: 65 shots light word 0
// fully and one bit of word 1; 127 leave a single masked-off lane at the
// top of word 1; 129 leave a SECOND block whose word 0 has one active
// lane and whose word 1 is entirely dead — the all-zero-word path the
// span kernels must not misindex.
TEST(Determinism, BatchFramePartialBlocksCrossWordBoundaries)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);

    for (int shots : {65, 127, 129}) {
        SCOPED_TRACE(shots);
        ExperimentConfig cfg;
        cfg.np = NoiseParams::standard(2e-3, 0.5);
        cfg.rounds = 6;
        cfg.shots = shots;
        cfg.seed = 0x77A1D5EEDull;
        cfg.leakage_sampling = true;
        cfg.record_dlp_series = true;
        cfg.compute_ler = true;
        cfg.rng_streams = 1;
        cfg.batch_words = 2;

        cfg.backend = SimBackend::kFrame;
        const Metrics frame = run_with_threads(ctx, cfg, 1, factory);
        EXPECT_EQ(frame.shots, shots);
        cfg.backend = SimBackend::kBatchFrame;
        for (int threads : {1, 4}) {
            SCOPED_TRACE(threads);
            expect_metrics_identical(
                frame, run_with_threads(ctx, cfg, threads, factory));
        }
    }
}

// The sparse event sampler draws a DIFFERENT sequence from lockstep (it
// is qualified statistically by `gld_campaign verify`, not by bit-diff
// against frame), but its own determinism contract is the same as every
// backend's: events are derived from (seed, stream, block) alone, so the
// result is bit-identical across repeated runs, across thread counts,
// and sharded-vs-single — including multi-block streams with a partial
// trailing block, where the per-batch event stream reseeds from the
// block master at each shot batch.
TEST(Determinism, SparseSamplingBitIdenticalAcrossThreadsAndShards)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);

    for (SimBackend backend :
         {SimBackend::kBatchFrame, SimBackend::kBatchTableau}) {
        SCOPED_TRACE(backend_name(backend));
        ExperimentConfig cfg;
        cfg.backend = backend;
        cfg.noise_sampling = NoiseSampling::kSparse;
        cfg.np = NoiseParams::standard(2e-3, 0.5);
        cfg.rounds = 6;
        cfg.seed = 0x5BA85E5EEDull;
        cfg.leakage_sampling = true;
        cfg.record_dlp_series = true;
        cfg.compute_ler = true;
        cfg.rng_streams = 2;
        // One full block + a 17-shot partial per stream: the partial
        // batch's event space still spans site x lane over the full
        // block width, with dead lanes masked out of the event masks.
        cfg.shots = 2 * (ExperimentRunner::shot_block(cfg) + 17);
        ASSERT_EQ(ExperimentRunner::stream_blocks(cfg, 0), 2);

        const Metrics base = run_with_threads(ctx, cfg, 1, factory);
        EXPECT_EQ(base.shots, cfg.shots);
        expect_metrics_identical(base,
                                 run_with_threads(ctx, cfg, 1, factory));
        for (int threads : {2, 8, 16}) {
            SCOPED_TRACE(threads);
            expect_metrics_identical(
                base, run_with_threads(ctx, cfg, threads, factory));
        }

        // Sharded-vs-single: per-stream partials merged in stream order
        // reproduce the same bits.
        cfg.threads = 4;
        const ExperimentRunner runner(ctx, cfg);
        const std::vector<Metrics> parts =
            runner.run_partials(factory, {0, 1});
        Metrics merged = parts[0];
        merged.merge(parts[1]);
        expect_metrics_identical(base, merged);
    }
}

// Flipping the mode must actually change the batch backends' draws (the
// two contracts are distinct), while the scalar backends ignore the knob
// entirely — the two halves of the config-hash story: sparse documents
// hash differently because the results differ; scalar results stay
// byte-identical because the mode never reaches them.
TEST(Determinism, SparseChangesBatchDrawsButNotScalarDraws)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));
    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);

    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(2e-3, 0.5);
    cfg.rounds = 6;
    cfg.shots = 150;
    cfg.seed = 0xBA7C4DE7ull;
    cfg.leakage_sampling = true;
    cfg.record_dlp_series = true;
    cfg.compute_ler = true;
    cfg.rng_streams = 2;

    cfg.backend = SimBackend::kBatchFrame;
    const Metrics lockstep = run_with_threads(ctx, cfg, 1, factory);
    cfg.noise_sampling = NoiseSampling::kSparse;
    const Metrics sparse = run_with_threads(ctx, cfg, 1, factory);
    EXPECT_NE(io::metrics_to_json(lockstep).dump(),
              io::metrics_to_json(sparse).dump());

    cfg.backend = SimBackend::kFrame;
    cfg.noise_sampling = NoiseSampling::kLockstep;
    const Metrics frame_lockstep = run_with_threads(ctx, cfg, 1, factory);
    cfg.noise_sampling = NoiseSampling::kSparse;
    expect_metrics_identical(frame_lockstep,
                             run_with_threads(ctx, cfg, 1, factory));
}

// The speculation policies draw from their own seeded RNG streams; make
// sure a stateful table-driven policy is covered too, not just ERASER.
TEST(Determinism, GladiatorSurfaceBitIdenticalAcrossThreads)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));

    ExperimentConfig cfg = base_config();
    cfg.np = NoiseParams::standard(1e-3, 0.1);
    cfg.rounds = 8;
    cfg.shots = 24;
    cfg.seed = 0xFACEFEEDull;
    cfg.leakage_sampling = true;

    const PolicyFactory factory =
        PolicyZoo::gladiator(/*use_mlr=*/true, cfg.np);
    const Metrics base = run_with_threads(ctx, cfg, 1, factory);
    for (int threads : {2, 4}) {
        SCOPED_TRACE(threads);
        expect_metrics_identical(base,
                                 run_with_threads(ctx, cfg, threads, factory));
    }
}

// Per-worker simulator/policy/decoder reuse (the zero-allocation steady
// state) must be invisible: reuse_worker_state = false reproduces the
// fresh construct-per-block path, and both arms must agree bit for bit
// at every thread count — per backend and batch width, via the same
// GLD_BACKEND / GLD_BATCH_WORDS env axes as the rest of this suite.
// (tests/test_worker_reuse.cc sweeps all backends x K explicitly.)
TEST(Determinism, WorkerStateReuseBitIdenticalToFresh)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));

    ExperimentConfig cfg = base_config();
    cfg.np = NoiseParams::standard(1e-3, 0.1);
    cfg.rounds = 6;
    cfg.rng_streams = 2;
    // 2 blocks per stream, trailing block partial: a slot reuses its
    // cached state across full-after-partial and cross-stream blocks.
    cfg.shots = 2 * ExperimentRunner::shot_block(cfg) + 17;
    cfg.seed = 0xFEED5A5Aull;
    cfg.leakage_sampling = true;
    cfg.record_dlp_series = true;
    cfg.compute_ler = true;

    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);
    ExperimentConfig fresh_cfg = cfg;
    fresh_cfg.reuse_worker_state = false;
    const Metrics fresh = run_with_threads(ctx, fresh_cfg, 1, factory);
    EXPECT_EQ(fresh.shots, cfg.shots);
    for (int threads : {1, 8, 16}) {
        SCOPED_TRACE(threads);
        expect_metrics_identical(fresh,
                                 run_with_threads(ctx, cfg, threads, factory));
    }
}

}  // namespace
}  // namespace gld
