// Reproducibility contract (ROADMAP tier-1 gate): the same
// ExperimentConfig::seed must give bit-identical Metrics across repeated
// runs and across thread counts.  ExperimentRunner partitions shots into
// a fixed set of RNG streams and merges them in stream order, so neither
// scheduling nor cross-thread reduction order can leak into the result.

#include <cstring>

#include <gtest/gtest.h>

#include "codes/color_code.h"
#include "codes/hgp_code.h"
#include "codes/surface_code.h"
#include "runtime/experiment.h"

namespace gld {
namespace {

// Bit-exact double comparison: 0.1 + 0.2 style drift must not pass.
void
expect_bits_eq(double a, double b, const char* what)
{
    uint64_t ab, bb;
    std::memcpy(&ab, &a, sizeof(ab));
    std::memcpy(&bb, &b, sizeof(bb));
    EXPECT_EQ(ab, bb) << what << ": " << a << " vs " << b;
}

void
expect_metrics_identical(const Metrics& a, const Metrics& b)
{
    EXPECT_EQ(a.shots, b.shots);
    EXPECT_EQ(a.rounds_per_shot, b.rounds_per_shot);
    expect_bits_eq(a.fn_total, b.fn_total, "fn_total");
    expect_bits_eq(a.fp_total, b.fp_total, "fp_total");
    expect_bits_eq(a.tp_total, b.tp_total, "tp_total");
    expect_bits_eq(a.lrc_data_total, b.lrc_data_total, "lrc_data_total");
    expect_bits_eq(a.lrc_check_total, b.lrc_check_total, "lrc_check_total");
    expect_bits_eq(a.dlp_total, b.dlp_total, "dlp_total");
    expect_bits_eq(a.check_leak_total, b.check_leak_total,
                   "check_leak_total");
    EXPECT_EQ(a.logical_errors, b.logical_errors);
    EXPECT_EQ(a.decoded_shots, b.decoded_shots);
    ASSERT_EQ(a.dlp_series.size(), b.dlp_series.size());
    for (size_t i = 0; i < a.dlp_series.size(); ++i)
        expect_bits_eq(a.dlp_series[i], b.dlp_series[i], "dlp_series[i]");
}

Metrics
run_with_threads(const CodeContext& ctx, ExperimentConfig cfg, int threads,
                 const PolicyFactory& factory)
{
    cfg.threads = threads;
    ExperimentRunner runner(ctx, cfg);
    return runner.run(factory);
}

void
check_code(const CssCode& code, bool compute_ler)
{
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));

    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(1e-3, 0.1);
    cfg.rounds = 10;
    cfg.shots = 30;
    cfg.seed = 0xD00D5EEDull;
    cfg.leakage_sampling = true;
    cfg.record_dlp_series = true;
    cfg.compute_ler = compute_ler;

    const PolicyFactory factory = PolicyZoo::eraser(/*use_mlr=*/true);

    const Metrics base = run_with_threads(ctx, cfg, 1, factory);
    EXPECT_EQ(base.shots, cfg.shots);

    // Repeated single-threaded run: same seed, same bits.
    expect_metrics_identical(base, run_with_threads(ctx, cfg, 1, factory));

    // Thread count must not change the result.
    for (int threads : {2, 4}) {
        SCOPED_TRACE(threads);
        expect_metrics_identical(base,
                                 run_with_threads(ctx, cfg, threads, factory));
    }
}

TEST(Determinism, SurfaceCodeBitIdenticalAcrossThreads)
{
    check_code(SurfaceCode::make(3), /*compute_ler=*/true);
}

TEST(Determinism, ColorCodeBitIdenticalAcrossThreads)
{
    check_code(ColorCode::make(5), /*compute_ler=*/false);
}

TEST(Determinism, HgpCodeBitIdenticalAcrossThreads)
{
    check_code(HgpCode::make_hamming(), /*compute_ler=*/false);
}

// The speculation policies draw from their own seeded RNG streams; make
// sure a stateful table-driven policy is covered too, not just ERASER.
TEST(Determinism, GladiatorSurfaceBitIdenticalAcrossThreads)
{
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));

    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(1e-3, 0.1);
    cfg.rounds = 8;
    cfg.shots = 24;
    cfg.seed = 0xFACEFEEDull;
    cfg.leakage_sampling = true;

    const PolicyFactory factory =
        PolicyZoo::gladiator(/*use_mlr=*/true, cfg.np);
    const Metrics base = run_with_threads(ctx, cfg, 1, factory);
    for (int threads : {2, 4}) {
        SCOPED_TRACE(threads);
        expect_metrics_identical(base,
                                 run_with_threads(ctx, cfg, threads, factory));
    }
}

}  // namespace
}  // namespace gld
