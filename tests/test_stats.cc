// Golden-value unit tests for the src/stats/ statistical-equivalence
// primitives.  Every reference number below was computed independently
// (closed-form, checked against scipy.stats conventions): the pooled
// two-proportion z-test, Wilson score intervals, the normal quantile,
// and the Šidák / Bonferroni family-wise corrections — plus the
// degenerate edges the verify referee actually hits (zero trials,
// all-zero samples, all-one samples, identical samples).

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "stats/stats.h"

namespace gld {
namespace stats {
namespace {

// ---------------------------------------------------------------- CDF.

TEST(NormalCdf, KnownValues)
{
    EXPECT_DOUBLE_EQ(0.5, normal_cdf(0.0));
    EXPECT_NEAR(0.8413447460685429, normal_cdf(1.0), 1e-15);
    EXPECT_NEAR(0.15865525393145707, normal_cdf(-1.0), 1e-15);
    EXPECT_NEAR(0.9772498680518208, normal_cdf(2.0), 1e-15);
    // Far tails stay finite and monotone.
    EXPECT_GT(normal_cdf(-10.0), 0.0);
    EXPECT_LT(normal_cdf(-10.0), 1e-20);
}

TEST(TwoSidedP, MatchesCdfTails)
{
    EXPECT_DOUBLE_EQ(1.0, two_sided_p(0.0));
    // P(|N| >= 1.96) ~= 0.05.
    EXPECT_NEAR(0.04999579029644087, two_sided_p(1.96), 1e-15);
    // Symmetric in the sign of z.
    EXPECT_DOUBLE_EQ(two_sided_p(2.5), two_sided_p(-2.5));
}

// ----------------------------------------------------------- Quantile.

TEST(NormalQuantile, GoldenValues)
{
    // The classic two-sided critical values.
    EXPECT_NEAR(1.9599639845400536, normal_quantile(0.975), 1e-12);
    EXPECT_NEAR(2.5758293035489004, normal_quantile(0.995), 1e-12);
    EXPECT_NEAR(0.0, normal_quantile(0.5), 1e-15);
    EXPECT_NEAR(-1.2815515655446004, normal_quantile(0.1), 1e-12);
}

TEST(NormalQuantile, RoundTripsThroughCdf)
{
    for (double p : {1e-8, 1e-4, 0.01, 0.3, 0.5, 0.7, 0.99, 1 - 1e-6}) {
        const double z = normal_quantile(p);
        EXPECT_NEAR(p, normal_cdf(z), 1e-14 + 1e-12 * p) << "p=" << p;
    }
}

TEST(NormalQuantile, ThrowsOutsideOpenUnitInterval)
{
    EXPECT_THROW(normal_quantile(0.0), std::domain_error);
    EXPECT_THROW(normal_quantile(1.0), std::domain_error);
    EXPECT_THROW(normal_quantile(-0.1), std::domain_error);
    EXPECT_THROW(normal_quantile(1.5), std::domain_error);
}

TEST(ZForTwoSidedAlpha, GoldenValues)
{
    EXPECT_NEAR(1.9599639845400536, z_for_two_sided_alpha(0.05), 1e-12);
    EXPECT_NEAR(2.5758293035489004, z_for_two_sided_alpha(0.01), 1e-12);
    EXPECT_THROW(z_for_two_sided_alpha(0.0), std::domain_error);
    EXPECT_THROW(z_for_two_sided_alpha(1.0), std::domain_error);
}

// ------------------------------------------------- Two-proportion z.

TEST(TwoProportionZ, GoldenValueModerateRates)
{
    // 10/100 vs 20/100: pooled p = 0.15,
    // z = (0.1 - 0.2) / sqrt(0.15 * 0.85 * (1/100 + 1/100)).
    const auto r = two_proportion_z({10, 100}, {20, 100});
    EXPECT_NEAR(-1.9802950859533488, r.z, 1e-12);
    EXPECT_NEAR(0.047670380656161443, r.p_value, 1e-12);
    EXPECT_DOUBLE_EQ(0.10, r.rate1);
    EXPECT_DOUBLE_EQ(0.20, r.rate2);
    EXPECT_FALSE(r.degenerate);
    EXPECT_FALSE(r.identical);
}

TEST(TwoProportionZ, GoldenValueRareRatesUnequalN)
{
    // 5/1000 vs 9/1500 — the LER-like regime.
    const auto r = two_proportion_z({5, 1000}, {9, 1500});
    EXPECT_NEAR(-0.32824721790872829, r.z, 1e-12);
    EXPECT_NEAR(0.74272474906366459, r.p_value, 1e-12);
}

TEST(TwoProportionZ, GoldenValueSmallSamples)
{
    // 1/10 vs 9/10: extreme disagreement on tiny n still resolves.
    const auto r = two_proportion_z({1, 10}, {9, 10});
    EXPECT_NEAR(-3.5777087639996639, r.z, 1e-12);
    EXPECT_NEAR(0.00034661935113466686, r.p_value, 1e-14);
}

TEST(TwoProportionZ, SymmetricUnderSwap)
{
    const auto ab = two_proportion_z({7, 200}, {13, 300});
    const auto ba = two_proportion_z({13, 300}, {7, 200});
    EXPECT_DOUBLE_EQ(ab.z, -ba.z);
    EXPECT_DOUBLE_EQ(ab.p_value, ba.p_value);
}

TEST(TwoProportionZ, ZeroTrialsIsDegenerateNotNan)
{
    for (const auto& r : {two_proportion_z({0, 0}, {5, 100}),
                          two_proportion_z({5, 100}, {0, 0}),
                          two_proportion_z({0, 0}, {0, 0})}) {
        EXPECT_TRUE(r.degenerate);
        EXPECT_DOUBLE_EQ(1.0, r.p_value);
        EXPECT_DOUBLE_EQ(0.0, r.z);
        EXPECT_FALSE(std::isnan(r.p_value));
    }
}

TEST(TwoProportionZ, AllZeroSamplesAreIdentical)
{
    // Pooled rate exactly 0: zero pooled variance, exact agreement.
    const auto r = two_proportion_z({0, 500}, {0, 700});
    EXPECT_TRUE(r.identical);
    EXPECT_FALSE(r.degenerate);
    EXPECT_DOUBLE_EQ(1.0, r.p_value);
    EXPECT_DOUBLE_EQ(0.0, r.z);
}

TEST(TwoProportionZ, AllOneSamplesAreIdentical)
{
    // Pooled rate exactly 1: the p = 1 mirror of the all-zero case.
    const auto r = two_proportion_z({500, 500}, {700, 700});
    EXPECT_TRUE(r.identical);
    EXPECT_DOUBLE_EQ(1.0, r.p_value);
    EXPECT_DOUBLE_EQ(1.0, r.rate1);
    EXPECT_DOUBLE_EQ(1.0, r.rate2);
}

TEST(TwoProportionZ, EqualSamplesGiveZeroZ)
{
    const auto r = two_proportion_z({25, 400}, {25, 400});
    EXPECT_FALSE(r.degenerate);
    EXPECT_FALSE(r.identical);
    EXPECT_DOUBLE_EQ(0.0, r.z);
    EXPECT_DOUBLE_EQ(1.0, r.p_value);
}

// ----------------------------------------------------------- Wilson.

TEST(WilsonInterval, GoldenValueCentral)
{
    // 10/100 at the 95% critical value.
    const auto ci = wilson_interval({10, 100}, 1.9599639845400536);
    EXPECT_NEAR(0.055229137060675101, ci.lo, 1e-12);
    EXPECT_NEAR(0.17436566150491345, ci.hi, 1e-12);
    // Contains the point estimate.
    EXPECT_LT(ci.lo, 0.10);
    EXPECT_GT(ci.hi, 0.10);
}

TEST(WilsonInterval, ZeroEventsPinsLowerBound)
{
    // 0/50 at the 99% critical value: lo exactly 0, informative hi.
    const auto ci = wilson_interval({0, 50}, 2.5758293035489004);
    EXPECT_DOUBLE_EQ(0.0, ci.lo);
    EXPECT_NEAR(0.11715209171762792, ci.hi, 1e-12);
}

TEST(WilsonInterval, AllEventsPinsUpperBound)
{
    const auto ci = wilson_interval({50, 50}, 1.96);
    EXPECT_NEAR(0.92864996582568127, ci.lo, 1e-12);
    EXPECT_DOUBLE_EQ(1.0, ci.hi);
}

TEST(WilsonInterval, ZeroTrialsIsVacuous)
{
    const auto ci = wilson_interval({0, 0}, 1.96);
    EXPECT_DOUBLE_EQ(0.0, ci.lo);
    EXPECT_DOUBLE_EQ(1.0, ci.hi);
}

TEST(WilsonInterval, WiderAtHigherConfidence)
{
    const auto narrow = wilson_interval({30, 200}, 1.96);
    const auto wide = wilson_interval({30, 200}, 2.576);
    EXPECT_LT(wide.lo, narrow.lo);
    EXPECT_GT(wide.hi, narrow.hi);
}

// ------------------------------------------------------ Corrections.

TEST(SidakAlpha, GoldenValues)
{
    // 1 - (1 - 0.05)^(1/10).
    EXPECT_NEAR(0.0051161968918237008, sidak_alpha(0.05, 10), 1e-15);
    EXPECT_NEAR(0.00025122683359019477, sidak_alpha(0.01, 40), 1e-17);
    // m = 1 is the identity.
    EXPECT_DOUBLE_EQ(0.01, sidak_alpha(0.01, 1));
}

TEST(SidakAlpha, NeverLooserThanBonferroniNorTighterThanNeeded)
{
    for (int m : {2, 5, 17, 1000}) {
        const double s = sidak_alpha(0.01, m);
        const double b = bonferroni_alpha(0.01, m);
        EXPECT_GT(s, b) << "m=" << m;      // Šidák is the sharper bound
        EXPECT_LT(s, 0.01) << "m=" << m;   // but still a real correction
        // Family-wise level is exactly restored: 1-(1-s)^m == alpha.
        EXPECT_NEAR(0.01, -std::expm1(static_cast<double>(m) *
                                      std::log1p(-s)),
                    1e-12);
    }
}

TEST(BonferroniAlpha, DividesByM)
{
    EXPECT_DOUBLE_EQ(0.005, bonferroni_alpha(0.05, 10));
    EXPECT_DOUBLE_EQ(0.05, bonferroni_alpha(0.05, 1));
}

TEST(Corrections, RejectBadAlpha)
{
    EXPECT_THROW(sidak_alpha(0.0, 5), std::domain_error);
    EXPECT_THROW(sidak_alpha(1.0, 5), std::domain_error);
    EXPECT_THROW(bonferroni_alpha(-0.01, 5), std::domain_error);
}

}  // namespace
}  // namespace stats
}  // namespace gld
