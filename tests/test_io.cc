// src/io: JSON round-trip, bit-exact double encoding, versioned
// config/metrics serialization and the config-hash stability contract.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "io/json.h"
#include "io/serialize.h"

namespace gld {
namespace io {
namespace {

uint64_t
bits_of(double v)
{
    uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

TEST(Json, ScalarRoundTrip)
{
    EXPECT_EQ(Json::parse("null").type(), Json::Type::kNull);
    EXPECT_TRUE(Json::parse("true").as_bool());
    EXPECT_FALSE(Json::parse("false").as_bool());
    EXPECT_EQ(Json::parse("-42").as_int(), -42);
    EXPECT_EQ(Json::parse("9007199254740993").as_int(), 9007199254740993ll);
    EXPECT_DOUBLE_EQ(Json::parse("0.25").as_double(), 0.25);
    EXPECT_DOUBLE_EQ(Json::parse("-1e-3").as_double(), -1e-3);
    EXPECT_EQ(Json::parse("\"hi\\nthere\"").as_str(), "hi\nthere");
    EXPECT_EQ(Json::parse("\"\\u0041\\u00e9\"").as_str(), "A\xc3\xa9");
}

TEST(Json, NestedDocumentRoundTrip)
{
    const std::string text =
        "{\"a\":[1,2.5,\"x\"],\"b\":{\"c\":true,\"d\":null},\"e\":-7}";
    const Json j = Json::parse(text);
    EXPECT_EQ(j["a"].size(), 3u);
    EXPECT_EQ(j["a"].at(0).as_int(), 1);
    EXPECT_EQ(j["a"].at(2).as_str(), "x");
    EXPECT_TRUE(j["b"]["c"].as_bool());
    EXPECT_TRUE(j["b"]["d"].is_null());
    // Compact dump is canonical: parse(dump(x)) == dump-identical.
    EXPECT_EQ(Json::parse(j.dump()).dump(), j.dump());
    // Pretty dump parses back to the same canonical form.
    EXPECT_EQ(Json::parse(j.dump(2)).dump(), j.dump());
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Json j = Json::object();
    j.set("zebra", Json::integer(1));
    j.set("alpha", Json::integer(2));
    j.set("zebra", Json::integer(3));  // overwrite keeps position
    EXPECT_EQ(j.dump(), "{\"zebra\":3,\"alpha\":2}");
}

TEST(Json, Errors)
{
    EXPECT_THROW(Json::parse(""), std::runtime_error);
    EXPECT_THROW(Json::parse("{\"a\":1,}"), std::runtime_error);
    EXPECT_THROW(Json::parse("[1 2]"), std::runtime_error);
    EXPECT_THROW(Json::parse("{} trailing"), std::runtime_error);
    EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
    const Json j = Json::parse("{\"a\":1}");
    EXPECT_THROW(j["missing"], std::runtime_error);
    EXPECT_THROW(j["a"].as_str(), std::runtime_error);
    EXPECT_THROW(j["a"].as_bool(), std::runtime_error);
    // JSON has no inf/nan: dumping one must throw (not emit a document
    // the parser rejects), and overflowing literals must not parse.
    EXPECT_THROW(Json::number(std::numeric_limits<double>::infinity()).dump(),
                 std::runtime_error);
    EXPECT_THROW(Json::number(std::nan("")).dump(), std::runtime_error);
    EXPECT_THROW(Json::parse("1e999"), std::runtime_error);
}

TEST(Serialize, F64HexIsBitExact)
{
    const double cases[] = {0.0,
                            -0.0,
                            1.0,
                            0.1,
                            1.0 / 3.0,
                            6.02214076e23,
                            -1.5e-300,
                            std::numeric_limits<double>::denorm_min(),
                            std::numeric_limits<double>::min(),
                            std::numeric_limits<double>::max(),
                            std::numeric_limits<double>::infinity(),
                            -std::numeric_limits<double>::infinity(),
                            std::numeric_limits<double>::quiet_NaN()};
    for (double v : cases) {
        const std::string hex = f64_to_hex(v);
        EXPECT_EQ(bits_of(f64_from_hex(hex)), bits_of(v)) << hex;
    }
    // 0.1 + 0.2 != 0.3 must survive the round trip as-is.
    const double drift = 0.1 + 0.2;
    EXPECT_EQ(bits_of(f64_from_hex(f64_to_hex(drift))), bits_of(drift));
    EXPECT_THROW(f64_from_hex("3ff0000000000000"), std::runtime_error);
    EXPECT_THROW(f64_from_hex("0xgg"), std::runtime_error);
    EXPECT_THROW(f64_from_hex("0x00112233445566778899"), std::runtime_error);
}

TEST(Serialize, U64Hex)
{
    EXPECT_EQ(u64_from_hex(u64_to_hex(0ull)), 0ull);
    EXPECT_EQ(u64_from_hex(u64_to_hex(0xFFFFFFFFFFFFFFFFull)),
              0xFFFFFFFFFFFFFFFFull);
    EXPECT_EQ(u64_from_hex("0x5EED5EED"), 0x5EED5EEDull);
}

ExperimentConfig
sample_config()
{
    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(2e-3, 0.05);
    cfg.np.mobility = 0.13;
    cfg.np.leaked_gate_backaction = true;
    cfg.rounds = 17;
    cfg.shots = 421;
    cfg.seed = 0xDEADBEEFCAFEF00Dull;  // needs the full 64 bits
    cfg.leakage_sampling = true;
    cfg.compute_ler = true;
    cfg.record_dlp_series = true;
    cfg.rng_streams = 5;
    cfg.backend = SimBackend::kFrame;
    return cfg;
}

TEST(Serialize, ConfigRoundTrip)
{
    const ExperimentConfig cfg = sample_config();
    const ExperimentConfig back =
        config_from_json(Json::parse(config_to_json(cfg).dump(2)));
    EXPECT_EQ(bits_of(back.np.p), bits_of(cfg.np.p));
    EXPECT_EQ(bits_of(back.np.leak_ratio), bits_of(cfg.np.leak_ratio));
    EXPECT_EQ(bits_of(back.np.mlr_ratio), bits_of(cfg.np.mlr_ratio));
    EXPECT_EQ(bits_of(back.np.mobility), bits_of(cfg.np.mobility));
    EXPECT_EQ(bits_of(back.np.lrc_gate_factor),
              bits_of(cfg.np.lrc_gate_factor));
    EXPECT_EQ(bits_of(back.np.lrc_leak_prob), bits_of(cfg.np.lrc_leak_prob));
    EXPECT_EQ(back.np.leaked_gate_backaction, cfg.np.leaked_gate_backaction);
    EXPECT_EQ(back.rounds, cfg.rounds);
    EXPECT_EQ(back.shots, cfg.shots);
    EXPECT_EQ(back.seed, cfg.seed);
    EXPECT_EQ(back.leakage_sampling, cfg.leakage_sampling);
    EXPECT_EQ(back.compute_ler, cfg.compute_ler);
    EXPECT_EQ(back.record_dlp_series, cfg.record_dlp_series);
    EXPECT_EQ(back.rng_streams, cfg.rng_streams);
    EXPECT_EQ(back.backend, cfg.backend);

    // Non-default backend round-trips too.
    ExperimentConfig tab = cfg;
    tab.backend = SimBackend::kTableau;
    EXPECT_EQ(config_from_json(Json::parse(config_to_json(tab).dump()))
                  .backend,
              SimBackend::kTableau);
}

TEST(Serialize, Version1ConfigMigratesToFrameBackend)
{
    // A version-1 document (no "backend" field) must still load — as the
    // frame backend it was produced by — while its HASH context (v2 + the
    // backend field) intentionally differs, so version-1 checkpoints are
    // refused by the hash check instead of silently resumed.
    Json j = config_to_json(sample_config());
    j.set("gld_version", Json::integer(1));
    ASSERT_TRUE(j.has("backend"));
    Json v1 = Json::object();  // rebuild without the backend key
    v1.set("gld_version", Json::integer(1));
    for (const char* key :
         {"noise", "rounds", "shots", "seed", "leakage_sampling",
          "compute_ler", "record_dlp_series", "rng_streams"})
        v1.set(key, j[key]);
    const ExperimentConfig back = config_from_json(v1);
    EXPECT_EQ(back.backend, SimBackend::kFrame);
    EXPECT_EQ(back.shots, sample_config().shots);
}

TEST(Serialize, ConfigHashStability)
{
    const ExperimentConfig cfg = sample_config();
    // Stable across processes and time: a golden value, not just
    // self-consistency.  If this changes, bump kSerializeVersion — every
    // existing checkpoint file becomes stale.  (v2: the serialized form
    // gained the backend field, which retired the v1 golden.  v3: the
    // shared LeakageDriver changed the frame backend's draw sequence, so
    // the version bump retired every v2 checkpoint — and the v2 golden.
    // v4: per-shot driver RNG streams + the 64-shot scheduler block for
    // the batch backend retired every v3 checkpoint and golden.)
    EXPECT_EQ(config_hash(cfg), 0xe5ead93444415e27ull);

    // Round-tripping must not change the hash (resume depends on it).
    const ExperimentConfig back =
        config_from_json(Json::parse(config_to_json(cfg).dump()));
    EXPECT_EQ(config_hash(back), config_hash(cfg));

    // threads must NOT affect the hash (does not affect results)...
    ExperimentConfig t = cfg;
    t.threads = 64;
    EXPECT_EQ(config_hash(t), config_hash(cfg));
    // ...but every result-affecting knob must.
    ExperimentConfig c1 = cfg;
    c1.seed ^= 1;
    EXPECT_NE(config_hash(c1), config_hash(cfg));
    ExperimentConfig c2 = cfg;
    c2.rng_streams = 6;
    EXPECT_NE(config_hash(c2), config_hash(cfg));
    ExperimentConfig c3 = cfg;
    c3.np.p = 2.0000000001e-3;
    EXPECT_NE(config_hash(c3), config_hash(cfg));
    // The backend changes the results, so it must change the hash
    // (switching backends never resumes the other backend's checkpoints).
    ExperimentConfig c4 = cfg;
    c4.backend = SimBackend::kTableau;
    EXPECT_EQ(config_hash(c4), 0x4f1b42be14c1783cull);
    EXPECT_NE(config_hash(c4), config_hash(cfg));
    // batch_frame is a distinct backend hash-wise too, even though its
    // results are bit-identical to frame: resume stays backend-honest.
    ExperimentConfig c5 = cfg;
    c5.backend = SimBackend::kBatchFrame;
    EXPECT_NE(config_hash(c5), config_hash(cfg));
    EXPECT_NE(config_hash(c5), config_hash(c4));
    // noise_sampling is hashed ONLY when != lockstep: the default leaves
    // every pre-existing document and hash byte-identical (no version
    // bump), while sparse — which redraws the batch backends' randomness
    // — gets its own hash and round-trips.
    ExperimentConfig c6 = cfg;
    c6.noise_sampling = NoiseSampling::kLockstep;
    EXPECT_EQ(config_hash(c6), config_hash(cfg));
    EXPECT_FALSE(config_to_json(c6).has("noise_sampling"));
    c6.noise_sampling = NoiseSampling::kSparse;
    EXPECT_NE(config_hash(c6), config_hash(cfg));
    EXPECT_EQ(config_from_json(Json::parse(config_to_json(c6).dump()))
                  .noise_sampling,
              NoiseSampling::kSparse);
}

TEST(Serialize, MetricsRoundTripIsBitExact)
{
    Metrics m;
    m.shots = 1234;
    m.rounds_per_shot = 56;
    m.fn_total = 0.1 + 0.2;  // classic non-representable sum
    m.fp_total = 1.0 / 3.0;
    m.tp_total = 6.02214076e23;
    m.lrc_data_total = 1e-320;  // subnormal
    m.lrc_check_total = -0.0;
    m.dlp_series = {0.0, 0.1, 0.30000000000000004, 2.5e-17};
    m.dlp_total = 3.14159265358979312;
    m.check_leak_total = 0.7071067811865476;
    m.logical_errors = 9;
    m.decoded_shots = 1000;

    const Metrics back =
        metrics_from_json(Json::parse(metrics_to_json(m).dump(2)));
    EXPECT_EQ(back.shots, m.shots);
    EXPECT_EQ(back.rounds_per_shot, m.rounds_per_shot);
    EXPECT_EQ(bits_of(back.fn_total), bits_of(m.fn_total));
    EXPECT_EQ(bits_of(back.fp_total), bits_of(m.fp_total));
    EXPECT_EQ(bits_of(back.tp_total), bits_of(m.tp_total));
    EXPECT_EQ(bits_of(back.lrc_data_total), bits_of(m.lrc_data_total));
    EXPECT_EQ(bits_of(back.lrc_check_total), bits_of(m.lrc_check_total));
    EXPECT_EQ(bits_of(back.dlp_total), bits_of(m.dlp_total));
    EXPECT_EQ(bits_of(back.check_leak_total), bits_of(m.check_leak_total));
    EXPECT_EQ(back.logical_errors, m.logical_errors);
    EXPECT_EQ(back.decoded_shots, m.decoded_shots);
    ASSERT_EQ(back.dlp_series.size(), m.dlp_series.size());
    for (size_t i = 0; i < m.dlp_series.size(); ++i)
        EXPECT_EQ(bits_of(back.dlp_series[i]), bits_of(m.dlp_series[i]));
}

TEST(Serialize, VersionIsChecked)
{
    Json j = metrics_to_json(Metrics{});
    j.set("gld_version", Json::integer(999));
    EXPECT_THROW(metrics_from_json(j), std::runtime_error);
    Json c = config_to_json(ExperimentConfig{});
    c.set("gld_version", Json::integer(0));
    EXPECT_THROW(config_from_json(c), std::runtime_error);
}

TEST(IoFiles, AtomicWriteReadBack)
{
    const std::string dir = ::testing::TempDir() + "gld_io_test";
    make_dirs(dir + "/nested/deeper");
    const std::string path = dir + "/nested/deeper/x.json";
    std::remove(path.c_str());  // TempDir persists across test runs
    EXPECT_FALSE(file_exists(path));
    write_file_atomic(path, "{\"k\":1}\n");
    EXPECT_TRUE(file_exists(path));
    EXPECT_EQ(read_file(path), "{\"k\":1}\n");
    write_file_atomic(path, "2");  // overwrite is atomic too
    EXPECT_EQ(read_file(path), "2");
    EXPECT_FALSE(file_exists(path + ".tmp"));
    EXPECT_THROW(read_file(dir + "/absent"), std::runtime_error);
}

}  // namespace
}  // namespace io
}  // namespace gld
