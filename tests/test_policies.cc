#include <gtest/gtest.h>

#include "codes/color_code.h"
#include "codes/surface_code.h"
#include "core/policy_eraser.h"
#include "core/policy_gladiator.h"
#include "core/policy_static.h"
#include "runtime/experiment.h"
#include "sim/frame_sim.h"

namespace gld {
namespace {

struct Harness {
    CssCode code;
    RoundCircuit rc;
    CodeContext ctx;

    explicit Harness(CssCode c, PatternScope scope)
        : code(std::move(c)), rc(code), ctx(code, rc, scope)
    {
    }
};

RoundResult
quiet_round(const CssCode& code)
{
    RoundResult rr;
    rr.meas_flip.assign(code.n_checks(), 0);
    rr.detector.assign(code.n_checks(), 0);
    rr.mlr_flag.assign(code.n_checks(), 0);
    return rr;
}

TEST(EraserPolicy, FlaggedCountsMatchPaper)
{
    EXPECT_EQ(EraserPolicy::flagged_count(4), 11);  // §1: 11/16
    EXPECT_EQ(EraserPolicy::flagged_count(3), 4);   // §5.2: 4/8
    EXPECT_EQ(EraserPolicy::flagged_count(2), 3);   // any flip fires
    EXPECT_EQ(EraserPolicy::flagged_count(8), 163);  // sum C(8,4..8)
}

TEST(EraserPolicy, TriggersOnHalfFlips)
{
    Harness h(SurfaceCode::make(5), PatternScope::kBothTypes);
    EraserPolicy policy(h.ctx, false);
    RoundResult rr = quiet_round(h.code);
    const int q = SurfaceCode::data_index(5, 2, 2);
    const auto& checks = h.ctx.observed_checks(q);
    ASSERT_EQ(checks.size(), 4u);
    rr.detector[checks[0]] = 1;
    rr.detector[checks[3]] = 1;  // 2/4 flips: at threshold
    LrcSchedule out;
    policy.observe(0, rr, &out);
    EXPECT_NE(std::find(out.data_qubits.begin(), out.data_qubits.end(), q),
              out.data_qubits.end());
    EXPECT_TRUE(out.checks.empty());  // no MLR
}

TEST(EraserPolicy, SingleFlipDoesNotTriggerBulk)
{
    Harness h(SurfaceCode::make(5), PatternScope::kBothTypes);
    EraserPolicy policy(h.ctx, false);
    RoundResult rr = quiet_round(h.code);
    const int q = SurfaceCode::data_index(5, 2, 2);
    rr.detector[h.ctx.observed_checks(q)[1]] = 1;
    LrcSchedule out;
    policy.observe(0, rr, &out);
    EXPECT_EQ(std::find(out.data_qubits.begin(), out.data_qubits.end(), q),
              out.data_qubits.end());
}

TEST(EraserPolicy, DegeneratesOnColorCodeCorners)
{
    // §3.3: on 1-2 bit patterns ERASER fires on any flip — nearly
    // Always-LRC behaviour.
    Harness h(ColorCode::make(5), PatternScope::kZOnly);
    EraserPolicy policy(h.ctx, false);
    RoundResult rr = quiet_round(h.code);
    int corner = -1;
    for (int q = 0; q < h.code.n_data(); ++q) {
        if (h.ctx.degree_of(q) == 1)
            corner = q;
    }
    ASSERT_GE(corner, 0);
    rr.detector[h.ctx.observed_checks(corner)[0]] = 1;
    LrcSchedule out;
    policy.observe(0, rr, &out);
    EXPECT_NE(std::find(out.data_qubits.begin(), out.data_qubits.end(),
                        corner),
              out.data_qubits.end());
}

TEST(EraserPolicy, MlrVariantSchedulesAncillas)
{
    Harness h(SurfaceCode::make(3), PatternScope::kBothTypes);
    EraserPolicy policy(h.ctx, true);
    RoundResult rr = quiet_round(h.code);
    rr.mlr_flag[3] = 1;
    LrcSchedule out;
    policy.observe(0, rr, &out);
    ASSERT_EQ(out.checks.size(), 1u);
    EXPECT_EQ(out.checks[0], 3);
}

TEST(GladiatorPolicy, MatchesTableLookup)
{
    Harness h(SurfaceCode::make(5), PatternScope::kBothTypes);
    const NoiseParams np = NoiseParams::standard();
    auto tables = std::make_shared<const PatternTableSet>(
        PatternTableSet::build(h.ctx, np, {}, false));
    GladiatorPolicy policy(h.ctx, tables, false);

    // Construct a detector vector and verify per-qubit agreement.
    RoundResult rr = quiet_round(h.code);
    for (int c = 0; c < h.code.n_checks(); c += 3)
        rr.detector[c] = 1;
    LrcSchedule out;
    policy.observe(0, rr, &out);
    for (int q = 0; q < h.code.n_data(); ++q) {
        const bool scheduled =
            std::find(out.data_qubits.begin(), out.data_qubits.end(), q) !=
            out.data_qubits.end();
        const bool expected = tables->is_leak(
            h.ctx.class_of(q), h.ctx.pattern_of(q, rr.detector));
        EXPECT_EQ(scheduled, expected) << "qubit " << q;
    }
}

TEST(GladiatorPolicy, QuietSyndromeSchedulesNothing)
{
    Harness h(SurfaceCode::make(5), PatternScope::kBothTypes);
    auto tables = std::make_shared<const PatternTableSet>(
        PatternTableSet::build(h.ctx, NoiseParams::standard(), {}, false));
    GladiatorPolicy policy(h.ctx, tables, true);
    LrcSchedule out;
    policy.observe(0, quiet_round(h.code), &out);
    EXPECT_TRUE(out.empty());
}

TEST(GladiatorDPolicy, NeedsTwoRoundsBeforeFiring)
{
    Harness h(SurfaceCode::make(5), PatternScope::kBothTypes);
    auto tables = std::make_shared<const PatternTableSet>(
        PatternTableSet::build(h.ctx, NoiseParams::standard(), {}, true));
    GladiatorDPolicy policy(h.ctx, tables, false);
    policy.begin_shot();
    // Find a two-round-flagged key for the bulk class to construct input.
    const int q = SurfaceCode::data_index(5, 2, 2);
    const int cls = h.ctx.class_of(q);
    const int k = h.ctx.degree_of(q);
    uint32_t key = 0;
    for (uint32_t s = 0; s < (1u << (2 * k)); ++s) {
        if (tables->is_leak(cls, s) && (s >> k) != 0 &&
            (s & ((1u << k) - 1)) != 0) {
            key = s;
            break;
        }
    }
    ASSERT_NE(key, 0u);
    const uint32_t s1 = key >> k, s2 = key & ((1u << k) - 1);

    RoundResult rr = quiet_round(h.code);
    const auto& checks = h.ctx.observed_checks(q);
    for (int i = 0; i < k; ++i)
        rr.detector[checks[i]] = (s1 >> i) & 1;
    LrcSchedule out;
    policy.observe(0, rr, &out);
    EXPECT_TRUE(out.data_qubits.empty());  // first round: only history

    for (int i = 0; i < k; ++i)
        rr.detector[checks[i]] = (s2 >> i) & 1;
    policy.observe(1, rr, &out);
    EXPECT_NE(std::find(out.data_qubits.begin(), out.data_qubits.end(), q),
              out.data_qubits.end());
}

TEST(StaggeredPolicy, ColoringIsProperAndCoversAllQubits)
{
    Harness h(SurfaceCode::make(5), PatternScope::kBothTypes);
    StaggeredLrcPolicy policy(h.ctx);
    EXPECT_GE(policy.n_colors(), 2);
    // No two qubits sharing a check share a color.
    for (int c = 0; c < h.code.n_checks(); ++c) {
        const auto& sup = h.code.check(c).support;
        const int anc = h.code.ancilla_of(c);
        for (size_t i = 0; i < sup.size(); ++i) {
            EXPECT_NE(policy.colors()[sup[i]], policy.colors()[anc]);
            for (size_t j = i + 1; j < sup.size(); ++j)
                EXPECT_NE(policy.colors()[sup[i]], policy.colors()[sup[j]]);
        }
    }
    // Round-robin covers every qubit within n_colors rounds.
    std::vector<int> covered(h.code.n_qubits(), 0);
    LrcSchedule out;
    const RoundResult rr = quiet_round(h.code);
    for (int r = 0; r < policy.n_colors(); ++r) {
        policy.observe(r, rr, &out);
        for (int q : out.data_qubits)
            covered[q] += 1;
        for (int c : out.checks)
            covered[h.code.ancilla_of(c)] += 1;
    }
    for (int q = 0; q < h.code.n_qubits(); ++q)
        EXPECT_EQ(covered[q], 1) << "qubit " << q;
}

TEST(AlwaysLrcPolicy, SchedulesEverything)
{
    Harness h(SurfaceCode::make(3), PatternScope::kBothTypes);
    AlwaysLrcPolicy policy(h.ctx);
    LrcSchedule out;
    policy.observe(0, quiet_round(h.code), &out);
    EXPECT_EQ(static_cast<int>(out.data_qubits.size()), h.code.n_data());
    EXPECT_EQ(static_cast<int>(out.checks.size()), h.code.n_checks());
}

TEST(IdealPolicy, SchedulesExactlyGroundTruth)
{
    Harness h(SurfaceCode::make(3), PatternScope::kBothTypes);
    NoiseParams np;
    np.p = 0;
    np.leak_ratio = 0;
    LeakFrameSim sim(h.code, h.rc, np, 3);
    sim.inject_data_leak(2);
    sim.inject_check_leak(1);
    IdealPolicy policy(h.ctx);
    policy.set_oracle(&sim);
    LrcSchedule out;
    policy.observe(0, quiet_round(h.code), &out);
    ASSERT_EQ(out.data_qubits.size(), 1u);
    EXPECT_EQ(out.data_qubits[0], 2);
    ASSERT_EQ(out.checks.size(), 1u);
    EXPECT_EQ(out.checks[0], 1);
}

TEST(MlrOnlyPolicy, SchedulesOnlyFlaggedAncillas)
{
    Harness h(SurfaceCode::make(3), PatternScope::kBothTypes);
    MlrOnlyPolicy policy(h.ctx);
    RoundResult rr = quiet_round(h.code);
    rr.mlr_flag[5] = 1;
    rr.detector[0] = 1;  // syndrome activity must be ignored
    LrcSchedule out;
    policy.observe(0, rr, &out);
    EXPECT_TRUE(out.data_qubits.empty());
    ASSERT_EQ(out.checks.size(), 1u);
    EXPECT_EQ(out.checks[0], 5);
}

TEST(GladiatorFactory, SharesOneTableSetPerContext)
{
    // ROADMAP satellite: every policy a factory builds for the same
    // context shares ONE immutable PatternTableSet (one offline build per
    // run(), not one per RNG stream) — while different codes through the
    // same factory still get their own tables.
    const NoiseParams np = NoiseParams::standard(1e-3, 0.1);
    const PolicyFactory factory = PolicyZoo::gladiator(true, np);

    const CssCode surf = SurfaceCode::make(3);
    const RoundCircuit surf_rc(surf);
    const CodeContext surf_ctx(surf, surf_rc,
                               CodeContext::default_scope(surf));
    const auto p1 = factory(surf_ctx, 1);
    const auto p2 = factory(surf_ctx, 2);
    const auto* g1 = dynamic_cast<const GladiatorPolicy*>(p1.get());
    const auto* g2 = dynamic_cast<const GladiatorPolicy*>(p2.get());
    ASSERT_NE(g1, nullptr);
    ASSERT_NE(g2, nullptr);
    EXPECT_EQ(g1->tables().get(), g2->tables().get());

    const CssCode color = ColorCode::make(3);
    const RoundCircuit color_rc(color);
    const CodeContext color_ctx(color, color_rc,
                                CodeContext::default_scope(color));
    const auto p3 = factory(color_ctx, 3);
    const auto* g3 = dynamic_cast<const GladiatorPolicy*>(p3.get());
    ASSERT_NE(g3, nullptr);
    EXPECT_NE(g3->tables().get(), g1->tables().get());

    // A RECREATED context with the same class structure may share the
    // cached tables: they are identical by construction.
    const CodeContext surf_ctx2(surf, surf_rc,
                                CodeContext::default_scope(surf));
    const auto p4 = factory(surf_ctx2, 4);
    const auto* g4 = dynamic_cast<const GladiatorPolicy*>(p4.get());
    ASSERT_NE(g4, nullptr);
    EXPECT_EQ(g4->tables().get(), g1->tables().get());

    // Each factory instance has its own cache (np may differ).
    const PolicyFactory other = PolicyZoo::gladiator(true, np);
    const auto p5 = other(surf_ctx, 5);
    const auto* g5 = dynamic_cast<const GladiatorPolicy*>(p5.get());
    ASSERT_NE(g5, nullptr);
    EXPECT_NE(g5->tables().get(), g1->tables().get());
}

}  // namespace
}  // namespace gld
