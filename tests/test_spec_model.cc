#include "core/spec_model.h"

#include <gtest/gtest.h>

#include "circuit/round_circuit.h"
#include "codes/color_code.h"
#include "codes/surface_code.h"
#include "core/policy_eraser.h"

namespace gld {
namespace {

PatternClass
bulk_class(const CodeContext& ctx)
{
    // The class with the widest observed pattern (bulk data qubits).
    int best = 0;
    for (int i = 0; i < ctx.n_classes(); ++i) {
        if (ctx.classes()[i].k_obs > ctx.classes()[best].k_obs)
            best = i;
    }
    return ctx.classes()[best];
}

int
count_flags(const std::vector<uint8_t>& flags)
{
    int n = 0;
    for (uint8_t f : flags)
        n += f;
    return n;
}

TEST(SpecModel, WeightsArePositiveAndZeroNodeNeverFlagged)
{
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, PatternScope::kBothTypes);
    const PatternClass cls = bulk_class(ctx);
    ASSERT_EQ(cls.k_obs, 4);
    const NoiseParams np = NoiseParams::standard();
    const PatternWeights w = SpecModel::single_round(cls, np, {});
    EXPECT_EQ(w.bits, 4);
    for (uint32_t s = 0; s < 16; ++s)
        EXPECT_GT(w.w_leak[s], 0.0);  // persistent leakage reaches all
    const auto flags = SpecModel::label(w, 1.0);
    EXPECT_EQ(flags[0], 0);
}

TEST(SpecModel, SurfaceBulkFlagsFewerThanEraser)
{
    // Paper §4.3: ERASER flags 11/16 4-bit patterns; GLADIATOR 7-8/16
    // (6/16 under our type-aware propagation — see DESIGN.md).
    const CssCode code = SurfaceCode::make(7);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, PatternScope::kBothTypes);
    const NoiseParams np = NoiseParams::standard();
    const PatternWeights w =
        SpecModel::single_round(bulk_class(ctx), np, {});
    const int flagged = count_flags(SpecModel::label(w, 1.0));
    EXPECT_EQ(EraserPolicy::flagged_count(4), 11);
    EXPECT_GE(flagged, 4);
    EXPECT_LE(flagged, 9);
    EXPECT_LT(flagged, EraserPolicy::flagged_count(4));
}

TEST(SpecModel, WeightOnePatternsAreNotFlagged)
{
    // Single-bit flips are overwhelmingly measurement/gate noise.
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, PatternScope::kBothTypes);
    const NoiseParams np = NoiseParams::standard();
    const PatternWeights w =
        SpecModel::single_round(bulk_class(ctx), np, {});
    const auto flags = SpecModel::label(w, 1.0);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(flags[1u << i], 0) << "bit " << i;
}

TEST(SpecModel, FullPatternNotFlagged)
{
    // 1111 is the first-order signature of a round-start Y error.
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, PatternScope::kBothTypes);
    const PatternWeights w = SpecModel::single_round(
        bulk_class(ctx), NoiseParams::standard(), {});
    EXPECT_EQ(SpecModel::label(w, 1.0)[0b1111], 0);
}

TEST(SpecModel, ThresholdMonotonicity)
{
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, PatternScope::kBothTypes);
    const PatternWeights w = SpecModel::single_round(
        bulk_class(ctx), NoiseParams::standard(), {});
    int prev = 17;
    for (double theta : {0.1, 0.5, 1.0, 2.0, 10.0}) {
        const int flagged = count_flags(SpecModel::label(w, theta));
        EXPECT_LE(flagged, prev);
        prev = flagged;
    }
}

TEST(SpecModel, HigherLeakRatioFlagsMorePatterns)
{
    // Adaptability (paper §4.3): weights recalibrate with the error
    // profile; more leakage-dominated devices flag more patterns.
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, PatternScope::kBothTypes);
    const PatternClass cls = bulk_class(ctx);
    int prev = 0;
    for (double lr : {0.01, 0.1, 1.0, 10.0}) {
        const PatternWeights w =
            SpecModel::single_round(cls, NoiseParams::standard(1e-3, lr), {});
        const int flagged = count_flags(SpecModel::label(w, 1.0));
        EXPECT_GE(flagged, prev) << "lr " << lr;
        prev = flagged;
    }
}

TEST(SpecModel, ColorCodeThreeBitClassFlagsAtMostEraser)
{
    // Paper §5.2: out of all 3-bit patterns ERASER flags 4/8, GLADIATOR 3.
    const CssCode code = ColorCode::make(5);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, PatternScope::kZOnly);
    const PatternClass cls = bulk_class(ctx);
    ASSERT_EQ(cls.k_obs, 3);
    const PatternWeights w =
        SpecModel::single_round(cls, NoiseParams::standard(), {});
    const int flagged = count_flags(SpecModel::label(w, 1.0));
    EXPECT_EQ(EraserPolicy::flagged_count(3), 4);
    EXPECT_LE(flagged, 4);
    EXPECT_GE(flagged, 1);
}

TEST(SpecModel, TwoRoundDeferralConcentratesNoiseMassOutsideFlags)
{
    // Paper §5.2: deferring by one round cuts false positives.  The
    // model-level statement: the fraction of the total NON-LEAKAGE
    // probability mass that lands on flagged keys (the expected FP rate)
    // must shrink under the two-round window, even though the flagged
    // KEY COUNT can grow (higher sensitivity to still-random leakage).
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, PatternScope::kBothTypes);
    const PatternClass cls = bulk_class(ctx);
    const NoiseParams np = NoiseParams::standard();
    const SpecModelOptions opt;
    const PatternWeights w1 = SpecModel::single_round(cls, np, opt);
    const PatternWeights w2 = SpecModel::two_round(cls, np, opt);
    EXPECT_EQ(w2.bits, 8);

    auto fp_mass = [&](const PatternWeights& w) {
        const auto flags = SpecModel::label(w, opt.threshold);
        double flagged = 0, total = 0;
        for (size_t s = 1; s < flags.size(); ++s) {
            total += w.w_nonleak[s];
            if (flags[s])
                flagged += w.w_nonleak[s];
        }
        return flagged / total;
    };
    const double fp1 = fp_mass(w1);
    const double fp2 = fp_mass(w2);
    EXPECT_LT(fp2, fp1);
    // The flagged noise mass is a small minority in both tables.
    EXPECT_LT(fp1, 0.35);
    EXPECT_LT(fp2, 0.15);

    // Sensitivity: a still-leaked qubit produces uniform keys, so the
    // two-round hit rate is the flagged fraction — it must not collapse.
    const double sens2 =
        static_cast<double>(count_flags(SpecModel::label(w2, opt.threshold))) /
        256.0;
    EXPECT_GT(sens2, 0.3);
}

TEST(SpecModel, TwoRoundStaticPauliSignatureIsNotFlagged)
{
    // An X error between rounds shows (onset, complement); e.g. the full
    // onset (1111 in round r, 0000 in round r+1) is a Pauli signature.
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, PatternScope::kBothTypes);
    const PatternClass cls = bulk_class(ctx);
    const NoiseParams np = NoiseParams::standard();
    const PatternWeights w = SpecModel::two_round(cls, np, {});
    const auto flags = SpecModel::label(w, 1.0);
    // Round-start Y error in round r: s1 = 1111, s2 = 0000.
    EXPECT_EQ(flags[(0b1111u << 4) | 0b0000u], 0);
    // Single measurement flip: (e_i, e_i).
    EXPECT_EQ(flags[(0b0001u << 4) | 0b0001u], 0);
}

TEST(SpecModel, SecondOrderCutoffChangesLabels)
{
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, PatternScope::kBothTypes);
    const PatternClass cls = bulk_class(ctx);
    const NoiseParams np = NoiseParams::standard();
    SpecModelOptions first_only;
    first_only.max_order = 1;
    const int f1 = count_flags(
        SpecModel::label(SpecModel::single_round(cls, np, first_only), 1.0));
    const int f2 = count_flags(
        SpecModel::label(SpecModel::single_round(cls, np, {}), 1.0));
    // Dropping second-order competition can only flag more (or equal).
    EXPECT_GE(f1, f2);
}

TEST(SpecModel, PriorTailsReduceFlaggedSet)
{
    const CssCode code = SurfaceCode::make(5);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, PatternScope::kBothTypes);
    const PatternClass cls = bulk_class(ctx);
    const NoiseParams np = NoiseParams::standard();
    SpecModelOptions with_tails;
    with_tails.include_prior_tails = true;
    const int f_base = count_flags(
        SpecModel::label(SpecModel::single_round(cls, np, {}), 1.0));
    const int f_tails = count_flags(SpecModel::label(
        SpecModel::single_round(cls, np, with_tails), 1.0));
    EXPECT_LE(f_tails, f_base);
}

}  // namespace
}  // namespace gld
