#include "runtime/metrics.h"

#include <gtest/gtest.h>

namespace gld {
namespace {

TEST(Metrics, MergeAccumulates)
{
    Metrics a, b;
    a.shots = 2;
    a.rounds_per_shot = 10;
    a.fn_total = 3;
    a.fp_total = 1;
    a.lrc_data_total = 4;
    a.dlp_total = 0.5;
    a.dlp_series = {0.1, 0.2};
    a.logical_errors = 1;
    a.decoded_shots = 2;
    b.shots = 3;
    b.rounds_per_shot = 10;
    b.fn_total = 2;
    b.dlp_series = {0.3, 0.1};
    a.merge(b);
    EXPECT_EQ(a.shots, 5);
    EXPECT_DOUBLE_EQ(a.fn_total, 5.0);
    EXPECT_DOUBLE_EQ(a.dlp_series[0], 0.4);
    EXPECT_DOUBLE_EQ(a.ler(), 0.5);
}

TEST(Metrics, NormalizedAccessors)
{
    Metrics m;
    m.shots = 4;
    m.rounds_per_shot = 5;
    m.fn_total = 20;
    m.fp_total = 10;
    m.lrc_data_total = 40;
    m.lrc_check_total = 20;
    m.dlp_total = 2.0;
    EXPECT_DOUBLE_EQ(m.fn_per_shot(), 5.0);
    EXPECT_DOUBLE_EQ(m.fn_per_round(), 1.0);
    EXPECT_DOUBLE_EQ(m.fp_per_round(), 0.5);
    EXPECT_DOUBLE_EQ(m.lrc_data_per_round(), 2.0);
    EXPECT_DOUBLE_EQ(m.lrc_all_per_round(), 3.0);
    EXPECT_DOUBLE_EQ(m.dlp_mean(), 0.1);
    EXPECT_DOUBLE_EQ(m.spec_inaccuracy(), 1.5);
}

TEST(Metrics, EquilibriumUsesTail)
{
    Metrics m;
    m.shots = 1;
    m.rounds_per_shot = 10;
    m.dlp_series = {9, 9, 9, 9, 9, 9, 9, 9, 1, 3};
    // Last 20% of 10 rounds = rounds 8, 9 -> mean 2.
    EXPECT_DOUBLE_EQ(m.dlp_equilibrium(0.2), 2.0);
    EXPECT_DOUBLE_EQ(m.dlp_equilibrium(0.1), 3.0);
}

TEST(Metrics, EmptySafe)
{
    Metrics m;
    EXPECT_DOUBLE_EQ(m.ler(), 0.0);
    EXPECT_DOUBLE_EQ(m.dlp_equilibrium(), 0.0);
    EXPECT_TRUE(m.dlp_curve().empty());
}

}  // namespace
}  // namespace gld
