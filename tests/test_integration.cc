// End-to-end integration sweep: every code family x every policy runs a
// short memory experiment and produces sane metrics.

#include <gtest/gtest.h>

#include "codes/bpc_code.h"
#include "codes/color_code.h"
#include "codes/hgp_code.h"
#include "codes/surface_code.h"
#include "runtime/experiment.h"

namespace gld {
namespace {

struct Combo {
    const char* code;
    const char* policy;
};

class CodePolicyMatrix : public ::testing::TestWithParam<Combo> {};

TEST_P(CodePolicyMatrix, RunsAndProducesSaneMetrics)
{
    const Combo combo = GetParam();
    CssCode code = [&]() {
        const std::string name = combo.code;
        if (name == "surface")
            return SurfaceCode::make(3);
        if (name == "color")
            return ColorCode::make(3);
        if (name == "hgp")
            return HgpCode::make_hamming();
        return BpcCode::make_default();
    }();
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, CodeContext::default_scope(code));

    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(1e-3, 1.0);
    cfg.rounds = 15;
    cfg.shots = 25;
    cfg.leakage_sampling = true;
    cfg.record_dlp_series = true;
    ExperimentRunner runner(ctx, cfg);

    PolicyFactory factory = [&]() -> PolicyFactory {
        const std::string p = combo.policy;
        if (p == "no_lrc")
            return PolicyZoo::no_lrc();
        if (p == "always")
            return PolicyZoo::always_lrc();
        if (p == "staggered")
            return PolicyZoo::staggered();
        if (p == "mlr")
            return PolicyZoo::mlr_only();
        if (p == "ideal")
            return PolicyZoo::ideal();
        if (p == "eraser")
            return PolicyZoo::eraser(true);
        if (p == "gladiator")
            return PolicyZoo::gladiator(true, cfg.np);
        return PolicyZoo::gladiator_d(true, cfg.np);
    }();

    const Metrics m = runner.run(factory);
    EXPECT_EQ(m.shots, cfg.shots);
    EXPECT_GE(m.dlp_mean(), 0.0);
    EXPECT_LE(m.dlp_mean(), 1.0);
    EXPECT_GE(m.fn_total, 0.0);
    EXPECT_GE(m.fp_total, 0.0);
    // LRC counts are consistent: every data LRC is a TP or FP.
    EXPECT_NEAR(m.lrc_data_total, m.tp_total + m.fp_total, 1e-9);
}

constexpr Combo kCombos[] = {
    {"surface", "no_lrc"},   {"surface", "always"},
    {"surface", "staggered"}, {"surface", "mlr"},
    {"surface", "ideal"},    {"surface", "eraser"},
    {"surface", "gladiator"}, {"surface", "gladiator_d"},
    {"color", "no_lrc"},     {"color", "always"},
    {"color", "staggered"},  {"color", "mlr"},
    {"color", "ideal"},      {"color", "eraser"},
    {"color", "gladiator"},  {"color", "gladiator_d"},
    {"hgp", "eraser"},       {"hgp", "gladiator"},
    {"hgp", "ideal"},        {"hgp", "staggered"},
    {"bpc", "eraser"},       {"bpc", "gladiator"},
    {"bpc", "gladiator_d"},  {"bpc", "always"},
};

INSTANTIATE_TEST_SUITE_P(
    AllCombos, CodePolicyMatrix, ::testing::ValuesIn(kCombos),
    // Named `pinfo`: gtest's macro expansion has its own `info` parameter
    // which a lambda parameter named `info` would shadow (-Wshadow).
    [](const ::testing::TestParamInfo<Combo>& pinfo) {
        return std::string(pinfo.param.code) + "_" + pinfo.param.policy;
    });

TEST(Integration, MitigationBeatsNoMitigationOnLeakage)
{
    // Long-horizon sanity: any mitigation keeps DLP below NO-LRC.
    const CssCode code = SurfaceCode::make(3);
    const RoundCircuit rc(code);
    const CodeContext ctx(code, rc, PatternScope::kBothTypes);
    ExperimentConfig cfg;
    cfg.np = NoiseParams::standard(1e-3, 1.0);
    cfg.rounds = 80;
    cfg.shots = 60;
    cfg.leakage_sampling = true;
    ExperimentRunner runner(ctx, cfg);
    const double none = runner.run(PolicyZoo::no_lrc()).dlp_mean();
    const double ideal = runner.run(PolicyZoo::ideal()).dlp_mean();
    const double eraser = runner.run(PolicyZoo::eraser(true)).dlp_mean();
    EXPECT_LT(ideal, none);
    EXPECT_LT(eraser, none);
    EXPECT_LE(ideal, eraser * 1.5);  // oracle is at least competitive
}

}  // namespace
}  // namespace gld
