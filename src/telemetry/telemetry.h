#ifndef GLD_TELEMETRY_TELEMETRY_H_
#define GLD_TELEMETRY_TELEMETRY_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "io/json.h"

namespace gld {
namespace telemetry {

/**
 * Observability side channel for the experiment runner and the campaign
 * fleet: stage timers, deterministic counters/histograms, and per-qubit
 * x per-round leakage-occupancy heatmaps.
 *
 * The one invariant everything here is built around: telemetry is a PURE
 * side channel.  It never draws from any RNG, never reorders a floating
 * point sum, and never changes control flow that feeds Metrics — so
 * Metrics with telemetry attached are BIT-identical to Metrics without,
 * on every backend (pinned by the telemetry drift gate in
 * tests/test_telemetry.cc).
 *
 * Determinism of the telemetry itself: every aggregate except the wall
 * times (shots, rounds, the leak histogram, the heatmap) is an unsigned
 * count, produced per scheduler work unit and merged in ascending
 * (stream, block) order by Collector::merged() — so those aggregates are
 * bit-identical for any thread count and for sharded-vs-single-process
 * runs, exactly like Metrics.  Stage times are wall-clock measurements
 * and deterministic only in shape, never in value.
 *
 * Compile-out: configuring with -DGLD_TELEMETRY=OFF defines
 * GLD_NO_TELEMETRY, which turns kCompiledIn into false — every runner
 * hook is guarded by `if (telemetry::kCompiledIn && ...)`, so the
 * instrumentation folds to nothing and the runner is byte-for-byte the
 * uninstrumented loop.  With telemetry compiled in but no collector
 * attached, the cost is one null check per work unit.
 */
#ifdef GLD_NO_TELEMETRY
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/** The runner's wall-time split; kStageCount sized arrays index by this. */
enum Stage {
    kSim = 0,         ///< simulator: reset/inject/run_round/final measure
    kPolicy = 1,      ///< policy observe/begin_shot
    kDecode = 2,      ///< union-find decoding
    kAccounting = 3,  ///< FN/FP/DLP accounting, syndrome assembly, sums
    kStageCount = 4,
};

/** Canonical stage name ("sim", "policy", "decode", "accounting"). */
const char* stage_name(int stage);

/**
 * Per-qubit x per-round leakage-occupancy accumulator (the ROADMAP
 * "leakage heatmaps from the oracle" item): counts[r * n_qubits + q] is
 * the number of shots whose qubit q was leaked at the END of round r.
 * Columns are physical qubit ids — data qubits [0, n_data), then check
 * ancillas (column n_data + c for check c), matching the CssCode layout.
 * Occupancy fraction = count / shots.
 */
struct Heatmap {
    int rounds = 0;
    int n_data = 0;
    int n_checks = 0;
    std::vector<uint64_t> counts;  ///< rounds x (n_data + n_checks)

    bool enabled() const { return !counts.empty(); }
    int n_qubits() const { return n_data + n_checks; }

    void init(int rounds_, int n_data_, int n_checks_);

    uint64_t* row(int r)
    {
        return counts.data() +
               static_cast<size_t>(r) * static_cast<size_t>(n_qubits());
    }
    uint64_t at(int r, int q) const
    {
        return counts[static_cast<size_t>(r) *
                          static_cast<size_t>(n_qubits()) +
                      static_cast<size_t>(q)];
    }

    /** Sums another heatmap (dimensions must match; throws otherwise). */
    void merge(const Heatmap& o);

    io::Json to_json() const;
    static Heatmap from_json(const io::Json& j);
};

/**
 * One telemetry record: the counters/timers/histograms of one scheduler
 * work unit (or any merge of them).  All non-time fields are unsigned
 * counts, so merging is exact and commutative; merged() nevertheless
 * folds in (stream, block) order so the guarantee survives any future
 * order-sensitive field.
 */
struct Record {
    uint64_t shots = 0;   ///< shots executed
    uint64_t rounds = 0;  ///< shot-rounds executed
    uint64_t blocks = 0;  ///< scheduler work units merged into this record
    uint64_t stage_ns[kStageCount] = {0, 0, 0, 0};
    /**
     * Histogram of the data-leakage population: bucket k counts the
     * (shot, round) pairs that ended the round with exactly k leaked
     * data qubits.  Deterministic (pure function of the trajectories).
     */
    std::vector<uint64_t> leak_hist;
    Heatmap heatmap;  ///< empty unless heatmap collection was enabled

    uint64_t total_stage_ns() const
    {
        uint64_t t = 0;
        for (int s = 0; s < kStageCount; ++s)
            t += stage_ns[s];
        return t;
    }

    void merge(const Record& o);

    io::Json to_json() const;
    static Record from_json(const io::Json& j);
};

/**
 * Stage stopwatch over one Record: lap(stage) charges the time since the
 * previous lap (or construction) to `stage`.  A null record makes every
 * call a no-op — the runner constructs one per work unit unconditionally
 * and pays a single branch per call when telemetry is off.
 */
class StageClock {
  public:
    explicit StageClock(Record* rec) : rec_(rec)
    {
        if (rec_ != nullptr)
            mark_ = now_ns();
    }

    void lap(Stage stage)
    {
        if (rec_ == nullptr)
            return;
        const uint64_t t = now_ns();
        rec_->stage_ns[stage] += t - mark_;
        mark_ = t;
    }

  private:
    static uint64_t now_ns()
    {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    Record* rec_;
    uint64_t mark_ = 0;
};

/**
 * The registry a runner reports into: one sink per (stream, block)
 * scheduler work unit, filled by whichever worker thread executes the
 * unit, merged deterministically in ascending (stream, block) order by
 * merged().  Thread-safe; one collector observes one runner execution
 * (attach via ExperimentRunner::set_telemetry).
 */
class Collector {
  public:
    struct Options {
        /** Collect the per-qubit x per-round leakage heatmap. */
        bool heatmap = false;
        /**
         * Liveness hook: fired after every work-unit record lands, with
         * the total shots recorded so far.  Called from worker threads
         * (outside the collector lock); used by campaign::run_shard to
         * emit progress heartbeats mid-job.
         */
        std::function<void(uint64_t shots_done)> on_block;
    };

    Collector() = default;
    explicit Collector(Options opt) : opt_(std::move(opt)) {}

    bool heatmap() const { return opt_.heatmap; }

    /** Parks one work unit's record (thread-safe; fires on_block). */
    void record_unit(int stream, int block, Record rec);

    /** Shots recorded so far (liveness reads). */
    uint64_t shots_done() const;

    /**
     * Every recorded unit merged in ascending (stream, block) order —
     * the deterministic aggregate of the whole run so far.
     */
    Record merged() const;

  private:
    struct Unit {
        int stream;
        int block;
        Record rec;
    };

    Options opt_;
    mutable std::mutex mu_;
    std::vector<Unit> units_;
    uint64_t shots_done_ = 0;
};

/**
 * The JSON export of one run's telemetry (schema documented in README
 * "Observability"): the merged record plus wall time and throughput.
 * `wall_ns` is real elapsed time; stage_ns sum worker-thread time and
 * exceed it when threads > 1.  Doubles guard against non-finite values
 * (io::Json refuses them).
 */
io::Json export_to_json(const Record& rec, uint64_t wall_ns, int threads);

}  // namespace telemetry
}  // namespace gld

#endif  // GLD_TELEMETRY_TELEMETRY_H_
