#include "telemetry/telemetry.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace gld {
namespace telemetry {

using io::Json;

const char*
stage_name(int stage)
{
    switch (stage) {
      case kSim:
        return "sim";
      case kPolicy:
        return "policy";
      case kDecode:
        return "decode";
      case kAccounting:
        return "accounting";
      default:
        throw std::runtime_error("telemetry: invalid stage index " +
                                 std::to_string(stage));
    }
}

// --- Heatmap. ---

void
Heatmap::init(int rounds_, int n_data_, int n_checks_)
{
    if (rounds_ < 0 || n_data_ < 0 || n_checks_ < 0)
        throw std::runtime_error("Heatmap::init: negative dimension");
    rounds = rounds_;
    n_data = n_data_;
    n_checks = n_checks_;
    counts.assign(static_cast<size_t>(rounds) *
                      static_cast<size_t>(n_qubits()),
                  0);
}

void
Heatmap::merge(const Heatmap& o)
{
    if (!o.enabled())
        return;
    if (!enabled()) {
        *this = o;
        return;
    }
    if (rounds != o.rounds || n_data != o.n_data || n_checks != o.n_checks)
        throw std::runtime_error(
            "Heatmap::merge: dimension mismatch (" +
            std::to_string(rounds) + "x" + std::to_string(n_data) + "+" +
            std::to_string(n_checks) + " vs " + std::to_string(o.rounds) +
            "x" + std::to_string(o.n_data) + "+" +
            std::to_string(o.n_checks) + ")");
    for (size_t i = 0; i < counts.size(); ++i)
        counts[i] += o.counts[i];
}

Json
Heatmap::to_json() const
{
    Json j = Json::object();
    j.set("rounds", Json::integer(rounds));
    j.set("n_data", Json::integer(n_data));
    j.set("n_checks", Json::integer(n_checks));
    Json jc = Json::array();
    for (uint64_t c : counts)
        jc.push(Json::integer(static_cast<int64_t>(c)));
    j.set("counts", std::move(jc));
    return j;
}

Heatmap
Heatmap::from_json(const Json& j)
{
    Heatmap h;
    h.init(static_cast<int>(j["rounds"].as_int()),
           static_cast<int>(j["n_data"].as_int()),
           static_cast<int>(j["n_checks"].as_int()));
    const Json& jc = j["counts"];
    if (jc.size() != h.counts.size())
        throw std::runtime_error("Heatmap::from_json: counts length " +
                                 std::to_string(jc.size()) + " != " +
                                 std::to_string(h.counts.size()));
    for (size_t i = 0; i < h.counts.size(); ++i)
        h.counts[i] = static_cast<uint64_t>(jc.at(i).as_int());
    return h;
}

// --- Record. ---

void
Record::merge(const Record& o)
{
    shots += o.shots;
    rounds += o.rounds;
    blocks += o.blocks;
    for (int s = 0; s < kStageCount; ++s)
        stage_ns[s] += o.stage_ns[s];
    if (leak_hist.size() < o.leak_hist.size())
        leak_hist.resize(o.leak_hist.size(), 0);
    for (size_t i = 0; i < o.leak_hist.size(); ++i)
        leak_hist[i] += o.leak_hist[i];
    heatmap.merge(o.heatmap);
}

Json
Record::to_json() const
{
    Json j = Json::object();
    j.set("shots", Json::integer(static_cast<int64_t>(shots)));
    j.set("rounds", Json::integer(static_cast<int64_t>(rounds)));
    j.set("blocks", Json::integer(static_cast<int64_t>(blocks)));
    Json js = Json::object();
    for (int s = 0; s < kStageCount; ++s)
        js.set(stage_name(s),
               Json::integer(static_cast<int64_t>(stage_ns[s])));
    j.set("stage_ns", std::move(js));
    Json jh = Json::array();
    for (uint64_t c : leak_hist)
        jh.push(Json::integer(static_cast<int64_t>(c)));
    j.set("leak_histogram", std::move(jh));
    if (heatmap.enabled())
        j.set("heatmap", heatmap.to_json());
    return j;
}

Record
Record::from_json(const Json& j)
{
    Record r;
    r.shots = static_cast<uint64_t>(j["shots"].as_int());
    r.rounds = static_cast<uint64_t>(j["rounds"].as_int());
    r.blocks = static_cast<uint64_t>(j["blocks"].as_int());
    const Json& js = j["stage_ns"];
    for (int s = 0; s < kStageCount; ++s)
        r.stage_ns[s] = static_cast<uint64_t>(js[stage_name(s)].as_int());
    const Json& jh = j["leak_histogram"];
    r.leak_hist.resize(jh.size());
    for (size_t i = 0; i < jh.size(); ++i)
        r.leak_hist[i] = static_cast<uint64_t>(jh.at(i).as_int());
    if (j.has("heatmap"))
        r.heatmap = Heatmap::from_json(j["heatmap"]);
    return r;
}

// --- Collector. ---

void
Collector::record_unit(int stream, int block, Record rec)
{
    uint64_t done = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        shots_done_ += rec.shots;
        done = shots_done_;
        units_.push_back({stream, block, std::move(rec)});
    }
    // The liveness hook runs outside the lock: it may take the campaign
    // progress mutex and write a heartbeat line, and no collector state
    // is touched from here.
    if (opt_.on_block)
        opt_.on_block(done);
}

uint64_t
Collector::shots_done() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return shots_done_;
}

Record
Collector::merged() const
{
    std::vector<const Unit*> order;
    std::lock_guard<std::mutex> lock(mu_);
    order.reserve(units_.size());
    for (const Unit& u : units_)
        order.push_back(&u);
    // The determinism contract: fold in ascending (stream, block) order,
    // exactly the order run()/merge_campaign sum Metrics partials, no
    // matter which thread parked which unit when.
    std::sort(order.begin(), order.end(),
              [](const Unit* a, const Unit* b) {
                  if (a->stream != b->stream)
                      return a->stream < b->stream;
                  return a->block < b->block;
              });
    Record out;
    for (const Unit* u : order)
        out.merge(u->rec);
    return out;
}

// --- Export. ---

Json
export_to_json(const Record& rec, uint64_t wall_ns, int threads)
{
    Json j = rec.to_json();
    j.set("wall_ns", Json::integer(static_cast<int64_t>(wall_ns)));
    j.set("threads", Json::integer(threads));
    const double sps =
        wall_ns > 0
            ? static_cast<double>(rec.shots) /
                  (static_cast<double>(wall_ns) * 1e-9)
            : 0.0;
    j.set("shots_per_second", Json::number(sps));
    return j;
}

}  // namespace telemetry
}  // namespace gld
