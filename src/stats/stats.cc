#include "stats/stats.h"

#include <cmath>
#include <stdexcept>

namespace gld {
namespace stats {

double
normal_cdf(double z)
{
    // Phi(z) = erfc(-z / sqrt(2)) / 2; erfc keeps the far tails exact
    // where 1 - erf would cancel to 0.
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double
two_sided_p(double z)
{
    return std::erfc(std::fabs(z) / std::sqrt(2.0));
}

namespace {

/** Acklam's rational approximation to the probit function (~1.15e-9
 *  relative error before refinement). */
double
acklam_quantile(double p)
{
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double plow = 0.02425;
    if (p < plow) {
        const double q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p > 1.0 - plow) {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                 c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
}

}  // namespace

double
normal_quantile(double p)
{
    if (!(p > 0.0 && p < 1.0))
        throw std::domain_error("normal_quantile: p must be in (0, 1)");
    double x = acklam_quantile(p);
    // One Halley refinement against the exact erfc-based CDF takes the
    // approximation to full double precision.
    const double e = normal_cdf(x) - p;
    const double u =
        e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);  // e / pdf(x)
    x = x - u / (1.0 + 0.5 * x * u);
    return x;
}

double
z_for_two_sided_alpha(double alpha)
{
    if (!(alpha > 0.0 && alpha < 1.0))
        throw std::domain_error(
            "z_for_two_sided_alpha: alpha must be in (0, 1)");
    return normal_quantile(1.0 - alpha / 2.0);
}

Interval
wilson_interval(const RateSample& s, double z)
{
    Interval iv;
    if (!(s.trials > 0))
        return iv;  // vacuous [0, 1]: nothing was measured
    const double n = s.trials;
    const double k = s.events < 0 ? 0 : (s.events > n ? n : s.events);
    const double z2 = z * z;
    const double center = (k + z2 / 2.0) / (n + z2);
    const double half =
        z * std::sqrt(k * (n - k) / n + z2 / 4.0) / (n + z2);
    iv.lo = center - half;
    iv.hi = center + half;
    if (iv.lo < 0.0)
        iv.lo = 0.0;
    if (iv.hi > 1.0)
        iv.hi = 1.0;
    return iv;
}

TwoProportionResult
two_proportion_z(const RateSample& a, const RateSample& b)
{
    TwoProportionResult r;
    r.rate1 = a.rate();
    r.rate2 = b.rate();
    if (!(a.trials > 0) || !(b.trials > 0)) {
        r.degenerate = true;  // no trials on a side: nothing to referee
        return r;
    }
    const double pooled = (a.events + b.events) / (a.trials + b.trials);
    if (pooled <= 0.0 || pooled >= 1.0) {
        // Zero pooled variance: both sides all-zero (or all-one) — exact
        // agreement, no evidence of a rate difference.
        r.identical = true;
        return r;
    }
    const double se = std::sqrt(pooled * (1.0 - pooled) *
                                (1.0 / a.trials + 1.0 / b.trials));
    r.z = (r.rate1 - r.rate2) / se;
    r.p_value = two_sided_p(r.z);
    return r;
}

double
sidak_alpha(double alpha, int m)
{
    if (!(alpha > 0.0 && alpha < 1.0))
        throw std::domain_error("sidak_alpha: alpha must be in (0, 1)");
    if (m <= 1)
        return alpha;
    // 1 - (1-alpha)^(1/m) = -expm1(log1p(-alpha) / m), stable for tiny
    // alpha where the naive power would round to 1.
    return -std::expm1(std::log1p(-alpha) / static_cast<double>(m));
}

double
bonferroni_alpha(double alpha, int m)
{
    if (!(alpha > 0.0 && alpha < 1.0))
        throw std::domain_error("bonferroni_alpha: alpha must be in (0, 1)");
    if (m <= 1)
        return alpha;
    return alpha / static_cast<double>(m);
}

}  // namespace stats
}  // namespace gld
