#ifndef GLD_STATS_STATS_H_
#define GLD_STATS_STATS_H_

namespace gld {
namespace stats {

/**
 * Dependency-free statistical-equivalence primitives (ROADMAP
 * "cross-backend referee campaigns"): the one definition of "two Monte
 * Carlo rates agree" shared by the `gld_campaign verify` referee, the
 * cross-backend test suites and any future bench gate.  Everything here
 * is a pure function of its inputs — no RNG, no global state — so a
 * verdict is reproducible from the recorded samples alone.
 *
 * The model is deliberately simple and honest: every compared metric is
 * a binomial-style rate (events out of trials), refereed by the pooled
 * two-proportion z-test, reported with Wilson score intervals, and
 * alpha-corrected across the whole test family (Šidák, or Bonferroni on
 * request) so a grid of many tests keeps one family-wise false-positive
 * budget.  Paired-seed designs make the independence assumption
 * conservative (shared noise realizations correlate the arms
 * positively), which is the safe direction for a correctness gate.
 */

/** Standard normal CDF Phi(z), exact to double precision via erfc. */
double normal_cdf(double z);

/** Two-sided tail probability P(|N(0,1)| >= |z|) = erfc(|z|/sqrt(2)). */
double two_sided_p(double z);

/**
 * Inverse of normal_cdf on (0, 1): Acklam's rational approximation
 * polished with one Halley step against erfc, accurate to ~1e-15
 * relative over the practical range.  Throws std::domain_error outside
 * (0, 1).
 */
double normal_quantile(double p);

/**
 * The critical value z* with P(|N(0,1)| > z*) = alpha — e.g.
 * z_for_two_sided_alpha(0.05) = 1.9599...  Throws std::domain_error
 * unless 0 < alpha < 1.
 */
double z_for_two_sided_alpha(double alpha);

/**
 * One binomial-style rate sample: `events` successes out of `trials`.
 * Doubles, not longs, because the Metrics accumulators are event counts
 * stored as doubles; values are integral in practice.
 */
struct RateSample {
    double events = 0;
    double trials = 0;
    /** events/trials; 0 when there are no trials. */
    double rate() const { return trials > 0 ? events / trials : 0.0; }
};

/** A [lo, hi] confidence interval on a rate, clamped to [0, 1]. */
struct Interval {
    double lo = 0.0;
    double hi = 1.0;
};

/**
 * Wilson score interval for a rate at critical value z (NOT alpha — pass
 * z_for_two_sided_alpha(alpha)).  Well-behaved at the degenerate edges
 * the paper's sweeps actually hit: k = 0 gives [0, hi], k = n gives
 * [lo, 1], and n = 0 returns the vacuous [0, 1].
 */
Interval wilson_interval(const RateSample& s, double z);

/**
 * Pooled two-proportion z-test of H0: both samples share one rate.
 *
 * Degenerate inputs referee to "no evidence of disagreement" instead of
 * NaN: a side with zero trials sets `degenerate` (nothing was measured —
 * p_value 1), and a pooled rate of exactly 0 or 1 (both sides all-zero
 * or all-one, the "identical samples" case) has zero pooled variance
 * and sets `identical` (p_value 1, z 0).
 */
struct TwoProportionResult {
    double rate1 = 0.0;    ///< observed rate of sample a
    double rate2 = 0.0;    ///< observed rate of sample b
    double z = 0.0;        ///< pooled z statistic (0 when not testable)
    double p_value = 1.0;  ///< two-sided
    bool degenerate = false;  ///< a side had zero trials
    bool identical = false;   ///< pooled rate 0 or 1: exact agreement
};
TwoProportionResult two_proportion_z(const RateSample& a,
                                     const RateSample& b);

/**
 * Šidák per-test alpha preserving family-wise level `alpha` over m
 * independent tests: 1 - (1-alpha)^(1/m), computed in log space so tiny
 * alphas survive.  m <= 1 returns alpha unchanged.  Exact for
 * independent tests and never looser than Bonferroni.
 */
double sidak_alpha(double alpha, int m);

/** Bonferroni per-test alpha alpha/m: conservative under ANY dependence
 *  structure (the fallback when arms share seeds).  m <= 1 returns
 *  alpha. */
double bonferroni_alpha(double alpha, int m);

}  // namespace stats
}  // namespace gld

#endif  // GLD_STATS_STATS_H_
