#ifndef GLD_UTIL_PREFIX_CODE_H_
#define GLD_UTIL_PREFIX_CODE_H_

#include <cstdint>
#include <string>

namespace gld {

/**
 * Unary index-tag codec for variable-length syndrome patterns (paper §4.4,
 * Appendix B.1).
 *
 * Data qubits in a code touch between 1 and `max_bits` checks, so their
 * syndrome patterns have different widths.  GLADIATOR's sequence checker
 * normalizes them to a single width `max_bits + 1` by prepending a unary tag:
 * a k-bit pattern is encoded as (max_bits - k) ones, then a 0, then the k
 * pattern bits.  For max_bits = 4: 4-bit -> "0"+bits, 3-bit -> "10"+bits,
 * 2-bit -> "110"+bits, matching the paper exactly.
 *
 * Bit convention: within the tagged word, bit (tagged_bits()-1) is the first
 * (leftmost) character of the string form; the raw pattern occupies the low
 * k bits with bit 0 the last-measured slot... concretely, pattern bit i
 * (slot order, i = 0 is the earliest CNOT slot) maps to tagged bit
 * (k - 1 - i), i.e. the string reads slots left-to-right.
 */
class PrefixTagCodec {
  public:
    /** @param max_bits widest raw pattern supported (>= 1). */
    explicit PrefixTagCodec(int max_bits);

    int max_bits() const { return max_bits_; }
    /** Width of every tagged word. */
    int tagged_bits() const { return max_bits_ + 1; }

    /**
     * Encodes a k-bit raw pattern into the uniform tagged word.
     * @param pattern raw bits; bit i = slot i (earliest CNOT first).
     * @param k number of valid bits in `pattern` (1 <= k <= max_bits).
     */
    uint32_t encode(uint32_t pattern, int k) const;

    /** Recovers (pattern, k) from a tagged word; returns false if invalid. */
    bool decode(uint32_t tagged, uint32_t* pattern, int* k) const;

    /** String form of a tagged word, MSB first (paper's x4 x3 x2 x1 x0). */
    std::string to_string(uint32_t tagged) const;

  private:
    int max_bits_;
};

}  // namespace gld

#endif  // GLD_UTIL_PREFIX_CODE_H_
