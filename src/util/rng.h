#ifndef GLD_UTIL_RNG_H_
#define GLD_UTIL_RNG_H_

#include <cstdint>

namespace gld {

/**
 * Small, fast, deterministic pseudo-random generator (xoshiro256**).
 *
 * Used for all Monte-Carlo sampling in the simulator and policies.  A
 * dedicated implementation (rather than std::mt19937_64) keeps shot loops
 * cheap and makes cross-platform reproducibility explicit.
 */
class Rng {
  public:
    /** Seeds the state via splitmix64 so that any 64-bit seed is usable. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Returns the next raw 64-bit word. */
    uint64_t next_u64();

    /** Returns a uniform double in [0, 1). */
    double uniform();

    /** Returns true with probability p (p outside [0,1] is clamped). */
    bool bernoulli(double p);

    /** Returns a uniform integer in [0, n); n must be > 0. */
    uint32_t uniform_int(uint32_t n);

    /** Returns a single uniformly random bit. */
    bool bit() { return (next_u64() >> 63) != 0; }

    /**
     * Derives an independent stream for a worker thread / shot block.
     * @param stream_id distinct id per derived stream.
     */
    Rng split(uint64_t stream_id) const;

  private:
    uint64_t s_[4];
    uint64_t seed_;
};

}  // namespace gld

#endif  // GLD_UTIL_RNG_H_
