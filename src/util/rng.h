#ifndef GLD_UTIL_RNG_H_
#define GLD_UTIL_RNG_H_

#include <cstdint>

namespace gld {

/**
 * Small, fast, deterministic pseudo-random generator (xoshiro256**).
 *
 * Used for all Monte-Carlo sampling in the simulator and policies.  A
 * dedicated implementation (rather than std::mt19937_64) keeps shot loops
 * cheap and makes cross-platform reproducibility explicit.
 */
class Rng {
  public:
    /** Seeds the state via splitmix64 so that any 64-bit seed is usable. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Returns the next raw 64-bit word. */
    uint64_t next_u64();

    /** Returns a uniform double in [0, 1). */
    double uniform();

    /** Returns true with probability p (p outside [0,1] is clamped). */
    bool bernoulli(double p);

    /** Returns a uniform integer in [0, n); n must be > 0. */
    uint32_t uniform_int(uint32_t n);

    /** Returns a single uniformly random bit. */
    bool bit() { return (next_u64() >> 63) != 0; }

    /**
     * Derives an independent stream for a worker thread / shot block.
     * @param stream_id distinct id per derived stream.
     */
    Rng split(uint64_t stream_id) const;

    /**
     * Copies the four xoshiro256** state words out.  The batch backend's
     * lane-RNG bank stores the states of 64 split streams
     * structure-of-arrays and steps them with the same update rule, so a
     * lane's draw sequence is bit-identical to this object's
     * (sim/batch_driver.h).
     */
    void export_state(uint64_t out[4]) const
    {
        for (int i = 0; i < 4; ++i)
            out[i] = s_[i];
    }

  private:
    uint64_t s_[4];
    uint64_t seed_;
};

}  // namespace gld

#endif  // GLD_UTIL_RNG_H_
