#include "util/rng.h"

namespace gld {

namespace {

/** splitmix64 step, used for seeding xoshiro state. */
uint64_t
splitmix64(uint64_t& x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed)
{
    uint64_t x = seed;
    for (auto& s : s_)
        s = splitmix64(x);
    // Avoid the all-zero state (cannot occur from splitmix64, but be safe).
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

uint64_t
Rng::next_u64()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53-bit mantissa construction.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

uint32_t
Rng::uniform_int(uint32_t n)
{
    // Lemire's multiply-shift rejection-free-enough method; bias is
    // negligible (< 2^-32) for the n used here.
    return static_cast<uint32_t>(
        (static_cast<__uint128_t>(next_u64()) * n) >> 64);
}

Rng
Rng::split(uint64_t stream_id) const
{
    // Mix the original seed with the stream id through splitmix64.
    uint64_t x = seed_ ^ (0xA5A5A5A55A5A5A5Aull + stream_id * 0x9E3779B97F4A7C15ull);
    return Rng(splitmix64(x));
}

}  // namespace gld
