#include "util/config.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace gld {

double
BenchConfig::scale()
{
    const char* s = std::getenv("GLD_SHOTS_SCALE");
    if (s == nullptr)
        return 1.0;
    const double v = std::atof(s);
    return v > 0 ? v : 1.0;
}

int
BenchConfig::shots(int base)
{
    const double v = scale() * base;
    return std::max(1, static_cast<int>(v));
}

int
BenchConfig::threads()
{
    const char* s = std::getenv("GLD_THREADS");
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw <= 0)
        hw = 1;
    if (s != nullptr) {
        const int v = std::atoi(s);
        if (v > 0)
            return std::min(v, 64);
    }
    return hw;
}

}  // namespace gld
