#include "util/gf2.h"

#include <cassert>
#include <cstddef>
#include <utility>

namespace gld {

Gf2Matrix::Gf2Matrix(int rows, int cols)
    : rows_(rows), cols_(cols), words_per_row_((cols + 63) / 64),
      data_(static_cast<size_t>(rows) * words_per_row_, 0)
{
}

bool
Gf2Matrix::get(int r, int c) const
{
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return (data_[static_cast<size_t>(r) * words_per_row_ + c / 64] >>
            (c % 64)) & 1ull;
}

void
Gf2Matrix::set(int r, int c, bool v)
{
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    uint64_t& w = data_[static_cast<size_t>(r) * words_per_row_ + c / 64];
    const uint64_t mask = 1ull << (c % 64);
    if (v)
        w |= mask;
    else
        w &= ~mask;
}

void
Gf2Matrix::flip(int r, int c)
{
    data_[static_cast<size_t>(r) * words_per_row_ + c / 64] ^=
        1ull << (c % 64);
}

void
Gf2Matrix::xor_rows(int dst, int src)
{
    uint64_t* d = &data_[static_cast<size_t>(dst) * words_per_row_];
    const uint64_t* s = &data_[static_cast<size_t>(src) * words_per_row_];
    for (int w = 0; w < words_per_row_; ++w)
        d[w] ^= s[w];
}

int
Gf2Matrix::rank() const
{
    Gf2Matrix m = *this;
    int rank = 0;
    for (int c = 0; c < m.cols_ && rank < m.rows_; ++c) {
        int pivot = -1;
        for (int r = rank; r < m.rows_; ++r) {
            if (m.get(r, c)) {
                pivot = r;
                break;
            }
        }
        if (pivot < 0)
            continue;
        if (pivot != rank) {
            // Swap rows by XOR trick-free approach: explicit word swap.
            for (int w = 0; w < m.words_per_row_; ++w) {
                std::swap(
                    m.data_[static_cast<size_t>(pivot) * m.words_per_row_ + w],
                    m.data_[static_cast<size_t>(rank) * m.words_per_row_ + w]);
            }
        }
        for (int r = 0; r < m.rows_; ++r) {
            if (r != rank && m.get(r, c))
                m.xor_rows(r, rank);
        }
        ++rank;
    }
    return rank;
}

Gf2Matrix
Gf2Matrix::mul_transpose(const Gf2Matrix& other) const
{
    assert(cols_ == other.cols_);
    Gf2Matrix out(rows_, other.rows_);
    for (int i = 0; i < rows_; ++i) {
        const uint64_t* a = &data_[static_cast<size_t>(i) * words_per_row_];
        for (int j = 0; j < other.rows_; ++j) {
            const uint64_t* b =
                &other.data_[static_cast<size_t>(j) * other.words_per_row_];
            uint64_t acc = 0;
            for (int w = 0; w < words_per_row_; ++w)
                acc ^= a[w] & b[w];
            out.set(i, j, __builtin_popcountll(acc) & 1);
        }
    }
    return out;
}

bool
Gf2Matrix::is_zero() const
{
    for (uint64_t w : data_) {
        if (w != 0)
            return false;
    }
    return true;
}

Gf2Matrix
Gf2Matrix::from_supports(const std::vector<std::vector<int>>& supports,
                         int cols)
{
    Gf2Matrix m(static_cast<int>(supports.size()), cols);
    for (size_t r = 0; r < supports.size(); ++r) {
        for (int c : supports[r])
            m.set(static_cast<int>(r), c, true);
    }
    return m;
}

}  // namespace gld
