#include "util/prefix_code.h"

#include <cassert>

namespace gld {

PrefixTagCodec::PrefixTagCodec(int max_bits) : max_bits_(max_bits)
{
    assert(max_bits >= 1 && max_bits <= 30);
}

uint32_t
PrefixTagCodec::encode(uint32_t pattern, int k) const
{
    assert(k >= 1 && k <= max_bits_);
    assert(pattern < (1u << k));
    const int n = tagged_bits();
    // Unary tag: (max_bits - k) ones followed by a zero, then the pattern
    // with slot 0 as the leftmost pattern bit.
    uint32_t tagged = 0;
    int pos = n - 1;  // leftmost bit position
    for (int i = 0; i < max_bits_ - k; ++i)
        tagged |= 1u << pos--;
    // The separator zero.
    --pos;
    for (int i = 0; i < k; ++i) {
        if ((pattern >> i) & 1u)
            tagged |= 1u << pos;
        --pos;
    }
    return tagged;
}

bool
PrefixTagCodec::decode(uint32_t tagged, uint32_t* pattern, int* k) const
{
    const int n = tagged_bits();
    if (tagged >= (1u << n))
        return false;
    int pos = n - 1;
    int ones = 0;
    while (pos >= 0 && ((tagged >> pos) & 1u)) {
        ++ones;
        --pos;
    }
    if (pos < 0)
        return false;  // all ones: no separator zero
    const int kk = max_bits_ - ones;
    if (kk < 1)
        return false;
    --pos;  // consume the separator zero
    if (pos + 1 != kk)
        return false;  // remaining width must equal the pattern width
    uint32_t pat = 0;
    for (int i = 0; i < kk; ++i) {
        if ((tagged >> (kk - 1 - i)) & 1u)
            pat |= 1u << i;
    }
    *pattern = pat;
    *k = kk;
    return true;
}

std::string
PrefixTagCodec::to_string(uint32_t tagged) const
{
    std::string s;
    for (int pos = tagged_bits() - 1; pos >= 0; --pos)
        s.push_back(((tagged >> pos) & 1u) ? '1' : '0');
    return s;
}

}  // namespace gld
