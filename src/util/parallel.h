#ifndef GLD_UTIL_PARALLEL_H_
#define GLD_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace gld {

/**
 * Runs fn(0), ..., fn(n-1) across up to `threads` workers pulling indices
 * off a shared atomic cursor (dynamic scheduling — the shape both the
 * experiment scheduler's work-unit queue and the campaign job pool need).
 *
 * threads <= 1 (or n <= 1) runs inline on the calling thread.  The first
 * exception any fn throws is captured and rethrown on the calling thread
 * after all workers join (remaining indices are abandoned); an exception
 * can therefore never escape a std::thread and terminate the process.
 *
 * Callers are responsible for fn being safe to run concurrently and for
 * any ordering of results (write to index-owned slots, fold afterwards).
 */
void parallel_for_dynamic(size_t n, int threads,
                          const std::function<void(size_t)>& fn);

}  // namespace gld

#endif  // GLD_UTIL_PARALLEL_H_
