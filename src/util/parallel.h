#ifndef GLD_UTIL_PARALLEL_H_
#define GLD_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace gld {

/**
 * Runs fn(0), ..., fn(n-1) across up to `threads` executors pulling index
 * chunks off a shared atomic cursor (dynamic scheduling — the shape both
 * the experiment scheduler's work-unit queue and the campaign job pool
 * need).  Executors are the CALLING thread plus workers borrowed from the
 * process-wide persistent pool (util/thread_pool.h), so nothing is
 * spawned per call and nested calls — campaign jobs running the runner's
 * own parallel loop — share one global thread budget instead of
 * multiplying it.
 *
 * threads <= 1 (or n <= 1) runs inline on the calling thread.  The first
 * exception any fn throws is captured and rethrown on the calling thread
 * after all helpers leave (remaining indices are abandoned); an exception
 * can therefore never escape a pool thread and terminate the process.
 *
 * Callers are responsible for fn being safe to run concurrently and for
 * any ordering of results (write to index-owned slots, fold afterwards).
 */
void parallel_for_dynamic(size_t n, int threads,
                          const std::function<void(size_t)>& fn);

/**
 * The slot-aware variant: fn(i, slot) where `slot` identifies the
 * executor running index i.  Slots are unique among concurrent executors
 * of THIS call and lie in [0, parallel_width(n, threads)); the calling
 * thread is always slot 0.  This is the per-worker state-reuse hook: a
 * caller allocates parallel_width() cache slots (simulator, policies,
 * decoder arena), and each executor owns its slot's caches for the whole
 * loop.
 */
void parallel_for_slots(size_t n, int threads,
                        const std::function<void(size_t, int)>& fn);

/**
 * The executor-slot bound of a (n, threads) loop: every slot id
 * parallel_for_slots hands out is < this (>= 1; 1 means inline).
 */
inline size_t
parallel_width(size_t n, int threads)
{
    const size_t t = threads < 1 ? 1 : static_cast<size_t>(threads);
    const size_t w = n < t ? n : t;
    return w < 1 ? 1 : w;
}

}  // namespace gld

#endif  // GLD_UTIL_PARALLEL_H_
