#include "util/thread_pool.h"

#include <algorithm>

#include "util/config.h"

namespace gld {

namespace {

/** Per-OS-thread loop-nesting depth, for the peak_active() watermark. */
thread_local int tl_loop_depth = 0;

}  // namespace

ThreadPool&
ThreadPool::instance()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::ThreadPool()
{
    // Budget - 1 workers: the caller of every loop is an executor too,
    // so total concurrency is exactly BenchConfig::threads().  A failed
    // spawn (resource limits) just leaves a smaller pool — callers drain
    // their own loops regardless, so correctness never depends on any
    // worker existing.
    const int budget = BenchConfig::threads();
    threads_.reserve(static_cast<size_t>(std::max(0, budget - 1)));
    try {
        for (int t = 1; t < budget; ++t) {
            threads_.emplace_back([this] { worker_main(); });
            workers_created_.fetch_add(1);
        }
    } catch (...) {
        // Keep whatever spawned; the pool works at any size >= 0.
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& th : threads_)
        th.join();
}

void
ThreadPool::enter_active()
{
    if (tl_loop_depth++ != 0)
        return;
    const int now = active_.fetch_add(1) + 1;
    int peak = peak_active_.load();
    while (now > peak && !peak_active_.compare_exchange_weak(peak, now)) {
    }
}

void
ThreadPool::leave_active()
{
    if (--tl_loop_depth == 0)
        active_.fetch_sub(1);
}

void
ThreadPool::reset_peak()
{
    peak_active_.store(active_.load());
}

void
ThreadPool::run_loop(LoopTask* task, int slot)
{
    enter_active();
    try {
        // Guided chunked grabs: take a shrinking slice of the remaining
        // range per cursor bump (floor 1), so a long loop costs O(width *
        // log n) contended fetch_adds instead of one per index, while the
        // tail still load-balances index by index.
        const size_t denom = 4u * static_cast<size_t>(task->width);
        for (;;) {
            const size_t seen = task->cursor.load(std::memory_order_relaxed);
            if (seen >= task->n)
                break;
            size_t chunk = (task->n - seen) / denom;
            if (chunk < 1)
                chunk = 1;
            const size_t first = task->cursor.fetch_add(chunk);
            if (first >= task->n)
                break;
            const size_t last = std::min(first + chunk, task->n);
            for (size_t i = first; i < last; ++i) {
                if (task->aborted.load(std::memory_order_relaxed))
                    break;
                (*task->fn)(i, slot);
            }
        }
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(task->mu);
            if (task->error == nullptr)
                task->error = std::current_exception();
        }
        task->aborted.store(true);
        task->cursor.store(task->n);  // stop siblings from grabbing more
    }
    leave_active();
}

void
ThreadPool::worker_main()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
        if (stop_)
            return;
        LoopTask* task = pending_.back();
        if (--task->helpers_wanted == 0)
            pending_.pop_back();
        // Registered before the task can look finished: the caller only
        // waits for outstanding == 0 AFTER unpublishing the task under
        // this same mutex, so this increment is always visible to it.
        task->outstanding.fetch_add(1);
        lock.unlock();

        const int slot = task->slots.fetch_add(1);
        run_loop(task, slot);
        {
            // Final touch under the task's mutex: the caller's wait
            // predicate runs under it too, so it cannot wake, observe
            // outstanding == 0 and destroy the task while this helper
            // still holds a reference.
            std::lock_guard<std::mutex> task_lock(task->mu);
            task->outstanding.fetch_sub(1);
            task->done_cv.notify_all();
        }

        lock.lock();
    }
}

void
ThreadPool::run(size_t n, int width,
                const std::function<void(size_t, int)>& fn)
{
    const size_t eff =
        std::min(n, static_cast<size_t>(std::max(1, width)));
    if (eff <= 1) {
        enter_active();
        try {
            for (size_t i = 0; i < n; ++i)
                fn(i, 0);
        } catch (...) {
            leave_active();
            throw;
        }
        leave_active();
        return;
    }

    LoopTask task(n, fn, static_cast<int>(eff));
    {
        std::lock_guard<std::mutex> lock(mu_);
        task.helpers_wanted = static_cast<int>(eff) - 1;
        pending_.push_back(&task);
    }
    if (static_cast<int>(eff) - 1 >= workers())
        cv_.notify_all();
    else
        for (int t = 1; t < static_cast<int>(eff); ++t)
            cv_.notify_one();

    // The caller is executor 0 and drains the loop itself — helpers are
    // opportunistic, so nested loops make progress even with every
    // worker busy elsewhere.
    run_loop(&task, 0);

    {
        // Unpublish: no NEW helper may claim the task once the caller is
        // ready to leave.  Helpers already registered are counted in
        // outstanding (incremented under this mutex at claim time).
        std::lock_guard<std::mutex> lock(mu_);
        if (task.helpers_wanted > 0) {
            task.helpers_wanted = 0;
            pending_.erase(
                std::find(pending_.begin(), pending_.end(), &task));
        }
    }
    {
        std::unique_lock<std::mutex> task_lock(task.mu);
        task.done_cv.wait(task_lock,
                          [&task] { return task.outstanding.load() == 0; });
    }
    if (task.error != nullptr)
        std::rethrow_exception(task.error);
}

}  // namespace gld
