#include "util/table.h"

#include <cstdio>
#include <sstream>

namespace gld {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::add_row(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::sci(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*e", precision, v);
    return buf;
}

std::string
TablePrinter::to_string() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& row) {
        os << "|";
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string& cell = c < row.size() ? row[c] : std::string();
            os << " " << cell << std::string(widths[c] - cell.size(), ' ')
               << " |";
        }
        os << "\n";
    };
    emit_row(headers_);
    os << "|";
    for (size_t c = 0; c < widths.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto& row : rows_)
        emit_row(row);
    return os.str();
}

void
TablePrinter::print() const
{
    std::fputs(to_string().c_str(), stdout);
}

}  // namespace gld
