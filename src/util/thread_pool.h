#ifndef GLD_UTIL_THREAD_POOL_H_
#define GLD_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gld {

/**
 * The process-wide persistent worker pool behind parallel_for_dynamic /
 * parallel_for_slots (util/parallel.h) — both the experiment scheduler's
 * (stream, shot-block) work units and the campaign's -j N job pool run on
 * it, so the whole process shares ONE thread budget and threads are
 * spawned once instead of per loop.
 *
 * Budget: workers() = BenchConfig::threads() - 1 pool threads (GLD_THREADS
 * or hardware concurrency), spawned lazily at first instance() call and
 * joined at process exit.  Every loop's CALLER participates as an
 * executor too, so a loop of width W runs on the caller plus up to W-1
 * pool workers — total concurrency never exceeds the budget no matter how
 * loops nest (campaign jobs running nested runner loops included).
 *
 * Nesting is deadlock-free by construction: a caller always drains its
 * own loop's cursor itself; idle pool workers merely help.  A pool worker
 * executing a task may therefore start a nested loop — it becomes that
 * loop's caller and drains it, whether or not any sibling is free.
 *
 * Exception contract (same as the pre-pool parallel_for_dynamic): the
 * first exception any iteration throws is captured, the remaining indices
 * are abandoned, and it is rethrown on the calling thread after every
 * helper has left the loop.
 */
class ThreadPool {
  public:
    /** The process-wide pool (lazy; sized once at first use). */
    static ThreadPool& instance();

    /**
     * Runs fn(i, slot) for i in [0, n) on the caller plus up to width-1
     * pool workers.  `slot` identifies the executor within THIS loop:
     * slots are unique among concurrent executors and < max(1,
     * min(n, width)) — the contract per-slot state caches (one simulator
     * per executor) rely on.  The caller always gets slot 0.
     * width <= 1 or n <= 1 runs inline on the calling thread.
     */
    void run(size_t n, int width,
             const std::function<void(size_t, int)>& fn);

    /** Pool workers spawned (budget - 1; 0 means every loop is inline). */
    int workers() const { return static_cast<int>(threads_.size()); }

    /**
     * Total OS threads this pool ever created — a regression hook: it
     * must equal workers() forever (a persistent pool never re-spawns),
     * where the old spawn-per-call scheduler grew it by `width` per loop.
     */
    long workers_created() const { return workers_created_.load(); }

    /**
     * High-water mark of OS threads concurrently executing pool work
     * since the last reset_peak() — counted at loop-nesting depth 0 -> 1
     * per thread, so nested loops cannot double-count their executor.
     * The oversubscription regression gate: it can never exceed
     * workers() + 1 (the budget), however campaign jobs and nested
     * runner loops stack.
     */
    int peak_active() const { return peak_active_.load(); }
    void reset_peak();

    ~ThreadPool();

  private:
    /**
     * One in-flight loop, living on its caller's stack.  Lifetime
     * protocol: helpers register under the pool mutex (outstanding++
     * before the task is ever discoverable as "done"), the caller
     * unpublishes the task under the pool mutex after draining, then
     * waits for outstanding == 0 under the task's own mutex; a helper's
     * final touch is the notify while still holding that mutex, so the
     * caller cannot destroy the frame under a live helper.
     */
    struct LoopTask {
        explicit LoopTask(size_t n_in,
                          const std::function<void(size_t, int)>& fn_in,
                          int width_in)
            : n(n_in), width(width_in), fn(&fn_in)
        {
        }

        // Shared cursor on its own cache line: every executor
        // fetch_adds it, and sharing a line with the read-mostly fields
        // below would bounce them on every grab.
        alignas(64) std::atomic<size_t> cursor{0};
        alignas(64) std::atomic<bool> aborted{false};
        std::atomic<int> slots{1};        ///< next slot id (caller = 0)
        std::atomic<int> outstanding{0};  ///< helpers inside the loop
        const size_t n;
        const int width;
        const std::function<void(size_t, int)>* fn;
        int helpers_wanted = 0;  ///< guarded by the POOL mutex

        std::mutex mu;
        std::condition_variable done_cv;
        std::exception_ptr error;  ///< guarded by mu; first throw wins
    };

    ThreadPool();
    void worker_main();
    void run_loop(LoopTask* task, int slot);
    void enter_active();
    void leave_active();

    std::mutex mu_;                 ///< guards pending_ + stop_
    std::condition_variable cv_;    ///< wakes idle workers
    std::vector<LoopTask*> pending_;  ///< tasks still wanting helpers
    bool stop_ = false;
    std::vector<std::thread> threads_;
    std::atomic<long> workers_created_{0};
    std::atomic<int> active_{0};
    std::atomic<int> peak_active_{0};
};

}  // namespace gld

#endif  // GLD_UTIL_THREAD_POOL_H_
