#ifndef GLD_UTIL_GF2_H_
#define GLD_UTIL_GF2_H_

#include <cstdint>
#include <vector>

namespace gld {

/**
 * Dense GF(2) matrix with row-major 64-bit word packing.
 *
 * Used for CSS-code validity checks (HX * HZ^T = 0), rank/dimension
 * computations (k = n - rank(HX) - rank(HZ)) and logical-operator tests.
 */
class Gf2Matrix {
  public:
    Gf2Matrix() = default;
    Gf2Matrix(int rows, int cols);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    bool get(int r, int c) const;
    void set(int r, int c, bool v);
    void flip(int r, int c);

    /** XORs row `src` into row `dst`. */
    void xor_rows(int dst, int src);

    /** Returns the rank via Gaussian elimination (copy, non-destructive). */
    int rank() const;

    /** Returns this * other^T over GF(2). */
    Gf2Matrix mul_transpose(const Gf2Matrix& other) const;

    /** True if every entry is zero. */
    bool is_zero() const;

    /** Builds from row supports (list of set column indices per row). */
    static Gf2Matrix from_supports(
        const std::vector<std::vector<int>>& supports, int cols);

  private:
    int rows_ = 0;
    int cols_ = 0;
    int words_per_row_ = 0;
    std::vector<uint64_t> data_;
};

}  // namespace gld

#endif  // GLD_UTIL_GF2_H_
