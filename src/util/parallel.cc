#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace gld {

void
parallel_for_dynamic(size_t n, int threads,
                     const std::function<void(size_t)>& fn)
{
    const size_t width =
        std::min(n, static_cast<size_t>(std::max(1, threads)));
    if (width <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<size_t> cursor{0};
    std::exception_ptr first_error;
    std::mutex error_mu;
    std::vector<std::thread> pool;
    pool.reserve(width);
    const auto worker = [&]() {
        try {
            for (size_t i = cursor.fetch_add(1); i < n;
                 i = cursor.fetch_add(1))
                fn(i);
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(error_mu);
                if (first_error == nullptr)
                    first_error = std::current_exception();
            }
            cursor.store(n);  // stop siblings from starting new work
        }
    };
    try {
        for (size_t t = 0; t < width; ++t)
            pool.emplace_back(worker);
    } catch (...) {
        // Thread spawn failed (resource limits): the already-running
        // workers drain whatever the cursor hands them; stop new work,
        // join them, and report the spawn failure — never terminate().
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error == nullptr)
            first_error = std::current_exception();
        cursor.store(n);
    }
    for (auto& th : pool)
        th.join();
    if (first_error != nullptr)
        std::rethrow_exception(first_error);
}

}  // namespace gld
