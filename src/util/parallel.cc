#include "util/parallel.h"

#include "util/thread_pool.h"

namespace gld {

void
parallel_for_dynamic(size_t n, int threads,
                     const std::function<void(size_t)>& fn)
{
    ThreadPool::instance().run(
        n, threads, [&fn](size_t i, int /*slot*/) { fn(i); });
}

void
parallel_for_slots(size_t n, int threads,
                   const std::function<void(size_t, int)>& fn)
{
    ThreadPool::instance().run(n, threads, fn);
}

}  // namespace gld
