#ifndef GLD_UTIL_TABLE_H_
#define GLD_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace gld {

/**
 * Minimal markdown-style table printer used by the benchmark harness to emit
 * the paper's rows/series in a uniform, diffable format.
 */
class TablePrinter {
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    /** Appends a row; missing cells are padded, extras truncated. */
    void add_row(std::vector<std::string> cells);

    /** Convenience: formats doubles with the given precision. */
    static std::string fmt(double v, int precision = 4);
    /** Scientific notation, for LER-style numbers. */
    static std::string sci(double v, int precision = 2);

    /** Renders the table as github-flavoured markdown. */
    std::string to_string() const;

    /** Prints to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace gld

#endif  // GLD_UTIL_TABLE_H_
