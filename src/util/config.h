#ifndef GLD_UTIL_CONFIG_H_
#define GLD_UTIL_CONFIG_H_

#include <cstdint>

namespace gld {

/**
 * Environment-driven knobs shared by the benchmark harness.
 *
 * GLD_SHOTS_SCALE — multiplies every bench's default shot count (default 1).
 * GLD_THREADS    — caps worker threads (default: hardware concurrency).
 * (GLD_BACKEND, the simulation backend knob, is resolved by
 * backend_from_env() in src/sim/simulator.h — the env var names a
 * backend, so it belongs to the sim layer.)
 */
struct BenchConfig {
    /** Scales a default shot count by GLD_SHOTS_SCALE (min 1 shot). */
    static int shots(int base);
    /** Worker thread count honouring GLD_THREADS. */
    static int threads();
    /** The raw scale factor. */
    static double scale();
};

}  // namespace gld

#endif  // GLD_UTIL_CONFIG_H_
