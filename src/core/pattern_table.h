#ifndef GLD_CORE_PATTERN_TABLE_H_
#define GLD_CORE_PATTERN_TABLE_H_

#include <cstdint>
#include <vector>

#include "core/spec_model.h"

namespace gld {

/**
 * The output of GLADIATOR's offline stage: one leakage-flag lookup table
 * per data-qubit class (paper §4.2: "a lookup table of syndrome patterns
 * that strongly indicate leakage"), single-round (GLADIATOR) or two-round
 * (GLADIATOR-D) keyed.
 *
 * Recalibration to new noise (the adaptability story of §4.3) is simply
 * `build()` with updated NoiseParams: the graph structure is re-derived
 * from the same circuit, only the edge weights change.
 */
class PatternTableSet {
  public:
    /** Builds the tables for every class of `ctx`. */
    static PatternTableSet build(const CodeContext& ctx,
                                 const NoiseParams& np,
                                 const SpecModelOptions& opt,
                                 bool two_round);

    bool two_round() const { return two_round_; }

    /** Leak flag for a class's pattern key. */
    bool is_leak(int cls, uint32_t pattern_key) const
    {
        return tables_[cls][pattern_key] != 0;
    }

    /** Number of flagged patterns in a class's table. */
    int flagged_count(int cls) const;

    /** Pattern width (bits) of a class's table key. */
    int bits(int cls) const { return bits_[cls]; }

    const std::vector<uint8_t>& table(int cls) const { return tables_[cls]; }
    int n_classes() const { return static_cast<int>(tables_.size()); }

  private:
    bool two_round_ = false;
    std::vector<std::vector<uint8_t>> tables_;
    std::vector<int> bits_;
};

}  // namespace gld

#endif  // GLD_CORE_PATTERN_TABLE_H_
