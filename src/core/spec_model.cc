#include <cstddef>
#include "core/spec_model.h"

#include <cassert>

namespace gld {

namespace {

/** Does a `pauli` (0=X, 1=Z, 2=Y) on the data qubit flip a check of type t? */
bool
flips(int pauli, CheckType t)
{
    // X errors anticommute with Z stabilizers, Z with X, Y with both.
    if (pauli == 0)
        return t == CheckType::kZ;
    if (pauli == 1)
        return t == CheckType::kX;
    return true;
}

/** A deterministic non-leakage event: weight + per-round pattern flips. */
struct NlEvent {
    double w;
    uint32_t s1;  // round-r pattern (observed bits)
    uint32_t s2;  // round-(r+1) pattern; unused for single-round tables
};

/** Shared geometry of a pattern class used by both table flavours. */
struct ClassGeometry {
    int n_slots;
    int k;
    // Observed-bit index per physical slot (-1 if unobserved).
    std::vector<int> obs_index;

    explicit ClassGeometry(const PatternClass& cls)
        : n_slots(static_cast<int>(cls.slot_types.size())), k(cls.k_obs)
    {
        obs_index.assign(n_slots, -1);
        int idx = 0;
        for (int i = 0; i < n_slots; ++i) {
            if (cls.observed[i])
                obs_index[i] = idx++;
        }
        assert(idx == k);
    }

    /** Observed pattern of a Pauli onset at stage j (before slot j). */
    uint32_t
    onset(const PatternClass& cls, int pauli, int j) const
    {
        uint32_t pat = 0;
        for (int i = j; i < n_slots; ++i) {
            if (obs_index[i] >= 0 && flips(pauli, cls.slot_types[i]))
                pat |= 1u << obs_index[i];
        }
        return pat;
    }

    /** Mask of observed bits at slots >= j (leakage randomization zone). */
    uint32_t
    suffix_mask(int j) const
    {
        uint32_t m = 0;
        for (int i = j; i < n_slots; ++i) {
            if (obs_index[i] >= 0)
                m |= 1u << obs_index[i];
        }
        return m;
    }
};

/** Probability that the data qubit suffers the given Pauli at stage j. */
double
pauli_stage_weight(const NoiseParams& np, int j)
{
    if (j == 0)
        return np.p / 3.0;  // round-start depolarization marginal
    // Two-qubit depolarizing after the CNOT at slot j-1: 4 of the 15
    // non-identity pairs put each given Pauli on the data operand.
    return 4.0 * np.p / 15.0;
}

/** Probability that the slot's measurement record m_r flips (one round). */
double
mr_flip_weight(const PatternClass& cls, const NoiseParams& np, int slot)
{
    double w = np.p;  // readout flip
    w += np.p;        // reset/init flip on the ancilla
    // Gate marginals on the ancilla across all of the check's CNOTs: 8 of
    // 15 two-qubit Paulis carry a measurement-flipping component.
    w += (8.0 * np.p / 15.0) * cls.check_weights[slot];
    if (cls.slot_types[slot] == CheckType::kX)
        w += 2.0 * np.p / 3.0;  // Hadamard depolarizing (2 H gates)
    return w;
}

/** Iterates all submasks of `mask`, calling f(sub). */
template <typename F>
void
for_each_submask(uint32_t mask, F&& f)
{
    uint32_t sub = mask;
    while (true) {
        f(sub);
        if (sub == 0)
            break;
        sub = (sub - 1) & mask;
    }
}

void
add_second_order(const std::vector<NlEvent>& events, int shift,
                 std::vector<double>* w_nonleak)
{
    for (size_t a = 0; a < events.size(); ++a) {
        for (size_t b = a + 1; b < events.size(); ++b) {
            const uint32_t key = ((events[a].s1 ^ events[b].s1) << shift) |
                                 (events[a].s2 ^ events[b].s2);
            (*w_nonleak)[key] += events[a].w * events[b].w;
        }
    }
}

}  // namespace

PatternWeights
SpecModel::single_round(const PatternClass& cls, const NoiseParams& np,
                        const SpecModelOptions& opt)
{
    const ClassGeometry g(cls);
    PatternWeights out;
    out.bits = g.k;
    out.w_leak.assign(1u << g.k, 0.0);
    out.w_nonleak.assign(1u << g.k, 0.0);

    // --- First-order non-leakage events. ---
    std::vector<NlEvent> events;
    for (int pauli = 0; pauli < 3; ++pauli) {
        const uint32_t full = g.onset(cls, pauli, 0);
        for (int j = 0; j <= g.n_slots; ++j) {
            const double w = pauli_stage_weight(np, j);
            const uint32_t o = g.onset(cls, pauli, j);
            if (o != 0)
                events.push_back({w, o, 0});
            if (opt.include_prior_tails) {
                // The residue a round-(r-1) stage-j error leaves in this
                // round's detectors.
                const uint32_t tail = full ^ o;
                if (tail != 0)
                    events.push_back({w, tail, 0});
            }
        }
    }
    for (int i = 0; i < g.n_slots; ++i) {
        if (g.obs_index[i] < 0)
            continue;
        // Current-round record flip + previous-round readout flip both
        // toggle exactly this detector bit.
        const double w = mr_flip_weight(cls, np, i) + np.p;
        events.push_back({w, 1u << g.obs_index[i], 0});
    }
    for (const NlEvent& e : events)
        out.w_nonleak[e.s1] += e.w;
    if (opt.max_order >= 2)
        add_second_order(events, 0, &out.w_nonleak);

    // Not-my-leakage: a leaked neighbour (or slot ancilla) randomizes only
    // the shared bits; those patterns belong to the neighbour's (or the
    // MLR's) mitigation path, so they weight the non-leakage super-edge.
    const double pi_n = np.pl() * opt.neighbor_leak_lifetime;
    for (uint32_t mask : cls.neighbor_masks) {
        const double share =
            pi_n / static_cast<double>(1u << __builtin_popcount(mask));
        for_each_submask(mask,
                         [&](uint32_t sub) { out.w_nonleak[sub] += share; });
    }

    // --- Leakage events. ---
    const double pl = np.pl();
    for (int j = 0; j <= g.n_slots; ++j) {
        // Onset before slot j (environment at j = 0, gate-induced later):
        // every later slot's CNOT malfunctions, flipping its bit with
        // probability 1/2 -> uniform over the suffix submasks.
        const uint32_t zone = g.suffix_mask(j);
        const int m = __builtin_popcount(zone);
        const double share = pl / static_cast<double>(1u << m);
        for_each_submask(zone,
                         [&](uint32_t sub) { out.w_leak[sub] += share; });
    }
    // Persistent leakage carried in from earlier rounds randomizes every
    // observed bit.
    const double pi = pl * opt.persist_lifetime;
    const double share = pi / static_cast<double>(1u << g.k);
    for (uint32_t s = 0; s < (1u << g.k); ++s)
        out.w_leak[s] += share;
    return out;
}

PatternWeights
SpecModel::two_round(const PatternClass& cls, const NoiseParams& np,
                     const SpecModelOptions& opt)
{
    const ClassGeometry g(cls);
    const int k = g.k;
    PatternWeights out;
    out.bits = 2 * k;
    out.w_leak.assign(1u << (2 * k), 0.0);
    out.w_nonleak.assign(1u << (2 * k), 0.0);
    auto key = [k](uint32_t s1, uint32_t s2) { return (s1 << k) | s2; };

    // --- First-order non-leakage events. ---
    std::vector<NlEvent> events;
    for (int pauli = 0; pauli < 3; ++pauli) {
        const uint32_t full = g.onset(cls, pauli, 0);
        for (int j = 0; j <= g.n_slots; ++j) {
            const double w = pauli_stage_weight(np, j);
            const uint32_t o = g.onset(cls, pauli, j);
            // Onset in round r: partial pattern now, complement next round.
            if ((o | (full ^ o)) != 0)
                events.push_back({w, o, full ^ o});
            // Onset in round r+1: partial pattern in the second half.
            if (o != 0)
                events.push_back({w, 0, o});
            // Tail of a round-(r-1) onset sliding into the window.
            if ((full ^ o) != 0)
                events.push_back({w, full ^ o, 0});
        }
    }
    for (int i = 0; i < g.n_slots; ++i) {
        if (g.obs_index[i] < 0)
            continue;
        const uint32_t e = 1u << g.obs_index[i];
        const double w_mr = mr_flip_weight(cls, np, i);
        events.push_back({w_mr, e, e});  // record flip in round r
        events.push_back({np.p, e, 0});  // round-(r-1) readout flip
        events.push_back({w_mr, 0, e});  // record flip in round r+1
    }
    for (const NlEvent& e : events)
        out.w_nonleak[key(e.s1, e.s2)] += e.w;
    if (opt.max_order >= 2)
        add_second_order(events, k, &out.w_nonleak);

    // Not-my-leakage (see single_round): a persistently leaked neighbour
    // randomizes its shared bits in BOTH rounds of the window.
    const double pi_n = np.pl() * opt.neighbor_leak_lifetime;
    for (uint32_t mask : cls.neighbor_masks) {
        const int pc = __builtin_popcount(mask);
        const double share = pi_n / static_cast<double>(1u << (2 * pc));
        for_each_submask(mask, [&](uint32_t s1) {
            for_each_submask(mask, [&](uint32_t s2) {
                out.w_nonleak[key(s1, s2)] += share;
            });
        });
    }

    // --- Leakage events. ---
    const double pl = np.pl();
    const uint32_t all = (1u << k) - 1;
    for (int j = 0; j <= g.n_slots; ++j) {
        const uint32_t zone = g.suffix_mask(j);
        const int m = __builtin_popcount(zone);
        // Onset in round r: suffix-random now, fully random next round
        // (the qubit is still leaked).
        const double share_r = pl / static_cast<double>(1u << (m + k));
        for_each_submask(zone, [&](uint32_t s1) {
            for (uint32_t s2 = 0; s2 <= all; ++s2)
                out.w_leak[key(s1, s2)] += share_r;
        });
        // Onset in round r+1: quiet first half, suffix-random second half.
        const double share_n = pl / static_cast<double>(1u << m);
        for_each_submask(zone, [&](uint32_t s2) {
            out.w_leak[key(0, s2)] += share_n;
        });
    }
    const double pi = pl * opt.persist_lifetime;
    const double share = pi / static_cast<double>(1u << (2 * k));
    for (uint32_t s = 0; s < (1u << (2 * k)); ++s)
        out.w_leak[s] += share;
    return out;
}

std::vector<uint8_t>
SpecModel::label(const PatternWeights& w, double threshold)
{
    std::vector<uint8_t> flags(w.w_leak.size(), 0);
    for (size_t s = 1; s < w.w_leak.size(); ++s)
        flags[s] = w.w_leak[s] > threshold * w.w_nonleak[s] ? 1 : 0;
    return flags;
}

}  // namespace gld
