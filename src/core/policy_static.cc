#include "core/policy_static.h"

#include "circuit/schedule.h"

namespace gld {

void
AlwaysLrcPolicy::observe(int, const RoundResult&, LrcSchedule* out)
{
    out->clear();
    for (int q = 0; q < ctx_->code().n_data(); ++q)
        out->data_qubits.push_back(q);
    for (int c = 0; c < ctx_->code().n_checks(); ++c)
        out->checks.push_back(c);
}

StaggeredLrcPolicy::StaggeredLrcPolicy(const CodeContext& ctx) : ctx_(&ctx)
{
    const CssCode& code = ctx.code();
    const int n = code.n_qubits();
    // Conflict graph: qubits interacting through a common check — the
    // check's ancilla with each of its data qubits, and the data qubits of
    // a check pairwise ("adjacent or diagonally neighbouring", §3.5).
    std::vector<std::pair<int, int>> edges;
    for (int c = 0; c < code.n_checks(); ++c) {
        const auto& sup = code.check(c).support;
        const int anc = code.ancilla_of(c);
        for (size_t i = 0; i < sup.size(); ++i) {
            edges.emplace_back(anc, sup[i]);
            for (size_t j = i + 1; j < sup.size(); ++j)
                edges.emplace_back(sup[i], sup[j]);
        }
    }
    colors_ = GreedyVertexColoring::color(n, edges, &n_colors_);
}

void
StaggeredLrcPolicy::observe(int round, const RoundResult&, LrcSchedule* out)
{
    out->clear();
    // The group LRC'd at the START of round (round + 1).
    const int group = (round + 1) % n_colors_;
    const CssCode& code = ctx_->code();
    for (int q = 0; q < code.n_data(); ++q) {
        if (colors_[q] == group)
            out->data_qubits.push_back(q);
    }
    for (int c = 0; c < code.n_checks(); ++c) {
        if (colors_[code.ancilla_of(c)] == group)
            out->checks.push_back(c);
    }
}

}  // namespace gld
