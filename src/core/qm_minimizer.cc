#include <cstddef>
#include "core/qm_minimizer.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

namespace gld {

std::vector<Cube>
QmMinimizer::prime_implicants(int n, const std::vector<uint32_t>& minterms)
{
    // Iteratively combine implicants differing in exactly one cared bit.
    std::set<std::pair<uint32_t, uint32_t>> current;  // (value, dash_mask)
    for (uint32_t m : minterms)
        current.insert({m, 0});

    std::vector<Cube> primes;
    while (!current.empty()) {
        std::set<std::pair<uint32_t, uint32_t>> next;
        std::map<std::pair<uint32_t, uint32_t>, bool> combined;
        std::vector<std::pair<uint32_t, uint32_t>> items(current.begin(),
                                                         current.end());
        for (auto& it : items)
            combined[it] = false;
        // Group by (dash_mask, popcount) implicitly via pairwise scan —
        // fine for the <= 2^20 spaces used here since tables are small.
        for (size_t i = 0; i < items.size(); ++i) {
            for (size_t j = i + 1; j < items.size(); ++j) {
                if (items[i].second != items[j].second)
                    continue;
                const uint32_t diff = items[i].first ^ items[j].first;
                if (__builtin_popcount(diff) != 1)
                    continue;
                next.insert({items[i].first & ~diff,
                             items[i].second | diff});
                combined[items[i]] = true;
                combined[items[j]] = true;
            }
        }
        for (const auto& it : items) {
            if (!combined[it])
                primes.push_back({it.first, it.second});
        }
        current = std::move(next);
    }
    (void)n;
    return primes;
}

std::vector<Cube>
QmMinimizer::minimize(int n, const std::vector<uint32_t>& onset,
                      const std::vector<uint32_t>& dontcare)
{
    assert(n >= 1 && n <= 20);
    if (onset.empty())
        return {};

    std::vector<uint32_t> all = onset;
    all.insert(all.end(), dontcare.begin(), dontcare.end());
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());

    std::vector<Cube> primes = prime_implicants(n, all);

    // Cover only the real onset (don't-cares need no cover).
    std::vector<uint32_t> need = onset;
    std::sort(need.begin(), need.end());
    need.erase(std::unique(need.begin(), need.end()), need.end());

    // cover[m] = prime indices covering minterm m.
    std::vector<std::vector<int>> cover(need.size());
    for (size_t p = 0; p < primes.size(); ++p) {
        for (size_t m = 0; m < need.size(); ++m) {
            if (primes[p].covers(need[m]))
                cover[m].push_back(static_cast<int>(p));
        }
    }

    std::vector<Cube> chosen;
    std::vector<char> covered(need.size(), 0);
    std::vector<char> used(primes.size(), 0);

    // Essential primes: minterms covered by exactly one prime.
    for (size_t m = 0; m < need.size(); ++m) {
        if (cover[m].size() == 1 && !used[cover[m][0]]) {
            used[cover[m][0]] = 1;
            chosen.push_back(primes[cover[m][0]]);
        }
    }
    for (size_t m = 0; m < need.size(); ++m) {
        for (int p : cover[m]) {
            if (used[p]) {
                covered[m] = 1;
                break;
            }
        }
    }

    // Greedy cover for the rest (Petrick's method is exponential; greedy
    // is within a log factor and matches practice).
    while (true) {
        int best = -1;
        int best_gain = 0;
        for (size_t p = 0; p < primes.size(); ++p) {
            if (used[p])
                continue;
            int gain = 0;
            for (size_t m = 0; m < need.size(); ++m) {
                if (!covered[m] && primes[p].covers(need[m]))
                    ++gain;
            }
            if (gain > best_gain) {
                best_gain = gain;
                best = static_cast<int>(p);
            }
        }
        if (best < 0)
            break;
        used[best] = 1;
        chosen.push_back(primes[best]);
        for (size_t m = 0; m < need.size(); ++m) {
            if (!covered[m] && primes[best].covers(need[m]))
                covered[m] = 1;
        }
    }
    return chosen;
}

bool
QmMinimizer::eval(const std::vector<Cube>& cubes, uint32_t x)
{
    for (const Cube& c : cubes) {
        if (c.covers(x))
            return true;
    }
    return false;
}

std::string
QmMinimizer::cube_to_string(const Cube& cube, int n)
{
    std::string s = "(";
    bool first = true;
    for (int i = 0; i < n; ++i) {
        if ((cube.dash_mask >> i) & 1u)
            continue;
        if (!first)
            s += " & ";
        first = false;
        if (!((cube.value >> i) & 1u))
            s += "!";
        s += "x" + std::to_string(i);
    }
    if (first)
        s += "1";  // the constant-true cube
    s += ")";
    return s;
}

std::string
QmMinimizer::to_string(const std::vector<Cube>& cubes, int n)
{
    if (cubes.empty())
        return "0";
    std::string s;
    for (size_t i = 0; i < cubes.size(); ++i) {
        if (i > 0)
            s += " | ";
        s += cube_to_string(cubes[i], n);
    }
    return s;
}

}  // namespace gld
