#ifndef GLD_CORE_MOBILITY_H_
#define GLD_CORE_MOBILITY_H_

#include "core/code_context.h"
#include "sim/frame_sim.h"

namespace gld {

/**
 * Leakage-mobility estimator (paper §7.6): combines GLADIATOR's speculative
 * data-qubit flags with the MLR signals of neighbouring ancillas.  The
 * conditional rate P(adjacent ancilla MLR-leaked | data qubit flagged)
 * grows with the device's leakage transport probability, so thresholding it
 * (calibrated at the 5% mobility boundary, after [13]) classifies the
 * device into the low-mobility regime (use open-loop / walking codes) or
 * the high-mobility regime (use closed-loop speculation).
 */
class MobilityEstimator {
  public:
    explicit MobilityEstimator(const CodeContext& ctx) : ctx_(&ctx) {}

    /**
     * Accumulates one round of evidence.
     * @param flagged_data data qubits speculated leaked this round.
     * @param rr           the round's result (for MLR flags).
     */
    void observe(const std::vector<int>& flagged_data, const RoundResult& rr);

    /** The measured conditional rate (0 if no evidence yet). */
    double conditional_rate() const
    {
        return flagged_ > 0 ? static_cast<double>(co_leaked_) /
                                  static_cast<double>(flagged_)
                            : 0.0;
    }
    long samples() const { return flagged_; }

    /** True if the estimate exceeds the calibrated decision threshold. */
    bool classify_high(double calibrated_threshold) const
    {
        return conditional_rate() > calibrated_threshold;
    }

    void reset()
    {
        flagged_ = 0;
        co_leaked_ = 0;
    }

  private:
    const CodeContext* ctx_;
    long flagged_ = 0;
    long co_leaked_ = 0;
};

}  // namespace gld

#endif  // GLD_CORE_MOBILITY_H_
