#ifndef GLD_CORE_POLICY_GLADIATOR_H_
#define GLD_CORE_POLICY_GLADIATOR_H_

#include <memory>

#include "core/pattern_table.h"
#include "core/policy.h"

namespace gld {

/**
 * GLADIATOR (paper §4): online stage of the graph-labeled speculation.
 * Each round, every data qubit's observed pattern is looked up in its
 * class's offline-built table; flagged patterns schedule an LRC for the
 * next round.  The +M variant also LRCs MLR-flagged ancillas.
 */
class GladiatorPolicy : public Policy {
  public:
    /**
     * @param tables single-round tables from PatternTableSet::build(...,
     *        two_round = false).
     */
    GladiatorPolicy(const CodeContext& ctx,
                    std::shared_ptr<const PatternTableSet> tables,
                    bool use_mlr);
    std::string name() const override
    {
        return use_mlr_ ? "GLADIATOR+M" : "GLADIATOR";
    }
    void observe(int round, const RoundResult& rr, LrcSchedule* out) override;

    /** The (possibly shared) offline tables driving this policy. */
    const std::shared_ptr<const PatternTableSet>& tables() const
    {
        return tables_;
    }

  private:
    const CodeContext* ctx_;
    std::shared_ptr<const PatternTableSet> tables_;
    bool use_mlr_;
};

/**
 * GLADIATOR-D (paper §5.2): deferred speculation over a sliding two-round
 * window.  The decision for a round uses the pair (previous round's
 * pattern, this round's pattern); Pauli faults leave deterministic
 * second-round signatures while leakage stays random, so deferral cuts
 * false positives — crucial for the information-poor color-code patterns.
 */
class GladiatorDPolicy : public Policy {
  public:
    /** @param tables two-round tables (two_round = true). */
    GladiatorDPolicy(const CodeContext& ctx,
                     std::shared_ptr<const PatternTableSet> tables,
                     bool use_mlr);
    std::string name() const override
    {
        return use_mlr_ ? "GLADIATOR-D+M" : "GLADIATOR-D";
    }
    void begin_shot() override;
    void observe(int round, const RoundResult& rr, LrcSchedule* out) override;

    /** The (possibly shared) offline tables driving this policy. */
    const std::shared_ptr<const PatternTableSet>& tables() const
    {
        return tables_;
    }

  private:
    const CodeContext* ctx_;
    std::shared_ptr<const PatternTableSet> tables_;
    bool use_mlr_;
    std::vector<uint32_t> prev_pattern_;
    std::vector<uint8_t> has_prev_;
};

}  // namespace gld

#endif  // GLD_CORE_POLICY_GLADIATOR_H_
