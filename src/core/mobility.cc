#include "core/mobility.h"

namespace gld {

void
MobilityEstimator::observe(const std::vector<int>& flagged_data,
                           const RoundResult& rr)
{
    for (int q : flagged_data) {
        ++flagged_;
        for (int c : ctx_->observed_checks(q)) {
            if (rr.mlr_flag[c]) {
                ++co_leaked_;
                break;
            }
        }
    }
}

}  // namespace gld
