#ifndef GLD_CORE_CODE_CONTEXT_H_
#define GLD_CORE_CODE_CONTEXT_H_

#include <cstdint>
#include <vector>

#include "circuit/round_circuit.h"
#include "codes/css_code.h"

namespace gld {

/** Which adjacent checks contribute bits to a data qubit's pattern. */
enum class PatternScope : uint8_t {
    kBothTypes,  ///< all adjacent checks (surface/HGP/BPC: 4/var/6-bit)
    kZOnly,      ///< Z-type checks only (self-dual codes: color, 1-3 bit)
};

/**
 * A class of data qubits sharing the same local circuit structure: the
 * time-ordered types of their CNOT slots, the observation mask (which slots'
 * checks contribute pattern bits) and the weights of the involved checks.
 * All qubits of a class share one speculation table (paper §4.4: "a single
 * sequence checker can be shared across multiple data qubits").
 */
struct PatternClass {
    std::vector<CheckType> slot_types;  ///< physical slots, time order
    std::vector<uint8_t> observed;      ///< 1 if the slot's bit is observed
    std::vector<int> check_weights;     ///< stabilizer weight per slot
    int k_obs = 0;                      ///< number of observed bits
    /**
     * Observed-bit masks randomized by the leakage of someone ELSE: one
     * mask per neighbouring data qubit (the bits of the checks it shares
     * with this qubit) and one single-bit mask per slot (the slot's own
     * ancilla).  These feed the non-leakage side of the graph — such
     * patterns should trigger the neighbour's (or the MLR's) mitigation,
     * not this qubit's.
     */
    std::vector<uint32_t> neighbor_masks;

    bool operator==(const PatternClass& o) const
    {
        return slot_types == o.slot_types && observed == o.observed &&
               check_weights == o.check_weights &&
               neighbor_masks == o.neighbor_masks;
    }
};

/**
 * Shared per-code context for speculation policies: the data-qubit pattern
 * classes, pattern extraction from detector vectors, and the ERASER
 * popcount thresholds.
 */
class CodeContext {
  public:
    CodeContext(const CssCode& code, const RoundCircuit& rc,
                PatternScope scope);

    const CssCode& code() const { return *code_; }
    const RoundCircuit& rc() const { return *rc_; }
    PatternScope scope() const { return scope_; }

    int n_classes() const { return static_cast<int>(classes_.size()); }
    const std::vector<PatternClass>& classes() const { return classes_; }
    int class_of(int data_qubit) const { return class_of_[data_qubit]; }

    /** Observed pattern width for a data qubit. */
    int degree_of(int data_qubit) const
    {
        return classes_[class_of_[data_qubit]].k_obs;
    }
    /** Widest observed pattern in the code. */
    int max_degree() const { return max_degree_; }

    /**
     * Extracts data qubit q's pattern from this round's detector bits.
     * Bit i of the result is the detector of the i-th observed slot in
     * time order.
     */
    uint32_t pattern_of(int q, const std::vector<uint8_t>& detector) const;

    /** Observed adjacent checks of q, in slot (time) order. */
    const std::vector<int>& observed_checks(int q) const
    {
        return observed_checks_[q];
    }

    /**
     * Default pattern scope for a code: kZOnly for self-dual codes (every
     * X-check support equals some Z-check support, e.g. color codes),
     * kBothTypes otherwise.
     */
    static PatternScope default_scope(const CssCode& code);

  private:
    const CssCode* code_;
    const RoundCircuit* rc_;
    PatternScope scope_;
    std::vector<PatternClass> classes_;
    std::vector<int> class_of_;
    std::vector<std::vector<int>> observed_checks_;
    int max_degree_ = 0;
};

}  // namespace gld

#endif  // GLD_CORE_CODE_CONTEXT_H_
