#ifndef GLD_CORE_POLICY_ERASER_H_
#define GLD_CORE_POLICY_ERASER_H_

#include "core/policy.h"

namespace gld {

/**
 * ERASER [Vittal+ MICRO'23], the prior closed-loop heuristic (paper §3.2):
 * a data qubit is flagged as leaked when at least 50% of its adjacent
 * syndrome bits flip in the current round (popcount >= ceil(k/2)); the +M
 * variant additionally LRCs MLR-flagged ancillas.
 *
 * On the surface code this flags 11/16 of the 4-bit patterns; on a color
 * code's 2-bit edge qubits it fires on ANY flip — the poor generalization
 * the paper dissects in §3.3.
 */
class EraserPolicy : public Policy {
  public:
    EraserPolicy(const CodeContext& ctx, bool use_mlr);
    std::string name() const override
    {
        return use_mlr_ ? "ERASER+M" : "ERASER";
    }
    void observe(int round, const RoundResult& rr, LrcSchedule* out) override;

    /** The popcount trigger threshold for a pattern of width k. */
    static int threshold(int k) { return (k + 1) / 2; }
    /** Number of k-bit patterns ERASER flags (e.g. 11 of 16 for k = 4). */
    static int flagged_count(int k);

  private:
    const CodeContext* ctx_;
    bool use_mlr_;
};

}  // namespace gld

#endif  // GLD_CORE_POLICY_ERASER_H_
