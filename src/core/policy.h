#ifndef GLD_CORE_POLICY_H_
#define GLD_CORE_POLICY_H_

#include <memory>
#include <string>

#include "core/code_context.h"
#include "sim/simulator.h"

namespace gld {

/**
 * A leakage-mitigation policy: after each QEC round it observes the round's
 * syndrome (and optionally the MLR leak flags) and schedules LRC gadgets to
 * be applied at the start of the NEXT round (the paper's closed-loop
 * semantics, Fig 2(c)).
 */
class Policy {
  public:
    virtual ~Policy() = default;

    virtual std::string name() const = 0;

    /** Resets per-shot state (histories, round counters). */
    virtual void begin_shot() {}

    /**
     * Consumes round `round`'s result and fills `out` with the LRCs to
     * apply before round `round + 1`.
     */
    virtual void observe(int round, const RoundResult& rr,
                         LrcSchedule* out) = 0;

    /**
     * Gives oracle policies read access to a ground-truth leak oracle.
     * Default: ignored.  The batch scheduler path calls this directly
     * with a per-lane oracle view — every lane's policy sees only its
     * own shot's truth.
     */
    virtual void set_leak_oracle(const LeakageOracle* /*oracle*/) {}

    /**
     * Convenience overload for the scalar path: forwards the simulator's
     * ground-truth oracle (any backend behind the Simulator interface).
     */
    void set_oracle(const Simulator* sim)
    {
        set_leak_oracle(sim != nullptr ? &sim->leak_oracle() : nullptr);
    }
};

/**
 * IDEAL: oracle speculation — LRCs exactly the currently-leaked qubits.
 * Still pays LRC gadget noise; the paper's Fig 10/14 lower bound.
 */
class IdealPolicy : public Policy {
  public:
    explicit IdealPolicy(const CodeContext& ctx) : ctx_(&ctx) {}
    std::string name() const override { return "IDEAL"; }
    void set_leak_oracle(const LeakageOracle* oracle) override
    {
        oracle_ = oracle;
    }
    void observe(int round, const RoundResult& rr,
                 LrcSchedule* out) override;

  private:
    const CodeContext* ctx_;
    const LeakageOracle* oracle_ = nullptr;  ///< the shared driver's truth
};

/**
 * M (MLR-only): no syndrome speculation; LRCs only the ancillas whose
 * multi-level readout flags leakage (Table 2's "M" column).  Data-qubit
 * leakage is never serviced — the paper's motivation for speculation.
 */
class MlrOnlyPolicy : public Policy {
  public:
    explicit MlrOnlyPolicy(const CodeContext& ctx) : ctx_(&ctx) {}
    std::string name() const override { return "M"; }
    void observe(int round, const RoundResult& rr,
                 LrcSchedule* out) override;

  private:
    const CodeContext* ctx_;
};

/** Appends MLR-flagged ancillas to the schedule (the "+M" suffix). */
void append_mlr_checks(const RoundResult& rr, LrcSchedule* out);

}  // namespace gld

#endif  // GLD_CORE_POLICY_H_
