#include "core/code_context.h"

#include <algorithm>
#include <map>
#include <set>

namespace gld {

CodeContext::CodeContext(const CssCode& code, const RoundCircuit& rc,
                         PatternScope scope)
    : code_(&code), rc_(&rc), scope_(scope)
{
    const int n = code.n_data();
    class_of_.assign(n, -1);
    observed_checks_.assign(n, {});
    for (int q = 0; q < n; ++q) {
        PatternClass cls;
        for (const SlotRef& s : rc.slots_of(q)) {
            cls.slot_types.push_back(s.type);
            const bool obs = scope == PatternScope::kBothTypes ||
                             s.type == CheckType::kZ;
            cls.observed.push_back(obs ? 1 : 0);
            cls.check_weights.push_back(
                static_cast<int>(code.check(s.check).support.size()));
            if (obs)
                observed_checks_[q].push_back(s.check);
        }
        cls.k_obs = static_cast<int>(observed_checks_[q].size());
        max_degree_ = std::max(max_degree_, cls.k_obs);

        // Neighbour-leakage masks: which of q's observed bits a leaked
        // neighbour (or a leaked slot ancilla) would randomize.
        std::map<int, uint32_t> by_neighbor;
        for (size_t i = 0; i < observed_checks_[q].size(); ++i) {
            const int c = observed_checks_[q][i];
            for (int q2 : code.check(c).support) {
                if (q2 != q)
                    by_neighbor[q2] |= 1u << i;
            }
            cls.neighbor_masks.push_back(1u << i);  // the slot's ancilla
        }
        for (const auto& [q2, mask] : by_neighbor)
            cls.neighbor_masks.push_back(mask);
        std::sort(cls.neighbor_masks.begin(), cls.neighbor_masks.end());

        auto it = std::find(classes_.begin(), classes_.end(), cls);
        if (it == classes_.end()) {
            classes_.push_back(cls);
            class_of_[q] = static_cast<int>(classes_.size()) - 1;
        } else {
            class_of_[q] = static_cast<int>(it - classes_.begin());
        }
    }
}

uint32_t
CodeContext::pattern_of(int q, const std::vector<uint8_t>& detector) const
{
    uint32_t pat = 0;
    const auto& checks = observed_checks_[q];
    for (size_t i = 0; i < checks.size(); ++i) {
        if (detector[checks[i]])
            pat |= 1u << i;
    }
    return pat;
}

PatternScope
CodeContext::default_scope(const CssCode& code)
{
    // Self-dual detection: every X-check support appears as a Z-check
    // support (each face measures both types, as in color codes).
    std::set<std::vector<int>> z_supports;
    bool has_x = false;
    for (const auto& c : code.checks()) {
        if (c.type == CheckType::kZ)
            z_supports.insert(c.support);
    }
    for (const auto& c : code.checks()) {
        if (c.type == CheckType::kX) {
            has_x = true;
            if (z_supports.find(c.support) == z_supports.end())
                return PatternScope::kBothTypes;
        }
    }
    return has_x ? PatternScope::kZOnly : PatternScope::kBothTypes;
}

}  // namespace gld
