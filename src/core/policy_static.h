#ifndef GLD_CORE_POLICY_STATIC_H_
#define GLD_CORE_POLICY_STATIC_H_

#include "core/policy.h"

namespace gld {

/** NO-LRC: never mitigates; leakage accumulates (Fig 12's diverging curve). */
class NoLrcPolicy : public Policy {
  public:
    std::string name() const override { return "NO-LRC"; }
    void observe(int, const RoundResult&, LrcSchedule* out) override
    {
        out->clear();
    }
};

/**
 * Always-LRC: open-loop, LRCs every qubit every round (ERASER's original
 * baseline, §3.2).
 */
class AlwaysLrcPolicy : public Policy {
  public:
    explicit AlwaysLrcPolicy(const CodeContext& ctx) : ctx_(&ctx) {}
    std::string name() const override { return "Always-LRC"; }
    void observe(int, const RoundResult&, LrcSchedule* out) override;

  private:
    const CodeContext* ctx_;
};

/**
 * Staggered Always-LRC (paper §3.5, this paper's structured open-loop
 * baseline): qubits are colored so that no two qubits sharing a check (or
 * neighbouring through one) share a color, and each color group is LRC'd
 * round-robin.  Spatial staggering avoids the correlated faults of
 * Always-LRC while keeping open-loop simplicity.
 */
class StaggeredLrcPolicy : public Policy {
  public:
    explicit StaggeredLrcPolicy(const CodeContext& ctx);
    std::string name() const override { return "Staggered"; }
    void observe(int round, const RoundResult&, LrcSchedule* out) override;

    int n_colors() const { return n_colors_; }
    /** Color group per qubit (data [0,n_data), ancillas after). */
    const std::vector<int>& colors() const { return colors_; }

  private:
    const CodeContext* ctx_;
    std::vector<int> colors_;
    int n_colors_ = 0;
};

}  // namespace gld

#endif  // GLD_CORE_POLICY_STATIC_H_
