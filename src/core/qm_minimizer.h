#ifndef GLD_CORE_QM_MINIMIZER_H_
#define GLD_CORE_QM_MINIMIZER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gld {

/**
 * A product term (cube) over n boolean variables: bit positions NOT in
 * `dash_mask` are fixed to the corresponding bit of `value`.
 */
struct Cube {
    uint32_t value;
    uint32_t dash_mask;  ///< 1 = variable eliminated ("don't care")

    bool covers(uint32_t x) const
    {
        return ((x ^ value) & ~dash_mask) == 0;
    }
};

/**
 * Quine-McCluskey two-level Boolean minimization with essential-prime
 * selection and greedy cover, the paper's Appendix B.1 methodology
 * ("symbolic Boolean minimization... compact DNF expressions"), here used
 * to generate the sequence-checker logic and its LUT cost.
 */
class QmMinimizer {
  public:
    /**
     * Minimizes the function over n variables.
     * @param n         number of variables (<= 20).
     * @param onset     minterms where the function is 1.
     * @param dontcare  minterms that may be either value.
     * @return a minimal-ish set of prime implicants covering the onset.
     */
    static std::vector<Cube> minimize(
        int n, const std::vector<uint32_t>& onset,
        const std::vector<uint32_t>& dontcare = {});

    /** Evaluates the DNF at input x. */
    static bool eval(const std::vector<Cube>& cubes, uint32_t x);

    /**
     * Renders a cube as the paper's notation, e.g. "(x0 & x2 & !x3)".
     * Variable x_i is input bit i.
     */
    static std::string cube_to_string(const Cube& cube, int n);

    /** Renders a full DNF expression. */
    static std::string to_string(const std::vector<Cube>& cubes, int n);

  private:
    static std::vector<Cube> prime_implicants(
        int n, const std::vector<uint32_t>& minterms);
};

}  // namespace gld

#endif  // GLD_CORE_QM_MINIMIZER_H_
