#include <cstddef>
#include "core/policy_gladiator.h"

namespace gld {

GladiatorPolicy::GladiatorPolicy(
    const CodeContext& ctx, std::shared_ptr<const PatternTableSet> tables,
    bool use_mlr)
    : ctx_(&ctx), tables_(std::move(tables)), use_mlr_(use_mlr)
{
}

void
GladiatorPolicy::observe(int round, const RoundResult& rr, LrcSchedule* out)
{
    (void)round;
    out->clear();
    for (int q = 0; q < ctx_->code().n_data(); ++q) {
        const int cls = ctx_->class_of(q);
        if (ctx_->degree_of(q) == 0)
            continue;
        const uint32_t pat = ctx_->pattern_of(q, rr.detector);
        if (tables_->is_leak(cls, pat))
            out->data_qubits.push_back(q);
    }
    if (use_mlr_)
        append_mlr_checks(rr, out);
}

GladiatorDPolicy::GladiatorDPolicy(
    const CodeContext& ctx, std::shared_ptr<const PatternTableSet> tables,
    bool use_mlr)
    : ctx_(&ctx), tables_(std::move(tables)), use_mlr_(use_mlr)
{
    prev_pattern_.assign(ctx.code().n_data(), 0);
    has_prev_.assign(ctx.code().n_data(), 0);
}

void
GladiatorDPolicy::begin_shot()
{
    std::fill(prev_pattern_.begin(), prev_pattern_.end(), 0);
    std::fill(has_prev_.begin(), has_prev_.end(), 0);
}

void
GladiatorDPolicy::observe(int round, const RoundResult& rr, LrcSchedule* out)
{
    (void)round;
    out->clear();
    for (int q = 0; q < ctx_->code().n_data(); ++q) {
        const int k = ctx_->degree_of(q);
        if (k == 0)
            continue;
        const uint32_t pat = ctx_->pattern_of(q, rr.detector);
        if (has_prev_[q]) {
            const uint32_t key = (prev_pattern_[q] << k) | pat;
            const int cls = ctx_->class_of(q);
            if (tables_->is_leak(cls, key)) {
                out->data_qubits.push_back(q);
                // The post-LRC window restarts: syndromes around the gadget
                // are transient and must not seed the next decision.
                has_prev_[q] = 0;
                continue;
            }
        }
        prev_pattern_[q] = pat;
        has_prev_[q] = 1;
    }
    if (use_mlr_)
        append_mlr_checks(rr, out);
}

}  // namespace gld
