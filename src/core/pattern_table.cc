#include "core/pattern_table.h"

namespace gld {

PatternTableSet
PatternTableSet::build(const CodeContext& ctx, const NoiseParams& np,
                       const SpecModelOptions& opt, bool two_round)
{
    PatternTableSet out;
    out.two_round_ = two_round;
    for (const PatternClass& cls : ctx.classes()) {
        const PatternWeights w = two_round
                                     ? SpecModel::two_round(cls, np, opt)
                                     : SpecModel::single_round(cls, np, opt);
        out.tables_.push_back(SpecModel::label(w, opt.threshold));
        out.bits_.push_back(w.bits);
    }
    return out;
}

int
PatternTableSet::flagged_count(int cls) const
{
    int n = 0;
    for (uint8_t f : tables_[cls])
        n += f;
    return n;
}

}  // namespace gld
