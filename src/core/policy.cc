#include "core/policy.h"

namespace gld {

void
append_mlr_checks(const RoundResult& rr, LrcSchedule* out)
{
    for (size_t c = 0; c < rr.mlr_flag.size(); ++c) {
        if (rr.mlr_flag[c])
            out->checks.push_back(static_cast<int>(c));
    }
}

void
IdealPolicy::observe(int round, const RoundResult& rr, LrcSchedule* out)
{
    (void)round;
    (void)rr;
    out->clear();
    if (oracle_ == nullptr)
        return;
    for (int q = 0; q < ctx_->code().n_data(); ++q) {
        if (oracle_->data_leaked(q))
            out->data_qubits.push_back(q);
    }
    for (int c = 0; c < ctx_->code().n_checks(); ++c) {
        if (oracle_->check_leaked(c))
            out->checks.push_back(c);
    }
}

void
MlrOnlyPolicy::observe(int round, const RoundResult& rr, LrcSchedule* out)
{
    (void)round;
    out->clear();
    append_mlr_checks(rr, out);
}

}  // namespace gld
