#include "core/policy_eraser.h"

namespace gld {

EraserPolicy::EraserPolicy(const CodeContext& ctx, bool use_mlr)
    : ctx_(&ctx), use_mlr_(use_mlr)
{
}

int
EraserPolicy::flagged_count(int k)
{
    int n = 0;
    for (uint32_t s = 0; s < (1u << k); ++s) {
        if (__builtin_popcount(s) >= threshold(k))
            ++n;
    }
    return n;
}

void
EraserPolicy::observe(int round, const RoundResult& rr, LrcSchedule* out)
{
    (void)round;
    out->clear();
    for (int q = 0; q < ctx_->code().n_data(); ++q) {
        const int k = ctx_->degree_of(q);
        if (k == 0)
            continue;
        const uint32_t pat = ctx_->pattern_of(q, rr.detector);
        if (__builtin_popcount(pat) >= threshold(k))
            out->data_qubits.push_back(q);
    }
    if (use_mlr_)
        append_mlr_checks(rr, out);
}

}  // namespace gld
