#ifndef GLD_CORE_SPEC_MODEL_H_
#define GLD_CORE_SPEC_MODEL_H_

#include <cstdint>
#include <vector>

#include "core/code_context.h"
#include "noise/noise_model.h"

namespace gld {

/** Tuning knobs of the offline GLADIATOR graph model (paper §4.2). */
struct SpecModelOptions {
    /**
     * Labeling threshold θ: a pattern is flagged as leakage iff
     * W_L > θ * W_NL (paper: "greater by a threshold factor").  The
     * default trades a little of the false-positive headroom back for
     * sensitivity (8-9/16 bulk patterns flagged, the paper's §1 count).
     */
    double threshold = 0.25;
    /**
     * Prior on persistent (not-yet-mitigated) leakage, expressed as an
     * expected leaked lifetime in rounds: π = pl * persist_lifetime.
     * This is the calibration hook that adapts the model to the observed
     * leakage population.  The default matches the paper's design target
     * of classifying leakage "within two rounds from the occurrence"
     * (§4.2 footnote); the ablation bench sweeps it.
     */
    double persist_lifetime = 10.0;
    /**
     * Include the round-(r-1) Pauli "tail" signatures (the complement
     * pattern a previous-round error leaves in this round's detectors) in
     * the single-round non-leakage graph.  Default off — matches the
     * paper's single-round exposition; swept by the ablation bench.
     */
    bool include_prior_tails = false;
    /** Highest order of combined non-leakage events modeled (1 or 2). */
    int max_order = 2;
    /**
     * Prior lifetime (rounds) for leakage of a NEIGHBOURING qubit or the
     * slot's ancilla.  Such leakage randomizes only the shared bits and
     * should trigger the neighbour's own mitigation (or the MLR path),
     * so it counts on the non-leakage side of this qubit's graph.  Kept
     * short by default: the neighbour's own full-width signature catches
     * it quickly.
     */
    double neighbor_leak_lifetime = 0.5;
};

/**
 * Accumulated transition weights onto each syndrome-pattern node: the
 * leakage super-edge W_L and non-leakage super-edge W_NL of Fig 6(c).
 * `bits` is k for single-round tables and 2k for the two-round
 * (GLADIATOR-D) tables, where the two-round key is (s_r << k) | s_{r+1}.
 */
struct PatternWeights {
    int bits = 0;
    std::vector<double> w_leak;
    std::vector<double> w_nonleak;
};

/**
 * The offline stage of GLADIATOR: builds the code- and noise-aware
 * error-propagation graph for one data-qubit class and labels its pattern
 * nodes (paper §4.2).
 *
 * Events enumerated (weights from NoiseParams):
 *  - non-leakage, 1st order: X/Y/Z onsets on the data qubit at every
 *    inter-slot stage (round-start depolarization + per-CNOT marginals),
 *    propagated type-aware through the scheduled slots; single ancilla-bit
 *    flips (measurement, reset, gate marginals on the check's ancilla,
 *    previous-round measurement).
 *  - non-leakage, 2nd order: all pairs of the above.
 *  - leakage: onset before each slot (environment at stage 0, gate-induced
 *    at later stages) randomizing all later slots uniformly; persistent
 *    leakage from earlier rounds randomizing every observed bit.
 *
 * The two-round variant additionally models the deterministic second-round
 * signature of Pauli faults vs. the uniformly random second round of a
 * still-leaked qubit (Fig 6(d)) — the core of GLADIATOR-D.
 */
class SpecModel {
  public:
    static PatternWeights single_round(const PatternClass& cls,
                                       const NoiseParams& np,
                                       const SpecModelOptions& opt);

    static PatternWeights two_round(const PatternClass& cls,
                                    const NoiseParams& np,
                                    const SpecModelOptions& opt);

    /**
     * Labels nodes: flag[s] = (s != 0) && W_L(s) > threshold * W_NL(s).
     */
    static std::vector<uint8_t> label(const PatternWeights& w,
                                      double threshold);
};

}  // namespace gld

#endif  // GLD_CORE_SPEC_MODEL_H_
