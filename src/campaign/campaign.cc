#include "campaign/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <stdexcept>

#include "campaign/registry.h"
#include "hw/timing_model.h"
#include "io/serialize.h"
#include "sim/op_profile.h"
#include "util/config.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table.h"

namespace gld {
namespace campaign {

using io::Json;

// --- CampaignSpec. ---

uint64_t
CampaignSpec::job_seed(int index) const
{
    // One split stream per seed group off the campaign master: stable
    // under re-expansion and independent of the splits ExperimentRunner
    // later derives from the job seed itself (different master).  With
    // policy pairing, the group collapses the (innermost) policy
    // dimension so all policies at a grid point draw the same noise.
    const uint64_t group =
        pair_policy_seeds && !policies.empty()
            ? static_cast<uint64_t>(index) / policies.size()
            : static_cast<uint64_t>(index);
    return Rng(seed).split(group).next_u64();
}

std::vector<JobSpec>
CampaignSpec::expand() const
{
    if (codes.empty() || policies.empty() || noise.empty())
        throw std::runtime_error("campaign \"" + name + "\": codes, "
                                 "policies and noise must all be non-empty");
    std::vector<JobSpec> jobs;
    jobs.reserve(codes.size() * noise.size() * policies.size());
    int index = 0;
    for (const std::string& code : codes) {
        for (const NoiseParams& np : noise) {
            for (const std::string& policy : policies) {
                JobSpec job;
                job.index = index;
                job.code = code;
                job.policy = policy;
                job.cfg.np = np;
                job.cfg.rounds = rounds;
                job.cfg.shots = shots;
                job.cfg.seed = job_seed(index);
                job.cfg.leakage_sampling = leakage_sampling;
                job.cfg.compute_ler = compute_ler;
                job.cfg.record_dlp_series = record_dlp_series;
                job.cfg.rng_streams = rng_streams;
                job.cfg.backend = backend;
                job.cfg.batch_words = batch_words;
                job.cfg.noise_sampling = noise_sampling;
                jobs.push_back(std::move(job));
                ++index;
            }
        }
    }
    return jobs;
}

Json
CampaignSpec::to_json() const
{
    Json j = Json::object();
    j.set("gld_version", Json::integer(io::kSerializeVersion));
    j.set("name", Json::str(name));
    j.set("seed", Json::str(io::u64_to_hex(seed)));
    j.set("shots", Json::integer(shots));
    j.set("rounds", Json::integer(rounds));
    j.set("rng_streams", Json::integer(rng_streams));
    j.set("leakage_sampling", Json::boolean(leakage_sampling));
    j.set("compute_ler", Json::boolean(compute_ler));
    j.set("record_dlp_series", Json::boolean(record_dlp_series));
    j.set("pair_policy_seeds", Json::boolean(pair_policy_seeds));
    j.set("backend", Json::str(backend_name(backend)));
    // Only serialized when != 1, like ExperimentConfig: absence == 1, so
    // existing spec files and their job config hashes are untouched.
    if (batch_words != 1)
        j.set("batch_words", Json::integer(batch_words));
    if (noise_sampling != NoiseSampling::kLockstep)
        j.set("noise_sampling",
              Json::str(noise_sampling_name(noise_sampling)));
    Json jc = Json::array();
    for (const std::string& c : codes)
        jc.push(Json::str(c));
    j.set("codes", std::move(jc));
    Json jp = Json::array();
    for (const std::string& p : policies)
        jp.push(Json::str(p));
    j.set("policies", std::move(jp));
    Json jn = Json::array();
    for (const NoiseParams& np : noise)
        jn.push(io::noise_to_json(np));
    j.set("noise", std::move(jn));
    return j;
}

CampaignSpec
CampaignSpec::from_json(const Json& j)
{
    const int64_t v = j["gld_version"].as_int();
    if (v < 1 || v > io::kSerializeVersion)
        throw std::runtime_error("CampaignSpec: unsupported gld_version " +
                                 std::to_string(v));
    CampaignSpec spec;
    spec.name = j["name"].as_str();
    spec.seed = io::u64_from_hex(j["seed"].as_str());
    spec.shots = static_cast<int>(j["shots"].as_int());
    spec.rounds = static_cast<int>(j["rounds"].as_int());
    spec.rng_streams = static_cast<int>(j["rng_streams"].as_int());
    spec.leakage_sampling = j["leakage_sampling"].as_bool();
    spec.compute_ler = j["compute_ler"].as_bool();
    spec.record_dlp_series = j["record_dlp_series"].as_bool();
    spec.pair_policy_seeds = j["pair_policy_seeds"].as_bool();
    spec.backend = j.has("backend")
                       ? backend_from_name(j["backend"].as_str())
                       : SimBackend::kFrame;  // version-1 specs
    spec.batch_words = j.has("batch_words")
                           ? static_cast<int>(j["batch_words"].as_int())
                           : 1;
    spec.noise_sampling =
        j.has("noise_sampling")
            ? noise_sampling_from_name(j["noise_sampling"].as_str())
            : NoiseSampling::kLockstep;
    spec.codes.clear();
    const Json& jc = j["codes"];
    for (size_t i = 0; i < jc.size(); ++i)
        spec.codes.push_back(jc.at(i).as_str());
    const Json& jp = j["policies"];
    for (size_t i = 0; i < jp.size(); ++i)
        spec.policies.push_back(jp.at(i).as_str());
    const Json& jn = j["noise"];
    for (size_t i = 0; i < jn.size(); ++i)
        spec.noise.push_back(io::noise_from_json(jn.at(i)));
    return spec;
}

void
CampaignSpec::validate() const
{
    const std::vector<JobSpec> jobs = expand();  // checks non-empty dims
    for (const std::string& code : codes)
        make_code(code);  // throws on bad family/distance
    for (const std::string& policy : policies)
        make_policy(policy, noise.front());  // throws on bad name
    (void)jobs;
}

// --- Cost model. ---

double
job_cost_units(const JobSpec& job, int n_qubits, long shots)
{
    return static_cast<double>(shots) *
           static_cast<double>(job.cfg.rounds) *
           backend_cost_factor(job.cfg.backend, n_qubits);
}

// --- Calibration. ---

double
Calibration::rate(const std::string& backend, const std::string& code,
                  int batch_words) const
{
    const auto it = rates.find(key(backend, code, batch_words));
    if (it == rates.end())
        throw std::runtime_error(
            "calibration: no measured rate for \"" +
            key(backend, code, batch_words) +
            "\" (run the campaign with telemetry, then "
            "`gld_campaign calibrate`)");
    return it->second;
}

Json
Calibration::to_json() const
{
    Json j = Json::object();
    j.set("gld_version", Json::integer(io::kSerializeVersion));
    Json jr = Json::object();
    for (const auto& kv : rates)
        jr.set(kv.first, Json::number(kv.second));
    j.set("shots_per_second", std::move(jr));
    return j;
}

Calibration
Calibration::from_json(const Json& j)
{
    const int64_t v = j["gld_version"].as_int();
    if (v < 1 || v > io::kSerializeVersion)
        throw std::runtime_error("Calibration: unsupported gld_version " +
                                 std::to_string(v));
    Calibration cal;
    for (const auto& kv : j["shots_per_second"].items()) {
        const double rate = kv.second.as_double();
        if (!(rate > 0.0))
            throw std::runtime_error("Calibration: rate for \"" + kv.first +
                                     "\" must be positive");
        cal.rates[kv.first] = rate;
    }
    return cal;
}

Calibration
Calibration::from_telemetry(const CampaignSpec& spec, int n_shards,
                            const std::string& out_dir)
{
    ShardPlan::validate(0, n_shards);
    struct Sum {
        double shots = 0.0;
        double seconds = 0.0;
    };
    std::map<std::string, Sum> sums;
    for (const JobSpec& job : spec.expand()) {
        const std::string want_hash =
            io::u64_to_hex(io::config_hash(job.cfg));
        for (int shard = 0; shard < n_shards; ++shard) {
            const std::string path =
                telemetry_path(out_dir, spec, job.index, shard, n_shards);
            if (!io::file_exists(path))
                continue;
            try {
                const Json j = Json::parse(io::read_file(path));
                if (j["config_hash"].as_str() != want_hash)
                    continue;  // stale telemetry: never calibrate on it
                Sum& s = sums[key(backend_name(job.cfg.backend), job.code,
                                  job.cfg.batch_words)];
                s.shots += static_cast<double>(j["shots"].as_int());
                s.seconds +=
                    static_cast<double>(j["wall_ns"].as_int()) * 1e-9;
            } catch (const std::exception&) {
                continue;  // garbled file: skip, like resume does
            }
        }
    }
    Calibration cal;
    for (const auto& kv : sums) {
        if (kv.second.shots > 0.0 && kv.second.seconds > 0.0)
            cal.rates[kv.first] = kv.second.shots / kv.second.seconds;
    }
    if (cal.rates.empty())
        throw std::runtime_error(
            "calibrate: no telemetry found for campaign \"" + spec.name +
            "\" in " + out_dir + " (run with telemetry enabled first)");
    return cal;
}

// --- ShardPlan. ---

void
ShardPlan::validate(int shard, int n_shards)
{
    if (n_shards < 1)
        throw std::runtime_error("shard plan: n_shards must be >= 1");
    if (shard < 0 || shard >= n_shards)
        throw std::runtime_error("shard plan: shard index " +
                                 std::to_string(shard) + " outside [0, " +
                                 std::to_string(n_shards) + ")");
}

std::vector<int>
ShardPlan::streams_for(const ExperimentConfig& cfg, int shard, int n_shards)
{
    validate(shard, n_shards);
    std::vector<int> streams;
    const int total = ExperimentRunner::n_streams(cfg);
    for (int s = shard; s < total; s += n_shards)
        streams.push_back(s);
    return streams;
}

// --- CampaignPlan (greedy LPT over per-stream cost units). ---

CampaignPlan
CampaignPlan::build(
    const CampaignSpec& spec, int n_shards,
    std::map<std::string, std::shared_ptr<const CodeInstance>>* codes,
    const Calibration* calib)
{
    if (calib != nullptr && calib->empty())
        calib = nullptr;
    ShardPlan::validate(0, n_shards);
    const std::vector<JobSpec> jobs = spec.expand();

    CampaignPlan plan;
    plan.streams.assign(jobs.size(),
                        std::vector<std::vector<int>>(
                            static_cast<size_t>(n_shards)));
    plan.shard_cost_units.assign(static_cast<size_t>(n_shards), 0.0);
    plan.shard_shots.assign(static_cast<size_t>(n_shards), 0);
    plan.job_qubits.assign(jobs.size(), 0);

    // One code build per distinct spec string for the qubit counts; the
    // instances are handed to the caller (when asked) rather than
    // discarded, so run_shard's executed jobs reuse them.
    std::map<std::string, std::shared_ptr<const CodeInstance>> built;
    for (size_t j = 0; j < jobs.size(); ++j) {
        auto it = built.find(jobs[j].code);
        if (it == built.end()) {
            it = built
                     .emplace(jobs[j].code,
                              std::shared_ptr<const CodeInstance>(
                                  make_code(jobs[j].code)))
                     .first;
        }
        plan.job_qubits[j] = it->second->code.n_qubits();
    }
    if (codes != nullptr)
        *codes = std::move(built);

    // Work items: one per (job, stream), weighted by that stream's cost.
    struct Item {
        double cost;
        long shots;
        int job;
        int stream;
    };
    std::vector<Item> items;
    for (size_t j = 0; j < jobs.size(); ++j) {
        const ExperimentConfig& cfg = jobs[j].cfg;
        // Cost per shot: analytic rounds x backend factor by default;
        // with a calibration, measured wall seconds (1 / shots-per-
        // second) — same LPT, honest units.  rate() throws on a missing
        // (backend, batch width, code) key, so a partial calibration
        // never silently half-applies.
        const double per_shot =
            calib != nullptr
                ? 1.0 / calib->rate(backend_name(cfg.backend), jobs[j].code,
                                    cfg.batch_words)
                : static_cast<double>(cfg.rounds) *
                      backend_cost_factor(cfg.backend, plan.job_qubits[j]);
        const int total = ExperimentRunner::n_streams(cfg);
        for (int s = 0; s < total; ++s) {
            const long shots = ExperimentRunner::stream_shots(cfg, s);
            items.push_back({static_cast<double>(shots) * per_shot, shots,
                             static_cast<int>(j), s});
        }
    }

    // LPT: descending cost; (job, stream) ascending breaks cost ties so
    // the order — and with it the whole plan — is a pure function of the
    // spec.  Greedy target: the lightest shard, lowest index on ties.
    std::stable_sort(items.begin(), items.end(),
                     [](const Item& a, const Item& b) {
                         if (a.cost != b.cost)
                             return a.cost > b.cost;
                         if (a.job != b.job)
                             return a.job < b.job;
                         return a.stream < b.stream;
                     });
    for (const Item& item : items) {
        int best = 0;
        for (int sh = 1; sh < n_shards; ++sh) {
            if (plan.shard_cost_units[static_cast<size_t>(sh)] <
                plan.shard_cost_units[static_cast<size_t>(best)])
                best = sh;
        }
        plan.streams[static_cast<size_t>(item.job)]
                    [static_cast<size_t>(best)]
                        .push_back(item.stream);
        plan.shard_cost_units[static_cast<size_t>(best)] += item.cost;
        plan.shard_shots[static_cast<size_t>(best)] += item.shots;
    }
    // Ascending stream ids per (job, shard): run_partials computes them
    // in request order, and sorted requests keep result files tidy.
    for (auto& per_job : plan.streams) {
        for (auto& ss : per_job)
            std::sort(ss.begin(), ss.end());
    }
    return plan;
}

// --- Result files. ---

namespace {

std::string
job_tag(const CampaignSpec& spec, int job_index)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), ".job%04d", job_index);
    return spec.name + buf;
}

}  // namespace

std::string
shard_result_path(const std::string& out_dir, const CampaignSpec& spec,
                  int job_index, int shard, int n_shards)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), ".shard%dof%d.json", shard, n_shards);
    return out_dir + "/" + job_tag(spec, job_index) + buf;
}

std::string
merged_result_path(const std::string& out_dir, const CampaignSpec& spec,
                   int job_index)
{
    return out_dir + "/" + job_tag(spec, job_index) + ".merged.json";
}

std::string
telemetry_path(const std::string& out_dir, const CampaignSpec& spec,
               int job_index, int shard, int n_shards)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), ".shard%dof%d.telemetry.json", shard,
                  n_shards);
    return out_dir + "/" + job_tag(spec, job_index) + buf;
}

std::string
progress_path(const std::string& out_dir, const CampaignSpec& spec,
              int shard, int n_shards)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), ".progress.shard%dof%d.jsonl", shard,
                  n_shards);
    return out_dir + "/" + spec.name + buf;
}

std::string
heatmap_path(const std::string& out_dir, const CampaignSpec& spec,
             int job_index)
{
    return out_dir + "/" + job_tag(spec, job_index) + ".heatmap.json";
}

// --- run_shard. ---

namespace {

/** True if `path` holds a completed, up-to-date shard result. */
bool
shard_result_valid(const std::string& path, const CampaignSpec& spec,
                   const JobSpec& job, int shard, int n_shards,
                   const std::vector<int>& want_streams)
{
    if (!io::file_exists(path))
        return false;
    try {
        const Json j = Json::parse(io::read_file(path));
        if (j["gld_version"].as_int() != io::kSerializeVersion)
            return false;
        // The config hash covers ExperimentConfig only; code and policy
        // live beside it in the JobSpec (and, with paired seeds, jobs at
        // one grid point have IDENTICAL configs), so identity must be
        // checked explicitly or an edited spec resumes mislabeled
        // results.
        if (j["campaign"].as_str() != spec.name ||
            j["code"].as_str() != job.code ||
            j["policy"].as_str() != job.policy)
            return false;
        if (j["config_hash"].as_str() !=
            io::u64_to_hex(io::config_hash(job.cfg)))
            return false;
        if (j["shard"].as_int() != shard || j["n_shards"].as_int() != n_shards)
            return false;
        // The expected stream set comes from the (deterministic) campaign
        // plan: a file produced under a different plan — e.g. the old
        // round-robin partition or a changed cost model — lists different
        // stream ids and is recomputed.
        const Json& jstreams = j["streams"];
        if (jstreams.size() != want_streams.size())
            return false;
        for (size_t i = 0; i < jstreams.size(); ++i) {
            if (jstreams.at(i)["stream"].as_int() != want_streams[i])
                return false;
        }
        return true;
    } catch (const std::exception&) {
        return false;  // unreadable/garbled: recompute
    }
}

/** Wall clock for heartbeats/throughput (never result-affecting). */
uint64_t
wall_now_ns()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Shard-level liveness aggregator: job workers report cumulative shot
 * counts (from their collectors' on_block hooks) and completed jobs'
 * stage times; the tracker appends throttled heartbeat lines to the
 * shard's progress JSONL — the `gld_campaign status` feed.  One writer
 * per (shard, run): the file is truncated at construction, and every
 * line is a complete JSON object.
 */
class ProgressTracker {
  public:
    ProgressTracker(std::string path, int shard, int n_shards,
                    int64_t jobs_total, int64_t shots_total)
        : path_(std::move(path)), shard_(shard), n_shards_(n_shards),
          jobs_total_(jobs_total), shots_total_(shots_total),
          start_ns_(wall_now_ns())
    {
        io::write_file_atomic(path_, "");  // fresh stream per run
        std::lock_guard<std::mutex> lk(mu_);
        emit(true);
    }

    /** A job's collector reported `cumulative` shots recorded so far. */
    void report_job_shots(int job_index, uint64_t cumulative)
    {
        std::lock_guard<std::mutex> lk(mu_);
        uint64_t& cur = job_shots_[job_index];
        if (cumulative > cur) {
            shots_done_ += cumulative - cur;
            cur = cumulative;
        }
        emit(false);
    }

    /**
     * A job finished.  Resumed jobs never report shots (nothing ran), so
     * their planned shard shots count as done here; `rec` carries an
     * executed job's stage times (null for resumed jobs).
     */
    void job_finished(int job_index, bool resumed, uint64_t planned_shots,
                      const telemetry::Record* rec)
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (resumed) {
            ++jobs_resumed_;
            shots_done_ += planned_shots;
        } else {
            // Belt and braces: make sure the full job is accounted even
            // if an on_block delivery raced the final merge.
            uint64_t& cur = job_shots_[job_index];
            if (planned_shots > cur) {
                shots_done_ += planned_shots - cur;
                cur = planned_shots;
            }
        }
        if (rec != nullptr) {
            for (int s = 0; s < telemetry::kStageCount; ++s)
                stage_ns_[s] += rec->stage_ns[s];
        }
        ++jobs_done_;
        emit(true);
    }

    /** Final heartbeat with done=true. */
    void finish()
    {
        std::lock_guard<std::mutex> lk(mu_);
        done_ = true;
        emit(true);
    }

  private:
    /** Emits a heartbeat line (call with mu_ held); throttled to one
     *  line per ~0.5 s unless forced (job boundaries, start, finish). */
    void emit(bool forced)
    {
        const uint64_t now = wall_now_ns();
        if (!forced && now - last_emit_ns_ < 500'000'000ull)
            return;
        last_emit_ns_ = now;
        const uint64_t wall = now - start_ns_;
        Json j = Json::object();
        j.set("shard", Json::integer(shard_));
        j.set("n_shards", Json::integer(n_shards_));
        j.set("jobs_done", Json::integer(jobs_done_));
        j.set("jobs_resumed", Json::integer(jobs_resumed_));
        j.set("jobs_total", Json::integer(jobs_total_));
        j.set("shots_done", Json::integer(static_cast<int64_t>(shots_done_)));
        j.set("shots_total", Json::integer(shots_total_));
        j.set("wall_ns", Json::integer(static_cast<int64_t>(wall)));
        j.set("shots_per_second",
              Json::number(wall > 0 ? static_cast<double>(shots_done_) /
                                          (static_cast<double>(wall) * 1e-9)
                                    : 0.0));
        Json js = Json::object();
        for (int s = 0; s < telemetry::kStageCount; ++s)
            js.set(telemetry::stage_name(s),
                   Json::integer(static_cast<int64_t>(stage_ns_[s])));
        j.set("stage_ns", std::move(js));
        j.set("done", Json::boolean(done_));
        io::append_line(path_, j.dump());
    }

    const std::string path_;
    const int shard_;
    const int n_shards_;
    const int64_t jobs_total_;
    const int64_t shots_total_;
    const uint64_t start_ns_;

    std::mutex mu_;
    std::map<int, uint64_t> job_shots_;  ///< cumulative per job
    uint64_t shots_done_ = 0;
    int64_t jobs_done_ = 0;
    int64_t jobs_resumed_ = 0;
    uint64_t stage_ns_[telemetry::kStageCount] = {0, 0, 0, 0};
    uint64_t last_emit_ns_ = 0;
    bool done_ = false;
};

}  // namespace

RunShardStats
run_shard(const CampaignSpec& spec, int shard, int n_shards,
          const std::string& out_dir, const RunShardOptions& opt)
{
    ShardPlan::validate(shard, n_shards);
    io::make_dirs(out_dir);
    const std::vector<JobSpec> jobs = spec.expand();
    // Cost-balanced stream->shard assignment, identical in every process
    // that runs this (spec, n_shards) — see CampaignPlan.  The codes the
    // plan built for its cost model are kept and shared below (they are
    // immutable once built; concurrent jobs only read them).
    std::map<std::string, std::shared_ptr<const CodeInstance>> codes;
    const CampaignPlan plan =
        CampaignPlan::build(spec, n_shards, &codes, opt.calibration);
    std::atomic<int> jobs_run{0};
    std::atomic<int> jobs_resumed{0};
    const int threads = opt.threads;
    const bool verbose = opt.verbose;
    const int jobs_parallel = opt.jobs_parallel;

    // Telemetry is a pure side channel end to end: with it off (or
    // compiled out) this function produces byte-identical result files
    // along the exact pre-telemetry code path.
    const bool use_telemetry = opt.telemetry && telemetry::kCompiledIn;
    std::unique_ptr<ProgressTracker> tracker;
    if (use_telemetry)
        tracker = std::make_unique<ProgressTracker>(
            progress_path(out_dir, spec, shard, n_shards), shard, n_shards,
            static_cast<int64_t>(jobs.size()),
            plan.shard_shots[static_cast<size_t>(shard)]);

    // Job workers and each job's runner loop all execute on the ONE
    // process-wide persistent pool (util/thread_pool.h), whose size is
    // the BenchConfig::threads() budget — so -j N with --threads unset
    // cannot oversubscribe no matter how the loops nest, and each job
    // may claim the FULL budget (idle pool workers help whichever job's
    // loop is live, instead of being statically fenced off by the old
    // budget division, which still oversubscribed via nested spawns).
    const int pool_size = std::max(
        1, std::min<int>(std::max(1, jobs_parallel),
                         static_cast<int>(jobs.size())));
    const int job_threads = threads > 0 ? threads : BenchConfig::threads();

    const auto run_one_job = [&](const JobSpec& job) {
        const std::vector<int>& streams =
            plan.streams_for(job.index, shard);
        const std::string path =
            shard_result_path(out_dir, spec, job.index, shard, n_shards);
        uint64_t planned_shots = 0;
        for (int s : streams)
            planned_shots += static_cast<uint64_t>(
                ExperimentRunner::stream_shots(job.cfg, s));
        if (shard_result_valid(path, spec, job, shard, n_shards, streams)) {
            jobs_resumed.fetch_add(1);
            if (tracker != nullptr)
                tracker->job_finished(job.index, /*resumed=*/true,
                                      planned_shots, nullptr);
            if (verbose)
                std::printf("  job %04d [%s / %s]: resume — result "
                            "up-to-date\n",
                            job.index, job.code.c_str(), job.policy.c_str());
            return;
        }

        std::vector<Metrics> parts;
        telemetry::Record rec;
        uint64_t job_wall_ns = 0;
        if (!streams.empty()) {
            // Shards the plan assigned no streams of this job: still
            // write the (empty) result file merge expects, but skip the
            // graph construction.  The code instance is the plan's own
            // build — never constructed twice per shard process.
            const std::shared_ptr<const CodeInstance> code =
                codes.at(job.code);
            ExperimentConfig cfg = job.cfg;
            cfg.threads = job_threads;
            ExperimentRunner runner(code->ctx, cfg);
            std::unique_ptr<telemetry::Collector> col;
            if (use_telemetry) {
                telemetry::Collector::Options copt;
                copt.heatmap = opt.heatmap;
                if (tracker != nullptr) {
                    ProgressTracker* t = tracker.get();
                    const int job_index = job.index;
                    copt.on_block = [t, job_index](uint64_t done) {
                        t->report_job_shots(job_index, done);
                    };
                }
                col = std::make_unique<telemetry::Collector>(std::move(copt));
                runner.set_telemetry(col.get());
            }
            const uint64_t t0 = wall_now_ns();
            parts = runner.run_partials(make_policy(job.policy, job.cfg.np),
                                        streams);
            job_wall_ns = wall_now_ns() - t0;
            if (col != nullptr)
                rec = col->merged();
        }

        Json j = Json::object();
        j.set("gld_version", Json::integer(io::kSerializeVersion));
        j.set("campaign", Json::str(spec.name));
        j.set("job", Json::integer(job.index));
        j.set("code", Json::str(job.code));
        j.set("policy", Json::str(job.policy));
        j.set("config_hash",
              Json::str(io::u64_to_hex(io::config_hash(job.cfg))));
        j.set("shard", Json::integer(shard));
        j.set("n_shards", Json::integer(n_shards));
        Json jstreams = Json::array();
        for (size_t i = 0; i < streams.size(); ++i) {
            Json entry = Json::object();
            entry.set("stream", Json::integer(streams[i]));
            entry.set("metrics", io::metrics_to_json(parts[i]));
            jstreams.push(std::move(entry));
        }
        j.set("streams", std::move(jstreams));
        io::write_file_atomic(path, j.dump(2) + "\n");

        if (use_telemetry) {
            // The job's telemetry export, beside its result file: run
            // identity + the merged record + a measured-vs-modeled round
            // time (the hw/ timing model priced against the sim stage).
            Json t = Json::object();
            t.set("gld_version", Json::integer(io::kSerializeVersion));
            t.set("campaign", Json::str(spec.name));
            t.set("job", Json::integer(job.index));
            t.set("code", Json::str(job.code));
            t.set("policy", Json::str(job.policy));
            t.set("backend", Json::str(backend_name(job.cfg.backend)));
            t.set("config_hash",
                  Json::str(io::u64_to_hex(io::config_hash(job.cfg))));
            t.set("shard", Json::integer(shard));
            t.set("n_shards", Json::integer(n_shards));
            const Json ex =
                telemetry::export_to_json(rec, job_wall_ns, job_threads);
            for (const auto& kv : ex.items())
                t.set(kv.first, kv.second);
            if (rec.rounds > 0) {
                const std::shared_ptr<const CodeInstance> code =
                    codes.at(job.code);
                const double measured_round_ns =
                    static_cast<double>(rec.stage_ns[telemetry::kSim]) /
                    static_cast<double>(rec.rounds);
                const RoundOpProfile prof = profile_round_ops(
                    code->ctx.code(), code->ctx.rc(), job.cfg.np,
                    LrcSchedule{});
                const TimingModel::ModelComparison cmp =
                    TimingModel().compare_round_ns(prof.quiet,
                                                   measured_round_ns);
                Json jm = Json::object();
                jm.set("modeled_round_ns", Json::number(cmp.modeled_ns));
                jm.set("measured_sim_ns_per_round",
                       Json::number(cmp.measured_ns));
                jm.set("measured_over_modeled", Json::number(cmp.ratio));
                t.set("timing_model", std::move(jm));
            }
            io::write_file_atomic(
                telemetry_path(out_dir, spec, job.index, shard, n_shards),
                t.dump(2) + "\n");
        }

        jobs_run.fetch_add(1);
        if (tracker != nullptr)
            tracker->job_finished(job.index, /*resumed=*/false,
                                  planned_shots,
                                  streams.empty() ? nullptr : &rec);
        if (verbose)
            std::printf("  job %04d [%s / %s]: ran %zu stream(s) -> %s\n",
                        job.index, job.code.c_str(), job.policy.c_str(),
                        streams.size(), path.c_str());
    };

    // Job-level worker pool (ROADMAP "campaign-level parallelism"): jobs
    // are independent — each builds its own code/runner and writes its own
    // result file — so a grid of many small jobs scales by running several
    // at once on top of each job's stream/block scheduler.  Results are
    // files keyed by job index; execution order cannot affect them, and
    // the first failing job's exception propagates to the caller.
    parallel_for_dynamic(jobs.size(), pool_size,
                         [&](size_t i) { run_one_job(jobs[i]); });

    if (tracker != nullptr)
        tracker->finish();

    RunShardStats stats;
    stats.jobs_run = jobs_run.load();
    stats.jobs_resumed = jobs_resumed.load();
    return stats;
}

RunShardStats
run_shard(const CampaignSpec& spec, int shard, int n_shards,
          const std::string& out_dir, int threads, bool verbose,
          int jobs_parallel)
{
    RunShardOptions opt;
    opt.threads = threads;
    opt.verbose = verbose;
    opt.jobs_parallel = jobs_parallel;
    opt.telemetry = false;  // the exact pre-telemetry behavior
    return run_shard(spec, shard, n_shards, out_dir, opt);
}

void
remove_results(const CampaignSpec& spec, int n_shards,
               const std::string& out_dir)
{
    for (const JobSpec& job : spec.expand()) {
        for (int shard = 0; shard < n_shards; ++shard) {
            std::remove(shard_result_path(out_dir, spec, job.index, shard,
                                          n_shards)
                            .c_str());
            std::remove(telemetry_path(out_dir, spec, job.index, shard,
                                       n_shards)
                            .c_str());
        }
        std::remove(merged_result_path(out_dir, spec, job.index).c_str());
        std::remove(heatmap_path(out_dir, spec, job.index).c_str());
    }
    for (int shard = 0; shard < n_shards; ++shard)
        std::remove(progress_path(out_dir, spec, shard, n_shards).c_str());
}

// --- merge. ---

std::vector<Metrics>
merge_campaign(const CampaignSpec& spec, int n_shards,
               const std::string& out_dir)
{
    if (n_shards < 1)
        throw std::runtime_error("merge: n_shards must be >= 1");
    std::vector<Metrics> merged;
    for (const JobSpec& job : spec.expand()) {
        const int total = ExperimentRunner::n_streams(job.cfg);
        const std::string want_hash = io::u64_to_hex(io::config_hash(job.cfg));
        std::vector<Metrics> parts(static_cast<size_t>(total));
        std::vector<uint8_t> seen(static_cast<size_t>(total), 0);

        for (int shard = 0; shard < n_shards; ++shard) {
            const std::string path =
                shard_result_path(out_dir, spec, job.index, shard, n_shards);
            if (!io::file_exists(path))
                throw std::runtime_error("merge: missing shard result " +
                                         path + " (run --shard " +
                                         std::to_string(shard) + "/" +
                                         std::to_string(n_shards) + " first)");
            const Json j = Json::parse(io::read_file(path));
            if (j["campaign"].as_str() != spec.name ||
                j["code"].as_str() != job.code ||
                j["policy"].as_str() != job.policy)
                throw std::runtime_error(
                    "merge: " + path + " belongs to a different job (" +
                    j["code"].as_str() + " / " + j["policy"].as_str() +
                    ", want " + job.code + " / " + job.policy +
                    "); re-run that shard");
            if (j["config_hash"].as_str() != want_hash)
                throw std::runtime_error(
                    "merge: " + path + " was produced under a different "
                    "config (hash " + j["config_hash"].as_str() +
                    ", want " + want_hash + "); re-run that shard");
            const Json& jstreams = j["streams"];
            for (size_t i = 0; i < jstreams.size(); ++i) {
                const Json& entry = jstreams.at(i);
                const int s = static_cast<int>(entry["stream"].as_int());
                if (s < 0 || s >= total)
                    throw std::runtime_error("merge: " + path +
                                             " contains out-of-range stream " +
                                             std::to_string(s));
                if (seen[static_cast<size_t>(s)])
                    throw std::runtime_error("merge: stream " +
                                             std::to_string(s) + " of job " +
                                             std::to_string(job.index) +
                                             " appears in two shard files");
                seen[static_cast<size_t>(s)] = 1;
                parts[static_cast<size_t>(s)] =
                    io::metrics_from_json(entry["metrics"]);
            }
        }
        for (int s = 0; s < total; ++s) {
            if (!seen[static_cast<size_t>(s)])
                throw std::runtime_error(
                    "merge: stream " + std::to_string(s) + " of job " +
                    std::to_string(job.index) + " missing from all shards");
        }

        // Ascending stream order — the exact summation order of run().
        Metrics m;
        if (total == 0)
            m.rounds_per_shot = job.cfg.rounds;
        for (const Metrics& part : parts)
            m.merge(part);

        Json out = Json::object();
        out.set("gld_version", Json::integer(io::kSerializeVersion));
        out.set("campaign", Json::str(spec.name));
        out.set("job", Json::integer(job.index));
        out.set("code", Json::str(job.code));
        out.set("policy", Json::str(job.policy));
        out.set("config_hash", Json::str(want_hash));
        out.set("n_shards", Json::integer(n_shards));
        out.set("metrics", io::metrics_to_json(m));
        io::write_file_atomic(merged_result_path(out_dir, spec, job.index),
                              out.dump(2) + "\n");
        merged.push_back(std::move(m));
    }
    return merged;
}

std::vector<Metrics>
load_merged(const CampaignSpec& spec, const std::string& out_dir)
{
    std::vector<Metrics> out;
    for (const JobSpec& job : spec.expand()) {
        const std::string path =
            merged_result_path(out_dir, spec, job.index);
        if (!io::file_exists(path))
            throw std::runtime_error("report: missing merged result " + path +
                                     " (run merge first)");
        const Json j = Json::parse(io::read_file(path));
        const std::string want_hash =
            io::u64_to_hex(io::config_hash(job.cfg));
        if (j["config_hash"].as_str() != want_hash)
            throw std::runtime_error("report: " + path +
                                     " is stale (config hash mismatch); "
                                     "re-run merge");
        out.push_back(io::metrics_from_json(j["metrics"]));
    }
    return out;
}

namespace {

/**
 * Per-job wall time + executed shots summed over every shard telemetry
 * file present for this (job, config); `found` false when no shard wrote
 * telemetry (columns print "-").
 */
struct JobTelemetrySummary {
    bool found = false;
    double wall_s = 0.0;
    uint64_t shots = 0;
};

JobTelemetrySummary
job_telemetry_summary(const CampaignSpec& spec, const JobSpec& job,
                      int n_shards, const std::string& out_dir)
{
    JobTelemetrySummary sum;
    const std::string want_hash = io::u64_to_hex(io::config_hash(job.cfg));
    for (int shard = 0; shard < n_shards; ++shard) {
        const std::string path =
            telemetry_path(out_dir, spec, job.index, shard, n_shards);
        if (!io::file_exists(path))
            continue;
        try {
            const Json j = Json::parse(io::read_file(path));
            if (j["config_hash"].as_str() != want_hash)
                continue;
            sum.found = true;
            sum.wall_s += static_cast<double>(j["wall_ns"].as_int()) * 1e-9;
            sum.shots += static_cast<uint64_t>(j["shots"].as_int());
        } catch (const std::exception&) {
            continue;
        }
    }
    return sum;
}

}  // namespace

void
print_report(const CampaignSpec& spec, const std::string& out_dir,
             int n_shards)
{
    const std::vector<JobSpec> jobs = spec.expand();
    const std::vector<Metrics> metrics = load_merged(spec, out_dir);
    const bool telem_cols = n_shards > 0;
    std::vector<std::string> header = {"Job", "Code", "Policy", "p", "lr",
                                       "FN/shot", "FP/shot", "LRC/shot",
                                       "DLP", "LER"};
    if (telem_cols) {
        header.push_back("Wall(s)");
        header.push_back("Shots/s");
    }
    TablePrinter t(header);
    for (size_t i = 0; i < jobs.size(); ++i) {
        const JobSpec& job = jobs[i];
        const Metrics& m = metrics[i];
        std::vector<std::string> row = {
            std::to_string(job.index), job.code, job.policy,
            TablePrinter::sci(job.cfg.np.p, 1),
            TablePrinter::fmt(job.cfg.np.leak_ratio, 2),
            TablePrinter::fmt(m.fn_per_shot(), 2),
            TablePrinter::fmt(m.fp_per_shot(), 2),
            TablePrinter::fmt(m.lrc_per_shot(), 2),
            TablePrinter::sci(m.dlp_mean(), 2),
            m.decoded_shots > 0 ? TablePrinter::sci(m.ler(), 2) : "-"};
        if (telem_cols) {
            const JobTelemetrySummary ts =
                job_telemetry_summary(spec, job, n_shards, out_dir);
            if (ts.found && ts.wall_s > 0.0) {
                row.push_back(TablePrinter::fmt(ts.wall_s, 2));
                row.push_back(TablePrinter::fmt(
                    static_cast<double>(ts.shots) / ts.wall_s, 0));
            } else {
                row.push_back("-");
                row.push_back("-");
            }
        }
        t.add_row(std::move(row));
    }
    t.print();
}

// --- Liveness (status). ---

std::vector<ShardProgress>
read_progress(const CampaignSpec& spec, int n_shards,
              const std::string& out_dir)
{
    ShardPlan::validate(0, n_shards);
    std::vector<ShardProgress> out;
    for (int shard = 0; shard < n_shards; ++shard) {
        ShardProgress p;
        p.shard = shard;
        const std::string path =
            progress_path(out_dir, spec, shard, n_shards);
        if (io::file_exists(path)) {
            // Last COMPLETE line wins: a line being appended right now
            // may be torn, so scan from the end for the first parseable
            // one.
            const std::string text = io::read_file(path);
            size_t end = text.size();
            while (end > 0 && !p.valid) {
                size_t begin = text.rfind('\n', end - 1);
                begin = begin == std::string::npos ? 0 : begin + 1;
                const std::string line = text.substr(begin, end - begin);
                if (!line.empty()) {
                    try {
                        const Json j = Json::parse(line);
                        p.valid = true;
                        p.done = j["done"].as_bool();
                        p.jobs_done = j["jobs_done"].as_int();
                        p.jobs_resumed = j["jobs_resumed"].as_int();
                        p.jobs_total = j["jobs_total"].as_int();
                        p.shots_done = j["shots_done"].as_int();
                        p.shots_total = j["shots_total"].as_int();
                        p.wall_ns =
                            static_cast<uint64_t>(j["wall_ns"].as_int());
                        p.shots_per_second =
                            j["shots_per_second"].as_double();
                        const Json& js = j["stage_ns"];
                        for (int s = 0; s < telemetry::kStageCount; ++s)
                            p.stage_ns[s] = static_cast<uint64_t>(
                                js[telemetry::stage_name(s)].as_int());
                    } catch (const std::exception&) {
                        p.valid = false;  // torn/garbled: try previous
                    }
                }
                end = begin == 0 ? 0 : begin - 1;
            }
        }
        out.push_back(p);
    }
    return out;
}

void
print_status(const CampaignSpec& spec, int n_shards,
             const std::string& out_dir)
{
    const std::vector<ShardProgress> progress =
        read_progress(spec, n_shards, out_dir);
    TablePrinter t({"Shard", "State", "Jobs", "Shots", "%", "Shots/s",
                    "Wall(s)"});
    int64_t shots_done = 0, shots_total = 0, jobs_done = 0, jobs_total = 0;
    uint64_t stage_ns[telemetry::kStageCount] = {0, 0, 0, 0};
    int reporting = 0;
    for (const ShardProgress& p : progress) {
        if (!p.valid) {
            t.add_row({std::to_string(p.shard), "no data", "-", "-", "-",
                       "-", "-"});
            continue;
        }
        ++reporting;
        shots_done += p.shots_done;
        shots_total += p.shots_total;
        jobs_done += p.jobs_done;
        jobs_total += p.jobs_total;
        for (int s = 0; s < telemetry::kStageCount; ++s)
            stage_ns[s] += p.stage_ns[s];
        const double pct =
            p.shots_total > 0 ? 100.0 * static_cast<double>(p.shots_done) /
                                    static_cast<double>(p.shots_total)
                              : 100.0;
        t.add_row({std::to_string(p.shard), p.done ? "done" : "running",
                   std::to_string(p.jobs_done) + "/" +
                       std::to_string(p.jobs_total),
                   std::to_string(p.shots_done) + "/" +
                       std::to_string(p.shots_total),
                   TablePrinter::fmt(pct, 1),
                   TablePrinter::fmt(p.shots_per_second, 0),
                   TablePrinter::fmt(static_cast<double>(p.wall_ns) * 1e-9,
                                     1)});
    }
    t.print();

    const double pct =
        shots_total > 0 ? 100.0 * static_cast<double>(shots_done) /
                              static_cast<double>(shots_total)
                        : 0.0;
    std::printf("fleet: %d/%d shard(s) reporting, jobs %lld/%lld, shots "
                "%lld/%lld (%.1f%%)\n",
                reporting, n_shards, static_cast<long long>(jobs_done),
                static_cast<long long>(jobs_total),
                static_cast<long long>(shots_done),
                static_cast<long long>(shots_total), pct);
    uint64_t total_ns = 0;
    for (int s = 0; s < telemetry::kStageCount; ++s)
        total_ns += stage_ns[s];
    if (total_ns > 0) {
        std::printf("stage split:");
        for (int s = 0; s < telemetry::kStageCount; ++s)
            std::printf(" %s %.1f%%", telemetry::stage_name(s),
                        100.0 * static_cast<double>(stage_ns[s]) /
                            static_cast<double>(total_ns));
        std::printf("\n");
    }
}

// --- Heatmaps. ---

telemetry::Heatmap
merge_job_heatmap(const CampaignSpec& spec, int n_shards,
                  const std::string& out_dir, int job_index)
{
    ShardPlan::validate(0, n_shards);
    const std::vector<JobSpec> jobs = spec.expand();
    if (job_index < 0 || job_index >= static_cast<int>(jobs.size()))
        throw std::runtime_error("heatmap: job index " +
                                 std::to_string(job_index) +
                                 " outside [0, " +
                                 std::to_string(jobs.size()) + ")");
    const JobSpec& job = jobs[static_cast<size_t>(job_index)];
    const std::string want_hash = io::u64_to_hex(io::config_hash(job.cfg));
    telemetry::Heatmap merged;
    bool found = false;
    for (int shard = 0; shard < n_shards; ++shard) {
        const std::string path =
            telemetry_path(out_dir, spec, job_index, shard, n_shards);
        if (!io::file_exists(path))
            continue;
        const Json j = Json::parse(io::read_file(path));
        if (j["config_hash"].as_str() != want_hash)
            throw std::runtime_error(
                "heatmap: " + path + " was produced under a different "
                "config (hash " + j["config_hash"].as_str() + ", want " +
                want_hash + "); re-run that shard");
        if (!j.has("heatmap"))
            continue;
        const telemetry::Heatmap h =
            telemetry::Heatmap::from_json(j["heatmap"]);
        if (!found) {
            merged = h;
            found = true;
        } else {
            merged.merge(h);
        }
    }
    if (!found)
        throw std::runtime_error(
            "heatmap: no shard telemetry carries a heatmap for job " +
            std::to_string(job_index) +
            " (run the campaign with --heatmap first)");
    return merged;
}

int
write_job_heatmaps(const CampaignSpec& spec, int n_shards,
                   const std::string& out_dir)
{
    const std::vector<JobSpec> jobs = spec.expand();
    int written = 0;
    for (const JobSpec& job : jobs) {
        telemetry::Heatmap h;
        try {
            h = merge_job_heatmap(spec, n_shards, out_dir, job.index);
        } catch (const std::exception&) {
            continue;  // no heatmap telemetry for this job
        }
        uint64_t leaked_qubit_rounds = 0;
        for (uint64_t c : h.counts)
            leaked_qubit_rounds += c;
        Json out = Json::object();
        out.set("gld_version", Json::integer(io::kSerializeVersion));
        out.set("campaign", Json::str(spec.name));
        out.set("job", Json::integer(job.index));
        out.set("code", Json::str(job.code));
        out.set("policy", Json::str(job.policy));
        out.set("config_hash",
                Json::str(io::u64_to_hex(io::config_hash(job.cfg))));
        out.set("n_shards", Json::integer(n_shards));
        out.set("heatmap", h.to_json());
        const std::string path = heatmap_path(out_dir, spec, job.index);
        io::write_file_atomic(path, out.dump(2) + "\n");
        std::printf("merged heatmap job %04d [%s / %s]: %d round(s) x %d "
                    "qubit(s), %llu leaked qubit-rounds -> %s\n",
                    job.index, job.code.c_str(), job.policy.c_str(),
                    h.rounds, h.n_qubits(),
                    static_cast<unsigned long long>(leaked_qubit_rounds),
                    path.c_str());
        ++written;
    }
    if (written == 0)
        throw std::runtime_error(
            "heatmap: no heatmap telemetry found for campaign \"" +
            spec.name + "\" in " + out_dir +
            " (run with --heatmap first)");
    return written;
}

}  // namespace campaign
}  // namespace gld
