#include "campaign/campaign.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "campaign/registry.h"
#include "io/serialize.h"
#include "util/config.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table.h"

namespace gld {
namespace campaign {

using io::Json;

// --- CampaignSpec. ---

uint64_t
CampaignSpec::job_seed(int index) const
{
    // One split stream per seed group off the campaign master: stable
    // under re-expansion and independent of the splits ExperimentRunner
    // later derives from the job seed itself (different master).  With
    // policy pairing, the group collapses the (innermost) policy
    // dimension so all policies at a grid point draw the same noise.
    const uint64_t group =
        pair_policy_seeds && !policies.empty()
            ? static_cast<uint64_t>(index) / policies.size()
            : static_cast<uint64_t>(index);
    return Rng(seed).split(group).next_u64();
}

std::vector<JobSpec>
CampaignSpec::expand() const
{
    if (codes.empty() || policies.empty() || noise.empty())
        throw std::runtime_error("campaign \"" + name + "\": codes, "
                                 "policies and noise must all be non-empty");
    std::vector<JobSpec> jobs;
    jobs.reserve(codes.size() * noise.size() * policies.size());
    int index = 0;
    for (const std::string& code : codes) {
        for (const NoiseParams& np : noise) {
            for (const std::string& policy : policies) {
                JobSpec job;
                job.index = index;
                job.code = code;
                job.policy = policy;
                job.cfg.np = np;
                job.cfg.rounds = rounds;
                job.cfg.shots = shots;
                job.cfg.seed = job_seed(index);
                job.cfg.leakage_sampling = leakage_sampling;
                job.cfg.compute_ler = compute_ler;
                job.cfg.record_dlp_series = record_dlp_series;
                job.cfg.rng_streams = rng_streams;
                job.cfg.backend = backend;
                jobs.push_back(std::move(job));
                ++index;
            }
        }
    }
    return jobs;
}

Json
CampaignSpec::to_json() const
{
    Json j = Json::object();
    j.set("gld_version", Json::integer(io::kSerializeVersion));
    j.set("name", Json::str(name));
    j.set("seed", Json::str(io::u64_to_hex(seed)));
    j.set("shots", Json::integer(shots));
    j.set("rounds", Json::integer(rounds));
    j.set("rng_streams", Json::integer(rng_streams));
    j.set("leakage_sampling", Json::boolean(leakage_sampling));
    j.set("compute_ler", Json::boolean(compute_ler));
    j.set("record_dlp_series", Json::boolean(record_dlp_series));
    j.set("pair_policy_seeds", Json::boolean(pair_policy_seeds));
    j.set("backend", Json::str(backend_name(backend)));
    Json jc = Json::array();
    for (const std::string& c : codes)
        jc.push(Json::str(c));
    j.set("codes", std::move(jc));
    Json jp = Json::array();
    for (const std::string& p : policies)
        jp.push(Json::str(p));
    j.set("policies", std::move(jp));
    Json jn = Json::array();
    for (const NoiseParams& np : noise)
        jn.push(io::noise_to_json(np));
    j.set("noise", std::move(jn));
    return j;
}

CampaignSpec
CampaignSpec::from_json(const Json& j)
{
    const int64_t v = j["gld_version"].as_int();
    if (v < 1 || v > io::kSerializeVersion)
        throw std::runtime_error("CampaignSpec: unsupported gld_version " +
                                 std::to_string(v));
    CampaignSpec spec;
    spec.name = j["name"].as_str();
    spec.seed = io::u64_from_hex(j["seed"].as_str());
    spec.shots = static_cast<int>(j["shots"].as_int());
    spec.rounds = static_cast<int>(j["rounds"].as_int());
    spec.rng_streams = static_cast<int>(j["rng_streams"].as_int());
    spec.leakage_sampling = j["leakage_sampling"].as_bool();
    spec.compute_ler = j["compute_ler"].as_bool();
    spec.record_dlp_series = j["record_dlp_series"].as_bool();
    spec.pair_policy_seeds = j["pair_policy_seeds"].as_bool();
    spec.backend = j.has("backend")
                       ? backend_from_name(j["backend"].as_str())
                       : SimBackend::kFrame;  // version-1 specs
    spec.codes.clear();
    const Json& jc = j["codes"];
    for (size_t i = 0; i < jc.size(); ++i)
        spec.codes.push_back(jc.at(i).as_str());
    const Json& jp = j["policies"];
    for (size_t i = 0; i < jp.size(); ++i)
        spec.policies.push_back(jp.at(i).as_str());
    const Json& jn = j["noise"];
    for (size_t i = 0; i < jn.size(); ++i)
        spec.noise.push_back(io::noise_from_json(jn.at(i)));
    return spec;
}

void
CampaignSpec::validate() const
{
    const std::vector<JobSpec> jobs = expand();  // checks non-empty dims
    for (const std::string& code : codes)
        make_code(code);  // throws on bad family/distance
    for (const std::string& policy : policies)
        make_policy(policy, noise.front());  // throws on bad name
    (void)jobs;
}

// --- Cost model. ---

double
job_cost_units(const JobSpec& job, int n_qubits, long shots)
{
    return static_cast<double>(shots) *
           static_cast<double>(job.cfg.rounds) *
           backend_cost_factor(job.cfg.backend, n_qubits);
}

// --- ShardPlan. ---

void
ShardPlan::validate(int shard, int n_shards)
{
    if (n_shards < 1)
        throw std::runtime_error("shard plan: n_shards must be >= 1");
    if (shard < 0 || shard >= n_shards)
        throw std::runtime_error("shard plan: shard index " +
                                 std::to_string(shard) + " outside [0, " +
                                 std::to_string(n_shards) + ")");
}

std::vector<int>
ShardPlan::streams_for(const ExperimentConfig& cfg, int shard, int n_shards)
{
    validate(shard, n_shards);
    std::vector<int> streams;
    const int total = ExperimentRunner::n_streams(cfg);
    for (int s = shard; s < total; s += n_shards)
        streams.push_back(s);
    return streams;
}

// --- CampaignPlan (greedy LPT over per-stream cost units). ---

CampaignPlan
CampaignPlan::build(
    const CampaignSpec& spec, int n_shards,
    std::map<std::string, std::shared_ptr<const CodeInstance>>* codes)
{
    ShardPlan::validate(0, n_shards);
    const std::vector<JobSpec> jobs = spec.expand();

    CampaignPlan plan;
    plan.streams.assign(jobs.size(),
                        std::vector<std::vector<int>>(
                            static_cast<size_t>(n_shards)));
    plan.shard_cost_units.assign(static_cast<size_t>(n_shards), 0.0);
    plan.shard_shots.assign(static_cast<size_t>(n_shards), 0);
    plan.job_qubits.assign(jobs.size(), 0);

    // One code build per distinct spec string for the qubit counts; the
    // instances are handed to the caller (when asked) rather than
    // discarded, so run_shard's executed jobs reuse them.
    std::map<std::string, std::shared_ptr<const CodeInstance>> built;
    for (size_t j = 0; j < jobs.size(); ++j) {
        auto it = built.find(jobs[j].code);
        if (it == built.end()) {
            it = built
                     .emplace(jobs[j].code,
                              std::shared_ptr<const CodeInstance>(
                                  make_code(jobs[j].code)))
                     .first;
        }
        plan.job_qubits[j] = it->second->code.n_qubits();
    }
    if (codes != nullptr)
        *codes = std::move(built);

    // Work items: one per (job, stream), weighted by that stream's cost.
    struct Item {
        double cost;
        long shots;
        int job;
        int stream;
    };
    std::vector<Item> items;
    for (size_t j = 0; j < jobs.size(); ++j) {
        const ExperimentConfig& cfg = jobs[j].cfg;
        const double factor =
            backend_cost_factor(cfg.backend, plan.job_qubits[j]);
        const int total = ExperimentRunner::n_streams(cfg);
        for (int s = 0; s < total; ++s) {
            const long shots = ExperimentRunner::stream_shots(cfg, s);
            items.push_back({static_cast<double>(shots) *
                                 static_cast<double>(cfg.rounds) * factor,
                             shots, static_cast<int>(j), s});
        }
    }

    // LPT: descending cost; (job, stream) ascending breaks cost ties so
    // the order — and with it the whole plan — is a pure function of the
    // spec.  Greedy target: the lightest shard, lowest index on ties.
    std::stable_sort(items.begin(), items.end(),
                     [](const Item& a, const Item& b) {
                         if (a.cost != b.cost)
                             return a.cost > b.cost;
                         if (a.job != b.job)
                             return a.job < b.job;
                         return a.stream < b.stream;
                     });
    for (const Item& item : items) {
        int best = 0;
        for (int sh = 1; sh < n_shards; ++sh) {
            if (plan.shard_cost_units[static_cast<size_t>(sh)] <
                plan.shard_cost_units[static_cast<size_t>(best)])
                best = sh;
        }
        plan.streams[static_cast<size_t>(item.job)]
                    [static_cast<size_t>(best)]
                        .push_back(item.stream);
        plan.shard_cost_units[static_cast<size_t>(best)] += item.cost;
        plan.shard_shots[static_cast<size_t>(best)] += item.shots;
    }
    // Ascending stream ids per (job, shard): run_partials computes them
    // in request order, and sorted requests keep result files tidy.
    for (auto& per_job : plan.streams) {
        for (auto& ss : per_job)
            std::sort(ss.begin(), ss.end());
    }
    return plan;
}

// --- Result files. ---

namespace {

std::string
job_tag(const CampaignSpec& spec, int job_index)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), ".job%04d", job_index);
    return spec.name + buf;
}

}  // namespace

std::string
shard_result_path(const std::string& out_dir, const CampaignSpec& spec,
                  int job_index, int shard, int n_shards)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), ".shard%dof%d.json", shard, n_shards);
    return out_dir + "/" + job_tag(spec, job_index) + buf;
}

std::string
merged_result_path(const std::string& out_dir, const CampaignSpec& spec,
                   int job_index)
{
    return out_dir + "/" + job_tag(spec, job_index) + ".merged.json";
}

// --- run_shard. ---

namespace {

/** True if `path` holds a completed, up-to-date shard result. */
bool
shard_result_valid(const std::string& path, const CampaignSpec& spec,
                   const JobSpec& job, int shard, int n_shards,
                   const std::vector<int>& want_streams)
{
    if (!io::file_exists(path))
        return false;
    try {
        const Json j = Json::parse(io::read_file(path));
        if (j["gld_version"].as_int() != io::kSerializeVersion)
            return false;
        // The config hash covers ExperimentConfig only; code and policy
        // live beside it in the JobSpec (and, with paired seeds, jobs at
        // one grid point have IDENTICAL configs), so identity must be
        // checked explicitly or an edited spec resumes mislabeled
        // results.
        if (j["campaign"].as_str() != spec.name ||
            j["code"].as_str() != job.code ||
            j["policy"].as_str() != job.policy)
            return false;
        if (j["config_hash"].as_str() !=
            io::u64_to_hex(io::config_hash(job.cfg)))
            return false;
        if (j["shard"].as_int() != shard || j["n_shards"].as_int() != n_shards)
            return false;
        // The expected stream set comes from the (deterministic) campaign
        // plan: a file produced under a different plan — e.g. the old
        // round-robin partition or a changed cost model — lists different
        // stream ids and is recomputed.
        const Json& jstreams = j["streams"];
        if (jstreams.size() != want_streams.size())
            return false;
        for (size_t i = 0; i < jstreams.size(); ++i) {
            if (jstreams.at(i)["stream"].as_int() != want_streams[i])
                return false;
        }
        return true;
    } catch (const std::exception&) {
        return false;  // unreadable/garbled: recompute
    }
}

}  // namespace

RunShardStats
run_shard(const CampaignSpec& spec, int shard, int n_shards,
          const std::string& out_dir, int threads, bool verbose,
          int jobs_parallel)
{
    ShardPlan::validate(shard, n_shards);
    io::make_dirs(out_dir);
    const std::vector<JobSpec> jobs = spec.expand();
    // Cost-balanced stream->shard assignment, identical in every process
    // that runs this (spec, n_shards) — see CampaignPlan.  The codes the
    // plan built for its cost model are kept and shared below (they are
    // immutable once built; concurrent jobs only read them).
    std::map<std::string, std::shared_ptr<const CodeInstance>> codes;
    const CampaignPlan plan = CampaignPlan::build(spec, n_shards, &codes);
    std::atomic<int> jobs_run{0};
    std::atomic<int> jobs_resumed{0};

    // Split the auto thread budget across job workers: -j N with
    // --threads unset must not oversubscribe N x hardware_concurrency.
    // (expand() guarantees >= 1 job; the outer max(1, ...) keeps the
    // budget division safe regardless.)
    const int pool_size = std::max(
        1, std::min<int>(std::max(1, jobs_parallel),
                         static_cast<int>(jobs.size())));
    const int job_threads =
        threads > 0 ? threads
                    : std::max(1, BenchConfig::threads() / pool_size);

    const auto run_one_job = [&](const JobSpec& job) {
        const std::vector<int>& streams =
            plan.streams_for(job.index, shard);
        const std::string path =
            shard_result_path(out_dir, spec, job.index, shard, n_shards);
        if (shard_result_valid(path, spec, job, shard, n_shards, streams)) {
            jobs_resumed.fetch_add(1);
            if (verbose)
                std::printf("  job %04d [%s / %s]: resume — result "
                            "up-to-date\n",
                            job.index, job.code.c_str(), job.policy.c_str());
            return;
        }

        std::vector<Metrics> parts;
        if (!streams.empty()) {
            // Shards the plan assigned no streams of this job: still
            // write the (empty) result file merge expects, but skip the
            // graph construction.  The code instance is the plan's own
            // build — never constructed twice per shard process.
            const std::shared_ptr<const CodeInstance> code =
                codes.at(job.code);
            ExperimentConfig cfg = job.cfg;
            cfg.threads = job_threads;
            const ExperimentRunner runner(code->ctx, cfg);
            parts = runner.run_partials(make_policy(job.policy, job.cfg.np),
                                        streams);
        }

        Json j = Json::object();
        j.set("gld_version", Json::integer(io::kSerializeVersion));
        j.set("campaign", Json::str(spec.name));
        j.set("job", Json::integer(job.index));
        j.set("code", Json::str(job.code));
        j.set("policy", Json::str(job.policy));
        j.set("config_hash",
              Json::str(io::u64_to_hex(io::config_hash(job.cfg))));
        j.set("shard", Json::integer(shard));
        j.set("n_shards", Json::integer(n_shards));
        Json jstreams = Json::array();
        for (size_t i = 0; i < streams.size(); ++i) {
            Json entry = Json::object();
            entry.set("stream", Json::integer(streams[i]));
            entry.set("metrics", io::metrics_to_json(parts[i]));
            jstreams.push(std::move(entry));
        }
        j.set("streams", std::move(jstreams));
        io::write_file_atomic(path, j.dump(2) + "\n");
        jobs_run.fetch_add(1);
        if (verbose)
            std::printf("  job %04d [%s / %s]: ran %zu stream(s) -> %s\n",
                        job.index, job.code.c_str(), job.policy.c_str(),
                        streams.size(), path.c_str());
    };

    // Job-level worker pool (ROADMAP "campaign-level parallelism"): jobs
    // are independent — each builds its own code/runner and writes its own
    // result file — so a grid of many small jobs scales by running several
    // at once on top of each job's stream/block scheduler.  Results are
    // files keyed by job index; execution order cannot affect them, and
    // the first failing job's exception propagates to the caller.
    parallel_for_dynamic(jobs.size(), pool_size,
                         [&](size_t i) { run_one_job(jobs[i]); });

    RunShardStats stats;
    stats.jobs_run = jobs_run.load();
    stats.jobs_resumed = jobs_resumed.load();
    return stats;
}

void
remove_results(const CampaignSpec& spec, int n_shards,
               const std::string& out_dir)
{
    for (const JobSpec& job : spec.expand()) {
        for (int shard = 0; shard < n_shards; ++shard)
            std::remove(shard_result_path(out_dir, spec, job.index, shard,
                                          n_shards)
                            .c_str());
        std::remove(merged_result_path(out_dir, spec, job.index).c_str());
    }
}

// --- merge. ---

std::vector<Metrics>
merge_campaign(const CampaignSpec& spec, int n_shards,
               const std::string& out_dir)
{
    if (n_shards < 1)
        throw std::runtime_error("merge: n_shards must be >= 1");
    std::vector<Metrics> merged;
    for (const JobSpec& job : spec.expand()) {
        const int total = ExperimentRunner::n_streams(job.cfg);
        const std::string want_hash = io::u64_to_hex(io::config_hash(job.cfg));
        std::vector<Metrics> parts(static_cast<size_t>(total));
        std::vector<uint8_t> seen(static_cast<size_t>(total), 0);

        for (int shard = 0; shard < n_shards; ++shard) {
            const std::string path =
                shard_result_path(out_dir, spec, job.index, shard, n_shards);
            if (!io::file_exists(path))
                throw std::runtime_error("merge: missing shard result " +
                                         path + " (run --shard " +
                                         std::to_string(shard) + "/" +
                                         std::to_string(n_shards) + " first)");
            const Json j = Json::parse(io::read_file(path));
            if (j["campaign"].as_str() != spec.name ||
                j["code"].as_str() != job.code ||
                j["policy"].as_str() != job.policy)
                throw std::runtime_error(
                    "merge: " + path + " belongs to a different job (" +
                    j["code"].as_str() + " / " + j["policy"].as_str() +
                    ", want " + job.code + " / " + job.policy +
                    "); re-run that shard");
            if (j["config_hash"].as_str() != want_hash)
                throw std::runtime_error(
                    "merge: " + path + " was produced under a different "
                    "config (hash " + j["config_hash"].as_str() +
                    ", want " + want_hash + "); re-run that shard");
            const Json& jstreams = j["streams"];
            for (size_t i = 0; i < jstreams.size(); ++i) {
                const Json& entry = jstreams.at(i);
                const int s = static_cast<int>(entry["stream"].as_int());
                if (s < 0 || s >= total)
                    throw std::runtime_error("merge: " + path +
                                             " contains out-of-range stream " +
                                             std::to_string(s));
                if (seen[static_cast<size_t>(s)])
                    throw std::runtime_error("merge: stream " +
                                             std::to_string(s) + " of job " +
                                             std::to_string(job.index) +
                                             " appears in two shard files");
                seen[static_cast<size_t>(s)] = 1;
                parts[static_cast<size_t>(s)] =
                    io::metrics_from_json(entry["metrics"]);
            }
        }
        for (int s = 0; s < total; ++s) {
            if (!seen[static_cast<size_t>(s)])
                throw std::runtime_error(
                    "merge: stream " + std::to_string(s) + " of job " +
                    std::to_string(job.index) + " missing from all shards");
        }

        // Ascending stream order — the exact summation order of run().
        Metrics m;
        if (total == 0)
            m.rounds_per_shot = job.cfg.rounds;
        for (const Metrics& part : parts)
            m.merge(part);

        Json out = Json::object();
        out.set("gld_version", Json::integer(io::kSerializeVersion));
        out.set("campaign", Json::str(spec.name));
        out.set("job", Json::integer(job.index));
        out.set("code", Json::str(job.code));
        out.set("policy", Json::str(job.policy));
        out.set("config_hash", Json::str(want_hash));
        out.set("n_shards", Json::integer(n_shards));
        out.set("metrics", io::metrics_to_json(m));
        io::write_file_atomic(merged_result_path(out_dir, spec, job.index),
                              out.dump(2) + "\n");
        merged.push_back(std::move(m));
    }
    return merged;
}

std::vector<Metrics>
load_merged(const CampaignSpec& spec, const std::string& out_dir)
{
    std::vector<Metrics> out;
    for (const JobSpec& job : spec.expand()) {
        const std::string path =
            merged_result_path(out_dir, spec, job.index);
        if (!io::file_exists(path))
            throw std::runtime_error("report: missing merged result " + path +
                                     " (run merge first)");
        const Json j = Json::parse(io::read_file(path));
        const std::string want_hash =
            io::u64_to_hex(io::config_hash(job.cfg));
        if (j["config_hash"].as_str() != want_hash)
            throw std::runtime_error("report: " + path +
                                     " is stale (config hash mismatch); "
                                     "re-run merge");
        out.push_back(io::metrics_from_json(j["metrics"]));
    }
    return out;
}

void
print_report(const CampaignSpec& spec, const std::string& out_dir)
{
    const std::vector<JobSpec> jobs = spec.expand();
    const std::vector<Metrics> metrics = load_merged(spec, out_dir);
    TablePrinter t({"Job", "Code", "Policy", "p", "lr", "FN/shot", "FP/shot",
                    "LRC/shot", "DLP", "LER"});
    for (size_t i = 0; i < jobs.size(); ++i) {
        const JobSpec& job = jobs[i];
        const Metrics& m = metrics[i];
        t.add_row({std::to_string(job.index), job.code, job.policy,
                   TablePrinter::sci(job.cfg.np.p, 1),
                   TablePrinter::fmt(job.cfg.np.leak_ratio, 2),
                   TablePrinter::fmt(m.fn_per_shot(), 2),
                   TablePrinter::fmt(m.fp_per_shot(), 2),
                   TablePrinter::fmt(m.lrc_per_shot(), 2),
                   TablePrinter::sci(m.dlp_mean(), 2),
                   m.decoded_shots > 0 ? TablePrinter::sci(m.ler(), 2) : "-"});
    }
    t.print();
}

}  // namespace campaign
}  // namespace gld
