#include "campaign/verify.h"

#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>

#include "campaign/registry.h"
#include "io/serialize.h"
#include "util/rng.h"
#include "util/table.h"

namespace gld {
namespace campaign {

using io::Json;

namespace {

std::string
arm_suffix(SimBackend backend, bool is_reference)
{
    return std::string(is_reference ? ".ref." : ".cand.") +
           backend_name(backend);
}

const char*
metric_trials_desc(const std::string& metric)
{
    if (metric == "ler")
        return "decoded shots";
    return "data-qubit-rounds";
}

}  // namespace

CampaignSpec
verify_arm_spec(const CampaignSpec& grid, SimBackend backend,
                bool is_reference, const VerifyOptions& opt)
{
    CampaignSpec arm = grid;
    arm.name = grid.name + arm_suffix(backend, is_reference);
    arm.backend = backend;
    if (!is_reference) {
        if (opt.independent_seeds) {
            // A fresh master seed per arm, derived from the grid seed and
            // the arm name: disjoint from the reference's streams and
            // stable across processes/resumes.
            arm.seed =
                Rng(grid.seed).split(io::fnv1a64(arm.name)).next_u64();
        }
        if (opt.inject_noise_scale != 1.0) {
            for (NoiseParams& np : arm.noise)
                np.p *= opt.inject_noise_scale;
        }
    }
    return arm;
}

CompareMode
verify_compare_mode(SimBackend candidate, const VerifyOptions& opt,
                    NoiseSampling sampling)
{
    // Bit-exactness is only promised when the candidate replays the
    // reference's exact draw sequence: same RNG contract — under the
    // grid's noise sampling mode, which every arm inherits — same seeds,
    // same noise.  A deliberately perturbed arm (salted seeds, injected
    // noise) is always a statistical comparison.
    if (backend_rng_contract(candidate, sampling) ==
            backend_rng_contract(opt.reference, sampling) &&
        !opt.independent_seeds && opt.inject_noise_scale == 1.0)
        return CompareMode::kBitExact;
    return CompareMode::kStatistical;
}

std::vector<SimBackend>
verify_candidates(const VerifyOptions& opt)
{
    std::vector<SimBackend> cands = opt.candidates;
    if (cands.empty()) {
        for (SimBackend b : known_backends()) {
            if (b != opt.reference)
                cands.push_back(b);
        }
    }
    if (cands.empty())
        throw std::runtime_error("verify: no candidate backends");
    for (size_t i = 0; i < cands.size(); ++i) {
        for (size_t j = i + 1; j < cands.size(); ++j) {
            if (cands[i] == cands[j])
                throw std::runtime_error(
                    std::string("verify: candidate \"") +
                    backend_name(cands[i]) + "\" listed twice");
        }
        if (cands[i] == opt.reference && !opt.independent_seeds)
            throw std::runtime_error(
                std::string("verify: candidate \"") +
                backend_name(cands[i]) +
                "\" equals the reference backend; comparing a backend "
                "against itself needs --independent-seeds (the "
                "null-calibration mode)");
    }
    return cands;
}

void
verify_run_shard(const CampaignSpec& grid, const VerifyOptions& opt,
                 int shard, int n_shards, const std::string& out_dir)
{
    const std::vector<SimBackend> cands = verify_candidates(opt);
    run_shard(verify_arm_spec(grid, opt.reference, true, opt), shard,
              n_shards, out_dir, opt.threads, opt.verbose,
              opt.jobs_parallel);
    for (SimBackend cand : cands) {
        run_shard(verify_arm_spec(grid, cand, false, opt), shard, n_shards,
                  out_dir, opt.threads, opt.verbose, opt.jobs_parallel);
    }
}

std::string
verify_report_path(const std::string& out_dir, const CampaignSpec& grid)
{
    return out_dir + "/" + grid.name + ".verify.json";
}

VerifyReport
run_verify(const CampaignSpec& grid, const VerifyOptions& opt,
           int n_shards, const std::string& out_dir)
{
    grid.validate();
    const std::vector<SimBackend> cands = verify_candidates(opt);
    if (!(opt.alpha > 0.0 && opt.alpha < 1.0))
        throw std::runtime_error("verify: alpha must be in (0, 1)");
    if (!(opt.inject_noise_scale > 0.0))
        throw std::runtime_error(
            "verify: --inject-noise-scale must be > 0");

    // Run (or resume) every shard of every arm, then merge each arm.
    // Shards computed elsewhere by `verify --shard i/N` are validated and
    // resumed, never recomputed, so a distributed verify merges
    // bit-identically to this single-process path.
    for (int shard = 0; shard < n_shards; ++shard)
        verify_run_shard(grid, opt, shard, n_shards, out_dir);
    const std::vector<Metrics> ref_metrics = merge_campaign(
        verify_arm_spec(grid, opt.reference, true, opt), n_shards, out_dir);
    std::vector<std::vector<Metrics>> cand_metrics;
    for (SimBackend cand : cands) {
        cand_metrics.push_back(merge_campaign(
            verify_arm_spec(grid, cand, false, opt), n_shards, out_dir));
    }

    // Per-code qubit counts for the per-qubit rate trials.
    const std::vector<JobSpec> jobs = grid.expand();
    std::map<std::string, int> n_data;
    for (const JobSpec& job : jobs) {
        if (n_data.find(job.code) == n_data.end())
            n_data[job.code] = make_code(job.code)->code.n_data();
    }

    // The statistical test family is fixed BEFORE looking at any data:
    // per statistically-refereed (point, candidate), one test each for
    // FN, FP and DLP, plus the LER when the grid decodes.  The family-
    // wise correction is computed over that m.
    const int tests_per_point = 3 + (grid.compute_ler ? 1 : 0);
    int n_stat_arms = 0;
    for (SimBackend cand : cands) {
        if (verify_compare_mode(cand, opt, grid.noise_sampling) ==
            CompareMode::kStatistical)
            ++n_stat_arms;
    }
    const int m =
        n_stat_arms * static_cast<int>(jobs.size()) * tests_per_point;

    VerifyReport report;
    report.reference = opt.reference;
    report.alpha = opt.alpha;
    report.n_stat_tests = m;
    report.per_test_alpha =
        m > 0 ? (opt.sidak ? stats::sidak_alpha(opt.alpha, m)
                           : stats::bonferroni_alpha(opt.alpha, m))
              : opt.alpha;
    const double z_crit =
        stats::z_for_two_sided_alpha(report.per_test_alpha);

    for (size_t ci = 0; ci < cands.size(); ++ci) {
        const SimBackend cand = cands[ci];
        const CompareMode mode =
            verify_compare_mode(cand, opt, grid.noise_sampling);
        for (size_t j = 0; j < jobs.size(); ++j) {
            PointVerdict pv;
            pv.job_index = jobs[j].index;
            pv.code = jobs[j].code;
            pv.policy = jobs[j].policy;
            pv.candidate = cand;
            pv.mode = mode;
            const Metrics& ref = ref_metrics[j];
            const Metrics& can = cand_metrics[ci][j];
            if (mode == CompareMode::kBitExact) {
                pv.bit_mismatches = metrics_bit_diff(ref, can);
                pv.pass = pv.bit_mismatches.empty();
            } else {
                const int nd = n_data.at(jobs[j].code);
                const auto add_check = [&](const std::string& metric,
                                           stats::RateSample a,
                                           stats::RateSample b) {
                    RateCheck rc;
                    rc.metric = metric;
                    rc.ref = a;
                    rc.cand = b;
                    rc.test = stats::two_proportion_z(a, b);
                    rc.ref_ci = stats::wilson_interval(a, z_crit);
                    rc.cand_ci = stats::wilson_interval(b, z_crit);
                    rc.pass = rc.test.degenerate || rc.test.identical ||
                              rc.test.p_value >= report.per_test_alpha;
                    pv.pass = pv.pass && rc.pass;
                    pv.checks.push_back(std::move(rc));
                };
                if (grid.compute_ler)
                    add_check("ler", ref.ler_sample(), can.ler_sample());
                add_check("fn", ref.fn_sample(nd), can.fn_sample(nd));
                add_check("fp", ref.fp_sample(nd), can.fp_sample(nd));
                add_check("dlp", ref.dlp_sample(nd), can.dlp_sample(nd));
            }
            report.pass = report.pass && pv.pass;
            report.points.push_back(std::move(pv));
        }
    }

    io::make_dirs(out_dir);
    io::write_file_atomic(verify_report_path(out_dir, grid),
                          report.to_json().dump(2) + "\n");
    return report;
}

Json
VerifyReport::to_json() const
{
    Json j = Json::object();
    j.set("gld_version", Json::integer(io::kSerializeVersion));
    j.set("kind", Json::str("verify_report"));
    j.set("reference", Json::str(backend_name(reference)));
    j.set("alpha", Json::number(alpha));
    j.set("per_test_alpha", Json::number(per_test_alpha));
    j.set("n_stat_tests", Json::integer(n_stat_tests));
    j.set("pass", Json::boolean(pass));
    Json jp = Json::array();
    for (const PointVerdict& pv : points) {
        Json p = Json::object();
        p.set("job", Json::integer(pv.job_index));
        p.set("code", Json::str(pv.code));
        p.set("policy", Json::str(pv.policy));
        p.set("candidate", Json::str(backend_name(pv.candidate)));
        p.set("mode", Json::str(pv.mode == CompareMode::kBitExact
                                    ? "bit_exact"
                                    : "statistical"));
        p.set("pass", Json::boolean(pv.pass));
        if (pv.mode == CompareMode::kBitExact) {
            Json mm = Json::array();
            for (const std::string& s : pv.bit_mismatches)
                mm.push(Json::str(s));
            p.set("bit_mismatches", std::move(mm));
        } else {
            Json checks = Json::array();
            for (const RateCheck& rc : pv.checks) {
                Json c = Json::object();
                c.set("metric", Json::str(rc.metric));
                c.set("trials_unit",
                      Json::str(metric_trials_desc(rc.metric)));
                c.set("ref_events", Json::number(rc.ref.events));
                c.set("ref_trials", Json::number(rc.ref.trials));
                c.set("cand_events", Json::number(rc.cand.events));
                c.set("cand_trials", Json::number(rc.cand.trials));
                c.set("ref_rate", Json::number(rc.test.rate1));
                c.set("cand_rate", Json::number(rc.test.rate2));
                c.set("z", Json::number(rc.test.z));
                c.set("p_value", Json::number(rc.test.p_value));
                c.set("degenerate", Json::boolean(rc.test.degenerate));
                c.set("identical", Json::boolean(rc.test.identical));
                Json rci = Json::array();
                rci.push(Json::number(rc.ref_ci.lo));
                rci.push(Json::number(rc.ref_ci.hi));
                c.set("ref_wilson_ci", std::move(rci));
                Json cci = Json::array();
                cci.push(Json::number(rc.cand_ci.lo));
                cci.push(Json::number(rc.cand_ci.hi));
                c.set("cand_wilson_ci", std::move(cci));
                c.set("pass", Json::boolean(rc.pass));
                checks.push(std::move(c));
            }
            p.set("checks", std::move(checks));
        }
        jp.push(std::move(p));
    }
    j.set("points", std::move(jp));
    return j;
}

void
print_verify_report(const VerifyReport& report)
{
    std::printf("reference backend: %s | family alpha %.4g over %d "
                "statistical test(s) -> per-test alpha %.4g\n\n",
                backend_name(report.reference), report.alpha,
                report.n_stat_tests, report.per_test_alpha);
    TablePrinter t({"Job", "Code", "Policy", "Candidate", "Mode", "Detail",
                    "Verdict"});
    for (const PointVerdict& pv : report.points) {
        std::string detail;
        if (pv.mode == CompareMode::kBitExact) {
            detail = pv.bit_mismatches.empty()
                         ? "all fields identical"
                         : std::to_string(pv.bit_mismatches.size()) +
                               " field(s) differ";
        } else {
            double min_p = 1.0;
            std::string worst = "-";
            for (const RateCheck& rc : pv.checks) {
                if (rc.test.p_value <= min_p) {
                    min_p = rc.test.p_value;
                    worst = rc.metric;
                }
            }
            detail = "min p " + TablePrinter::sci(min_p, 2) + " (" +
                     worst + ")";
        }
        t.add_row({std::to_string(pv.job_index), pv.code, pv.policy,
                   backend_name(pv.candidate),
                   pv.mode == CompareMode::kBitExact ? "bit-exact"
                                                     : "statistical",
                   detail, pv.pass ? "PASS" : "FAIL"});
    }
    t.print();

    // Expand every failure so the table is actionable without opening
    // the JSON report.
    for (const PointVerdict& pv : report.points) {
        if (pv.pass)
            continue;
        std::printf("\njob %04d [%s / %s] vs %s:\n", pv.job_index,
                    pv.code.c_str(), pv.policy.c_str(),
                    backend_name(pv.candidate));
        for (const std::string& s : pv.bit_mismatches)
            std::printf("  mismatch: %s\n", s.c_str());
        for (const RateCheck& rc : pv.checks) {
            if (rc.pass)
                continue;
            std::printf("  %s: ref %.6g vs cand %.6g per %s "
                        "(z %+.2f, p %.3g < alpha %.3g)\n",
                        rc.metric.c_str(), rc.test.rate1, rc.test.rate2,
                        metric_trials_desc(rc.metric), rc.test.z,
                        rc.test.p_value, report.per_test_alpha);
        }
    }
}

}  // namespace campaign
}  // namespace gld
