#ifndef GLD_CAMPAIGN_CAMPAIGN_H_
#define GLD_CAMPAIGN_CAMPAIGN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "campaign/registry.h"
#include "io/json.h"
#include "noise/noise_model.h"
#include "runtime/experiment.h"
#include "runtime/metrics.h"
#include "sim/simulator.h"

namespace gld {
namespace campaign {

/**
 * One fully-resolved unit of work: a (code, policy, noise) grid point with
 * a runnable ExperimentConfig whose seed was derived deterministically
 * from the campaign seed and the job index.  Running a JobSpec through
 * ExperimentRunner::run() single-process is, by contract, bit-identical
 * to running its RNG-stream shards anywhere and merging in stream order.
 */
struct JobSpec {
    int index = 0;
    std::string code;    ///< registry code spec, e.g. "surface:7"
    std::string policy;  ///< registry policy name, e.g. "gladiator_m"
    ExperimentConfig cfg;
};

/**
 * A declarative sweep manifest — the paper's figure grids (code family x
 * distance x policy x noise) as one versioned, serializable document.
 * expand() flattens the grid into JobSpecs in a deterministic order
 * (codes outer, noise middle, policies inner), so job indices — and with
 * them the derived per-job seeds — are stable across processes, shards
 * and resumes.
 */
struct CampaignSpec {
    std::string name = "campaign";
    uint64_t seed = 0xCA4A16A5EEDull;
    int shots = 100;
    int rounds = 10;
    int rng_streams = 8;
    bool leakage_sampling = true;
    bool compute_ler = false;
    bool record_dlp_series = false;
    /**
     * Paired comparison (default): every policy at the same (code, noise)
     * grid point shares one derived seed, so policy columns are compared
     * on identical noise realizations — the variance-reduced design of
     * the paper's figure generators.  Set false for fully independent
     * per-job seeds (e.g. when jobs are later pooled as extra shots).
     */
    bool pair_policy_seeds = true;
    /**
     * Simulation backend every job runs on (config-hashed per job, so
     * switching backends never resumes the other backend's checkpoints).
     * Serialized by name; specs without the field load as "frame".
     */
    SimBackend backend = SimBackend::kFrame;
    /**
     * Batch width multiplier K every job runs with (see
     * ExperimentConfig::batch_words; result-affecting, so config-hashed
     * per job when != 1).  Serialized only when != 1 — existing specs
     * and hashes are untouched.
     */
    int batch_words = 1;
    /**
     * Noise sampling mode every job runs under (see
     * ExperimentConfig::noise_sampling; result-affecting on the batch
     * backends, so config-hashed per job when != lockstep).  Serialized
     * only when != lockstep — existing specs and hashes are untouched.
     */
    NoiseSampling noise_sampling = NoiseSampling::kLockstep;
    std::vector<std::string> codes;     ///< e.g. {"surface:3", "surface:5"}
    std::vector<std::string> policies;  ///< registry names
    std::vector<NoiseParams> noise;     ///< grid points

    /** Flattens the grid; throws if any dimension is empty. */
    std::vector<JobSpec> expand() const;

    /**
     * The seed job `index` runs under: derived from the campaign seed
     * and the job's seed group — the (code, noise) point when
     * pair_policy_seeds, the job index itself otherwise.
     */
    uint64_t job_seed(int index) const;

    io::Json to_json() const;
    static CampaignSpec from_json(const io::Json& j);

    /** Builds every distinct code and policy once; throws on bad names. */
    void validate() const;
};

/**
 * Relative simulation cost of running `shots` shots of `job` on its code:
 * shots x rounds x backend_cost_factor(job.cfg.backend, n_qubits), so one
 * frame-backend round of one shot is the unit.  This is the campaign cost
 * model's first stage (ROADMAP "backend-aware campaign planning"): `plan`
 * weights per-shard shot loads with it so mixed-backend and mixed-code
 * sweeps print honest relative loads, not raw shot counts that hide a
 * tableau job costing ~n^2/64 x a frame job.  Throughput model only —
 * never result-affecting.
 *
 * @param n_qubits the job's code size (campaign::make_code(job.code)
 *        ->code.n_qubits(); a plan over many jobs should cache it per
 *        distinct code spec).
 */
double job_cost_units(const JobSpec& job, int n_qubits, long shots);

/**
 * The shard partition: shard i of N owns RNG stream s of every job iff
 * s % N == i.  Streams — not jobs — are the partition unit, so (a) any N
 * up to the stream count splits even a single-job campaign, and (b) the
 * merge is exactly run()'s stream-order sum, making shard-then-merge
 * bit-identical to a single-process run.
 *
 * This round-robin partition balances SHOTS per shard within one job but
 * knows nothing about cost: a tableau d=7 job's stream costs ~n^2/64 x a
 * frame stream, and batch_frame streams ~1/64 x.  Campaign-level
 * scheduling (run_shard, resume validation, the plan command) therefore
 * runs entirely on CampaignPlan (greedy LPT over cost units) below;
 * streams_for is NOT on any production path anymore — it is kept as the
 * executable record of the historical contract, pinned by its test.
 */
struct ShardPlan {
    /** Throws std::runtime_error unless 0 <= shard < n_shards. */
    static void validate(int shard, int n_shards);

    /** Ascending stream ids of `cfg` owned by `shard`. */
    static std::vector<int> streams_for(const ExperimentConfig& cfg,
                                        int shard, int n_shards);
};

/**
 * Measured-throughput calibration for the campaign cost model (the
 * telemetry -> planner feedback loop): shots per WALL second per
 * (backend, batch width, code), keyed "backend/code" at the default
 * width 1 (e.g. "frame/surface:5") and "backend@w<K>/code" at K > 1
 * (e.g. "batch_frame@w4/surface:5") — the batch width changes a batch
 * backend's throughput substantially, so K-sweep measurements must not
 * overwrite each other.  Typically built from the per-job telemetry
 * exports of a completed run via from_telemetry() (`gld_campaign
 * calibrate`) and fed back into CampaignPlan::build, which then balances
 * shards on measured seconds instead of the analytic
 * backend_cost_factor.  Throughput model only — never result-affecting
 * (the stream->shard assignment changes, the merged Metrics cannot).
 */
struct Calibration {
    /** shots per wall second, keyed by key(backend, code, batch_words). */
    std::map<std::string, double> rates;

    static std::string key(const std::string& backend,
                           const std::string& code, int batch_words = 1)
    {
        // K == 1 keys stay exactly "backend/code", so calibration files
        // from before the batch-width knob keep working unchanged.
        if (batch_words > 1) {
            return backend + "@w" + std::to_string(batch_words) + "/" +
                   code;
        }
        return backend + "/" + code;
    }

    bool empty() const { return rates.empty(); }
    bool has(const std::string& backend, const std::string& code,
             int batch_words = 1) const
    {
        return rates.count(key(backend, code, batch_words)) != 0;
    }
    /** Throws std::runtime_error naming the missing key. */
    double rate(const std::string& backend, const std::string& code,
                int batch_words = 1) const;

    io::Json to_json() const;
    static Calibration from_json(const io::Json& j);

    /**
     * Aggregates the campaign's per-job telemetry exports into measured
     * rates: per (backend, code), total shots / total wall seconds over
     * every job x shard telemetry file present (files from a different
     * config hash are skipped).  Throws if no telemetry is found at all.
     */
    static Calibration from_telemetry(const CampaignSpec& spec, int n_shards,
                                      const std::string& out_dir);
};

/**
 * Cost-balanced campaign shard plan (ROADMAP "backend-aware campaign
 * planning", stage 2): every (job, RNG stream) work item is weighted by
 * its cost units — stream_shots x rounds x backend_cost_factor — and
 * assigned to a shard by greedy LPT (longest-processing-time: items in
 * descending cost, each to the currently lightest shard).  Deterministic
 * for a given (spec, n_shards): items sort with (cost desc, job asc,
 * stream asc) tie-breaks and ties between shards go to the lowest index,
 * so every process computes the identical plan — run_shard and the plan
 * command agree without communicating.
 *
 * The merge contract is unchanged: merge_campaign collects streams by id
 * from whatever shard file holds them, and each stream's Metrics partial
 * is independent of which shard ran it, so shard-then-merge stays
 * bit-identical to a single-process run under ANY assignment.
 */
struct CampaignPlan {
    /** streams[job][shard] = ascending stream ids owned by that shard. */
    std::vector<std::vector<std::vector<int>>> streams;
    /** Total assigned cost units per shard. */
    std::vector<double> shard_cost_units;
    /** Total assigned shots per shard. */
    std::vector<long> shard_shots;
    /** n_qubits per job (the cost-model input, cached per code spec). */
    std::vector<int> job_qubits;

    /** Ascending stream ids of job `job_index` owned by `shard`. */
    const std::vector<int>& streams_for(int job_index, int shard) const
    {
        return streams[static_cast<size_t>(job_index)]
                      [static_cast<size_t>(shard)];
    }

    /**
     * Builds the deterministic LPT plan; throws on invalid specs/shard
     * counts.  The cost model needs each distinct code's qubit count, so
     * each is constructed exactly once; pass `codes` to receive those
     * instances (keyed by spec string) instead of discarding them —
     * run_shard reuses them so an executed job never constructs its code
     * a second time.
     *
     * With a non-null, non-empty `calib`, stream costs are measured
     * seconds (stream shots / calibrated shots-per-second) instead of
     * analytic cost units; every (backend, code) of the spec must have a
     * calibration entry or build throws naming the missing key.
     */
    static CampaignPlan build(
        const CampaignSpec& spec, int n_shards,
        std::map<std::string, std::shared_ptr<const CodeInstance>>* codes =
            nullptr,
        const Calibration* calib = nullptr);
};

/** `<out_dir>/<name>.job####.shard<i>of<N>.json` */
std::string shard_result_path(const std::string& out_dir,
                              const CampaignSpec& spec, int job_index,
                              int shard, int n_shards);

/** `<out_dir>/<name>.job####.merged.json` */
std::string merged_result_path(const std::string& out_dir,
                               const CampaignSpec& spec, int job_index);

/** `<out_dir>/<name>.job####.shard<i>of<N>.telemetry.json` */
std::string telemetry_path(const std::string& out_dir,
                           const CampaignSpec& spec, int job_index,
                           int shard, int n_shards);

/** `<out_dir>/<name>.progress.shard<i>of<N>.jsonl` */
std::string progress_path(const std::string& out_dir,
                          const CampaignSpec& spec, int shard, int n_shards);

/** `<out_dir>/<name>.job####.heatmap.json` (cross-shard merge). */
std::string heatmap_path(const std::string& out_dir,
                         const CampaignSpec& spec, int job_index);

struct RunShardStats {
    int jobs_run = 0;      ///< jobs (re)computed by this call
    int jobs_resumed = 0;  ///< jobs skipped: valid result file present
};

/**
 * Observability knobs of run_shard — all pure side channels (Metrics and
 * result files are bit-identical for every combination; the telemetry
 * drift gate in tests/test_telemetry.cc pins the runner-level guarantee).
 */
struct RunShardOptions {
    int threads = 0;        ///< worker threads per job (0 = auto)
    bool verbose = false;   ///< per-job progress lines on stdout
    int jobs_parallel = 1;  ///< concurrent jobs (each `threads` wide)
    /**
     * Collect per-job telemetry (stage timers, leak histogram) and write
     * `telemetry_path` files plus the `progress_path` heartbeat JSONL
     * (the `gld_campaign status` feed).  Off = the exact pre-telemetry
     * run_shard behavior, no extra files.
     */
    bool telemetry = true;
    /** Also collect per-qubit x per-round leakage heatmaps. */
    bool heatmap = false;
    /** Measured-throughput cost model for the shard plan (optional). */
    const Calibration* calibration = nullptr;
};

/**
 * Runs shard `shard` of `n_shards` over every job of the campaign,
 * writing one result file per job into `out_dir` (created if needed).
 *
 * Checkpoint/resume: a job whose result file already exists with a
 * matching config hash and shard geometry is skipped; a stale file (hash
 * or geometry mismatch, or unparseable) is recomputed and overwritten.
 *
 * `threads` caps worker threads per job (0 = the full
 * BenchConfig::threads() budget).  Job workers AND every job's runner
 * loop execute on the one process-wide persistent pool
 * (util/thread_pool.h), so total OS-thread concurrency never exceeds
 * the budget however `jobs_parallel` and `threads` combine — idle pool
 * workers drift to whichever job's loop is live instead of being
 * statically divided.  `jobs_parallel` runs that many jobs concurrently:
 * jobs are independent — separate codes, runners and result files — so
 * a job-level pool layers cleanly on top of the per-job scheduler for
 * grids of many small jobs.  1 = the serial loop.
 *
 * With `opt.telemetry` (the default), each executed job also writes a
 * telemetry JSON beside its result file, and the shard appends heartbeat
 * lines to its progress JSONL while running — the liveness feed of
 * `gld_campaign status`.  Resumed jobs keep their existing telemetry
 * file and count their planned shots as done in the heartbeat.
 */
RunShardStats run_shard(const CampaignSpec& spec, int shard, int n_shards,
                        const std::string& out_dir,
                        const RunShardOptions& opt);

/** Back-compat wrapper: RunShardOptions with telemetry off. */
RunShardStats run_shard(const CampaignSpec& spec, int shard, int n_shards,
                        const std::string& out_dir, int threads = 0,
                        bool verbose = false, int jobs_parallel = 1);

/**
 * Deletes every shard and merged result file of the campaign in
 * `out_dir`, plus all telemetry, progress and merged-heatmap files
 * (missing files are fine).  The config hash fingerprints the
 * CONFIGURATION, not the code: callers that must reflect the current
 * binary — CI crash gates, the demo self-check, any regenerated figure —
 * should start fresh instead of resuming a possibly stale-binary
 * checkpoint.  The ported generators honour GLD_CAMPAIGN_FRESH=1 to do
 * this (set by the CTest bench/smoke environments).
 */
void remove_results(const CampaignSpec& spec, int n_shards,
                    const std::string& out_dir);

/**
 * Merges the per-stream partials of all `n_shards` result files per job,
 * in ascending stream order, writes `<name>.job####.merged.json` files
 * and returns the merged Metrics in job order.  Throws if any stream of
 * any job is missing, duplicated, or was produced under a different
 * config hash.
 */
std::vector<Metrics> merge_campaign(const CampaignSpec& spec, int n_shards,
                                    const std::string& out_dir);

/** Loads the merged Metrics of every job (merge_campaign output files). */
std::vector<Metrics> load_merged(const CampaignSpec& spec,
                                 const std::string& out_dir);

/**
 * Prints the aggregated per-job table (FN/FP/LRC per shot, DLP, LER) from
 * the merged result files — the campaign-level replacement for the
 * monolithic bench generators' output.  With n_shards > 0 the table also
 * carries wall-time and shots/second columns aggregated from the per-job
 * telemetry exports ("-" for jobs without telemetry files).
 */
void print_report(const CampaignSpec& spec, const std::string& out_dir,
                  int n_shards = 0);

/**
 * One shard's liveness snapshot: the last complete line of its progress
 * JSONL (`valid` false when the file is missing or holds no parseable
 * line yet — e.g. the shard has not started).
 */
struct ShardProgress {
    int shard = 0;
    bool valid = false;
    bool done = false;
    int64_t jobs_done = 0;
    int64_t jobs_resumed = 0;
    int64_t jobs_total = 0;
    int64_t shots_done = 0;
    int64_t shots_total = 0;
    uint64_t wall_ns = 0;
    double shots_per_second = 0.0;
    uint64_t stage_ns[4] = {0, 0, 0, 0};  ///< telemetry::kStageCount
};

/** Reads every shard's latest heartbeat (missing files -> !valid). */
std::vector<ShardProgress> read_progress(const CampaignSpec& spec,
                                         int n_shards,
                                         const std::string& out_dir);

/**
 * Prints the live fleet table (`gld_campaign status`): one row per shard
 * plus an aggregated "fleet:" summary line with total shots done /
 * planned, throughput and the stage-time split.
 */
void print_status(const CampaignSpec& spec, int n_shards,
                  const std::string& out_dir);

/**
 * Merges job `job_index`'s leakage heatmap across all shard telemetry
 * files (validating the config hash), returning the cross-shard sum.
 * Throws if no shard telemetry carries a heatmap for the job — run with
 * --heatmap first.
 */
telemetry::Heatmap merge_job_heatmap(const CampaignSpec& spec, int n_shards,
                                     const std::string& out_dir,
                                     int job_index);

/**
 * Merges + writes `heatmap_path` files for every job with heatmap
 * telemetry, printing one summary line each; returns the number written.
 * Throws if NO job has heatmap telemetry (nothing was collected).
 */
int write_job_heatmaps(const CampaignSpec& spec, int n_shards,
                       const std::string& out_dir);

}  // namespace campaign
}  // namespace gld

#endif  // GLD_CAMPAIGN_CAMPAIGN_H_
