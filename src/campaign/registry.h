#ifndef GLD_CAMPAIGN_REGISTRY_H_
#define GLD_CAMPAIGN_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/code_context.h"
#include "runtime/experiment.h"

namespace gld {
namespace campaign {

/**
 * A code with its scheduled round circuit and pattern context, kept alive
 * together (the context holds pointers into the code and circuit).
 */
struct CodeInstance {
    CssCode code;
    RoundCircuit rc;
    CodeContext ctx;

    explicit CodeInstance(CssCode c)
        : code(std::move(c)), rc(code),
          ctx(code, rc, CodeContext::default_scope(code))
    {
    }

    // ctx holds raw pointers into this object's own code/rc: a default
    // copy or move would leave them dangling into the source.
    CodeInstance(const CodeInstance&) = delete;
    CodeInstance& operator=(const CodeInstance&) = delete;
};

/**
 * Builds a code from its campaign spec string:
 *   "surface:<d>"  rotated surface code, odd distance d >= 3
 *   "color:<d>"    triangular 6.6.6 color code
 *   "hgp_hamming"  hypergraph product of [7,4] Hamming
 *   "bpc"          the default bivariate-polynomial code
 * Throws std::runtime_error on an unknown family or malformed distance.
 */
std::unique_ptr<CodeInstance> make_code(const std::string& spec);

/**
 * Policy registry keyed by the names a CampaignSpec uses:
 *   no_lrc, always_lrc, staggered, mlr_only, ideal,
 *   eraser, eraser_m, gladiator, gladiator_m, gladiator_d, gladiator_d_m
 * (the _m suffix enables multi-level readout).  Gladiator factories are
 * built against `np` — the same noise point the job simulates.
 * Throws std::runtime_error on an unknown name.
 */
PolicyFactory make_policy(const std::string& name, const NoiseParams& np);

/** Every name make_policy accepts, in presentation order. */
const std::vector<std::string>& known_policies();

}  // namespace campaign
}  // namespace gld

#endif  // GLD_CAMPAIGN_REGISTRY_H_
