#include "campaign/registry.h"

#include <stdexcept>

#include "codes/bpc_code.h"
#include "codes/color_code.h"
#include "codes/hgp_code.h"
#include "codes/surface_code.h"

namespace gld {
namespace campaign {

namespace {

int
parse_distance(const std::string& spec, size_t colon)
{
    const std::string d_str = spec.substr(colon + 1);
    // Length cap keeps std::stoi in range: its std::out_of_range is a
    // logic_error, outside this module's runtime_error contract.
    if (d_str.empty() || d_str.size() > 4 ||
        d_str.find_first_not_of("0123456789") != std::string::npos)
        throw std::runtime_error("campaign: malformed code distance in \"" +
                                 spec + "\"");
    const int d = std::stoi(d_str);
    if (d < 3 || d % 2 == 0)
        throw std::runtime_error("campaign: distance must be odd and >= 3 "
                                 "in \"" + spec + "\"");
    return d;
}

}  // namespace

std::unique_ptr<CodeInstance>
make_code(const std::string& spec)
{
    const size_t colon = spec.find(':');
    const std::string family = spec.substr(0, colon);
    if (family == "surface")
        return std::make_unique<CodeInstance>(
            SurfaceCode::make(parse_distance(spec, colon)));
    if (family == "color")
        return std::make_unique<CodeInstance>(
            ColorCode::make(parse_distance(spec, colon)));
    if (family == "hgp_hamming" || family == "bpc") {
        // Fixed-construction families: a ":<d>" suffix would silently
        // label identical codes as a fake distance sweep — reject it.
        if (colon != std::string::npos)
            throw std::runtime_error("campaign: \"" + family + "\" takes "
                                     "no distance (got \"" + spec + "\")");
        if (family == "hgp_hamming")
            return std::make_unique<CodeInstance>(HgpCode::make_hamming());
        return std::make_unique<CodeInstance>(BpcCode::make_default());
    }
    throw std::runtime_error("campaign: unknown code family \"" + family +
                             "\" (want surface:<d>, color:<d>, hgp_hamming "
                             "or bpc)");
}

namespace {

// Single source of truth for the policy registry: the lookup in
// make_policy and the listing in known_policies both walk this table,
// so the two cannot drift when a policy is added.
struct PolicyEntry {
    const char* name;
    PolicyFactory (*build)(const NoiseParams& np);
};

constexpr PolicyEntry kPolicyTable[] = {
    {"no_lrc", [](const NoiseParams&) { return PolicyZoo::no_lrc(); }},
    {"always_lrc",
     [](const NoiseParams&) { return PolicyZoo::always_lrc(); }},
    {"staggered", [](const NoiseParams&) { return PolicyZoo::staggered(); }},
    {"mlr_only", [](const NoiseParams&) { return PolicyZoo::mlr_only(); }},
    {"ideal", [](const NoiseParams&) { return PolicyZoo::ideal(); }},
    {"eraser", [](const NoiseParams&) { return PolicyZoo::eraser(false); }},
    {"eraser_m", [](const NoiseParams&) { return PolicyZoo::eraser(true); }},
    {"gladiator",
     [](const NoiseParams& np) { return PolicyZoo::gladiator(false, np); }},
    {"gladiator_m",
     [](const NoiseParams& np) { return PolicyZoo::gladiator(true, np); }},
    {"gladiator_d",
     [](const NoiseParams& np) { return PolicyZoo::gladiator_d(false, np); }},
    {"gladiator_d_m",
     [](const NoiseParams& np) { return PolicyZoo::gladiator_d(true, np); }},
};

}  // namespace

PolicyFactory
make_policy(const std::string& name, const NoiseParams& np)
{
    for (const PolicyEntry& entry : kPolicyTable) {
        if (name == entry.name)
            return entry.build(np);
    }
    std::string known;
    for (const std::string& n : known_policies())
        known += (known.empty() ? "" : ", ") + n;
    throw std::runtime_error("campaign: unknown policy \"" + name +
                             "\" (known: " + known + ")");
}

const std::vector<std::string>&
known_policies()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const PolicyEntry& entry : kPolicyTable)
            out.emplace_back(entry.name);
        return out;
    }();
    return names;
}

}  // namespace campaign
}  // namespace gld
