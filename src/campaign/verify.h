#ifndef GLD_CAMPAIGN_VERIFY_H_
#define GLD_CAMPAIGN_VERIFY_H_

#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "io/json.h"
#include "runtime/metrics.h"
#include "sim/simulator.h"
#include "stats/stats.h"

namespace gld {
namespace campaign {

/**
 * The cross-backend referee (ROADMAP "cross-backend referee campaigns"):
 * `gld_campaign verify` expands one grid, runs it once per backend arm
 * (a reference plus one or more candidates) through the UNCHANGED
 * campaign machinery — CampaignPlan sharding, checkpoint/resume,
 * merge-exact aggregation — and then referees every (grid point,
 * candidate) pair:
 *
 *  - Backends sharing the reference's RNG contract
 *    (backend_rng_contract) must produce BIT-identical Metrics,
 *    dlp_series included; any differing field is a confirmed mismatch.
 *  - Backends drawing different randomness are refereed statistically:
 *    pooled two-proportion z-tests on the LER plus the FN / FP / DLP
 *    rates, with Wilson score intervals for reporting and a Šidák (or
 *    Bonferroni) family-wise correction across every statistical test
 *    of the run, so the whole grid keeps one false-positive budget.
 *
 * The verdict is written as a machine-readable JSON report beside the
 * human table, and a confirmed mismatch makes the CLI exit nonzero —
 * the correctness gate any new backend, code, policy or perf PR runs
 * against.
 */

/** How one (reference, candidate) pair is refereed. */
enum class CompareMode {
    kBitExact,     ///< same RNG contract: Metrics must match bitwise
    kStatistical,  ///< independent randomness: z-tests at alpha
};

struct VerifyOptions {
    SimBackend reference = SimBackend::kFrame;
    /** Empty = every known backend except the reference. */
    std::vector<SimBackend> candidates;
    /** Family-wise false-positive budget across ALL statistical tests. */
    double alpha = 0.01;
    /** Šidák correction (default); false = Bonferroni (safe under any
     *  dependence between tests). */
    bool sidak = true;
    /**
     * Re-derive every candidate arm's job seeds (salted by arm name) so
     * even a same-contract candidate draws independent randomness and is
     * refereed STATISTICALLY — the null-calibration mode ("same backend,
     * disjoint seeds must pass at alpha"), and the only way a candidate
     * equal to the reference backend is allowed.
     */
    bool independent_seeds = false;
    /**
     * Multiplies every candidate arm's physical error rate p — a
     * deliberate fault injection for calibrating the referee's power
     * ("an injected rate delta must be flagged").  1.0 = off.
     */
    double inject_noise_scale = 1.0;
    int threads = 0;        ///< worker threads per job (0 = auto)
    int jobs_parallel = 1;  ///< concurrent jobs per shard
    bool verbose = false;
};

/** One statistical test inside a grid-point verdict. */
struct RateCheck {
    std::string metric;  ///< "ler", "fn", "fp" or "dlp"
    stats::RateSample ref;
    stats::RateSample cand;
    stats::TwoProportionResult test;
    stats::Interval ref_ci;   ///< Wilson at the corrected per-test alpha
    stats::Interval cand_ci;
    bool pass = true;
};

/** Verdict for one (grid point, candidate backend) pair. */
struct PointVerdict {
    int job_index = 0;
    std::string code;
    std::string policy;
    SimBackend candidate = SimBackend::kFrame;
    CompareMode mode = CompareMode::kBitExact;
    /** kBitExact: differing Metrics fields (metrics_bit_diff lines). */
    std::vector<std::string> bit_mismatches;
    /** kStatistical: the individual rate tests. */
    std::vector<RateCheck> checks;
    bool pass = true;
};

struct VerifyReport {
    SimBackend reference = SimBackend::kFrame;
    double alpha = 0.01;          ///< family-wise budget
    double per_test_alpha = 0.01; ///< after Šidák/Bonferroni over m
    int n_stat_tests = 0;         ///< m: statistical tests in the family
    std::vector<PointVerdict> points;
    bool pass = true;

    /** Machine-readable verdict document (format: see verify.cc). */
    io::Json to_json() const;
};

/**
 * The spec one arm actually runs: the grid with its name suffixed
 * ".ref.<backend>" / ".cand.<backend>" (so every arm's result files
 * coexist in one out_dir), the backend rewritten, and — for candidate
 * arms — the seed salted when opt.independent_seeds and the noise
 * scaled when opt.inject_noise_scale != 1.  Deterministic: every
 * process derives the identical arm spec from (grid, opt).
 */
CampaignSpec verify_arm_spec(const CampaignSpec& grid, SimBackend backend,
                             bool is_reference, const VerifyOptions& opt);

/**
 * How `candidate` will be refereed against opt.reference: bit-exact iff
 * they share an RNG contract — under the grid's noise sampling mode,
 * which moves the batch backends to their own contracts at sparse while
 * the scalar backends keep ignoring the knob (so sparse batch_frame vs
 * frame is a STATISTICAL comparison against a genuine lockstep
 * reference) — AND the candidate arm's config is not deliberately
 * perturbed (independent seeds / injected noise).
 */
CompareMode verify_compare_mode(
    SimBackend candidate, const VerifyOptions& opt,
    NoiseSampling sampling = NoiseSampling::kLockstep);

/** Candidate list with the default ("all other known backends")
 *  resolved; throws if a candidate equals the reference without
 *  independent seeds, or appears twice. */
std::vector<SimBackend> verify_candidates(const VerifyOptions& opt);

/**
 * Runs shard `shard` of `n_shards` of EVERY arm (reference first, then
 * candidates in order) into out_dir — the distributed half of verify.
 * Jobs already checkpointed resume for free; the referee itself runs in
 * run_verify once all shards exist.
 */
void verify_run_shard(const CampaignSpec& grid, const VerifyOptions& opt,
                      int shard, int n_shards, const std::string& out_dir);

/**
 * The full referee: runs any not-yet-checkpointed shard of every arm
 * (so a fleet of verify_run_shard calls elsewhere is resumed, not
 * recomputed), merges every arm (bit-identical to a single-process run
 * by the campaign merge contract), and referees every (grid point,
 * candidate) pair as described above.  Throws on infrastructure errors;
 * a clean run with confirmed mismatches returns report.pass == false.
 */
VerifyReport run_verify(const CampaignSpec& grid, const VerifyOptions& opt,
                        int n_shards, const std::string& out_dir);

/** `<out_dir>/<name>.verify.json` */
std::string verify_report_path(const std::string& out_dir,
                               const CampaignSpec& grid);

/** Prints the human verdict table (one row per point x candidate). */
void print_verify_report(const VerifyReport& report);

}  // namespace campaign
}  // namespace gld

#endif  // GLD_CAMPAIGN_VERIFY_H_
