#ifndef GLD_HW_TIMING_MODEL_H_
#define GLD_HW_TIMING_MODEL_H_

#include "circuit/round_circuit.h"
#include "sim/op_profile.h"

namespace gld {

/** Superconducting-platform latencies (paper §4.4: four CNOTs ~ 100 ns). */
struct TimingParams {
    double t_cnot_ns = 25.0;
    double t_h_ns = 10.0;
    double t_meas_reset_ns = 300.0;
    /** Added serial latency when a qubit undergoes a SWAP-based LRC. */
    double t_lrc_ns = 100.0;
};

/**
 * QEC cycle-time model (paper §7.4): the base round latency follows the
 * scheduled circuit depth; LRCs extend a qubit's cycle by t_lrc, so the
 * average cycle time grows with the per-qubit LRC rate and the
 * LRC-attributable latency is proportional to the LRC count — the
 * quantity Table 5's "QEC Cycle Time" reduction factors compare.
 */
class TimingModel {
  public:
    explicit TimingModel(TimingParams tp = {}) : tp_(tp) {}

    /** Base round latency of the scheduled extraction circuit. */
    double base_round_ns(const RoundCircuit& rc) const;

    /**
     * Average round latency including LRC extension.
     * @param lrcs_per_round_per_qubit average LRC rate.
     */
    double avg_round_ns(const RoundCircuit& rc,
                        double lrcs_per_round_per_qubit) const;

    /** LRC-attributable latency per round (Table 5's cycle-time metric). */
    double lrc_latency_ns(double lrcs_per_round) const
    {
        return lrcs_per_round * tp_.t_lrc_ns;
    }

    /** Relative execution-depth increase vs an LRC-free round (§7.5). */
    double depth_increase(const RoundCircuit& rc,
                          double lrcs_per_round_per_qubit) const;

    /**
     * Total serial gate time of a counted primitive stream (the
     * driver-level op profile, sim/op_profile.h): CNOTs and Hadamards at
     * their gate latencies, measurements at the measurement/reset window
     * (single-qubit resets ride inside that window, and Pauli updates
     * are software frame bookkeeping — both 0 ns).  Where base_round_ns
     * models the SCHEDULED round's critical path, this models total gate
     * WORK, so profile-driven what-if analyses (an LRC-heavy schedule, a
     * different code) stay consistent with one latency table.
     */
    double profile_gate_ns(const OpCounts& counts) const
    {
        return static_cast<double>(counts.cnots) * tp_.t_cnot_ns +
               static_cast<double>(counts.hadamards) * tp_.t_h_ns +
               static_cast<double>(counts.measures) * tp_.t_meas_reset_ns;
    }

    const TimingParams& params() const { return tp_; }

    /**
     * Measured-vs-modeled round comparison (the telemetry bridge): the
     * modeled side prices a round's op profile with profile_gate_ns, the
     * measured side is a wall-clock ns/round from the telemetry stage
     * timers.  `ratio` is measured/modeled — how many simulated
     * nanoseconds of work one modeled hardware nanosecond costs on this
     * host (0 when the model prices the round at 0 ns).
     */
    struct ModelComparison {
        double modeled_ns = 0.0;
        double measured_ns = 0.0;
        double ratio = 0.0;
    };
    ModelComparison compare_round_ns(const OpCounts& round_ops,
                                     double measured_round_ns) const;

  private:
    TimingParams tp_;
};

}  // namespace gld

#endif  // GLD_HW_TIMING_MODEL_H_
