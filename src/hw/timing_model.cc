#include "hw/timing_model.h"

namespace gld {

double
TimingModel::base_round_ns(const RoundCircuit& rc) const
{
    return rc.n_cnot_steps() * tp_.t_cnot_ns + 2.0 * tp_.t_h_ns +
           tp_.t_meas_reset_ns;
}

double
TimingModel::avg_round_ns(const RoundCircuit& rc,
                          double lrcs_per_round_per_qubit) const
{
    return base_round_ns(rc) + lrcs_per_round_per_qubit * tp_.t_lrc_ns;
}

double
TimingModel::depth_increase(const RoundCircuit& rc,
                            double lrcs_per_round_per_qubit) const
{
    return lrcs_per_round_per_qubit * tp_.t_lrc_ns / base_round_ns(rc);
}

}  // namespace gld
