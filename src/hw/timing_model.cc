#include "hw/timing_model.h"

namespace gld {

double
TimingModel::base_round_ns(const RoundCircuit& rc) const
{
    return rc.n_cnot_steps() * tp_.t_cnot_ns + 2.0 * tp_.t_h_ns +
           tp_.t_meas_reset_ns;
}

double
TimingModel::avg_round_ns(const RoundCircuit& rc,
                          double lrcs_per_round_per_qubit) const
{
    return base_round_ns(rc) + lrcs_per_round_per_qubit * tp_.t_lrc_ns;
}

double
TimingModel::depth_increase(const RoundCircuit& rc,
                            double lrcs_per_round_per_qubit) const
{
    return lrcs_per_round_per_qubit * tp_.t_lrc_ns / base_round_ns(rc);
}

TimingModel::ModelComparison
TimingModel::compare_round_ns(const OpCounts& round_ops,
                              double measured_round_ns) const
{
    ModelComparison cmp;
    cmp.modeled_ns = profile_gate_ns(round_ops);
    cmp.measured_ns = measured_round_ns;
    cmp.ratio = cmp.modeled_ns > 0.0 ? measured_round_ns / cmp.modeled_ns
                                     : 0.0;
    return cmp;
}

}  // namespace gld
