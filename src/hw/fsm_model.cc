#include "hw/fsm_model.h"

#include <cmath>

namespace gld {

int
EraserFsmModel::luts(int d)
{
    // Regression against Table 3: per-qubit cost a + b * log2(d^2).
    constexpr double kBase = 5.53;
    constexpr double kRouting = 0.333;
    const double n = static_cast<double>(d) * d;
    return static_cast<int>(std::lround(n * (kBase + kRouting * std::log2(n))));
}

int
EraserFsmModel::published(int d)
{
    switch (d) {
      case 5:
        return 177;
      case 9:
        return 633;
      case 13:
        return 1382;
      case 17:
        return 2434;
      case 21:
        return 3786;
      case 25:
        return 5393;
      default:
        return -1;
    }
}

}  // namespace gld
