#ifndef GLD_HW_LUT_MODEL_H_
#define GLD_HW_LUT_MODEL_H_

#include <vector>

#include "core/qm_minimizer.h"

namespace gld {

/** FPGA resource estimate for a GLADIATOR deployment (paper §4.4). */
struct LutReport {
    int luts_per_checker;  ///< sequence checker + adjacency-mux datapath
    int checkers;          ///< replicas to meet the 100 ns deadline
    int total;             ///< LUTs per logical qubit
};

/**
 * LUT cost model for GLADIATOR's combinational sequence checker on a
 * Kintex UltraScale+ style LUT6 fabric.
 *
 * The checker evaluates a minimized DNF over the tagged pattern bits; to
 * cover all d^2 data qubits within the ~100 ns budget (four CNOT
 * latencies) at ~1 ns per evaluation, the checker is replicated
 * ceil(d^2 / 100) times — the paper's LUTs_total = 10 * ceil(d^2 / 100).
 */
class LutModel {
  public:
    /** LUT6 count for evaluating a DNF over n_vars inputs. */
    static int dnf_luts(const std::vector<Cube>& cubes, int n_vars);

    /**
     * Full per-logical-qubit report for distance d.
     * @param checker_luts LUTs of one checker (pattern logic + the
     *        data-parity adjacency generator datapath); the paper's
     *        calibrated figure is 10 for the 5-bit surface-code checker.
     */
    static LutReport gladiator(int d, int checker_luts = 10,
                               double eval_ns = 1.0,
                               double deadline_ns = 100.0);
};

}  // namespace gld

#endif  // GLD_HW_LUT_MODEL_H_
