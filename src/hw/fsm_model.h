#ifndef GLD_HW_FSM_MODEL_H_
#define GLD_HW_FSM_MODEL_H_

namespace gld {

/**
 * ERASER's per-data-qubit finite-state-machine cost model.
 *
 * ERASER tracks syndrome history with a hand-crafted FSM per data qubit,
 * so its LUT usage scales with the qubit count d^2 plus a routing term
 * that grows logarithmically with the fabric size.  The two coefficients
 * are regressed from the published Table 3 synthesis results
 * (Kintex UltraScale+ xcku3p; re-synthesized by the paper for d up to 25);
 * the model reproduces every published point within ~2.5%.
 */
class EraserFsmModel {
  public:
    /** LUTs per logical qubit at distance d. */
    static int luts(int d);

    /** Published Table 3 reference values (d = 5, 9, 13, 17, 21, 25). */
    static int published(int d);
};

}  // namespace gld

#endif  // GLD_HW_FSM_MODEL_H_
