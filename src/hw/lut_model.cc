#include "hw/lut_model.h"

#include <cmath>

namespace gld {

int
LutModel::dnf_luts(const std::vector<Cube>& cubes, int n_vars)
{
    if (cubes.empty())
        return 0;
    // Each product term over <= 6 literals fits one LUT6; wider terms need
    // a small AND tree.  The OR combine packs 6 term outputs per LUT6.
    int luts = 0;
    for (const Cube& c : cubes) {
        const int literals = n_vars - __builtin_popcount(c.dash_mask);
        luts += literals <= 6 ? 1 : (literals + 4) / 5;  // cascaded AND
    }
    int fanin = static_cast<int>(cubes.size());
    while (fanin > 1) {
        const int ors = (fanin + 5) / 6;
        luts += ors;
        fanin = ors;
    }
    return luts;
}

LutReport
LutModel::gladiator(int d, int checker_luts, double eval_ns,
                    double deadline_ns)
{
    LutReport r;
    r.luts_per_checker = checker_luts;
    const double evals_per_checker = deadline_ns / eval_ns;
    r.checkers = static_cast<int>(
        std::ceil(static_cast<double>(d) * d / evals_per_checker));
    r.total = r.luts_per_checker * r.checkers;
    return r;
}

}  // namespace gld
