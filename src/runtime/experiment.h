#ifndef GLD_RUNTIME_EXPERIMENT_H_
#define GLD_RUNTIME_EXPERIMENT_H_

#include <functional>
#include <memory>

#include "core/code_context.h"
#include "core/policy.h"
#include "core/spec_model.h"
#include "decode/union_find.h"
#include "noise/noise_model.h"
#include "runtime/metrics.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"
#include "util/rng.h"

namespace gld {

/** Configuration of one memory experiment (code x policy x noise). */
struct ExperimentConfig {
    NoiseParams np;
    int rounds = 10;
    int shots = 100;
    uint64_t seed = 0x5EED5EEDull;
    /**
     * Leakage sampling (paper §6): start every shot with at least one
     * leaked data qubit so long-horizon DLP statistics converge with
     * 100x fewer shots.
     */
    bool leakage_sampling = false;
    /** Decode for LER (surface code / memory-Z only). */
    bool compute_ler = false;
    /** Record the per-round DLP series (Fig 10/11). */
    bool record_dlp_series = false;
    int threads = 1;
    /**
     * Number of independent RNG streams the shots are partitioned into.
     * Results depend on this value but NOT on `threads`: the same
     * (seed, rng_streams, backend) gives bit-identical Metrics for any
     * thread count.
     */
    int rng_streams = 32;
    /**
     * Simulation backend executing the round circuit (frame = fast
     * Pauli-frame engine, tableau = exact CHP stabilizer engine).
     * Result-affecting: serialized and part of the config hash.
     */
    SimBackend backend = SimBackend::kFrame;
    /**
     * Batch width multiplier K: a scheduler block holds 64*K shots, and
     * a batch backend runs it as one lockstep K-word batch
     * (1 <= K <= kMaxBatchWords).  RESULT-AFFECTING: the block size
     * feeds the per-block (seed, stream, block) RNG derivation, so K
     * changes the draws for EVERY backend — the scalar backends run the
     * same 64*K-shot blocks, which is exactly what keeps frame and
     * batch_frame Metrics bit-identical at every K.  Serialized and
     * config-hashed when != 1; the default reproduces every existing
     * config hash byte for byte.
     */
    int batch_words = 1;
    /**
     * The batch backends' Bernoulli draw contract (sim/simulator.h):
     * kLockstep advances every lane's stream at every noise site (the
     * scalar-aligned default), kSparse draws geometric event skips from
     * one per-(stream, block) stream and touches only firing lanes.
     * RESULT-AFFECTING on the batch backends — sparse draws a different
     * (statistically equivalent, verify-qualified) sequence — so it is
     * serialized and config-hashed when != kLockstep; the default
     * reproduces every existing config hash byte for byte.  The scalar
     * backends ignore it entirely (like batch_words).
     */
    NoiseSampling noise_sampling = NoiseSampling::kLockstep;
    /**
     * Reuse per-worker simulator/policy/decoder state across (stream,
     * block) work units (the zero-allocation steady state) instead of
     * reconstructing per block.  NEVER result-affecting: a reused
     * simulator is reset_for_block()-ed with exactly the seed a fresh
     * construction would get, so Metrics are bit-identical either way
     * (the reuse ≡ fresh determinism gate pins this per backend, K and
     * thread count).  Not serialized and not config-hashed, like
     * `threads`.  The `false` arm exists for that gate and for
     * allocation-sensitivity triage.
     */
    bool reuse_worker_state = true;
};

/**
 * Builds a policy.  The runner calls it lazily — once per (executor
 * slot, config) when worker-state reuse is on, once per (RNG stream,
 * shot block) work unit with reuse off — and reuses the instance across
 * blocks, with begin_shot() as the per-shot reset point.  A policy must
 * therefore not carry state across shots except through observe/
 * begin_shot, and must not derive result-affecting state from `seed`
 * (every in-tree policy ignores it); that is what keeps the build count
 * schedule-irrelevant.
 */
using PolicyFactory = std::function<std::unique_ptr<Policy>(
    const CodeContext& ctx, uint64_t seed)>;

/**
 * The memory-experiment runner: per shot it replays `rounds` noisy QEC
 * rounds, feeding each round's syndrome + MLR to the policy and applying
 * the scheduled LRCs at the start of the following round (closed-loop
 * semantics), while accounting speculation accuracy against the
 * simulator's ground-truth leakage state.  Optionally decodes the Z
 * detectors with union-find for the logical error rate.
 */
class ExperimentRunner {
  public:
    ExperimentRunner(const CodeContext& ctx, const ExperimentConfig& cfg);

    /** Runs the experiment under the given policy. */
    Metrics run(const PolicyFactory& factory) const;

    /**
     * Runs only the requested RNG streams and returns one Metrics partial
     * per stream, in the order requested.  This is the sharding hook: a
     * remote shard computes the partials for its stream subset, and
     * merging ALL streams' partials in ascending stream order reproduces
     * run() bit-identically (same per-stream shot partition, same
     * left-to-right double summation).  Stream ids must lie in
     * [0, n_streams(config())).
     */
    std::vector<Metrics> run_partials(const PolicyFactory& factory,
                                      const std::vector<int>& streams) const;

    /**
     * The effective RNG stream count of a config: rng_streams clamped to
     * [1, shots] exactly as run() partitions it (0 when shots <= 0).
     */
    static int n_streams(const ExperimentConfig& cfg);

    /** Shots assigned to `stream` under run()'s fixed partition. */
    static int stream_shots(const ExperimentConfig& cfg, int stream);

    /**
     * Base shots per scheduler work unit (one 64-lane word); the actual
     * block size of a config is shot_block(cfg) = kShotBlock *
     * cfg.batch_words.  Each stream's shots are chunked into blocks of
     * that size, and (stream, block) units are what the worker threads
     * pull.  Part of the determinism contract — every block draws from
     * its own RNG streams derived from (seed, stream, block), so the
     * result is independent of which thread runs which unit, but
     * changing the block size (like changing rng_streams or batch_words)
     * changes the draws.  Aligned with the bit-packed batch width
     * (sim/batch_driver.h): a batch-capable backend runs a whole block
     * as one lockstep batch, a partial final block as a batch with the
     * trailing lanes masked off.
     */
    static constexpr int kShotBlock = 64;

    /** Shots per scheduler work unit of a config (kShotBlock * K). */
    static int shot_block(const ExperimentConfig& cfg)
    {
        return kShotBlock * cfg.batch_words;
    }

    /** Number of shot blocks of `stream` (ceil(shots/shot_block)). */
    static int stream_blocks(const ExperimentConfig& cfg, int stream);

    /**
     * Total scheduler work units of a full run(): the parallelism cap.
     * At the default config this comfortably exceeds the old
     * one-unit-per-stream scheduler's 8.
     */
    static long n_work_units(const ExperimentConfig& cfg);

    const CodeContext& ctx() const { return *ctx_; }
    const ExperimentConfig& config() const { return cfg_; }

    /**
     * Attaches a telemetry collector observing subsequent run() /
     * run_partials() calls (nullptr detaches).  Pure side channel
     * (src/telemetry/telemetry.h): stage timers, counters and the
     * optional leakage heatmap are recorded per (stream, block) work
     * unit WITHOUT touching any RNG draw or result-bearing sum, so
     * Metrics are bit-identical with or without a collector — enforced
     * by the telemetry drift gate in tests/test_telemetry.cc.
     */
    void set_telemetry(telemetry::Collector* col) { telemetry_ = col; }

  private:
    /**
     * One executor slot's reusable block state — simulator, policies,
     * decoder and all per-block scratch (defined in experiment.cc).
     * Each slot of a run_partials call owns one instance; a worker
     * resets the cached objects per block instead of reconstructing.
     */
    struct BlockResources;

    Metrics run_block(const PolicyFactory& factory, int stream, int block,
                      const DecodingGraph* graph, telemetry::Record* telem,
                      BlockResources* res) const;
    Metrics run_block_batch(class BatchSimulator& sim,
                            const PolicyFactory& factory,
                            uint64_t policy_seed, Rng shot_rng, int shots,
                            const DecodingGraph* graph,
                            telemetry::Record* telem,
                            BlockResources* res) const;

    const CodeContext* ctx_;
    ExperimentConfig cfg_;
    std::shared_ptr<DecodingGraph> graph_;  ///< built once if compute_ler
    std::vector<int> z_checks_;  ///< Z-check ids, built if compute_ler
    telemetry::Collector* telemetry_ = nullptr;  ///< optional side channel
};

/** Convenience: factories for every policy the paper evaluates. */
struct PolicyZoo {
    static PolicyFactory no_lrc();
    static PolicyFactory always_lrc();
    static PolicyFactory staggered();
    static PolicyFactory mlr_only();
    static PolicyFactory ideal();
    static PolicyFactory eraser(bool use_mlr);
    /** Builds (and shares) the single-round tables at first use. */
    static PolicyFactory gladiator(bool use_mlr, const NoiseParams& np,
                                   SpecModelOptions opt = {});
    static PolicyFactory gladiator_d(bool use_mlr, const NoiseParams& np,
                                     SpecModelOptions opt = {});
};

}  // namespace gld

#endif  // GLD_RUNTIME_EXPERIMENT_H_
