#ifndef GLD_RUNTIME_METRICS_H_
#define GLD_RUNTIME_METRICS_H_

#include <string>
#include <vector>

#include "stats/stats.h"

namespace gld {

/**
 * Aggregated results of a memory experiment under one policy — the paper's
 * evaluation metrics (§7): speculation accuracy (FN/FP/TP), LRC usage,
 * data-leakage population (DLP), and logical error rate (LER).
 *
 * Totals accumulate over shots; the accessors normalize.
 */
struct Metrics {
    long shots = 0;
    long rounds_per_shot = 0;

    // Speculation accounting (per LRC-decision, data qubits only).
    double fn_total = 0;  ///< leaked data qubits left unscheduled
    double fp_total = 0;  ///< LRCs applied to non-leaked data qubits
    double tp_total = 0;  ///< LRCs applied to leaked data qubits

    // LRC usage.
    double lrc_data_total = 0;
    double lrc_check_total = 0;

    // Leakage populations.
    std::vector<double> dlp_series;  ///< per-round sum of DLP over shots
    double dlp_total = 0;            ///< sum over shots and rounds
    double check_leak_total = 0;

    // Decoding.
    long logical_errors = 0;
    long decoded_shots = 0;

    /** Merges another accumulator (thread reduction). */
    void merge(const Metrics& o);

    // --- Normalized views. ---
    double denom() const
    {
        return static_cast<double>(shots) * static_cast<double>(rounds_per_shot);
    }
    /** Average counts per shot (the unit of the paper's Fig 9 bars). */
    double fn_per_shot() const
    {
        return fn_total / static_cast<double>(shots);
    }
    double fp_per_shot() const
    {
        return fp_total / static_cast<double>(shots);
    }
    double lrc_per_shot() const
    {
        return (lrc_data_total + lrc_check_total) /
               static_cast<double>(shots);
    }
    /** Rates per data-qubit-round style normalizations. */
    double fn_per_round() const { return fn_total / denom(); }
    double fp_per_round() const { return fp_total / denom(); }
    double lrc_data_per_round() const { return lrc_data_total / denom(); }
    double lrc_all_per_round() const
    {
        return (lrc_data_total + lrc_check_total) / denom();
    }
    /** Mean data-leakage population (fraction of data qubits). */
    double dlp_mean() const { return dlp_total / denom(); }
    /** DLP averaged over the last `tail_frac` of rounds (equilibrium). */
    double dlp_equilibrium(double tail_frac = 0.2) const;
    /** DLP time series normalized per shot. */
    std::vector<double> dlp_curve() const;
    /** Speculation inaccuracy: (FN + FP) per round (Table 4). */
    double spec_inaccuracy() const
    {
        return (fn_total + fp_total) / denom();
    }
    double ler() const
    {
        return decoded_shots > 0
                   ? static_cast<double>(logical_errors) /
                         static_cast<double>(decoded_shots)
                   : 0.0;
    }

    // --- Pairwise-comparison views (the referee's inputs). ---
    //
    // Each metric the cross-backend referee tests is exposed as a
    // stats::RateSample — events out of well-defined trials — so
    // gld_campaign verify, the test suites and any bench gate all feed
    // the SAME samples into the same stats:: tests.
    //
    // The trial unit matters for calibration.  LER is a true binomial
    // (decoded shots are independent).  FN/FP/DLP events, however,
    // cluster heavily across the ROUNDS of one shot (a persistently
    // leaked qubit is false-negatived, or LRC'd, round after round), so
    // a per-qubit-ROUND binomial understates their variance and inflates
    // z-scores under the null (measured: z std ~1.6 for FP).  These
    // samples therefore treat each (shot, data qubit) TRAJECTORY as one
    // trial whose value is the fraction of rounds the event held:
    // events = total / rounds_per_shot, trials = shots x n_data.  The
    // observed rate is unchanged, and because a [0, 1]-valued variable
    // with mean p has variance at most p(1-p), the pooled z-test over
    // these trials is conservative under ARBITRARY round-to-round
    // clustering — the safe direction for a correctness gate.
    // Per-qubit metrics need the code's qubit counts (a Metrics does
    // not know its code).

    /** Logical errors out of decoded shots (a true binomial). */
    stats::RateSample ler_sample() const;
    /** Per-round FN fraction over shot x data-qubit trajectories. */
    stats::RateSample fn_sample(int n_data) const;
    /** Per-round FP fraction over shot x data-qubit trajectories. */
    stats::RateSample fp_sample(int n_data) const;
    /** Per-round DLP fraction over shot x data-qubit trajectories. */
    stats::RateSample dlp_sample(int n_data) const;
    /** Per-round check-leak fraction over shot x check trajectories. */
    stats::RateSample check_leak_sample(int n_checks) const;
};

/**
 * Bit-exact pairwise comparison: returns one human-readable line per
 * field whose value differs between `a` and `b` ("fn_total (3 vs 4)"),
 * comparing doubles by IEEE-754 bit pattern — 0.1 + 0.2 style drift
 * counts as a difference.  Empty result == bit-identical Metrics.  This
 * is the ONE definition of Metrics equality: the verify referee's
 * bit-exact mode and the test suites' expect_metrics_identical both
 * call it.
 */
std::vector<std::string> metrics_bit_diff(const Metrics& a,
                                          const Metrics& b);

}  // namespace gld

#endif  // GLD_RUNTIME_METRICS_H_
