#ifndef GLD_RUNTIME_METRICS_H_
#define GLD_RUNTIME_METRICS_H_

#include <vector>

namespace gld {

/**
 * Aggregated results of a memory experiment under one policy — the paper's
 * evaluation metrics (§7): speculation accuracy (FN/FP/TP), LRC usage,
 * data-leakage population (DLP), and logical error rate (LER).
 *
 * Totals accumulate over shots; the accessors normalize.
 */
struct Metrics {
    long shots = 0;
    long rounds_per_shot = 0;

    // Speculation accounting (per LRC-decision, data qubits only).
    double fn_total = 0;  ///< leaked data qubits left unscheduled
    double fp_total = 0;  ///< LRCs applied to non-leaked data qubits
    double tp_total = 0;  ///< LRCs applied to leaked data qubits

    // LRC usage.
    double lrc_data_total = 0;
    double lrc_check_total = 0;

    // Leakage populations.
    std::vector<double> dlp_series;  ///< per-round sum of DLP over shots
    double dlp_total = 0;            ///< sum over shots and rounds
    double check_leak_total = 0;

    // Decoding.
    long logical_errors = 0;
    long decoded_shots = 0;

    /** Merges another accumulator (thread reduction). */
    void merge(const Metrics& o);

    // --- Normalized views. ---
    double denom() const
    {
        return static_cast<double>(shots) * static_cast<double>(rounds_per_shot);
    }
    /** Average counts per shot (the unit of the paper's Fig 9 bars). */
    double fn_per_shot() const
    {
        return fn_total / static_cast<double>(shots);
    }
    double fp_per_shot() const
    {
        return fp_total / static_cast<double>(shots);
    }
    double lrc_per_shot() const
    {
        return (lrc_data_total + lrc_check_total) /
               static_cast<double>(shots);
    }
    /** Rates per data-qubit-round style normalizations. */
    double fn_per_round() const { return fn_total / denom(); }
    double fp_per_round() const { return fp_total / denom(); }
    double lrc_data_per_round() const { return lrc_data_total / denom(); }
    double lrc_all_per_round() const
    {
        return (lrc_data_total + lrc_check_total) / denom();
    }
    /** Mean data-leakage population (fraction of data qubits). */
    double dlp_mean() const { return dlp_total / denom(); }
    /** DLP averaged over the last `tail_frac` of rounds (equilibrium). */
    double dlp_equilibrium(double tail_frac = 0.2) const;
    /** DLP time series normalized per shot. */
    std::vector<double> dlp_curve() const;
    /** Speculation inaccuracy: (FN + FP) per round (Table 4). */
    double spec_inaccuracy() const
    {
        return (fn_total + fp_total) / denom();
    }
    double ler() const
    {
        return decoded_shots > 0
                   ? static_cast<double>(logical_errors) /
                         static_cast<double>(decoded_shots)
                   : 0.0;
    }
};

}  // namespace gld

#endif  // GLD_RUNTIME_METRICS_H_
