#include <cstddef>
#include "runtime/metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstring>

namespace gld {

void
Metrics::merge(const Metrics& o)
{
    assert(rounds_per_shot == 0 || o.rounds_per_shot == 0 ||
           rounds_per_shot == o.rounds_per_shot);
    if (rounds_per_shot == 0)
        rounds_per_shot = o.rounds_per_shot;
    shots += o.shots;
    fn_total += o.fn_total;
    fp_total += o.fp_total;
    tp_total += o.tp_total;
    lrc_data_total += o.lrc_data_total;
    lrc_check_total += o.lrc_check_total;
    if (dlp_series.size() < o.dlp_series.size())
        dlp_series.resize(o.dlp_series.size(), 0.0);
    for (size_t i = 0; i < o.dlp_series.size(); ++i)
        dlp_series[i] += o.dlp_series[i];
    dlp_total += o.dlp_total;
    check_leak_total += o.check_leak_total;
    logical_errors += o.logical_errors;
    decoded_shots += o.decoded_shots;
}

double
Metrics::dlp_equilibrium(double tail_frac) const
{
    if (dlp_series.empty() || shots == 0)
        return 0.0;
    const size_t n = dlp_series.size();
    const size_t start =
        n - std::max<size_t>(
                1, static_cast<size_t>(tail_frac * static_cast<double>(n)));
    double sum = 0;
    for (size_t i = start; i < n; ++i)
        sum += dlp_series[i];
    return sum / (static_cast<double>(n - start) *
                  static_cast<double>(shots));
}

std::vector<double>
Metrics::dlp_curve() const
{
    std::vector<double> out(dlp_series.size());
    for (size_t i = 0; i < dlp_series.size(); ++i)
        out[i] = shots > 0 ? dlp_series[i] / static_cast<double>(shots)
                           : 0.0;
    return out;
}

// --- Pairwise-comparison views. ---

stats::RateSample
Metrics::ler_sample() const
{
    return {static_cast<double>(logical_errors),
            static_cast<double>(decoded_shots)};
}

namespace {

/** Cluster-robust sample: `total` events over (shot x qubit) x rounds
 *  cells, folded to one [0, 1]-valued trial per (shot, qubit)
 *  trajectory (see the header's calibration note). */
stats::RateSample
trajectory_sample(double total, long shots, long rounds, int n_qubits)
{
    if (rounds <= 0)
        return {0.0, 0.0};
    return {total / static_cast<double>(rounds),
            static_cast<double>(shots) * static_cast<double>(n_qubits)};
}

}  // namespace

stats::RateSample
Metrics::fn_sample(int n_data) const
{
    return trajectory_sample(fn_total, shots, rounds_per_shot, n_data);
}

stats::RateSample
Metrics::fp_sample(int n_data) const
{
    return trajectory_sample(fp_total, shots, rounds_per_shot, n_data);
}

stats::RateSample
Metrics::dlp_sample(int n_data) const
{
    return trajectory_sample(dlp_total, shots, rounds_per_shot, n_data);
}

stats::RateSample
Metrics::check_leak_sample(int n_checks) const
{
    return trajectory_sample(check_leak_total, shots, rounds_per_shot,
                             n_checks);
}

namespace {

bool
bits_equal(double a, double b)
{
    uint64_t ab, bb;
    std::memcpy(&ab, &a, sizeof(ab));
    std::memcpy(&bb, &b, sizeof(bb));
    return ab == bb;
}

void
diff_double(std::vector<std::string>* out, const char* name, double a,
            double b)
{
    if (bits_equal(a, b))
        return;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s (%.17g vs %.17g)", name, a, b);
    out->push_back(buf);
}

void
diff_long(std::vector<std::string>* out, const char* name, long a, long b)
{
    if (a == b)
        return;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s (%ld vs %ld)", name, a, b);
    out->push_back(buf);
}

}  // namespace

std::vector<std::string>
metrics_bit_diff(const Metrics& a, const Metrics& b)
{
    std::vector<std::string> out;
    diff_long(&out, "shots", a.shots, b.shots);
    diff_long(&out, "rounds_per_shot", a.rounds_per_shot,
              b.rounds_per_shot);
    diff_double(&out, "fn_total", a.fn_total, b.fn_total);
    diff_double(&out, "fp_total", a.fp_total, b.fp_total);
    diff_double(&out, "tp_total", a.tp_total, b.tp_total);
    diff_double(&out, "lrc_data_total", a.lrc_data_total,
                b.lrc_data_total);
    diff_double(&out, "lrc_check_total", a.lrc_check_total,
                b.lrc_check_total);
    diff_double(&out, "dlp_total", a.dlp_total, b.dlp_total);
    diff_double(&out, "check_leak_total", a.check_leak_total,
                b.check_leak_total);
    diff_long(&out, "logical_errors", a.logical_errors, b.logical_errors);
    diff_long(&out, "decoded_shots", a.decoded_shots, b.decoded_shots);
    if (a.dlp_series.size() != b.dlp_series.size()) {
        diff_long(&out, "dlp_series.size",
                  static_cast<long>(a.dlp_series.size()),
                  static_cast<long>(b.dlp_series.size()));
    } else {
        for (size_t i = 0; i < a.dlp_series.size(); ++i) {
            char name[48];
            std::snprintf(name, sizeof(name), "dlp_series[%zu]", i);
            diff_double(&out, name, a.dlp_series[i], b.dlp_series[i]);
        }
    }
    return out;
}

}  // namespace gld
