#include <cstddef>
#include "runtime/metrics.h"

#include <algorithm>
#include <cassert>

namespace gld {

void
Metrics::merge(const Metrics& o)
{
    assert(rounds_per_shot == 0 || o.rounds_per_shot == 0 ||
           rounds_per_shot == o.rounds_per_shot);
    if (rounds_per_shot == 0)
        rounds_per_shot = o.rounds_per_shot;
    shots += o.shots;
    fn_total += o.fn_total;
    fp_total += o.fp_total;
    tp_total += o.tp_total;
    lrc_data_total += o.lrc_data_total;
    lrc_check_total += o.lrc_check_total;
    if (dlp_series.size() < o.dlp_series.size())
        dlp_series.resize(o.dlp_series.size(), 0.0);
    for (size_t i = 0; i < o.dlp_series.size(); ++i)
        dlp_series[i] += o.dlp_series[i];
    dlp_total += o.dlp_total;
    check_leak_total += o.check_leak_total;
    logical_errors += o.logical_errors;
    decoded_shots += o.decoded_shots;
}

double
Metrics::dlp_equilibrium(double tail_frac) const
{
    if (dlp_series.empty() || shots == 0)
        return 0.0;
    const size_t n = dlp_series.size();
    const size_t start =
        n - std::max<size_t>(
                1, static_cast<size_t>(tail_frac * static_cast<double>(n)));
    double sum = 0;
    for (size_t i = start; i < n; ++i)
        sum += dlp_series[i];
    return sum / (static_cast<double>(n - start) *
                  static_cast<double>(shots));
}

std::vector<double>
Metrics::dlp_curve() const
{
    std::vector<double> out(dlp_series.size());
    for (size_t i = 0; i < dlp_series.size(); ++i)
        out[i] = shots > 0 ? dlp_series[i] / static_cast<double>(shots)
                           : 0.0;
    return out;
}

}  // namespace gld
