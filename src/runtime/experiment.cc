#include <cstddef>
#include "runtime/experiment.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <string>

#include "core/policy_eraser.h"
#include "core/policy_gladiator.h"
#include "core/policy_static.h"
#include "decode/dem_builder.h"
#include "sim/batch_driver.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace gld {

/**
 * One executor slot's reusable block state.  Everything a block used to
 * construct or allocate per (stream, block) lives here instead, owned by
 * the slot for the whole run_partials loop: the simulator is
 * reset_for_block()-ed per block, policies are rebuilt never (begin_shot
 * is the per-shot reset), the decoder keeps its arena, and the scratch
 * vectors keep their capacity (assign/resize write the same initial
 * values a fresh vector would hold, so reuse is bit-identical to fresh —
 * the determinism gate's reuse ≡ fresh arm runs with
 * cfg.reuse_worker_state = false, which clears this struct per block).
 * alignas: adjacent slots' vector headers must not share a cache line.
 */
struct alignas(64) ExperimentRunner::BlockResources {
    std::unique_ptr<Simulator> sim;
    std::vector<std::unique_ptr<Policy>> policies;  ///< scalar path: [0]
    std::unique_ptr<UnionFindDecoder> decoder;

    // Scalar-path scratch.
    std::vector<int> sched_stamp;
    std::vector<uint8_t> syndrome1;

    // Batch-path scratch (mirrors the locals the batch block held).
    std::vector<LrcSchedule> scheds;
    std::vector<RoundResult> rr;
    std::vector<std::vector<uint8_t>> flips;
    std::vector<LaneMask> sched_word;
    std::vector<int> data_leaked;
    std::vector<int> check_leaked;
    std::vector<std::vector<double>> dlp_buf;
    std::vector<std::vector<double>> chk_buf;
    std::vector<std::vector<uint8_t>> syndrome;
};

ExperimentRunner::ExperimentRunner(const CodeContext& ctx,
                                   const ExperimentConfig& cfg)
    : ctx_(&ctx), cfg_(cfg)
{
    if (cfg_.batch_words < 1 || cfg_.batch_words > kMaxBatchWords) {
        throw std::invalid_argument(
            "ExperimentConfig::batch_words " +
            std::to_string(cfg_.batch_words) + " outside [1, " +
            std::to_string(kMaxBatchWords) + "]");
    }
    if (cfg_.compute_ler) {
        DemBuilder dem(ctx.code(), ctx.rc(), cfg_.np, cfg_.rounds);
        graph_ = std::make_shared<DecodingGraph>(dem.build());
        z_checks_ = ctx.code().checks_of_type(CheckType::kZ);
    }
}

Metrics
ExperimentRunner::run_block(const PolicyFactory& factory, int stream,
                            int block, const DecodingGraph* graph,
                            telemetry::Record* telem,
                            BlockResources* res) const
{
    const CssCode& code = ctx_->code();
    const int n_data = code.n_data();
    const int n_checks = code.n_checks();
    const int total = stream_shots(cfg_, stream);
    const int first = block * shot_block(cfg_);
    const int shots = std::min(shot_block(cfg_), total - first);

    // The reuse ≡ fresh control arm: discarding the slot's cached state
    // per block reproduces the pre-reuse fresh-construction path exactly.
    if (!cfg_.reuse_worker_state)
        *res = BlockResources{};

    // Telemetry is a pure side channel: the StageClock and the counters
    // below never draw randomness and never feed a result-bearing sum,
    // and every call is a no-op when `telem` is null (always the case
    // with telemetry compiled out or no collector attached).
    telemetry::StageClock clock(telem);

    Metrics m;
    m.rounds_per_shot = cfg_.rounds;
    if (cfg_.record_dlp_series)
        m.dlp_series.assign(cfg_.rounds, 0.0);

    // Every (stream, block) work unit owns three independent derived
    // generators — simulator, leakage-sampling shot draws, policy seed —
    // reached by nested splits off the config seed.  The derivation
    // depends only on (seed, stream, block), never on the thread that
    // happens to execute the unit, so any schedule produces the same
    // draws.  Disjoint leaf ids per block keep generators uncorrelated.
    const Rng block_master =
        Rng(cfg_.seed).split(static_cast<uint64_t>(stream))
            .split(static_cast<uint64_t>(block));
    Rng shot_rng = block_master.split(1);
    const uint64_t sim_seed = block_master.split(0).next_u64();
    // The slot's cached simulator, reset to exactly what a fresh
    // make_simulator(..., sim_seed, ...) would be — the steady state
    // allocates nothing here.
    if (res->sim == nullptr)
        res->sim = make_simulator(cfg_.backend, code, ctx_->rc(), cfg_.np,
                                  sim_seed, cfg_.batch_words,
                                  cfg_.noise_sampling);
    else
        res->sim->reset_for_block(sim_seed);
    Simulator* sim = res->sim.get();
    const uint64_t policy_seed = block_master.split(2).next_u64();

    // A batch-capable backend takes the whole block as one lockstep shot
    // batch (lane k == the scalar path's k-th shot of this block, same
    // derived RNG streams — the Metrics come out bit-identical).
    if (auto* bsim = dynamic_cast<BatchSimulator*>(sim)) {
        clock.lap(telemetry::kSim);  // batch simulator reset/construction
        return run_block_batch(*bsim, factory, policy_seed, shot_rng, shots,
                               graph, telem, res);
    }

    clock.lap(telemetry::kSim);  // simulator reset/construction
    // One cached policy per slot (in-tree policies ignore the factory
    // seed and fully reset in begin_shot — the PolicyFactory contract);
    // the oracle is rebound every block.
    if (res->policies.empty())
        res->policies.push_back(factory(*ctx_, policy_seed));
    Policy* policy = res->policies.front().get();
    policy->set_oracle(sim);
    clock.lap(telemetry::kPolicy);  // policy build/rebind
    // Ground truth for the speculation accounting below: the shared
    // LeakageDriver's flag state, read through the one oracle interface
    // instead of per-call virtual hops on the backend.
    const LeakageOracle& truth = sim->leak_oracle();

    if (graph != nullptr && res->decoder == nullptr)
        res->decoder = std::make_unique<UnionFindDecoder>(*graph);
    UnionFindDecoder* decoder = res->decoder.get();
    const std::vector<int>& z_checks = z_checks_;
    const int nz = static_cast<int>(z_checks.size());
    clock.lap(telemetry::kDecode);  // decoder construction

    // Same initial values a fresh block's locals held, capacity reused.
    res->sched_stamp.assign(static_cast<size_t>(n_data), -1);
    std::vector<int>& sched_stamp = res->sched_stamp;
    std::vector<uint8_t>& syndrome = res->syndrome1;

    for (int shot = 0; shot < shots; ++shot) {
        clock.lap(telemetry::kAccounting);
        sim->reset_shot();
        clock.lap(telemetry::kSim);
        policy->begin_shot();
        clock.lap(telemetry::kPolicy);
        // Stamps are per shot: a stale stamp from an earlier shot at the
        // same round index would mask that shot's false negatives.
        std::fill(sched_stamp.begin(), sched_stamp.end(), -1);
        if (cfg_.leakage_sampling)
            sim->inject_data_leak(
                static_cast<int>(shot_rng.uniform_int(n_data)));

        if (graph != nullptr)
            syndrome.assign(static_cast<size_t>(cfg_.rounds + 1) * nz, 0);
        clock.lap(telemetry::kSim);

        LrcSchedule sched;
        RoundResult rr;
        for (int r = 0; r < cfg_.rounds; ++r) {
            // Account the LRCs about to be applied against ground truth.
            for (int q : sched.data_qubits) {
                if (truth.data_leaked(q))
                    m.tp_total += 1;
                else
                    m.fp_total += 1;
            }
            m.lrc_data_total += static_cast<double>(sched.data_qubits.size());
            m.lrc_check_total += static_cast<double>(sched.checks.size());
            clock.lap(telemetry::kAccounting);

            rr = sim->run_round(sched);
            clock.lap(telemetry::kSim);
            policy->observe(r, rr, &sched);
            clock.lap(telemetry::kPolicy);

            // False negatives: leaked data qubits the policy did not
            // schedule for mitigation.
            for (int q : sched.data_qubits)
                sched_stamp[q] = r;
            for (int q = 0; q < n_data; ++q) {
                if (truth.data_leaked(q) && sched_stamp[q] != r)
                    m.fn_total += 1;
            }

            // Hoisted oracle read: the same value feeds the DLP sum and
            // the telemetry histogram (pure read — no draw, no state).
            const int n_leaked = truth.n_data_leaked();
            const double dlp = static_cast<double>(n_leaked) / n_data;
            m.dlp_total += dlp;
            if (cfg_.record_dlp_series)
                m.dlp_series[r] += dlp;
            m.check_leak_total +=
                static_cast<double>(truth.n_check_leaked()) / n_checks;
            if (telem != nullptr) {
                ++telem->leak_hist[static_cast<size_t>(n_leaked)];
                if (telem->heatmap.enabled()) {
                    uint64_t* row = telem->heatmap.row(r);
                    truth.add_leak_occupancy(row, n_data, row + n_data,
                                             n_checks);
                }
            }

            if (graph != nullptr) {
                for (int zi = 0; zi < nz; ++zi) {
                    syndrome[static_cast<size_t>(r) * nz + zi] =
                        rr.detector[z_checks[zi]];
                }
            }
            clock.lap(telemetry::kAccounting);
        }

        if (graph != nullptr) {
            const std::vector<uint8_t> flips = sim->final_data_measure();
            clock.lap(telemetry::kSim);
            for (int zi = 0; zi < nz; ++zi) {
                uint8_t det = rr.meas_flip[z_checks[zi]];
                for (int q : code.check(z_checks[zi]).support)
                    det ^= flips[q];
                syndrome[static_cast<size_t>(cfg_.rounds) * nz + zi] = det;
            }
            uint8_t observed = 0;
            for (int q : code.logical_z())
                observed ^= flips[q];
            clock.lap(telemetry::kAccounting);
            const bool predicted = decoder->decode(syndrome);
            clock.lap(telemetry::kDecode);
            if ((observed != 0) != predicted)
                ++m.logical_errors;
            ++m.decoded_shots;
        }
        ++m.shots;
    }
    if (telem != nullptr) {
        telem->shots += static_cast<uint64_t>(shots);
        telem->rounds += static_cast<uint64_t>(shots) *
                         static_cast<uint64_t>(cfg_.rounds);
        telem->blocks += 1;
        clock.lap(telemetry::kAccounting);
    }
    return m;
}

Metrics
ExperimentRunner::run_block_batch(BatchSimulator& sim,
                                  const PolicyFactory& factory,
                                  uint64_t policy_seed, Rng shot_rng,
                                  int shots,
                                  const DecodingGraph* graph,
                                  telemetry::Record* telem,
                                  BlockResources* res) const
{
    const CssCode& code = ctx_->code();
    const int n_data = code.n_data();
    const int n_checks = code.n_checks();
    const int width = sim.batch_width();
    const int W = sim.batch_n_words();  ///< words per lane span (K)
    const int max_lanes = std::min(width, shots);
    const int rounds = cfg_.rounds;

    // Same pure-side-channel contract as the scalar path; the batch
    // flavour reads the heatmap and the leak histogram off the ground
    // truth leak WORDS (one popcount per qubit instead of 64 oracle
    // walks), which is a read-only view of the same flags.
    telemetry::StageClock clock(telem);

    Metrics m;
    m.rounds_per_shot = rounds;
    if (cfg_.record_dlp_series)
        m.dlp_series.assign(static_cast<size_t>(rounds), 0.0);

    // One policy per lane, from the slot's cache — the pre-reuse path
    // built all max_lanes from the block's one policy seed (exactly the
    // seed the scalar path hands its single policy; in-tree policies
    // derive no randomness from it, and per-shot behaviour is reset by
    // begin_shot, so lane k's policy replays the scalar policy's k-th
    // shot).  The cache only ever GROWS (a partial trailing block needs
    // fewer lanes than a full one); each lane's oracle view is rebound
    // per block to show only that lane's truth on this block's simulator.
    std::vector<std::unique_ptr<Policy>>& policies = res->policies;
    policies.reserve(static_cast<size_t>(max_lanes));
    while (static_cast<int>(policies.size()) < max_lanes)
        policies.push_back(factory(*ctx_, policy_seed));
    for (int l = 0; l < max_lanes; ++l)
        policies[static_cast<size_t>(l)]->set_leak_oracle(
            &sim.lane_oracle(l));
    clock.lap(telemetry::kPolicy);  // per-lane policy builds/rebinds

    if (graph != nullptr && res->decoder == nullptr)
        res->decoder = std::make_unique<UnionFindDecoder>(*graph);
    UnionFindDecoder* decoder = res->decoder.get();
    const std::vector<int>& z_checks = z_checks_;
    const int nz = static_cast<int>(z_checks.size());
    clock.lap(telemetry::kDecode);  // decoder construction

    // Per-block scratch out of the slot's cache: resize() writes the
    // same sizes a fresh block's locals had, every element below is
    // written before it is read (scheds are cleared per batch, the word/
    // count scratch is zero-filled per round, the buffers per (lane,
    // round) cell per round), so stale content from the previous block
    // is never observable — reuse stays bit-identical to fresh.
    std::vector<LrcSchedule>& scheds = res->scheds;
    if (static_cast<int>(scheds.size()) < max_lanes)
        scheds.resize(static_cast<size_t>(max_lanes));
    std::vector<RoundResult>& rr = res->rr;
    std::vector<std::vector<uint8_t>>& flips = res->flips;
    // Word-wide accounting scratch: which lanes scheduled an LRC on each
    // data qubit this round (the FN check is then one popcount per
    // qubit word), and per-lane leak counts gathered by one sparse pass
    // over the leak words instead of 64*K oracle walks.  Spans of W
    // words per qubit, same layout as the simulator's leaked_words().
    std::vector<LaneMask>& sched_word = res->sched_word;
    sched_word.assign(
        static_cast<size_t>(n_data) * static_cast<size_t>(W), 0);
    std::vector<int>& data_leaked = res->data_leaked;
    std::vector<int>& check_leaked = res->check_leaked;
    data_leaked.assign(static_cast<size_t>(max_lanes), 0);
    check_leaked.assign(static_cast<size_t>(max_lanes), 0);
    // Float accumulators are buffered per (lane, round) and replayed
    // shot-major below: double addition is order-sensitive, and the gate
    // vs the scalar backend is BIT-exact equality, not approximation.
    std::vector<std::vector<double>>& dlp_buf = res->dlp_buf;
    std::vector<std::vector<double>>& chk_buf = res->chk_buf;
    if (static_cast<int>(dlp_buf.size()) < max_lanes) {
        dlp_buf.resize(static_cast<size_t>(max_lanes));
        chk_buf.resize(static_cast<size_t>(max_lanes));
    }
    for (int l = 0; l < max_lanes; ++l) {
        dlp_buf[static_cast<size_t>(l)].resize(
            static_cast<size_t>(rounds));
        chk_buf[static_cast<size_t>(l)].resize(
            static_cast<size_t>(rounds));
    }
    std::vector<std::vector<uint8_t>>& syndrome = res->syndrome;
    if (static_cast<int>(syndrome.size()) < max_lanes)
        syndrome.resize(static_cast<size_t>(max_lanes));

    for (int first = 0; first < shots; first += width) {
        const int lanes = std::min(width, shots - first);
        // Active-lane span of this batch: full words below the lane
        // boundary, a partial word at it, empty words above (a partial
        // trailing batch's boundary may fall mid-span).
        LaneMask lanes_mask[kMaxBatchWords];
        for (int w = 0; w < W; ++w) {
            const int base = w * kBatchLanes;
            if (lanes - base >= kBatchLanes)
                lanes_mask[w] = ~0ull;
            else if (lanes - base > 0)
                lanes_mask[w] = (1ull << (lanes - base)) - 1;
            else
                lanes_mask[w] = 0;
        }
        sim.reset_shot_batch(lanes);
        for (int l = 0; l < lanes; ++l) {
            const size_t li = static_cast<size_t>(l);
            policies[li]->begin_shot();
            scheds[li].clear();
            // Same per-shot draw the scalar path makes, in lane (= shot)
            // order, from the same block-level stream.
            if (cfg_.leakage_sampling)
                sim.inject_data_leak_lane(
                    l, static_cast<int>(shot_rng.uniform_int(
                           static_cast<uint32_t>(n_data))));
            if (graph != nullptr)
                syndrome[li].assign(
                    static_cast<size_t>(rounds + 1) * static_cast<size_t>(nz),
                    0);
        }
        clock.lap(telemetry::kSim);  // batch reset + leak injection

        for (int r = 0; r < rounds; ++r) {
            // Account the LRCs about to be applied against each lane's
            // ground truth (integer-valued adds: order-insensitive).
            const LaneMask* leak_words = sim.leaked_words();
            for (int l = 0; l < lanes; ++l) {
                const size_t li = static_cast<size_t>(l);
                for (int q : scheds[li].data_qubits) {
                    if (lane_bit(&leak_words[static_cast<size_t>(q) *
                                             static_cast<size_t>(W)],
                                 l))
                        m.tp_total += 1;
                    else
                        m.fp_total += 1;
                }
                m.lrc_data_total +=
                    static_cast<double>(scheds[li].data_qubits.size());
                m.lrc_check_total +=
                    static_cast<double>(scheds[li].checks.size());
            }
            clock.lap(telemetry::kAccounting);

            sim.run_round_batch(scheds, &rr);
            clock.lap(telemetry::kSim);

            for (int l = 0; l < lanes; ++l)
                policies[static_cast<size_t>(l)]->observe(
                    r, rr[static_cast<size_t>(l)],
                    &scheds[static_cast<size_t>(l)]);
            clock.lap(telemetry::kPolicy);

            // False negatives + leak populations, word-wide: one pass
            // over the leak words replaces 64 per-lane oracle walks.
            std::fill(sched_word.begin(), sched_word.end(), 0);
            for (int l = 0; l < lanes; ++l) {
                for (int q : scheds[static_cast<size_t>(l)].data_qubits)
                    set_lane_bit(&sched_word[static_cast<size_t>(q) *
                                             static_cast<size_t>(W)],
                                 l);
            }
            std::fill(data_leaked.begin(), data_leaked.end(), 0);
            std::fill(check_leaked.begin(), check_leaked.end(), 0);
            for (int q = 0; q < n_data; ++q) {
                const size_t qb = static_cast<size_t>(q) *
                                  static_cast<size_t>(W);
                for (int w = 0; w < W; ++w) {
                    const LaneMask lk =
                        leak_words[qb + static_cast<size_t>(w)] &
                        lanes_mask[w];
                    m.fn_total += static_cast<double>(__builtin_popcountll(
                        lk & ~sched_word[qb + static_cast<size_t>(w)]));
                    const int base = w * kBatchLanes;
                    for_each_lane(lk, [&](int b) {
                        ++data_leaked[static_cast<size_t>(base + b)];
                    });
                }
            }
            for (int c = 0; c < n_checks; ++c) {
                const size_t ab = static_cast<size_t>(code.ancilla_of(c)) *
                                  static_cast<size_t>(W);
                for (int w = 0; w < W; ++w) {
                    const LaneMask lk =
                        leak_words[ab + static_cast<size_t>(w)] &
                        lanes_mask[w];
                    const int base = w * kBatchLanes;
                    for_each_lane(lk, [&](int b) {
                        ++check_leaked[static_cast<size_t>(base + b)];
                    });
                }
            }
            if (telem != nullptr) {
                // End-of-round leak populations, word-wide: the histogram
                // reuses the per-lane counts computed above, the heatmap
                // is one popcount per qubit column.
                for (int l = 0; l < lanes; ++l)
                    ++telem->leak_hist[static_cast<size_t>(
                        data_leaked[static_cast<size_t>(l)])];
                if (telem->heatmap.enabled()) {
                    uint64_t* row = telem->heatmap.row(r);
                    for (int q = 0; q < n_data; ++q) {
                        const size_t qb = static_cast<size_t>(q) *
                                          static_cast<size_t>(W);
                        for (int w = 0; w < W; ++w)
                            row[q] += static_cast<uint64_t>(
                                __builtin_popcountll(
                                    leak_words[qb + static_cast<size_t>(w)] &
                                    lanes_mask[w]));
                    }
                    uint64_t* crow = row + n_data;
                    for (int c = 0; c < n_checks; ++c) {
                        const size_t ab =
                            static_cast<size_t>(code.ancilla_of(c)) *
                            static_cast<size_t>(W);
                        for (int w = 0; w < W; ++w)
                            crow[c] += static_cast<uint64_t>(
                                __builtin_popcountll(
                                    leak_words[ab + static_cast<size_t>(w)] &
                                    lanes_mask[w]));
                    }
                }
            }
            for (int l = 0; l < lanes; ++l) {
                const size_t li = static_cast<size_t>(l);
                dlp_buf[li][static_cast<size_t>(r)] =
                    static_cast<double>(data_leaked[li]) / n_data;
                chk_buf[li][static_cast<size_t>(r)] =
                    static_cast<double>(check_leaked[li]) / n_checks;
                if (graph != nullptr) {
                    for (int zi = 0; zi < nz; ++zi) {
                        syndrome[li][static_cast<size_t>(r) *
                                         static_cast<size_t>(nz) +
                                     static_cast<size_t>(zi)] =
                            rr[li].detector[static_cast<size_t>(
                                z_checks[static_cast<size_t>(zi)])];
                    }
                }
            }
            clock.lap(telemetry::kAccounting);
        }

        if (graph != nullptr) {
            sim.final_data_measure_batch(&flips);
            clock.lap(telemetry::kSim);
        }

        // Shot-major replay of the per-shot tail: the float sums in the
        // scalar accumulation order, then decode + shot counters.
        for (int l = 0; l < lanes; ++l) {
            const size_t li = static_cast<size_t>(l);
            for (int r = 0; r < rounds; ++r) {
                const double dlp = dlp_buf[li][static_cast<size_t>(r)];
                m.dlp_total += dlp;
                if (cfg_.record_dlp_series)
                    m.dlp_series[static_cast<size_t>(r)] += dlp;
                m.check_leak_total += chk_buf[li][static_cast<size_t>(r)];
            }
            if (graph != nullptr) {
                for (int zi = 0; zi < nz; ++zi) {
                    const int zc = z_checks[static_cast<size_t>(zi)];
                    uint8_t det = rr[li].meas_flip[static_cast<size_t>(zc)];
                    for (int q : code.check(zc).support)
                        det ^= flips[li][static_cast<size_t>(q)];
                    syndrome[li][static_cast<size_t>(rounds) *
                                     static_cast<size_t>(nz) +
                                 static_cast<size_t>(zi)] = det;
                }
                uint8_t observed = 0;
                for (int q : code.logical_z())
                    observed ^= flips[li][static_cast<size_t>(q)];
                clock.lap(telemetry::kAccounting);
                const bool predicted = decoder->decode(syndrome[li]);
                clock.lap(telemetry::kDecode);
                if ((observed != 0) != predicted)
                    ++m.logical_errors;
                ++m.decoded_shots;
            }
            ++m.shots;
        }
    }
    if (telem != nullptr) {
        telem->shots += static_cast<uint64_t>(shots);
        telem->rounds +=
            static_cast<uint64_t>(shots) * static_cast<uint64_t>(rounds);
        telem->blocks += 1;
        clock.lap(telemetry::kAccounting);
    }
    return m;
}

int
ExperimentRunner::n_streams(const ExperimentConfig& cfg)
{
    if (cfg.shots <= 0)
        return 0;
    return std::min(cfg.shots, std::max(1, cfg.rng_streams));
}

int
ExperimentRunner::stream_shots(const ExperimentConfig& cfg, int stream)
{
    const int streams = n_streams(cfg);
    if (stream < 0 || stream >= streams)
        return 0;
    return cfg.shots / streams + (stream < cfg.shots % streams ? 1 : 0);
}

int
ExperimentRunner::stream_blocks(const ExperimentConfig& cfg, int stream)
{
    const int block = shot_block(cfg);
    return (stream_shots(cfg, stream) + block - 1) / block;
}

long
ExperimentRunner::n_work_units(const ExperimentConfig& cfg)
{
    long units = 0;
    for (int s = 0; s < n_streams(cfg); ++s)
        units += stream_blocks(cfg, s);
    return units;
}

std::vector<Metrics>
ExperimentRunner::run_partials(const PolicyFactory& factory,
                               const std::vector<int>& streams) const
{
    const int total_streams = n_streams(cfg_);
    for (int s : streams) {
        if (s < 0 || s >= total_streams)
            throw std::out_of_range(
                "run_partials: stream id " + std::to_string(s) +
                " outside [0, " + std::to_string(total_streams) + ")");
    }

    // Chunked work queue: the schedulable unit is a (stream, shot block),
    // not a whole stream, so the worker count is no longer capped by
    // rng_streams.  The unit list and each unit's RNG derivation depend
    // only on the config; threads pull units off an atomic cursor, park
    // their Metrics in the unit's slot, and the per-stream partial is
    // folded from its blocks in ascending block order afterwards — a
    // fixed left-fold, so the result is schedule-independent and the
    // per-stream partials (the sharding contract) are unchanged by how
    // many threads ran.
    struct WorkUnit {
        size_t request;  ///< index into `streams`
        int stream;
        int block;
    };
    std::vector<WorkUnit> units;
    for (size_t i = 0; i < streams.size(); ++i) {
        const int blocks = stream_blocks(cfg_, streams[i]);
        for (int b = 0; b < blocks; ++b)
            units.push_back({i, streams[i], b});
    }

    // Telemetry rides along per work unit and is merged by the collector
    // in (stream, block) order, so the deterministic aggregates (shot /
    // round counts, leak histogram, heatmap) are as thread-count-
    // independent as the Metrics themselves.
    telemetry::Collector* collector =
        telemetry::kCompiledIn ? telemetry_ : nullptr;
    const int n_data = ctx_->code().n_data();
    const int n_checks = ctx_->code().n_checks();

    // Result slot per unit, padded to a cache line: adjacent units
    // finish on different threads back to back, and unpadded Metrics
    // writes would false-share lines across workers at exactly the
    // moment every worker is storing.
    struct alignas(64) PaddedMetrics {
        Metrics m;
    };
    std::vector<PaddedMetrics> unit_parts(units.size());

    // One reusable resource set per executor slot (simulator, policies,
    // decoder, scratch): a slot runs many units but only ever one at a
    // time, so its caches are single-threaded by construction.
    std::vector<BlockResources> slot_res(
        parallel_width(units.size(), cfg_.threads));
    parallel_for_slots(units.size(), cfg_.threads, [&](size_t u, int slot) {
        BlockResources* res = &slot_res[static_cast<size_t>(slot)];
        if (collector != nullptr) {
            telemetry::Record rec;
            rec.leak_hist.assign(static_cast<size_t>(n_data) + 1, 0);
            if (collector->heatmap())
                rec.heatmap.init(cfg_.rounds, n_data, n_checks);
            unit_parts[u].m = run_block(factory, units[u].stream,
                                        units[u].block, graph_.get(), &rec,
                                        res);
            collector->record_unit(units[u].stream, units[u].block,
                                   std::move(rec));
        } else {
            unit_parts[u].m = run_block(factory, units[u].stream,
                                        units[u].block, graph_.get(),
                                        nullptr, res);
        }
    });

    // Fold each stream's block partials in block order (units were built
    // grouped per requested stream, blocks ascending).
    std::vector<Metrics> parts(streams.size());
    std::vector<uint8_t> seeded(streams.size(), 0);
    for (size_t u = 0; u < units.size(); ++u) {
        const size_t i = units[u].request;
        if (!seeded[i]) {
            parts[i] = std::move(unit_parts[u].m);
            seeded[i] = 1;
        } else {
            parts[i].merge(unit_parts[u].m);
        }
    }
    return parts;
}

Metrics
ExperimentRunner::run(const PolicyFactory& factory) const
{
    // Reproducibility contract: shots are partitioned into a fixed number
    // of RNG streams derived only from (shots, rng_streams) — never from
    // the thread count — and per-stream results are merged in stream
    // order.  The same seed therefore yields bit-identical Metrics for
    // any cfg_.threads (the per-stream accumulation order is fixed, and
    // cross-stream sums always happen in the same order).  Sharded runs
    // reproduce this exactly: run_partials() on any partition of the
    // stream set, merged in ascending stream order, is the same sum.
    const int streams = n_streams(cfg_);
    if (streams == 0) {
        Metrics m;
        m.rounds_per_shot = cfg_.rounds;
        return m;
    }
    std::vector<int> all(streams);
    for (int s = 0; s < streams; ++s)
        all[s] = s;
    const std::vector<Metrics> parts = run_partials(factory, all);
    Metrics m;
    for (const Metrics& part : parts)
        m.merge(part);
    return m;
}

// --- PolicyZoo ---

PolicyFactory
PolicyZoo::no_lrc()
{
    return [](const CodeContext&, uint64_t) {
        return std::make_unique<NoLrcPolicy>();
    };
}

PolicyFactory
PolicyZoo::always_lrc()
{
    return [](const CodeContext& ctx, uint64_t) {
        return std::make_unique<AlwaysLrcPolicy>(ctx);
    };
}

PolicyFactory
PolicyZoo::staggered()
{
    return [](const CodeContext& ctx, uint64_t) {
        return std::make_unique<StaggeredLrcPolicy>(ctx);
    };
}

PolicyFactory
PolicyZoo::mlr_only()
{
    return [](const CodeContext& ctx, uint64_t) {
        return std::make_unique<MlrOnlyPolicy>(ctx);
    };
}

PolicyFactory
PolicyZoo::ideal()
{
    return [](const CodeContext& ctx, uint64_t) {
        return std::make_unique<IdealPolicy>(ctx);
    };
}

PolicyFactory
PolicyZoo::eraser(bool use_mlr)
{
    return [use_mlr](const CodeContext& ctx, uint64_t) {
        return std::make_unique<EraserPolicy>(ctx, use_mlr);
    };
}

namespace {

/**
 * Immutable-table cache shared by every policy a factory builds.
 *
 * PatternTableSet::build() depends only on the context's pattern classes
 * (plus the np/opt/two_round baked into the factory), so the cache is
 * keyed on the CLASS STRUCTURE itself — never on the CodeContext address,
 * which would alias recreated contexts.  Two contexts with equal class
 * vectors get identical tables by construction, so sharing is exact: the
 * rng_streams policies of one run() now share one build instead of
 * re-deriving it per stream (ROADMAP: "Gladiator table builds are
 * repeated per stream").
 *
 * Lookup and build run under one mutex: when all streams of a run()
 * start at once, the first builds and the rest wait and share, instead
 * of racing into rng_streams redundant builds.
 */
struct GladiatorTableCache {
    struct Entry {
        std::vector<PatternClass> classes;
        std::shared_ptr<const PatternTableSet> tables;
    };

    std::shared_ptr<const PatternTableSet> get(const CodeContext& ctx,
                                               const NoiseParams& np,
                                               const SpecModelOptions& opt,
                                               bool two_round)
    {
        std::lock_guard<std::mutex> lock(mu);
        for (const Entry& e : entries) {
            if (e.classes == ctx.classes())
                return e.tables;
        }
        auto built = std::make_shared<const PatternTableSet>(
            PatternTableSet::build(ctx, np, opt, two_round));
        entries.push_back({ctx.classes(), built});
        return built;
    }

    std::mutex mu;
    std::vector<Entry> entries;
};

PolicyFactory
make_gladiator_factory(bool use_mlr, const NoiseParams& np,
                       const SpecModelOptions& opt, bool two_round)
{
    auto cache = std::make_shared<GladiatorTableCache>();
    return [use_mlr, np, opt, two_round, cache](
               const CodeContext& ctx, uint64_t) -> std::unique_ptr<Policy> {
        std::shared_ptr<const PatternTableSet> tables =
            cache->get(ctx, np, opt, two_round);
        if (two_round)
            return std::make_unique<GladiatorDPolicy>(ctx, tables, use_mlr);
        return std::make_unique<GladiatorPolicy>(ctx, tables, use_mlr);
    };
}

}  // namespace

PolicyFactory
PolicyZoo::gladiator(bool use_mlr, const NoiseParams& np,
                     SpecModelOptions opt)
{
    return make_gladiator_factory(use_mlr, np, opt, /*two_round=*/false);
}

PolicyFactory
PolicyZoo::gladiator_d(bool use_mlr, const NoiseParams& np,
                       SpecModelOptions opt)
{
    return make_gladiator_factory(use_mlr, np, opt, /*two_round=*/true);
}

}  // namespace gld
