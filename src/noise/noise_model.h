#ifndef GLD_NOISE_NOISE_MODEL_H_
#define GLD_NOISE_NOISE_MODEL_H_

namespace gld {

/**
 * Circuit noise model of the paper's §6 (Methodology).
 *
 * Base rate `p` drives: data-qubit depolarization at round start, 1q/2q gate
 * depolarizing after H/CNOT, readout flips, and reset (initialization)
 * errors.  Leakage occurs with probability pl = leak_ratio * p, both as
 * environment-driven injection on data qubits at round start and per 2q-gate
 * operand.  Leakage transport ("mobility", default 10%) moves leakage from a
 * leaked CNOT control to its target; otherwise the non-leaked partner of a
 * leaked gate receives a uniformly random Pauli (the IBM-characterized
 * 50% bit-flip behaviour of §2.3).  Multi-level readout (MLR) misreports the
 * leak flag with probability mlr_ratio * p in either direction.
 *
 * LRC gadget costs (SWAP-based reset, §2.4): extra depolarizing noise and
 * leakage-induction on the serviced qubit, scaled by `lrc_gate_factor`
 * (the gadget is ~3 CNOTs deep).
 */
struct NoiseParams {
    double p = 1e-3;            ///< base physical error rate
    double leak_ratio = 0.1;    ///< lr = pl / p (paper default 0.1)
    double mlr_ratio = 10.0;    ///< MLR error = mlr_ratio * p (paper: 10)
    double mobility = 0.1;      ///< leakage transport prob during CNOT
    double lrc_gate_factor = 3.0;  ///< LRC gadget depth in CNOT-equivalents
    /**
     * If true, a leaked CNOT deposits a full random Pauli on an ANCILLA
     * partner (which can propagate through its remaining CNOTs).  The
     * default (false) follows the paper's IBM characterization — the
     * malfunction shows up as an independent random flip of the ancilla's
     * measured bit.  Data-qubit partners always receive a full random
     * Pauli.  Ablation knob.
     */
    bool leaked_gate_backaction = false;

    /** Leakage probability per opportunity. */
    double pl() const { return leak_ratio * p; }
    /** MLR misclassification probability. */
    double mlr_err() const { return mlr_ratio * p; }
    /**
     * Absolute leakage probability per LRC gadget.  An LRC is a SWAP
     * through a just-measured ancilla plus a reset; strong readout drive
     * is a known leakage source (measurement-induced state transitions),
     * so the cost does NOT scale with the background leakage ratio.  The
     * default reproduces the paper's observation that unnecessary LRCs
     * can grow the leakage population (§3.3) and its Table 4 trend of a
     * larger GLADIATOR advantage at small lr.
     */
    double lrc_leak_prob = 3e-3;

    /** Depolarizing noise applied by one LRC gadget. */
    double lrc_depol() const { return lrc_gate_factor * p; }
    /** Leakage induced on a (non-leaked) qubit by one LRC gadget. */
    double lrc_leak() const { return lrc_leak_prob + lrc_gate_factor * pl(); }

    /** Paper defaults at a given p and lr. */
    static NoiseParams standard(double p = 1e-3, double lr = 0.1);
};

}  // namespace gld

#endif  // GLD_NOISE_NOISE_MODEL_H_
