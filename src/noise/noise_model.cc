#include "noise/noise_model.h"

namespace gld {

NoiseParams
NoiseParams::standard(double p, double lr)
{
    NoiseParams np;
    np.p = p;
    np.leak_ratio = lr;
    return np;
}

}  // namespace gld
