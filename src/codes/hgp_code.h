#ifndef GLD_CODES_HGP_CODE_H_
#define GLD_CODES_HGP_CODE_H_

#include "codes/css_code.h"

namespace gld {

/**
 * Hypergraph product (HGP) code of two classical parity-check matrices
 * (Tillich-Zemor construction), the qLDPC family the paper evaluates in
 * Table 5.
 *
 * For H1 (r1 x n1) and H2 (r2 x n2):
 *   qubits  = n1*n2 ("VV" block) + r1*r2 ("CC" block)
 *   X check (c1, v2): VV (v1, v2) where H1[c1,v1]=1; CC (c1, c2) where
 *                     H2[c2,v2]=1.
 *   Z check (v1, c2): VV (v1, v2) where H2[c2,v2]=1; CC (c1, c2) where
 *                     H1[c1,v1]=1.
 *
 * Data-qubit degrees are irregular (the paper's motivation for a
 * generalizable speculation scheme).
 */
class HgpCode {
  public:
    /** Product of two explicit binary matrices given as row supports. */
    static CssCode make(const std::vector<std::vector<int>>& h1, int n1,
                        const std::vector<std::vector<int>>& h2, int n2,
                        const std::string& name = "hgp");

    /** HGP of Hamming(7,4) with itself: a [[58, 16]] code. */
    static CssCode make_hamming();
};

}  // namespace gld

#endif  // GLD_CODES_HGP_CODE_H_
