#include "codes/hgp_code.h"

namespace gld {

CssCode
HgpCode::make(const std::vector<std::vector<int>>& h1, int n1,
              const std::vector<std::vector<int>>& h2, int n2,
              const std::string& name)
{
    const int r1 = static_cast<int>(h1.size());
    const int r2 = static_cast<int>(h2.size());
    const int n_vv = n1 * n2;
    const int n_qubits = n_vv + r1 * r2;

    auto vv = [&](int v1, int v2) { return v1 * n2 + v2; };
    auto cc = [&](int c1, int c2) { return n_vv + c1 * r2 + c2; };

    std::vector<Check> checks;
    // X checks: (c1, v2).
    for (int c1 = 0; c1 < r1; ++c1) {
        for (int v2 = 0; v2 < n2; ++v2) {
            std::vector<int> sup;
            for (int v1 : h1[c1])
                sup.push_back(vv(v1, v2));
            for (int c2 = 0; c2 < r2; ++c2) {
                for (int v : h2[c2]) {
                    if (v == v2)
                        sup.push_back(cc(c1, c2));
                }
            }
            checks.push_back({CheckType::kX, sup});
        }
    }
    // Z checks: (v1, c2).
    for (int v1 = 0; v1 < n1; ++v1) {
        for (int c2 = 0; c2 < r2; ++c2) {
            std::vector<int> sup;
            for (int v2 : h2[c2])
                sup.push_back(vv(v1, v2));
            for (int c1 = 0; c1 < r1; ++c1) {
                for (int v : h1[c1]) {
                    if (v == v1)
                        sup.push_back(cc(c1, c2));
                }
            }
            checks.push_back({CheckType::kZ, sup});
        }
    }
    return CssCode(name, n_qubits, std::move(checks));
}

CssCode
HgpCode::make_hamming()
{
    // Hamming(7,4) parity-check matrix rows (columns 0..6).
    const std::vector<std::vector<int>> h = {
        {0, 2, 4, 6}, {1, 2, 5, 6}, {3, 4, 5, 6}};
    return make(h, 7, h, 7, "hgp_hamming74");
}

}  // namespace gld
