#ifndef GLD_CODES_CSS_CODE_H_
#define GLD_CODES_CSS_CODE_H_

#include <string>
#include <vector>

#include "util/gf2.h"

namespace gld {

/** Stabilizer check type of a CSS code. */
enum class CheckType : uint8_t { kX, kZ };

/** A single stabilizer check: its type and data-qubit support. */
struct Check {
    CheckType type;
    std::vector<int> support;  ///< data qubit indices (sorted)
};

/**
 * A CSS quantum error-correcting code: data qubits plus X/Z parity checks,
 * each check owning one ancilla qubit.
 *
 * Qubit numbering convention used throughout the repo:
 *   data qubits:    [0, n_data)
 *   ancilla qubits: n_data + check_index  (one ancilla per check)
 *
 * Logical operators are stored for a single encoded qubit (the memory
 * experiment qubit); codes with k > 1 logical qubits (HGP/BPC) may leave
 * them empty — only the surface code is decoded for LER in this repo,
 * matching the paper's evaluation.
 */
class CssCode {
  public:
    CssCode(std::string name, int n_data, std::vector<Check> checks,
            std::vector<int> logical_x = {}, std::vector<int> logical_z = {});

    const std::string& name() const { return name_; }
    int n_data() const { return n_data_; }
    int n_checks() const { return static_cast<int>(checks_.size()); }
    int n_qubits() const { return n_data_ + n_checks(); }
    const std::vector<Check>& checks() const { return checks_; }
    const Check& check(int i) const { return checks_[i]; }
    int ancilla_of(int check) const { return n_data_ + check; }

    const std::vector<int>& logical_x() const { return logical_x_; }
    const std::vector<int>& logical_z() const { return logical_z_; }

    /** Checks of the given type (indices into checks()). */
    std::vector<int> checks_of_type(CheckType t) const;

    /** Per data qubit: indices of checks containing it (sorted). */
    const std::vector<std::vector<int>>& data_adjacency() const
    {
        return data_adjacency_;
    }

    /** Number of encoded logical qubits: n - rank(HX) - rank(HZ). */
    int k_logical() const;

    /** True if every X check commutes with every Z check. */
    bool css_valid() const;

    /** Parity check matrix of the given type (rows = checks of type t). */
    Gf2Matrix parity_matrix(CheckType t) const;

    /**
     * Optional hand-crafted CNOT schedule: per check, (data qubit, step)
     * pairs.  Codes with a known hook-safe interleaved schedule (the
     * surface code's zig-zag orders) provide this; otherwise the circuit
     * builder falls back to phase-separated edge coloring.
     */
    void set_schedule_hint(std::vector<std::vector<std::pair<int, int>>> h)
    {
        schedule_hint_ = std::move(h);
    }
    bool has_schedule_hint() const { return !schedule_hint_.empty(); }
    const std::vector<std::vector<std::pair<int, int>>>& schedule_hint()
        const
    {
        return schedule_hint_;
    }

  private:
    std::vector<std::vector<std::pair<int, int>>> schedule_hint_;
    std::string name_;
    int n_data_;
    std::vector<Check> checks_;
    std::vector<int> logical_x_;
    std::vector<int> logical_z_;
    std::vector<std::vector<int>> data_adjacency_;
};

}  // namespace gld

#endif  // GLD_CODES_CSS_CODE_H_
