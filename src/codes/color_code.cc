#include "codes/color_code.h"

#include <cassert>
#include <map>

namespace gld {

CssCode
ColorCode::make(int d)
{
    assert(d >= 3 && d % 2 == 1);
    const int t = 3 * (d - 1) / 2;

    auto in_region = [&](int x, int y) {
        return x >= 0 && y >= 0 && x + y <= t;
    };
    auto is_face = [&](int x, int y) {
        return ((x - y) % 3 + 3) % 3 == 1;
    };

    // Index the data qubits.
    std::map<std::pair<int, int>, int> qubit_id;
    for (int x = 0; x <= t; ++x) {
        for (int y = 0; y <= t - x; ++y) {
            if (!is_face(x, y))
                qubit_id[{x, y}] = static_cast<int>(qubit_id.size());
        }
    }
    const int n = static_cast<int>(qubit_id.size());
    assert(n == (3 * d * d + 1) / 4);

    // Hexagonal (axial) neighbour offsets.
    static constexpr int kHex[6][2] = {
        {1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, -1}, {-1, 1}};

    std::vector<Check> checks;
    for (int x = 0; x <= t; ++x) {
        for (int y = 0; y <= t - x; ++y) {
            if (!is_face(x, y))
                continue;
            std::vector<int> sup;
            for (const auto& off : kHex) {
                const int nx = x + off[0], ny = y + off[1];
                if (in_region(nx, ny) && !is_face(nx, ny))
                    sup.push_back(qubit_id.at({nx, ny}));
            }
            assert(sup.size() == 4 || sup.size() == 6);
            // Each face measures both an X and a Z stabilizer.
            checks.push_back({CheckType::kX, sup});
            checks.push_back({CheckType::kZ, sup});
        }
    }

    // Logical operators: the bottom side (y = 0), self-dual support.
    std::vector<int> side;
    for (int x = 0; x <= t; ++x) {
        if (!is_face(x, 0))
            side.push_back(qubit_id.at({x, 0}));
    }
    assert(static_cast<int>(side.size()) == d);

    return CssCode("color_d" + std::to_string(d), n, std::move(checks), side,
                   side);
}

}  // namespace gld
