#ifndef GLD_CODES_SURFACE_CODE_H_
#define GLD_CODES_SURFACE_CODE_H_

#include "codes/css_code.h"

namespace gld {

/**
 * Rotated surface code of odd distance d: d^2 data qubits, d^2 - 1 checks
 * (paper §2.2: 2d^2 - 1 qubits total).
 *
 * Layout: data qubit (r, c) for 0 <= r, c < d at index r*d + c.  Plaquette
 * ancillas live on the dual lattice; X-type checks terminate on the
 * top/bottom boundaries, Z-type on left/right.  Logical Z is the top row of
 * data qubits, logical X the left column.
 */
class SurfaceCode {
  public:
    /** Builds the distance-d rotated surface code (d odd, d >= 3). */
    static CssCode make(int d);

    /** Data qubit index for grid coordinates. */
    static int data_index(int d, int row, int col) { return row * d + col; }
};

}  // namespace gld

#endif  // GLD_CODES_SURFACE_CODE_H_
