#include "codes/surface_code.h"

#include <cassert>

namespace gld {

CssCode
SurfaceCode::make(int d)
{
    assert(d >= 3 && d % 2 == 1);
    std::vector<Check> checks;

    // Plaquette anchored at (r, c), r, c in [0, d]: covers the up-to-four
    // data qubits {(r-1,c-1), (r-1,c), (r,c-1), (r,c)} clipped to the grid.
    auto plaquette = [&](int r, int c) {
        std::vector<int> sup;
        for (int dr = -1; dr <= 0; ++dr) {
            for (int dc = -1; dc <= 0; ++dc) {
                const int rr = r + dr, cc = c + dc;
                if (rr >= 0 && rr < d && cc >= 0 && cc < d)
                    sup.push_back(data_index(d, rr, cc));
            }
        }
        return sup;
    };

    // The canonical hook-safe interleaved schedule: X checks touch their
    // data in "Z" order (NW, NE, SW, SE), Z checks in "N" order
    // (NW, SW, NE, SE); boundary halves keep the absolute step positions.
    std::vector<std::vector<std::pair<int, int>>> hint;
    auto ordered_steps = [&](int r, int c, bool x_type) {
        const std::pair<int, int> nw{r - 1, c - 1}, ne{r - 1, c},
            sw{r, c - 1}, se{r, c};
        std::vector<std::pair<int, int>> cells;
        if (x_type)
            cells = {nw, ne, sw, se};
        else
            cells = {nw, sw, ne, se};
        std::vector<std::pair<int, int>> out;  // (data qubit, step)
        for (int step = 0; step < 4; ++step) {
            const auto [rr, cc] = cells[step];
            if (rr >= 0 && rr < d && cc >= 0 && cc < d)
                out.emplace_back(data_index(d, rr, cc), step);
        }
        return out;
    };

    for (int r = 0; r <= d; ++r) {
        for (int c = 0; c <= d; ++c) {
            const bool interior = r >= 1 && r <= d - 1 && c >= 1 && c <= d - 1;
            const bool x_type = (r + c) % 2 == 1;
            bool include = false;
            if (interior) {
                include = true;
            } else if ((r == 0 || r == d) && c >= 1 && c <= d - 1) {
                // Top/bottom boundary rows host only X-type half plaquettes.
                include = x_type;
            } else if ((c == 0 || c == d) && r >= 1 && r <= d - 1) {
                // Left/right boundary columns host only Z-type halves.
                include = !x_type;
            }
            if (!include)
                continue;
            checks.push_back({x_type ? CheckType::kX : CheckType::kZ,
                              plaquette(r, c)});
            hint.push_back(ordered_steps(r, c, x_type));
        }
    }
    assert(static_cast<int>(checks.size()) == d * d - 1);

    std::vector<int> logical_z, logical_x;
    for (int c = 0; c < d; ++c)
        logical_z.push_back(data_index(d, 0, c));  // top row
    for (int r = 0; r < d; ++r)
        logical_x.push_back(data_index(d, r, 0));  // left column

    CssCode code("surface_d" + std::to_string(d), d * d, std::move(checks),
                 std::move(logical_x), std::move(logical_z));
    code.set_schedule_hint(std::move(hint));
    return code;
}

}  // namespace gld
