#ifndef GLD_CODES_COLOR_CODE_H_
#define GLD_CODES_COLOR_CODE_H_

#include "codes/css_code.h"

namespace gld {

/**
 * Triangular 6.6.6 color code of odd distance d: (3d^2 + 1)/4 data qubits
 * (paper §5.1: 37 qubits at d = 7 vs 97 for the surface code).
 *
 * Construction: axial lattice points (x, y) with x, y >= 0 and
 * x + y <= 3(d-1)/2.  Points with (x - y) mod 3 == 1 are hexagonal face
 * centers; all other points are data qubits.  Each face supports both an
 * X and a Z stabilizer on its (4 or 6) neighbouring qubits; boundary faces
 * are truncated to weight 4.  Logical X/Z is the bottom side (y = 0),
 * weight d.
 *
 * Bulk data qubits touch 3 faces, edge qubits 2, corner qubits 1 — the
 * source of the paper's 3/2/1-bit color-code syndrome patterns (per check
 * type).
 */
class ColorCode {
  public:
    static CssCode make(int d);
};

}  // namespace gld

#endif  // GLD_CODES_COLOR_CODE_H_
