#ifndef GLD_CODES_BPC_CODE_H_
#define GLD_CODES_BPC_CODE_H_

#include "codes/css_code.h"

namespace gld {

/**
 * Balanced-product cyclic (BPC) style code, realized as a generalized
 * bicycle / lifted product of circulants (the closest open construction to
 * the BPC codes of QUITS [22]; see DESIGN.md substitution table):
 *
 *   HX = [A | B],   HZ = [B^T | A^T]
 *
 * with A = a(S), B = b(S) circulant l x l matrices over GF(2) (S the cyclic
 * shift).  CSS validity follows from circulant commutativity:
 * HX * HZ^T = A*B + B*A = 0.  Weight-3 polynomials give data-qubit degree 6
 * (3 X-checks + 3 Z-checks), producing the 7-bit tagged patterns of the
 * paper's Appendix B.2.
 */
class BpcCode {
  public:
    /**
     * @param l       circulant size (block length l; n = 2l data qubits).
     * @param a_exps  exponents of a(x) (e.g. {0,1,2} for 1 + x + x^2).
     * @param b_exps  exponents of b(x).
     */
    static CssCode make(int l, const std::vector<int>& a_exps,
                        const std::vector<int>& b_exps,
                        const std::string& name = "bpc");

    /** Default instance: l = 15, a = 1+x+x^2, b = 1+x^5+x^10 -> [[30, 4]]. */
    static CssCode make_default();
};

}  // namespace gld

#endif  // GLD_CODES_BPC_CODE_H_
