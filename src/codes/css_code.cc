#include <cstddef>
#include "codes/css_code.h"

#include <algorithm>
#include <cassert>

namespace gld {

CssCode::CssCode(std::string name, int n_data, std::vector<Check> checks,
                 std::vector<int> logical_x, std::vector<int> logical_z)
    : name_(std::move(name)), n_data_(n_data), checks_(std::move(checks)),
      logical_x_(std::move(logical_x)), logical_z_(std::move(logical_z))
{
    for (auto& c : checks_) {
        std::sort(c.support.begin(), c.support.end());
        for ([[maybe_unused]] int q : c.support)
            assert(q >= 0 && q < n_data_);
    }
    data_adjacency_.assign(n_data_, {});
    for (size_t i = 0; i < checks_.size(); ++i) {
        for (int q : checks_[i].support)
            data_adjacency_[q].push_back(static_cast<int>(i));
    }
}

std::vector<int>
CssCode::checks_of_type(CheckType t) const
{
    std::vector<int> out;
    for (size_t i = 0; i < checks_.size(); ++i) {
        if (checks_[i].type == t)
            out.push_back(static_cast<int>(i));
    }
    return out;
}

Gf2Matrix
CssCode::parity_matrix(CheckType t) const
{
    std::vector<std::vector<int>> rows;
    for (const auto& c : checks_) {
        if (c.type == t)
            rows.push_back(c.support);
    }
    return Gf2Matrix::from_supports(rows, n_data_);
}

int
CssCode::k_logical() const
{
    return n_data_ - parity_matrix(CheckType::kX).rank() -
           parity_matrix(CheckType::kZ).rank();
}

bool
CssCode::css_valid() const
{
    const Gf2Matrix hx = parity_matrix(CheckType::kX);
    const Gf2Matrix hz = parity_matrix(CheckType::kZ);
    if (hx.rows() == 0 || hz.rows() == 0)
        return true;
    return hx.mul_transpose(hz).is_zero();
}

}  // namespace gld
