#include "codes/bpc_code.h"

namespace gld {

CssCode
BpcCode::make(int l, const std::vector<int>& a_exps,
              const std::vector<int>& b_exps, const std::string& name)
{
    const int n = 2 * l;
    std::vector<Check> checks;

    // X check row i of [A | B]: left-block qubit (i + e) mod l for e in a,
    // right-block qubit l + (i + e) mod l for e in b.
    for (int i = 0; i < l; ++i) {
        std::vector<int> sup;
        for (int e : a_exps)
            sup.push_back((i + e) % l);
        for (int e : b_exps)
            sup.push_back(l + (i + e) % l);
        checks.push_back({CheckType::kX, sup});
    }
    // Z check row i of [B^T | A^T]: transposed circulant shifts backwards.
    for (int i = 0; i < l; ++i) {
        std::vector<int> sup;
        for (int e : b_exps)
            sup.push_back(((i - e) % l + l) % l);
        for (int e : a_exps)
            sup.push_back(l + ((i - e) % l + l) % l);
        checks.push_back({CheckType::kZ, sup});
    }
    return CssCode(name, n, std::move(checks));
}

CssCode
BpcCode::make_default()
{
    return make(15, {0, 1, 2}, {0, 5, 10}, "bpc_l15");
}

}  // namespace gld
