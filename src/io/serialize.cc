#include "io/serialize.h"

#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace gld {
namespace io {

namespace {

void
check_version(const Json& j, const char* what)
{
    // Readers accept every version up to the current one; fields added
    // since the document was written take their defaults.
    const int64_t v = j["gld_version"].as_int();
    if (v < 1 || v > kSerializeVersion)
        throw std::runtime_error(std::string(what) + ": unsupported "
                                 "gld_version " + std::to_string(v) +
                                 " (this build reads versions 1.." +
                                 std::to_string(kSerializeVersion) + ")");
}

uint64_t
parse_hex64(const std::string& s, const char* what)
{
    if (s.size() < 3 || s.size() > 18 || s[0] != '0' ||
        (s[1] != 'x' && s[1] != 'X'))
        throw std::runtime_error(std::string(what) + ": expected 0x-prefixed "
                                 "hex, got \"" + s + "\"");
    uint64_t v = 0;
    for (size_t i = 2; i < s.size(); ++i) {
        const char c = s[i];
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<uint64_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            v |= static_cast<uint64_t>(c - 'A' + 10);
        else
            throw std::runtime_error(std::string(what) +
                                     ": bad hex digit in \"" + s + "\"");
    }
    return v;
}

}  // namespace

std::string
f64_to_hex(double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "binary64 expected");
    std::memcpy(&bits, &v, sizeof(bits));
    char buf[20];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(bits));
    return buf;
}

double
f64_from_hex(const std::string& s)
{
    const uint64_t bits = parse_hex64(s, "f64_from_hex");
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
u64_to_hex(uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

uint64_t
u64_from_hex(const std::string& s)
{
    return parse_hex64(s, "u64_from_hex");
}

// --- NoiseParams. ---
// Noise fields are user-facing physics numbers: serialized as plain JSON
// doubles (%.17g round-trips binary64 exactly) so spec files stay
// hand-editable; the hash path goes through the same canonical dump.

Json
noise_to_json(const NoiseParams& np)
{
    Json j = Json::object();
    j.set("p", Json::number(np.p));
    j.set("leak_ratio", Json::number(np.leak_ratio));
    j.set("mlr_ratio", Json::number(np.mlr_ratio));
    j.set("mobility", Json::number(np.mobility));
    j.set("lrc_gate_factor", Json::number(np.lrc_gate_factor));
    j.set("lrc_leak_prob", Json::number(np.lrc_leak_prob));
    j.set("leaked_gate_backaction", Json::boolean(np.leaked_gate_backaction));
    return j;
}

NoiseParams
noise_from_json(const Json& j)
{
    NoiseParams np;
    np.p = j["p"].as_double();
    np.leak_ratio = j["leak_ratio"].as_double();
    np.mlr_ratio = j["mlr_ratio"].as_double();
    np.mobility = j["mobility"].as_double();
    np.lrc_gate_factor = j["lrc_gate_factor"].as_double();
    np.lrc_leak_prob = j["lrc_leak_prob"].as_double();
    np.leaked_gate_backaction = j["leaked_gate_backaction"].as_bool();
    return np;
}

// --- ExperimentConfig. ---

Json
config_to_json(const ExperimentConfig& cfg)
{
    Json j = Json::object();
    j.set("gld_version", Json::integer(kSerializeVersion));
    j.set("noise", noise_to_json(cfg.np));
    j.set("rounds", Json::integer(cfg.rounds));
    j.set("shots", Json::integer(cfg.shots));
    j.set("seed", Json::str(u64_to_hex(cfg.seed)));
    j.set("leakage_sampling", Json::boolean(cfg.leakage_sampling));
    j.set("compute_ler", Json::boolean(cfg.compute_ler));
    j.set("record_dlp_series", Json::boolean(cfg.record_dlp_series));
    j.set("rng_streams", Json::integer(cfg.rng_streams));
    j.set("backend", Json::str(backend_name(cfg.backend)));
    // batch_words is RESULT-AFFECTING (it sets the scheduler block size
    // and thus the per-block RNG derivation) so it must be hashed — but
    // only when != 1, so every existing K=1 document and config hash
    // stays byte-identical (no version bump needed: absence == 1).
    if (cfg.batch_words != 1)
        j.set("batch_words", Json::integer(cfg.batch_words));
    // noise_sampling is RESULT-AFFECTING on the batch backends (sparse
    // draws a different, verify-qualified sequence) so it must be hashed
    // — but only when != lockstep, keeping every existing document and
    // config hash byte-identical (absence == lockstep, no version bump).
    if (cfg.noise_sampling != NoiseSampling::kLockstep)
        j.set("noise_sampling",
              Json::str(noise_sampling_name(cfg.noise_sampling)));
    // cfg.threads is deliberately NOT serialized: it does not affect
    // results (determinism contract) and must not affect the config hash.
    return j;
}

ExperimentConfig
config_from_json(const Json& j)
{
    check_version(j, "ExperimentConfig");
    ExperimentConfig cfg;
    cfg.np = noise_from_json(j["noise"]);
    cfg.rounds = static_cast<int>(j["rounds"].as_int());
    cfg.shots = static_cast<int>(j["shots"].as_int());
    cfg.seed = u64_from_hex(j["seed"].as_str());
    cfg.leakage_sampling = j["leakage_sampling"].as_bool();
    cfg.compute_ler = j["compute_ler"].as_bool();
    cfg.record_dlp_series = j["record_dlp_series"].as_bool();
    cfg.rng_streams = static_cast<int>(j["rng_streams"].as_int());
    // Version-1 documents predate backends: migrate to "frame" (what
    // they were produced by).  Their config hash differs regardless, so
    // old CHECKPOINTS are refused rather than resumed.
    cfg.backend = j.has("backend") ? backend_from_name(j["backend"].as_str())
                                   : SimBackend::kFrame;
    cfg.batch_words = j.has("batch_words")
                          ? static_cast<int>(j["batch_words"].as_int())
                          : 1;
    cfg.noise_sampling =
        j.has("noise_sampling")
            ? noise_sampling_from_name(j["noise_sampling"].as_str())
            : NoiseSampling::kLockstep;
    return cfg;
}

uint64_t
fnv1a64(const std::string& bytes)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

uint64_t
config_hash(const ExperimentConfig& cfg)
{
    return fnv1a64(config_to_json(cfg).dump());
}

// --- Metrics. ---

Json
metrics_to_json(const Metrics& m)
{
    Json j = Json::object();
    j.set("gld_version", Json::integer(kSerializeVersion));
    j.set("shots", Json::integer(m.shots));
    j.set("rounds_per_shot", Json::integer(m.rounds_per_shot));
    j.set("fn_total", Json::str(f64_to_hex(m.fn_total)));
    j.set("fp_total", Json::str(f64_to_hex(m.fp_total)));
    j.set("tp_total", Json::str(f64_to_hex(m.tp_total)));
    j.set("lrc_data_total", Json::str(f64_to_hex(m.lrc_data_total)));
    j.set("lrc_check_total", Json::str(f64_to_hex(m.lrc_check_total)));
    Json series = Json::array();
    for (double v : m.dlp_series)
        series.push(Json::str(f64_to_hex(v)));
    j.set("dlp_series", std::move(series));
    j.set("dlp_total", Json::str(f64_to_hex(m.dlp_total)));
    j.set("check_leak_total", Json::str(f64_to_hex(m.check_leak_total)));
    j.set("logical_errors", Json::integer(m.logical_errors));
    j.set("decoded_shots", Json::integer(m.decoded_shots));
    return j;
}

Metrics
metrics_from_json(const Json& j)
{
    check_version(j, "Metrics");
    Metrics m;
    m.shots = j["shots"].as_int();
    m.rounds_per_shot = j["rounds_per_shot"].as_int();
    m.fn_total = f64_from_hex(j["fn_total"].as_str());
    m.fp_total = f64_from_hex(j["fp_total"].as_str());
    m.tp_total = f64_from_hex(j["tp_total"].as_str());
    m.lrc_data_total = f64_from_hex(j["lrc_data_total"].as_str());
    m.lrc_check_total = f64_from_hex(j["lrc_check_total"].as_str());
    const Json& series = j["dlp_series"];
    m.dlp_series.reserve(series.size());
    for (size_t i = 0; i < series.size(); ++i)
        m.dlp_series.push_back(f64_from_hex(series.at(i).as_str()));
    m.dlp_total = f64_from_hex(j["dlp_total"].as_str());
    m.check_leak_total = f64_from_hex(j["check_leak_total"].as_str());
    m.logical_errors = j["logical_errors"].as_int();
    m.decoded_shots = j["decoded_shots"].as_int();
    return m;
}

}  // namespace io
}  // namespace gld
