#include "io/json.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace gld {
namespace io {

Json
Json::boolean(bool b)
{
    Json j;
    j.type_ = Type::kBool;
    j.bool_ = b;
    return j;
}

Json
Json::integer(int64_t v)
{
    Json j;
    j.type_ = Type::kInt;
    j.int_ = v;
    return j;
}

Json
Json::number(double v)
{
    Json j;
    j.type_ = Type::kDouble;
    j.dbl_ = v;
    return j;
}

Json
Json::str(std::string s)
{
    Json j;
    j.type_ = Type::kString;
    j.str_ = std::move(s);
    return j;
}

Json
Json::array()
{
    Json j;
    j.type_ = Type::kArray;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::kObject;
    return j;
}

namespace {

[[noreturn]] void
type_error(const char* want, Json::Type got)
{
    static const char* names[] = {"null",   "bool",  "int",   "double",
                                  "string", "array", "object"};
    throw std::runtime_error(std::string("json: expected ") + want +
                             ", got " + names[static_cast<int>(got)]);
}

}  // namespace

bool
Json::as_bool() const
{
    if (type_ != Type::kBool)
        type_error("bool", type_);
    return bool_;
}

int64_t
Json::as_int() const
{
    if (type_ != Type::kInt)
        type_error("int", type_);
    return int_;
}

double
Json::as_double() const
{
    if (type_ == Type::kInt)
        return static_cast<double>(int_);
    if (type_ != Type::kDouble)
        type_error("number", type_);
    return dbl_;
}

const std::string&
Json::as_str() const
{
    if (type_ != Type::kString)
        type_error("string", type_);
    return str_;
}

void
Json::push(Json v)
{
    if (type_ != Type::kArray)
        type_error("array", type_);
    arr_.push_back(std::move(v));
}

size_t
Json::size() const
{
    if (type_ == Type::kArray)
        return arr_.size();
    if (type_ == Type::kObject)
        return obj_.size();
    type_error("array", type_);
}

const Json&
Json::at(size_t i) const
{
    if (type_ != Type::kArray)
        type_error("array", type_);
    if (i >= arr_.size())
        throw std::runtime_error("json: array index out of range");
    return arr_[i];
}

void
Json::set(const std::string& key, Json v)
{
    if (type_ != Type::kObject)
        type_error("object", type_);
    for (auto& kv : obj_) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return;
        }
    }
    obj_.emplace_back(key, std::move(v));
}

bool
Json::has(const std::string& key) const
{
    if (type_ != Type::kObject)
        type_error("object", type_);
    for (const auto& kv : obj_) {
        if (kv.first == key)
            return true;
    }
    return false;
}

const Json&
Json::operator[](const std::string& key) const
{
    if (type_ != Type::kObject)
        type_error("object", type_);
    for (const auto& kv : obj_) {
        if (kv.first == key)
            return kv.second;
    }
    throw std::runtime_error("json: missing key \"" + key + "\"");
}

const std::vector<std::pair<std::string, Json>>&
Json::items() const
{
    if (type_ != Type::kObject)
        type_error("object", type_);
    return obj_;
}

// --- Writer. ---

namespace {

void
dump_string(std::string* out, const std::string& s)
{
    out->push_back('"');
    for (char c : s) {
        switch (c) {
            case '"': *out += "\\\""; break;
            case '\\': *out += "\\\\"; break;
            case '\b': *out += "\\b"; break;
            case '\f': *out += "\\f"; break;
            case '\n': *out += "\\n"; break;
            case '\r': *out += "\\r"; break;
            case '\t': *out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned char>(c));
                    *out += buf;
                } else {
                    out->push_back(c);
                }
        }
    }
    out->push_back('"');
}

void
newline_indent(std::string* out, int indent, int depth)
{
    if (indent < 0)
        return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void
Json::dump_to(std::string* out, int indent, int depth) const
{
    char buf[64];
    switch (type_) {
        case Type::kNull:
            *out += "null";
            break;
        case Type::kBool:
            *out += bool_ ? "true" : "false";
            break;
        case Type::kInt:
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(int_));
            *out += buf;
            break;
        case Type::kDouble:
            // JSON has no inf/nan literal — emitting one would produce a
            // document our own parser rejects.  Non-finite metric values
            // belong in the hex encoding of serialize.h, never here.
            if (!std::isfinite(dbl_))
                throw std::runtime_error(
                    "json: cannot dump non-finite number (use the hex "
                    "bit-pattern encoding for such fields)");
            // %.17g round-trips binary64; bit-critical fields go through
            // the hex encoding in serialize.h instead of this path.
            std::snprintf(buf, sizeof(buf), "%.17g", dbl_);
            *out += buf;
            // Keep the canonical form unambiguous for re-parsing as double.
            if (std::strpbrk(buf, ".eE") == nullptr)
                *out += ".0";
            break;
        case Type::kString:
            dump_string(out, str_);
            break;
        case Type::kArray:
            out->push_back('[');
            for (size_t i = 0; i < arr_.size(); ++i) {
                if (i)
                    out->push_back(',');
                newline_indent(out, indent, depth + 1);
                arr_[i].dump_to(out, indent, depth + 1);
            }
            if (!arr_.empty())
                newline_indent(out, indent, depth);
            out->push_back(']');
            break;
        case Type::kObject:
            out->push_back('{');
            for (size_t i = 0; i < obj_.size(); ++i) {
                if (i)
                    out->push_back(',');
                newline_indent(out, indent, depth + 1);
                dump_string(out, obj_[i].first);
                out->push_back(':');
                if (indent >= 0)
                    out->push_back(' ');
                obj_[i].second.dump_to(out, indent, depth + 1);
            }
            if (!obj_.empty())
                newline_indent(out, indent, depth);
            out->push_back('}');
            break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dump_to(&out, indent, 0);
    return out;
}

// --- Parser: recursive descent over the full text. ---

namespace {

class Parser {
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    Json parse_document()
    {
        Json v = parse_value();
        skip_ws();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string& why)
    {
        throw std::runtime_error("json parse error at offset " +
                                 std::to_string(pos_) + ": " + why);
    }

    void skip_ws()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(const char* lit)
    {
        const size_t n = std::strlen(lit);
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Json parse_value()
    {
        skip_ws();
        switch (peek()) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return Json::str(parse_string());
            case 't':
                if (consume_literal("true"))
                    return Json::boolean(true);
                fail("bad literal");
            case 'f':
                if (consume_literal("false"))
                    return Json::boolean(false);
                fail("bad literal");
            case 'n':
                if (consume_literal("null"))
                    return Json::null();
                fail("bad literal");
            default: return parse_number();
        }
    }

    Json parse_object()
    {
        expect('{');
        Json obj = Json::object();
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        for (;;) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            obj.set(key, parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    Json parse_array()
    {
        expect('[');
        Json arr = Json::array();
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        for (;;) {
            arr.push(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string parse_string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size())
                        fail("short \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text_[pos_++];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            fail("bad \\u escape digit");
                    }
                    // Serialize the code point as UTF-8 (BMP only — our
                    // writer never emits surrogate pairs).
                    if (cp < 0x80) {
                        out.push_back(static_cast<char>(cp));
                    } else if (cp < 0x800) {
                        out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
                        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
                    } else {
                        out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
                        out.push_back(
                            static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
                        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
                    }
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    Json parse_number()
    {
        const size_t start = pos_;
        bool is_double = false;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                is_double = true;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            fail("expected a value");
        const std::string tok = text_.substr(start, pos_ - start);
        errno = 0;
        char* end = nullptr;
        if (is_double) {
            double v = std::strtod(tok.c_str(), &end);
            if (end != tok.c_str() + tok.size())
                fail("malformed number");
            // e.g. "1e999": strtod saturates to inf with ERANGE — reject
            // rather than admit a non-finite value dump() cannot emit.
            if (errno == ERANGE && !std::isfinite(v))
                fail("number out of double range");
            return Json::number(v);
        }
        long long v = std::strtoll(tok.c_str(), &end, 10);
        if (end != tok.c_str() + tok.size() || errno == ERANGE)
            fail("malformed integer");
        return Json::integer(v);
    }

    const std::string& text_;
    size_t pos_ = 0;
};

}  // namespace

Json
Json::parse(const std::string& text)
{
    return Parser(text).parse_document();
}

// --- File helpers. ---

std::string
read_file(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw std::runtime_error("cannot open " + path + ": " +
                                 std::strerror(errno));
    std::string out;
    char buf[1 << 14];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    const bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad)
        throw std::runtime_error("read error on " + path);
    return out;
}

void
write_file_atomic(const std::string& path, const std::string& content)
{
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        throw std::runtime_error("cannot create " + tmp + ": " +
                                 std::strerror(errno));
    const size_t written = std::fwrite(content.data(), 1, content.size(), f);
    const bool bad = written != content.size() || std::fflush(f) != 0;
    std::fclose(f);
    if (bad) {
        std::remove(tmp.c_str());
        throw std::runtime_error("write error on " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("cannot rename " + tmp + " to " + path);
    }
}

void
append_line(const std::string& path, const std::string& line)
{
    std::FILE* f = std::fopen(path.c_str(), "ab");
    if (f == nullptr)
        throw std::runtime_error("cannot open " + path + ": " +
                                 std::strerror(errno));
    std::string buf = line;
    buf += '\n';
    const size_t written = std::fwrite(buf.data(), 1, buf.size(), f);
    const bool bad = written != buf.size() || std::fflush(f) != 0;
    std::fclose(f);
    if (bad)
        throw std::runtime_error("write error on " + path);
}

bool
file_exists(const std::string& path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

void
make_dirs(const std::string& path)
{
    if (path.empty())
        return;
    std::string prefix;
    size_t pos = 0;
    while (pos != std::string::npos) {
        const size_t next = path.find('/', pos + 1);
        prefix = next == std::string::npos ? path : path.substr(0, next);
        if (!prefix.empty() && prefix != "/") {
            if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST)
                throw std::runtime_error("cannot mkdir " + prefix + ": " +
                                         std::strerror(errno));
        }
        pos = next;
    }
}

}  // namespace io
}  // namespace gld
