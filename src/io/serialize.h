#ifndef GLD_IO_SERIALIZE_H_
#define GLD_IO_SERIALIZE_H_

#include <cstdint>
#include <string>

#include "io/json.h"
#include "noise/noise_model.h"
#include "runtime/experiment.h"
#include "runtime/metrics.h"

namespace gld {
namespace io {

/**
 * Versioned JSON serialization of the experiment-facing structs.
 *
 * Format contract (kSerializeVersion):
 *  - Every top-level document carries {"gld_version": 1}; readers reject
 *    versions they do not understand instead of misparsing them.
 *  - All doubles that participate in metric aggregation are encoded as
 *    16-digit hex bit patterns ("0x3fb999999999999a") so that
 *    save → load → merge is BIT-identical to an in-process merge; no
 *    decimal round-trip is trusted anywhere on the merge path.
 *  - uint64 seeds are hex strings too (JSON int64 cannot hold them).
 *
 * Bump kSerializeVersion when a field changes meaning; add new fields
 * with defaults so old files keep loading.
 *
 * Version history:
 *  - 1: initial format.
 *  - 2: ExperimentConfig/CampaignSpec gained "backend" (simulation
 *    backend name).  Version-1 documents still load (backend defaults to
 *    "frame"), but the config HASH now covers the backend field, so
 *    version-1 campaign checkpoints are refused as stale by the
 *    config-hash check rather than silently resumed.
 *  - 3: no field changes; bumped because the shared-LeakageDriver
 *    refactor changed the frame backend's draw sequence (a reset pulse
 *    no longer draws for a leaked ancilla), so frame results under the
 *    same config differ from version-2 binaries.  The hash covers
 *    gld_version, so pre-driver checkpoints are refused as stale
 *    instead of being silently mixed with new-partial streams.
 *  - 4: no field changes; bumped for the batch-backend refactor's two
 *    deliberate draw-sequence deltas: the LeakageDriver now derives an
 *    independent noise stream per SHOT (master.split(shot) at every
 *    reset_shot — what lets the bit-packed batch driver replay shot k
 *    as lane k), and the scheduler's shot block grew from 32 to 64 to
 *    align with the 64-lane batch width.  Same-config results differ
 *    from version-3 binaries on every backend, so pre-batch campaign
 *    checkpoints are refused as stale via the hashed version.
 *  - 4 (no bump): ExperimentConfig/CampaignSpec gained "batch_words"
 *    (the K-word batch width, result-affecting because it sets the
 *    scheduler block size).  Serialized ONLY when != 1: absence means 1,
 *    so every existing document and config hash is unchanged, and only
 *    genuinely-new K>1 configs hash differently.
 */
constexpr int kSerializeVersion = 4;

/** IEEE-754 binary64 → "0x<16 hex digits>" (bit_cast, exact). */
std::string f64_to_hex(double v);
/** Inverse of f64_to_hex; throws std::runtime_error on malformed input. */
double f64_from_hex(const std::string& s);

/** uint64 → "0x<hex>" and back (used for seeds and hashes). */
std::string u64_to_hex(uint64_t v);
uint64_t u64_from_hex(const std::string& s);

// --- NoiseParams. ---
Json noise_to_json(const NoiseParams& np);
NoiseParams noise_from_json(const Json& j);

// --- ExperimentConfig (embeds NoiseParams). ---
Json config_to_json(const ExperimentConfig& cfg);
ExperimentConfig config_from_json(const Json& j);

/**
 * Stable 64-bit fingerprint of a config: FNV-1a over the canonical
 * compact dump of config_to_json().  Used by checkpoint/resume to refuse
 * result files written under a different configuration.
 */
uint64_t config_hash(const ExperimentConfig& cfg);

// --- Metrics (bit-exact, including dlp_series). ---
Json metrics_to_json(const Metrics& m);
Metrics metrics_from_json(const Json& j);

/** FNV-1a 64 over arbitrary bytes (exposed for campaign ids). */
uint64_t fnv1a64(const std::string& bytes);

}  // namespace io
}  // namespace gld

#endif  // GLD_IO_SERIALIZE_H_
