#ifndef GLD_IO_JSON_H_
#define GLD_IO_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gld {
namespace io {

/**
 * Minimal dependency-free JSON document model for the campaign subsystem:
 * enough of RFC 8259 to serialize run manifests and metrics, nothing more.
 *
 * Design points that matter for reproducibility:
 *  - Objects preserve insertion order (vector of pairs, not a map), so a
 *    document dumps to the same canonical byte string on every platform —
 *    config hashes are computed over that string.
 *  - Integers are kept distinct from doubles (int64 storage) so counters
 *    like `shots` round-trip exactly.
 *  - Doubles print with %.17g which round-trips IEEE-754 binary64 through
 *    decimal; fields that must stay BIT-identical across merge/aggregate
 *    (metric totals) are nevertheless stored as hex bit patterns by the
 *    serialization layer, never as JSON numbers (see serialize.h).
 *
 * Errors (parse errors, type mismatches, missing keys) throw
 * std::runtime_error with a message naming the offending key/position.
 */
class Json {
  public:
    enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

    Json() : type_(Type::kNull) {}

    static Json null() { return Json(); }
    static Json boolean(bool b);
    static Json integer(int64_t v);
    static Json number(double v);
    static Json str(std::string s);
    static Json array();
    static Json object();

    Type type() const { return type_; }
    bool is_null() const { return type_ == Type::kNull; }

    // --- Typed accessors; throw std::runtime_error on type mismatch. ---
    bool as_bool() const;
    /** Accepts kInt only (no silent double truncation). */
    int64_t as_int() const;
    /** Accepts kInt or kDouble. */
    double as_double() const;
    const std::string& as_str() const;

    // --- Array interface. ---
    void push(Json v);
    size_t size() const;
    const Json& at(size_t i) const;

    // --- Object interface (ordered). ---
    void set(const std::string& key, Json v);
    bool has(const std::string& key) const;
    /** Throws std::runtime_error naming `key` when absent. */
    const Json& operator[](const std::string& key) const;
    const std::vector<std::pair<std::string, Json>>& items() const;

    /**
     * Serializes the document.  indent < 0 gives the canonical compact
     * form (no whitespace — the hashing input); indent >= 0 pretty-prints.
     */
    std::string dump(int indent = -1) const;

    /** Parses a complete JSON document; trailing garbage is an error. */
    static Json parse(const std::string& text);

  private:
    void dump_to(std::string* out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    int64_t int_ = 0;
    double dbl_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

/** Reads a whole file; throws std::runtime_error if unreadable. */
std::string read_file(const std::string& path);

/**
 * Writes a whole file via a temporary + rename so a crashed shard never
 * leaves a half-written result for resume to trust.
 */
void write_file_atomic(const std::string& path, const std::string& content);

/**
 * Appends one line (a trailing '\n' is added) to a file, creating it if
 * absent.  A single fwrite of a short line is atomic enough for the
 * progress JSONL heartbeats (one writer per shard; readers tolerate a
 * torn final line by parsing the last COMPLETE line).
 */
void append_line(const std::string& path, const std::string& line);

/** True if `path` names an existing regular file. */
bool file_exists(const std::string& path);

/** Creates a directory (and parents); no-op if it already exists. */
void make_dirs(const std::string& path);

}  // namespace io
}  // namespace gld

#endif  // GLD_IO_JSON_H_
