#ifndef GLD_DECODE_DECODING_GRAPH_H_
#define GLD_DECODE_DECODING_GRAPH_H_

#include <vector>

namespace gld {

/**
 * One edge of the space-time decoding graph.  `v == kBoundary` marks a
 * boundary edge (the fault flips a single detector).  `logical` records
 * whether the underlying fault flips the logical observable.
 */
struct GraphEdge {
    int u;
    int v;
    bool logical;
    double prob;

    static constexpr int kBoundary = -1;
};

/**
 * Space-time decoding graph over Z-type detectors for a memory-Z
 * experiment: node (r, zc) = r * n_z + zc for syndrome rounds r in
 * [0, rounds) plus one final layer (r = rounds) comparing the last
 * syndrome measurements with the transversal data readout.
 */
class DecodingGraph {
  public:
    DecodingGraph(int n_nodes, std::vector<GraphEdge> edges);

    int n_nodes() const { return n_nodes_; }
    const std::vector<GraphEdge>& edges() const { return edges_; }
    /** Edge ids incident to a node (boundary edges appear at u only). */
    const std::vector<std::vector<int>>& incidence() const
    {
        return incidence_;
    }

  private:
    int n_nodes_;
    std::vector<GraphEdge> edges_;
    std::vector<std::vector<int>> incidence_;
};

}  // namespace gld

#endif  // GLD_DECODE_DECODING_GRAPH_H_
