#include <cstddef>
#include "decode/decoding_graph.h"

#include <cassert>

namespace gld {

DecodingGraph::DecodingGraph(int n_nodes, std::vector<GraphEdge> edges)
    : n_nodes_(n_nodes), edges_(std::move(edges))
{
    incidence_.assign(n_nodes_, {});
    for (size_t e = 0; e < edges_.size(); ++e) {
        const GraphEdge& ge = edges_[e];
        assert(ge.u >= 0 && ge.u < n_nodes_);
        incidence_[ge.u].push_back(static_cast<int>(e));
        if (ge.v != GraphEdge::kBoundary) {
            assert(ge.v >= 0 && ge.v < n_nodes_);
            incidence_[ge.v].push_back(static_cast<int>(e));
        }
    }
}

}  // namespace gld
