#include <cstddef>
#include "decode/dem_builder.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace gld {

namespace {

// Pauli encoding for injections: bit 0 = X component, bit 1 = Z component.
constexpr int kPauliX = 1;
constexpr int kPauliZ = 2;
constexpr int kPauliY = 3;

}  // namespace

DemBuilder::DemBuilder(const CssCode& code, const RoundCircuit& rc,
                       const NoiseParams& np, int rounds)
    : code_(&code), rc_(&rc), np_(np), rounds_(rounds)
{
    z_index_.assign(code.n_checks(), -1);
    for (int c = 0; c < code.n_checks(); ++c) {
        if (code.check(c).type == CheckType::kZ) {
            z_index_[c] = static_cast<int>(z_checks_.size());
            z_checks_.push_back(c);
        }
    }
    logical_mask_.assign(code.n_data(), 0);
    for (int q : code.logical_z())
        logical_mask_[q] ^= 1;
    fx_.assign(code.n_qubits(), 0);
    fz_.assign(code.n_qubits(), 0);
}

DemBuilder::TemplateFault
DemBuilder::propagate(const std::vector<std::pair<int, int>>& inject,
                      size_t start_op, double prob)
{
    // Clear only the qubits touched by the previous call.
    for (int q : touched_) {
        fx_[q] = 0;
        fz_[q] = 0;
    }
    touched_.clear();
    auto touch = [&](int q) { touched_.push_back(q); };

    for (const auto& [q, pauli] : inject) {
        fx_[q] ^= pauli & 1;
        fz_[q] ^= (pauli >> 1) & 1;
        touch(q);
    }

    std::vector<std::pair<int, uint8_t>> mflips;  // (check, flip)
    const auto& ops = rc_->ops();
    for (size_t i = start_op; i < ops.size(); ++i) {
        const Op& op = ops[i];
        switch (op.type) {
          case OpType::kResetZ:
            fx_[op.q0] = 0;
            fz_[op.q0] = 0;
            break;
          case OpType::kH:
            std::swap(fx_[op.q0], fz_[op.q0]);
            break;
          case OpType::kCnot:
            if (fx_[op.q0]) {
                fx_[op.q1] ^= 1;
                touch(op.q1);
            }
            if (fz_[op.q1]) {
                fz_[op.q0] ^= 1;
                touch(op.q0);
            }
            break;
          case OpType::kMeasure:
            if (fx_[op.q0])
                mflips.emplace_back(op.mslot, 1);
            break;
        }
    }

    // Steady-state parity per Z check (all later rounds measure this).
    TemplateFault out;
    out.prob = prob;
    out.logical = false;
    std::vector<std::pair<int, int>> acc;  // (layer, zidx) with multiplicity
    for (const auto& [check, flip] : mflips) {
        if (flip && z_index_[check] >= 0) {
            acc.emplace_back(0, z_index_[check]);
            acc.emplace_back(1, z_index_[check]);  // det(r+1) ^= m_r flip
        }
    }
    for (size_t zi = 0; zi < z_checks_.size(); ++zi) {
        uint8_t parity = 0;
        for (int q : code_->check(z_checks_[zi]).support)
            parity ^= fx_[q];
        if (parity)
            acc.emplace_back(1, static_cast<int>(zi));
    }
    for (int q = 0; q < code_->n_data(); ++q) {
        if (fx_[q] && logical_mask_[q])
            out.logical = !out.logical;
    }
    // XOR-dedupe the accumulated (layer, zidx) flips.
    std::sort(acc.begin(), acc.end());
    for (size_t i = 0; i < acc.size();) {
        size_t j = i;
        while (j < acc.size() && acc[j] == acc[i])
            ++j;
        if ((j - i) % 2 == 1)
            out.dets.push_back(acc[i]);
        i = j;
    }
    return out;
}

void
DemBuilder::enumerate_template()
{
    if (template_built_)
        return;
    template_built_ = true;
    const auto& ops = rc_->ops();
    const double p = np_.p;

    // Round-start data depolarization.
    for (int q = 0; q < code_->n_data(); ++q) {
        for (int pauli : {kPauliX, kPauliZ, kPauliY})
            template_faults_.push_back(propagate({{q, pauli}}, 0, p / 3.0));
    }
    for (size_t i = 0; i < ops.size(); ++i) {
        const Op& op = ops[i];
        switch (op.type) {
          case OpType::kResetZ:
            template_faults_.push_back(
                propagate({{op.q0, kPauliX}}, i + 1, p));
            break;
          case OpType::kH:
            for (int pauli : {kPauliX, kPauliZ, kPauliY}) {
                template_faults_.push_back(
                    propagate({{op.q0, pauli}}, i + 1, p / 3.0));
            }
            break;
          case OpType::kCnot:
            // Marginal single-qubit components of the two-qubit
            // depolarizing channel (4/15 each); correlated pairs are left
            // to the simulator and absorbed as independent edges.
            for (int pauli : {kPauliX, kPauliZ, kPauliY}) {
                template_faults_.push_back(
                    propagate({{op.q0, pauli}}, i + 1, 4.0 * p / 15.0));
                template_faults_.push_back(
                    propagate({{op.q1, pauli}}, i + 1, 4.0 * p / 15.0));
            }
            break;
          case OpType::kMeasure: {
            const int zi = z_index_[op.mslot];
            if (zi >= 0) {
                TemplateFault tf;
                tf.prob = p;
                tf.logical = false;
                tf.dets = {{0, zi}, {1, zi}};
                template_faults_.push_back(tf);
            }
            break;
          }
        }
    }
    // Drop no-op faults.
    template_faults_.erase(
        std::remove_if(template_faults_.begin(), template_faults_.end(),
                       [](const TemplateFault& tf) {
                           return tf.dets.empty() && !tf.logical;
                       }),
        template_faults_.end());
}

const std::vector<DemBuilder::TemplateFault>&
DemBuilder::template_faults()
{
    enumerate_template();
    return template_faults_;
}

DecodingGraph
DemBuilder::build()
{
    enumerate_template();
    dropped_ = 0;

    // (u, v) -> prob by logical parity; v == n_nodes() encodes boundary.
    std::unordered_map<uint64_t, std::pair<double, double>> acc;
    auto add_fault = [&](const std::vector<int>& nodes, bool logical,
                         double prob) {
        if (nodes.empty()) {
            if (logical)
                ++dropped_;  // undetectable logical fault
            return;
        }
        if (nodes.size() > 2) {
            ++dropped_;
            return;
        }
        int u = nodes[0];
        int v = nodes.size() == 2 ? nodes[1] : n_nodes();
        if (u > v)
            std::swap(u, v);
        const uint64_t key =
            (static_cast<uint64_t>(u) << 32) | static_cast<uint32_t>(v);
        auto& slot = acc[key];
        if (logical)
            slot.second += prob;
        else
            slot.first += prob;
    };

    std::vector<int> nodes;
    for (int r = 0; r < rounds_; ++r) {
        for (const TemplateFault& tf : template_faults_) {
            nodes.clear();
            bool in_range = true;
            for (const auto& [layer, zi] : tf.dets) {
                const int l = r + layer;
                if (l > rounds_) {
                    in_range = false;
                    break;
                }
                nodes.push_back(node_id(l, zi));
            }
            if (!in_range)
                continue;  // cannot happen (layer <= 1), defensive
            add_fault(nodes, tf.logical, tf.prob);
        }
    }
    // Final transversal-readout flips.
    for (int q = 0; q < code_->n_data(); ++q) {
        nodes.clear();
        for (int c : code_->data_adjacency()[q]) {
            if (z_index_[c] >= 0)
                nodes.push_back(node_id(rounds_, z_index_[c]));
        }
        add_fault(nodes, logical_mask_[q] != 0, np_.p);
    }

    std::vector<GraphEdge> edges;
    edges.reserve(acc.size());
    for (const auto& [key, probs] : acc) {
        const int u = static_cast<int>(key >> 32);
        const int v = static_cast<int>(key & 0xFFFFFFFFu);
        GraphEdge e;
        e.u = u;
        e.v = v == n_nodes() ? GraphEdge::kBoundary : v;
        // Keep the more probable logical attribution for this edge.
        e.logical = probs.second > probs.first;
        e.prob = probs.first + probs.second;
        edges.push_back(e);
    }
    return DecodingGraph(n_nodes(), std::move(edges));
}

}  // namespace gld
