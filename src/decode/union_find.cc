#include <cstddef>
#include "decode/union_find.h"

#include <algorithm>
#include <cassert>

namespace gld {

UnionFindDecoder::UnionFindDecoder(const DecodingGraph& graph)
    : graph_(&graph)
{
    const int n = graph.n_nodes();
    parent_.resize(n);
    size_.resize(n);
    parity_.resize(n);
    boundary_.resize(n);
    in_cluster_.resize(n);
    frontier_.resize(n);
    edge_added_.assign(graph.edges().size(), 0);
    // Virtual boundary node id = n, so the forest arrays span n + 1.
    adj_.resize(static_cast<size_t>(n) + 1);
    visited_.assign(static_cast<size_t>(n) + 1, 0);
    parent_edge_.assign(static_cast<size_t>(n) + 1, -1);
    parent_node_.assign(static_cast<size_t>(n) + 1, -1);
    defect_.resize(static_cast<size_t>(n) + 1);
}

int
UnionFindDecoder::find(int v)
{
    while (parent_[v] != v) {
        parent_[v] = parent_[parent_[v]];
        v = parent_[v];
    }
    return v;
}

void
UnionFindDecoder::unite(int a, int b)
{
    a = find(a);
    b = find(b);
    if (a == b)
        return;
    if (size_[a] < size_[b])
        std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    parity_[a] ^= parity_[b];
    boundary_[a] |= boundary_[b];
    if (frontier_[a].size() < frontier_[b].size())
        frontier_[a].swap(frontier_[b]);
    frontier_[a].insert(frontier_[a].end(), frontier_[b].begin(),
                        frontier_[b].end());
    // clear() only — the absorbed root's capacity stays in the arena for
    // the next decode (the old shrink_to_fit was an allocator round trip
    // per merge).
    frontier_[b].clear();
}

void
UnionFindDecoder::bfs(int root)
{
    visited_[root] = 1;
    queue_.clear();
    queue_.push_back(root);
    size_t head = 0;
    while (head < queue_.size()) {
        const int v = queue_[head++];
        order_.push_back(v);
        for (const auto& [w, e] : adj_[v]) {
            if (!visited_[w]) {
                visited_[w] = 1;
                parent_edge_[w] = e;
                parent_node_[w] = v;
                queue_.push_back(w);
            }
        }
    }
}

bool
UnionFindDecoder::decode(const std::vector<uint8_t>& syndrome)
{
    const auto& edges = graph_->edges();
    const auto& incidence = graph_->incidence();
    const int n = graph_->n_nodes();
    assert(static_cast<int>(syndrome.size()) == n);

    // Quiet-syndrome fast path: no defects means no clusters, an empty
    // peeling forest and a false return — the full pass below computes
    // exactly that, at O(n) initialization cost.  Quiet shots dominate
    // at the paper's physical error rates, so this one scan is most of
    // the decoder's steady-state cost.
    bool quiet = true;
    for (int v = 0; v < n; ++v) {
        if (syndrome[v] != 0) {
            quiet = false;
            break;
        }
    }
    if (quiet) {
        residual_ = 0;
        return false;
    }

    defects_.clear();
    for (int v = 0; v < n; ++v) {
        parent_[v] = v;
        size_[v] = 1;
        parity_[v] = syndrome[v];
        boundary_[v] = 0;
        in_cluster_[v] = syndrome[v];
        frontier_[v].clear();
        if (syndrome[v]) {
            defects_.push_back(v);
            frontier_[v] = incidence[v];
        }
    }
    // edge_added_ is all-zero here: the previous decode un-set exactly
    // the entries it set (see the cleanup pass at the end).
    added_edges_.clear();

    // --- Growth. ---
    odd_ = defects_;
    while (!odd_.empty()) {
        next_.clear();
        for (int r : odd_) {
            r = find(r);
            if (!parity_[r] || boundary_[r])
                continue;
            std::vector<int> fr = std::move(frontier_[r]);
            frontier_[r].clear();
            for (int e : fr) {
                if (edge_added_[e])
                    continue;
                const GraphEdge& ge = edges[e];
                edge_added_[e] = 1;
                added_edges_.push_back(e);
                if (ge.v == GraphEdge::kBoundary) {
                    boundary_[find(ge.u)] |= 1;
                    continue;
                }
                for (int w : {ge.u, ge.v}) {
                    if (!in_cluster_[w]) {
                        in_cluster_[w] = 1;
                        frontier_[w] = incidence[w];
                    }
                }
                unite(ge.u, ge.v);
            }
            const int r2 = find(r);
            if (parity_[r2] && !boundary_[r2])
                next_.push_back(r2);
        }
        std::sort(next_.begin(), next_.end());
        next_.erase(std::unique(next_.begin(), next_.end()), next_.end());
        // Remove entries that merged into satisfied clusters.
        still_.clear();
        for (int r : next_) {
            if (find(r) == r && parity_[r] && !boundary_[r])
                still_.push_back(r);
        }
        odd_.swap(still_);
    }

    // --- Peeling over the grown subgraph. ---
    // adj_ / visited_ / parent_edge_ / parent_node_ hold their between-
    // decode invariants (empty / 0 / -1 / -1) — the cleanup pass below
    // maintains them, so no O(n + E) re-initialization happens here.
    for (int e : added_edges_) {
        const GraphEdge& ge = edges[e];
        const int v = ge.v == GraphEdge::kBoundary ? n : ge.v;
        adj_[ge.u].emplace_back(v, e);
        adj_[v].emplace_back(ge.u, e);
    }
    order_.clear();
    bfs(n);  // clusters touching the boundary root at the boundary
    for (int e : added_edges_) {
        const GraphEdge& ge = edges[e];
        if (!visited_[ge.u])
            bfs(ge.u);
        if (ge.v != GraphEdge::kBoundary && !visited_[ge.v])
            bfs(ge.v);
    }

    for (int v = 0; v < n; ++v)
        defect_[v] = syndrome[v];
    defect_[n] = 0;
    bool logical = false;
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
        const int v = *it;
        if (v == n || !defect_[v])
            continue;
        const int e = parent_edge_[v];
        if (e < 0)
            continue;  // unmatched defect (counted as residual below)
        defect_[v] = 0;
        defect_[parent_node_[v]] ^= 1;
        if (edges[e].logical)
            logical = !logical;
    }
    residual_ = 0;
    for (int v = 0; v < n; ++v)
        residual_ += defect_[v];

    // Cleanup: restore the sparse-state invariants by undoing exactly
    // what this decode touched.  order_ is the full visited set (every
    // visited node is queued and every queued node is popped into
    // order_), and the adj_ entries built above live only at added-edge
    // endpoints.
    for (int v : order_) {
        visited_[v] = 0;
        parent_edge_[v] = -1;
        parent_node_[v] = -1;
    }
    for (int e : added_edges_) {
        const GraphEdge& ge = edges[e];
        edge_added_[e] = 0;
        adj_[ge.u].clear();
        adj_[ge.v == GraphEdge::kBoundary ? n : ge.v].clear();
    }
    return logical;
}

}  // namespace gld
