#include <cstddef>
#include "decode/union_find.h"

#include <algorithm>
#include <cassert>

namespace gld {

UnionFindDecoder::UnionFindDecoder(const DecodingGraph& graph)
    : graph_(&graph)
{
    const int n = graph.n_nodes();
    parent_.resize(n);
    size_.resize(n);
    parity_.resize(n);
    boundary_.resize(n);
    in_cluster_.resize(n);
    frontier_.resize(n);
    edge_added_.resize(graph.edges().size());
}

int
UnionFindDecoder::find(int v)
{
    while (parent_[v] != v) {
        parent_[v] = parent_[parent_[v]];
        v = parent_[v];
    }
    return v;
}

void
UnionFindDecoder::unite(int a, int b)
{
    a = find(a);
    b = find(b);
    if (a == b)
        return;
    if (size_[a] < size_[b])
        std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    parity_[a] ^= parity_[b];
    boundary_[a] |= boundary_[b];
    if (frontier_[a].size() < frontier_[b].size())
        frontier_[a].swap(frontier_[b]);
    frontier_[a].insert(frontier_[a].end(), frontier_[b].begin(),
                        frontier_[b].end());
    frontier_[b].clear();
    frontier_[b].shrink_to_fit();
}

bool
UnionFindDecoder::decode(const std::vector<uint8_t>& syndrome)
{
    const auto& edges = graph_->edges();
    const auto& incidence = graph_->incidence();
    const int n = graph_->n_nodes();
    assert(static_cast<int>(syndrome.size()) == n);

    std::vector<int> defects;
    for (int v = 0; v < n; ++v) {
        parent_[v] = v;
        size_[v] = 1;
        parity_[v] = syndrome[v];
        boundary_[v] = 0;
        in_cluster_[v] = syndrome[v];
        frontier_[v].clear();
        if (syndrome[v]) {
            defects.push_back(v);
            frontier_[v] = incidence[v];
        }
    }
    std::fill(edge_added_.begin(), edge_added_.end(), 0);
    std::vector<int> added_edges;

    // --- Growth. ---
    std::vector<int> odd = defects;
    while (!odd.empty()) {
        std::vector<int> next;
        for (int r : odd) {
            r = find(r);
            if (!parity_[r] || boundary_[r])
                continue;
            std::vector<int> fr = std::move(frontier_[r]);
            frontier_[r].clear();
            for (int e : fr) {
                if (edge_added_[e])
                    continue;
                const GraphEdge& ge = edges[e];
                edge_added_[e] = 1;
                added_edges.push_back(e);
                if (ge.v == GraphEdge::kBoundary) {
                    boundary_[find(ge.u)] |= 1;
                    continue;
                }
                for (int w : {ge.u, ge.v}) {
                    if (!in_cluster_[w]) {
                        in_cluster_[w] = 1;
                        frontier_[w] = incidence[w];
                    }
                }
                unite(ge.u, ge.v);
            }
            const int r2 = find(r);
            if (parity_[r2] && !boundary_[r2])
                next.push_back(r2);
        }
        std::sort(next.begin(), next.end());
        next.erase(std::unique(next.begin(), next.end()), next.end());
        // Remove entries that merged into satisfied clusters.
        std::vector<int> still;
        for (int r : next) {
            if (find(r) == r && parity_[r] && !boundary_[r])
                still.push_back(r);
        }
        odd = std::move(still);
    }

    // --- Peeling over the grown subgraph. ---
    // Virtual boundary node id = n.
    std::vector<std::vector<std::pair<int, int>>> adj(n + 1);
    for (int e : added_edges) {
        const GraphEdge& ge = edges[e];
        const int v = ge.v == GraphEdge::kBoundary ? n : ge.v;
        adj[ge.u].emplace_back(v, e);
        adj[v].emplace_back(ge.u, e);
    }
    std::vector<uint8_t> visited(n + 1, 0);
    std::vector<int> order;
    std::vector<int> parent_edge(n + 1, -1);
    std::vector<int> parent_node(n + 1, -1);
    auto bfs = [&](int root) {
        visited[root] = 1;
        std::vector<int> queue = {root};
        size_t head = 0;
        while (head < queue.size()) {
            const int v = queue[head++];
            order.push_back(v);
            for (const auto& [w, e] : adj[v]) {
                if (!visited[w]) {
                    visited[w] = 1;
                    parent_edge[w] = e;
                    parent_node[w] = v;
                    queue.push_back(w);
                }
            }
        }
    };
    bfs(n);  // clusters touching the boundary root at the boundary
    for (int e : added_edges) {
        const GraphEdge& ge = edges[e];
        if (!visited[ge.u])
            bfs(ge.u);
        if (ge.v != GraphEdge::kBoundary && !visited[ge.v])
            bfs(ge.v);
    }

    std::vector<uint8_t> defect(n + 1, 0);
    for (int v = 0; v < n; ++v)
        defect[v] = syndrome[v];
    bool logical = false;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const int v = *it;
        if (v == n || !defect[v])
            continue;
        const int e = parent_edge[v];
        if (e < 0)
            continue;  // unmatched defect (counted as residual below)
        defect[v] = 0;
        defect[parent_node[v]] ^= 1;
        if (edges[e].logical)
            logical = !logical;
    }
    residual_ = 0;
    for (int v = 0; v < n; ++v)
        residual_ += defect[v];
    return logical;
}

}  // namespace gld
