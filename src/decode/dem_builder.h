#ifndef GLD_DECODE_DEM_BUILDER_H_
#define GLD_DECODE_DEM_BUILDER_H_

#include <vector>

#include "circuit/round_circuit.h"
#include "codes/css_code.h"
#include "decode/decoding_graph.h"
#include "noise/noise_model.h"

namespace gld {

/**
 * Detector-error-model builder: exhaustively enumerates the single Pauli
 * faults of the noisy syndrome-extraction circuit, propagates each through
 * the round (data frames are static afterwards, so one template round plus
 * the steady-state parity determines the full space-time footprint), and
 * assembles the space-time decoding graph over Z-type detectors for a
 * memory-Z experiment.
 *
 * Faults flipping one detector become boundary edges, two an internal
 * edge; rarer hook faults flipping more are dropped (counted in
 * dropped_hyperedges()) — the union-find decoder operates on graph edges,
 * as is standard.  Leakage is deliberately NOT modeled: the decoder is
 * leakage-unaware (the paper's premise), leakage enters only through the
 * corrupted syndromes the simulator produces.
 */
class DemBuilder {
  public:
    DemBuilder(const CssCode& code, const RoundCircuit& rc,
               const NoiseParams& np, int rounds);

    /** Number of Z-type checks (detector columns). */
    int nz() const { return static_cast<int>(z_checks_.size()); }
    /** Total detector nodes: `rounds` syndrome layers + 1 final layer. */
    int n_nodes() const { return (rounds_ + 1) * nz(); }
    /** Node id of Z-detector column zidx at layer (round) `layer`. */
    int node_id(int layer, int zidx) const { return layer * nz() + zidx; }
    /** Z-column of check c, or -1 if c is an X check. */
    int z_index(int check) const { return z_index_[check]; }

    /** Builds the deduplicated decoding graph. */
    DecodingGraph build();

    int dropped_hyperedges() const { return dropped_; }

    /**
     * A single fault's footprint on the Z-detector template: flips at
     * (layer offset 0/1, z column), plus the logical-observable flip.
     */
    struct TemplateFault {
        std::vector<std::pair<int, int>> dets;
        bool logical;
        double prob;
    };
    /** The per-round fault templates (exposed for tests). */
    const std::vector<TemplateFault>& template_faults();

  private:
    void enumerate_template();
    TemplateFault propagate(const std::vector<std::pair<int, int>>& inject,
                            size_t start_op, double prob);

    const CssCode* code_;
    const RoundCircuit* rc_;
    NoiseParams np_;
    int rounds_;
    std::vector<int> z_checks_;
    std::vector<int> z_index_;
    std::vector<uint8_t> logical_mask_;
    std::vector<TemplateFault> template_faults_;
    bool template_built_ = false;
    int dropped_ = 0;

    // Scratch for propagation.
    std::vector<uint8_t> fx_, fz_;
    std::vector<int> touched_;
};

}  // namespace gld

#endif  // GLD_DECODE_DEM_BUILDER_H_
