#ifndef GLD_DECODE_UNION_FIND_H_
#define GLD_DECODE_UNION_FIND_H_

#include <cstdint>
#include <vector>

#include "decode/decoding_graph.h"

namespace gld {

/**
 * Union-find decoder (Delfosse-Nickerson style, unweighted growth):
 * odd-parity clusters grow by absorbing their frontier edges until every
 * cluster has even defect parity or touches the boundary; a spanning-forest
 * peeling pass then selects a correction and returns its logical parity.
 *
 * Near-matching accuracy at a fraction of MWPM's cost — and the paper's
 * LER comparisons are relative across leakage policies, which this
 * preserves.
 *
 * The decoder is an ARENA: every piece of working state is a member
 * whose capacity persists across decode() calls, so the steady state
 * (one cached decoder per scheduler worker) allocates nothing per shot.
 * Sparse structures are lazily cleaned — at the end of a decode exactly
 * the entries that decode touched are reset (tracked via added_edges_ /
 * order_), instead of O(edges) / O(nodes) wipes up front.  A decode's
 * OUTPUT is bit-identical to the pre-arena implementation: the growth
 * order, the peeling forest and the residual never depend on where the
 * scratch lives.  Not thread-safe; one instance per thread.
 */
class UnionFindDecoder {
  public:
    explicit UnionFindDecoder(const DecodingGraph& graph);

    /**
     * Decodes one syndrome (bit per node).  An all-zero syndrome takes a
     * fast path (one scan, no state touched) — provably the same answer
     * (no defects means no growth, an empty forest and a false return).
     * @return the predicted logical-observable flip.
     */
    bool decode(const std::vector<uint8_t>& syndrome);

    /** Number of defects left unmatched by the last decode (0 = clean). */
    int last_residual() const { return residual_; }

  private:
    int find(int v);
    void unite(int a, int b);
    void bfs(int root);

    const DecodingGraph* graph_;
    // Dense per-node union-find state, re-initialized every decode.
    std::vector<int> parent_;
    std::vector<int> size_;
    std::vector<uint8_t> parity_;
    std::vector<uint8_t> boundary_;
    std::vector<uint8_t> in_cluster_;
    std::vector<std::vector<int>> frontier_;
    // Lazily-cleaned sparse state.  Invariants BETWEEN decodes:
    // edge_added_ all zero (restored via added_edges_), adj_ entries all
    // empty and visited_/parent_edge_/parent_node_ at 0/-1/-1 (restored
    // via the touched node set in order_ and the added edge endpoints).
    std::vector<uint8_t> edge_added_;
    std::vector<std::vector<std::pair<int, int>>> adj_;
    std::vector<uint8_t> visited_;
    std::vector<int> parent_edge_;
    std::vector<int> parent_node_;
    // Reused dense/list scratch (contents meaningless between decodes).
    std::vector<uint8_t> defect_;
    std::vector<int> defects_;
    std::vector<int> odd_;
    std::vector<int> next_;
    std::vector<int> still_;
    std::vector<int> added_edges_;
    std::vector<int> order_;
    std::vector<int> queue_;
    int residual_ = 0;
};

}  // namespace gld

#endif  // GLD_DECODE_UNION_FIND_H_
