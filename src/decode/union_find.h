#ifndef GLD_DECODE_UNION_FIND_H_
#define GLD_DECODE_UNION_FIND_H_

#include <cstdint>
#include <vector>

#include "decode/decoding_graph.h"

namespace gld {

/**
 * Union-find decoder (Delfosse-Nickerson style, unweighted growth):
 * odd-parity clusters grow by absorbing their frontier edges until every
 * cluster has even defect parity or touches the boundary; a spanning-forest
 * peeling pass then selects a correction and returns its logical parity.
 *
 * Near-matching accuracy at a fraction of MWPM's cost — and the paper's
 * LER comparisons are relative across leakage policies, which this
 * preserves.
 */
class UnionFindDecoder {
  public:
    explicit UnionFindDecoder(const DecodingGraph& graph);

    /**
     * Decodes one syndrome (bit per node).
     * @return the predicted logical-observable flip.
     */
    bool decode(const std::vector<uint8_t>& syndrome);

    /** Number of defects left unmatched by the last decode (0 = clean). */
    int last_residual() const { return residual_; }

  private:
    int find(int v);
    void unite(int a, int b);

    const DecodingGraph* graph_;
    // Per-decode state.
    std::vector<int> parent_;
    std::vector<int> size_;
    std::vector<uint8_t> parity_;
    std::vector<uint8_t> boundary_;
    std::vector<uint8_t> in_cluster_;
    std::vector<uint8_t> edge_added_;
    std::vector<std::vector<int>> frontier_;
    int residual_ = 0;
};

}  // namespace gld

#endif  // GLD_DECODE_UNION_FIND_H_
