#include "circuit/round_circuit.h"

#include <algorithm>

#include "circuit/schedule.h"

namespace gld {

RoundCircuit::RoundCircuit(const CssCode& code) : code_(&code)
{
    const int n_checks = code.n_checks();

    if (code.has_schedule_hint()) {
        // Hand-crafted interleaved schedule (e.g. the surface code's
        // hook-safe zig-zag orders).
        std::vector<std::pair<int, int>> edges;  // (check, data)
        std::vector<int> colors;
        int max_step = 0;
        for (int c = 0; c < n_checks; ++c) {
            for (const auto& [q, step] : code.schedule_hint()[c]) {
                edges.emplace_back(c, q);
                colors.push_back(step);
                max_step = std::max(max_step, step);
            }
        }
        n_cnot_steps_ = max_step + 1;
        n_cnots_ = static_cast<int>(edges.size());
        build_ops(edges, colors);
        return;
    }

    // Schedule the Z-check and X-check extraction phases sequentially:
    // interleaving the two phases is only valid under code-specific CNOT
    // orderings (the surface code's zig-zag patterns); phase separation
    // measures the stabilizers correctly for ANY CSS code, which the
    // generalizability story (color/HGP/BPC) requires.  Each phase is
    // edge-colored independently (König: depth = max degree).
    std::vector<std::pair<int, int>> edges;  // (check, data), Z first
    size_t n_z_edges = 0;
    for (int c = 0; c < n_checks; ++c) {
        if (code.check(c).type == CheckType::kZ) {
            for (int q : code.check(c).support)
                edges.emplace_back(c, q);
        }
    }
    n_z_edges = edges.size();
    for (int c = 0; c < n_checks; ++c) {
        if (code.check(c).type == CheckType::kX) {
            for (int q : code.check(c).support)
                edges.emplace_back(c, q);
        }
    }
    std::vector<std::pair<int, int>> z_edges(edges.begin(),
                                             edges.begin() + n_z_edges);
    std::vector<std::pair<int, int>> x_edges(edges.begin() + n_z_edges,
                                             edges.end());
    int zc = 0, xc = 0;
    std::vector<int> z_colors, x_colors;
    if (!z_edges.empty())
        z_colors = BipartiteEdgeColoring::color(n_checks, code.n_data(),
                                                z_edges, &zc);
    if (!x_edges.empty())
        x_colors = BipartiteEdgeColoring::color(n_checks, code.n_data(),
                                                x_edges, &xc);
    std::vector<int> colors(edges.size(), 0);
    for (size_t e = 0; e < z_edges.size(); ++e)
        colors[e] = z_colors[e];
    for (size_t e = 0; e < x_edges.size(); ++e)
        colors[n_z_edges + e] = zc + x_colors[e];
    const int n_colors = zc + xc;
    n_cnot_steps_ = n_colors;
    n_cnots_ = static_cast<int>(edges.size());
    build_ops(edges, colors);
}

void
RoundCircuit::build_ops(const std::vector<std::pair<int, int>>& edges,
                        const std::vector<int>& colors)
{
    const CssCode& code = *code_;
    const int n_checks = code.n_checks();
    // Reset all ancillas.
    for (int c = 0; c < n_checks; ++c)
        ops_.push_back({OpType::kResetZ, code.ancilla_of(c), -1, -1, -1});
    // H on X-check ancillas (prepare |+>).
    for (int c = 0; c < n_checks; ++c) {
        if (code.check(c).type == CheckType::kX)
            ops_.push_back({OpType::kH, code.ancilla_of(c), -1, -1, -1});
    }
    // CNOT layers in step order.
    slots_.assign(code.n_data(), {});
    for (int step = 0; step < n_cnot_steps_; ++step) {
        for (size_t e = 0; e < edges.size(); ++e) {
            if (colors[e] != step)
                continue;
            const int c = edges[e].first;
            const int q = edges[e].second;
            const int anc = code.ancilla_of(c);
            if (code.check(c).type == CheckType::kX)
                ops_.push_back({OpType::kCnot, anc, q, step, -1});
            else
                ops_.push_back({OpType::kCnot, q, anc, step, -1});
            slots_[q].push_back({step, c, code.check(c).type});
        }
    }
    // H on X-check ancillas (unprepare).
    for (int c = 0; c < n_checks; ++c) {
        if (code.check(c).type == CheckType::kX)
            ops_.push_back({OpType::kH, code.ancilla_of(c), -1, -1, -1});
    }
    // Measure all ancillas; measurement slot == check index.
    for (int c = 0; c < n_checks; ++c)
        ops_.push_back({OpType::kMeasure, code.ancilla_of(c), -1, -1, c});

    for (auto& s : slots_) {
        std::sort(s.begin(), s.end(), [](const SlotRef& a, const SlotRef& b) {
            return a.step < b.step;
        });
    }
}

}  // namespace gld
