#ifndef GLD_CIRCUIT_ROUND_CIRCUIT_H_
#define GLD_CIRCUIT_ROUND_CIRCUIT_H_

#include <vector>

#include "codes/css_code.h"

namespace gld {

/** Primitive operations of one syndrome-extraction round. */
enum class OpType : uint8_t {
    kResetZ,   ///< reset qubit q0 to |0>
    kH,        ///< Hadamard on q0
    kCnot,     ///< CNOT with control q0, target q1
    kMeasure,  ///< Z-basis measurement of q0 into measurement slot `mslot`
};

/** One operation; fields unused by the op type are -1. */
struct Op {
    OpType type;
    int q0 = -1;
    int q1 = -1;
    int step = -1;   ///< CNOT time step (only for kCnot)
    int mslot = -1;  ///< measurement slot == check index (only for kMeasure)
};

/** One CNOT slot touching a data qubit, in time order. */
struct SlotRef {
    int step;        ///< CNOT layer index
    int check;       ///< check index (== measurement slot / ancilla id base)
    CheckType type;  ///< the check's type
};

/**
 * The scheduled syndrome-extraction circuit for one QEC round of a CSS code.
 *
 * Structure (time order):
 *   reset all ancillas -> H on X-check ancillas -> CNOT layers (edge-colored
 *   Tanner graph, X checks drive ancilla->data, Z checks data->ancilla) ->
 *   H on X-check ancillas -> measure all ancillas.
 *
 * The per-data-qubit `slots()` metadata (adjacent checks ordered by CNOT
 * time step) is the foundation of both the online sequence checker and the
 * offline GLADIATOR propagation model.
 */
class RoundCircuit {
  public:
    /** Builds the scheduled round circuit for `code`. */
    explicit RoundCircuit(const CssCode& code);

    const CssCode& code() const { return *code_; }
    const std::vector<Op>& ops() const { return ops_; }
    int n_cnot_steps() const { return n_cnot_steps_; }
    int n_cnots() const { return n_cnots_; }

    /** Time-ordered CNOT slots per data qubit. */
    const std::vector<std::vector<SlotRef>>& slots() const { return slots_; }
    const std::vector<SlotRef>& slots_of(int data_qubit) const
    {
        return slots_[data_qubit];
    }

  private:
    void build_ops(const std::vector<std::pair<int, int>>& edges,
                   const std::vector<int>& colors);

    const CssCode* code_;
    std::vector<Op> ops_;
    int n_cnot_steps_ = 0;
    int n_cnots_ = 0;
    std::vector<std::vector<SlotRef>> slots_;
};

}  // namespace gld

#endif  // GLD_CIRCUIT_ROUND_CIRCUIT_H_
