#include "circuit/schedule.h"

#include <algorithm>
#include <cassert>

namespace gld {

std::vector<int>
BipartiteEdgeColoring::color(int n_left, int n_right,
                             const std::vector<std::pair<int, int>>& edges,
                             int* n_colors)
{
    // Compute Δ, the maximum degree: the number of colors we will use.
    std::vector<int> deg_l(n_left, 0), deg_r(n_right, 0);
    for (const auto& [l, r] : edges) {
        assert(l >= 0 && l < n_left && r >= 0 && r < n_right);
        ++deg_l[l];
        ++deg_r[r];
    }
    int delta = 0;
    for (int d : deg_l)
        delta = std::max(delta, d);
    for (int d : deg_r)
        delta = std::max(delta, d);
    if (n_colors != nullptr)
        *n_colors = delta;

    // used_l[l][c] = edge index using color c at left vertex l (-1 if free).
    std::vector<std::vector<int>> used_l(n_left, std::vector<int>(delta, -1));
    std::vector<std::vector<int>> used_r(n_right, std::vector<int>(delta, -1));
    std::vector<int> colors(edges.size(), -1);

    for (size_t e = 0; e < edges.size(); ++e) {
        const int l = edges[e].first;
        const int r = edges[e].second;
        // Find colors free at each endpoint.
        int cl = -1, cr = -1;
        for (int c = 0; c < delta; ++c) {
            if (cl < 0 && used_l[l][c] < 0)
                cl = c;
            if (cr < 0 && used_r[r][c] < 0)
                cr = c;
        }
        assert(cl >= 0 && cr >= 0);
        if (cl == cr) {
            colors[e] = cl;
            used_l[l][cl] = static_cast<int>(e);
            used_r[r][cl] = static_cast<int>(e);
            continue;
        }
        // Flip the alternating (cl, cr) path starting from r: edges colored
        // cl/cr alternately.  r currently lacks cl?  No: cl is free at l but
        // used at r; cr is free at r but used at l.  Walk from r along cl.
        int cur_vertex = r;
        bool vertex_is_right = true;
        int want = cl;  // color of the next edge on the path
        std::vector<int> path;
        while (true) {
            const int eid = vertex_is_right ? used_r[cur_vertex][want]
                                            : used_l[cur_vertex][want];
            if (eid < 0)
                break;
            path.push_back(eid);
            // Move to the other endpoint of eid.
            const int nl = edges[eid].first;
            const int nr = edges[eid].second;
            if (vertex_is_right) {
                cur_vertex = nl;
                vertex_is_right = false;
            } else {
                cur_vertex = nr;
                vertex_is_right = true;
            }
            want = (want == cl) ? cr : cl;
        }
        // Swap colors cl <-> cr along the path.
        for (int eid : path) {
            const int old_c = colors[eid];
            const int new_c = (old_c == cl) ? cr : cl;
            const int pl = edges[eid].first;
            const int pr = edges[eid].second;
            if (used_l[pl][old_c] == eid)
                used_l[pl][old_c] = -1;
            if (used_r[pr][old_c] == eid)
                used_r[pr][old_c] = -1;
            colors[eid] = new_c;
        }
        for (int eid : path) {
            const int c = colors[eid];
            used_l[edges[eid].first][c] = eid;
            used_r[edges[eid].second][c] = eid;
        }
        // Now cl is free at both l and r.
        assert(used_l[l][cl] < 0 && used_r[r][cl] < 0);
        colors[e] = cl;
        used_l[l][cl] = static_cast<int>(e);
        used_r[r][cl] = static_cast<int>(e);
    }
    return colors;
}

std::vector<int>
GreedyVertexColoring::color(int n,
                            const std::vector<std::pair<int, int>>& edges,
                            int* n_colors)
{
    std::vector<std::vector<int>> adj(n);
    for (const auto& [a, b] : edges) {
        adj[a].push_back(b);
        adj[b].push_back(a);
    }
    // Color in descending degree order (Welsh-Powell) for tighter colorings.
    std::vector<int> order(n);
    for (int i = 0; i < n; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return adj[a].size() > adj[b].size();
    });
    std::vector<int> colors(n, -1);
    int max_color = -1;
    std::vector<char> banned;
    for (int v : order) {
        banned.assign(static_cast<size_t>(max_color) + 2, 0);
        for (int u : adj[v]) {
            if (colors[u] >= 0 && colors[u] < static_cast<int>(banned.size()))
                banned[colors[u]] = 1;
        }
        int c = 0;
        while (c < static_cast<int>(banned.size()) && banned[c])
            ++c;
        colors[v] = c;
        max_color = std::max(max_color, c);
    }
    if (n_colors != nullptr)
        *n_colors = max_color + 1;
    return colors;
}

}  // namespace gld
