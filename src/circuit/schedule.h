#ifndef GLD_CIRCUIT_SCHEDULE_H_
#define GLD_CIRCUIT_SCHEDULE_H_

#include <vector>

namespace gld {

/**
 * Proper edge coloring of a bipartite graph (the code's Tanner graph).
 *
 * Each edge (check, data) becomes one CNOT of the syndrome-extraction
 * circuit; a proper edge coloring partitions the CNOTs into parallel time
 * steps where no qubit is used twice.  König's theorem guarantees a
 * Δ-coloring for bipartite graphs; this implements the standard
 * alternating-path (Kempe chain) algorithm, so the schedule depth equals the
 * maximum qubit degree.
 */
class BipartiteEdgeColoring {
  public:
    /**
     * Colors the edges of a bipartite graph.
     * @param n_left   number of left vertices (checks).
     * @param n_right  number of right vertices (data qubits).
     * @param edges    (left, right) pairs.
     * @return per-edge color in [0, n_colors).
     */
    static std::vector<int> color(
        int n_left, int n_right,
        const std::vector<std::pair<int, int>>& edges, int* n_colors);
};

/**
 * Greedy vertex coloring of an arbitrary conflict graph, used by the
 * Staggered Always-LRC policy (paper §3.5): qubits sharing a check (or
 * within distance two in the Tanner graph) get different colors and are
 * reset round-robin.
 */
class GreedyVertexColoring {
  public:
    static std::vector<int> color(
        int n, const std::vector<std::pair<int, int>>& edges, int* n_colors);
};

}  // namespace gld

#endif  // GLD_CIRCUIT_SCHEDULE_H_
