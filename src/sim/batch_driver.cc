#include "sim/batch_driver.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define GLD_BATCH_SIMD_KERNELS 1
#include <immintrin.h>
#endif

// Function multiversioning for the word-wide hot paths: one portable
// binary, with AVX2/AVX-512 clones selected once at load time (glibc
// ifunc) where the CPU has them.  The lane-RNG step is pure 64-bit
// shift/add/xor, which widens perfectly — the clones only change
// shots/second, never results.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_ADDRESS__)
#define GLD_BATCH_HOT \
    __attribute__((target_clones("arch=x86-64-v4", "avx2", "default")))
#else
#define GLD_BATCH_HOT
#endif

namespace gld {

namespace {

/** Spreads the low 8 bits of x to eight 0/1 bytes (byte k = bit k). */
inline uint64_t
spread_bits_to_bytes(uint64_t x)
{
    // Place bit k at bit 8k+k, add (0x80 - 2^k) per byte (no cross-byte
    // carry: each byte holds at most 2^k + (0x80 - 2^k) = 0x80), then
    // extract the per-byte 0x80 flag.
    const uint64_t placed =
        ((x & 0xFFu) * 0x0101010101010101ull) & 0x8040201008040201ull;
    return (((placed + 0x00406070787C7E7Full) >> 7) &
            0x0101010101010101ull);
}

/** Transposes an 8x8 byte matrix held as 8 row words: final row i's
 *  byte j = original row j's byte i. */
inline void
transpose8x8_bytes(uint64_t t[8])
{
    for (int j = 0; j < 8; j += 2) {
        const uint64_t a = t[j], b = t[j + 1];
        t[j] = (a & 0x00FF00FF00FF00FFull) |
               ((b & 0x00FF00FF00FF00FFull) << 8);
        t[j + 1] = ((a >> 8) & 0x00FF00FF00FF00FFull) |
                   (b & 0xFF00FF00FF00FF00ull);
    }
    for (int j : {0, 1, 4, 5}) {
        const uint64_t a = t[j], b = t[j + 2];
        t[j] = (a & 0x0000FFFF0000FFFFull) |
               ((b & 0x0000FFFF0000FFFFull) << 16);
        t[j + 2] = ((a >> 16) & 0x0000FFFF0000FFFFull) |
                   (b & 0xFFFF0000FFFF0000ull);
    }
    for (int j = 0; j < 4; ++j) {
        const uint64_t a = t[j], b = t[j + 4];
        t[j] = (a & 0x00000000FFFFFFFFull) | (b << 32);
        t[j + 4] = (a >> 32) | (b & 0xFFFFFFFF00000000ull);
    }
}

// --- CPU-dispatched site kernels. ---
//
// One Bernoulli site = every lane of [0, n) advances its xoshiro stream
// once and compares the 53-bit draw against a threshold; the kernels
// return the fired lanes PACKED as a LaneMask (callers mask off padding
// lanes).  The AVX-512 path gets the packed mask for free from
// compare-to-mask; AVX2 uses sign-bit movemask; the portable fallback is
// the LaneRngBank scalar loop.  Resolved once per process — identical
// results on every path, only shots/second differ.

struct SiteKernels {
    LaneMask (*one)(LaneRngBank&, int, uint64_t);
    void (*two)(LaneRngBank&, int, uint64_t, uint64_t, LaneMask*,
                LaneMask*);
    void (*three)(LaneRngBank&, int, uint64_t, uint64_t, uint64_t,
                  LaneMask*, LaneMask*, LaneMask*);
};

LaneMask
site1_scalar(LaneRngBank& bank, int n, uint64_t t)
{
    uint64_t bits[kBatchLanes];
    bank.step_compare_all(n, t, bits);
    LaneMask m = 0;
    for (int l = 0; l < n; ++l)
        m |= bits[l] << l;
    return m;
}

void
site2_scalar(LaneRngBank& bank, int n, uint64_t t1, uint64_t t2,
             LaneMask* f1, LaneMask* f2)
{
    uint64_t b1[kBatchLanes], b2[kBatchLanes], a1, a2;
    bank.step_compare2(n, t1, t2, b1, b2, &a1, &a2);
    LaneMask m1 = 0, m2 = 0;
    for (int l = 0; l < n; ++l) {
        m1 |= b1[l] << l;
        m2 |= b2[l] << l;
    }
    *f1 = m1;
    *f2 = m2;
}

void
site3_scalar(LaneRngBank& bank, int n, uint64_t t1, uint64_t t2,
             uint64_t t3, LaneMask* f1, LaneMask* f2, LaneMask* f3)
{
    uint64_t b1[kBatchLanes], b2[kBatchLanes], b3[kBatchLanes], a1, a2, a3;
    bank.step_compare3(n, t1, t2, t3, b1, b2, b3, &a1, &a2, &a3);
    LaneMask m1 = 0, m2 = 0, m3 = 0;
    for (int l = 0; l < n; ++l) {
        m1 |= b1[l] << l;
        m2 |= b2[l] << l;
        m3 |= b3[l] << l;
    }
    *f1 = m1;
    *f2 = m2;
    *f3 = m3;
}

#if GLD_BATCH_SIMD_KERNELS

// GCC's avx512 intrinsic headers trip -Wmaybe-uninitialized false
// positives (the masked-op pass-through operand) at -O3; the kernels
// below never use masked pass-through forms.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

// K consecutive draw-and-compare steps per lane group, state resident in
// registers across the K sites.  Padding lanes of a partial final group
// advance garbage (reseeded next batch) and their fire bits are masked
// off by the caller.

template <int K>
__attribute__((target("avx512f"), always_inline)) inline void
sites_avx512(LaneRngBank& bank, int n, const uint64_t* t, LaneMask* f)
{
    LaneMask acc[K] = {};
    __m512i T[K];
    for (int k = 0; k < K; ++k)
        T[k] = _mm512_set1_epi64(static_cast<long long>(t[k]));
    const int groups = (n + 7) / 8;
    for (int i = 0; i < groups; ++i) {
        __m512i s0 = _mm512_load_si512(bank.raw_s0() + 8 * i);
        __m512i s1 = _mm512_load_si512(bank.raw_s1() + 8 * i);
        __m512i s2 = _mm512_load_si512(bank.raw_s2() + 8 * i);
        __m512i s3 = _mm512_load_si512(bank.raw_s3() + 8 * i);
        for (int k = 0; k < K; ++k) {
            const __m512i m5 =
                _mm512_add_epi64(s1, _mm512_slli_epi64(s1, 2));
            const __m512i r7 = _mm512_rol_epi64(m5, 7);
            const __m512i r =
                _mm512_add_epi64(r7, _mm512_slli_epi64(r7, 3));
            const __m512i t17 = _mm512_slli_epi64(s1, 17);
            s2 = _mm512_xor_si512(s2, s0);
            s3 = _mm512_xor_si512(s3, s1);
            s1 = _mm512_xor_si512(s1, s2);
            s0 = _mm512_xor_si512(s0, s3);
            s2 = _mm512_xor_si512(s2, t17);
            s3 = _mm512_rol_epi64(s3, 45);
            const __mmask8 hit = _mm512_cmplt_epu64_mask(
                _mm512_srli_epi64(r, 11), T[k]);
            acc[k] |= static_cast<LaneMask>(hit) << (8 * i);
        }
        _mm512_store_si512(bank.raw_s0() + 8 * i, s0);
        _mm512_store_si512(bank.raw_s1() + 8 * i, s1);
        _mm512_store_si512(bank.raw_s2() + 8 * i, s2);
        _mm512_store_si512(bank.raw_s3() + 8 * i, s3);
    }
    for (int k = 0; k < K; ++k)
        f[k] = acc[k];
}

__attribute__((target("avx512f"))) LaneMask
site1_avx512(LaneRngBank& bank, int n, uint64_t t)
{
    LaneMask f;
    sites_avx512<1>(bank, n, &t, &f);
    return f;
}

__attribute__((target("avx512f"))) void
site2_avx512(LaneRngBank& bank, int n, uint64_t t1, uint64_t t2,
             LaneMask* f1, LaneMask* f2)
{
    const uint64_t t[2] = {t1, t2};
    LaneMask f[2];
    sites_avx512<2>(bank, n, t, f);
    *f1 = f[0];
    *f2 = f[1];
}

__attribute__((target("avx512f"))) void
site3_avx512(LaneRngBank& bank, int n, uint64_t t1, uint64_t t2,
             uint64_t t3, LaneMask* f1, LaneMask* f2, LaneMask* f3)
{
    const uint64_t t[3] = {t1, t2, t3};
    LaneMask f[3];
    sites_avx512<3>(bank, n, t, f);
    *f1 = f[0];
    *f2 = f[1];
    *f3 = f[2];
}

template <int K>
__attribute__((target("avx2"), always_inline)) inline void
sites_avx2(LaneRngBank& bank, int n, const uint64_t* t, LaneMask* f)
{
    LaneMask acc[K] = {};
    __m256i T[K];
    for (int k = 0; k < K; ++k)
        T[k] = _mm256_set1_epi64x(static_cast<long long>(t[k]));
#define GLD_ROL256(x, s) \
    _mm256_or_si256(_mm256_slli_epi64((x), (s)), \
                    _mm256_srli_epi64((x), 64 - (s)))
    const int groups = (n + 3) / 4;
    for (int i = 0; i < groups; ++i) {
        __m256i s0 = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(bank.raw_s0() + 4 * i));
        __m256i s1 = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(bank.raw_s1() + 4 * i));
        __m256i s2 = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(bank.raw_s2() + 4 * i));
        __m256i s3 = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(bank.raw_s3() + 4 * i));
        for (int k = 0; k < K; ++k) {
            const __m256i m5 =
                _mm256_add_epi64(s1, _mm256_slli_epi64(s1, 2));
            const __m256i r7 = GLD_ROL256(m5, 7);
            const __m256i r =
                _mm256_add_epi64(r7, _mm256_slli_epi64(r7, 3));
            const __m256i t17 = _mm256_slli_epi64(s1, 17);
            s2 = _mm256_xor_si256(s2, s0);
            s3 = _mm256_xor_si256(s3, s1);
            s1 = _mm256_xor_si256(s1, s2);
            s0 = _mm256_xor_si256(s0, s3);
            s2 = _mm256_xor_si256(s2, t17);
            s3 = GLD_ROL256(s3, 45);
            // Both operands < 2^53, so the unsigned compare is a signed
            // subtraction's sign bit — movemask-able.
            const __m256i diff =
                _mm256_sub_epi64(_mm256_srli_epi64(r, 11), T[k]);
            const int hit = _mm256_movemask_pd(_mm256_castsi256_pd(diff));
            acc[k] |= static_cast<LaneMask>(static_cast<unsigned>(hit))
                      << (4 * i);
        }
        _mm256_store_si256(
            reinterpret_cast<__m256i*>(bank.raw_s0() + 4 * i), s0);
        _mm256_store_si256(
            reinterpret_cast<__m256i*>(bank.raw_s1() + 4 * i), s1);
        _mm256_store_si256(
            reinterpret_cast<__m256i*>(bank.raw_s2() + 4 * i), s2);
        _mm256_store_si256(
            reinterpret_cast<__m256i*>(bank.raw_s3() + 4 * i), s3);
    }
    for (int k = 0; k < K; ++k)
        f[k] = acc[k];
#undef GLD_ROL256
}

__attribute__((target("avx2"))) LaneMask
site1_avx2(LaneRngBank& bank, int n, uint64_t t)
{
    LaneMask f;
    sites_avx2<1>(bank, n, &t, &f);
    return f;
}

__attribute__((target("avx2"))) void
site2_avx2(LaneRngBank& bank, int n, uint64_t t1, uint64_t t2,
           LaneMask* f1, LaneMask* f2)
{
    const uint64_t t[2] = {t1, t2};
    LaneMask f[2];
    sites_avx2<2>(bank, n, t, f);
    *f1 = f[0];
    *f2 = f[1];
}

__attribute__((target("avx2"))) void
site3_avx2(LaneRngBank& bank, int n, uint64_t t1, uint64_t t2, uint64_t t3,
           LaneMask* f1, LaneMask* f2, LaneMask* f3)
{
    const uint64_t t[3] = {t1, t2, t3};
    LaneMask f[3];
    sites_avx2<3>(bank, n, t, f);
    *f1 = f[0];
    *f2 = f[1];
    *f3 = f[2];
}

#pragma GCC diagnostic pop

#endif  // GLD_BATCH_SIMD_KERNELS

const SiteKernels&
site_kernels()
{
    static const SiteKernels k = [] {
#if GLD_BATCH_SIMD_KERNELS
        if (__builtin_cpu_supports("avx512f"))
            return SiteKernels{site1_avx512, site2_avx512, site3_avx512};
        if (__builtin_cpu_supports("avx2"))
            return SiteKernels{site1_avx2, site2_avx2, site3_avx2};
#endif
        return SiteKernels{site1_scalar, site2_scalar, site3_scalar};
    }();
    return k;
}

}  // namespace

// Every decision site below mirrors sim/leakage_driver.cc (the scalar
// reference implementation) statement for statement: the scalar control
// flow runs per lane, draws come from that lane's stream in the scalar
// within-shot order, and only the state mutation and the draw mechanics
// are batched — word-wide masked primitives, and one vectorizable
// LaneRngBank pass per Bernoulli site instead of 64 Rng calls.  When
// editing, keep the two files side by side — the tier-1 frame/batch_frame
// bit-equality gate fails on any divergence.

BatchLeakageDriver::BatchLeakageDriver(const CssCode& code,
                                       const RoundCircuit& rc,
                                       const NoiseParams& np, Rng master,
                                       BatchStatePrimitives* state)
    : code_(&code), rc_(&rc), np_(np), rate_p_(np.p), rate_pl_(np.pl()),
      rate_mlr_(np.mlr_err()), master_rng_(master), state_(state)
{
    const size_t nq = static_cast<size_t>(code.n_qubits());
    leaked_.assign(nq, 0);
    prev_meas_.assign(static_cast<size_t>(code.n_checks()), 0);
    meas_flip_.assign(static_cast<size_t>(code.n_checks()), 0);
    mlr_flag_.assign(static_cast<size_t>(code.n_checks()), 0);
    det_scratch_.assign(static_cast<size_t>(code.n_checks()), 0);
    // Same fixed LRC partner per data qubit as the scalar driver.
    lrc_partner_.assign(static_cast<size_t>(code.n_data()), -1);
    for (int q = 0; q < code.n_data(); ++q) {
        if (!code.data_adjacency()[q].empty())
            lrc_partner_[static_cast<size_t>(q)] =
                code.data_adjacency()[q].front();
    }
    lane_oracles_.resize(static_cast<size_t>(kBatchLanes));
    for (int l = 0; l < kBatchLanes; ++l)
        lane_oracles_[static_cast<size_t>(l)].bind(this, l);
    // Like the scalar driver, shot 0's stream is live from construction
    // (one active lane) so primitive-level probing before any reset works.
    for (int l = 0; l < kBatchLanes; ++l)
        lane_rng_.seed_lane(l, master_rng_.split(0));
    active_ = 1;
    n_lanes_ = 1;
}

void
BatchLeakageDriver::reset_shot_batch(int n_lanes)
{
    if (n_lanes < 1 || n_lanes > kBatchLanes)
        throw std::invalid_argument(
            "reset_shot_batch: n_lanes " + std::to_string(n_lanes) +
            " outside [1, " + std::to_string(kBatchLanes) + "]");
    std::fill(leaked_.begin(), leaked_.end(), 0);
    std::fill(prev_meas_.begin(), prev_meas_.end(), 0);
    first_round_ = true;
    n_lanes_ = n_lanes;
    active_ = n_lanes == kBatchLanes ? ~0ull : (1ull << n_lanes) - 1;
    // Lane l replays exactly the scalar driver's (shots_started_ + l)-th
    // shot: same master, same split id, same draw order.
    for (int l = 0; l < n_lanes; ++l)
        lane_rng_.seed_lane(
            l, master_rng_.split(shots_started_ + static_cast<uint64_t>(l)));
    shots_started_ += static_cast<uint64_t>(n_lanes);
    state_->reset_state();
}

void
BatchLeakageDriver::set_leak(int q, LaneMask lanes)
{
    const LaneMask rise = lanes & ~leaked_[static_cast<size_t>(q)];
    if (rise == 0)
        return;
    leaked_[static_cast<size_t>(q)] |= rise;
    state_->park_leaked(q, rise);
}

int
BatchLeakageDriver::n_data_leaked(int lane) const
{
    int n = 0;
    for (int q = 0; q < code_->n_data(); ++q)
        n += static_cast<int>((leaked_[static_cast<size_t>(q)] >> lane) & 1u);
    return n;
}

int
BatchLeakageDriver::n_check_leaked(int lane) const
{
    int n = 0;
    for (int c = 0; c < code_->n_checks(); ++c) {
        const size_t anc = static_cast<size_t>(code_->ancilla_of(c));
        n += static_cast<int>((leaked_[anc] >> lane) & 1u);
    }
    return n;
}

GLD_BATCH_HOT
LaneMask
BatchLeakageDriver::bernoulli_mask(const LaneRate& rate, LaneMask mask)
{
    // Rng::bernoulli consumes NO draw at p <= 0 or p >= 1; neither may we.
    if (rate.never || mask == 0)
        return 0;
    if (rate.always)
        return mask;
    if ((active_ & ~mask) == 0) {
        // Full-width site: one CPU-dispatched kernel pass (padding lanes
        // advance harmlessly — reseeded next batch, never observed).
        return site_kernels().one(lane_rng_, n_lanes_, rate.thresh) & mask;
    }
    // Partial site (e.g. a reset skipping leaked lanes): masked step so
    // only the mask's lanes advance, then the branchless compare —
    // (a - t) has its sign bit set iff a < t (both fit in 53 bits).
    lane_rng_.step_masked(n_lanes_, mask, draw_);
    uint64_t any = 0;
    for (int l = 0; l < n_lanes_; ++l) {
        // Mask during the compare: non-mask lanes' draw word is 0,
        // which would otherwise read as a spurious fire.
        bits_[l] = (((draw_[l] >> 11) - rate.thresh) >> 63) &
                   ((mask >> l) & 1u);
        any |= bits_[l];
    }
    if (any == 0)
        return 0;
    return pack_bits(n_lanes_) & mask;
}

inline void
BatchLeakageDriver::depolarize1(int q)
{
    const LaneMask fired = bernoulli_mask(rate_p_, active_);
    if (fired == 0)
        return;
    LaneMask xs = 0, zs = 0;
    for_each_lane(fired, [&](int l) {
        const uint32_t pauli = 1 + lane_rng_.uniform_int_lane(l, 3);
        xs |= static_cast<LaneMask>(pauli & 1u) << l;
        zs |= static_cast<LaneMask>((pauli >> 1) & 1u) << l;
    });
    state_->apply_pauli(q, xs, zs);
}

inline void
BatchLeakageDriver::depolarize2(int q0, int q1)
{
    const LaneMask fired = bernoulli_mask(rate_p_, active_);
    if (fired == 0)
        return;
    LaneMask x0 = 0, z0 = 0, x1 = 0, z1 = 0;
    for_each_lane(fired, [&](int l) {
        const uint32_t pauli = 1 + lane_rng_.uniform_int_lane(l, 15);
        x0 |= static_cast<LaneMask>(pauli & 1u) << l;
        z0 |= static_cast<LaneMask>((pauli >> 1) & 1u) << l;
        x1 |= static_cast<LaneMask>((pauli >> 2) & 1u) << l;
        z1 |= static_cast<LaneMask>((pauli >> 3) & 1u) << l;
    });
    if ((x0 | z0) != 0)
        state_->apply_pauli(q0, x0, z0);
    if ((x1 | z1) != 0)
        state_->apply_pauli(q1, x1, z1);
}

inline void
BatchLeakageDriver::leak_maybe(int q)
{
    const LaneMask leak = bernoulli_mask(rate_pl_, active_);
    if (leak != 0)
        set_leak(q, leak);
}

// The fused multi-site passes below draw two/three consecutive Bernoulli
// sites per lane in ONE pass over the lane-RNG state (the state lives in
// registers between the sites instead of round-tripping memory per
// site).  Scalar draw order per lane is site1, [payload if fired],
// site2, ...; the pass optimistically draws the later sites first, so a
// lane that fires a payload-bearing site1 is REPAIRED: rewind its
// stream past the optimistic draws (exact xoshiro inverse), insert the
// payload draw, then redraw the later sites.  Fires are O(p) rare; the
// repair is per-lane scalar.

GLD_BATCH_HOT
void
BatchLeakageDriver::data_noise_pair(int q)
{
    // depolarize1(q) then leak_maybe(q), fused.  Degenerate rates fall
    // back to the single-site path (which replicates Rng::bernoulli's
    // draw-skipping exactly).
    if (rate_p_.never || rate_p_.always || rate_pl_.never ||
        rate_pl_.always) {
        depolarize1(q);
        leak_maybe(q);
        return;
    }
    LaneMask f1, f2;
    site_kernels().two(lane_rng_, n_lanes_, rate_p_.thresh,
                       rate_pl_.thresh, &f1, &f2);
    LaneMask leak = f2 & active_;
    const LaneMask fired = f1 & active_;
    if (fired != 0) {
        LaneMask xs = 0, zs = 0;
        for_each_lane(fired, [&](int l) {
            // Scalar order repair: rewind past the optimistic leak draw,
            // draw the Pauli payload, then redraw the leak site.
            lane_rng_.unstep_lane(l);
            const uint32_t pauli = 1 + lane_rng_.uniform_int_lane(l, 3);
            xs |= static_cast<LaneMask>(pauli & 1u) << l;
            zs |= static_cast<LaneMask>((pauli >> 1) & 1u) << l;
            const uint64_t redraw = lane_rng_.next_lane(l);
            const LaneMask bit = 1ull << static_cast<unsigned>(l);
            if ((((redraw >> 11) - rate_pl_.thresh) >> 63) != 0)
                leak |= bit;
            else
                leak &= ~bit;
        });
        state_->apply_pauli(q, xs, zs);
    }
    if (leak != 0)
        set_leak(q, leak);
}

GLD_BATCH_HOT
void
BatchLeakageDriver::cnot_noise_triple(int control, int target)
{
    // depolarize2(control, target), leak_maybe(control),
    // leak_maybe(target) — the gate-noise tail of every CNOT — fused.
    if (rate_p_.never || rate_p_.always || rate_pl_.never ||
        rate_pl_.always) {
        depolarize2(control, target);
        leak_maybe(control);
        leak_maybe(target);
        return;
    }
    LaneMask f1, f2, f3;
    site_kernels().three(lane_rng_, n_lanes_, rate_p_.thresh,
                         rate_pl_.thresh, rate_pl_.thresh, &f1, &f2, &f3);
    LaneMask leak_c = f2 & active_;
    LaneMask leak_t = f3 & active_;
    const LaneMask fired = f1 & active_;
    if (fired != 0) {
        LaneMask x0 = 0, z0 = 0, x1 = 0, z1 = 0;
        for_each_lane(fired, [&](int l) {
            lane_rng_.unstep_lane(l);
            lane_rng_.unstep_lane(l);
            const uint32_t pauli = 1 + lane_rng_.uniform_int_lane(l, 15);
            x0 |= static_cast<LaneMask>(pauli & 1u) << l;
            z0 |= static_cast<LaneMask>((pauli >> 1) & 1u) << l;
            x1 |= static_cast<LaneMask>((pauli >> 2) & 1u) << l;
            z1 |= static_cast<LaneMask>((pauli >> 3) & 1u) << l;
            const LaneMask bit = 1ull << static_cast<unsigned>(l);
            const uint64_t rc_draw = lane_rng_.next_lane(l);
            if ((((rc_draw >> 11) - rate_pl_.thresh) >> 63) != 0)
                leak_c |= bit;
            else
                leak_c &= ~bit;
            const uint64_t rt_draw = lane_rng_.next_lane(l);
            if ((((rt_draw >> 11) - rate_pl_.thresh) >> 63) != 0)
                leak_t |= bit;
            else
                leak_t &= ~bit;
        });
        if ((x0 | z0) != 0)
            state_->apply_pauli(control, x0, z0);
        if ((x1 | z1) != 0)
            state_->apply_pauli(target, x1, z1);
    }
    if (leak_c != 0)
        set_leak(control, leak_c);
    if (leak_t != 0)
        set_leak(target, leak_t);
}

inline void
BatchLeakageDriver::cnot(int control, int target)
{
    const LaneMask cl = leaked_[static_cast<size_t>(control)];
    const LaneMask tl = leaked_[static_cast<size_t>(target)];
    const LaneMask clean = active_ & ~cl & ~tl;
    if (clean != 0)
        state_->coherent_cnot(control, target, clean);

    // Exactly-one-leaked lanes take the malfunction/transport branches;
    // both-leaked lanes do nothing observable (scalar semantics).  The
    // malfunction shape is lane-independent — whether the disturbed
    // partner is an ancilla is a property of the circuit, not the shot.
    const LaneMask branch = active_ & (cl ^ tl);
    if (branch != 0) {
        LaneMask transport = 0;
        LaneMask xs_c = 0, zs_c = 0, xs_t = 0, zs_t = 0;
        const bool t_is_anc = target >= code_->n_data();
        const bool c_is_anc = control >= code_->n_data();
        for_each_lane(branch, [&](int l) {
            const LaneMask bit = 1ull << static_cast<unsigned>(l);
            if ((cl & bit) != 0) {
                // Leaked control: transport with prob `mobility`, else
                // the target partner is disturbed.
                if (lane_rng_.bernoulli_lane(l, np_.mobility)) {
                    transport |= bit;
                } else if (t_is_anc && !np_.leaked_gate_backaction) {
                    // Ancilla CNOT target is Z-measured: 50% X flip.
                    if (lane_rng_.bit_lane(l))
                        xs_t |= bit;
                } else {
                    const uint32_t pauli = lane_rng_.uniform_int_lane(l, 4);
                    xs_t |= static_cast<LaneMask>(pauli & 1u) << l;
                    zs_t |= static_cast<LaneMask>((pauli >> 1) & 1u) << l;
                }
            } else {
                // Leaked target: the control partner is disturbed.
                if (c_is_anc && !np_.leaked_gate_backaction) {
                    // Ancilla CNOT control (X check, between its
                    // Hadamards) is X-measured: 50% Z flip.
                    if (lane_rng_.bit_lane(l))
                        zs_c |= bit;
                } else {
                    const uint32_t pauli = lane_rng_.uniform_int_lane(l, 4);
                    xs_c |= static_cast<LaneMask>(pauli & 1u) << l;
                    zs_c |= static_cast<LaneMask>((pauli >> 1) & 1u) << l;
                }
            }
        });
        if ((xs_t | zs_t) != 0)
            state_->apply_pauli(target, xs_t, zs_t);
        if ((xs_c | zs_c) != 0)
            state_->apply_pauli(control, xs_c, zs_c);
        if (transport != 0) {
            set_leak(target, transport);
            clear_leak(control, transport);
        }
    }

    cnot_noise_triple(control, target);
}

inline void
BatchLeakageDriver::apply_lrc_data(int q, int lane)
{
    const LaneMask bit = 1ull << static_cast<unsigned>(lane);
    const int pc = lrc_partner_[static_cast<size_t>(q)];
    if (pc >= 0) {
        const int anc = code_->ancilla_of(pc);
        const bool anc_was_leaked =
            (leaked_[static_cast<size_t>(anc)] & bit) != 0;
        clear_leak(q, bit);
        clear_leak(anc, bit);
        if (anc_was_leaked)
            set_leak(q, bit);  // false-positive LRC pumps the leak IN
    } else {
        clear_leak(q, bit);
    }
    if (lane_rng_.bernoulli_lane(lane, np_.lrc_depol())) {
        const uint32_t pauli = 1 + lane_rng_.uniform_int_lane(lane, 3);
        state_->apply_pauli(q, (pauli & 1u) != 0 ? bit : 0,
                            (pauli & 2u) != 0 ? bit : 0);
    }
    if (lane_rng_.bernoulli_lane(lane, np_.lrc_leak()))
        set_leak(q, bit);
}

inline void
BatchLeakageDriver::apply_lrc_check(int c, int lane)
{
    const LaneMask bit = 1ull << static_cast<unsigned>(lane);
    const int anc = code_->ancilla_of(c);
    clear_leak(anc, bit);
    state_->reset_z(anc, bit);
    if (lane_rng_.bernoulli_lane(lane, np_.lrc_leak()))
        set_leak(anc, bit);
}

GLD_BATCH_HOT
void
BatchLeakageDriver::run_round_batch(const std::vector<LrcSchedule>& lane_lrcs,
                                    std::vector<RoundResult>* out)
{
    if (lane_lrcs.size() < static_cast<size_t>(n_lanes_))
        throw std::invalid_argument(
            "run_round_batch: " + std::to_string(lane_lrcs.size()) +
            " schedules for " + std::to_string(n_lanes_) + " lanes");
    const int n_checks = code_->n_checks();

    // 1. Scheduled LRC gadgets, per lane in that lane's schedule order
    //    (each lane draws only from its own stream, so lane interleaving
    //    is free to be loop order).
    for (int l = 0; l < n_lanes_; ++l) {
        const LrcSchedule& sched = lane_lrcs[static_cast<size_t>(l)];
        for (int q : sched.data_qubits)
            apply_lrc_data(q, l);
        for (int c : sched.checks)
            apply_lrc_check(c, l);
    }

    // 2. Round-start data noise (fused pair per qubit).
    for (int q = 0; q < code_->n_data(); ++q)
        data_noise_pair(q);

    // 3. The scheduled extraction circuit, word-wide.
    for (const Op& op : rc_->ops()) {
        switch (op.type) {
          case OpType::kResetZ: {
            // Reset skips leaked lanes entirely: no state touch, no
            // init-error draw (scalar semantics) — hence the masked site.
            const LaneMask ok =
                active_ & ~leaked_[static_cast<size_t>(op.q0)];
            if (ok != 0) {
                state_->reset_z(op.q0, ok);
                const LaneMask flip = bernoulli_mask(rate_p_, ok);
                if (flip != 0)
                    state_->apply_pauli(op.q0, flip, 0);
            }
            break;
          }
          case OpType::kH: {
            const LaneMask ok =
                active_ & ~leaked_[static_cast<size_t>(op.q0)];
            if (ok != 0)
                state_->hadamard(op.q0, ok);
            depolarize1(op.q0);
            break;
          }
          case OpType::kCnot:
            cnot(op.q0, op.q1);
            break;
          case OpType::kMeasure: {
            const int anc = op.q0;
            const LaneMask lk =
                active_ & leaked_[static_cast<size_t>(anc)];
            const LaneMask ok = active_ & ~lk;
            // One word-wide readout; leaked lanes' bits are discarded
            // and replaced by that lane's random-outcome draw.  Every
            // active lane consumes exactly one word here — leaked lanes
            // as Rng::bit, the rest as the readout-error Bernoulli — so
            // one full-width step serves the whole site.  (At p <= 0 or
            // p >= 1 the clean lanes must NOT draw, like Rng::bernoulli.)
            const LaneMask measured = state_->measure_z(anc);
            LaneMask flip;
            if (!rate_p_.never && !rate_p_.always) {
                if (lk == 0 && !rate_mlr_.never && !rate_mlr_.always) {
                    // No leaked lane: readout error + MLR error as one
                    // fused double site (the usual case; neither site
                    // has a payload draw, so no repair can be needed).
                    LaneMask err, mlrf;
                    site_kernels().two(lane_rng_, n_lanes_,
                                       rate_p_.thresh, rate_mlr_.thresh,
                                       &err, &mlrf);
                    flip = (measured ^ (err & active_)) & ok;
                    meas_flip_[static_cast<size_t>(op.mslot)] = flip;
                    mlr_flag_[static_cast<size_t>(op.mslot)] =
                        mlrf & active_;
                    break;
                }
                if (lk == 0) {
                    // No leaked lane: pure readout-error site.
                    const LaneMask err =
                        site_kernels().one(lane_rng_, n_lanes_,
                                           rate_p_.thresh) &
                        active_;
                    flip = (measured ^ err) & ok;
                    meas_flip_[static_cast<size_t>(op.mslot)] = flip;
                    mlr_flag_[static_cast<size_t>(op.mslot)] =
                        bernoulli_mask(rate_mlr_, active_);
                    break;
                }
                lane_rng_.step_all(n_lanes_, draw_);
                // Readout error via the branchless compare + quiet-site
                // early-out (see bernoulli_mask); leaked lanes reuse the
                // same one-word draw as their Rng::bit outcome.
                uint64_t any = 0;
                for (int l = 0; l < n_lanes_; ++l) {
                    bits_[l] = ((draw_[l] >> 11) - rate_p_.thresh) >> 63;
                    any |= bits_[l];
                }
                const LaneMask err = any != 0 ? pack_bits(n_lanes_) : 0;
                LaneMask rnd = 0;
                for_each_lane(lk, [&](int l) {
                    rnd |= (draw_[l] >> 63) << l;
                });
                flip = ((measured ^ err) & ok) | (rnd & lk);
            } else {
                lane_rng_.step_masked(n_lanes_, lk, draw_);
                LaneMask rnd = 0;
                for_each_lane(lk, [&](int l) {
                    rnd |= (draw_[l] >> 63) << l;
                });
                const LaneMask err = rate_p_.always ? ok : 0;
                flip = ((measured ^ err) & ok) | (rnd & lk);
            }
            // MLR leak flag with symmetric misclassification.
            const LaneMask mlr = lk ^ bernoulli_mask(rate_mlr_, active_);
            meas_flip_[static_cast<size_t>(op.mslot)] = flip;
            mlr_flag_[static_cast<size_t>(op.mslot)] = mlr;
            break;
          }
        }
    }

    // 4. Detector words, then the per-lane transpose the policies read.
    //    Every entry of every lane is (re)written below, so the vectors
    //    are only sized here — no zero-fill churn per round.
    out->resize(static_cast<size_t>(n_lanes_));
    for (int l = 0; l < n_lanes_; ++l) {
        RoundResult& rr = (*out)[static_cast<size_t>(l)];
        if (rr.meas_flip.size() != static_cast<size_t>(n_checks)) {
            rr.meas_flip.resize(static_cast<size_t>(n_checks));
            rr.detector.resize(static_cast<size_t>(n_checks));
            rr.mlr_flag.resize(static_cast<size_t>(n_checks));
        }
    }
    // Detector words first (also advances prev_meas_), then a lane-major
    // transpose: per lane the writes are small contiguous runs, instead
    // of scattering one byte into 64 different vectors per check.
    for (int c = 0; c < n_checks; ++c) {
        const size_t ci = static_cast<size_t>(c);
        const LaneMask meas = meas_flip_[ci];
        det_scratch_[ci] =
            (first_round_ && code_->check(c).type == CheckType::kX)
                ? 0
                : meas ^ prev_meas_[ci];
        prev_meas_[ci] = meas;
    }
    // 8x8 tiles: spread each check word's 8-lane byte to 0/1 bytes, byte-
    // transpose the tile, and store eight checks of one lane with a
    // single 8-byte write.  ~1 op/byte instead of a scalar bit-extract
    // per (lane, check, array) — this transpose was 30% of the whole
    // batch path before.
    const auto transpose_into =
        [&](const std::vector<LaneMask>& words,
            std::vector<uint8_t> RoundResult::*field) {
            uint64_t tile[8];
            for (int c0 = 0; c0 < n_checks; c0 += 8) {
                const int cw = std::min(8, n_checks - c0);
                for (int k = 0; k * 8 < n_lanes_; ++k) {
                    for (int j = 0; j < 8; ++j) {
                        const uint64_t w =
                            j < cw ? words[static_cast<size_t>(c0 + j)] : 0;
                        tile[j] = spread_bits_to_bytes(w >> (8 * k));
                    }
                    transpose8x8_bytes(tile);
                    const int lw = std::min(8, n_lanes_ - k * 8);
                    for (int i = 0; i < lw; ++i) {
                        RoundResult& rr =
                            (*out)[static_cast<size_t>(8 * k + i)];
                        std::memcpy((rr.*field).data() + c0, &tile[i],
                                    static_cast<size_t>(cw));
                    }
                }
            }
        };
    transpose_into(meas_flip_, &RoundResult::meas_flip);
    transpose_into(det_scratch_, &RoundResult::detector);
    transpose_into(mlr_flag_, &RoundResult::mlr_flag);
    first_round_ = false;
}

GLD_BATCH_HOT
void
BatchLeakageDriver::final_data_measure_batch(
    std::vector<std::vector<uint8_t>>* out)
{
    out->resize(static_cast<size_t>(n_lanes_));
    for (int l = 0; l < n_lanes_; ++l)
        (*out)[static_cast<size_t>(l)].assign(
            static_cast<size_t>(code_->n_data()), 0);
    for (int q = 0; q < code_->n_data(); ++q) {
        const LaneMask lk = active_ & leaked_[static_cast<size_t>(q)];
        const LaneMask ok = active_ & ~lk;
        const LaneMask measured = state_->measure_z(q);
        LaneMask flip;
        if (!rate_p_.never && !rate_p_.always) {
            lane_rng_.step_all(n_lanes_, draw_);
            LaneMask rnd = 0, err = 0;
            for (int l = 0; l < n_lanes_; ++l) {
                rnd |= (draw_[l] >> 63) << l;
                err |= static_cast<LaneMask>((draw_[l] >> 11) <
                                             rate_p_.thresh)
                       << l;
            }
            flip = ((measured ^ err) & ok) | (rnd & lk);
        } else {
            lane_rng_.step_masked(n_lanes_, lk, draw_);
            LaneMask rnd = 0;
            for_each_lane(lk, [&](int l) { rnd |= (draw_[l] >> 63) << l; });
            const LaneMask err = rate_p_.always ? ok : 0;
            flip = ((measured ^ err) & ok) | (rnd & lk);
        }
        for (int l = 0; l < n_lanes_; ++l)
            (*out)[static_cast<size_t>(l)][static_cast<size_t>(q)] =
                static_cast<uint8_t>((flip >> l) & 1u);
    }
}

// --- BatchLeakageDriverSim scalar adapters. ---

RoundResult
BatchLeakageDriverSim::run_round(const LrcSchedule& lrcs)
{
    one_lrcs_[0] = lrcs;
    driver_.run_round_batch(one_lrcs_, &one_round_);
    return one_round_[0];
}

std::vector<uint8_t>
BatchLeakageDriverSim::final_data_measure()
{
    driver_.final_data_measure_batch(&one_flips_);
    return one_flips_[0];
}

}  // namespace gld
