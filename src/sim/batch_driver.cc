#include "sim/batch_driver.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define GLD_BATCH_SIMD_KERNELS 1
#include <immintrin.h>
#endif

// Function multiversioning for the word-wide hot paths: one portable
// binary, with AVX2/AVX-512 clones selected once at load time (glibc
// ifunc) where the CPU has them.  The lane-RNG step is pure 64-bit
// shift/add/xor, which widens perfectly — the clones only change
// shots/second, never results.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_ADDRESS__)
#define GLD_BATCH_HOT \
    __attribute__((target_clones("arch=x86-64-v4", "avx2", "default")))
#else
#define GLD_BATCH_HOT
#endif

namespace gld {

namespace {

/** Spreads the low 8 bits of x to eight 0/1 bytes (byte k = bit k). */
inline uint64_t
spread_bits_to_bytes(uint64_t x)
{
    // Place bit k at bit 8k+k, add (0x80 - 2^k) per byte (no cross-byte
    // carry: each byte holds at most 2^k + (0x80 - 2^k) = 0x80), then
    // extract the per-byte 0x80 flag.
    const uint64_t placed =
        ((x & 0xFFu) * 0x0101010101010101ull) & 0x8040201008040201ull;
    return (((placed + 0x00406070787C7E7Full) >> 7) &
            0x0101010101010101ull);
}

/** Transposes an 8x8 byte matrix held as 8 row words: final row i's
 *  byte j = original row j's byte i. */
inline void
transpose8x8_bytes(uint64_t t[8])
{
    for (int j = 0; j < 8; j += 2) {
        const uint64_t a = t[j], b = t[j + 1];
        t[j] = (a & 0x00FF00FF00FF00FFull) |
               ((b & 0x00FF00FF00FF00FFull) << 8);
        t[j + 1] = ((a >> 8) & 0x00FF00FF00FF00FFull) |
                   (b & 0xFF00FF00FF00FF00ull);
    }
    for (int j : {0, 1, 4, 5}) {
        const uint64_t a = t[j], b = t[j + 2];
        t[j] = (a & 0x0000FFFF0000FFFFull) |
               ((b & 0x0000FFFF0000FFFFull) << 16);
        t[j + 2] = ((a >> 16) & 0x0000FFFF0000FFFFull) |
                   (b & 0xFFFF0000FFFF0000ull);
    }
    for (int j = 0; j < 4; ++j) {
        const uint64_t a = t[j], b = t[j + 4];
        t[j] = (a & 0x00000000FFFFFFFFull) | (b << 32);
        t[j + 4] = (a >> 32) | (b & 0xFFFFFFFF00000000ull);
    }
}

// --- CPU-dispatched site kernels. ---
//
// One Bernoulli site = every lane of [0, n) advances its xoshiro stream
// once and compares the 53-bit draw against a threshold; the kernels
// write the fired lanes PACKED as a ceil(n/64)-word lane span per site
// (callers mask off padding lanes).  The AVX-512 path gets the packed
// mask for free from compare-to-mask; AVX2 uses sign-bit movemask; the
// portable fallback is the LaneRngBank scalar loop.  Resolved once per
// process — identical results on every path, only shots/second differ.

struct SiteKernels {
    void (*one)(LaneRngBank&, int, uint64_t, LaneMask*);
    void (*two)(LaneRngBank&, int, uint64_t, uint64_t, LaneMask*,
                LaneMask*);
    void (*three)(LaneRngBank&, int, uint64_t, uint64_t, uint64_t,
                  LaneMask*, LaneMask*, LaneMask*);
};

/** Packs n 0/1 flags into ceil(n/64) lane words. */
inline void
pack_flag_words(const uint64_t* bits, int n, LaneMask* out)
{
    for (int w = 0; w * kBatchLanes < n; ++w) {
        const int base = w * kBatchLanes;
        const int lim = std::min(kBatchLanes, n - base);
        LaneMask m = 0;
        for (int b = 0; b < lim; ++b)
            m |= bits[base + b] << b;
        out[w] = m;
    }
}

void
site1_scalar(LaneRngBank& bank, int n, uint64_t t, LaneMask* f)
{
    uint64_t bits[kMaxBatchLanes];
    bank.step_compare_all(n, t, bits);
    pack_flag_words(bits, n, f);
}

void
site2_scalar(LaneRngBank& bank, int n, uint64_t t1, uint64_t t2,
             LaneMask* f1, LaneMask* f2)
{
    uint64_t b1[kMaxBatchLanes], b2[kMaxBatchLanes], a1, a2;
    bank.step_compare2(n, t1, t2, b1, b2, &a1, &a2);
    pack_flag_words(b1, n, f1);
    pack_flag_words(b2, n, f2);
}

void
site3_scalar(LaneRngBank& bank, int n, uint64_t t1, uint64_t t2,
             uint64_t t3, LaneMask* f1, LaneMask* f2, LaneMask* f3)
{
    uint64_t b1[kMaxBatchLanes], b2[kMaxBatchLanes], b3[kMaxBatchLanes];
    uint64_t a1, a2, a3;
    bank.step_compare3(n, t1, t2, t3, b1, b2, b3, &a1, &a2, &a3);
    pack_flag_words(b1, n, f1);
    pack_flag_words(b2, n, f2);
    pack_flag_words(b3, n, f3);
}

#if GLD_BATCH_SIMD_KERNELS

// GCC's avx512 intrinsic headers trip -Wmaybe-uninitialized false
// positives (the masked-op pass-through operand) at -O3; the kernels
// below never use masked pass-through forms.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

// S consecutive draw-and-compare steps per lane group, state resident in
// registers across the S sites.  Padding lanes of a partial final group
// advance garbage (reseeded next batch) and their fire bits are masked
// off by the caller.  Each output f[s] spans ceil(n/64) words: an 8-lane
// group i lands in word i/8, byte i%8.

template <int S>
__attribute__((target("avx512f"), always_inline)) inline void
sites_avx512(LaneRngBank& bank, int n, const uint64_t* t,
             LaneMask* const* f)
{
    const int nw = (n + kBatchLanes - 1) / kBatchLanes;
    __m512i T[S];
    for (int s = 0; s < S; ++s)
        T[s] = _mm512_set1_epi64(static_cast<long long>(t[s]));
    // Word-major: the S fire accumulators of the word in flight stay in
    // scalar registers (constant indices) and store once per word — an
    // i>>3-indexed accumulator array would round-trip memory in the
    // hottest loop of the whole batch backend.
    for (int w = 0; w < nw; ++w) {
        LaneMask acc[S] = {};
        const int base = w * kBatchLanes;
        const int groups = (std::min(kBatchLanes, n - base) + 7) / 8;
        for (int g = 0; g < groups; ++g) {
            const int i = 8 * w + g;
            __m512i s0 = _mm512_load_si512(bank.raw_s0() + 8 * i);
            __m512i s1 = _mm512_load_si512(bank.raw_s1() + 8 * i);
            __m512i s2 = _mm512_load_si512(bank.raw_s2() + 8 * i);
            __m512i s3 = _mm512_load_si512(bank.raw_s3() + 8 * i);
            for (int s = 0; s < S; ++s) {
                const __m512i m5 =
                    _mm512_add_epi64(s1, _mm512_slli_epi64(s1, 2));
                const __m512i r7 = _mm512_rol_epi64(m5, 7);
                const __m512i r =
                    _mm512_add_epi64(r7, _mm512_slli_epi64(r7, 3));
                const __m512i t17 = _mm512_slli_epi64(s1, 17);
                s2 = _mm512_xor_si512(s2, s0);
                s3 = _mm512_xor_si512(s3, s1);
                s1 = _mm512_xor_si512(s1, s2);
                s0 = _mm512_xor_si512(s0, s3);
                s2 = _mm512_xor_si512(s2, t17);
                s3 = _mm512_rol_epi64(s3, 45);
                const __mmask8 hit = _mm512_cmplt_epu64_mask(
                    _mm512_srli_epi64(r, 11), T[s]);
                acc[s] |= static_cast<LaneMask>(hit) << (8 * g);
            }
            _mm512_store_si512(bank.raw_s0() + 8 * i, s0);
            _mm512_store_si512(bank.raw_s1() + 8 * i, s1);
            _mm512_store_si512(bank.raw_s2() + 8 * i, s2);
            _mm512_store_si512(bank.raw_s3() + 8 * i, s3);
        }
        for (int s = 0; s < S; ++s)
            f[s][w] = acc[s];
    }
}

__attribute__((target("avx512f"))) void
site1_avx512(LaneRngBank& bank, int n, uint64_t t, LaneMask* f)
{
    LaneMask* const fs[1] = {f};
    sites_avx512<1>(bank, n, &t, fs);
}

__attribute__((target("avx512f"))) void
site2_avx512(LaneRngBank& bank, int n, uint64_t t1, uint64_t t2,
             LaneMask* f1, LaneMask* f2)
{
    const uint64_t t[2] = {t1, t2};
    LaneMask* const fs[2] = {f1, f2};
    sites_avx512<2>(bank, n, t, fs);
}

__attribute__((target("avx512f"))) void
site3_avx512(LaneRngBank& bank, int n, uint64_t t1, uint64_t t2,
             uint64_t t3, LaneMask* f1, LaneMask* f2, LaneMask* f3)
{
    const uint64_t t[3] = {t1, t2, t3};
    LaneMask* const fs[3] = {f1, f2, f3};
    sites_avx512<3>(bank, n, t, fs);
}

// AVX2: a 4-lane group i lands in word i/16, nibble i%16.

template <int S>
__attribute__((target("avx2"), always_inline)) inline void
sites_avx2(LaneRngBank& bank, int n, const uint64_t* t, LaneMask* const* f)
{
    const int nw = (n + kBatchLanes - 1) / kBatchLanes;
    __m256i T[S];
    for (int s = 0; s < S; ++s)
        T[s] = _mm256_set1_epi64x(static_cast<long long>(t[s]));
#define GLD_ROL256(x, s) \
    _mm256_or_si256(_mm256_slli_epi64((x), (s)), \
                    _mm256_srli_epi64((x), 64 - (s)))
    // Word-major for register-resident accumulators, as in the AVX-512
    // kernel above.
    for (int w = 0; w < nw; ++w) {
        LaneMask acc[S] = {};
        const int base = w * kBatchLanes;
        const int groups = (std::min(kBatchLanes, n - base) + 3) / 4;
        for (int g = 0; g < groups; ++g) {
            const int i = 16 * w + g;
            __m256i s0 = _mm256_load_si256(
                reinterpret_cast<const __m256i*>(bank.raw_s0() + 4 * i));
            __m256i s1 = _mm256_load_si256(
                reinterpret_cast<const __m256i*>(bank.raw_s1() + 4 * i));
            __m256i s2 = _mm256_load_si256(
                reinterpret_cast<const __m256i*>(bank.raw_s2() + 4 * i));
            __m256i s3 = _mm256_load_si256(
                reinterpret_cast<const __m256i*>(bank.raw_s3() + 4 * i));
            for (int s = 0; s < S; ++s) {
                const __m256i m5 =
                    _mm256_add_epi64(s1, _mm256_slli_epi64(s1, 2));
                const __m256i r7 = GLD_ROL256(m5, 7);
                const __m256i r =
                    _mm256_add_epi64(r7, _mm256_slli_epi64(r7, 3));
                const __m256i t17 = _mm256_slli_epi64(s1, 17);
                s2 = _mm256_xor_si256(s2, s0);
                s3 = _mm256_xor_si256(s3, s1);
                s1 = _mm256_xor_si256(s1, s2);
                s0 = _mm256_xor_si256(s0, s3);
                s2 = _mm256_xor_si256(s2, t17);
                s3 = GLD_ROL256(s3, 45);
                // Both operands < 2^53, so the unsigned compare is a
                // signed subtraction's sign bit — movemask-able.
                const __m256i diff =
                    _mm256_sub_epi64(_mm256_srli_epi64(r, 11), T[s]);
                const int hit =
                    _mm256_movemask_pd(_mm256_castsi256_pd(diff));
                acc[s] |=
                    static_cast<LaneMask>(static_cast<unsigned>(hit))
                    << (4 * g);
            }
            _mm256_store_si256(
                reinterpret_cast<__m256i*>(bank.raw_s0() + 4 * i), s0);
            _mm256_store_si256(
                reinterpret_cast<__m256i*>(bank.raw_s1() + 4 * i), s1);
            _mm256_store_si256(
                reinterpret_cast<__m256i*>(bank.raw_s2() + 4 * i), s2);
            _mm256_store_si256(
                reinterpret_cast<__m256i*>(bank.raw_s3() + 4 * i), s3);
        }
        for (int s = 0; s < S; ++s)
            f[s][w] = acc[s];
    }
#undef GLD_ROL256
}

__attribute__((target("avx2"))) void
site1_avx2(LaneRngBank& bank, int n, uint64_t t, LaneMask* f)
{
    LaneMask* const fs[1] = {f};
    sites_avx2<1>(bank, n, &t, fs);
}

__attribute__((target("avx2"))) void
site2_avx2(LaneRngBank& bank, int n, uint64_t t1, uint64_t t2,
           LaneMask* f1, LaneMask* f2)
{
    const uint64_t t[2] = {t1, t2};
    LaneMask* const fs[2] = {f1, f2};
    sites_avx2<2>(bank, n, t, fs);
}

__attribute__((target("avx2"))) void
site3_avx2(LaneRngBank& bank, int n, uint64_t t1, uint64_t t2, uint64_t t3,
           LaneMask* f1, LaneMask* f2, LaneMask* f3)
{
    const uint64_t t[3] = {t1, t2, t3};
    LaneMask* const fs[3] = {f1, f2, f3};
    sites_avx2<3>(bank, n, t, fs);
}

#pragma GCC diagnostic pop

#endif  // GLD_BATCH_SIMD_KERNELS

const SiteKernels&
site_kernels()
{
    static const SiteKernels k = [] {
#if GLD_BATCH_SIMD_KERNELS
        if (__builtin_cpu_supports("avx512f"))
            return SiteKernels{site1_avx512, site2_avx512, site3_avx512};
        if (__builtin_cpu_supports("avx2"))
            return SiteKernels{site1_avx2, site2_avx2, site3_avx2};
#endif
        return SiteKernels{site1_scalar, site2_scalar, site3_scalar};
    }();
    return k;
}

}  // namespace

// Every decision site below mirrors sim/leakage_driver.cc (the scalar
// reference implementation) statement for statement: the scalar control
// flow runs per lane, draws come from that lane's stream in the scalar
// within-shot order, and only the state mutation and the draw mechanics
// are batched — word-wide masked primitives, and one vectorizable
// LaneRngBank pass per Bernoulli site instead of per-lane Rng calls.
// When editing, keep the two files side by side — the tier-1
// frame/batch_frame bit-equality gate (at every batch width) fails on
// any divergence.

BatchLeakageDriver::BatchLeakageDriver(const CssCode& code,
                                       const RoundCircuit& rc,
                                       const NoiseParams& np, Rng master,
                                       BatchStatePrimitives* state,
                                       int batch_words,
                                       NoiseSampling noise_sampling)
    : code_(&code), rc_(&rc), np_(np), rate_p_(np.p), rate_pl_(np.pl()),
      rate_mlr_(np.mlr_err()), master_rng_(master), words_(batch_words),
      sparse_(noise_sampling == NoiseSampling::kSparse), state_(state)
{
    if (batch_words < 1 || batch_words > kMaxBatchWords)
        throw std::invalid_argument(
            "BatchLeakageDriver: batch_words " +
            std::to_string(batch_words) + " outside [1, " +
            std::to_string(kMaxBatchWords) + "]");
    const size_t W = static_cast<size_t>(words_);
    const size_t nq = static_cast<size_t>(code.n_qubits());
    const size_t nc = static_cast<size_t>(code.n_checks());
    leaked_.assign(nq * W, 0);
    prev_meas_.assign(nc * W, 0);
    meas_flip_.assign(nc * W, 0);
    mlr_flag_.assign(nc * W, 0);
    det_scratch_.assign(nc * W, 0);
    // Same fixed LRC partner per data qubit as the scalar driver.
    lrc_partner_.assign(static_cast<size_t>(code.n_data()), -1);
    for (int q = 0; q < code.n_data(); ++q) {
        if (!code.data_adjacency()[q].empty())
            lrc_partner_[static_cast<size_t>(q)] =
                code.data_adjacency()[q].front();
    }
    const int max_lanes = words_ * kBatchLanes;
    lane_oracles_.resize(static_cast<size_t>(max_lanes));
    for (int l = 0; l < max_lanes; ++l)
        lane_oracles_[static_cast<size_t>(l)].bind(this, l);
    // Like the scalar driver, shot 0's stream is live from construction
    // (one active lane) so primitive-level probing before any reset works.
    // Sparse mode never reads the lane bank: its one event stream (armed
    // the same way a first reset_shot_batch would arm it) replaces all
    // per-lane seeding work.
    if (sparse_) {
        sparse_reset(0);
    } else {
        for (int l = 0; l < max_lanes; ++l)
            lane_rng_.seed_lane(l, master_rng_.split(0));
    }
    active_[0] = 1;
    n_lanes_ = 1;
}

void
BatchLeakageDriver::reset_shot_batch(int n_lanes)
{
    const int max_lanes = words_ * kBatchLanes;
    if (n_lanes < 1 || n_lanes > max_lanes)
        throw std::invalid_argument(
            "reset_shot_batch: n_lanes " + std::to_string(n_lanes) +
            " outside [1, " + std::to_string(max_lanes) + "]");
    std::fill(leaked_.begin(), leaked_.end(), 0);
    std::fill(prev_meas_.begin(), prev_meas_.end(), 0);
    first_round_ = true;
    n_lanes_ = n_lanes;
    // Active-lane span: full words below the boundary, a partial word at
    // it, empty words above (the boundary may fall mid-span).
    for (int w = 0; w < words_; ++w) {
        const int base = w * kBatchLanes;
        if (n_lanes - base >= kBatchLanes)
            active_[w] = ~0ull;
        else if (n_lanes - base > 0)
            active_[w] = (1ull << (n_lanes - base)) - 1;
        else
            active_[w] = 0;
    }
    if (sparse_) {
        // One event stream per batch, derived from the same master at the
        // batch's first shot index: events depend only on (seed, stream,
        // block, batch #), so thread counts and shard splits cannot move
        // them.  The geometric countdowns restart with the stream.
        sparse_reset(shots_started_);
    } else {
        // Lane l replays exactly the scalar driver's (shots_started_ +
        // l)-th shot: same master, same split id, same draw order — at
        // every K.
        for (int l = 0; l < n_lanes; ++l)
            lane_rng_.seed_lane(
                l,
                master_rng_.split(shots_started_ + static_cast<uint64_t>(l)));
    }
    shots_started_ += static_cast<uint64_t>(n_lanes);
    state_->reset_state();
}

void
BatchLeakageDriver::reset_for_block(Rng master)
{
    // Mirror of the constructor's tail under the new master — all lanes
    // seeded with split(0), lane 0 active, shot counter 0 — plus
    // explicit scrubbing of everything a previous block may have left:
    // flags, history, the per-check scratch spans (a fresh driver's are
    // zero-initialized), and the backend state.
    master_rng_ = master;
    shots_started_ = 0;
    std::fill(leaked_.begin(), leaked_.end(), 0);
    std::fill(prev_meas_.begin(), prev_meas_.end(), 0);
    std::fill(meas_flip_.begin(), meas_flip_.end(), 0);
    std::fill(mlr_flag_.begin(), mlr_flag_.end(), 0);
    std::fill(det_scratch_.begin(), det_scratch_.end(), 0);
    first_round_ = true;
    if (sparse_) {
        sparse_reset(0);
    } else {
        const int max_lanes = words_ * kBatchLanes;
        for (int l = 0; l < max_lanes; ++l)
            lane_rng_.seed_lane(l, master_rng_.split(0));
    }
    for (int w = 0; w < words_; ++w)
        active_[w] = 0;
    active_[0] = 1;
    n_lanes_ = 1;
    state_->reset_state();
}

template <int WT>
__attribute__((always_inline)) inline void
BatchLeakageDriver::set_leak_t(int q, const LaneMask* lanes)
{
    const int W = WT > 0 ? WT : words_;
    LaneMask* lw = &leaked_[static_cast<size_t>(q) *
                            static_cast<size_t>(words_)];
    LaneMask rise[kMaxBatchWords];
    LaneMask any = 0;
    for (int w = 0; w < W; ++w) {
        rise[w] = lanes[w] & ~lw[w];
        any |= rise[w];
    }
    if (any == 0)
        return;
    for (int w = 0; w < W; ++w)
        lw[w] |= rise[w];
    state_->park_leaked(q, rise);
}

void
BatchLeakageDriver::set_leak(int q, const LaneMask* lanes)
{
    set_leak_t<0>(q, lanes);
}

void
BatchLeakageDriver::set_leak_lane(int q, int lane)
{
    LaneMask* lw = &leaked_[static_cast<size_t>(q) *
                            static_cast<size_t>(words_)];
    const int wi = lane >> 6;
    const LaneMask bit = 1ull << (lane & 63);
    if ((lw[wi] & bit) != 0)
        return;
    lw[wi] |= bit;
    LaneMask rise[kMaxBatchWords];
    lanes_zero(rise, words_);
    rise[wi] = bit;
    state_->park_leaked(q, rise);
}

int
BatchLeakageDriver::n_data_leaked(int lane) const
{
    const size_t W = static_cast<size_t>(words_);
    const size_t wi = static_cast<size_t>(lane >> 6);
    int n = 0;
    for (int q = 0; q < code_->n_data(); ++q)
        n += static_cast<int>(
            (leaked_[static_cast<size_t>(q) * W + wi] >> (lane & 63)) & 1u);
    return n;
}

int
BatchLeakageDriver::n_check_leaked(int lane) const
{
    const size_t W = static_cast<size_t>(words_);
    const size_t wi = static_cast<size_t>(lane >> 6);
    int n = 0;
    for (int c = 0; c < code_->n_checks(); ++c) {
        const size_t anc = static_cast<size_t>(code_->ancilla_of(c));
        n += static_cast<int>((leaked_[anc * W + wi] >> (lane & 63)) & 1u);
    }
    return n;
}

uint64_t
BatchLeakageDriver::sparse_geometric(const LaneRate& rate)
{
    // u in (2^-53, 1]: the +1 keeps log() finite and makes skip == 0
    // (an immediate event) land exactly on probability p.  floor(log(u)
    // / log(1-p)) is the standard inverse-CDF geometric: the number of
    // quiet (site x lane) positions before the next firing one.
    const double u =
        (static_cast<double>(event_rng_.next_u64() >> 11) + 1.0) *
        0x1.0p-53;
    const double s = __builtin_log(u) * rate.inv_log1mp;
    // Clamp the astronomically-rare huge skip below the double->uint64
    // UB edge; a countdown this long outlives any real work unit anyway.
    if (s >= 9.0e18)
        return static_cast<uint64_t>(9.0e18);
    return static_cast<uint64_t>(s);
}

int
BatchLeakageDriver::kth_set_lane(const LaneMask* mask, int n_words,
                                 uint64_t k)
{
    for (int w = 0; w < n_words; ++w) {
        const uint64_t pc =
            static_cast<uint64_t>(__builtin_popcountll(mask[w]));
        if (k < pc) {
            LaneMask m = mask[w];
            for (uint64_t i = 0; i < k; ++i)
                m &= m - 1;  // clear the k lowest set bits
            return w * kBatchLanes + __builtin_ctzll(m);
        }
        k -= pc;
    }
    return -1;  // unreachable while k < popcount(mask)
}

template <int WT>
inline LaneMask
BatchLeakageDriver::sparse_bernoulli_mask(LaneRate& rate,
                                          const LaneMask* mask,
                                          LaneMask* out)
{
    const int W = WT > 0 ? WT : words_;
    LaneMask any_mask = 0;
    for (int w = 0; w < W; ++w) {
        out[w] = 0;
        any_mask |= mask[w];
    }
    // Degenerate rates short-circuit with zero draws, like lockstep's
    // (and Rng::bernoulli's) no-draw contract.
    if (rate.never || any_mask == 0)
        return 0;
    if (rate.always) {
        for (int w = 0; w < W; ++w)
            out[w] = mask[w];
        return any_mask;
    }
    uint64_t count = 0;
    for (int w = 0; w < W; ++w)
        count += static_cast<uint64_t>(__builtin_popcountll(mask[w]));
    if (!rate.skip_valid) {
        rate.skip = sparse_geometric(rate);
        rate.skip_valid = true;
    }
    if (rate.skip >= count) {
        // The quiet site — the overwhelmingly common case at paper noise
        // rates: a few popcounts and one subtraction, zero RNG work.
        rate.skip -= count;
        return 0;
    }
    // Walk the events inside this site's candidate positions, ascending
    // global lane order (the deterministic event order the bit-identity
    // gate pins).
    uint64_t k = rate.skip;
    while (k < count) {
        set_lane_bit(out, kth_set_lane(mask, W, k));
        k += 1 + sparse_geometric(rate);
    }
    rate.skip = k - count;
    LaneMask any = 0;
    for (int w = 0; w < W; ++w)
        any |= out[w];
    return any;
}

template <int WT>
__attribute__((always_inline)) inline LaneMask
BatchLeakageDriver::bernoulli_mask(LaneRate& rate,
                                   const LaneMask* mask, LaneMask* out)
{
    if (sparse_)
        return sparse_bernoulli_mask<WT>(rate, mask, out);
    const int W = WT > 0 ? WT : words_;
    LaneMask any_mask = 0;
    for (int w = 0; w < W; ++w)
        any_mask |= mask[w];
    // Rng::bernoulli consumes NO draw at p <= 0 or p >= 1; neither may we.
    if (rate.never || any_mask == 0) {
        lanes_zero(out, W);
        return 0;
    }
    if (rate.always) {
        for (int w = 0; w < W; ++w)
            out[w] = mask[w];
        return any_mask;
    }
    LaneMask uncovered = 0;
    for (int w = 0; w < W; ++w)
        uncovered |= active_[w] & ~mask[w];
    if (uncovered == 0) {
        // Full-width site: one CPU-dispatched kernel pass (padding lanes
        // advance harmlessly — reseeded next batch, never observed).
        site_kernels().one(lane_rng_, n_lanes_, rate.thresh, out);
        LaneMask any = 0;
        for (int w = 0; w < W; ++w) {
            out[w] &= mask[w];
            any |= out[w];
        }
        return any;
    }
    // Partial site (e.g. a reset skipping leaked lanes): masked step so
    // only the mask's lanes advance, then the branchless compare —
    // (a - t) has its sign bit set iff a < t (both fit in 53 bits).
    lane_rng_.step_masked(n_lanes_, mask, draw_);
    uint64_t any = 0;
    for (int l = 0; l < n_lanes_; ++l) {
        // Mask during the compare: non-mask lanes' draw word is 0,
        // which would otherwise read as a spurious fire.
        bits_[l] = (((draw_[l] >> 11) - rate.thresh) >> 63) &
                   ((mask[l >> 6] >> (l & 63)) & 1u);
        any |= bits_[l];
    }
    if (any == 0) {
        lanes_zero(out, W);
        return 0;
    }
    pack_bits(n_lanes_, out);
    LaneMask any_out = 0;
    for (int w = 0; w < W; ++w) {
        out[w] &= mask[w];
        any_out |= out[w];
    }
    return any_out;
}

template <int WT>
__attribute__((always_inline)) inline void
BatchLeakageDriver::depolarize1(int q)
{
    const int W = WT > 0 ? WT : words_;
    LaneMask fired[kMaxBatchWords];
    if (bernoulli_mask<WT>(rate_p_, active_, fired) == 0)
        return;
    LaneMask xs[kMaxBatchWords], zs[kMaxBatchWords];
    lanes_zero(xs, W);
    lanes_zero(zs, W);
    for_each_lane(fired, W, [&](int l) {
        const uint32_t pauli = 1 + payload_uniform_int(l, 3);
        xs[l >> 6] |= static_cast<LaneMask>(pauli & 1u) << (l & 63);
        zs[l >> 6] |= static_cast<LaneMask>((pauli >> 1) & 1u) << (l & 63);
    });
    state_->apply_pauli(q, xs, zs);
}

template <int WT>
__attribute__((always_inline)) inline void
BatchLeakageDriver::depolarize2(int q0, int q1)
{
    const int W = WT > 0 ? WT : words_;
    LaneMask fired[kMaxBatchWords];
    if (bernoulli_mask<WT>(rate_p_, active_, fired) == 0)
        return;
    LaneMask x0[kMaxBatchWords], z0[kMaxBatchWords];
    LaneMask x1[kMaxBatchWords], z1[kMaxBatchWords];
    lanes_zero(x0, W);
    lanes_zero(z0, W);
    lanes_zero(x1, W);
    lanes_zero(z1, W);
    for_each_lane(fired, W, [&](int l) {
        const uint32_t pauli = 1 + payload_uniform_int(l, 15);
        x0[l >> 6] |= static_cast<LaneMask>(pauli & 1u) << (l & 63);
        z0[l >> 6] |= static_cast<LaneMask>((pauli >> 1) & 1u) << (l & 63);
        x1[l >> 6] |= static_cast<LaneMask>((pauli >> 2) & 1u) << (l & 63);
        z1[l >> 6] |= static_cast<LaneMask>((pauli >> 3) & 1u) << (l & 63);
    });
    if (lanes_any(x0, W) | lanes_any(z0, W))
        state_->apply_pauli(q0, x0, z0);
    if (lanes_any(x1, W) | lanes_any(z1, W))
        state_->apply_pauli(q1, x1, z1);
}

template <int WT>
__attribute__((always_inline)) inline void
BatchLeakageDriver::leak_maybe(int q)
{
    LaneMask leak[kMaxBatchWords];
    if (bernoulli_mask<WT>(rate_pl_, active_, leak) != 0)
        set_leak_t<WT>(q, leak);
}

// The fused multi-site passes below draw two/three consecutive Bernoulli
// sites per lane in ONE pass over the lane-RNG state (the state lives in
// registers between the sites instead of round-tripping memory per
// site).  Scalar draw order per lane is site1, [payload if fired],
// site2, ...; the pass optimistically draws the later sites first, so a
// lane that fires a payload-bearing site1 is REPAIRED: rewind its
// stream past the optimistic draws (exact xoshiro inverse), insert the
// payload draw, then redraw the later sites.  Fires are O(p) rare; the
// repair is per-lane scalar.

template <int WT>
__attribute__((always_inline)) inline void
BatchLeakageDriver::data_noise_pair(int q)
{
    // depolarize1(q) then leak_maybe(q), fused.  Degenerate rates fall
    // back to the single-site path (which replicates Rng::bernoulli's
    // draw-skipping exactly).  Sparse mode always takes it: its sites
    // route through the event sampler, which has no lane streams to fuse
    // — and on a quiet round both sites cost zero draws anyway.
    if (sparse_ || rate_p_.never || rate_p_.always || rate_pl_.never ||
        rate_pl_.always) {
        depolarize1<WT>(q);
        leak_maybe<WT>(q);
        return;
    }
    const int W = WT > 0 ? WT : words_;
    LaneMask f1[kMaxBatchWords], f2[kMaxBatchWords];
    site_kernels().two(lane_rng_, n_lanes_, rate_p_.thresh,
                       rate_pl_.thresh, f1, f2);
    LaneMask leak[kMaxBatchWords], fired[kMaxBatchWords];
    LaneMask any_fired = 0;
    for (int w = 0; w < W; ++w) {
        leak[w] = f2[w] & active_[w];
        fired[w] = f1[w] & active_[w];
        any_fired |= fired[w];
    }
    if (any_fired != 0) {
        LaneMask xs[kMaxBatchWords], zs[kMaxBatchWords];
        lanes_zero(xs, W);
        lanes_zero(zs, W);
        for_each_lane(fired, W, [&](int l) {
            // Scalar order repair: rewind past the optimistic leak draw,
            // draw the Pauli payload, then redraw the leak site.
            lane_rng_.unstep_lane(l);
            const uint32_t pauli = 1 + lane_rng_.uniform_int_lane(l, 3);
            xs[l >> 6] |= static_cast<LaneMask>(pauli & 1u) << (l & 63);
            zs[l >> 6] |= static_cast<LaneMask>((pauli >> 1) & 1u)
                          << (l & 63);
            const uint64_t redraw = lane_rng_.next_lane(l);
            const LaneMask bit = 1ull << (l & 63);
            if ((((redraw >> 11) - rate_pl_.thresh) >> 63) != 0)
                leak[l >> 6] |= bit;
            else
                leak[l >> 6] &= ~bit;
        });
        state_->apply_pauli(q, xs, zs);
    }
    if (lanes_any(leak, W) != 0)
        set_leak_t<WT>(q, leak);
}

template <int WT>
__attribute__((always_inline)) inline void
BatchLeakageDriver::cnot_noise_triple(int control, int target)
{
    // depolarize2(control, target), leak_maybe(control),
    // leak_maybe(target) — the gate-noise tail of every CNOT — fused.
    // Sparse mode bypasses the fusion (and its rewind/repair machinery)
    // entirely, like data_noise_pair.
    if (sparse_ || rate_p_.never || rate_p_.always || rate_pl_.never ||
        rate_pl_.always) {
        depolarize2<WT>(control, target);
        leak_maybe<WT>(control);
        leak_maybe<WT>(target);
        return;
    }
    const int W = WT > 0 ? WT : words_;
    LaneMask f1[kMaxBatchWords], f2[kMaxBatchWords], f3[kMaxBatchWords];
    site_kernels().three(lane_rng_, n_lanes_, rate_p_.thresh,
                         rate_pl_.thresh, rate_pl_.thresh, f1, f2, f3);
    LaneMask leak_c[kMaxBatchWords], leak_t[kMaxBatchWords];
    LaneMask fired[kMaxBatchWords];
    LaneMask any_fired = 0;
    for (int w = 0; w < W; ++w) {
        leak_c[w] = f2[w] & active_[w];
        leak_t[w] = f3[w] & active_[w];
        fired[w] = f1[w] & active_[w];
        any_fired |= fired[w];
    }
    if (any_fired != 0) {
        LaneMask x0[kMaxBatchWords], z0[kMaxBatchWords];
        LaneMask x1[kMaxBatchWords], z1[kMaxBatchWords];
        lanes_zero(x0, W);
        lanes_zero(z0, W);
        lanes_zero(x1, W);
        lanes_zero(z1, W);
        for_each_lane(fired, W, [&](int l) {
            lane_rng_.unstep_lane(l);
            lane_rng_.unstep_lane(l);
            const uint32_t pauli = 1 + lane_rng_.uniform_int_lane(l, 15);
            x0[l >> 6] |= static_cast<LaneMask>(pauli & 1u) << (l & 63);
            z0[l >> 6] |= static_cast<LaneMask>((pauli >> 1) & 1u)
                          << (l & 63);
            x1[l >> 6] |= static_cast<LaneMask>((pauli >> 2) & 1u)
                          << (l & 63);
            z1[l >> 6] |= static_cast<LaneMask>((pauli >> 3) & 1u)
                          << (l & 63);
            const LaneMask bit = 1ull << (l & 63);
            const uint64_t rc_draw = lane_rng_.next_lane(l);
            if ((((rc_draw >> 11) - rate_pl_.thresh) >> 63) != 0)
                leak_c[l >> 6] |= bit;
            else
                leak_c[l >> 6] &= ~bit;
            const uint64_t rt_draw = lane_rng_.next_lane(l);
            if ((((rt_draw >> 11) - rate_pl_.thresh) >> 63) != 0)
                leak_t[l >> 6] |= bit;
            else
                leak_t[l >> 6] &= ~bit;
        });
        if (lanes_any(x0, W) | lanes_any(z0, W))
            state_->apply_pauli(control, x0, z0);
        if (lanes_any(x1, W) | lanes_any(z1, W))
            state_->apply_pauli(target, x1, z1);
    }
    if (lanes_any(leak_c, W) != 0)
        set_leak_t<WT>(control, leak_c);
    if (lanes_any(leak_t, W) != 0)
        set_leak_t<WT>(target, leak_t);
}

template <int WT>
__attribute__((always_inline)) inline void
BatchLeakageDriver::cnot(int control, int target)
{
    const int W = WT > 0 ? WT : words_;
    const LaneMask* cl = leaked(control);
    const LaneMask* tl = leaked(target);
    LaneMask clean[kMaxBatchWords], branch[kMaxBatchWords];
    LaneMask any_clean = 0, any_branch = 0;
    for (int w = 0; w < W; ++w) {
        clean[w] = active_[w] & ~cl[w] & ~tl[w];
        any_clean |= clean[w];
        // Exactly-one-leaked lanes take the malfunction/transport
        // branches; both-leaked lanes do nothing observable (scalar
        // semantics).
        branch[w] = active_[w] & (cl[w] ^ tl[w]);
        any_branch |= branch[w];
    }
    if (any_clean != 0)
        state_->coherent_cnot(control, target, clean);

    if (any_branch != 0) {
        // The malfunction shape is lane-independent — whether the
        // disturbed partner is an ancilla is a property of the circuit,
        // not the shot.
        LaneMask transport[kMaxBatchWords];
        LaneMask xs_c[kMaxBatchWords], zs_c[kMaxBatchWords];
        LaneMask xs_t[kMaxBatchWords], zs_t[kMaxBatchWords];
        lanes_zero(transport, W);
        lanes_zero(xs_c, W);
        lanes_zero(zs_c, W);
        lanes_zero(xs_t, W);
        lanes_zero(zs_t, W);
        const bool t_is_anc = target >= code_->n_data();
        const bool c_is_anc = control >= code_->n_data();
        for_each_lane(branch, W, [&](int l) {
            const int wi = l >> 6;
            const LaneMask bit = 1ull << (l & 63);
            if ((cl[wi] & bit) != 0) {
                // Leaked control: transport with prob `mobility`, else
                // the target partner is disturbed.
                if (payload_bernoulli(l, np_.mobility)) {
                    transport[wi] |= bit;
                } else if (t_is_anc && !np_.leaked_gate_backaction) {
                    // Ancilla CNOT target is Z-measured: 50% X flip.
                    if (payload_bit(l))
                        xs_t[wi] |= bit;
                } else {
                    const uint32_t pauli = payload_uniform_int(l, 4);
                    xs_t[wi] |= static_cast<LaneMask>(pauli & 1u)
                                << (l & 63);
                    zs_t[wi] |= static_cast<LaneMask>((pauli >> 1) & 1u)
                                << (l & 63);
                }
            } else {
                // Leaked target: the control partner is disturbed.
                if (c_is_anc && !np_.leaked_gate_backaction) {
                    // Ancilla CNOT control (X check, between its
                    // Hadamards) is X-measured: 50% Z flip.
                    if (payload_bit(l))
                        zs_c[wi] |= bit;
                } else {
                    const uint32_t pauli = payload_uniform_int(l, 4);
                    xs_c[wi] |= static_cast<LaneMask>(pauli & 1u)
                                << (l & 63);
                    zs_c[wi] |= static_cast<LaneMask>((pauli >> 1) & 1u)
                                << (l & 63);
                }
            }
        });
        if (lanes_any(xs_t, W) | lanes_any(zs_t, W))
            state_->apply_pauli(target, xs_t, zs_t);
        if (lanes_any(xs_c, W) | lanes_any(zs_c, W))
            state_->apply_pauli(control, xs_c, zs_c);
        if (lanes_any(transport, W) != 0) {
            set_leak_t<WT>(target, transport);
            clear_leak(control, transport);
        }
    }

    cnot_noise_triple<WT>(control, target);
}

inline void
BatchLeakageDriver::apply_lrc_data(int q, int lane)
{
    const int wi = lane >> 6;
    const LaneMask bit = 1ull << (lane & 63);
    const size_t W = static_cast<size_t>(words_);
    const int pc = lrc_partner_[static_cast<size_t>(q)];
    if (pc >= 0) {
        const int anc = code_->ancilla_of(pc);
        const bool anc_was_leaked =
            (leaked_[static_cast<size_t>(anc) * W +
                     static_cast<size_t>(wi)] &
             bit) != 0;
        clear_leak_lane(q, lane);
        clear_leak_lane(anc, lane);
        if (anc_was_leaked)
            set_leak_lane(q, lane);  // false-positive LRC pumps the leak IN
    } else {
        clear_leak_lane(q, lane);
    }
    if (payload_bernoulli(lane, np_.lrc_depol())) {
        const uint32_t pauli = 1 + payload_uniform_int(lane, 3);
        LaneMask xs[kMaxBatchWords], zs[kMaxBatchWords];
        lanes_zero(xs, words_);
        lanes_zero(zs, words_);
        xs[wi] = (pauli & 1u) != 0 ? bit : 0;
        zs[wi] = (pauli & 2u) != 0 ? bit : 0;
        state_->apply_pauli(q, xs, zs);
    }
    if (payload_bernoulli(lane, np_.lrc_leak()))
        set_leak_lane(q, lane);
}

inline void
BatchLeakageDriver::apply_lrc_check(int c, int lane)
{
    const int wi = lane >> 6;
    const LaneMask bit = 1ull << (lane & 63);
    const int anc = code_->ancilla_of(c);
    clear_leak_lane(anc, lane);
    LaneMask one[kMaxBatchWords];
    lanes_zero(one, words_);
    one[wi] = bit;
    state_->reset_z(anc, one);
    if (payload_bernoulli(lane, np_.lrc_leak()))
        set_leak_lane(anc, lane);
}

template <int WT>
__attribute__((always_inline)) inline void
BatchLeakageDriver::run_round_t(const std::vector<LrcSchedule>& lane_lrcs,
                                std::vector<RoundResult>* out)
{
    if (lane_lrcs.size() < static_cast<size_t>(n_lanes_))
        throw std::invalid_argument(
            "run_round_batch: " + std::to_string(lane_lrcs.size()) +
            " schedules for " + std::to_string(n_lanes_) + " lanes");
    const int n_checks = code_->n_checks();
    const int W = WT > 0 ? WT : words_;
    const size_t Ws = static_cast<size_t>(W);

    // 1. Scheduled LRC gadgets, per lane in that lane's schedule order
    //    (each lane draws only from its own stream, so lane interleaving
    //    is free to be loop order).
    for (int l = 0; l < n_lanes_; ++l) {
        const LrcSchedule& sched = lane_lrcs[static_cast<size_t>(l)];
        for (int q : sched.data_qubits)
            apply_lrc_data(q, l);
        for (int c : sched.checks)
            apply_lrc_check(c, l);
    }

    // 2. Round-start data noise (fused pair per qubit).
    for (int q = 0; q < code_->n_data(); ++q)
        data_noise_pair<WT>(q);

    // 3. The scheduled extraction circuit, word-wide.
    for (const Op& op : rc_->ops()) {
        switch (op.type) {
          case OpType::kResetZ: {
            // Reset skips leaked lanes entirely: no state touch, no
            // init-error draw (scalar semantics) — hence the masked site.
            const LaneMask* lq = leaked(op.q0);
            LaneMask ok[kMaxBatchWords];
            LaneMask any_ok = 0;
            for (int w = 0; w < W; ++w) {
                ok[w] = active_[w] & ~lq[w];
                any_ok |= ok[w];
            }
            if (any_ok != 0) {
                state_->reset_z(op.q0, ok);
                LaneMask flip[kMaxBatchWords];
                if (bernoulli_mask<WT>(rate_p_, ok, flip) != 0) {
                    LaneMask none[kMaxBatchWords];
                    lanes_zero(none, W);
                    state_->apply_pauli(op.q0, flip, none);
                }
            }
            break;
          }
          case OpType::kH: {
            const LaneMask* lq = leaked(op.q0);
            LaneMask ok[kMaxBatchWords];
            LaneMask any_ok = 0;
            for (int w = 0; w < W; ++w) {
                ok[w] = active_[w] & ~lq[w];
                any_ok |= ok[w];
            }
            if (any_ok != 0)
                state_->hadamard(op.q0, ok);
            depolarize1<WT>(op.q0);
            break;
          }
          case OpType::kCnot:
            cnot<WT>(op.q0, op.q1);
            break;
          case OpType::kMeasure: {
            const int anc = op.q0;
            const LaneMask* la = leaked(anc);
            LaneMask lk[kMaxBatchWords], ok[kMaxBatchWords];
            LaneMask any_lk = 0;
            for (int w = 0; w < W; ++w) {
                lk[w] = active_[w] & la[w];
                ok[w] = active_[w] & ~lk[w];
                any_lk |= lk[w];
            }
            // One word-wide readout; leaked lanes' bits are discarded
            // and replaced by that lane's random-outcome draw.  Every
            // active lane consumes exactly one word here — leaked lanes
            // as Rng::bit, the rest as the readout-error Bernoulli — so
            // one full-width step serves the whole site.  (At p <= 0 or
            // p >= 1 the clean lanes must NOT draw, like Rng::bernoulli.)
            LaneMask measured[kMaxBatchWords];
            state_->measure_z(anc, measured);
            LaneMask* flip =
                &meas_flip_[static_cast<size_t>(op.mslot) * Ws];
            LaneMask* mlrw =
                &mlr_flag_[static_cast<size_t>(op.mslot) * Ws];
            if (sparse_) {
                // Event-driven readout: the error site draws over the
                // non-leaked lanes only, leaked lanes coin-flip from the
                // event stream (ascending lane order), and the MLR site
                // is one more event pass — a quiet site costs nothing.
                LaneMask err[kMaxBatchWords];
                sparse_bernoulli_mask<WT>(rate_p_, ok, err);
                LaneMask rnd[kMaxBatchWords];
                lanes_zero(rnd, W);
                if (any_lk != 0) {
                    for_each_lane(lk, W, [&](int l) {
                        if (event_rng_.bit())
                            rnd[l >> 6] |= 1ull << (l & 63);
                    });
                }
                for (int w = 0; w < W; ++w)
                    flip[w] = ((measured[w] ^ err[w]) & ok[w]) |
                              (rnd[w] & lk[w]);
                LaneMask mlrt[kMaxBatchWords];
                sparse_bernoulli_mask<WT>(rate_mlr_, active_, mlrt);
                for (int w = 0; w < W; ++w)
                    mlrw[w] = lk[w] ^ mlrt[w];
                break;
            }
            if (!rate_p_.never && !rate_p_.always) {
                if (any_lk == 0 && !rate_mlr_.never && !rate_mlr_.always) {
                    // No leaked lane: readout error + MLR error as one
                    // fused double site (the usual case; neither site
                    // has a payload draw, so no repair can be needed).
                    LaneMask err[kMaxBatchWords], mlrf[kMaxBatchWords];
                    site_kernels().two(lane_rng_, n_lanes_,
                                       rate_p_.thresh, rate_mlr_.thresh,
                                       err, mlrf);
                    for (int w = 0; w < W; ++w) {
                        flip[w] =
                            (measured[w] ^ (err[w] & active_[w])) & ok[w];
                        mlrw[w] = mlrf[w] & active_[w];
                    }
                    break;
                }
                if (any_lk == 0) {
                    // No leaked lane: pure readout-error site.
                    LaneMask err[kMaxBatchWords];
                    site_kernels().one(lane_rng_, n_lanes_,
                                       rate_p_.thresh, err);
                    for (int w = 0; w < W; ++w)
                        flip[w] =
                            (measured[w] ^ (err[w] & active_[w])) & ok[w];
                    bernoulli_mask<WT>(rate_mlr_, active_, mlrw);
                    break;
                }
                lane_rng_.step_all(n_lanes_, draw_);
                // Readout error via the branchless compare + quiet-site
                // early-out (see bernoulli_mask); leaked lanes reuse the
                // same one-word draw as their Rng::bit outcome.
                uint64_t any = 0;
                for (int l = 0; l < n_lanes_; ++l) {
                    bits_[l] = ((draw_[l] >> 11) - rate_p_.thresh) >> 63;
                    any |= bits_[l];
                }
                LaneMask err[kMaxBatchWords];
                if (any != 0)
                    pack_bits(n_lanes_, err);
                else
                    lanes_zero(err, W);
                LaneMask rnd[kMaxBatchWords];
                lanes_zero(rnd, W);
                for_each_lane(lk, W, [&](int l) {
                    rnd[l >> 6] |= (draw_[l] >> 63) << (l & 63);
                });
                for (int w = 0; w < W; ++w)
                    flip[w] = ((measured[w] ^ err[w]) & ok[w]) |
                              (rnd[w] & lk[w]);
            } else {
                lane_rng_.step_masked(n_lanes_, lk, draw_);
                LaneMask rnd[kMaxBatchWords];
                lanes_zero(rnd, W);
                for_each_lane(lk, W, [&](int l) {
                    rnd[l >> 6] |= (draw_[l] >> 63) << (l & 63);
                });
                for (int w = 0; w < W; ++w) {
                    const LaneMask err = rate_p_.always ? ok[w] : 0;
                    flip[w] = ((measured[w] ^ err) & ok[w]) |
                              (rnd[w] & lk[w]);
                }
            }
            // MLR leak flag with symmetric misclassification.
            LaneMask mlrt[kMaxBatchWords];
            bernoulli_mask<WT>(rate_mlr_, active_, mlrt);
            for (int w = 0; w < W; ++w)
                mlrw[w] = lk[w] ^ mlrt[w];
            break;
          }
        }
    }

    // 4. Detector words, then the per-lane transpose the policies read.
    //    Every entry of every lane is (re)written below, so the vectors
    //    are only sized here — no zero-fill churn per round.
    out->resize(static_cast<size_t>(n_lanes_));
    for (int l = 0; l < n_lanes_; ++l) {
        RoundResult& rr = (*out)[static_cast<size_t>(l)];
        if (rr.meas_flip.size() != static_cast<size_t>(n_checks)) {
            rr.meas_flip.resize(static_cast<size_t>(n_checks));
            rr.detector.resize(static_cast<size_t>(n_checks));
            rr.mlr_flag.resize(static_cast<size_t>(n_checks));
        }
    }
    // Detector words first (also advances prev_meas_), then a lane-major
    // transpose: per lane the writes are small contiguous runs, instead
    // of scattering one byte into 64 different vectors per check.
    for (int c = 0; c < n_checks; ++c) {
        const bool zero_det =
            first_round_ && code_->check(c).type == CheckType::kX;
        for (int w = 0; w < W; ++w) {
            const size_t i = static_cast<size_t>(c) * Ws +
                             static_cast<size_t>(w);
            const LaneMask meas = meas_flip_[i];
            det_scratch_[i] = zero_det ? 0 : meas ^ prev_meas_[i];
            prev_meas_[i] = meas;
        }
    }
    // 8x8 tiles: spread each check word's 8-lane byte to 0/1 bytes, byte-
    // transpose the tile, and store eight checks of one lane with a
    // single 8-byte write.  ~1 op/byte instead of a scalar bit-extract
    // per (lane, check, array) — this transpose was 30% of the whole
    // batch path before.  An 8-lane group g lives in word g/8 of each
    // check's span, byte g%8.
    const auto transpose_into =
        [&](const std::vector<LaneMask>& words,
            std::vector<uint8_t> RoundResult::*field) {
            uint64_t tile[8];
            for (int c0 = 0; c0 < n_checks; c0 += 8) {
                const int cw = std::min(8, n_checks - c0);
                for (int g = 0; g * 8 < n_lanes_; ++g) {
                    const size_t wi = static_cast<size_t>(g >> 3);
                    const int sh = 8 * (g & 7);
                    for (int j = 0; j < 8; ++j) {
                        const uint64_t w =
                            j < cw ? words[static_cast<size_t>(c0 + j) *
                                               Ws +
                                           wi]
                                   : 0;
                        tile[j] = spread_bits_to_bytes(w >> sh);
                    }
                    transpose8x8_bytes(tile);
                    const int lw = std::min(8, n_lanes_ - g * 8);
                    for (int i = 0; i < lw; ++i) {
                        RoundResult& rr =
                            (*out)[static_cast<size_t>(8 * g + i)];
                        std::memcpy((rr.*field).data() + c0, &tile[i],
                                    static_cast<size_t>(cw));
                    }
                }
            }
        };
    transpose_into(meas_flip_, &RoundResult::meas_flip);
    transpose_into(det_scratch_, &RoundResult::detector);
    transpose_into(mlr_flag_, &RoundResult::mlr_flag);
    first_round_ = false;
}

// The cloned shells: one words_ dispatch per round (not per op) picks a
// compile-time-width body, which inlines whole into each target clone —
// the W loops unroll away (at the common W=1 every span op degenerates
// to single-word straight-line code) AND the inlined helpers get the
// clone's ISA for free.  GCC can't target_clones a template, hence the
// shell + always_inline-template split.
GLD_BATCH_HOT
void
BatchLeakageDriver::run_round_batch(const std::vector<LrcSchedule>& lane_lrcs,
                                    std::vector<RoundResult>* out)
{
    switch (words_) {
      case 1: run_round_t<1>(lane_lrcs, out); break;
      case 2: run_round_t<2>(lane_lrcs, out); break;
      case 4: run_round_t<4>(lane_lrcs, out); break;
      case 8: run_round_t<8>(lane_lrcs, out); break;
      default: run_round_t<0>(lane_lrcs, out); break;
    }
}

template <int WT>
__attribute__((always_inline)) inline void
BatchLeakageDriver::final_measure_t(std::vector<std::vector<uint8_t>>* out)
{
    const int W = WT > 0 ? WT : words_;
    out->resize(static_cast<size_t>(n_lanes_));
    for (int l = 0; l < n_lanes_; ++l)
        (*out)[static_cast<size_t>(l)].assign(
            static_cast<size_t>(code_->n_data()), 0);
    for (int q = 0; q < code_->n_data(); ++q) {
        const LaneMask* lq = leaked(q);
        LaneMask lk[kMaxBatchWords], ok[kMaxBatchWords];
        for (int w = 0; w < W; ++w) {
            lk[w] = active_[w] & lq[w];
            ok[w] = active_[w] & ~lk[w];
        }
        LaneMask measured[kMaxBatchWords];
        state_->measure_z(q, measured);
        LaneMask flip[kMaxBatchWords];
        if (sparse_) {
            LaneMask err[kMaxBatchWords];
            sparse_bernoulli_mask<WT>(rate_p_, ok, err);
            LaneMask rnd[kMaxBatchWords];
            lanes_zero(rnd, W);
            for_each_lane(lk, W, [&](int l) {
                if (event_rng_.bit())
                    rnd[l >> 6] |= 1ull << (l & 63);
            });
            for (int w = 0; w < W; ++w)
                flip[w] = ((measured[w] ^ err[w]) & ok[w]) |
                          (rnd[w] & lk[w]);
        } else if (!rate_p_.never && !rate_p_.always) {
            lane_rng_.step_all(n_lanes_, draw_);
            for (int w = 0; w * kBatchLanes < n_lanes_; ++w) {
                const int base = w * kBatchLanes;
                const int lim = std::min(kBatchLanes, n_lanes_ - base);
                LaneMask rnd = 0, err = 0;
                for (int b = 0; b < lim; ++b) {
                    rnd |= (draw_[base + b] >> 63) << b;
                    err |= static_cast<LaneMask>(
                               (draw_[base + b] >> 11) < rate_p_.thresh)
                           << b;
                }
                flip[w] = ((measured[w] ^ err) & ok[w]) | (rnd & lk[w]);
            }
        } else {
            lane_rng_.step_masked(n_lanes_, lk, draw_);
            LaneMask rnd[kMaxBatchWords];
            lanes_zero(rnd, W);
            for_each_lane(lk, W, [&](int l) {
                rnd[l >> 6] |= (draw_[l] >> 63) << (l & 63);
            });
            for (int w = 0; w < W; ++w) {
                const LaneMask err = rate_p_.always ? ok[w] : 0;
                flip[w] = ((measured[w] ^ err) & ok[w]) | (rnd[w] & lk[w]);
            }
        }
        for (int l = 0; l < n_lanes_; ++l)
            (*out)[static_cast<size_t>(l)][static_cast<size_t>(q)] =
                static_cast<uint8_t>((flip[l >> 6] >> (l & 63)) & 1u);
    }
}

GLD_BATCH_HOT
void
BatchLeakageDriver::final_data_measure_batch(
    std::vector<std::vector<uint8_t>>* out)
{
    switch (words_) {
      case 1: final_measure_t<1>(out); break;
      case 2: final_measure_t<2>(out); break;
      case 4: final_measure_t<4>(out); break;
      case 8: final_measure_t<8>(out); break;
      default: final_measure_t<0>(out); break;
    }
}

// --- BatchLeakageDriverSim scalar adapters. ---

RoundResult
BatchLeakageDriverSim::run_round(const LrcSchedule& lrcs)
{
    one_lrcs_[0] = lrcs;
    driver_.run_round_batch(one_lrcs_, &one_round_);
    return one_round_[0];
}

std::vector<uint8_t>
BatchLeakageDriverSim::final_data_measure()
{
    driver_.final_data_measure_batch(&one_flips_);
    return one_flips_[0];
}

}  // namespace gld
