#ifndef GLD_SIM_BATCH_FRAME_SIM_H_
#define GLD_SIM_BATCH_FRAME_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/round_circuit.h"
#include "codes/css_code.h"
#include "noise/noise_model.h"
#include "sim/batch_driver.h"
#include "util/rng.h"

namespace gld {

/**
 * Bit-packed Pauli-frame backend: batch_words * kBatchLanes Monte-Carlo
 * shots per batch, one K-word X/Z frame span per qubit, driven in
 * lockstep by the BatchLeakageDriver.
 *
 * Each primitive is a K-word strip of AND/XOR operations serving up to
 * 64*K shots at once — the classic batch frame-simulator speedup — while
 * the per-lane noise streams keep every lane bit-identical to the scalar
 * `frame` backend's corresponding shot (same master Rng(seed), same
 * split-per-shot derivation, at every K).  `Metrics` produced through the
 * scheduler's batch path are bit-identical to the scalar frame backend's,
 * which is the tier-1 cross-backend gate.
 *
 * Frame semantics per primitive match LeakFrameSim lane for lane:
 * measure_z reads the X-frame words without disturbing them, park_leaked
 * is a no-op (a leaked lane's frame freezes because the driver stops
 * routing coherent gates at it), and an LRC preserves the serviced lane's
 * frame.
 */
class BatchFrameSim final : public BatchLeakageDriverSim {
  public:
    BatchFrameSim(const CssCode& code, const RoundCircuit& rc,
                  const NoiseParams& np, uint64_t seed, int batch_words = 1,
                  NoiseSampling noise_sampling = NoiseSampling::kLockstep);

    std::string name() const override { return "batch_frame"; }

  private:
    // --- BatchStatePrimitives over the packed X/Z frame spans. ---
    void reset_state() override;
    void apply_pauli(int q, const LaneMask* xs, const LaneMask* zs) override;
    void coherent_cnot(int control, int target,
                       const LaneMask* lanes) override;
    void hadamard(int q, const LaneMask* lanes) override;
    void reset_z(int q, const LaneMask* lanes) override;
    void measure_z(int q, LaneMask* out) override;
    void park_leaked(int q, const LaneMask* lanes) override;

    int words_;                 ///< span width (driver().n_words())
    std::vector<LaneMask> fx_;  ///< X-frame span per qubit (entry q*W+w)
    std::vector<LaneMask> fz_;  ///< Z-frame span per qubit
};

}  // namespace gld

#endif  // GLD_SIM_BATCH_FRAME_SIM_H_
