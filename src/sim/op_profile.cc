#include "sim/op_profile.h"

namespace gld {

RoundOpProfile
profile_round_ops(const CssCode& code, const RoundCircuit& rc,
                  const NoiseParams& np, const LrcSchedule& lrcs,
                  uint64_t seed)
{
    RoundOpProfile profile;
    {
        CountingState state;
        LeakageDriver driver(code, rc, np, Rng(seed), &state);
        driver.run_round(LrcSchedule{});
        profile.quiet = state.counts();
    }
    {
        CountingState state;
        LeakageDriver driver(code, rc, np, Rng(seed), &state);
        driver.run_round(lrcs);
        profile.scheduled = state.counts();
    }
    profile.lrc_overhead = profile.scheduled - profile.quiet;
    return profile;
}

}  // namespace gld
