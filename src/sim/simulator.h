#ifndef GLD_SIM_SIMULATOR_H_
#define GLD_SIM_SIMULATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "circuit/round_circuit.h"
#include "codes/css_code.h"
#include "noise/noise_model.h"

namespace gld {

/**
 * Upper bound on the batch width multiplier K
 * (ExperimentConfig::batch_words): batch backends pack up to
 * kMaxBatchWords * 64 shots per scheduler block.  8 words = 512 lanes
 * keeps the lane-RNG bank (4 SoA rows) at 16 KiB — L1-resident.
 */
constexpr int kMaxBatchWords = 8;

/** Outcome of one QEC round, as seen by the controller. */
struct RoundResult {
    /** Measurement flip (vs the noiseless reference) per check. */
    std::vector<uint8_t> meas_flip;
    /** Detector bits: meas_flip XOR previous round's meas_flip. */
    std::vector<uint8_t> detector;
    /** Noisy multi-level-readout leak flags per check ancilla. */
    std::vector<uint8_t> mlr_flag;
};

/** LRCs requested by a policy, applied at the start of the next round. */
struct LrcSchedule {
    std::vector<int> data_qubits;
    std::vector<int> checks;  ///< ancillas, identified by check index
    void clear()
    {
        data_qubits.clear();
        checks.clear();
    }
    bool empty() const { return data_qubits.empty() && checks.empty(); }
};

/**
 * Ground-truth view of the classical leakage state.  There is exactly one
 * implementation — the shared LeakageDriver — so the oracle the runner's
 * speculation accounting and the IDEAL policy read is the same object on
 * every backend, by construction.
 */
class LeakageOracle {
  public:
    virtual ~LeakageOracle() = default;

    virtual bool data_leaked(int q) const = 0;
    virtual bool check_leaked(int c) const = 0;
    /** Number of currently-leaked data qubits. */
    virtual int n_data_leaked() const = 0;
    /** Number of currently-leaked ancilla qubits. */
    virtual int n_check_leaked() const = 0;

    /**
     * Telemetry hook (src/telemetry/): adds 1 to data_row[q] for every
     * currently-leaked data qubit q in [0, n_data) and to check_row[c]
     * for every leaked check ancilla c in [0, n_checks) — one row of the
     * per-qubit x per-round leakage-occupancy heatmap.  Pure read of the
     * ground-truth flags: never draws randomness, never mutates state,
     * so attaching it cannot perturb a run (the telemetry drift gate
     * pins this).  The default walks the boolean oracle interface;
     * LeakageDriver overrides it with a direct pass over its flag array.
     */
    virtual void add_leak_occupancy(uint64_t* data_row, int n_data,
                                    uint64_t* check_row,
                                    int n_checks) const;
};

/**
 * Abstract simulation backend for the closed-loop memory experiment.
 *
 * A backend executes the scheduled syndrome-extraction circuit of one code
 * round by round.  The classical leakage dynamics — gate malfunction,
 * mobility transport, MLR, LRC gadgets — are NOT the backend's to define:
 * they live in the shared LeakageDriver (sim/leakage_driver.h), and a
 * backend only provides the quantum-state primitives the driver runs over.
 *
 * Contract shared by every backend:
 *  - run_round() applies the scheduled LRCs first (start-of-round
 *    semantics), then one noisy extraction round; detector bits are
 *    meas-XOR-previous with round-0 X-check detectors forced to 0.
 *  - All randomness comes from the constructor seed: the same seed gives
 *    a bit-identical shot sequence (per backend — different backends draw
 *    differently and agree only statistically / on noiseless semantics).
 *  - Fault injection (inject_*) is exact and deterministic, so noiseless
 *    detector signatures are comparable ACROSS backends.
 */
class Simulator {
  public:
    virtual ~Simulator() = default;

    /** Human-readable backend name ("frame", "tableau", "batch_frame"). */
    virtual std::string name() const = 0;

    /** Clears all per-shot state for a new shot. */
    virtual void reset_shot() = 0;

    /**
     * Re-seeds and fully resets this simulator so everything it does from
     * here on is BIT-identical to a freshly constructed
     * make_simulator(backend, code, rc, np, seed, batch_words) with the
     * same shape arguments (code/circuit/noise/batch_words) and this
     * seed.  This is the per-worker reuse hook of the scheduler's
     * zero-allocation steady state: a worker keeps one simulator per
     * config shape and resets it per (stream, block) instead of
     * reconstructing — no observable difference is permitted (the
     * reuse ≡ fresh determinism gate pins this per backend).
     */
    virtual void reset_for_block(uint64_t seed) = 0;

    /** Forces a data qubit into the leaked state (leakage sampling, §6). */
    virtual void inject_data_leak(int q) = 0;
    /** Forces an ancilla (by check index) into the leaked state. */
    virtual void inject_check_leak(int c) = 0;
    /** Injects an X (bit-flip) error on a qubit (tests / fault studies). */
    virtual void inject_x(int q) = 0;
    /** Injects a Z (phase-flip) error on a qubit. */
    virtual void inject_z(int q) = 0;
    /** Clears a qubit's leak flag (tests). */
    virtual void clear_leak(int q) = 0;

    /** The ground-truth leak oracle (the shared driver's flag state). */
    virtual const LeakageOracle& leak_oracle() const = 0;

    // Convenience pass-throughs so oracle reads stay one call deep at
    // every existing call site.
    bool data_leaked(int q) const { return leak_oracle().data_leaked(q); }
    bool check_leaked(int c) const { return leak_oracle().check_leaked(c); }
    /** Number of currently-leaked data qubits. */
    int n_data_leaked() const { return leak_oracle().n_data_leaked(); }
    /** Number of currently-leaked ancilla qubits. */
    int n_check_leaked() const { return leak_oracle().n_check_leaked(); }

    /**
     * Applies the scheduled LRC gadgets, then executes one noisy
     * syndrome-extraction round.
     */
    virtual RoundResult run_round(const LrcSchedule& lrcs) = 0;

    /**
     * Transversal Z-basis readout of all data qubits at the end of the
     * memory experiment.  Returns the per-qubit outcome flip (leaked
     * qubits read out randomly).
     */
    virtual std::vector<uint8_t> final_data_measure() = 0;
};

/**
 * The available backends.  kFrame is the paper's Pauli-frame engine (fast,
 * samples Pauli noise exactly); kTableau drives the exact CHP stabilizer
 * tableau through the same round circuit (slower by O(n^2) per
 * measurement; exact-stabilizer states); kBatchFrame packs K*64 shots
 * (K = batch_words) into K words per qubit and runs them in lockstep
 * through the batch driver — bit-identical Metrics to kFrame at several
 * times the shots/second (BM_BackendThroughput measures the real ratio;
 * the per-lane noise draws both engines must make bound it);
 * kBatchTableau runs K*64 exact CHP tableaux in lockstep behind the same
 * batch driver, amortizing the per-round noise machinery over the batch
 * so exact-mode campaigns batch too.  All share the one LeakageDriver
 * semantics for every classical-leakage decision.
 */
enum class SimBackend : uint8_t {
    kFrame = 0,
    kTableau = 1,
    kBatchFrame = 2,
    kBatchTableau = 3,
};

/** Canonical backend name ("frame" / "tableau" / "batch_frame"). */
const char* backend_name(SimBackend backend);

/** Every known backend, in enum order (the factory's dispatch set). */
const std::vector<SimBackend>& known_backends();

/** Comma-separated canonical names, for error messages and --help text. */
std::string known_backend_names();

/**
 * Inverse of backend_name; throws std::runtime_error naming the unknown
 * input AND listing every known backend.
 */
SimBackend backend_from_name(const std::string& name);

/**
 * The backend selected by the GLD_BACKEND environment variable — the one
 * resolution point benches and examples share.  Unset/empty means kFrame;
 * an unknown name throws, naming the variable and the known backends.
 */
SimBackend backend_from_env();

/**
 * The batch width multiplier K selected by the GLD_BATCH_WORDS
 * environment variable — the one resolution point benches, tests and
 * the demo share.  Unset/empty means 1; anything outside
 * [1, kMaxBatchWords] (or non-numeric) throws, naming the variable and
 * the valid range.  K is RESULT-AFFECTING: it sets the scheduler block
 * size (64*K shots) and therefore the (seed, stream, block) RNG
 * derivation, so it is part of the config hash when != 1.
 */
int batch_words_from_env();

/**
 * How the batch backends sample their Bernoulli noise sites.
 *
 * kLockstep (the default) is the classic draw contract: every lane of a
 * batch owns a per-lane RNG stream and draws once at EVERY noise site,
 * so lane k replays the scalar backend's shot k draw for draw — the
 * basis of the frame/batch_frame bit-equality gate.
 *
 * kSparse is event-driven: one dedicated scalar event stream per
 * (stream, block) work unit draws geometric skips over the flattened
 * (site x lane) position space of a round and touches only the lanes
 * that actually fire — quiet sites cost zero RNG work.  The draw
 * sequence legitimately differs from the scalar backends', so sparse
 * batch backends register their own backend_rng_contract values and are
 * qualified STATISTICALLY by `gld_campaign verify` (pooled z-tests),
 * not by bit-diff.  Scalar backends ignore the knob entirely (like
 * batch_words).  RESULT-AFFECTING on batch backends: serialized and
 * config-hashed when != kLockstep.
 */
enum class NoiseSampling : uint8_t {
    kLockstep = 0,
    kSparse = 1,
};

/** Canonical mode name ("lockstep" / "sparse"). */
const char* noise_sampling_name(NoiseSampling sampling);

/** Comma-separated canonical names, for error messages and --help text. */
std::string known_noise_sampling_names();

/**
 * Inverse of noise_sampling_name; throws std::runtime_error naming the
 * unknown input AND listing every known mode.
 */
NoiseSampling noise_sampling_from_name(const std::string& name);

/**
 * The noise sampling mode selected by the GLD_NOISE_SAMPLING environment
 * variable — the one resolution point benches, tests and the demo share.
 * Unset/empty means kLockstep; an unknown name throws, naming the
 * variable and the known modes.
 */
NoiseSampling noise_sampling_from_env();

/**
 * RNG contract group of a backend (from the one backend table).  Two
 * backends with the SAME contract id replay identical (seed, stream,
 * block) draw sequences, so any config's Metrics must be BIT-identical
 * between them — the contract behind frame/batch_frame equality and the
 * verify referee's bit-exact mode.  Backends with different ids draw
 * independent randomness and agree only statistically.
 */
int backend_rng_contract(SimBackend backend);

/**
 * Mode-aware RNG contract: the draw-sequence group of `backend` running
 * under `sampling`.  At kLockstep this is backend_rng_contract(backend);
 * at kSparse the batch backends move to their own contract ids (their
 * event-driven draw sequence matches no lockstep engine), while the
 * scalar backends — which ignore the knob — keep their lockstep ids.
 */
int backend_rng_contract(SimBackend backend, NoiseSampling sampling);

/**
 * Relative per-shot simulation cost of a backend on an n-qubit code,
 * normalized to the frame engine (= 1).  The tableau backend pays
 * O(n^2/64) bit-plane words per measurement where the frame engine pays
 * O(1) per frame bit, so its factor grows quadratically with code size.
 * Used by campaign planning to print honest per-shard loads for
 * mixed-backend sweeps; it is a throughput model, never result-affecting.
 */
double backend_cost_factor(SimBackend backend, int n_qubits);

/**
 * Builds a backend over a code's scheduled round circuit.  `batch_words`
 * is the lane-span width K for the batch backends (batch_frame,
 * batch_tableau): one batch holds 64*K shots.  Scalar backends ignore
 * it; out-of-range values throw for every backend.  `noise_sampling`
 * selects the batch backends' Bernoulli draw contract (lockstep or
 * event-driven sparse); scalar backends ignore it.
 */
std::unique_ptr<Simulator> make_simulator(
    SimBackend backend, const CssCode& code, const RoundCircuit& rc,
    const NoiseParams& np, uint64_t seed, int batch_words = 1,
    NoiseSampling noise_sampling = NoiseSampling::kLockstep);

}  // namespace gld

#endif  // GLD_SIM_SIMULATOR_H_
