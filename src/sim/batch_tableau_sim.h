#ifndef GLD_SIM_BATCH_TABLEAU_SIM_H_
#define GLD_SIM_BATCH_TABLEAU_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/round_circuit.h"
#include "codes/css_code.h"
#include "noise/noise_model.h"
#include "sim/batch_driver.h"
#include "sim/tableau_sim.h"
#include "util/rng.h"

namespace gld {

/**
 * Lockstep exact-stabilizer backend: batch_words * kBatchLanes independent
 * CHP tableaux behind the BatchLeakageDriver, one per lane.
 *
 * The per-measurement cost is still the tableau's O(n^2) per lane — the
 * state itself cannot be bit-packed across shots — but the whole per-round
 * noise machinery (the LaneRngBank site kernels, the leak-plane masks, the
 * tile transpose, the scheduler's word-wide FN/DLP accounting) is amortized
 * over the batch exactly as for batch_frame, so exact-mode campaigns batch
 * too.
 *
 * Semantics notes (mirroring TableauLeakSim, the scalar exact backend):
 *  - measure_z reports ACTUAL measurement outcomes per lane.  The masked
 *    measure_z contract explicitly permits collapsing every lane — leaked
 *    lanes' outcomes are discarded by the driver, but the collapse is
 *    harmless and keeps all lanes in lockstep.
 *  - park_leaked collapses the departing qubit in Z, per selected lane.
 *  - Like tableau vs frame, batch_tableau draws its projection randomness
 *    from per-lane tableau streams, so it agrees with the other backends
 *    statistically (and on noiseless/injected-fault signatures), never
 *    bit-for-bit — its own RNG contract group in the backend table.
 */
class BatchTableauSim final : public BatchLeakageDriverSim {
  public:
    BatchTableauSim(const CssCode& code, const RoundCircuit& rc,
                    const NoiseParams& np, uint64_t seed, int batch_words = 1,
                    NoiseSampling noise_sampling = NoiseSampling::kLockstep);

    std::string name() const override { return "batch_tableau"; }

    /** Reuse reset: re-derive the driver master from split(0) and every
     *  lane's projection stream from per-lane splits under split(1),
     *  exactly the constructor's derivation. */
    void reset_for_block(uint64_t seed) override;

    /** Lane l's tableau (tests: stabilizer-group assertions). */
    TableauSim& tableau(int lane)
    {
        return tabs_[static_cast<size_t>(lane)];
    }

  private:
    // --- BatchStatePrimitives over one CHP tableau per lane. ---
    void reset_state() override;
    void apply_pauli(int q, const LaneMask* xs, const LaneMask* zs) override;
    void coherent_cnot(int control, int target,
                       const LaneMask* lanes) override;
    void hadamard(int q, const LaneMask* lanes) override;
    void reset_z(int q, const LaneMask* lanes) override;
    void measure_z(int q, LaneMask* out) override;
    void park_leaked(int q, const LaneMask* lanes) override;

    std::vector<TableauSim> tabs_;  ///< one exact tableau per lane
};

}  // namespace gld

#endif  // GLD_SIM_BATCH_TABLEAU_SIM_H_
