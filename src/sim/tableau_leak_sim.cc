#include "sim/tableau_leak_sim.h"

namespace gld {

TableauLeakSim::TableauLeakSim(const CssCode& code, const RoundCircuit& rc,
                               const NoiseParams& np, uint64_t seed)
    // The driver's noise draws and the tableau's random projection
    // outcomes come from disjoint splits of the one seed, so a seed still
    // fixes the whole shot sequence.
    : LeakageDriverSim(code, rc, np, Rng(Rng(seed).split(0).next_u64())),
      tab_(code.n_qubits(), Rng(seed).split(1).next_u64())
{
}

void
TableauLeakSim::apply_pauli(int q, uint32_t pauli)
{
    // kPauli* encoding: bit0 = X, bit1 = Z (Y = both; the global phase is
    // irrelevant to stabilizer statistics).
    if (pauli & 1u)
        tab_.x(q);
    if (pauli & 2u)
        tab_.z(q);
}

void
TableauLeakSim::park_leaked(int q)
{
    // Collapse the departing qubit in Z so the stabilizer state of the
    // remaining qubits stays well-defined while this one sits in |2>.
    tab_.measure_z(q);
}

}  // namespace gld
