#include "sim/tableau_leak_sim.h"

#include <algorithm>

namespace gld {

TableauLeakSim::TableauLeakSim(const CssCode& code, const RoundCircuit& rc,
                               const NoiseParams& np, uint64_t seed)
    : code_(&code), rc_(&rc), np_(np),
      rng_(Rng(seed).split(0).next_u64()),
      tab_(code.n_qubits(), Rng(seed).split(1).next_u64())
{
    const int nq = code.n_qubits();
    leaked_.assign(nq, 0);
    prev_meas_.assign(code.n_checks(), 0);
    // Fixed LRC partner per data qubit: its first adjacent check's ancilla
    // (identical to LeakFrameSim so LRC-induced leak flow matches).
    lrc_partner_.assign(code.n_data(), -1);
    for (int q = 0; q < code.n_data(); ++q) {
        if (!code.data_adjacency()[q].empty())
            lrc_partner_[q] = code.data_adjacency()[q].front();
    }
}

void
TableauLeakSim::reset_shot()
{
    tab_.reset_all();
    std::fill(leaked_.begin(), leaked_.end(), 0);
    std::fill(prev_meas_.begin(), prev_meas_.end(), 0);
    first_round_ = true;
}

void
TableauLeakSim::leak(int q)
{
    if (leaked_[q])
        return;
    leaked_[q] = 1;
    // Collapse the departing qubit in Z so the stabilizer state of the
    // remaining qubits stays well-defined while this one sits in |2>.
    tab_.measure_z(q);
}

int
TableauLeakSim::n_data_leaked() const
{
    int n = 0;
    for (int q = 0; q < code_->n_data(); ++q)
        n += leaked_[q];
    return n;
}

int
TableauLeakSim::n_check_leaked() const
{
    int n = 0;
    for (int c = 0; c < code_->n_checks(); ++c)
        n += leaked_[code_->ancilla_of(c)];
    return n;
}

void
TableauLeakSim::apply_pauli(int q, uint32_t pauli)
{
    // Same encoding as the frame engine: bit0 = X, bit1 = Z (Y = both;
    // the global phase is irrelevant to stabilizer statistics).
    if (pauli & 1u)
        tab_.x(q);
    if (pauli & 2u)
        tab_.z(q);
}

void
TableauLeakSim::depolarize1(int q)
{
    if (!rng_.bernoulli(np_.p))
        return;
    apply_pauli(q, 1 + rng_.uniform_int(3));
}

void
TableauLeakSim::depolarize2(int q0, int q1)
{
    if (!rng_.bernoulli(np_.p))
        return;
    const uint32_t pauli = 1 + rng_.uniform_int(15);
    apply_pauli(q0, pauli & 3u);
    apply_pauli(q1, (pauli >> 2) & 3u);
}

void
TableauLeakSim::leak_maybe(int q)
{
    if (rng_.bernoulli(np_.pl()))
        leak(q);
}

void
TableauLeakSim::cnot(int control, int target)
{
    const bool cl = leaked_[control] != 0;
    const bool tl = leaked_[target] != 0;
    if (!cl && !tl) {
        tab_.cnot(control, target);
    } else if (cl && !tl) {
        // Leaked control: transport with prob `mobility`, else the gate
        // malfunctions and the target is disturbed (paper §2.3).
        if (rng_.bernoulli(np_.mobility)) {
            leak(target);
            leaked_[control] = 0;
        } else {
            malfunction(target, /*is_control=*/false);
        }
    } else if (!cl && tl) {
        malfunction(control, /*is_control=*/true);
    }
    // Both leaked: gate does nothing observable in the subspace.

    depolarize2(control, target);
    leak_maybe(control);
    leak_maybe(target);
}

void
TableauLeakSim::malfunction(int partner, bool is_control)
{
    const bool partner_is_ancilla = partner >= code_->n_data();
    if (partner_is_ancilla && !np_.leaked_gate_backaction) {
        // IBM characterization (§2.3): an independent 50% flip of the
        // ancilla's measured bit — X for a Z-check ancilla (measured in
        // Z), Z for an X-check ancilla (measured in X between its
        // Hadamards).
        if (rng_.bit()) {
            if (is_control)
                tab_.z(partner);
            else
                tab_.x(partner);
        }
        return;
    }
    apply_pauli(partner, rng_.uniform_int(4));
}

void
TableauLeakSim::apply_lrc_data(int q)
{
    // SWAP with the partner ancilla + reset: exchanges the leak flags,
    // then the ancilla side is reset (cleared).
    const int pc = lrc_partner_[q];
    if (pc >= 0) {
        const int anc = code_->ancilla_of(pc);
        const bool anc_was_leaked = leaked_[anc] != 0;
        leaked_[q] = 0;
        leaked_[anc] = 0;
        if (anc_was_leaked)
            leak(q);  // false-positive LRC pumps the partner's leak IN
    } else {
        leaked_[q] = 0;
    }
    // Gadget noise: ~3 CNOTs of depolarizing + leakage induction.
    if (rng_.bernoulli(np_.lrc_depol()))
        apply_pauli(q, 1 + rng_.uniform_int(3));
    if (rng_.bernoulli(np_.lrc_leak()))
        leak(q);
}

void
TableauLeakSim::apply_lrc_check(int c)
{
    const int anc = code_->ancilla_of(c);
    leaked_[anc] = 0;
    tab_.reset_z(anc);
    if (rng_.bernoulli(np_.lrc_leak()))
        leak(anc);
}

RoundResult
TableauLeakSim::run_round(const LrcSchedule& lrcs)
{
    const int n_checks = code_->n_checks();
    RoundResult out;
    out.meas_flip.assign(n_checks, 0);
    out.detector.assign(n_checks, 0);
    out.mlr_flag.assign(n_checks, 0);

    // 1. Scheduled LRC gadgets (decided by the policy last round).
    for (int q : lrcs.data_qubits)
        apply_lrc_data(q);
    for (int c : lrcs.checks)
        apply_lrc_check(c);

    // 2. Round-start data noise: depolarization + environment leakage.
    for (int q = 0; q < code_->n_data(); ++q) {
        depolarize1(q);
        leak_maybe(q);
    }

    // 3. Execute the scheduled extraction circuit; gates skip leaked
    //    operands (their coherent action malfunctions instead).
    for (const Op& op : rc_->ops()) {
        switch (op.type) {
          case OpType::kResetZ:
            // Reset does not clear leakage, and a reset pulse has no
            // effect on a |2> qubit's parked tableau state.
            if (!leaked_[op.q0]) {
                tab_.reset_z(op.q0);
                if (rng_.bernoulli(np_.p))
                    tab_.x(op.q0);  // init error flips to |1>
            }
            break;
          case OpType::kH:
            if (!leaked_[op.q0])
                tab_.h(op.q0);
            depolarize1(op.q0);
            break;
          case OpType::kCnot:
            cnot(op.q0, op.q1);
            break;
          case OpType::kMeasure: {
            const int anc = op.q0;
            uint8_t bit;
            if (leaked_[anc]) {
                // Two-level readout of a leaked qubit: random outcome.
                bit = rng_.bit() ? 1 : 0;
            } else {
                bit = tab_.measure_z(anc) ? 1 : 0;
                if (rng_.bernoulli(np_.p))
                    bit ^= 1;
            }
            // Actual outcome, not a flip-vs-reference: see the class
            // comment — detector semantics come out identical.
            out.meas_flip[op.mslot] = bit;
            uint8_t leak_flag = leaked_[anc] ? 1 : 0;
            if (rng_.bernoulli(np_.mlr_err()))
                leak_flag ^= 1;
            out.mlr_flag[op.mslot] = leak_flag;
            break;
          }
        }
    }

    // 4. Detector bits (round-0 X-check outcomes are random projections
    //    in a Z-basis memory; they carry no detector information).
    for (int c = 0; c < n_checks; ++c) {
        if (first_round_ && code_->check(c).type == CheckType::kX) {
            out.detector[c] = 0;
        } else {
            out.detector[c] = out.meas_flip[c] ^ prev_meas_[c];
        }
    }
    prev_meas_ = out.meas_flip;
    first_round_ = false;
    return out;
}

std::vector<uint8_t>
TableauLeakSim::final_data_measure()
{
    // Z-basis memory of |0...0>: the noiseless reference outcome is 0, so
    // the actual outcome IS the flip.
    std::vector<uint8_t> flips(code_->n_data(), 0);
    for (int q = 0; q < code_->n_data(); ++q) {
        if (leaked_[q]) {
            flips[q] = rng_.bit() ? 1 : 0;
        } else {
            flips[q] = tab_.measure_z(q) ? 1 : 0;
            if (rng_.bernoulli(np_.p))
                flips[q] ^= 1;
        }
    }
    return flips;
}

}  // namespace gld
