#ifndef GLD_SIM_TABLEAU_LEAK_SIM_H_
#define GLD_SIM_TABLEAU_LEAK_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/round_circuit.h"
#include "codes/css_code.h"
#include "noise/noise_model.h"
#include "sim/simulator.h"
#include "sim/tableau_sim.h"
#include "util/rng.h"

namespace gld {

/**
 * Exact-stabilizer backend: drives the CHP tableau engine through the same
 * scheduled round circuit as LeakFrameSim, with the same classical leakage
 * semantics (gate malfunction, mobility transport, MLR, LRC gadgets).
 *
 * Where the frame engine tracks a Pauli frame relative to the noiseless
 * reference, this backend simulates the actual stabilizer state, so it is
 * exact for everything in the stabilizer formalism — at O(n^2) per
 * measurement instead of O(1) per frame bit.  Use it to validate the frame
 * backend end to end (closed loop, policies, decoding) on small codes, or
 * whenever exactness beats throughput.
 *
 * Semantics notes (the deliberate deltas from the frame engine):
 *  - RoundResult::meas_flip holds ACTUAL measurement outcomes.  For a
 *    Z-basis memory of |0...0> the noiseless Z-check reference outcome is
 *    0, so Z-check "flips" coincide; X-check outcomes are the projection
 *    values themselves, whose reference cancels in the detector XOR — the
 *    detector and decoding semantics the runner and policies consume are
 *    identical across backends.
 *  - A qubit that leaks is measured out in Z (collapsed) to keep the
 *    remaining stabilizer state well-defined, then ignored by every gate
 *    until an LRC clears the flag (the frame engine instead freezes the
 *    qubit's frame).  Identical leak-flag dynamics, different
 *    computational-subspace approximation.
 *  - Both engines draw from their own seeded streams; runs agree
 *    statistically and on noiseless/injected-fault signatures, never
 *    bit-for-bit.
 */
class TableauLeakSim : public Simulator {
  public:
    TableauLeakSim(const CssCode& code, const RoundCircuit& rc,
                   const NoiseParams& np, uint64_t seed);

    std::string name() const override { return "tableau"; }

    void reset_shot() override;

    void inject_data_leak(int q) override { leak(q); }
    void inject_check_leak(int c) override { leak(code_->ancilla_of(c)); }
    void inject_x(int q) override { tab_.x(q); }
    void inject_z(int q) override { tab_.z(q); }
    void clear_leak(int q) override { leaked_[q] = 0; }

    bool data_leaked(int q) const override { return leaked_[q] != 0; }
    bool check_leaked(int c) const override
    {
        return leaked_[code_->ancilla_of(c)] != 0;
    }
    int n_data_leaked() const override;
    int n_check_leaked() const override;

    RoundResult run_round(const LrcSchedule& lrcs) override;
    std::vector<uint8_t> final_data_measure() override;

    /** The LRC partner ancilla (check index) used for data qubit q. */
    int lrc_partner(int q) const { return lrc_partner_[q]; }

    /** The underlying tableau (tests: stabilizer-group assertions). */
    TableauSim& tableau() { return tab_; }

  private:
    void leak(int q);
    void apply_lrc_data(int q);
    void apply_lrc_check(int c);
    void depolarize1(int q);
    void depolarize2(int q0, int q1);
    void leak_maybe(int q);
    void cnot(int control, int target);
    void malfunction(int partner, bool is_control);
    void apply_pauli(int q, uint32_t pauli);

    const CssCode* code_;
    const RoundCircuit* rc_;
    NoiseParams np_;
    Rng rng_;        ///< noise draws (separate from the tableau's RNG)
    TableauSim tab_;

    std::vector<uint8_t> leaked_;  ///< leak flag per qubit
    std::vector<uint8_t> prev_meas_;
    std::vector<int> lrc_partner_;
    bool first_round_ = true;
};

}  // namespace gld

#endif  // GLD_SIM_TABLEAU_LEAK_SIM_H_
