#ifndef GLD_SIM_TABLEAU_LEAK_SIM_H_
#define GLD_SIM_TABLEAU_LEAK_SIM_H_

#include <cstdint>
#include <string>

#include "circuit/round_circuit.h"
#include "codes/css_code.h"
#include "noise/noise_model.h"
#include "sim/leakage_driver.h"
#include "sim/tableau_sim.h"
#include "util/rng.h"

namespace gld {

/**
 * Exact-stabilizer backend: the CHP tableau engine as a StatePrimitives
 * provider for the shared LeakageDriver.
 *
 * Where the frame backend tracks a Pauli frame relative to the noiseless
 * reference, this backend simulates the actual stabilizer state, so it is
 * exact for everything in the stabilizer formalism — at O(n^2) per
 * measurement instead of O(1) per frame bit.  Use it to validate the frame
 * backend end to end (closed loop, policies, decoding) on small codes, or
 * whenever exactness beats throughput.
 *
 * Semantics notes (the deliberate deltas from the frame backend — the
 * round/leakage dynamics themselves are the driver's and cannot differ):
 *  - measure_z returns ACTUAL measurement outcomes.  For a Z-basis memory
 *    of |0...0> the noiseless Z-check reference outcome is 0, so Z-check
 *    "flips" coincide; X-check outcomes are the projection values
 *    themselves, whose reference cancels in the detector XOR — the
 *    detector and decoding semantics the runner and policies consume are
 *    identical across backends.
 *  - park_leaked measures the departing qubit in Z (collapse) to keep the
 *    remaining stabilizer state well-defined while it sits in |2> (the
 *    frame backend instead freezes the qubit's frame).
 *  - The driver's noise stream and the tableau's projection stream are
 *    both derived from the constructor seed; runs agree with the frame
 *    backend statistically and on noiseless/injected-fault signatures,
 *    never bit-for-bit.
 */
class TableauLeakSim final : public LeakageDriverSim {
  public:
    TableauLeakSim(const CssCode& code, const RoundCircuit& rc,
                   const NoiseParams& np, uint64_t seed);

    std::string name() const override { return "tableau"; }

    /** Reuse reset: re-derive BOTH streams exactly as the constructor
     *  does — driver master from split(0), tableau projection stream
     *  from split(1) — so a reused instance replays a fresh one. */
    void reset_for_block(uint64_t seed) override
    {
        driver_.reset_for_block(Rng(Rng(seed).split(0).next_u64()));
        tab_.reseed(Rng(seed).split(1).next_u64());
    }

    /** The underlying tableau (tests: stabilizer-group assertions). */
    TableauSim& tableau() { return tab_; }

  private:
    // --- StatePrimitives over the CHP tableau. ---
    void reset_state() override { tab_.reset_all(); }
    void apply_pauli(int q, uint32_t pauli) override;
    void coherent_cnot(int control, int target) override
    {
        tab_.cnot(control, target);
    }
    void hadamard(int q) override { tab_.h(q); }
    void reset_z(int q) override { tab_.reset_z(q); }
    uint8_t measure_z(int q) override { return tab_.measure_z(q) ? 1 : 0; }
    void park_leaked(int q) override;

    TableauSim tab_;
};

}  // namespace gld

#endif  // GLD_SIM_TABLEAU_LEAK_SIM_H_
