#ifndef GLD_SIM_TABLEAU_SIM_H_
#define GLD_SIM_TABLEAU_SIM_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace gld {

/**
 * Aaronson-Gottesman CHP stabilizer tableau simulator.
 *
 * This is the validation substrate (the paper uses Stim's tableau engine for
 * the same purpose): it simulates the exact stabilizer state, so tests can
 * cross-check the Pauli-frame simulator's circuit semantics — noiseless
 * syndrome determinism, the detector signature of injected Pauli errors,
 * and stabilizer-group membership of the code checks.
 *
 * Row convention: rows [0, n) are destabilizers, rows [n, 2n) stabilizers.
 */
class TableauSim {
  public:
    explicit TableauSim(int n_qubits, uint64_t seed = 1);

    int n() const { return n_; }

    /**
     * Re-initializes the tableau to the identity (|0...0>) without
     * reseeding the internal RNG: the random-outcome stream continues,
     * so a sequence of shots is deterministic from the original seed.
     */
    void reset_all();

    /**
     * Restores the exact just-constructed state: identity tableau AND
     * the projection stream rewound to Rng(seed).  The simulator-reuse
     * path needs this — reset_all alone keeps the stream running, which
     * is right between shots but wrong between scheduler blocks (a
     * reused tableau would diverge from a freshly built one).
     */
    void reseed(uint64_t seed)
    {
        rng_ = Rng(seed);
        reset_all();
    }

    void h(int q);
    void s(int q);
    void cnot(int control, int target);
    void x(int q);
    void z(int q);
    void y(int q);

    /**
     * Z-basis measurement.
     * @param forced_random  if non-null and the outcome is random, *forced*
     *        is used instead of the RNG (for deterministic tests).
     * @param was_random     optionally reports whether the outcome was
     *        random (state not in a Z eigenstate).
     */
    bool measure_z(int q, bool* was_random = nullptr,
                   const bool* forced_random = nullptr);

    /** Measure-and-conditionally-flip reset to |0>. */
    void reset_z(int q);

    /**
     * Returns the expectation of a Z-product observable over `support`:
     * +1, -1, or 0 if the observable is not in the stabilizer group
     * (random outcome).
     */
    int z_product_expectation(const std::vector<int>& support);

  private:
    bool xbit(int row, int q) const;
    bool zbit(int row, int q) const;
    void set_xbit(int row, int q, bool v);
    void set_zbit(int row, int q, bool v);
    void rowsum(int h, int i);
    int row_phase_exponent(int h, int i) const;

    int n_;
    int words_;
    std::vector<uint64_t> xs_, zs_;  ///< [row * words_ + w]
    std::vector<uint8_t> r_;         ///< phase bit per row
    Rng rng_;
};

}  // namespace gld

#endif  // GLD_SIM_TABLEAU_SIM_H_
