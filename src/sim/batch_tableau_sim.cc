#include "sim/batch_tableau_sim.h"

namespace gld {

BatchTableauSim::BatchTableauSim(const CssCode& code, const RoundCircuit& rc,
                                 const NoiseParams& np, uint64_t seed,
                                 int batch_words, NoiseSampling noise_sampling)
    // Same seed derivation shape as TableauLeakSim: the driver's noise
    // draws come from split(0) of the one seed, the tableaux's random
    // projection outcomes from per-lane splits under split(1) — disjoint
    // streams, one seed fixes the whole batch sequence.
    : BatchLeakageDriverSim(code, rc, np,
                            Rng(Rng(seed).split(0).next_u64()), batch_words,
                            noise_sampling)
{
    const int max_lanes = driver().n_words() * kBatchLanes;
    Rng tab_master = Rng(seed).split(1);
    tabs_.reserve(static_cast<size_t>(max_lanes));
    for (int l = 0; l < max_lanes; ++l)
        tabs_.emplace_back(
            code.n_qubits(),
            tab_master.split(static_cast<uint64_t>(l)).next_u64());
}

void
BatchTableauSim::reset_for_block(uint64_t seed)
{
    // Driver first (its reset_state pass re-identities the tableaux but
    // keeps their streams), then reseed each lane's projection stream —
    // after both, every lane is exactly a fresh construction's.
    driver_.reset_for_block(Rng(Rng(seed).split(0).next_u64()));
    Rng tab_master = Rng(seed).split(1);
    for (size_t l = 0; l < tabs_.size(); ++l)
        tabs_[l].reseed(tab_master.split(static_cast<uint64_t>(l)).next_u64());
}

void
BatchTableauSim::reset_state()
{
    // reset_all keeps each lane's projection stream running (scalar
    // contract), so a sequence of batches is deterministic from the seed.
    // Every lane resets — including padding lanes of a partial batch —
    // so lane l's tableau history depends only on the batch count, never
    // on earlier batches' widths.
    for (TableauSim& t : tabs_)
        t.reset_all();
}

void
BatchTableauSim::apply_pauli(int q, const LaneMask* xs, const LaneMask* zs)
{
    const int W = driver().n_words();
    for_each_lane(xs, W, [&](int l) { tabs_[static_cast<size_t>(l)].x(q); });
    for_each_lane(zs, W, [&](int l) { tabs_[static_cast<size_t>(l)].z(q); });
}

void
BatchTableauSim::coherent_cnot(int control, int target,
                               const LaneMask* lanes)
{
    for_each_lane(lanes, driver().n_words(), [&](int l) {
        tabs_[static_cast<size_t>(l)].cnot(control, target);
    });
}

void
BatchTableauSim::hadamard(int q, const LaneMask* lanes)
{
    for_each_lane(lanes, driver().n_words(),
                  [&](int l) { tabs_[static_cast<size_t>(l)].h(q); });
}

void
BatchTableauSim::reset_z(int q, const LaneMask* lanes)
{
    for_each_lane(lanes, driver().n_words(),
                  [&](int l) { tabs_[static_cast<size_t>(l)].reset_z(q); });
}

void
BatchTableauSim::measure_z(int q, LaneMask* out)
{
    // Measure EVERY active lane — the contract permits collapsing lanes
    // whose outcome the driver will discard (leaked lanes), and measuring
    // unconditionally keeps each lane's projection-stream draw count a
    // function of the circuit alone.
    const int W = driver().n_words();
    const int n = driver().n_lanes();
    for (int w = 0; w * kBatchLanes < n; ++w) {
        const int base = w * kBatchLanes;
        const int lim =
            n - base < kBatchLanes ? n - base : kBatchLanes;
        LaneMask m = 0;
        for (int b = 0; b < lim; ++b) {
            if (tabs_[static_cast<size_t>(base + b)].measure_z(q))
                m |= 1ull << b;
        }
        out[w] = m;
    }
    for (int w = (n + kBatchLanes - 1) / kBatchLanes; w < W; ++w)
        out[w] = 0;
}

void
BatchTableauSim::park_leaked(int q, const LaneMask* lanes)
{
    // Collapse the departing qubit in Z per lane, exactly like the scalar
    // exact backend, so each remaining stabilizer state stays well-defined
    // while the qubit sits in |2>.
    for_each_lane(lanes, driver().n_words(), [&](int l) {
        tabs_[static_cast<size_t>(l)].measure_z(q);
    });
}

}  // namespace gld
