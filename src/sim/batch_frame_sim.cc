#include "sim/batch_frame_sim.h"

#include <algorithm>

namespace gld {

BatchFrameSim::BatchFrameSim(const CssCode& code, const RoundCircuit& rc,
                             const NoiseParams& np, uint64_t seed,
                             int batch_words, NoiseSampling noise_sampling)
    // Same master stream as LeakFrameSim(seed): under lockstep sampling
    // lane l of batch b is bit-identical to the scalar frame backend's
    // shot (64*K*b + l), at every batch width K.  Sparse sampling derives
    // its event stream from the same master but draws a different
    // sequence (its own RNG contract; qualified statistically).
    : BatchLeakageDriverSim(code, rc, np, Rng(seed), batch_words,
                            noise_sampling),
      words_(driver().n_words()),
      fx_(static_cast<size_t>(code.n_qubits()) *
              static_cast<size_t>(words_),
          0),
      fz_(fx_.size(), 0)
{
}

void
BatchFrameSim::reset_state()
{
    std::fill(fx_.begin(), fx_.end(), 0);
    std::fill(fz_.begin(), fz_.end(), 0);
}

void
BatchFrameSim::apply_pauli(int q, const LaneMask* xs, const LaneMask* zs)
{
    const size_t base = static_cast<size_t>(q) * static_cast<size_t>(words_);
    for (int w = 0; w < words_; ++w) {
        fx_[base + static_cast<size_t>(w)] ^= xs[w];
        fz_[base + static_cast<size_t>(w)] ^= zs[w];
    }
}

void
BatchFrameSim::coherent_cnot(int control, int target, const LaneMask* lanes)
{
    // X copies c->t, Z copies t->c — in the selected lanes only.
    const size_t cb =
        static_cast<size_t>(control) * static_cast<size_t>(words_);
    const size_t tb =
        static_cast<size_t>(target) * static_cast<size_t>(words_);
    for (int w = 0; w < words_; ++w) {
        const size_t ws = static_cast<size_t>(w);
        fx_[tb + ws] ^= fx_[cb + ws] & lanes[w];
        fz_[cb + ws] ^= fz_[tb + ws] & lanes[w];
    }
}

void
BatchFrameSim::hadamard(int q, const LaneMask* lanes)
{
    // Swap the X and Z bits of the selected lanes.
    const size_t base = static_cast<size_t>(q) * static_cast<size_t>(words_);
    for (int w = 0; w < words_; ++w) {
        const size_t i = base + static_cast<size_t>(w);
        const LaneMask diff = (fx_[i] ^ fz_[i]) & lanes[w];
        fx_[i] ^= diff;
        fz_[i] ^= diff;
    }
}

void
BatchFrameSim::reset_z(int q, const LaneMask* lanes)
{
    const size_t base = static_cast<size_t>(q) * static_cast<size_t>(words_);
    for (int w = 0; w < words_; ++w) {
        fx_[base + static_cast<size_t>(w)] &= ~lanes[w];
        fz_[base + static_cast<size_t>(w)] &= ~lanes[w];
    }
}

void
BatchFrameSim::measure_z(int q, LaneMask* out)
{
    const size_t base = static_cast<size_t>(q) * static_cast<size_t>(words_);
    for (int w = 0; w < words_; ++w)
        out[w] = fx_[base + static_cast<size_t>(w)];
}

void
BatchFrameSim::park_leaked(int /*q*/, const LaneMask* /*lanes*/)
{
    // A leaked lane's frame freezes in place, exactly like the scalar
    // frame backend: the driver routes no coherent gates at it.
}

}  // namespace gld
