#include "sim/batch_frame_sim.h"

namespace gld {

BatchFrameSim::BatchFrameSim(const CssCode& code, const RoundCircuit& rc,
                             const NoiseParams& np, uint64_t seed)
    // Same master stream as LeakFrameSim(seed): lane k of batch b is
    // bit-identical to the scalar frame backend's shot (64*b + k).
    : BatchLeakageDriverSim(code, rc, np, Rng(seed)),
      fx_(static_cast<size_t>(code.n_qubits()), 0),
      fz_(static_cast<size_t>(code.n_qubits()), 0)
{
}

void
BatchFrameSim::reset_state()
{
    std::fill(fx_.begin(), fx_.end(), 0);
    std::fill(fz_.begin(), fz_.end(), 0);
}

void
BatchFrameSim::apply_pauli(int q, LaneMask xs, LaneMask zs)
{
    fx_[static_cast<size_t>(q)] ^= xs;
    fz_[static_cast<size_t>(q)] ^= zs;
}

void
BatchFrameSim::coherent_cnot(int control, int target, LaneMask lanes)
{
    // X copies c->t, Z copies t->c — in the selected lanes only.
    fx_[static_cast<size_t>(target)] ^=
        fx_[static_cast<size_t>(control)] & lanes;
    fz_[static_cast<size_t>(control)] ^=
        fz_[static_cast<size_t>(target)] & lanes;
}

void
BatchFrameSim::hadamard(int q, LaneMask lanes)
{
    // Swap the X and Z bits of the selected lanes.
    const LaneMask diff =
        (fx_[static_cast<size_t>(q)] ^ fz_[static_cast<size_t>(q)]) & lanes;
    fx_[static_cast<size_t>(q)] ^= diff;
    fz_[static_cast<size_t>(q)] ^= diff;
}

void
BatchFrameSim::reset_z(int q, LaneMask lanes)
{
    fx_[static_cast<size_t>(q)] &= ~lanes;
    fz_[static_cast<size_t>(q)] &= ~lanes;
}

LaneMask
BatchFrameSim::measure_z(int q)
{
    return fx_[static_cast<size_t>(q)];
}

void
BatchFrameSim::park_leaked(int /*q*/, LaneMask /*lanes*/)
{
    // A leaked lane's frame freezes in place, exactly like the scalar
    // frame backend: the driver routes no coherent gates at it.
}

}  // namespace gld
