#include "sim/simulator.h"

#include <cstdlib>
#include <stdexcept>

#include "sim/frame_sim.h"
#include "sim/tableau_leak_sim.h"

namespace gld {

const char*
backend_name(SimBackend backend)
{
    switch (backend) {
      case SimBackend::kFrame:
        return "frame";
      case SimBackend::kTableau:
        return "tableau";
    }
    throw std::runtime_error("backend_name: invalid SimBackend value");
}

SimBackend
backend_from_name(const std::string& name)
{
    if (name == "frame")
        return SimBackend::kFrame;
    if (name == "tableau")
        return SimBackend::kTableau;
    throw std::runtime_error("unknown simulation backend \"" + name +
                             "\" (want frame or tableau)");
}

SimBackend
backend_from_env()
{
    const char* s = std::getenv("GLD_BACKEND");
    if (s == nullptr || s[0] == '\0')
        return SimBackend::kFrame;
    return backend_from_name(s);
}

std::unique_ptr<Simulator>
make_simulator(SimBackend backend, const CssCode& code,
               const RoundCircuit& rc, const NoiseParams& np, uint64_t seed)
{
    switch (backend) {
      case SimBackend::kFrame:
        return std::make_unique<LeakFrameSim>(code, rc, np, seed);
      case SimBackend::kTableau:
        return std::make_unique<TableauLeakSim>(code, rc, np, seed);
    }
    throw std::runtime_error("make_simulator: invalid SimBackend value");
}

}  // namespace gld
