#include "sim/simulator.h"

#include <cstdlib>
#include <stdexcept>

#include "sim/batch_frame_sim.h"
#include "sim/batch_tableau_sim.h"
#include "sim/frame_sim.h"
#include "sim/tableau_leak_sim.h"

namespace gld {

namespace {

/**
 * The one backend table: enum value + canonical name + RNG contract id.
 * backend_name, backend_from_name, known_backends, backend_rng_contract
 * and make_simulator all derive from it, so a new backend registers
 * exactly once and every error message lists it automatically.
 *
 * rng_contract groups backends that replay the SAME (seed, stream,
 * block) draw sequence: frame and batch_frame share contract 0 (lane k
 * of a batch is scalar shot k draw for draw, at every batch width), so
 * their Metrics are bit-identical by construction and the verify referee
 * compares them bit-exactly.  The tableau engine draws its own
 * measurement-collapse randomness (contract 1); batch_tableau draws
 * per-lane collapse randomness from yet another derivation (contract 2)
 * — each agrees with the others only statistically.
 *
 * sparse_rng_contract is the contract id the backend moves to under
 * NoiseSampling::kSparse: the batch engines switch to an event-driven
 * scalar stream per (stream, block) work unit (contracts 3 and 4 — a
 * draw sequence no lockstep engine replays), while the scalar engines
 * ignore the knob and keep their lockstep ids.
 */
struct BackendEntry {
    SimBackend backend;
    const char* name;
    int rng_contract;
    int sparse_rng_contract;
};

constexpr BackendEntry kBackendTable[] = {
    {SimBackend::kFrame, "frame", 0, 0},
    {SimBackend::kTableau, "tableau", 1, 1},
    {SimBackend::kBatchFrame, "batch_frame", 0, 3},
    {SimBackend::kBatchTableau, "batch_tableau", 2, 4},
};

/**
 * The one noise-sampling table, mirroring kBackendTable: enum value +
 * canonical name.  noise_sampling_name / _from_name / _from_env all
 * derive from it.
 */
struct NoiseSamplingEntry {
    NoiseSampling sampling;
    const char* name;
};

constexpr NoiseSamplingEntry kNoiseSamplingTable[] = {
    {NoiseSampling::kLockstep, "lockstep"},
    {NoiseSampling::kSparse, "sparse"},
};

[[noreturn]] void
throw_unknown_backend(const std::string& what)
{
    throw std::runtime_error(what + " (known backends: " +
                             known_backend_names() + ")");
}

[[noreturn]] void
throw_unknown_sampling(const std::string& what)
{
    throw std::runtime_error(what + " (known noise sampling modes: " +
                             known_noise_sampling_names() + ")");
}

}  // namespace

void
LeakageOracle::add_leak_occupancy(uint64_t* data_row, int n_data,
                                  uint64_t* check_row, int n_checks) const
{
    for (int q = 0; q < n_data; ++q) {
        if (data_leaked(q))
            ++data_row[q];
    }
    for (int c = 0; c < n_checks; ++c) {
        if (check_leaked(c))
            ++check_row[c];
    }
}

const char*
backend_name(SimBackend backend)
{
    for (const BackendEntry& e : kBackendTable) {
        if (e.backend == backend)
            return e.name;
    }
    throw_unknown_backend("invalid SimBackend value " +
                          std::to_string(static_cast<int>(backend)));
}

const std::vector<SimBackend>&
known_backends()
{
    static const std::vector<SimBackend> all = [] {
        std::vector<SimBackend> v;
        for (const BackendEntry& e : kBackendTable)
            v.push_back(e.backend);
        return v;
    }();
    return all;
}

std::string
known_backend_names()
{
    std::string names;
    for (const BackendEntry& e : kBackendTable) {
        if (!names.empty())
            names += ", ";
        names += e.name;
    }
    return names;
}

SimBackend
backend_from_name(const std::string& name)
{
    for (const BackendEntry& e : kBackendTable) {
        if (name == e.name)
            return e.backend;
    }
    throw_unknown_backend("unknown simulation backend \"" + name + "\"");
}

int
backend_rng_contract(SimBackend backend)
{
    for (const BackendEntry& e : kBackendTable) {
        if (e.backend == backend)
            return e.rng_contract;
    }
    throw_unknown_backend("invalid SimBackend value " +
                          std::to_string(static_cast<int>(backend)));
}

int
backend_rng_contract(SimBackend backend, NoiseSampling sampling)
{
    for (const BackendEntry& e : kBackendTable) {
        if (e.backend == backend) {
            return sampling == NoiseSampling::kSparse ? e.sparse_rng_contract
                                                      : e.rng_contract;
        }
    }
    throw_unknown_backend("invalid SimBackend value " +
                          std::to_string(static_cast<int>(backend)));
}

const char*
noise_sampling_name(NoiseSampling sampling)
{
    for (const NoiseSamplingEntry& e : kNoiseSamplingTable) {
        if (e.sampling == sampling)
            return e.name;
    }
    throw_unknown_sampling("invalid NoiseSampling value " +
                           std::to_string(static_cast<int>(sampling)));
}

std::string
known_noise_sampling_names()
{
    std::string names;
    for (const NoiseSamplingEntry& e : kNoiseSamplingTable) {
        if (!names.empty())
            names += ", ";
        names += e.name;
    }
    return names;
}

NoiseSampling
noise_sampling_from_name(const std::string& name)
{
    for (const NoiseSamplingEntry& e : kNoiseSamplingTable) {
        if (name == e.name)
            return e.sampling;
    }
    throw_unknown_sampling("unknown noise sampling mode \"" + name + "\"");
}

NoiseSampling
noise_sampling_from_env()
{
    const char* s = std::getenv("GLD_NOISE_SAMPLING");
    if (s == nullptr || s[0] == '\0')
        return NoiseSampling::kLockstep;
    try {
        return noise_sampling_from_name(s);
    } catch (const std::runtime_error&) {
        throw_unknown_sampling("GLD_NOISE_SAMPLING=\"" + std::string(s) +
                               "\" names no noise sampling mode");
    }
}

SimBackend
backend_from_env()
{
    const char* s = std::getenv("GLD_BACKEND");
    if (s == nullptr || s[0] == '\0')
        return SimBackend::kFrame;
    try {
        return backend_from_name(s);
    } catch (const std::runtime_error&) {
        throw_unknown_backend("GLD_BACKEND=\"" + std::string(s) +
                              "\" names no simulation backend");
    }
}

double
backend_cost_factor(SimBackend backend, int n_qubits)
{
    switch (backend) {
      case SimBackend::kFrame:
        return 1.0;
      case SimBackend::kTableau: {
        // CHP measurement cost: 2n tableau rows x n/64 bit-plane words,
        // against the frame engine's O(1) per measured bit.  Floor at 1:
        // tiny codes are never cheaper than the frame engine.
        const double n = static_cast<double>(n_qubits);
        const double factor = n * n / 64.0;
        return factor < 1.0 ? 1.0 : factor;
      }
      case SimBackend::kBatchFrame:
        // 64 shots per word: one lockstep driver pass serves a whole
        // shot block, so a shot costs ~1/64 of a scalar frame shot (the
        // per-lane noise draws keep it from being exactly 1/64; the
        // benchmark BM_BackendThroughput measures the real ratio).
        return 1.0 / 64.0;
      case SimBackend::kBatchTableau: {
        // Per lane the state cost is the scalar tableau's O(n^2/64); the
        // batch only amortizes the round's noise machinery, which the
        // tableau cost dwarfs on all but the smallest codes.
        const double n = static_cast<double>(n_qubits);
        const double factor = n * n / 64.0;
        return factor < 1.0 ? 1.0 : factor;
      }
    }
    throw_unknown_backend("invalid SimBackend value " +
                          std::to_string(static_cast<int>(backend)));
}

int
batch_words_from_env()
{
    const char* s = std::getenv("GLD_BATCH_WORDS");
    if (s == nullptr || s[0] == '\0')
        return 1;
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || v < 1 ||
        v > static_cast<long>(kMaxBatchWords)) {
        throw std::runtime_error(
            "GLD_BATCH_WORDS=\"" + std::string(s) +
            "\" is not a batch width in [1, " +
            std::to_string(kMaxBatchWords) + "]");
    }
    return static_cast<int>(v);
}

std::unique_ptr<Simulator>
make_simulator(SimBackend backend, const CssCode& code,
               const RoundCircuit& rc, const NoiseParams& np, uint64_t seed,
               int batch_words, NoiseSampling noise_sampling)
{
    // Out-of-range widths throw for every backend (not just the batch
    // ones), so a bad config fails identically no matter the backend.
    if (batch_words < 1 || batch_words > kMaxBatchWords) {
        throw std::invalid_argument("make_simulator: batch_words " +
                                    std::to_string(batch_words) +
                                    " outside [1, " +
                                    std::to_string(kMaxBatchWords) + "]");
    }
    switch (backend) {
      case SimBackend::kFrame:
        return std::make_unique<LeakFrameSim>(code, rc, np, seed);
      case SimBackend::kTableau:
        return std::make_unique<TableauLeakSim>(code, rc, np, seed);
      case SimBackend::kBatchFrame:
        return std::make_unique<BatchFrameSim>(code, rc, np, seed,
                                               batch_words, noise_sampling);
      case SimBackend::kBatchTableau:
        return std::make_unique<BatchTableauSim>(
            code, rc, np, seed, batch_words, noise_sampling);
    }
    throw_unknown_backend("make_simulator: invalid SimBackend value " +
                          std::to_string(static_cast<int>(backend)));
}

}  // namespace gld
