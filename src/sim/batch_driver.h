#ifndef GLD_SIM_BATCH_DRIVER_H_
#define GLD_SIM_BATCH_DRIVER_H_

#include <cstdint>
#include <vector>

#include "circuit/round_circuit.h"
#include "codes/css_code.h"
#include "noise/noise_model.h"
#include "sim/leakage_driver.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace gld {

/** Lanes per batch word: 64 Monte-Carlo shots packed one per bit. */
constexpr int kBatchLanes = 64;

/** Max lanes of one batch (kMaxBatchWords words of kBatchLanes shots). */
constexpr int kMaxBatchLanes = kMaxBatchWords * kBatchLanes;

/**
 * One bit per lane; bit l of word w set means "lane w*64+l participates".
 * A batch driver built with `batch_words` W addresses lanes through
 * W-word spans (`const LaneMask*` of W words); W == 1 is the classic
 * one-word batch.
 */
using LaneMask = uint64_t;

/** Invokes f(lane) for every set bit of the single word m, ascending. */
template <typename F>
inline void
for_each_lane(LaneMask m, F&& f)
{
    while (m != 0) {
        f(__builtin_ctzll(m));
        m &= m - 1;
    }
}

/**
 * Invokes f(global_lane) for every set bit of the n_words-word span m,
 * ascending (global lane = word*64 + bit).
 */
template <typename F>
inline void
for_each_lane(const LaneMask* m, int n_words, F&& f)
{
    for (int w = 0; w < n_words; ++w) {
        LaneMask mw = m[w];
        const int base = w * kBatchLanes;
        while (mw != 0) {
            f(base + __builtin_ctzll(mw));
            mw &= mw - 1;
        }
    }
}

/** OR of an n_words-word lane span (nonzero iff any lane is set). */
inline LaneMask
lanes_any(const LaneMask* m, int n_words)
{
    LaneMask any = 0;
    for (int w = 0; w < n_words; ++w)
        any |= m[w];
    return any;
}

/** Zeroes an n_words-word lane span. */
inline void
lanes_zero(LaneMask* m, int n_words)
{
    for (int w = 0; w < n_words; ++w)
        m[w] = 0;
}

/** Tests global lane l of a span. */
inline bool
lane_bit(const LaneMask* m, int l)
{
    return (m[l >> 6] >> (l & 63)) & 1u;
}

/** Sets global lane l of a span. */
inline void
set_lane_bit(LaneMask* m, int l)
{
    m[l >> 6] |= 1ull << (l & 63);
}

/**
 * Up to kMaxBatchLanes xoshiro256** streams stored structure-of-arrays,
 * one per lane.
 *
 * Lane l's stream is seeded from an Rng (master.split(shot)) and steps
 * with the identical update rule, so the lane's draw sequence is
 * bit-for-bit the scalar driver's — while `step_all`/`step_masked`
 * advance every lane in one pass the compiler can vectorize.  This is
 * where the batch backend's throughput comes from: the noise draws are
 * ~all of a frame simulator's per-shot cost, and here K*64 of them cost
 * a few wide ops instead of K*64 function calls.
 *
 * The Bernoulli fast path compares the 53-bit mantissa draw against
 * ceil(p * 2^53): exactly equivalent to Rng::bernoulli's
 * `uniform() < p` (the scaling by 2^53 is a power of two, so both sides
 * of the comparison are exact), with no int->double conversion per lane.
 */
class LaneRngBank {
  public:
    /** Lane l's stream := a bit-identical copy of `rng`'s. */
    void seed_lane(int l, const Rng& rng)
    {
        uint64_t s[4];
        rng.export_state(s);
        s0_[l] = s[0];
        s1_[l] = s[1];
        s2_[l] = s[2];
        s3_[l] = s[3];
    }

    /**
     * Advances lanes [0, n) one step and writes lane l's draw to out[l].
     * Inactive lanes < n advance too — harmless, they are reseeded at
     * the next batch and their draws are never observed.
     */
    void step_all(int n, uint64_t* __restrict__ out)
    {
        // Same update as step_lane, with the x*5 / x*9 multiplies spelled
        // as shift-adds: SSE2 has no 64-bit multiply, and gcc refuses to
        // vectorize the loop with them present.
        for (int l = 0; l < n; ++l) {
            const uint64_t m5 = s1_[l] + (s1_[l] << 2);
            const uint64_t r7 = rotl(m5, 7);
            out[l] = r7 + (r7 << 3);
            const uint64_t t = s1_[l] << 17;
            s2_[l] ^= s0_[l];
            s3_[l] ^= s1_[l];
            s1_[l] ^= s2_[l];
            s0_[l] ^= s3_[l];
            s2_[l] ^= t;
            s3_[l] = rotl(s3_[l], 45);
        }
    }

    /**
     * Advances ONLY the lanes of the `mask` span within [0, n) (out of
     * other lanes is 0).  Used at sites where some active lanes must not
     * draw (e.g. a reset pulse skips leaked lanes), so their streams
     * stay scalar-aligned.  `mask` spans ceil(n/64) words.
     */
    void step_masked(int n, const LaneMask* __restrict__ mask,
                     uint64_t* __restrict__ out)
    {
        for (int w = 0; w * kBatchLanes < n; ++w) {
            const LaneMask mw = mask[w];
            const int base = w * kBatchLanes;
            const int lim =
                n - base < kBatchLanes ? n - base : kBatchLanes;
            for (int b = 0; b < lim; ++b) {
                const int l = base + b;
                const uint64_t keep =
                    static_cast<uint64_t>(0) - ((mw >> b) & 1u);
                const uint64_t m5 = s1_[l] + (s1_[l] << 2);
                const uint64_t r7 = rotl(m5, 7);
                const uint64_t r = r7 + (r7 << 3);
                const uint64_t t = s1_[l] << 17;
                uint64_t n2 = s2_[l] ^ s0_[l];
                uint64_t n3 = s3_[l] ^ s1_[l];
                const uint64_t n1 = s1_[l] ^ n2;
                const uint64_t n0 = s0_[l] ^ n3;
                n2 ^= t;
                n3 = rotl(n3, 45);
                s0_[l] ^= (s0_[l] ^ n0) & keep;
                s1_[l] ^= (s1_[l] ^ n1) & keep;
                s2_[l] ^= (s2_[l] ^ n2) & keep;
                s3_[l] ^= (s3_[l] ^ n3) & keep;
                out[l] = r & keep;
            }
        }
    }

    /**
     * Fused step + Bernoulli compare: advances lanes [0, n), writes the
     * 0/1 fire flag of lane l to bits[l] (fire iff mantissa draw <
     * thresh, branchless via the subtraction sign bit) and returns the
     * OR of all flags — one pass, no draw-word round trip through
     * memory.  This is the single hottest loop of the batch backend.
     */
    uint64_t step_compare_all(int n, uint64_t thresh,
                              uint64_t* __restrict__ bits)
    {
        uint64_t any = 0;
        for (int l = 0; l < n; ++l) {
            const uint64_t m5 = s1_[l] + (s1_[l] << 2);
            const uint64_t r7 = rotl(m5, 7);
            const uint64_t r = r7 + (r7 << 3);
            const uint64_t t = s1_[l] << 17;
            s2_[l] ^= s0_[l];
            s3_[l] ^= s1_[l];
            s1_[l] ^= s2_[l];
            s0_[l] ^= s3_[l];
            s2_[l] ^= t;
            s3_[l] = rotl(s3_[l], 45);
            bits[l] = ((r >> 11) - thresh) >> 63;
            any |= bits[l];
        }
        return any;
    }

    /**
     * Fused DOUBLE site: per lane, draw-and-compare against t1 then t2
     * in one pass — the state round-trips memory once for two sites.
     * Per-lane draw order is site1 then site2, exactly the scalar
     * order; callers repair fired payload lanes via unstep_lane.
     */
    void step_compare2(int n, uint64_t t1, uint64_t t2,
                       uint64_t* __restrict__ b1,
                       uint64_t* __restrict__ b2, uint64_t* any1,
                       uint64_t* any2)
    {
        uint64_t a1 = 0, a2 = 0;
        for (int l = 0; l < n; ++l) {
            uint64_t s0 = s0_[l], s1 = s1_[l], s2 = s2_[l], s3 = s3_[l];
            const uint64_t r1 = out_scramble(s1);
            advance(s0, s1, s2, s3);
            const uint64_t r2 = out_scramble(s1);
            advance(s0, s1, s2, s3);
            s0_[l] = s0;
            s1_[l] = s1;
            s2_[l] = s2;
            s3_[l] = s3;
            b1[l] = ((r1 >> 11) - t1) >> 63;
            b2[l] = ((r2 >> 11) - t2) >> 63;
            a1 |= b1[l];
            a2 |= b2[l];
        }
        *any1 = a1;
        *any2 = a2;
    }

    /** Fused TRIPLE site (one memory round trip for three draws). */
    void step_compare3(int n, uint64_t t1, uint64_t t2, uint64_t t3,
                       uint64_t* __restrict__ b1,
                       uint64_t* __restrict__ b2,
                       uint64_t* __restrict__ b3, uint64_t* any1,
                       uint64_t* any2, uint64_t* any3)
    {
        uint64_t a1 = 0, a2 = 0, a3 = 0;
        for (int l = 0; l < n; ++l) {
            uint64_t s0 = s0_[l], s1 = s1_[l], s2 = s2_[l], s3 = s3_[l];
            const uint64_t r1 = out_scramble(s1);
            advance(s0, s1, s2, s3);
            const uint64_t r2 = out_scramble(s1);
            advance(s0, s1, s2, s3);
            const uint64_t r3 = out_scramble(s1);
            advance(s0, s1, s2, s3);
            s0_[l] = s0;
            s1_[l] = s1;
            s2_[l] = s2;
            s3_[l] = s3;
            b1[l] = ((r1 >> 11) - t1) >> 63;
            b2[l] = ((r2 >> 11) - t2) >> 63;
            b3[l] = ((r3 >> 11) - t3) >> 63;
            a1 |= b1[l];
            a2 |= b2[l];
            a3 |= b3[l];
        }
        *any1 = a1;
        *any2 = a2;
        *any3 = a3;
    }

    /**
     * Exact inverse of one step of lane l's stream (xoshiro256**'s state
     * transition is an invertible linear map).  Used to repair a fired
     * lane after a fused multi-site pass: rewind past the
     * optimistically-taken later draws, insert the payload draw the
     * scalar order demands, then redraw the later sites.
     */
    void unstep_lane(int l)
    {
        // Forward map: a'=a^d^b, b'=b^c^a, c'=c^a^(b<<17),
        // d'=rotl(d^b,45).  Solve back for (a,b,c,d).
        const uint64_t A = s0_[l], B = s1_[l], C = s2_[l], D = s3_[l];
        const uint64_t d1 = rotl(D, 64 - 45);  // rotr 45: d ^ b
        const uint64_t a = A ^ d1;
        const uint64_t y = C ^ B;  // = b ^ (b << 17)
        uint64_t b = y;
        b = y ^ (b << 17);
        b = y ^ (b << 17);
        b = y ^ (b << 17);
        const uint64_t c = b ^ B ^ a;
        s0_[l] = a;
        s1_[l] = b;
        s2_[l] = c;
        s3_[l] = d1 ^ b;
    }

    /** One lane's next_u64 (the rare, lane-divergent paths). */
    uint64_t next_lane(int l) { return step_lane(l); }

    /** Bit-identical to Rng::uniform on lane l's stream. */
    double uniform_lane(int l)
    {
        return static_cast<double>(next_lane(l) >> 11) * 0x1.0p-53;
    }

    /** Bit-identical to Rng::bernoulli on lane l's stream. */
    bool bernoulli_lane(int l, double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform_lane(l) < p;
    }

    /** Bit-identical to Rng::uniform_int on lane l's stream. */
    uint32_t uniform_int_lane(int l, uint32_t n)
    {
        return static_cast<uint32_t>(
            (static_cast<__uint128_t>(next_lane(l)) * n) >> 64);
    }

    /** Bit-identical to Rng::bit on lane l's stream. */
    bool bit_lane(int l) { return (next_lane(l) >> 63) != 0; }

    // Raw SoA state rows, for the batch backend's CPU-dispatched site
    // kernels (batch_driver.cc) — the AVX-512/AVX2 paths run the same
    // update rule on these words with compare-to-mask outputs.
    uint64_t* raw_s0() { return s0_; }
    uint64_t* raw_s1() { return s1_; }
    uint64_t* raw_s2() { return s2_; }
    uint64_t* raw_s3() { return s3_; }

  private:
    static uint64_t rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** The xoshiro256** output function (x*5 rotl 7 *9, as shift-adds). */
    static uint64_t out_scramble(uint64_t s1)
    {
        const uint64_t m5 = s1 + (s1 << 2);
        const uint64_t r7 = rotl(m5, 7);
        return r7 + (r7 << 3);
    }

    /** The xoshiro256** state transition on four local words. */
    static void advance(uint64_t& s0, uint64_t& s1, uint64_t& s2,
                        uint64_t& s3)
    {
        const uint64_t t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = rotl(s3, 45);
    }

    uint64_t step_lane(int l)
    {
        const uint64_t result = rotl(s1_[l] * 5, 7) * 9;
        const uint64_t t = s1_[l] << 17;
        s2_[l] ^= s0_[l];
        s3_[l] ^= s1_[l];
        s1_[l] ^= s2_[l];
        s0_[l] ^= s3_[l];
        s2_[l] ^= t;
        s3_[l] = rotl(s3_[l], 45);
        return result;
    }

    alignas(64) uint64_t s0_[kMaxBatchLanes];
    alignas(64) uint64_t s1_[kMaxBatchLanes];
    alignas(64) uint64_t s2_[kMaxBatchLanes];
    alignas(64) uint64_t s3_[kMaxBatchLanes];
};

/**
 * A Bernoulli rate preprocessed for the lane bank's word-wide draw:
 * `thresh` is ceil(p * 2^53), and the p <= 0 / p >= 1 short-circuits
 * mirror Rng::bernoulli (which consumes NO draw in either case).
 *
 * The sparse (event-driven) sampler adds two kinds of state:
 *  - `inv_log1mp` = 1 / log(1-p), precomputed so a geometric skip is one
 *    log() per EVENT instead of one uniform per (site x lane) position.
 *  - `skip` / `skip_valid`: the persistent geometric countdown carried
 *    across every site drawn at this rate.  Bernoulli positions are iid,
 *    so one countdown per rate over the concatenated (site x lane)
 *    position stream is statistically exact — and it means a quiet site
 *    costs a popcount and a subtraction, zero RNG work.  Only the sparse
 *    sampler touches these fields; lockstep ignores them.
 */
struct LaneRate {
    double p = 0.0;
    uint64_t thresh = 0;
    bool never = true;
    bool always = false;
    double inv_log1mp = 0.0;  ///< 1/log(1-p) (sparse geometric skips)
    uint64_t skip = 0;        ///< positions left before the next event
    bool skip_valid = false;  ///< skip holds a live countdown

    LaneRate() = default;
    explicit LaneRate(double pp) : p(pp)
    {
        never = p <= 0.0;
        always = p >= 1.0;
        if (!never && !always) {
            thresh = static_cast<uint64_t>(__builtin_ceil(p * 0x1.0p53));
            inv_log1mp = 1.0 / __builtin_log1p(-p);
        }
    }
};

/**
 * The word-wide quantum-state interface a batch backend provides to the
 * BatchLeakageDriver: every primitive of StatePrimitives, widened to act
 * on up to batch_words*64 independent shots at once, selected by a
 * K-word lane span.
 *
 * Lane/mask contract:
 *  - Every mask argument and every output is a span of the driver's
 *    n_words() LaneMask words (the width fixed at construction).  Bit l
 *    of word w belongs to lane (shot) w*64+l.  Lanes are independent
 *    shots: a masked op must not couple lanes, and bits outside the mask
 *    must be left untouched.
 *  - Masked ops may receive a mask with no bits set only via apply_pauli
 *    component words (xs or zs may be zero); callers skip fully-empty
 *    calls but are not required to.
 *  - measure_z fills all n_words() words; the driver masks out the lanes
 *    it does not want (leaked lanes' bits are discarded).  An exact
 *    batch backend may collapse all lanes here — discarded lanes'
 *    outcomes are never observed, so this is safe (batch_tableau does
 *    exactly this).
 *  - No primitive may touch the driver's RNG (same determinism contract
 *    as the scalar StatePrimitives).
 */
class BatchStatePrimitives {
  public:
    virtual ~BatchStatePrimitives() = default;

    /** Re-initializes all lanes to |0...0> for a new shot batch. */
    virtual void reset_state() = 0;

    /**
     * Applies X to qubit q in the lanes of `xs` and Z in the lanes of
     * `zs` (both bits set in a lane = Y, as in the scalar encoding).
     */
    virtual void apply_pauli(int q, const LaneMask* xs,
                             const LaneMask* zs) = 0;

    /** The coherent CNOT action in the lanes of `lanes`. */
    virtual void coherent_cnot(int control, int target,
                               const LaneMask* lanes) = 0;

    /** The coherent Hadamard action in the lanes of `lanes`. */
    virtual void hadamard(int q, const LaneMask* lanes) = 0;

    /** Noiseless |0> reset of qubit q in the lanes of `lanes`. */
    virtual void reset_z(int q, const LaneMask* lanes) = 0;

    /**
     * Z-basis readout of qubit q into `out` (n_words() words): bit l of
     * word w is lane w*64+l's outcome flip vs the noiseless reference.
     * Lanes the caller knows to be leaked are masked off by the driver
     * after the fact.
     */
    virtual void measure_z(int q, LaneMask* out) = 0;

    /** Fired when qubit q's leak flag rises 0 -> 1 in the lanes given. */
    virtual void park_leaked(int q, const LaneMask* lanes) = 0;
};

/**
 * The batch execution path of the shared LeakageDriver: the SAME classical
 * leakage semantics (sim/leakage_driver.{h,cc} is the reference
 * implementation), executed for up to batch_words*64 shots in lockstep
 * over a BatchStatePrimitives provider.
 *
 * Determinism contract — the reason this driver can exist at all:
 *  - Lane l owns an independent noise stream, master.split(shot_base + l),
 *    exactly the stream the SCALAR driver uses for its (shot_base + l)-th
 *    shot.  At every decision site the driver walks the active lanes in
 *    ascending order and draws per lane from that lane's stream, in the
 *    same within-shot order as the scalar driver — so each lane's draw
 *    sequence is bit-identical to the scalar backend's corresponding
 *    shot, no matter what the other lanes do.  This holds at EVERY batch
 *    width: lane (w, l) of a K-word batch replays scalar shot w*64+l of
 *    the block draw for draw.
 *  - Control flow is computed per lane into masks; state mutation happens
 *    through word-wide masked primitives (the speedup), but never in a
 *    way the scalar driver could distinguish.
 *
 * Any semantic change to the scalar LeakageDriver MUST be mirrored here;
 * the cross-backend gate (frame vs batch_frame Metrics must be
 * bit-identical at every K, tier-1) is what catches a fork.
 */
class BatchLeakageDriver final {
  public:
    /**
     * @param master the shot-master stream; lane l of batch b draws from
     *        master.split(sum of earlier batch widths + l).  Pass the
     *        SAME master the scalar backend would construct from the seed
     *        and the lane streams line up shot for shot.
     * @param batch_words words per lane span (1 <= K <= kMaxBatchWords);
     *        one batch holds up to batch_words*64 shots.
     * @param noise_sampling lockstep (per-lane streams, the scalar-aligned
     *        default) or sparse (one event stream for the whole batch,
     *        geometric skips over the (site x lane) position space — its
     *        own RNG contract, qualified statistically by verify).
     */
    BatchLeakageDriver(const CssCode& code, const RoundCircuit& rc,
                       const NoiseParams& np, Rng master,
                       BatchStatePrimitives* state, int batch_words,
                       NoiseSampling noise_sampling =
                           NoiseSampling::kLockstep);

    // Non-copyable for the same reason as LeakageDriver: the driver holds
    // the backend's primitives pointer.
    BatchLeakageDriver(const BatchLeakageDriver&) = delete;
    BatchLeakageDriver& operator=(const BatchLeakageDriver&) = delete;

    /**
     * Starts a new batch of `n_lanes` shots (1 <= n_lanes <=
     * n_words()*64): clears flags/history/state, actives lanes
     * [0, n_lanes) and reseeds lane l with master.split(shots_started +
     * l).  Lanes >= n_lanes are padding: masked off everywhere and never
     * drawing — a partial batch's mask boundary may fall mid-span (a
     * full low word, a partial high word, empty words above).
     */
    void reset_shot_batch(int n_lanes);

    /**
     * Restores the driver to its just-constructed state under a NEW
     * master stream: flags/history/scratch cleared, the shot counter
     * rewound to 0, every lane reseeded with master.split(0) and lane 0
     * active (the post-construction probing state), and the backend
     * state re-initialized.  The simulator-reuse path resets a cached
     * driver per scheduler block with the block's own master, making
     * reuse bit-identical to fresh construction at every K.
     */
    void reset_for_block(Rng master);

    /** Words per lane span (the K of this driver). */
    int n_words() const { return words_; }
    /** Lanes currently active (padding excluded), n_words() words. */
    const LaneMask* active() const { return active_; }
    int n_lanes() const { return n_lanes_; }

    /** Raises the leak flag of qubit q in the `lanes` span. */
    void set_leak(int q, const LaneMask* lanes);
    /** Raises check c's ancilla leak flag in the `lanes` span. */
    void set_check_leak(int c, const LaneMask* lanes)
    {
        set_leak(code_->ancilla_of(c), lanes);
    }
    /** Clears qubit q's leak flag in the `lanes` span. */
    void clear_leak(int q, const LaneMask* lanes)
    {
        LaneMask* lw = &leaked_[static_cast<size_t>(q) *
                                static_cast<size_t>(words_)];
        for (int w = 0; w < words_; ++w)
            lw[w] &= ~lanes[w];
    }

    // Per-lane (one-hot) variants of the flag ops, for the scalar
    // adapters and the per-lane LRC gadgets.
    void set_leak_lane(int q, int lane);
    void set_check_leak_lane(int c, int lane)
    {
        set_leak_lane(code_->ancilla_of(c), lane);
    }
    void clear_leak_lane(int q, int lane)
    {
        leaked_[static_cast<size_t>(q) * static_cast<size_t>(words_) +
                static_cast<size_t>(lane >> 6)] &= ~(1ull << (lane & 63));
    }

    /** Leak-flag span of qubit q (n_words() words, bit per lane). */
    const LaneMask* leaked(int q) const
    {
        return &leaked_[static_cast<size_t>(q) *
                        static_cast<size_t>(words_)];
    }
    /**
     * Leak-flag words of every qubit, data first then ancillas: entry
     * q*n_words()+w is word w of qubit q's span.
     */
    const LaneMask* leaked_words() const { return leaked_.data(); }

    // --- Per-lane ground truth (the runner's accounting view). ---
    bool data_leaked(int lane, int q) const
    {
        return lane_bit(leaked(q), lane);
    }
    bool check_leaked(int lane, int c) const
    {
        return lane_bit(leaked(code_->ancilla_of(c)), lane);
    }
    int n_data_leaked(int lane) const;
    int n_check_leaked(int lane) const;

    /**
     * A scalar LeakageOracle view of one lane — what oracle policies and
     * the runner's speculation accounting read for that lane's shot.
     */
    const LeakageOracle& lane_oracle(int lane) const
    {
        return lane_oracles_[static_cast<size_t>(lane)];
    }

    /**
     * Applies each lane's scheduled LRC gadgets, then executes one noisy
     * syndrome-extraction round for every active lane in lockstep.
     * `lane_lrcs` must have at least n_lanes() entries; `out` is resized
     * to n_lanes() per-lane RoundResults (storage reused across rounds).
     */
    void run_round_batch(const std::vector<LrcSchedule>& lane_lrcs,
                         std::vector<RoundResult>* out);

    /**
     * Transversal Z-basis readout of all data qubits for every active
     * lane; out is resized to n_lanes() per-lane flip vectors.
     */
    void final_data_measure_batch(std::vector<std::vector<uint8_t>>* out);

    /** The LRC partner ancilla (check index) used for data qubit q. */
    int lrc_partner(int q) const
    {
        return lrc_partner_[static_cast<size_t>(q)];
    }

    const NoiseParams& noise() const { return np_; }

    /** The Bernoulli draw contract this driver runs under. */
    NoiseSampling sampling() const
    {
        return sparse_ ? NoiseSampling::kSparse : NoiseSampling::kLockstep;
    }

  private:
    /** LeakageOracle adapter for one lane of the batch driver. */
    class LaneOracle final : public LeakageOracle {
      public:
        void bind(const BatchLeakageDriver* d, int lane)
        {
            d_ = d;
            lane_ = lane;
        }
        bool data_leaked(int q) const override
        {
            return d_->data_leaked(lane_, q);
        }
        bool check_leaked(int c) const override
        {
            return d_->check_leaked(lane_, c);
        }
        int n_data_leaked() const override
        {
            return d_->n_data_leaked(lane_);
        }
        int n_check_leaked() const override
        {
            return d_->n_check_leaked(lane_);
        }

      private:
        const BatchLeakageDriver* d_ = nullptr;
        int lane_ = 0;
    };

    void apply_lrc_data(int q, int lane);
    void apply_lrc_check(int c, int lane);

    // The hot per-op helpers are templated on the batch width: WT > 0 is
    // a compile-time word count (the W loops unroll away — at the
    // common W=1 every span op is straight-line single-word code), WT ==
    // 0 reads the runtime words_.  run_round_batch dispatches once per
    // round on words_; everything below inlines into that instantiation.
    template <int WT> void depolarize1(int q);
    template <int WT> void depolarize2(int q0, int q1);
    template <int WT> void leak_maybe(int q);
    template <int WT> void cnot(int control, int target);
    template <int WT> void set_leak_t(int q, const LaneMask* lanes);

    /**
     * One word-wide Bernoulli site: every lane of the `mask` span draws
     * once from its own stream (lanes outside `mask` do not advance) and
     * the fired lanes are written to the `out` span.  Returns the OR of
     * the out words (nonzero iff any lane fired).  Bit-identical per
     * lane to Rng::bernoulli, including the no-draw p<=0 / p>=1
     * short-circuits.
     */
    template <int WT>
    LaneMask bernoulli_mask(LaneRate& rate, const LaneMask* mask,
                            LaneMask* out);

    /**
     * The event-driven Bernoulli site (NoiseSampling::kSparse): instead
     * of advancing every lane's stream, walk `rate`'s persistent
     * geometric countdown over the popcount(mask) candidate positions of
     * this site (ascending global lane order) and set only the firing
     * lanes in `out`.  A site where the countdown does not expire costs
     * ZERO draws; each event costs one uniform (the next skip).  The
     * countdown carries across sites, rounds and shots of one (stream,
     * block) work unit — events depend only on (seed, stream, block), so
     * results stay bit-identical across thread counts and shard splits.
     */
    template <int WT>
    LaneMask sparse_bernoulli_mask(LaneRate& rate, const LaneMask* mask,
                                   LaneMask* out);

    /** Next geometric skip (# of non-events before the next event). */
    uint64_t sparse_geometric(const LaneRate& rate);

    /** Global lane index of the k-th set bit of a span (k < popcount). */
    static int kth_set_lane(const LaneMask* mask, int n_words, uint64_t k);

    // Payload draws (Pauli choice, transport direction, readout coin...)
    // after a fire decision: lockstep takes them from the firing lane's
    // own stream (scalar-aligned), sparse from the one event stream.
    uint32_t payload_uniform_int(int lane, uint32_t n)
    {
        return sparse_ ? event_rng_.uniform_int(n)
                       : lane_rng_.uniform_int_lane(lane, n);
    }
    bool payload_bit(int lane)
    {
        return sparse_ ? event_rng_.bit() : lane_rng_.bit_lane(lane);
    }
    bool payload_bernoulli(int lane, double p)
    {
        return sparse_ ? event_rng_.bernoulli(p)
                       : lane_rng_.bernoulli_lane(lane, p);
    }

    /** Re-arms the sparse event stream + countdowns at a reset point. */
    void sparse_reset(uint64_t stream_id)
    {
        event_rng_ = master_rng_.split(stream_id);
        rate_p_.skip_valid = false;
        rate_pl_.skip_valid = false;
        rate_mlr_.skip_valid = false;
    }

    /** Packs bits[0..n) (each 0 or 1) into out (ceil(n/64) words). */
    static void pack_bits(const uint64_t* bits, int n, LaneMask* out)
    {
        for (int w = 0; w * kBatchLanes < n; ++w) {
            const int base = w * kBatchLanes;
            const int lim =
                n - base < kBatchLanes ? n - base : kBatchLanes;
            LaneMask m = 0;
            for (int b = 0; b < lim; ++b)
                m |= bits[base + b] << b;
            out[w] = m;
        }
    }
    void pack_bits(int n, LaneMask* out) const
    {
        pack_bits(bits_, n, out);
    }

    /** Fused depolarize1 + leak_maybe (the per-data-qubit noise pair). */
    template <int WT> void data_noise_pair(int q);
    /** Fused depolarize2 + leak_maybe x2 (the per-CNOT noise triple). */
    template <int WT> void cnot_noise_triple(int control, int target);

    /** Width-specialized bodies of the two public batch entry points. */
    template <int WT>
    void run_round_t(const std::vector<LrcSchedule>& lane_lrcs,
                     std::vector<RoundResult>* out);
    template <int WT>
    void final_measure_t(std::vector<std::vector<uint8_t>>* out);

    const CssCode* code_;
    const RoundCircuit* rc_;
    NoiseParams np_;
    LaneRate rate_p_;    ///< np.p, preprocessed for word-wide draws
    LaneRate rate_pl_;   ///< np.pl()
    LaneRate rate_mlr_;  ///< np.mlr_err()
    Rng master_rng_;
    uint64_t shots_started_ = 0;
    int words_ = 1;         ///< K: words per lane span
    bool sparse_ = false;   ///< NoiseSampling::kSparse event-driven draws
    Rng event_rng_;         ///< the sparse mode's one per-batch stream
    LaneRngBank lane_rng_;  ///< per-lane shot streams (SoA; lockstep only)
    uint64_t draw_[kMaxBatchLanes];  ///< scratch for word-wide draw sites
    uint64_t bits_[kMaxBatchLanes];  ///< scratch: 0/1 compare results

    LaneMask active_[kMaxBatchWords] = {};
    int n_lanes_ = 0;
    bool first_round_ = true;

    std::vector<LaneMask> leaked_;     ///< leak-flag span per qubit
    std::vector<LaneMask> prev_meas_;  ///< previous meas_flip per check
    std::vector<LaneMask> meas_flip_;  ///< scratch, span per check
    std::vector<LaneMask> mlr_flag_;   ///< scratch, span per check
    std::vector<LaneMask> det_scratch_;  ///< scratch, span per check
    std::vector<int> lrc_partner_;
    std::vector<LaneOracle> lane_oracles_;
    BatchStatePrimitives* state_;
};

/**
 * A batch-capable simulation backend: the full scalar Simulator API (so
 * every interface-level test, policy and tool works unchanged — scalar
 * calls address lane 0) plus the lockstep batch entry points the
 * scheduler uses to run a whole shot block as one unit.
 */
class BatchSimulator : public Simulator {
  public:
    /** Max shots one batch holds (batch_words*64 for packed backends). */
    virtual int batch_width() const = 0;

    /** Starts a batch of n_lanes shots (see BatchLeakageDriver). */
    virtual void reset_shot_batch(int n_lanes) = 0;

    /** Forces lane `lane`'s data qubit q into the leaked state. */
    virtual void inject_data_leak_lane(int lane, int q) = 0;

    /** Ground-truth oracle of one lane's shot. */
    virtual const LeakageOracle& lane_oracle(int lane) const = 0;

    /** Words per lane span (K); leaked_words() strides by this. */
    virtual int batch_n_words() const = 0;

    /**
     * Ground-truth leak-flag words, one span per qubit (bit l of word w
     * = lane w*64+l) — the whole batch's truth in one read, so the
     * runner's per-round speculation accounting is popcounts over words
     * instead of per-lane oracle walks.  Entry q*batch_n_words()+w is
     * word w of qubit q (data qubits first, then ancillas).
     */
    virtual const LaneMask* leaked_words() const = 0;

    /** One lockstep round over every active lane. */
    virtual void run_round_batch(const std::vector<LrcSchedule>& lane_lrcs,
                                 std::vector<RoundResult>* out) = 0;

    /** Lockstep final transversal readout of every active lane. */
    virtual void final_data_measure_batch(
        std::vector<std::vector<uint8_t>>* out) = 0;
};

/**
 * Batch analogue of LeakageDriverSim: a backend derives, implements the
 * seven BatchStatePrimitives plus name(), and gets the whole Simulator
 * API — scalar calls run the batch driver one lane wide, so the same
 * object serves interface tests and the lockstep scheduler path.
 */
class BatchLeakageDriverSim : public BatchSimulator,
                              protected BatchStatePrimitives {
  public:
    int batch_width() const final
    {
        return driver_.n_words() * kBatchLanes;
    }
    int batch_n_words() const final { return driver_.n_words(); }
    void reset_shot_batch(int n_lanes) final
    {
        driver_.reset_shot_batch(n_lanes);
    }
    void inject_data_leak_lane(int lane, int q) final
    {
        driver_.set_leak_lane(q, lane);
    }
    const LeakageOracle& lane_oracle(int lane) const final
    {
        return driver_.lane_oracle(lane);
    }
    const LaneMask* leaked_words() const final
    {
        return driver_.leaked_words();
    }
    void run_round_batch(const std::vector<LrcSchedule>& lane_lrcs,
                         std::vector<RoundResult>* out) final
    {
        driver_.run_round_batch(lane_lrcs, out);
    }
    void final_data_measure_batch(
        std::vector<std::vector<uint8_t>>* out) final
    {
        driver_.final_data_measure_batch(out);
    }

    /**
     * Default reuse reset for batch backends whose only randomness is
     * the driver's lane streams (batch_frame): fresh construction
     * passes Rng(seed) as the driver master, so resetting the driver
     * with Rng(seed) reproduces it exactly.  batch_tableau overrides to
     * also reseed its per-lane projection streams.
     */
    void reset_for_block(uint64_t seed) override
    {
        driver_.reset_for_block(Rng(seed));
    }

    // --- Scalar Simulator API: lane 0 of a one-lane batch. ---
    void reset_shot() final { driver_.reset_shot_batch(1); }
    void inject_data_leak(int q) final { driver_.set_leak_lane(q, 0); }
    void inject_check_leak(int c) final
    {
        driver_.set_check_leak_lane(c, 0);
    }
    void inject_x(int q) final { apply_pauli(q, kLaneZeroOne, kLanesNone); }
    void inject_z(int q) final { apply_pauli(q, kLanesNone, kLaneZeroOne); }
    void clear_leak(int q) final { driver_.clear_leak_lane(q, 0); }
    const LeakageOracle& leak_oracle() const final
    {
        return driver_.lane_oracle(0);
    }
    RoundResult run_round(const LrcSchedule& lrcs) final;
    std::vector<uint8_t> final_data_measure() final;

    /** The LRC partner ancilla (check index) used for data qubit q. */
    int lrc_partner(int q) const { return driver_.lrc_partner(q); }

    /** The shared batch driver (tests: drift gate, semantics probes). */
    const BatchLeakageDriver& driver() const { return driver_; }

  protected:
    /** @param master see BatchLeakageDriver — pass the scalar backend's
     *         master (e.g. Rng(seed)) for shot-for-shot lane alignment.
     *  @param batch_words the K of this backend's lane spans.
     *  @param noise_sampling the driver's Bernoulli draw contract. */
    BatchLeakageDriverSim(const CssCode& code, const RoundCircuit& rc,
                          const NoiseParams& np, Rng master,
                          int batch_words,
                          NoiseSampling noise_sampling =
                              NoiseSampling::kLockstep)
        : driver_(code, rc, np, master, this, batch_words, noise_sampling)
    {
    }

    BatchLeakageDriver driver_;

  private:
    // Constant spans for the scalar (lane 0) injection adapters.
    static constexpr LaneMask kLaneZeroOne[kMaxBatchWords] = {1};
    static constexpr LaneMask kLanesNone[kMaxBatchWords] = {};

    // Scratch for the scalar API adapters (reused across rounds).
    std::vector<LrcSchedule> one_lrcs_{1};
    std::vector<RoundResult> one_round_;
    std::vector<std::vector<uint8_t>> one_flips_;
};

}  // namespace gld

#endif  // GLD_SIM_BATCH_DRIVER_H_
