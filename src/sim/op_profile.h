#ifndef GLD_SIM_OP_PROFILE_H_
#define GLD_SIM_OP_PROFILE_H_

#include <cstdint>

#include "circuit/round_circuit.h"
#include "codes/css_code.h"
#include "noise/noise_model.h"
#include "sim/leakage_driver.h"
#include "sim/simulator.h"

namespace gld {

/**
 * Primitive-call counts of a driver execution — the per-gadget cost
 * profile the ROADMAP's "driver-level instrumentation" item asks for.
 * The mock-state tests established that the driver's primitive-call
 * stream is a faithful trace of a round; these counters make that trace
 * a first-class quantity the hw/ timing models can consume, for any code
 * and any schedule, without touching the engines.
 */
struct OpCounts {
    long resets_state = 0;  ///< whole-state reinitializations
    long paulis = 0;        ///< apply_pauli calls (noise + malfunctions)
    long cnots = 0;         ///< coherent CNOT actions
    long hadamards = 0;     ///< coherent Hadamard actions
    long resets = 0;        ///< single-qubit |0> resets
    long measures = 0;      ///< Z-basis readouts
    long parks = 0;         ///< leak-flag rises (park hook firings)

    OpCounts operator-(const OpCounts& o) const
    {
        return {resets_state - o.resets_state,
                paulis - o.paulis,
                cnots - o.cnots,
                hadamards - o.hadamards,
                resets - o.resets,
                measures - o.measures,
                parks - o.parks};
    }
    bool operator==(const OpCounts& o) const
    {
        return resets_state == o.resets_state && paulis == o.paulis &&
               cnots == o.cnots && hadamards == o.hadamards &&
               resets == o.resets && measures == o.measures &&
               parks == o.parks;
    }
};

/**
 * StatePrimitives decorator that counts every call before forwarding to
 * an optional inner backend (nullptr = count against a sink, which is
 * all profiling needs: the driver's decision sequence does not depend on
 * the frame/tableau state, only on its own flags and RNG — measure_z
 * reads 0 from the sink, i.e. the noiseless reference outcome).
 */
class CountingState final : public StatePrimitives {
  public:
    explicit CountingState(StatePrimitives* inner = nullptr)
        : inner_(inner)
    {
    }

    const OpCounts& counts() const { return counts_; }
    void reset_counts() { counts_ = OpCounts{}; }

    void reset_state() override
    {
        ++counts_.resets_state;
        if (inner_ != nullptr)
            inner_->reset_state();
    }
    void apply_pauli(int q, uint32_t pauli) override
    {
        ++counts_.paulis;
        if (inner_ != nullptr)
            inner_->apply_pauli(q, pauli);
    }
    void coherent_cnot(int control, int target) override
    {
        ++counts_.cnots;
        if (inner_ != nullptr)
            inner_->coherent_cnot(control, target);
    }
    void hadamard(int q) override
    {
        ++counts_.hadamards;
        if (inner_ != nullptr)
            inner_->hadamard(q);
    }
    void reset_z(int q) override
    {
        ++counts_.resets;
        if (inner_ != nullptr)
            inner_->reset_z(q);
    }
    uint8_t measure_z(int q) override
    {
        ++counts_.measures;
        return inner_ != nullptr ? inner_->measure_z(q) : 0;
    }
    void park_leaked(int q) override
    {
        ++counts_.parks;
        if (inner_ != nullptr)
            inner_->park_leaked(q);
    }

  private:
    StatePrimitives* inner_;
    OpCounts counts_;
};

/**
 * Per-gadget round profile: primitive counts of one noiseless driver
 * round without LRCs (`quiet` — exactly the scheduled extraction
 * circuit) and with the given schedule (`scheduled`), plus their
 * difference (`lrc_overhead` — what the scheduled gadgets added).  With
 * noiseless parameters the counts are deterministic, so they golden-pin
 * the circuit's gate budget per code; under noisy parameters they become
 * a Monte-Carlo sample of the actual op load.
 */
struct RoundOpProfile {
    OpCounts quiet;
    OpCounts scheduled;
    OpCounts lrc_overhead;
};

/**
 * Profiles one driver round of `code` under `np`: runs the shared
 * LeakageDriver over a CountingState (no engine behind it) once without
 * and once with `lrcs`, both from the same seed.
 */
RoundOpProfile profile_round_ops(const CssCode& code,
                                 const RoundCircuit& rc,
                                 const NoiseParams& np,
                                 const LrcSchedule& lrcs,
                                 uint64_t seed = 0);

}  // namespace gld

#endif  // GLD_SIM_OP_PROFILE_H_
