#ifndef GLD_SIM_LEAKAGE_DRIVER_H_
#define GLD_SIM_LEAKAGE_DRIVER_H_

#include <cstdint>
#include <vector>

#include "circuit/round_circuit.h"
#include "codes/css_code.h"
#include "noise/noise_model.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace gld {

/** Pauli encoding shared by the driver and every backend: bit0 = X,
 *  bit1 = Z (both = Y up to the global phase, which no stabilizer
 *  statistic observes).  0 is the identity. */
constexpr uint32_t kPauliI = 0;
constexpr uint32_t kPauliX = 1;
constexpr uint32_t kPauliZ = 2;
constexpr uint32_t kPauliY = 3;

/**
 * The narrow quantum-state interface a simulation backend provides to the
 * shared LeakageDriver.  A backend owns ONLY the computational-subspace
 * representation (Pauli frame, CHP tableau, ...); every classical
 * leak-flag decision — what malfunctions, what transports, what an LRC
 * does, which noise draw happens when — lives in the driver, so the
 * semantics of the paper cannot drift between backends.
 *
 * Determinism contract: the driver performs every noise draw from its own
 * RNG.  A primitive may consume its own backend-private randomness (e.g. a
 * tableau measurement of a qubit not in a Z eigenstate) but must never
 * touch the driver's stream, so the driver's draw sequence is identical
 * across backends given the same leak-flag trajectory.
 */
class StatePrimitives {
  public:
    virtual ~StatePrimitives() = default;

    /** Re-initializes the whole state to |0...0> for a new shot. */
    virtual void reset_state() = 0;

    /** Applies a Pauli (kPauli* encoding) to qubit q. */
    virtual void apply_pauli(int q, uint32_t pauli) = 0;

    /** The coherent CNOT action (both operands in the subspace). */
    virtual void coherent_cnot(int control, int target) = 0;

    /** The coherent Hadamard action. */
    virtual void hadamard(int q) = 0;

    /** Noiseless reset of one qubit to |0> (init error is the driver's). */
    virtual void reset_z(int q) = 0;

    /**
     * Z-basis readout of a non-leaked qubit: returns the outcome as a flip
     * vs the noiseless reference (classical readout error is the
     * driver's).  An exact backend may collapse state here and may return
     * genuinely random projection values — the driver only ever combines
     * outcomes into detector/parity bits, where the reference cancels.
     */
    virtual uint8_t measure_z(int q) = 0;

    /**
     * Hook fired when qubit q's leak flag rises 0 -> 1: the qubit leaves
     * the computational subspace until an LRC clears it.  A frame backend
     * simply freezes the frame (no-op); an exact backend collapses the
     * departing qubit so the remaining stabilizer state stays
     * well-defined.
     */
    virtual void park_leaked(int q) = 0;
};

/**
 * The backend-agnostic classical-leakage round driver — the single home of
 * the paper's leakage semantics (§2.3/§2.4/§6), executed over any
 * StatePrimitives provider:
 *
 *  - CNOT with a leaked operand does not perform its coherent action; the
 *    non-leaked partner receives a uniformly random Pauli (an ancilla
 *    partner: an independent 50% flip of its measured bit, unless
 *    `leaked_gate_backaction`).  If the control is leaked, the leakage is
 *    instead transported to the target with probability `mobility`.
 *  - Two-level readout of a leaked qubit returns a uniformly random
 *    outcome; MLR reports the true leak flag with symmetric error mlr*p.
 *  - Measurement + reset do NOT clear leakage (a reset pulse has no
 *    effect on a parked |2> state); only LRC gadgets do.
 *  - A data-qubit LRC is a SWAP with a designated partner ancilla followed
 *    by reset: it *exchanges* leakage with the partner (a false-positive
 *    LRC against a leaked ancilla pumps leakage INTO the data qubit), then
 *    applies gadget noise.  An ancilla LRC resets the ancilla.
 *
 * The driver owns the leak flags, the previous-round measurement record,
 * and the noise RNG; it implements the ground-truth LeakageOracle that
 * oracle policies and the runner's speculation accounting read.
 */
class LeakageDriver final : public LeakageOracle {
  public:
    /**
     * @param noise_rng the shot-MASTER stream: shot k of this driver
     *        draws from noise_rng.split(k), re-derived at every
     *        reset_shot() (the first shot's stream, split(0), is active
     *        from construction).  Per-shot streams are what make the
     *        bit-packed batch driver possible — lane k of a batch replays
     *        exactly shot k's draw sequence, independent of how many
     *        draws the other shots consumed (sim/batch_driver.h).
     * @param state the backend's primitives; must outlive the driver.
     */
    LeakageDriver(const CssCode& code, const RoundCircuit& rc,
                  const NoiseParams& np, Rng noise_rng,
                  StatePrimitives* state);

    // Non-copyable: the driver holds a pointer to its backend's
    // primitives (typically the enclosing simulator itself), so a copy
    // would drive the ORIGINAL object's quantum state.  This also makes
    // every LeakageDriverSim backend non-copyable, which is the point.
    LeakageDriver(const LeakageDriver&) = delete;
    LeakageDriver& operator=(const LeakageDriver&) = delete;

    /**
     * Clears flags, measurement history and the backend state, and
     * advances the noise stream to the next shot's split of the master
     * (shot k draws from master.split(k) regardless of how many draws
     * earlier shots made).
     */
    void reset_shot();

    /**
     * Restores the driver to its just-constructed state under a NEW
     * master stream: flags/history cleared, the shot counter rewound to
     * 0, the current stream re-derived as noise_rng.split(0) (exactly
     * the post-construction state), and the backend state
     * re-initialized.  The simulator-reuse path resets a cached driver
     * per scheduler block with the block's own master, making reuse
     * bit-identical to fresh construction.
     */
    void reset_for_block(Rng noise_rng);

    /** Raises qubit q's leak flag (fires park_leaked on 0 -> 1). */
    void set_leak(int q);
    /** Raises the leak flag of check c's ancilla. */
    void set_check_leak(int c) { set_leak(code_->ancilla_of(c)); }
    /** Clears a qubit's leak flag (tests). */
    void clear_leak(int q) { leaked_[q] = 0; }
    /** Leak flag of any qubit (data or ancilla index). */
    bool leaked(int q) const { return leaked_[q] != 0; }

    // --- LeakageOracle (ground truth). ---
    bool data_leaked(int q) const override { return leaked_[q] != 0; }
    bool check_leaked(int c) const override
    {
        return leaked_[code_->ancilla_of(c)] != 0;
    }
    int n_data_leaked() const override;
    int n_check_leaked() const override;
    /** Heatmap row accumulation as one pass over the flag array (the
     *  layout is data qubits [0, n_data) then ancillas, so both halves
     *  come from a single walk instead of 2 x n virtual calls). */
    void add_leak_occupancy(uint64_t* data_row, int n_data,
                            uint64_t* check_row,
                            int n_checks) const override;

    /**
     * Applies the scheduled LRC gadgets (start-of-round semantics), then
     * executes one noisy syndrome-extraction round over the primitives.
     */
    RoundResult run_round(const LrcSchedule& lrcs);

    /**
     * Transversal Z-basis readout of all data qubits; leaked qubits read
     * out randomly, the rest via the measure_z primitive + readout error.
     */
    std::vector<uint8_t> final_data_measure();

    /** The LRC partner ancilla (check index) used for data qubit q. */
    int lrc_partner(int q) const { return lrc_partner_[q]; }

    Rng& rng() { return rng_; }
    const NoiseParams& noise() const { return np_; }

  private:
    void apply_lrc_data(int q);
    void apply_lrc_check(int c);
    void depolarize1(int q);
    void depolarize2(int q0, int q1);
    void leak_maybe(int q);
    void cnot(int control, int target);
    void malfunction(int partner, bool is_control);

    const CssCode* code_;
    const RoundCircuit* rc_;
    NoiseParams np_;
    Rng master_rng_;        ///< per-shot streams split off this
    Rng rng_;               ///< the CURRENT shot's stream
    uint64_t shot_index_ = 0;  ///< shots started (next reset_shot id)
    StatePrimitives* state_;

    std::vector<uint8_t> leaked_;  ///< leak flag per qubit
    std::vector<uint8_t> prev_meas_;
    std::vector<int> lrc_partner_;
    bool first_round_ = true;
};

/**
 * Simulator implemented as a LeakageDriver over this object's own
 * StatePrimitives: derive, implement the primitives plus name(), and the
 * entire leakage semantics comes along.  Both in-tree backends are built
 * this way, which is what keeps them semantically identical by
 * construction — a third backend is a primitives provider, not a
 * re-implementation of the round dynamics.
 */
class LeakageDriverSim : public Simulator, protected StatePrimitives {
  public:
    void reset_shot() final { driver_.reset_shot(); }
    /**
     * Default reuse reset for backends whose only randomness is the
     * driver's (the frame backend): fresh construction passes Rng(seed)
     * as the driver master, so resetting the driver with Rng(seed)
     * reproduces it exactly.  A backend with private randomness
     * (tableau projections) overrides this to re-derive BOTH streams
     * from the seed, mirroring its constructor.
     */
    void reset_for_block(uint64_t seed) override
    {
        driver_.reset_for_block(Rng(seed));
    }
    void inject_data_leak(int q) final { driver_.set_leak(q); }
    void inject_check_leak(int c) final { driver_.set_check_leak(c); }
    void inject_x(int q) final { apply_pauli(q, kPauliX); }
    void inject_z(int q) final { apply_pauli(q, kPauliZ); }
    void clear_leak(int q) final { driver_.clear_leak(q); }
    const LeakageOracle& leak_oracle() const final { return driver_; }
    RoundResult run_round(const LrcSchedule& lrcs) final
    {
        return driver_.run_round(lrcs);
    }
    std::vector<uint8_t> final_data_measure() final
    {
        return driver_.final_data_measure();
    }

    /** The LRC partner ancilla (check index) used for data qubit q. */
    int lrc_partner(int q) const { return driver_.lrc_partner(q); }

    /** The shared round driver (tests: drift gate, semantics probes). */
    const LeakageDriver& driver() const { return driver_; }

  protected:
    /**
     * @param noise_rng the driver's noise stream; a backend with private
     *        randomness (e.g. tableau projections) must derive both from
     *        its seed so one seed still fixes the whole shot sequence.
     */
    LeakageDriverSim(const CssCode& code, const RoundCircuit& rc,
                     const NoiseParams& np, Rng noise_rng)
        : driver_(code, rc, np, noise_rng, this)
    {
    }

    LeakageDriver driver_;
};

}  // namespace gld

#endif  // GLD_SIM_LEAKAGE_DRIVER_H_
