#include <cstddef>
#include "sim/frame_sim.h"

#include <cassert>

namespace gld {

LeakFrameSim::LeakFrameSim(const CssCode& code, const RoundCircuit& rc,
                           const NoiseParams& np, uint64_t seed)
    : code_(&code), rc_(&rc), np_(np), rng_(seed)
{
    const int nq = code.n_qubits();
    fx_.assign(nq, 0);
    fz_.assign(nq, 0);
    leaked_.assign(nq, 0);
    prev_meas_.assign(code.n_checks(), 0);
    // Fixed LRC partner per data qubit: its first adjacent check's ancilla.
    lrc_partner_.assign(code.n_data(), -1);
    for (int q = 0; q < code.n_data(); ++q) {
        if (!code.data_adjacency()[q].empty())
            lrc_partner_[q] = code.data_adjacency()[q].front();
    }
    reset_shot();
}

void
LeakFrameSim::reset_shot()
{
    std::fill(fx_.begin(), fx_.end(), 0);
    std::fill(fz_.begin(), fz_.end(), 0);
    std::fill(leaked_.begin(), leaked_.end(), 0);
    std::fill(prev_meas_.begin(), prev_meas_.end(), 0);
    first_round_ = true;
}

int
LeakFrameSim::n_data_leaked() const
{
    int n = 0;
    for (int q = 0; q < code_->n_data(); ++q)
        n += leaked_[q];
    return n;
}

int
LeakFrameSim::n_check_leaked() const
{
    int n = 0;
    for (int c = 0; c < code_->n_checks(); ++c)
        n += leaked_[code_->ancilla_of(c)];
    return n;
}

void
LeakFrameSim::depolarize1(int q)
{
    if (!rng_.bernoulli(np_.p))
        return;
    switch (rng_.uniform_int(3)) {
      case 0:
        fx_[q] ^= 1;
        break;
      case 1:
        fz_[q] ^= 1;
        break;
      default:
        fx_[q] ^= 1;
        fz_[q] ^= 1;
    }
}

void
LeakFrameSim::depolarize2(int q0, int q1)
{
    if (!rng_.bernoulli(np_.p))
        return;
    // One of the 15 non-identity two-qubit Paulis, uniformly.
    const uint32_t pauli = 1 + rng_.uniform_int(15);
    const uint32_t p0 = pauli & 3u;        // I,X,Z,Y encoding: bit0=X, bit1=Z
    const uint32_t p1 = (pauli >> 2) & 3u;
    fx_[q0] ^= p0 & 1u;
    fz_[q0] ^= (p0 >> 1) & 1u;
    fx_[q1] ^= p1 & 1u;
    fz_[q1] ^= (p1 >> 1) & 1u;
}

void
LeakFrameSim::leak_maybe(int q)
{
    if (rng_.bernoulli(np_.pl()))
        leaked_[q] = 1;
}

void
LeakFrameSim::cnot(int control, int target)
{
    const bool cl = leaked_[control] != 0;
    const bool tl = leaked_[target] != 0;
    if (!cl && !tl) {
        // Coherent action on the frame: X copies c->t, Z copies t->c.
        fx_[target] ^= fx_[control];
        fz_[control] ^= fz_[target];
    } else if (cl && !tl) {
        // Leaked control: transport with prob `mobility` (the leakage
        // population moves to the target), else the gate malfunctions and
        // the target is disturbed (paper §2.3).
        if (rng_.bernoulli(np_.mobility)) {
            leaked_[target] = 1;
            leaked_[control] = 0;
        } else {
            malfunction(target, /*is_control=*/false);
        }
    } else if (!cl && tl) {
        // Leaked target: the control is disturbed.
        malfunction(control, /*is_control=*/true);
    }
    // Both leaked: gate does nothing observable in the subspace.

    // Gate-induced depolarizing and leakage on both operands.
    depolarize2(control, target);
    leak_maybe(control);
    leak_maybe(target);
}

void
LeakFrameSim::malfunction(int partner, bool is_control)
{
    const bool partner_is_ancilla = partner >= code_->n_data();
    if (partner_is_ancilla && !np_.leaked_gate_backaction) {
        // IBM characterization (§2.3): the malfunction manifests as an
        // independent 50% flip of the ancilla's measured bit.  A Z-check
        // ancilla (CNOT target) is measured in Z: flip via X.  An X-check
        // ancilla (CNOT control, conjugated by H) is measured in X between
        // its Hadamards: flip via Z.  Neither component propagates through
        // the ancilla's remaining CNOTs.
        if (rng_.bit()) {
            if (is_control)
                fz_[partner] ^= 1;
            else
                fx_[partner] ^= 1;
        }
        return;
    }
    // Full back-action: a uniformly random Pauli on the partner.
    const uint32_t pauli = rng_.uniform_int(4);
    fx_[partner] ^= pauli & 1u;
    fz_[partner] ^= (pauli >> 1) & 1u;
}

void
LeakFrameSim::apply_lrc_data(int q)
{
    // SWAP with the partner ancilla + reset: exchanges the leak flags,
    // then the ancilla side is reset (cleared).
    const int pc = lrc_partner_[q];
    if (pc >= 0) {
        const int anc = code_->ancilla_of(pc);
        std::swap(leaked_[q], leaked_[anc]);
        leaked_[anc] = 0;
        // The swapped-in state is a fresh |0>; the data qubit's frame is
        // effectively reset through the gadget (its pre-LRC state moved to
        // the ancilla and was discarded).  An LRC on a non-leaked qubit in
        // the middle of a memory experiment would destroy the data state in
        // a real device too; the gadget swaps the state back after the
        // ancilla reset, so the frame is preserved and only gadget noise is
        // added.
    } else {
        leaked_[q] = 0;
    }
    // Gadget noise: ~3 CNOTs of depolarizing + leakage induction.
    if (rng_.bernoulli(np_.lrc_depol())) {
        switch (rng_.uniform_int(3)) {
          case 0:
            fx_[q] ^= 1;
            break;
          case 1:
            fz_[q] ^= 1;
            break;
          default:
            fx_[q] ^= 1;
            fz_[q] ^= 1;
        }
    }
    if (rng_.bernoulli(np_.lrc_leak()))
        leaked_[q] = 1;
}

void
LeakFrameSim::apply_lrc_check(int c)
{
    const int anc = code_->ancilla_of(c);
    leaked_[anc] = 0;
    fx_[anc] = 0;
    fz_[anc] = 0;
    if (rng_.bernoulli(np_.lrc_leak()))
        leaked_[anc] = 1;
}

RoundResult
LeakFrameSim::run_round(const LrcSchedule& lrcs)
{
    const int n_checks = code_->n_checks();
    RoundResult out;
    out.meas_flip.assign(n_checks, 0);
    out.detector.assign(n_checks, 0);
    out.mlr_flag.assign(n_checks, 0);

    // 1. Scheduled LRC gadgets (decided by the policy last round).
    for (int q : lrcs.data_qubits)
        apply_lrc_data(q);
    for (int c : lrcs.checks)
        apply_lrc_check(c);

    // 2. Round-start data noise: depolarization + environment leakage.
    for (int q = 0; q < code_->n_data(); ++q) {
        depolarize1(q);
        leak_maybe(q);
    }

    // 3. Execute the scheduled extraction circuit.
    for (const Op& op : rc_->ops()) {
        switch (op.type) {
          case OpType::kResetZ:
            // Fresh |0> (does not clear leakage); init error flips to |1>.
            fx_[op.q0] = 0;
            fz_[op.q0] = 0;
            if (rng_.bernoulli(np_.p))
                fx_[op.q0] ^= 1;
            break;
          case OpType::kH:
            if (!leaked_[op.q0])
                std::swap(fx_[op.q0], fz_[op.q0]);
            depolarize1(op.q0);
            break;
          case OpType::kCnot:
            cnot(op.q0, op.q1);
            break;
          case OpType::kMeasure: {
            const int anc = op.q0;
            uint8_t flip;
            if (leaked_[anc]) {
                // Two-level readout of a leaked qubit: random outcome.
                flip = rng_.bit() ? 1 : 0;
            } else {
                flip = fx_[anc];
                if (rng_.bernoulli(np_.p))
                    flip ^= 1;
            }
            out.meas_flip[op.mslot] = flip;
            // MLR leak flag with symmetric misclassification.
            uint8_t leak_flag = leaked_[anc] ? 1 : 0;
            if (rng_.bernoulli(np_.mlr_err()))
                leak_flag ^= 1;
            out.mlr_flag[op.mslot] = leak_flag;
            break;
          }
        }
    }

    // 4. Detector bits.
    for (int c = 0; c < n_checks; ++c) {
        if (first_round_ && code_->check(c).type == CheckType::kX) {
            // Round-0 X-check outcomes are random projections in a Z-basis
            // memory; they carry no detector information.
            out.detector[c] = 0;
        } else {
            out.detector[c] = out.meas_flip[c] ^ prev_meas_[c];
        }
    }
    prev_meas_ = out.meas_flip;
    first_round_ = false;
    return out;
}

std::vector<uint8_t>
LeakFrameSim::final_data_measure()
{
    std::vector<uint8_t> flips(code_->n_data(), 0);
    for (int q = 0; q < code_->n_data(); ++q) {
        if (leaked_[q]) {
            flips[q] = rng_.bit() ? 1 : 0;
        } else {
            flips[q] = fx_[q];
            if (rng_.bernoulli(np_.p))
                flips[q] ^= 1;
        }
    }
    return flips;
}

}  // namespace gld
