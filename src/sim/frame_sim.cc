#include "sim/frame_sim.h"

namespace gld {

LeakFrameSim::LeakFrameSim(const CssCode& code, const RoundCircuit& rc,
                           const NoiseParams& np, uint64_t seed)
    : LeakageDriverSim(code, rc, np, Rng(seed)),
      fx_(static_cast<size_t>(code.n_qubits()), 0),
      fz_(static_cast<size_t>(code.n_qubits()), 0)
{
}

void
LeakFrameSim::reset_state()
{
    std::fill(fx_.begin(), fx_.end(), 0);
    std::fill(fz_.begin(), fz_.end(), 0);
}

void
LeakFrameSim::apply_pauli(int q, uint32_t pauli)
{
    fx_[static_cast<size_t>(q)] ^= static_cast<uint8_t>(pauli & 1u);
    fz_[static_cast<size_t>(q)] ^= static_cast<uint8_t>((pauli >> 1) & 1u);
}

void
LeakFrameSim::coherent_cnot(int control, int target)
{
    // Coherent action on the frame: X copies c->t, Z copies t->c.
    fx_[static_cast<size_t>(target)] ^= fx_[static_cast<size_t>(control)];
    fz_[static_cast<size_t>(control)] ^= fz_[static_cast<size_t>(target)];
}

void
LeakFrameSim::hadamard(int q)
{
    std::swap(fx_[static_cast<size_t>(q)], fz_[static_cast<size_t>(q)]);
}

void
LeakFrameSim::reset_z(int q)
{
    fx_[static_cast<size_t>(q)] = 0;
    fz_[static_cast<size_t>(q)] = 0;
}

uint8_t
LeakFrameSim::measure_z(int q)
{
    return fx_[static_cast<size_t>(q)];
}

void
LeakFrameSim::park_leaked(int /*q*/)
{
    // The frame freezes in place: the driver stops routing coherent gates
    // at the qubit, and whatever frame it had resumes if an LRC clears it.
}

}  // namespace gld
