#include <cstddef>
#include "sim/tableau_sim.h"

#include <algorithm>
#include <cassert>

namespace gld {

TableauSim::TableauSim(int n_qubits, uint64_t seed)
    : n_(n_qubits), words_((n_qubits + 63) / 64),
      xs_(static_cast<size_t>(2 * n_qubits) * words_, 0),
      zs_(static_cast<size_t>(2 * n_qubits) * words_, 0),
      r_(2 * n_qubits, 0), rng_(seed)
{
    // Identity tableau: destabilizer i = X_i, stabilizer n+i = Z_i.
    for (int i = 0; i < n_; ++i) {
        set_xbit(i, i, true);
        set_zbit(n_ + i, i, true);
    }
}

void
TableauSim::reset_all()
{
    std::fill(xs_.begin(), xs_.end(), 0);
    std::fill(zs_.begin(), zs_.end(), 0);
    std::fill(r_.begin(), r_.end(), 0);
    for (int i = 0; i < n_; ++i) {
        set_xbit(i, i, true);
        set_zbit(n_ + i, i, true);
    }
}

bool
TableauSim::xbit(int row, int q) const
{
    return (xs_[static_cast<size_t>(row) * words_ + q / 64] >> (q % 64)) & 1;
}

bool
TableauSim::zbit(int row, int q) const
{
    return (zs_[static_cast<size_t>(row) * words_ + q / 64] >> (q % 64)) & 1;
}

void
TableauSim::set_xbit(int row, int q, bool v)
{
    uint64_t& w = xs_[static_cast<size_t>(row) * words_ + q / 64];
    const uint64_t m = 1ull << (q % 64);
    w = v ? (w | m) : (w & ~m);
}

void
TableauSim::set_zbit(int row, int q, bool v)
{
    uint64_t& w = zs_[static_cast<size_t>(row) * words_ + q / 64];
    const uint64_t m = 1ull << (q % 64);
    w = v ? (w | m) : (w & ~m);
}

void
TableauSim::h(int q)
{
    for (int row = 0; row < 2 * n_; ++row) {
        const bool x = xbit(row, q), z = zbit(row, q);
        r_[row] ^= static_cast<uint8_t>(x && z);
        set_xbit(row, q, z);
        set_zbit(row, q, x);
    }
}

void
TableauSim::s(int q)
{
    for (int row = 0; row < 2 * n_; ++row) {
        const bool x = xbit(row, q), z = zbit(row, q);
        r_[row] ^= static_cast<uint8_t>(x && z);
        set_zbit(row, q, x ^ z);
    }
}

void
TableauSim::cnot(int control, int target)
{
    for (int row = 0; row < 2 * n_; ++row) {
        const bool xc = xbit(row, control), zc = zbit(row, control);
        const bool xt = xbit(row, target), zt = zbit(row, target);
        r_[row] ^= static_cast<uint8_t>(xc && zt && (xt == zc));
        set_xbit(row, target, xt ^ xc);
        set_zbit(row, control, zc ^ zt);
    }
}

void
TableauSim::x(int q)
{
    for (int row = 0; row < 2 * n_; ++row)
        r_[row] ^= static_cast<uint8_t>(zbit(row, q));
}

void
TableauSim::z(int q)
{
    for (int row = 0; row < 2 * n_; ++row)
        r_[row] ^= static_cast<uint8_t>(xbit(row, q));
}

void
TableauSim::y(int q)
{
    x(q);
    z(q);
}

int
TableauSim::row_phase_exponent(int h, int i) const
{
    // Sum of the g() contributions when multiplying row i into row h,
    // following Aaronson-Gottesman.
    int sum = 2 * (r_[h] + r_[i]);
    for (int q = 0; q < n_; ++q) {
        const int x1 = xbit(i, q), z1 = zbit(i, q);
        const int x2 = xbit(h, q), z2 = zbit(h, q);
        int g = 0;
        if (x1 == 1 && z1 == 0)
            g = z2 * (2 * x2 - 1);
        else if (x1 == 0 && z1 == 1)
            g = x2 * (1 - 2 * z2);
        else if (x1 == 1 && z1 == 1)
            g = z2 - x2;
        sum += g;
    }
    return ((sum % 4) + 4) % 4;
}

void
TableauSim::rowsum(int h, int i)
{
    const int phase = row_phase_exponent(h, i);
    assert(phase == 0 || phase == 2);
    r_[h] = static_cast<uint8_t>(phase == 2);
    for (int w = 0; w < words_; ++w) {
        xs_[static_cast<size_t>(h) * words_ + w] ^=
            xs_[static_cast<size_t>(i) * words_ + w];
        zs_[static_cast<size_t>(h) * words_ + w] ^=
            zs_[static_cast<size_t>(i) * words_ + w];
    }
}

bool
TableauSim::measure_z(int q, bool* was_random, const bool* forced_random)
{
    int p = -1;
    for (int row = n_; row < 2 * n_; ++row) {
        if (xbit(row, q)) {
            p = row;
            break;
        }
    }
    if (p >= 0) {
        // Random outcome.
        if (was_random != nullptr)
            *was_random = true;
        for (int row = 0; row < 2 * n_; ++row) {
            if (row != p && xbit(row, q))
                rowsum(row, p);
        }
        // Destabilizer row p-n takes the old stabilizer row p.
        const int d = p - n_;
        for (int w = 0; w < words_; ++w) {
            xs_[static_cast<size_t>(d) * words_ + w] =
                xs_[static_cast<size_t>(p) * words_ + w];
            zs_[static_cast<size_t>(d) * words_ + w] =
                zs_[static_cast<size_t>(p) * words_ + w];
            xs_[static_cast<size_t>(p) * words_ + w] = 0;
            zs_[static_cast<size_t>(p) * words_ + w] = 0;
        }
        r_[d] = r_[p];
        set_zbit(p, q, true);
        const bool outcome =
            forced_random != nullptr ? *forced_random : rng_.bit();
        r_[p] = static_cast<uint8_t>(outcome);
        return outcome;
    }
    // Deterministic outcome: accumulate into a scratch row.
    if (was_random != nullptr)
        *was_random = false;
    // Use an extra virtual scratch row implemented with temporaries.
    std::vector<uint64_t> sx(words_, 0), sz(words_, 0);
    int phase2 = 0;  // phase exponent mod 4 accumulated pairwise
    // Emulate rowsum into scratch: replay AG's 2n+1 row trick.
    auto scratch_rowsum = [&](int i) {
        int sum = 2 * ((phase2 >> 1) & 1) + 2 * r_[i];
        for (int qq = 0; qq < n_; ++qq) {
            const int x1 = xbit(i, qq), z1 = zbit(i, qq);
            const int x2 =
                static_cast<int>((sx[qq / 64] >> (qq % 64)) & 1);
            const int z2 =
                static_cast<int>((sz[qq / 64] >> (qq % 64)) & 1);
            int g = 0;
            if (x1 == 1 && z1 == 0)
                g = z2 * (2 * x2 - 1);
            else if (x1 == 0 && z1 == 1)
                g = x2 * (1 - 2 * z2);
            else if (x1 == 1 && z1 == 1)
                g = z2 - x2;
            sum += g;
        }
        sum = ((sum % 4) + 4) % 4;
        assert(sum == 0 || sum == 2);
        phase2 = sum;
        for (int w = 0; w < words_; ++w) {
            sx[w] ^= xs_[static_cast<size_t>(i) * words_ + w];
            sz[w] ^= zs_[static_cast<size_t>(i) * words_ + w];
        }
    };
    for (int i = 0; i < n_; ++i) {
        if (xbit(i, q))
            scratch_rowsum(i + n_);
    }
    return phase2 == 2;
}

void
TableauSim::reset_z(int q)
{
    const bool m = measure_z(q);
    if (m)
        x(q);
}

int
TableauSim::z_product_expectation(const std::vector<int>& support)
{
    std::vector<uint8_t> in_support(n_, 0);
    for (int q : support)
        in_support[q] ^= 1;

    // O = prod Z_q anticommutes with a Pauli row iff the row has an odd
    // number of X/Y components inside the support.
    auto anticommutes = [&](int row) {
        int parity = 0;
        for (int q = 0; q < n_; ++q) {
            if (in_support[q] && xbit(row, q))
                parity ^= 1;
        }
        return parity != 0;
    };

    // Random outcome iff O anticommutes with some stabilizer.
    for (int row = n_; row < 2 * n_; ++row) {
        if (anticommutes(row))
            return 0;
    }

    // Deterministic: O = +/- prod of the stabilizers S_i for which O
    // anticommutes with destabilizer i.  Accumulate them in a scratch row
    // to read off the sign.
    std::vector<uint64_t> sx(words_, 0), sz(words_, 0);
    int phase2 = 0;
    auto scratch_rowsum = [&](int i) {
        int sum = 2 * ((phase2 >> 1) & 1) + 2 * r_[i];
        for (int qq = 0; qq < n_; ++qq) {
            const int x1 = xbit(i, qq), z1 = zbit(i, qq);
            const int x2 = static_cast<int>((sx[qq / 64] >> (qq % 64)) & 1);
            const int z2 = static_cast<int>((sz[qq / 64] >> (qq % 64)) & 1);
            int g = 0;
            if (x1 == 1 && z1 == 0)
                g = z2 * (2 * x2 - 1);
            else if (x1 == 0 && z1 == 1)
                g = x2 * (1 - 2 * z2);
            else if (x1 == 1 && z1 == 1)
                g = z2 - x2;
            sum += g;
        }
        sum = ((sum % 4) + 4) % 4;
        assert(sum == 0 || sum == 2);
        phase2 = sum;
        for (int w = 0; w < words_; ++w) {
            sx[w] ^= xs_[static_cast<size_t>(i) * words_ + w];
            sz[w] ^= zs_[static_cast<size_t>(i) * words_ + w];
        }
    };
    for (int i = 0; i < n_; ++i) {
        if (anticommutes(i))
            scratch_rowsum(i + n_);
    }
    return phase2 == 2 ? -1 : +1;
}

}  // namespace gld
