#ifndef GLD_SIM_FRAME_SIM_H_
#define GLD_SIM_FRAME_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/round_circuit.h"
#include "codes/css_code.h"
#include "noise/noise_model.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace gld {

/**
 * Leakage-aware Pauli-frame simulator for repeated syndrome extraction.
 *
 * The computational-subspace part of the state is tracked as an X/Z Pauli
 * frame relative to the noiseless reference execution (exactly what a
 * stabilizer frame sampler computes for Pauli noise); leakage is tracked as
 * a classical per-qubit flag with the gate-malfunction semantics calibrated
 * in the paper's §2.3:
 *
 *  - CNOT with a leaked operand does not perform its coherent action; the
 *    non-leaked partner receives a uniformly random Pauli.  If the control
 *    is leaked, the leakage is instead transported to the target with
 *    probability `mobility`.
 *  - Two-level readout of a leaked qubit returns a uniformly random
 *    outcome; MLR reports the true leak flag with symmetric error mlr*p.
 *  - Measurement + reset do NOT clear leakage; only LRC gadgets do.
 *  - A data-qubit LRC is a SWAP with a designated partner ancilla followed
 *    by reset: it *exchanges* leakage with the partner (a false-positive
 *    LRC against a leaked ancilla pumps leakage INTO the data qubit), then
 *    applies gadget noise.  An ancilla LRC resets the ancilla's leakage.
 */
class LeakFrameSim : public Simulator {
  public:
    LeakFrameSim(const CssCode& code, const RoundCircuit& rc,
                 const NoiseParams& np, uint64_t seed);

    std::string name() const override { return "frame"; }

    /** Clears all state for a new shot. */
    void reset_shot() override;

    /** Forces a data qubit into the leaked state (leakage sampling, §6). */
    void inject_data_leak(int q) override { leaked_[q] = 1; }
    /** Forces an ancilla (by check index) into the leaked state. */
    void inject_check_leak(int c) override
    {
        leaked_[code_->ancilla_of(c)] = 1;
    }
    /** Injects an X (bit-flip) error on a qubit (tests / fault studies). */
    void inject_x(int q) override { fx_[q] ^= 1; }
    /** Injects a Z (phase-flip) error on a qubit. */
    void inject_z(int q) override { fz_[q] ^= 1; }
    /** Clears a qubit's leak flag (tests). */
    void clear_leak(int q) override { leaked_[q] = 0; }

    bool data_leaked(int q) const override { return leaked_[q] != 0; }
    bool check_leaked(int c) const override
    {
        return leaked_[code_->ancilla_of(c)] != 0;
    }
    /** Number of currently-leaked data qubits. */
    int n_data_leaked() const override;
    /** Number of currently-leaked ancilla qubits. */
    int n_check_leaked() const override;

    /**
     * Applies the scheduled LRC gadgets (start-of-round semantics), then
     * executes one noisy syndrome-extraction round.
     * @param lrcs gadgets decided by the policy after the previous round.
     */
    RoundResult run_round(const LrcSchedule& lrcs) override;

    /**
     * Transversal Z-basis readout of all data qubits at the end of the
     * memory experiment.  Returns the per-qubit outcome flip (leaked qubits
     * read out randomly).
     */
    std::vector<uint8_t> final_data_measure() override;

    Rng& rng() { return rng_; }
    const NoiseParams& noise() const { return np_; }

    /** The LRC partner ancilla (check index) used for data qubit q. */
    int lrc_partner(int q) const { return lrc_partner_[q]; }

  private:
    void apply_lrc_data(int q);
    void apply_lrc_check(int c);
    void depolarize1(int q);
    void depolarize2(int q0, int q1);
    void leak_maybe(int q);
    void cnot(int control, int target);
    void malfunction(int partner, bool is_control);

    const CssCode* code_;
    const RoundCircuit* rc_;
    NoiseParams np_;
    Rng rng_;

    std::vector<uint8_t> fx_;      ///< X-frame bit per qubit
    std::vector<uint8_t> fz_;      ///< Z-frame bit per qubit
    std::vector<uint8_t> leaked_;  ///< leak flag per qubit
    std::vector<uint8_t> prev_meas_;
    std::vector<int> lrc_partner_;
    bool first_round_ = true;
};

}  // namespace gld

#endif  // GLD_SIM_FRAME_SIM_H_
